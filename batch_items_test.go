package repro

import (
	"context"
	"testing"
)

// TestAlignBatchItemsHeterogeneous pins the per-item Options contract:
// triples carrying different schemes and algorithms in one batch each get
// exactly the result a direct Align call with the same Options produces.
func TestAlignBatchItemsHeterogeneous(t *testing.T) {
	g := NewGenerator(DNA, 91)
	mm := MutationModel{SubstitutionRate: 0.2, InsertionRate: 0.02, DeletionRate: 0.02}
	tr1 := g.RelatedTriple(24, mm)
	tr2 := g.RelatedTriple(30, mm)
	affine, err := DefaultScheme(DNA)
	if err != nil {
		t.Fatal(err)
	}
	affine, err = affine.WithGaps(-4, -1)
	if err != nil {
		t.Fatal(err)
	}
	items := []BatchItem{
		{Triple: tr1, Opt: Options{Algorithm: AlgorithmFull, Workers: 1}},
		{Triple: tr2, Opt: Options{Scheme: affine, Workers: 1}}, // Auto resolves to the affine kernel
		{Triple: tr1, Opt: Options{Algorithm: AlgorithmCenterStar, Workers: 1}},
	}
	out := AlignBatchItemsContext(context.Background(), items)
	if len(out) != len(items) {
		t.Fatalf("got %d results for %d items", len(out), len(items))
	}
	for i, it := range items {
		if out[i].Err != nil {
			t.Fatalf("item %d: %v", i, out[i].Err)
		}
		want, err := Align(it.Triple, it.Opt)
		if err != nil {
			t.Fatalf("direct align %d: %v", i, err)
		}
		if out[i].Result.Score != want.Score {
			t.Errorf("item %d: score %d, want %d", i, out[i].Result.Score, want.Score)
		}
	}
}

func TestParseAlgorithm(t *testing.T) {
	if a, err := ParseAlgorithm(""); err != nil || a != AlgorithmAuto {
		t.Errorf(`ParseAlgorithm("") = %q, %v`, a, err)
	}
	for _, known := range Algorithms() {
		if a, err := ParseAlgorithm(string(known)); err != nil || a != known {
			t.Errorf("ParseAlgorithm(%q) = %q, %v", known, a, err)
		}
	}
	if _, err := ParseAlgorithm("quantum"); err == nil {
		t.Error("ParseAlgorithm accepted an unknown name")
	}
}

func TestAlphabetByName(t *testing.T) {
	for name, want := range map[string]*Alphabet{"dna": DNA, "rna": RNA, "protein": Protein} {
		if got, ok := AlphabetByName(name); !ok || got != want {
			t.Errorf("AlphabetByName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := AlphabetByName("klingon"); ok {
		t.Error("AlphabetByName accepted an unknown name")
	}
}

// Quickstart: align three short DNA sequences with the default (parallel
// exact) algorithm and print the alignment.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	repro "repro"
)

func main() {
	tr, err := repro.NewTriple(
		"GATTACAGATTACA",
		"GATCACAGATACA",
		"GATTACAGTTACA",
		repro.DNA,
	)
	if err != nil {
		log.Fatal(err)
	}

	res, err := repro.Align(tr, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("optimal SP score: %d (algorithm %s, %s)\n\n", res.Score, res.Algorithm, res.Elapsed)
	if err := res.Format(os.Stdout, 60); err != nil {
		log.Fatal(err)
	}
}

// DNA consensus: align three homologous DNA sequences (three descendants of
// a common ancestor, the paper's motivating workload), then derive a
// majority consensus and per-column conservation from the optimal
// alignment. Exercises the pruned exact aligner and the alignment
// statistics API.
//
//	go run ./examples/dnaconsensus
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	repro "repro"
)

func main() {
	// A reproducible workload: ~85% identity descendants of one ancestor.
	g := repro.NewGenerator(repro.DNA, 2007)
	tr := g.RelatedTriple(90, repro.MutationModel{
		SubstitutionRate: 0.12,
		InsertionRate:    0.03,
		DeletionRate:     0.03,
	})

	res, err := repro.Align(tr, repro.Options{Algorithm: repro.AlgorithmPruned})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("optimal SP score %d in %s", res.Score, res.Elapsed)
	if res.Prune != nil {
		fmt.Printf(" — Carrillo-Lipman evaluated %.1f%% of the lattice",
			100*res.Prune.Fraction())
	}
	fmt.Print("\n\n")
	if err := res.Format(os.Stdout, 60); err != nil {
		log.Fatal(err)
	}

	consensus := res.Consensus()
	conserved := strings.Count(res.Conservation(), "*")
	st := res.ComputeStats()
	fmt.Printf("\nconsensus (%d bp): %s\n", len(consensus), consensus)
	fmt.Printf("fully conserved columns: %d/%d (%.1f%%), mean pairwise identity %.1f%%\n",
		conserved, st.Columns, 100*float64(conserved)/float64(st.Columns), 100*st.PairIdentity)
}

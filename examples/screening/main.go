// Screening: given a reference pair of homologous sequences, rank a set of
// candidate third sequences by their optimal three-way SP score — a
// throughput workload for AlignBatch. Candidates closer to the reference
// family score higher; the ranking separates true relatives from decoys.
//
//	go run ./examples/screening
package main

import (
	"fmt"
	"log"
	"sort"

	repro "repro"
)

func main() {
	g := repro.NewGenerator(repro.DNA, 424242)

	// The reference family: two known homologs of a common ancestor.
	ancestor := g.Random("ancestor", 80)
	mild := repro.MutationModel{SubstitutionRate: 0.08, InsertionRate: 0.02, DeletionRate: 0.02}
	refA := g.Mutate("refA", ancestor, mild)
	refB := g.Mutate("refB", ancestor, mild)

	// Candidates: four true relatives at increasing divergence and four
	// unrelated decoys.
	type candidate struct {
		name string
		seq  *repro.Sequence
		kind string
	}
	var cands []candidate
	for i, rate := range []float64{0.05, 0.15, 0.30, 0.50} {
		m := repro.MutationModel{SubstitutionRate: rate, InsertionRate: rate / 4, DeletionRate: rate / 4}
		cands = append(cands, candidate{
			name: fmt.Sprintf("relative-%d", i+1),
			seq:  g.Mutate(fmt.Sprintf("relative-%d", i+1), ancestor, m),
			kind: "relative",
		})
	}
	for i := 0; i < 4; i++ {
		cands = append(cands, candidate{
			name: fmt.Sprintf("decoy-%d", i+1),
			seq:  g.Random(fmt.Sprintf("decoy-%d", i+1), 80),
			kind: "decoy",
		})
	}

	// Stage 1 — alignment-free prefilter: k-mer distance to the reference
	// pair. This is how real screening pipelines avoid spending the O(n³)
	// exact aligner on hopeless candidates.
	fmt.Printf("screening %d candidates against reference pair (%d bp ancestor)\n\n", len(cands), ancestor.Len())
	fmt.Println("stage 1: k-mer prefilter (k=5, mean distance to refA/refB; lower is closer)")
	type pre struct {
		idx  int
		dist float64
	}
	pres := make([]pre, len(cands))
	for i, c := range cands {
		d := (repro.KmerDistance(refA, c.seq, 5) + repro.KmerDistance(refB, c.seq, 5)) / 2
		pres[i] = pre{i, d}
	}
	sort.Slice(pres, func(i, j int) bool { return pres[i].dist < pres[j].dist })
	for _, p := range pres {
		fmt.Printf("  %-12s %-10s %.3f\n", cands[p.idx].name, cands[p.idx].kind, p.dist)
	}

	// Stage 2 — exact three-way alignment of every candidate (the batch
	// API; in a larger pipeline only the prefilter survivors would go on).
	triples := make([]repro.Triple, len(cands))
	for i, c := range cands {
		triples[i] = repro.Triple{A: refA, B: refB, C: c.seq}
	}
	results := repro.AlignBatch(triples, repro.Options{Algorithm: repro.AlgorithmPruned})

	type row struct {
		name, kind string
		score      int32
	}
	rows := make([]row, 0, len(results))
	for i, r := range results {
		if r.Err != nil {
			log.Fatalf("%s: %v", cands[i].name, r.Err)
		}
		rows = append(rows, row{cands[i].name, cands[i].kind, r.Result.Score})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].score > rows[j].score })

	fmt.Printf("\nstage 2: exact optimal SP score (higher is closer)\n")
	fmt.Printf("%-4s %-12s %-10s %s\n", "rank", "candidate", "kind", "optimal SP score")
	for i, r := range rows {
		fmt.Printf("%-4d %-12s %-10s %d\n", i+1, r.name, r.kind, r.score)
	}
}

// Serving: the alignd HTTP wire format, driven end to end. The example
// embeds the serving layer in-process on an ephemeral port — a real
// deployment runs the same layer as `go run ./cmd/alignd -addr :8080` —
// and speaks to it as a client: a single alignment, a batch with shared
// defaults, a deadline that degrades to a heuristic instead of failing,
// and the /statsz gauges an operator would scrape.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/server"
)

func main() {
	// Boot the serving layer. QueueDepth bounds admitted-but-unfinished
	// work (beyond it, clients get 429 + Retry-After); CoalesceTick merges
	// concurrent small requests into one batch submission.
	srv := server.New(server.Config{
		Workers:      4,
		QueueDepth:   16,
		CoalesceTick: 2 * time.Millisecond,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// One triple, inline sequences. Algorithm, scheme, workers, and
	// deadline are all optional knobs; the default is the parallel exact
	// aligner under the process-wide pool.
	var res struct {
		Algorithm string   `json:"algorithm"`
		Score     int32    `json:"score"`
		Columns   int      `json:"columns"`
		Rows      []string `json:"rows"`
	}
	post(base+"/v1/align", map[string]any{
		"a": "GATTACAGATTACA", "b": "GATCACAGATACA", "c": "GATTACAGTTACA",
	}, &res)
	fmt.Printf("single: algorithm=%s score=%d columns=%d\n", res.Algorithm, res.Score, res.Columns)
	for _, row := range res.Rows {
		fmt.Printf("  %s\n", row)
	}

	// A batch: shared defaults, per-item overrides. Items come back in
	// input order, each with its own result or error.
	var batch struct {
		Results []struct {
			Index  int             `json:"index"`
			Result json.RawMessage `json:"result"`
			Error  string          `json:"error"`
		} `json:"results"`
	}
	post(base+"/v1/align/batch", map[string]any{
		"defaults": map[string]any{"alphabet": "dna", "algorithm": "pruned"},
		"items": []map[string]any{
			{"a": "ACGTACGTACGT", "b": "ACGTTCGTACGT", "c": "ACGAACGTACGT"},
			{"a": "AAAACCCCGGGG", "b": "AAATCCCCGGGG", "c": "AATACCCCGGGG", "algorithm": "full"},
		},
	}, &batch)
	fmt.Printf("\nbatch: %d results\n", len(batch.Results))
	for _, r := range batch.Results {
		var item struct {
			Algorithm string `json:"algorithm"`
			Score     int32  `json:"score"`
		}
		if err := json.Unmarshal(r.Result, &item); err != nil {
			log.Fatalf("item %d: %s (%v)", r.Index, r.Error, err)
		}
		fmt.Printf("  item %d: algorithm=%s score=%d\n", r.Index, item.Algorithm, item.Score)
	}

	// An impossible deadline. The server-side default is fallback=true, so
	// instead of a 504 the reply is 200 with a degraded heuristic
	// alignment and the cause; pass "fallback": false to get the error.
	var deg struct {
		Algorithm     string `json:"algorithm"`
		Score         int32  `json:"score"`
		Degraded      bool   `json:"degraded"`
		DegradedCause string `json:"degraded_cause"`
	}
	long := bytes.Repeat([]byte("ACGTTGCA"), 40)
	post(base+"/v1/align", map[string]any{
		"a": string(long), "b": string(long[1:]), "c": string(long[2:]),
		"algorithm": "full", "deadline_ms": 1,
	}, &deg)
	fmt.Printf("\ndeadline: degraded=%v algorithm=%s score=%d\n  cause: %s\n",
		deg.Degraded, deg.Algorithm, deg.Score, deg.DegradedCause)

	// Operational visibility: queue and pool gauges, counters, latency
	// quantiles over the last 1024 requests.
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Completed         int64 `json:"completed"`
		Shed              int64 `json:"shed"`
		Degraded          int64 `json:"degraded"`
		CoalescedBatches  int64 `json:"coalesced_batches"`
		CoalescedRequests int64 `json:"coalesced_requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstatsz: completed=%d shed=%d degraded=%d coalesced=%d/%d\n",
		stats.Completed, stats.Shed, stats.Degraded,
		stats.CoalescedRequests, stats.CoalescedBatches)
}

// post sends one JSON request and decodes the JSON reply into out,
// failing loudly on a non-200 status.
func post(url string, req any, out any) {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("%s: HTTP %d: %s", url, resp.StatusCode, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

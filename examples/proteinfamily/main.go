// Protein family: align three related protein fragments under BLOSUM62
// with affine gaps, comparing the exact affine aligner against the
// center-star and progressive heuristics — the quality experiment (T3) in
// miniature, on protein data.
//
//	go run ./examples/proteinfamily
package main

import (
	"fmt"
	"log"
	"os"

	repro "repro"
)

// Three synthetic members of a protein family: fragments derived from a
// common ancestral fragment with point substitutions and a short indel,
// the typical shape of a conserved domain across paralogs.
const (
	frag1 = "MKLSDTVAERGQKLVSEAWNHPDTVAQRLGIKTEDLKGMSQEEFLAAVEKLG"
	frag2 = "MKLSDTVAERGQKLVEAWNHPETVAQRLGIKAEDLKGMSEEEFLAAVEKLG"
	frag3 = "MKLADTVAERGQKLVSEAWNHPDTVMQRLGIRTEDLKGMSQEEFLTAVEKLG"
)

func main() {
	a, err := repro.NewSequence("para1", frag1, repro.Protein)
	if err != nil {
		log.Fatal(err)
	}
	b, err := repro.NewSequence("para2", frag2, repro.Protein)
	if err != nil {
		log.Fatal(err)
	}
	c, err := repro.NewSequence("para3", frag3, repro.Protein)
	if err != nil {
		log.Fatal(err)
	}
	tr := repro.Triple{A: a, B: b, C: c}

	// Exact affine alignment under BLOSUM62 (-11 open, -1 extend).
	exact, err := repro.Align(tr, repro.Options{Algorithm: repro.AlgorithmAffine})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact affine (BLOSUM62): score %d in %s\n\n", exact.Score, exact.Elapsed)
	if err := exact.Format(os.Stdout, 60); err != nil {
		log.Fatal(err)
	}

	// Heuristic baselines, scored under the same affine model for a fair
	// quality comparison.
	sch, _ := repro.SchemeByName("blosum62")
	fmt.Println("\nquality comparison (natural affine SP score, higher is better):")
	fmt.Printf("  %-12s %6d  (optimal quasi-natural objective)\n", "exact", exact.Score)
	for _, algo := range []repro.Algorithm{repro.AlgorithmCenterStar, repro.AlgorithmProgressive} {
		res, err := repro.Align(tr, repro.Options{Algorithm: algo})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %6d  (in %s)\n", algo, res.SPScoreAffine(sch), res.Elapsed)
	}
}

// Scaling: measure the blocked-wavefront parallel aligner across worker
// counts and print measured wall-clock time next to the simulated
// multi-processor speedup of the same schedule — the F1 figure in
// miniature. On a single-core host the measured column stays flat while
// the simulated column shows the scaling the schedule achieves with real
// processors.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	repro "repro"
	"repro/internal/core"
	"repro/internal/wavefront"
)

func main() {
	const n = 120
	g := repro.NewGenerator(repro.DNA, 99)
	tr := g.RelatedTriple(n, repro.MutationModel{SubstitutionRate: 0.3, InsertionRate: 0.02, DeletionRate: 0.02})

	si := wavefront.Partition(tr.A.Len()+1, core.DefaultBlockSize)
	sj := wavefront.Partition(tr.B.Len()+1, core.DefaultBlockSize)
	sk := wavefront.Partition(tr.C.Len()+1, core.DefaultBlockSize)
	cost := wavefront.SpanCost(si, sj, sk, 1)
	sim1 := wavefront.Simulate(len(si), len(sj), len(sk), 1, cost)

	fmt.Printf("n=%d, block=%d, GOMAXPROCS=%d\n", n, core.DefaultBlockSize, runtime.GOMAXPROCS(0))
	fmt.Printf("%-8s %-12s %-14s %s\n", "workers", "measured", "meas-speedup", "sim-speedup")
	var t1 time.Duration
	for _, w := range []int{1, 2, 4, 8} {
		start := time.Now()
		res, err := repro.Align(tr, repro.Options{Algorithm: repro.AlgorithmParallel, Workers: w})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if w == 1 {
			t1 = elapsed
		}
		sim := sim1 / wavefront.Simulate(len(si), len(sj), len(sk), w, cost)
		fmt.Printf("%-8d %-12s %-14.2f %.2f   (score %d)\n",
			w, elapsed.Round(time.Microsecond), float64(t1)/float64(elapsed), sim, res.Score)
	}
}

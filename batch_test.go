package repro

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/wavefront"
)

func TestAlignBatchOrderAndScores(t *testing.T) {
	g := NewGenerator(DNA, 55)
	var triples []Triple
	for i := 0; i < 9; i++ {
		triples = append(triples, g.RelatedTriple(15+i, MutationModel{SubstitutionRate: 0.2}))
	}
	results := AlignBatch(triples, Options{Workers: 4})
	if len(results) != len(triples) {
		t.Fatalf("got %d results, want %d", len(results), len(triples))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("triple %d: %v", i, r.Err)
		}
		if r.Index != i {
			t.Fatalf("result %d has Index %d", i, r.Index)
		}
		ref, err := Align(triples[i], Options{Algorithm: AlgorithmFull})
		if err != nil {
			t.Fatal(err)
		}
		if r.Result.Score != ref.Score {
			t.Fatalf("triple %d: batch score %d != %d", i, r.Result.Score, ref.Score)
		}
	}
}

func TestAlignBatchEmpty(t *testing.T) {
	if got := AlignBatch(nil, Options{}); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

func TestAlignBatchPartialFailure(t *testing.T) {
	good := mustTriple(t, "ACGT", "ACG", "AGT")
	bad := Triple{A: good.A, B: good.B} // missing C
	results := AlignBatch([]Triple{good, bad, good}, Options{Workers: 2})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("good triples failed: %v %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("invalid triple did not report an error")
	}
}

func TestAlignBatchHeuristicAlgorithm(t *testing.T) {
	g := NewGenerator(DNA, 56)
	triples := []Triple{
		g.RelatedTriple(20, MutationModel{SubstitutionRate: 0.1}),
		g.RelatedTriple(25, MutationModel{SubstitutionRate: 0.1}),
	}
	results := AlignBatch(triples, Options{Algorithm: AlgorithmCenterStar, Workers: 2})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("triple %d: %v", i, r.Err)
		}
		if r.Result.Algorithm != AlgorithmCenterStar {
			t.Fatalf("triple %d ran %q", i, r.Result.Algorithm)
		}
	}
}

func TestFormatReExportsRoundTrip(t *testing.T) {
	tr := mustTriple(t, "ACGTAC", "ACGAC", "ACTAC")
	res, err := Align(tr, Options{Algorithm: AlgorithmFull})
	if err != nil {
		t.Fatal(err)
	}
	var clustal strings.Builder
	if err := WriteClustal(&clustal, res.Alignment); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(clustal.String(), "CLUSTAL") {
		t.Error("clustal header missing")
	}
	var fasta strings.Builder
	if err := WriteAlignedFASTA(&fasta, res.Alignment, 60); err != nil {
		t.Fatal(err)
	}
	back, err := ParseAlignedFASTA(strings.NewReader(fasta.String()), DNA)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := DefaultScheme(DNA)
	if err != nil {
		t.Fatal(err)
	}
	if back.SPScore(sch) != res.Score {
		t.Fatalf("round trip score %d != %d", back.SPScore(sch), res.Score)
	}
}

// TestAlignBatchAffineAutoMatchesSingle is the regression test for the
// AlgorithmAuto batch bug: under an affine scheme the batch must optimize
// the same affine objective a single Align call does, not silently fall
// back to the linear-gap full matrix.
func TestAlignBatchAffineAutoMatchesSingle(t *testing.T) {
	g := NewGenerator(Protein, 77)
	var triples []Triple
	for i := 0; i < 4; i++ {
		triples = append(triples, g.RelatedTriple(10+i, MutationModel{SubstitutionRate: 0.15}))
	}
	opt := Options{Workers: 2} // Auto + protein default (BLOSUM62, affine)
	results := AlignBatch(triples, opt)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("triple %d: %v", i, r.Err)
		}
		if r.Result.Algorithm != AlgorithmAffine {
			t.Fatalf("triple %d: batch resolved Auto to %q, want affine", i, r.Result.Algorithm)
		}
		ref, err := Align(triples[i], opt)
		if err != nil {
			t.Fatal(err)
		}
		if r.Result.Score != ref.Score {
			t.Fatalf("triple %d: batch affine score %d != single-call %d",
				i, r.Result.Score, ref.Score)
		}
	}
}

// TestAlignBatchContextCancelled: every triple in a batch under a
// cancelled context reports the context error; none is silently dropped.
func TestAlignBatchContextCancelled(t *testing.T) {
	g := NewGenerator(DNA, 78)
	var triples []Triple
	for i := 0; i < 6; i++ {
		triples = append(triples, g.RelatedTriple(15, MutationModel{SubstitutionRate: 0.1}))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := AlignBatchContext(ctx, triples, Options{Workers: 3})
	if len(results) != len(triples) {
		t.Fatalf("got %d results, want %d", len(results), len(triples))
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d has Index %d", i, r.Index)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("triple %d: err = %v, want wrapped context.Canceled", i, r.Err)
		}
	}
}

// TestAlignRecoverContainsPanic: a panic inside one alignment becomes an
// error carrying the panic value and a stack trace.
func TestAlignRecoverContainsPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic escaped alignRecover: %v", r)
		}
	}()
	res, err := func() (res *Result, err error) {
		defer recoverAlignPanic(&res, &err)
		panic("kernel bug")
	}()
	if res != nil || err == nil {
		t.Fatal("panic not converted to error")
	}
	if !strings.Contains(err.Error(), "kernel bug") || !strings.Contains(err.Error(), "goroutine") {
		t.Fatalf("panic error lacks value or stack: %v", err)
	}
}

// TestAlignBatchNarrowUsesIntraParallelism checks the pool-sharing split:
// a batch with fewer triples than workers must route the spare capacity
// into the alignments themselves (parallel kernels on multiple workers)
// instead of serializing each triple onto one goroutine.
func TestAlignBatchNarrowUsesIntraParallelism(t *testing.T) {
	g := NewGenerator(DNA, 57)
	triples := []Triple{
		g.RelatedTriple(60, MutationModel{SubstitutionRate: 0.1}),
		g.RelatedTriple(60, MutationModel{SubstitutionRate: 0.1}),
	}
	before := wavefront.Stats()
	results := AlignBatch(triples, Options{Workers: 4})
	d := wavefront.Stats().Sub(before)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("triple %d: %v", i, r.Err)
		}
		ref, err := Align(triples[i], Options{Algorithm: AlgorithmFull})
		if err != nil {
			t.Fatal(err)
		}
		if r.Result.Score != ref.Score {
			t.Fatalf("triple %d: batch score %d != %d", i, r.Result.Score, ref.Score)
		}
	}
	// Each narrow-batch triple must have entered the block scheduler (as a
	// stealing run or, if the pool was briefly saturated, a solo fallback) —
	// the old behavior ran zero wavefront runs because inner Workers was
	// pinned to 1 and Auto resolved to the sequential kernel.
	if d.Runs+d.SoloRuns < int64(len(triples)) {
		t.Fatalf("narrow batch entered the wavefront scheduler %d+%d times, want >= %d",
			d.Runs, d.SoloRuns, len(triples))
	}
}

// TestAlignBatchWideStaysSequential checks the other side of the split: a
// batch at least as wide as the worker count keeps inner alignments
// single-threaded (throughput mode).
func TestAlignBatchWideStaysSequential(t *testing.T) {
	g := NewGenerator(DNA, 58)
	var triples []Triple
	for i := 0; i < 6; i++ {
		triples = append(triples, g.RelatedTriple(20, MutationModel{SubstitutionRate: 0.1}))
	}
	before := wavefront.Stats()
	results := AlignBatch(triples, Options{Workers: 2})
	d := wavefront.Stats().Sub(before)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("triple %d: %v", i, r.Err)
		}
	}
	if d.Runs+d.SoloRuns != 0 {
		t.Fatalf("wide batch entered the wavefront block scheduler %d+%d times, want 0",
			d.Runs, d.SoloRuns)
	}
}

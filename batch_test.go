package repro

import (
	"strings"
	"testing"
)

func TestAlignBatchOrderAndScores(t *testing.T) {
	g := NewGenerator(DNA, 55)
	var triples []Triple
	for i := 0; i < 9; i++ {
		triples = append(triples, g.RelatedTriple(15+i, MutationModel{SubstitutionRate: 0.2}))
	}
	results := AlignBatch(triples, Options{Workers: 4})
	if len(results) != len(triples) {
		t.Fatalf("got %d results, want %d", len(results), len(triples))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("triple %d: %v", i, r.Err)
		}
		if r.Index != i {
			t.Fatalf("result %d has Index %d", i, r.Index)
		}
		ref, err := Align(triples[i], Options{Algorithm: AlgorithmFull})
		if err != nil {
			t.Fatal(err)
		}
		if r.Result.Score != ref.Score {
			t.Fatalf("triple %d: batch score %d != %d", i, r.Result.Score, ref.Score)
		}
	}
}

func TestAlignBatchEmpty(t *testing.T) {
	if got := AlignBatch(nil, Options{}); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

func TestAlignBatchPartialFailure(t *testing.T) {
	good := mustTriple(t, "ACGT", "ACG", "AGT")
	bad := Triple{A: good.A, B: good.B} // missing C
	results := AlignBatch([]Triple{good, bad, good}, Options{Workers: 2})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("good triples failed: %v %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("invalid triple did not report an error")
	}
}

func TestAlignBatchHeuristicAlgorithm(t *testing.T) {
	g := NewGenerator(DNA, 56)
	triples := []Triple{
		g.RelatedTriple(20, MutationModel{SubstitutionRate: 0.1}),
		g.RelatedTriple(25, MutationModel{SubstitutionRate: 0.1}),
	}
	results := AlignBatch(triples, Options{Algorithm: AlgorithmCenterStar, Workers: 2})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("triple %d: %v", i, r.Err)
		}
		if r.Result.Algorithm != AlgorithmCenterStar {
			t.Fatalf("triple %d ran %q", i, r.Result.Algorithm)
		}
	}
}

func TestFormatReExportsRoundTrip(t *testing.T) {
	tr := mustTriple(t, "ACGTAC", "ACGAC", "ACTAC")
	res, err := Align(tr, Options{Algorithm: AlgorithmFull})
	if err != nil {
		t.Fatal(err)
	}
	var clustal strings.Builder
	if err := WriteClustal(&clustal, res.Alignment); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(clustal.String(), "CLUSTAL") {
		t.Error("clustal header missing")
	}
	var fasta strings.Builder
	if err := WriteAlignedFASTA(&fasta, res.Alignment, 60); err != nil {
		t.Fatal(err)
	}
	back, err := ParseAlignedFASTA(strings.NewReader(fasta.String()), DNA)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := DefaultScheme(DNA)
	if err != nil {
		t.Fatal(err)
	}
	if back.SPScore(sch) != res.Score {
		t.Fatalf("round trip score %d != %d", back.SPScore(sch), res.Score)
	}
}

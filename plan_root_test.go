package repro

// Integration tests for the planner wiring in the root package: every
// successful Align carries the plan that drove it, MaxMemoryBytes walks
// the downgrade ladder without changing the optimal score, an unfittable
// exact request degrades to the heuristic last resort, and batch claiming
// packs largest plans first.

import (
	"errors"
	"testing"

	"repro/internal/core"
)

func planTestScheme(t *testing.T) *Scheme {
	t.Helper()
	sch, err := DefaultScheme(DNA)
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

// TestResultCarriesPlan asserts Result.Plan is populated on the auto path
// and agrees with the algorithm that actually ran.
func TestResultCarriesPlan(t *testing.T) {
	g := NewGenerator(DNA, 11)
	tr := g.RelatedTriple(24, MutationModel{SubstitutionRate: 0.2})
	res, err := Align(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("Result.Plan is nil on the auto path")
	}
	if res.Plan.Algorithm != string(res.Algorithm) {
		t.Errorf("plan says %s, result ran %s", res.Plan.Algorithm, res.Algorithm)
	}
	if res.Plan.EstCells == 0 || res.Plan.EstBytes == 0 {
		t.Errorf("plan estimates empty: %+v", res.Plan)
	}
	if len(res.Plan.Downgrades) != 0 {
		t.Errorf("unexpected downgrades without a budget: %v", res.Plan.Downgrades)
	}
}

// TestMaxMemoryBytesDowngrades squeezes a full-lattice workload under a
// budget that only linear space fits: the planner must record the
// downgrade, the run must not be Degraded (linear space is still exact),
// and the score must match the unbudgeted optimum.
func TestMaxMemoryBytesDowngrades(t *testing.T) {
	g := NewGenerator(DNA, 13)
	tr := g.RelatedTriple(64, MutationModel{SubstitutionRate: 0.2, InsertionRate: 0.05})
	want, err := Align(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Align(tr, Options{MaxMemoryBytes: 128 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgorithmParallelLinear {
		t.Errorf("algorithm = %s, want %s under a 128 KiB budget", res.Algorithm, AlgorithmParallelLinear)
	}
	if len(res.Plan.Downgrades) == 0 {
		t.Error("budget downgrade not recorded in the plan")
	}
	if res.Degraded {
		t.Error("linear-space downgrade must stay exact, not Degraded")
	}
	if res.Score != want.Score {
		t.Errorf("budgeted score %d != unbudgeted optimum %d", res.Score, want.Score)
	}
}

// TestMaxMemoryBytesLastResort uses an asymmetric triple whose pairwise
// faces fit a budget that no exact kernel does: the planner must land on
// the heuristic last resort and mark the result Degraded with an
// ErrTooLarge cause.
func TestMaxMemoryBytesLastResort(t *testing.T) {
	g := NewGenerator(DNA, 17)
	tr := g.TripleWithLengths(60, 400, 400, MutationModel{SubstitutionRate: 0.2})
	// Pairwise faces ≈ 2.5 MB, linear-space planes ≈ 2.6 MB: a budget
	// between the two fits only heuristics.
	res, err := Align(tr, Options{MaxMemoryBytes: 2_520_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgorithmCenterStarRefined {
		t.Errorf("algorithm = %s, want the %s last resort", res.Algorithm, AlgorithmCenterStarRefined)
	}
	if !res.Degraded {
		t.Error("heuristic last resort must be flagged Degraded")
	}
	if !errors.Is(res.DegradedCause, ErrTooLarge) {
		t.Errorf("DegradedCause = %v, want ErrTooLarge", res.DegradedCause)
	}
	if len(res.Plan.Downgrades) < 2 {
		t.Errorf("expected the full ladder in Downgrades, got %v", res.Plan.Downgrades)
	}
}

// TestExplicitAlgorithmIgnoresSoftBudget: an explicitly requested exact
// kernel is not silently swapped; MaxBytes (the hard cap) still rejects.
func TestExplicitAlgorithmStillHardCapped(t *testing.T) {
	g := NewGenerator(DNA, 19)
	tr := g.RelatedTriple(96, MutationModel{SubstitutionRate: 0.2})
	_, err := Align(tr, Options{Algorithm: AlgorithmFull, MaxBytes: 1 << 10})
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("explicit full over MaxBytes: err = %v, want ErrTooLarge", err)
	}
	if core.FullMatrixBytes(tr) <= 1<<10 {
		t.Fatal("test triple too small to exceed the cap")
	}
}

// TestPlanAlignDryRun: PlanAlign plans without aligning and matches what
// Align then executes.
func TestPlanAlignDryRun(t *testing.T) {
	g := NewGenerator(DNA, 23)
	tr := g.RelatedTriple(32, MutationModel{SubstitutionRate: 0.2})
	opt := Options{MaxMemoryBytes: 64 << 10}
	pl, err := PlanAlign(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Align(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Algorithm != string(res.Algorithm) {
		t.Errorf("dry-run planned %s, Align ran %s", pl.Algorithm, res.Algorithm)
	}
	if pl.EstBytes != res.Plan.EstBytes {
		t.Errorf("dry-run EstBytes %d != executed plan %d", pl.EstBytes, res.Plan.EstBytes)
	}
}

// TestPlanOrderLargestFirst: the batch claim order visits items by
// descending planned cell count, with unplannable items last.
func TestPlanOrderLargestFirst(t *testing.T) {
	g := NewGenerator(DNA, 29)
	sch := planTestScheme(t)
	mk := func(n int) BatchItem {
		return BatchItem{Triple: g.RelatedTriple(n, MutationModel{SubstitutionRate: 0.2}), Opt: Options{Scheme: sch}}
	}
	items := []BatchItem{mk(8), mk(64), {}, mk(32)}
	order := planOrder(items, false)
	if len(order) != len(items) {
		t.Fatalf("order has %d entries, want %d", len(order), len(items))
	}
	want := []int{1, 3, 0, 2} // 64 > 32 > 8 > invalid
	for i, idx := range want {
		if order[i] != idx {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestBatchResultsCarryPlans: batch results come back in input order and
// each successful one carries its plan.
func TestBatchResultsCarryPlans(t *testing.T) {
	g := NewGenerator(DNA, 31)
	triples := []Triple{
		g.RelatedTriple(40, MutationModel{SubstitutionRate: 0.2}),
		g.RelatedTriple(10, MutationModel{SubstitutionRate: 0.2}),
		g.RelatedTriple(24, MutationModel{SubstitutionRate: 0.2}),
	}
	for i, br := range AlignBatch(triples, Options{Workers: 2}) {
		if br.Err != nil {
			t.Fatalf("item %d: %v", i, br.Err)
		}
		if br.Index != i {
			t.Errorf("result %d has index %d; batch order not restored", i, br.Index)
		}
		if br.Result.Plan == nil {
			t.Errorf("item %d: missing plan", i)
		}
	}
}

package repro

import (
	"io"
	"sync"

	"repro/internal/alignment"
	"repro/internal/wavefront"
)

// WriteClustal writes an alignment in CLUSTAL-style text format.
func WriteClustal(w io.Writer, a *Alignment) error { return alignment.WriteClustal(w, a) }

// WriteAlignedFASTA writes the three gapped rows as FASTA records.
func WriteAlignedFASTA(w io.Writer, a *Alignment, width int) error {
	return alignment.WriteAlignedFASTA(w, a, width)
}

// ParseAlignedFASTA reads three equal-length gapped FASTA rows back into an
// Alignment. The score is not stored in the format; re-score with SPScore.
func ParseAlignedFASTA(r io.Reader, alpha *Alphabet) (*Alignment, error) {
	return alignment.ParseAlignedFASTA(r, alpha)
}

// BatchResult is the outcome of one triple in an AlignBatch call.
type BatchResult struct {
	Index  int
	Result *Result
	Err    error
}

// AlignBatch aligns many triples concurrently — the throughput mode for
// screening workloads (e.g. ranking candidate third sequences against a
// reference pair). Triples are distributed over a pool of opt.Workers
// goroutines and each alignment runs single-threaded, which beats
// intra-alignment parallelism when there are at least as many triples as
// workers. Results are returned in input order; per-triple failures are
// reported in BatchResult.Err without aborting the batch.
func AlignBatch(triples []Triple, opt Options) []BatchResult {
	out := make([]BatchResult, len(triples))
	if len(triples) == 0 {
		return out
	}
	// Inner alignments run sequentially; the batch supplies parallelism.
	inner := opt
	inner.Workers = 1
	if inner.Algorithm == AlgorithmAuto {
		inner.Algorithm = AlgorithmFull
	}
	workers := wavefront.Workers(opt.Workers)
	if workers > len(triples) {
		workers = len(triples)
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(triples) {
					return
				}
				res, err := Align(triples[i], inner)
				out[i] = BatchResult{Index: i, Result: res, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}

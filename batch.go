package repro

import (
	"context"
	"fmt"
	"io"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/alignment"
	"repro/internal/plan"
	"repro/internal/wavefront"
)

// WriteClustal writes an alignment in CLUSTAL-style text format.
func WriteClustal(w io.Writer, a *Alignment) error { return alignment.WriteClustal(w, a) }

// WriteAlignedFASTA writes the three gapped rows as FASTA records.
func WriteAlignedFASTA(w io.Writer, a *Alignment, width int) error {
	return alignment.WriteAlignedFASTA(w, a, width)
}

// ParseAlignedFASTA reads three equal-length gapped FASTA rows back into an
// Alignment. The score is not stored in the format; re-score with SPScore.
func ParseAlignedFASTA(r io.Reader, alpha *Alphabet) (*Alignment, error) {
	return alignment.ParseAlignedFASTA(r, alpha)
}

// BatchResult is the outcome of one triple in an AlignBatch call.
type BatchResult struct {
	Index  int
	Result *Result
	Err    error
}

// BatchItem pairs one triple with the Options that should align it. It is
// the unit of AlignBatchItemsContext, the heterogeneous batch entry point
// that serving layers use to coalesce concurrent requests — each carrying
// its own scheme, algorithm, and deadline — into one pool submission.
type BatchItem struct {
	Triple Triple
	Opt    Options
}

// AlignBatch aligns many triples concurrently — the throughput mode for
// screening workloads (e.g. ranking candidate third sequences against a
// reference pair). It is AlignBatchContext under context.Background().
func AlignBatch(triples []Triple, opt Options) []BatchResult {
	return AlignBatchContext(context.Background(), triples, opt)
}

// AlignBatchContext aligns many triples concurrently under a context.
// Inter- and intra-triple parallelism share the process-wide worker pool:
// min(opt.Workers, len(triples)) claimers — the caller plus helpers
// recruited from the pool — walk an atomic claim counter over the triples.
// When the batch is wide (at least as many triples as workers) each
// alignment runs single-threaded, the throughput-optimal split. When the
// batch is narrow (fewer triples than workers) the spare capacity flows
// into the alignments themselves: each inner Align keeps opt.Workers and
// its wavefront blocks recruit the idle pool workers, so a batch of two
// long triples on an eight-way pool no longer serializes each triple onto
// one core. Results are returned in input order; per-triple failures —
// including a panic inside one alignment, which is recovered with its
// stack — are reported in BatchResult.Err without aborting the batch.
// Cancelling ctx stops the batch after the in-flight alignments notice it;
// triples not yet started are marked with the context error.
//
// AlgorithmAuto resolves per triple against the effective scoring scheme
// and the chosen split: affine schemes get AlgorithmAffine (or
// AlgorithmAffineParallel on a narrow batch, or AlgorithmAffineLinear over
// MaxBytes), linear ones AlgorithmFull / AlgorithmParallel (or
// AlgorithmLinear) — so a batch under BLOSUM62 optimizes the same affine
// objective a single Align call would.
func AlignBatchContext(ctx context.Context, triples []Triple, opt Options) []BatchResult {
	items := make([]BatchItem, len(triples))
	for i, tr := range triples {
		items[i] = BatchItem{Triple: tr, Opt: opt}
	}
	return AlignBatchItemsContext(ctx, items)
}

// AlignBatchItemsContext is AlignBatchContext for heterogeneous batches:
// every item carries its own Options, so triples with different schemes,
// algorithms, deadlines, or fallback policies can share one batch
// submission. The worker budget of the batch is the largest per-item
// request (each non-positive Workers counts as GOMAXPROCS); the
// wide/narrow split and the pool arbitration are as in AlignBatchContext.
// Claimers pick items in planned-work order (largest estimated lattice
// first, per the execution planner) rather than submission order, which
// shortens the batch makespan; results are still returned in input order.
func AlignBatchItemsContext(ctx context.Context, items []BatchItem) []BatchResult {
	out := make([]BatchResult, len(items))
	for i := range out {
		out[i].Index = i
	}
	if len(items) == 0 {
		return out
	}
	workers := 1
	for _, it := range items {
		if w := wavefront.Workers(it.Opt.Workers); w > workers {
			workers = w
		}
	}
	claimers := workers
	if claimers > len(items) {
		claimers = len(items)
	}
	// A narrow batch leaves workers idle under a triple-per-worker split;
	// route the spare capacity into each alignment instead.
	intraParallel := claimers < workers
	// Claim in planned-work order, largest first: the biggest lattices
	// start while every claimer is alive, so the batch's makespan is not
	// hostage to a huge triple that submission order left for last.
	order := planOrder(items, intraParallel)
	var next atomic.Int64
	claim := func() {
		for {
			oi := int(next.Add(1)) - 1
			if oi >= len(order) {
				return
			}
			i := order[oi]
			if err := ctx.Err(); err != nil {
				out[i].Err = fmt.Errorf("repro: batch cancelled: %w", err)
				continue // claim and mark the remaining triples too
			}
			it := items[i].Opt
			if !intraParallel {
				it.Workers = 1
			}
			res, err := alignRecover(ctx, items[i].Triple, it, intraParallel)
			out[i] = BatchResult{Index: i, Result: res, Err: err}
		}
	}
	// The caller is always a claimer; the rest come from the shared pool.
	// A saturated pool is not an error — the batch proceeds with fewer
	// claimers (down to the caller alone) and the same results.
	wavefront.GrowPool(workers)
	var wg sync.WaitGroup
	for g := 1; g < claimers; g++ {
		wg.Add(1)
		if !wavefront.TryGo(func() { defer wg.Done(); claim() }) {
			wg.Done()
			break
		}
	}
	claim()
	wg.Wait()
	return out
}

// planOrder returns the claim order for a batch: item indexes sorted by
// planned DP cell count, largest first (stable, so equal-work items keep
// submission order). Unplannable items — invalid triple, unknown scheme or
// algorithm, budget too small — count as zero work and sort last; their
// error surfaces when the claimer aligns them.
func planOrder(items []BatchItem, parallel bool) []int {
	keys := make([]uint64, len(items))
	for i := range items {
		keys[i] = planCells(items[i], parallel)
	}
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] > keys[order[b]] })
	return order
}

// planCells estimates one item's DP work for batch ordering.
func planCells(it BatchItem, parallel bool) uint64 {
	if it.Triple.Validate() != nil {
		return 0
	}
	sch, err := resolveScheme(it.Triple, it.Opt)
	if err != nil {
		return 0
	}
	pl, _, err := plan.Resolve(planRequest(it.Triple, sch, it.Opt, parallel))
	if err != nil {
		return 0
	}
	return pl.EstCells
}

// alignRecover is one batch claimer's alignWith call with panic
// containment: a panic inside one alignment becomes that triple's error
// (with the worker stack) instead of crashing the whole batch.
func alignRecover(ctx context.Context, tr Triple, opt Options, parallel bool) (res *Result, err error) {
	defer recoverAlignPanic(&res, &err)
	return alignWith(ctx, tr, opt, parallel)
}

// recoverAlignPanic converts an in-flight panic into an error carrying the
// panic value and the worker's stack. Must be invoked via defer.
func recoverAlignPanic(res **Result, err *error) {
	if r := recover(); r != nil {
		*res = nil
		*err = fmt.Errorf("repro: alignment panicked: %v\n%s", r, debug.Stack())
	}
}

package repro

import (
	"os"
	"testing"
)

// The golden tests anchor the scoring pipeline to bundled datasets: any
// change to the scoring tables, gap models, or DP recurrences that shifts
// an optimum shows up here as a concrete number.

func loadTriple(t *testing.T, path string, alpha *Alphabet) Triple {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := ReadTripleFASTA(f, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGoldenDNATriple(t *testing.T) {
	tr := loadTriple(t, "testdata/triple_dna_40.fasta", DNA)
	res, err := Align(tr, Options{Algorithm: AlgorithmFull})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 102 {
		t.Fatalf("golden DNA optimum = %d, want 102", res.Score)
	}
	// Every exact algorithm reproduces the golden value.
	for _, algo := range []Algorithm{AlgorithmParallel, AlgorithmLinear, AlgorithmDiagonal, AlgorithmPruned} {
		r, err := Align(tr, Options{Algorithm: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if r.Score != 102 {
			t.Fatalf("%s golden = %d, want 102", algo, r.Score)
		}
	}
}

func TestGoldenProteinTriple(t *testing.T) {
	tr := loadTriple(t, "testdata/triple_protein_60.fasta", Protein)
	// Linear-gap optimum under BLOSUM62's extend penalty.
	lin, err := Align(tr, Options{Algorithm: AlgorithmFull})
	if err != nil {
		t.Fatal(err)
	}
	if lin.Score != 726 {
		t.Fatalf("golden protein linear optimum = %d, want 726", lin.Score)
	}
	// Quasi-natural affine optimum under BLOSUM62 (-11/-1).
	aff, err := Align(tr, Options{Algorithm: AlgorithmAffine})
	if err != nil {
		t.Fatal(err)
	}
	if aff.Score != 590 {
		t.Fatalf("golden protein affine optimum = %d, want 590", aff.Score)
	}
	if got, err := Align(tr, Options{Algorithm: AlgorithmAffineLinear}); err != nil || got.Score != 590 {
		t.Fatalf("affine-linear golden = %v/%v, want 590", got, err)
	}
}

func TestGoldenHeuristicsBounded(t *testing.T) {
	tr := loadTriple(t, "testdata/triple_dna_40.fasta", DNA)
	for _, algo := range []Algorithm{AlgorithmCenterStar, AlgorithmCenterStarRefined, AlgorithmProgressive} {
		r, err := Align(tr, Options{Algorithm: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if r.Score > 102 {
			t.Fatalf("%s = %d beats the optimum 102", algo, r.Score)
		}
	}
}

package repro

import (
	"context"
	"testing"

	"repro/internal/msa"
)

func msaFamily(seed int64, count, length int, sub float64) []*Sequence {
	g := NewGenerator(DNA, seed)
	return g.RelatedFamily(count, length, MutationModel{
		SubstitutionRate: sub, InsertionRate: sub / 4, DeletionRate: sub / 4,
	})
}

func TestAlignMsaEndToEnd(t *testing.T) {
	for n := 2; n <= 8; n++ {
		fam := msaFamily(int64(100+n), n, 30, 0.15)
		res, err := AlignMSA(context.Background(), fam, MSAOptions{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Profile.NumRows() != n {
			t.Fatalf("n=%d: %d rows", n, res.Profile.NumRows())
		}
		if err := res.Profile.Validate(); err != nil {
			t.Fatalf("n=%d: invalid profile: %v", n, err)
		}
		for i, s := range res.Profile.Seqs {
			if s != fam[i] {
				t.Fatalf("n=%d: row %d is %q, want input order", n, i, s.Name())
			}
		}
		if got := res.Profile.SPScoreFor(DefaultSchemeMust(t)); got != res.Score {
			t.Fatalf("n=%d: reported score %d, recomputed %d", n, res.Score, got)
		}
		if res.OptimalityGap < 0 {
			t.Fatalf("n=%d: score %d beats Carrillo-Lipman bound %d", n, res.Score, res.UpperBound)
		}
		if res.Tree == nil || res.Tree.NumLeaves() != n {
			t.Fatalf("n=%d: missing or wrong guide tree", n)
		}
		if len(res.Merges) == 0 {
			t.Fatalf("n=%d: no merges recorded", n)
		}
	}
}

func DefaultSchemeMust(t *testing.T) *Scheme {
	t.Helper()
	sch, err := DefaultScheme(DNA)
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func TestAlignMsaTripleBitIdenticalToAlign(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := NewGenerator(DNA, 200+seed)
		tr := g.RelatedTriple(25+int(seed)*7, MutationModel{SubstitutionRate: 0.2, InsertionRate: 0.05, DeletionRate: 0.05})
		direct, err := Align(tr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := AlignMSA(context.Background(), []*Sequence{tr.A, tr.B, tr.C}, MSAOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Score != direct.Score {
			t.Fatalf("seed %d: msa score %d, align score %d", seed, res.Score, direct.Score)
		}
		wantRows := direct.Alignment.Multi().RowStrings()
		gotRows := res.Profile.RowStrings()
		for i := range wantRows {
			if gotRows[i] != wantRows[i] {
				t.Fatalf("seed %d: msa row %d differs from align:\n%s\n%s", seed, i, gotRows[i], wantRows[i])
			}
		}
	}
}

// TestAlignMsaBeatsCenterStarSuite is the committed property suite: over
// 20+ random 4-8 sequence families the 3-way-core progressive result never
// scores below the pairwise center-star baseline it replaced.
func TestAlignMsaBeatsCenterStarSuite(t *testing.T) {
	sch := DefaultSchemeMust(t)
	families := 0
	for seed := int64(0); seed < 22; seed++ {
		n := 4 + int(seed)%5 // 4..8
		fam := msaFamily(300+seed, n, 24+int(seed%4)*8, 0.25)
		res, err := AlignMSA(context.Background(), fam, MSAOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cs, err := msa.CenterStarN(fam, sch)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Score < cs.Score {
			t.Fatalf("seed %d (n=%d): progressive %d below center-star %d", seed, n, res.Score, cs.Score)
		}
		if res.CenterStarScore != cs.Score {
			t.Fatalf("seed %d: recorded baseline %d, recomputed %d", seed, res.CenterStarScore, cs.Score)
		}
		families++
	}
	if families < 20 {
		t.Fatalf("suite covered only %d families", families)
	}
}

// TestAlignMsaMergesRunThroughBatchPath pins the scheduler wiring: a family
// whose first guide-tree level holds two independent triples must fan them
// through one AlignBatchItemsContext submission (BatchSize > 1), and the
// serial knob must produce the same alignment without the batch path.
func TestAlignMsaMergesRunThroughBatchPath(t *testing.T) {
	fam := msaFamily(77, 6, 40, 0.2)
	fanned, err := AlignMSA(context.Background(), fam, MSAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fanned.BatchedMerges < 2 {
		t.Fatalf("BatchedMerges = %d, want >= 2 for a 6-sequence family", fanned.BatchedMerges)
	}
	sawBatch := false
	for _, m := range fanned.Merges {
		if m.NWay == 3 && m.BatchSize > 1 {
			sawBatch = true
		}
	}
	if !sawBatch {
		t.Fatal("no 3-way merge recorded a shared batch submission")
	}
	serial, err := AlignMSA(context.Background(), fam, MSAOptions{SerialMerges: true})
	if err != nil {
		t.Fatal(err)
	}
	if serial.BatchedMerges != 0 {
		t.Fatalf("serial run recorded %d batched merges", serial.BatchedMerges)
	}
	if serial.Score != fanned.Score {
		t.Fatalf("serial score %d != fanned score %d", serial.Score, fanned.Score)
	}
}

func TestAlignMsaBudgetSplit(t *testing.T) {
	fam := msaFamily(91, 6, 60, 0.2)
	res, err := AlignMSA(context.Background(), fam, MSAOptions{
		Options: Options{MaxMemoryBytes: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Profile.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every 3-way merge planned under a slice of the request budget.
	for _, m := range res.Merges {
		if m.NWay == 3 && m.Plan == nil {
			t.Fatalf("merge %v has no plan", m.Members)
		}
	}
}

func TestAlignMsaRejectsBadInput(t *testing.T) {
	g := NewGenerator(DNA, 5)
	one := []*Sequence{g.Random("a", 10)}
	if _, err := AlignMSA(context.Background(), one, MSAOptions{}); err == nil {
		t.Fatal("single sequence accepted")
	}
	if _, err := AlignMSA(context.Background(), nil, MSAOptions{}); err == nil {
		t.Fatal("empty family accepted")
	}
	p := NewGenerator(Protein, 6)
	mixed := []*Sequence{g.Random("a", 10), p.Random("b", 10)}
	if _, err := AlignMSA(context.Background(), mixed, MSAOptions{}); err == nil {
		t.Fatal("mixed alphabets accepted")
	}
}

func TestAlignMsaCancelled(t *testing.T) {
	fam := msaFamily(13, 6, 30, 0.2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AlignMSA(ctx, fam, MSAOptions{}); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

func TestPlanMsaShape(t *testing.T) {
	fam := msaFamily(23, 7, 50, 0.2)
	mp, err := PlanMSA(fam, MSAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mp.NumSequences != 7 {
		t.Fatalf("NumSequences = %d", mp.NumSequences)
	}
	if len(mp.Merges) != mp.Tree.NumMerges() {
		t.Fatalf("%d merge plans for %d scheduled merges", len(mp.Merges), mp.Tree.NumMerges())
	}
	if mp.PeakLevelBytes == 0 || mp.TotalEstCells == 0 {
		t.Fatalf("empty estimates: %+v", mp)
	}
	for _, m := range mp.Merges {
		if m.NWay == 3 && m.Plan == nil {
			t.Fatalf("3-way merge %v without a plan", m.Members)
		}
		if m.EstBytes == 0 {
			t.Fatalf("merge %v has no byte estimate", m.Members)
		}
	}
}

func TestAlignMsaAffineScheme(t *testing.T) {
	g := NewGenerator(Protein, 31)
	fam := g.RelatedFamily(5, 25, MutationModel{SubstitutionRate: 0.2, InsertionRate: 0.05, DeletionRate: 0.05})
	res, err := AlignMSA(context.Background(), fam, MSAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Profile.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.OptimalityGap < 0 {
		t.Fatalf("affine score %d beats bound %d", res.Score, res.UpperBound)
	}
}

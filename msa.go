package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/msa"
	"repro/internal/pairwise"
	"repro/internal/seq"
)

// MultiAlignment is a scored N-row multiple sequence alignment — the
// generalization of the three-row Alignment (see alignment.Multi).
type MultiAlignment = alignment.Multi

// GuideTree is the progressive-merge schedule AlignMSA follows: levels of
// independent 2- and 3-way cluster merges ending in one root.
type GuideTree = msa.GuideTree

// MaxMSASequences is the largest family AlignMSA accepts (one row bit per
// sequence in the profile column masks).
const MaxMSASequences = alignment.MaxRows

// WriteAlignedFASTAMulti writes an N-row profile as gapped FASTA wrapped
// at width columns per line.
func WriteAlignedFASTAMulti(w io.Writer, m *MultiAlignment, width int) error {
	return alignment.WriteAlignedFASTAMulti(w, m, width)
}

// MSAOptions configures AlignMSA. The embedded Options flow into every
// 3-way merge: Algorithm, Workers, MaxBytes, Fallback, and Scheme mean what
// they mean for Align. Two fields change meaning at the MSA level:
// Deadline bounds the whole progressive run, not one merge, and
// MaxMemoryBytes is a request-level budget split across each level's
// concurrent merges in proportion to the planner's byte estimates.
type MSAOptions struct {
	Options
	// GuideK is the k-mer size for guide-tree distances; non-positive
	// selects the facade's ProbeK.
	GuideK int
	// RefineRounds bounds the final iterative-refinement polish for N ≥ 4
	// families: 0 means a small default, negative disables refinement.
	// Exact results (N ≤ 3) are never refined.
	RefineRounds int
	// SerialMerges disables fanning a level's independent merges through
	// the batch layer; each merge runs alone, in schedule order. This is a
	// benchmarking and debugging knob — the batch path is the default.
	SerialMerges bool
}

// MergeInfo records one progressive merge of an AlignMSA run.
type MergeInfo struct {
	// Level is the 1-based guide-tree level the merge ran in.
	Level int
	// Members are the merged cluster IDs; Out is the resulting cluster.
	Members []int
	Out     int
	// NWay is 3 for exact 3-way merges, 2 for leftover pair merges.
	NWay int
	// Algorithm and Plan describe the 3-way kernel run (zero/nil for 2-way
	// merges, which use the pairwise aligner).
	Algorithm Algorithm
	Plan      *Plan
	// BatchSize is how many merges shared the batch submission this merge
	// ran in: >1 proves the level was fanned through the batch LPT path.
	BatchSize int
	// Elapsed is the wall-clock time of the merge's batch or serial run.
	Elapsed time.Duration
	// Degraded reports the 3-way merge fell back to the heuristic.
	Degraded bool
}

// MSAResult is a completed N-sequence multiple alignment plus execution
// metadata.
type MSAResult struct {
	// Profile is the final alignment; rows are in input-sequence order.
	Profile *MultiAlignment
	// Score is the scheme's sum-of-pairs objective of Profile.
	Score mat.Score
	// UpperBound is the Carrillo–Lipman sum-of-pairs bound: the sum of the
	// optimal pairwise scores over all sequence pairs. No multiple
	// alignment can beat it, so Score ≤ UpperBound always.
	UpperBound mat.Score
	// OptimalityGap is UpperBound − Score: 0 certifies optimality, small
	// values bound how far the progressive result can be from optimal.
	OptimalityGap mat.Score
	// Tree is the guide tree the merges followed.
	Tree *GuideTree
	// Merges records every progressive merge in execution order.
	Merges []MergeInfo
	// BatchedMerges counts merges that ran through a shared batch
	// submission (BatchSize > 1).
	BatchedMerges int
	// CenterStarScore is the N-way center-star baseline's score; AlignMSA
	// returns whichever of progressive/center-star scores better, so
	// Score ≥ CenterStarScore for N ≥ 4.
	CenterStarScore mat.Score
	// Elapsed is the wall-clock time of the whole MSA.
	Elapsed time.Duration
	// Degraded reports that at least one exact 3-way merge degraded to the
	// heuristic fallback (deadline or memory pressure).
	Degraded bool
}

// validateMSAInput checks the family shape shared by AlignMSA and PlanMSA.
func validateMSAInput(seqs []*Sequence) error {
	if len(seqs) < 2 {
		return fmt.Errorf("repro: msa needs at least 2 sequences, have %d", len(seqs))
	}
	if len(seqs) > MaxMSASequences {
		return fmt.Errorf("repro: msa accepts at most %d sequences, have %d", MaxMSASequences, len(seqs))
	}
	for i, s := range seqs {
		if s == nil || s.Len() == 0 {
			return fmt.Errorf("repro: msa sequence %d is empty", i)
		}
		if s.Alphabet() != seqs[0].Alphabet() {
			return fmt.Errorf("repro: msa mixes alphabets %s/%s",
				seqs[0].Alphabet().Name(), s.Alphabet().Name())
		}
	}
	return nil
}

func resolveMSAScheme(seqs []*Sequence, opt MSAOptions) (*Scheme, error) {
	if opt.Scheme != nil {
		return opt.Scheme, nil
	}
	return DefaultScheme(seqs[0].Alphabet())
}

// pairOptimal is the optimal pairwise score under the scheme's own gap
// model — the per-pair term of the Carrillo–Lipman bound.
func pairOptimal(a, b []int8, sch *Scheme) mat.Score {
	if sch.Affine() {
		return pairwise.GlobalAffine(a, b, sch).Score
	}
	return pairwise.GlobalScore(a, b, sch)
}

// sumOfPairsBound is the Carrillo–Lipman upper bound: sum of optimal
// pairwise scores over all pairs.
func sumOfPairsBound(seqs []*Sequence, sch *Scheme) mat.Score {
	codes := make([][]int8, len(seqs))
	for i, s := range seqs {
		codes[i] = s.Codes()
	}
	var total mat.Score
	for i := range codes {
		for j := i + 1; j < len(codes); j++ {
			total += pairOptimal(codes[i], codes[j], sch)
		}
	}
	return total
}

// AlignMSA aligns N sequences (2 ≤ N ≤ MaxMSASequences) progressively:
// a k-mer guide tree groups clusters into triples, each triple's profile
// consensus rows run through the exact 3-way engine (so every merge is an
// optimal three-way alignment, not a pairwise one), and profiles stitch
// under "once a gap, always a gap" at profile boundaries. Independent
// merges within a guide-tree level fan through the batch layer's LPT
// scheduling unless MSAOptions.SerialMerges is set. N=3 runs the exact
// 3-way engine directly and is bit-identical to AlignContext on the same
// triple; N=2 is an optimal pairwise alignment. For N ≥ 4 the result never
// scores below the N-way center-star baseline and is polished by bounded
// iterative refinement.
func AlignMSA(ctx context.Context, seqs []*Sequence, opt MSAOptions) (*MSAResult, error) {
	start := time.Now()
	if err := validateMSAInput(seqs); err != nil {
		return nil, err
	}
	sch, err := resolveMSAScheme(seqs, opt)
	if err != nil {
		return nil, err
	}
	if opt.Scheme == nil {
		opt.Scheme = sch
	}
	// One deadline for the whole progressive run: merges share the clock
	// instead of each restarting it.
	if opt.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Deadline)
		defer cancel()
		opt.Deadline = 0
	}
	guideK := opt.GuideK
	if guideK <= 0 {
		guideK = ProbeK
	}
	tree, err := msa.BuildGuideTree(seqs, guideK)
	if err != nil {
		return nil, err
	}
	res := &MSAResult{Tree: tree}

	if len(seqs) == 3 {
		// Exact path: bit-identical to AlignContext on the same triple.
		tr := Triple{A: seqs[0], B: seqs[1], C: seqs[2]}
		r, err := AlignContext(ctx, tr, opt.Options)
		if err != nil {
			return nil, err
		}
		res.Profile = r.Alignment.Multi()
		res.Score = r.Score
		res.Merges = []MergeInfo{{
			Level: 1, Members: []int{0, 1, 2}, Out: 3, NWay: 3,
			Algorithm: r.Algorithm, Plan: r.Plan, BatchSize: 1,
			Elapsed: r.Elapsed, Degraded: r.Degraded,
		}}
		res.Degraded = r.Degraded
		res.UpperBound = sumOfPairsBound(seqs, sch)
		res.OptimalityGap = res.UpperBound - res.Score
		res.CenterStarScore = res.Score
		res.Elapsed = time.Since(start)
		return res, nil
	}

	profiles := map[int]*alignment.Multi{}
	leafOrder := map[int][]int{}
	for i, s := range seqs {
		profiles[i] = alignment.NewLeaf(s)
		leafOrder[i] = []int{i}
	}
	for li, lv := range tree.Levels {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var triples []msa.Group
		var pairs []msa.Group
		for _, g := range lv.Groups {
			if len(g.Members) == 3 {
				triples = append(triples, g)
			} else {
				pairs = append(pairs, g)
			}
		}
		if len(triples) > 0 {
			items := make([]BatchItem, len(triples))
			for gi, g := range triples {
				cons := make([]*Sequence, 3)
				for mi, m := range g.Members {
					cons[mi] = profiles[m].ConsensusSeq(fmt.Sprintf("c%d", m))
				}
				items[gi] = BatchItem{
					Triple: Triple{A: cons[0], B: cons[1], C: cons[2]},
					Opt:    opt.Options,
				}
			}
			splitMergeBudget(items, opt.MaxMemoryBytes)
			levelStart := time.Now()
			var results []BatchResult
			batchSize := len(items)
			if opt.SerialMerges || len(items) == 1 {
				batchSize = 1
				results = make([]BatchResult, len(items))
				for ii, it := range items {
					r, err := AlignContext(ctx, it.Triple, it.Opt)
					results[ii] = BatchResult{Index: ii, Result: r, Err: err}
				}
			} else {
				results = AlignBatchItemsContext(ctx, items)
				res.BatchedMerges += len(items)
			}
			levelElapsed := time.Since(levelStart)
			for gi, g := range triples {
				br := results[gi]
				if br.Err != nil {
					return nil, fmt.Errorf("repro: msa merge %v at level %d: %w", g.Members, li+1, br.Err)
				}
				parts := make([]*alignment.Multi, 3)
				var order []int
				for mi, m := range g.Members {
					parts[mi] = profiles[m]
					order = append(order, leafOrder[m]...)
				}
				merged, err := msa.MergeParts(parts, msa.OuterMasksFromMoves(br.Result.Alignment.Moves))
				if err != nil {
					return nil, fmt.Errorf("repro: msa merge %v at level %d: %w", g.Members, li+1, err)
				}
				profiles[g.Out] = merged
				leafOrder[g.Out] = order
				res.Merges = append(res.Merges, MergeInfo{
					Level: li + 1, Members: g.Members, Out: g.Out, NWay: 3,
					Algorithm: br.Result.Algorithm, Plan: br.Result.Plan,
					BatchSize: batchSize, Elapsed: levelElapsed,
					Degraded: br.Result.Degraded,
				})
				if br.Result.Degraded {
					res.Degraded = true
				}
			}
		}
		for _, g := range pairs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			mergeStart := time.Now()
			merged, err := msa.MergePair(profiles[g.Members[0]], profiles[g.Members[1]], sch)
			if err != nil {
				return nil, fmt.Errorf("repro: msa merge %v at level %d: %w", g.Members, li+1, err)
			}
			profiles[g.Out] = merged
			leafOrder[g.Out] = append(append([]int(nil), leafOrder[g.Members[0]]...), leafOrder[g.Members[1]]...)
			res.Merges = append(res.Merges, MergeInfo{
				Level: li + 1, Members: g.Members, Out: g.Out, NWay: 2,
				BatchSize: 1, Elapsed: time.Since(mergeStart),
			})
		}
	}

	prog := profiles[tree.Root]
	// Restore input row order: row i of the final profile must be seqs[i].
	order := leafOrder[tree.Root]
	posOf := make([]int, len(seqs))
	for pos, leaf := range order {
		posOf[leaf] = pos
	}
	prog, err = prog.Reorder(posOf)
	if err != nil {
		return nil, err
	}
	prog.Score = prog.SPScoreFor(sch)

	if len(seqs) >= 4 {
		// The progressive result must never lose to the center-star
		// baseline it replaced; keep whichever scores better.
		cs, err := msa.CenterStarN(seqs, sch)
		if err != nil {
			return nil, err
		}
		res.CenterStarScore = cs.Score
		if cs.Score > prog.Score {
			prog = cs
		}
		rounds := opt.RefineRounds
		if rounds == 0 {
			rounds = 2
		}
		if rounds > 0 {
			refined, err := msa.RefineMultiContext(ctx, prog, sch, rounds)
			switch {
			case err == nil:
				prog = refined
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				// Refinement is polish; keep the unrefined profile.
			default:
				return nil, err
			}
		}
	} else {
		res.CenterStarScore = prog.Score
	}

	res.Profile = prog
	res.Score = prog.Score
	res.UpperBound = sumOfPairsBound(seqs, sch)
	res.OptimalityGap = res.UpperBound - res.Score
	res.Elapsed = time.Since(start)
	return res, nil
}

// splitMergeBudget divides a request-level soft memory budget across a
// level's concurrent merges in proportion to the planner's byte estimates
// for the unbudgeted requests. Merges the planner cannot estimate fall back
// to an even share.
func splitMergeBudget(items []BatchItem, budget int64) {
	if budget <= 0 || len(items) == 0 {
		return
	}
	if len(items) == 1 {
		items[0].Opt.MaxMemoryBytes = budget
		return
	}
	est := make([]int64, len(items))
	var total int64
	for i, it := range items {
		free := it.Opt
		free.MaxMemoryBytes = 0
		if pl, err := PlanAlign(it.Triple, free); err == nil && pl.EstBytes > 0 {
			est[i] = int64(pl.EstBytes)
		} else {
			est[i] = 1
		}
		total += est[i]
	}
	for i := range items {
		share := budget * est[i] / total
		if min := budget / int64(2*len(items)); share < min {
			// Floor: a tiny merge still gets a usable slice of the budget.
			share = min
		}
		items[i].Opt.MaxMemoryBytes = share
	}
}

// MSAMergePlan is the planner's estimate for one progressive merge.
type MSAMergePlan struct {
	Level   int   `json:"level"`
	Members []int `json:"members"`
	Out     int   `json:"out"`
	NWay    int   `json:"n_way"`
	// Plan is the 3-way execution plan over the estimated consensus
	// lengths; nil for 2-way merges.
	Plan *Plan `json:"plan,omitempty"`
	// EstBytes is the merge's predicted peak allocation (the Plan's
	// estimate for 3-way merges, the pairwise DP footprint for 2-way).
	EstBytes uint64 `json:"est_bytes"`
}

// MSAPlan is a dry-run of AlignMSA: the guide tree, a per-merge execution
// plan over estimated consensus lengths, and the peak concurrent footprint
// the serving layer admits by. Estimates, not guarantees: a real merge's
// consensus can be somewhat longer than the estimate when profiles gap
// heavily.
type MSAPlan struct {
	NumSequences int            `json:"num_sequences"`
	Tree         *GuideTree     `json:"-"`
	Merges       []MSAMergePlan `json:"merges"`
	// PeakLevelBytes is the largest summed EstBytes of any one level — the
	// peak concurrent footprint when levels fan through the batch layer.
	PeakLevelBytes uint64 `json:"peak_level_bytes"`
	// TotalEstCells sums the 3-way merges' predicted DP cells.
	TotalEstCells uint64 `json:"total_est_cells"`
}

// PlanMSA plans an AlignMSA run without aligning. Consensus rows of future
// profiles are estimated at the longest member's length, with residues
// cycled from the cluster's first leaf.
func PlanMSA(seqs []*Sequence, opt MSAOptions) (*MSAPlan, error) {
	if err := validateMSAInput(seqs); err != nil {
		return nil, err
	}
	sch, err := resolveMSAScheme(seqs, opt)
	if err != nil {
		return nil, err
	}
	if opt.Scheme == nil {
		opt.Scheme = sch
	}
	guideK := opt.GuideK
	if guideK <= 0 {
		guideK = ProbeK
	}
	tree, err := msa.BuildGuideTree(seqs, guideK)
	if err != nil {
		return nil, err
	}
	mp := &MSAPlan{NumSequences: len(seqs), Tree: tree}

	// Estimated consensus sequence per cluster: leaves are themselves;
	// merged clusters reuse the first leaf's residues cycled to the longest
	// member's length.
	est := map[int]*Sequence{}
	for i, s := range seqs {
		est[i] = s
	}
	firstLeaf := map[int]*Sequence{}
	for i, s := range seqs {
		firstLeaf[i] = s
	}
	cycled := func(src *Sequence, n int) *Sequence {
		res := src.String()
		for len(res) < n {
			res += src.String()
		}
		s, err := seq.New("p", []byte(res[:n]), src.Alphabet())
		if err != nil {
			// Unreachable: residues come from a validated sequence.
			panic(fmt.Sprintf("repro: plan consensus rejected: %v", err))
		}
		return s
	}
	pairBytes := func(la, lb int) uint64 {
		planes := uint64(1)
		if sch.Affine() {
			planes = 3
		}
		return planes * uint64(la+1) * uint64(lb+1) * 4
	}
	for li, lv := range tree.Levels {
		var levelBytes uint64
		for _, g := range lv.Groups {
			maxLen := 0
			for _, m := range g.Members {
				if est[m].Len() > maxLen {
					maxLen = est[m].Len()
				}
			}
			merge := MSAMergePlan{Level: li + 1, Members: g.Members, Out: g.Out, NWay: len(g.Members)}
			if len(g.Members) == 3 {
				tr := Triple{
					A: est[g.Members[0]],
					B: est[g.Members[1]],
					C: est[g.Members[2]],
				}
				pl, err := PlanAlign(tr, opt.Options)
				if err != nil {
					return nil, fmt.Errorf("repro: planning msa merge %v: %w", g.Members, err)
				}
				merge.Plan = pl
				merge.EstBytes = pl.EstBytes
				mp.TotalEstCells += pl.EstCells
			} else {
				merge.EstBytes = pairBytes(est[g.Members[0]].Len(), est[g.Members[1]].Len())
			}
			levelBytes += merge.EstBytes
			mp.Merges = append(mp.Merges, merge)
			est[g.Out] = cycled(firstLeaf[g.Members[0]], maxLen)
			firstLeaf[g.Out] = firstLeaf[g.Members[0]]
		}
		if levelBytes > mp.PeakLevelBytes {
			mp.PeakLevelBytes = levelBytes
		}
	}
	return mp, nil
}

package repro

import (
	"errors"
	"testing"

	"repro/internal/faultpoint"
	"repro/internal/wavefront"
)

// The library-level chaos suite: with the core.fill.block fault point
// panicking inside kernel block fills, the public API must contain the
// blast — a typed error from the faulted call, exact results everywhere
// else, and an arena healthy enough that the very next alignment is
// correct.

func chaosTriple(t *testing.T, seed int64, n int) Triple {
	t.Helper()
	g := NewGenerator(DNA, seed)
	return g.RelatedTriple(n, MutationModel{SubstitutionRate: 0.2, InsertionRate: 0.03, DeletionRate: 0.03})
}

// TestChaosFillPanicContainedParallel injects one block-fill panic into a
// parallel run: Align must return the contained panic as an error, and the
// immediately following (fault spent) alignment must be exact.
func TestChaosFillPanicContainedParallel(t *testing.T) {
	tr := chaosTriple(t, 31, 96)
	want, err := Align(tr, Options{Algorithm: AlgorithmParallel, Workers: 4})
	if err != nil {
		t.Fatalf("baseline align: %v", err)
	}

	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Arm("core.fill.block", "nth:2"); err != nil {
		t.Fatal(err)
	}
	_, err = Align(tr, Options{Algorithm: AlgorithmParallel, Workers: 4})
	if err == nil {
		t.Fatal("injected fill panic produced no error")
	}
	if !wavefront.IsPanic(err) {
		t.Fatalf("err = %v, want a contained *wavefront.PanicError", err)
	}

	res, err := Align(tr, Options{Algorithm: AlgorithmParallel, Workers: 4})
	if err != nil {
		t.Fatalf("align after contained panic: %v", err)
	}
	if res.Score != want.Score {
		t.Fatalf("score after contained panic = %d, want %d (arena corrupted?)", res.Score, want.Score)
	}
}

// TestChaosBatchFaultsNoLostItems runs a heterogeneous batch with periodic
// fill panics: every submitted item must come back exactly once, in order,
// either failed with an error or with the exact fault-free score — never
// silently dropped, duplicated, or wrong.
func TestChaosBatchFaultsNoLostItems(t *testing.T) {
	const n = 12
	triples := make([]Triple, n)
	wants := make([]int32, n)
	for i := range triples {
		triples[i] = chaosTriple(t, int64(100+i), 40)
		res, err := Align(triples[i], Options{Workers: 1})
		if err != nil {
			t.Fatalf("baseline %d: %v", i, err)
		}
		wants[i] = res.Score
	}

	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Arm("core.fill.block", "every:4"); err != nil {
		t.Fatal(err)
	}
	results := AlignBatch(triples, Options{Workers: 4})
	if len(results) != n {
		t.Fatalf("batch returned %d results for %d items", len(results), n)
	}
	var failed, succeeded int
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d carries index %d: batch order lost", i, r.Index)
		}
		if r.Err != nil {
			failed++
			continue
		}
		if r.Result == nil {
			t.Fatalf("item %d: no error and no result", i)
		}
		if r.Result.Score != wants[i] {
			t.Fatalf("item %d score = %d, want %d: fault corrupted a surviving item", i, r.Result.Score, wants[i])
		}
		succeeded++
	}
	if failed == 0 {
		t.Fatal("every:4 fill fault failed no batch item")
	}
	if hits, fired := faultpoint.Stats("core.fill.block"); fired == 0 {
		t.Fatalf("fill fault never fired (hits=%d)", hits)
	}
	t.Logf("batch under faults: %d failed, %d exact", failed, succeeded)

	// The arena survives the contained panics: disarm and re-align every
	// triple exactly.
	faultpoint.Reset()
	for i, r := range AlignBatch(triples, Options{Workers: 4}) {
		if r.Err != nil {
			t.Fatalf("post-chaos item %d: %v", i, r.Err)
		}
		if r.Result.Score != wants[i] {
			t.Fatalf("post-chaos item %d score = %d, want %d", i, r.Result.Score, wants[i])
		}
	}
}

// TestStalledFacade pins the public aliases: a wavefront stall surfaces
// through the repro facade as ErrStalled / StallError.
func TestStalledFacade(t *testing.T) {
	if !errors.Is(ErrStalled, wavefront.ErrStalled) {
		t.Fatal("repro.ErrStalled is not wavefront.ErrStalled")
	}
	var se *StallError
	err := error(&wavefront.StallError{Completed: 1, Total: 2})
	if !errors.As(err, &se) || !errors.Is(err, ErrStalled) {
		t.Fatal("StallError alias does not unwrap to ErrStalled through the facade")
	}
}

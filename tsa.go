package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/alignment"
	"repro/internal/core"
	"repro/internal/msa"
	"repro/internal/plan"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/wavefront"
)

// Re-exported substrate types. The aliases make the internal implementation
// types usable through the public facade.
type (
	// Sequence is a named, validated residue string over a fixed alphabet.
	Sequence = seq.Sequence
	// Alphabet is a residue alphabet (DNA, RNA, Protein, or custom).
	Alphabet = seq.Alphabet
	// Triple bundles the three sequences of a three-way alignment.
	Triple = seq.Triple
	// Scheme is a substitution-plus-gap scoring scheme.
	Scheme = scoring.Scheme
	// Alignment is a scored three-row alignment.
	Alignment = alignment.Alignment
	// AlignmentStats summarizes alignment conservation.
	AlignmentStats = alignment.Stats
	// PruneStats reports Carrillo–Lipman pruning effectiveness.
	PruneStats = core.PruneStats
	// MutationModel controls the synthetic-workload generator.
	MutationModel = seq.MutationModel
	// Generator produces deterministic synthetic sequences.
	Generator = seq.Generator
	// Plan is the execution plan the memory-aware planner resolves for a
	// request: the kernel that will run, its tile shape and worker count,
	// and the predicted cells, bytes, and duration. Every successful Result
	// carries the plan that produced it, and PlanAlign returns one without
	// aligning.
	Plan = plan.ExecutionPlan
	// TripleSketch is a per-sequence k-mer sketch of a triple (see
	// SketchTriple): the shared identity-probe input behind the planner's
	// bounded-search estimate and the serving layer's near-duplicate
	// prescreen.
	TripleSketch = seq.TripleSketch
)

// Standard alphabets.
var (
	DNA     = seq.DNA
	RNA     = seq.RNA
	Protein = seq.Protein
)

// ErrTooLarge is returned when an alignment would exceed Options.MaxBytes.
var ErrTooLarge = core.ErrTooLarge

// ErrStalled is returned (wrapped in a *wavefront.StallError) when the
// scheduler's watchdog cancelled a parallel run because no wavefront block
// was retired within the stall budget — a wedged worker, not a slow one.
// Check with errors.Is; callers that want the completed/total block counts
// can errors.As into *StallError.
var ErrStalled = wavefront.ErrStalled

// StallError is the concrete error behind ErrStalled; see
// wavefront.StallError.
type StallError = wavefront.StallError

// Algorithm selects the alignment strategy.
type Algorithm string

// The available algorithms. Every linear-gap kernel through AlgorithmAStar
// is exact (identical optimal linear-gap SP scores); the affine kernels are
// exact under the affine objective; the last three are fast heuristics.
const (
	// AlgorithmAuto matches the scheme's gap model: AlgorithmParallelPacked
	// for linear gaps or AlgorithmAffineParallel for affine schemes, falling
	// back to the corresponding linear-space variant when the lattice
	// would exceed MaxBytes.
	AlgorithmAuto Algorithm = ""
	// AlgorithmFull is the sequential full-matrix 3D dynamic program.
	AlgorithmFull Algorithm = "full"
	// AlgorithmFullPacked is AlgorithmFull with the lane-packed interior:
	// the innermost k-lane runs a vectorized two-pass max-plus scan (AVX2
	// where available, unrolled bounds-check-free Go elsewhere) and honors
	// the planner's negotiated 16-bit cell width. Same lattice, same
	// optimum, several times the sequential throughput.
	AlgorithmFullPacked Algorithm = "full-packed"
	// AlgorithmParallel is the paper's blocked-wavefront parallel algorithm.
	AlgorithmParallel Algorithm = "parallel"
	// AlgorithmParallelPacked is AlgorithmParallel with the lane-packed
	// interior filling each wavefront tile.
	AlgorithmParallelPacked Algorithm = "parallel-packed"
	// AlgorithmLinear is the sequential linear-space divide-and-conquer.
	AlgorithmLinear Algorithm = "linear"
	// AlgorithmParallelLinear combines linear space with parallel plane sweeps.
	AlgorithmParallelLinear Algorithm = "parallel-linear"
	// AlgorithmDiagonal is the plane-synchronized (anti-diagonal) parallel
	// wavefront — the classic cell-level formulation the blocked schedule
	// is compared against.
	AlgorithmDiagonal Algorithm = "diagonal"
	// AlgorithmPruned restricts the full matrix to the Carrillo–Lipman
	// admissible region, using the center-star score as the lower bound.
	AlgorithmPruned Algorithm = "pruned"
	// AlgorithmPrunedParallel combines Carrillo–Lipman pruning with the
	// blocked-wavefront parallel schedule.
	AlgorithmPrunedParallel Algorithm = "pruned-parallel"
	// AlgorithmBounded is true Carrillo–Lipman bounded search: it allocates
	// only the admissible band (memory scales with the cells the bound
	// admits, not the lattice), so exact alignment of similar triples runs
	// far past the full-matrix memory ceiling. Exact, with the same
	// preference-ordered traceback as AlgorithmFull.
	AlgorithmBounded Algorithm = "bounded"
	// AlgorithmAStar is the best-first (A*) frontier variant of bounded
	// search: no lattice-shaped allocation at all, memory per expanded
	// node. The kernel of choice for very similar triples whose admissible
	// region is a thin tube. Exact.
	AlgorithmAStar Algorithm = "astar"
	// AlgorithmAffine optimizes the quasi-natural affine SP objective.
	AlgorithmAffine Algorithm = "affine"
	// AlgorithmAffineLinear is AlgorithmAffine in O(m·p) working memory
	// (the 7-state divide-and-conquer).
	AlgorithmAffineLinear Algorithm = "affine-linear"
	// AlgorithmAffineParallel is AlgorithmAffine under the blocked-wavefront
	// parallel schedule.
	AlgorithmAffineParallel Algorithm = "affine-parallel"
	// AlgorithmCenterStar is the center-star heuristic (not optimal).
	AlgorithmCenterStar Algorithm = "center-star"
	// AlgorithmCenterStarRefined is center-star followed by iterative
	// refinement (not optimal, but the strongest heuristic here).
	AlgorithmCenterStarRefined Algorithm = "center-star-refined"
	// AlgorithmProgressive is the progressive profile heuristic (not optimal).
	AlgorithmProgressive Algorithm = "progressive"
)

// Algorithms lists every accepted Algorithm value (excluding Auto).
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgorithmFull, AlgorithmFullPacked, AlgorithmParallel, AlgorithmParallelPacked,
		AlgorithmLinear, AlgorithmParallelLinear,
		AlgorithmDiagonal, AlgorithmPruned, AlgorithmPrunedParallel,
		AlgorithmBounded, AlgorithmAStar,
		AlgorithmAffine, AlgorithmAffineLinear, AlgorithmAffineParallel,
		AlgorithmCenterStar, AlgorithmCenterStarRefined, AlgorithmProgressive,
	}
}

// ParseAlgorithm validates a user-supplied algorithm name. The empty string
// is AlgorithmAuto; anything else must be one of Algorithms(). It is the
// boundary check for servers and CLIs that accept the name over the wire —
// Align itself reports an unknown algorithm only after resolving schemes
// and options.
func ParseAlgorithm(name string) (Algorithm, error) {
	a := Algorithm(name)
	if a == AlgorithmAuto {
		return a, nil
	}
	for _, known := range Algorithms() {
		if a == known {
			return a, nil
		}
	}
	return "", fmt.Errorf("repro: unknown algorithm %q", name)
}

// AlphabetByName resolves a standard alphabet by its lower-case name:
// "dna", "rna", or "protein".
func AlphabetByName(name string) (*Alphabet, bool) {
	switch name {
	case "dna":
		return seq.DNA, true
	case "rna":
		return seq.RNA, true
	case "protein":
		return seq.Protein, true
	}
	return nil, false
}

// Options configures Align. The zero value aligns with the parallel exact
// algorithm under a default scheme for the triple's alphabet.
type Options struct {
	// Algorithm selects the strategy; AlgorithmAuto by default.
	Algorithm Algorithm
	// Scheme overrides the scoring scheme. Defaults: +2/−1 with −2 linear
	// gaps for DNA/RNA, BLOSUM62 (with its affine gaps) for protein.
	Scheme *Scheme
	// Workers is the goroutine pool size for parallel algorithms;
	// non-positive means GOMAXPROCS.
	Workers int
	// BlockSize is the wavefront tile edge; non-positive means the core
	// default.
	BlockSize int
	// MaxBytes caps lattice allocations; non-positive means the core
	// default (4 GiB). It is a hard admission check: an explicit Algorithm
	// whose lattice exceeds it fails with ErrTooLarge (AlgorithmAuto steers
	// around it by picking a linear-space kernel).
	MaxBytes int64
	// MaxMemoryBytes, when positive, is a soft planning budget: instead of
	// rejecting, the planner downgrades along the space-class ladder —
	// full lattice → linear-space sweep planes → (for exact requests) the
	// center-star-refined heuristic as a degraded last resort — until the
	// estimated footprint fits. Every step is recorded in
	// Result.Plan.Downgrades; a heuristic last resort additionally marks
	// the Result Degraded with a cause wrapping ErrTooLarge. A budget too
	// small for even the cheapest kernel fails with ErrTooLarge.
	MaxMemoryBytes int64
	// Deadline, when positive, bounds the wall-clock time of one Align
	// call: the alignment runs under a context that expires after this
	// duration (in addition to any deadline already on the caller's
	// context). Use Deadline to bound time and MaxBytes to bound memory;
	// for screening workloads the two are complementary — MaxBytes rejects
	// oversized inputs instantly, Deadline catches inputs that fit in
	// memory but compute too slowly.
	Deadline time.Duration
	// Fallback enables graceful degradation for exact algorithms: when the
	// exact run is stopped by a deadline, a cancelled context with budget
	// remaining, or the MaxBytes admission check, the triple is re-aligned
	// with AlgorithmCenterStarRefined inside the remaining budget and the
	// Result is marked Degraded instead of returning the error. Fallback
	// never triggers when the caller's own context is already done.
	Fallback bool
	// Sketch is an optional precomputed k-mer sketch of the triple (from
	// SketchTriple). When set with the facade's ProbeK, the planner's
	// bounded-search identity probe reads it instead of re-sketching the
	// sequences — callers that already sketched the request (the serving
	// layer's near-duplicate prescreen) pay for the profiles exactly once.
	// A sketch built with a different k is ignored.
	Sketch *TripleSketch
}

// Result is a completed alignment plus execution metadata.
type Result struct {
	*Alignment
	// Algorithm is the algorithm that actually ran (resolved from Auto;
	// AlgorithmCenterStarRefined when Degraded).
	Algorithm Algorithm
	// Elapsed is the wall-clock alignment time.
	Elapsed time.Duration
	// Prune carries Carrillo–Lipman statistics when one of the pruned or
	// bounded-search kernels ran (AlgorithmPruned, AlgorithmPrunedParallel,
	// AlgorithmBounded, AlgorithmAStar): the lattice size, the cells
	// actually evaluated, and the bounds.
	Prune *PruneStats
	// Plan is the execution plan that produced this result: the planner's
	// kernel choice with its footprint and duration estimates, including
	// any budget-driven downgrades. It describes what was planned; when
	// Degraded is set via the Fallback policy, Algorithm reports what
	// actually ran.
	Plan *Plan
	// Degraded reports that the exact algorithm was abandoned (deadline or
	// memory cap) and the alignment came from the heuristic fallback; the
	// score is a lower bound on the optimum, not the optimum.
	Degraded bool
	// DegradedCause is the error that triggered the fallback when Degraded
	// is set; it wraps ErrTooLarge, context.DeadlineExceeded, or
	// context.Canceled and satisfies errors.Is for them.
	DegradedCause error
	// CacheHit reports that this result was served from a serving-layer
	// result cache rather than computed for this call. Score, rows, and
	// Plan describe the original computation; Elapsed is the time this
	// serve took (a cache lookup, not a kernel run). The library itself
	// never sets it — the alignd serving tier does.
	CacheHit bool
}

// DefaultScheme returns the default scoring scheme for an alphabet:
// +2/−1/−2 for DNA and RNA, BLOSUM62 for protein.
func DefaultScheme(alpha *Alphabet) (*Scheme, error) {
	switch alpha {
	case seq.DNA:
		return scoring.DNADefault(), nil
	case seq.RNA:
		s, err := scoring.MatchMismatch(seq.RNA, 2, -1, -2)
		if err != nil {
			return nil, err
		}
		return s, nil
	case seq.Protein:
		return scoring.BLOSUM62(), nil
	default:
		return nil, fmt.Errorf("repro: no default scheme for alphabet %q; set Options.Scheme", alpha.Name())
	}
}

// SchemeByName looks up a named scheme: "dna", "blosum62", "blosum80",
// "pam250".
func SchemeByName(name string) (*Scheme, bool) { return scoring.ByName(name) }

// NewSequence validates residues and builds a Sequence.
func NewSequence(name, residues string, alpha *Alphabet) (*Sequence, error) {
	return seq.New(name, []byte(residues), alpha)
}

// NewTriple builds and validates a Triple from three residue strings.
func NewTriple(a, b, c string, alpha *Alphabet) (Triple, error) {
	sa, err := seq.New("A", []byte(a), alpha)
	if err != nil {
		return Triple{}, err
	}
	sb, err := seq.New("B", []byte(b), alpha)
	if err != nil {
		return Triple{}, err
	}
	sc, err := seq.New("C", []byte(c), alpha)
	if err != nil {
		return Triple{}, err
	}
	t := Triple{A: sa, B: sb, C: sc}
	return t, t.Validate()
}

// ReadTripleFASTA reads exactly three FASTA records.
func ReadTripleFASTA(r io.Reader, alpha *Alphabet) (Triple, error) {
	return seq.ReadTripleFASTA(r, alpha)
}

// ReadFASTA reads all FASTA records from r — the N-sequence input path of
// AlignMSA.
func ReadFASTA(r io.Reader, alpha *Alphabet) ([]*Sequence, error) {
	return seq.ReadFASTA(r, alpha)
}

// WriteFASTA writes sequences in FASTA format wrapped at width columns.
func WriteFASTA(w io.Writer, seqs []*Sequence, width int) error {
	return seq.WriteFASTA(w, seqs, width)
}

// NewGenerator returns a deterministic synthetic-sequence generator.
func NewGenerator(alpha *Alphabet, s int64) *Generator { return seq.NewGenerator(alpha, s) }

// KmerDistance returns the normalized (0–1) alignment-free k-mer distance
// between two sequences — the standard cheap prefilter before exact
// alignment in screening pipelines.
func KmerDistance(a, b *Sequence, k int) float64 { return seq.KmerDistance(a, b, k) }

// resolveScheme returns opt.Scheme or the alphabet default.
func resolveScheme(tr Triple, opt Options) (*Scheme, error) {
	if opt.Scheme != nil {
		return opt.Scheme, nil
	}
	return DefaultScheme(tr.A.Alphabet())
}

// gapModel maps a scheme onto the planner's gap-model axis.
func gapModel(sch *Scheme) plan.GapModel {
	if sch.Affine() {
		return plan.GapAffine
	}
	return plan.GapLinear
}

// ProbeK is the k-mer size of the facade's identity probe: long enough
// that random DNA shares few k-mers, short enough that 80%-identity
// relatives still share most. SketchTriple builds sketches at this k, and
// Options.Sketch is honored only when built with it.
const ProbeK = 6

// SketchTriple builds the triple's k-mer sketch at ProbeK — one profile
// pass per sequence. Pass it through Options.Sketch (and to any
// near-duplicate screening the caller runs) so the sequences are sketched
// exactly once per request.
func SketchTriple(tr Triple) *TripleSketch { return seq.SketchTriple(tr, ProbeK) }

// sketchFor returns the request's sketch: the caller's precomputed one
// when it matches ProbeK, else a fresh sketch.
func sketchFor(tr Triple, opt Options) *TripleSketch {
	if opt.Sketch != nil && opt.Sketch.K() == ProbeK {
		return opt.Sketch
	}
	return SketchTriple(tr)
}

// evalFractionProbe predicts the fraction of lattice cells Carrillo–Lipman
// bounded search would evaluate for this triple, or 0 when the prediction
// is not worth making: affine schemes (the bounded kernels are linear-gap)
// and triples below plan.MinBoundedLen (where band planning is pure
// overhead). The probe is alignment-free — the sketch's mean pairwise
// k-mer identity mapped through the calibrated identity→fraction curve —
// so it costs O(n) on data the alignment will read anyway, and nothing at
// all when the caller supplies Options.Sketch.
func evalFractionProbe(tr Triple, sch *Scheme, opt Options) float64 {
	if sch.Affine() {
		return 0
	}
	min := tr.A.Len()
	if tr.B.Len() < min {
		min = tr.B.Len()
	}
	if tr.C.Len() < min {
		min = tr.C.Len()
	}
	if min < plan.MinBoundedLen {
		return 0
	}
	return plan.EvalFractionForIdentity(sketchFor(tr, opt).MeanIdentity())
}

// planRequest translates a triple and Options into a planner request. The
// parallel flag selects the intra-alignment parallel variants on automatic
// requests (the single-call default); a wide outer batch clears it because
// the batch itself supplies the parallelism.
func planRequest(tr Triple, sch *Scheme, opt Options, parallel bool) plan.Request {
	return plan.Request{
		Shape:          plan.Shape{NA: tr.A.Len(), NB: tr.B.Len(), NC: tr.C.Len()},
		Gap:            gapModel(sch),
		Algorithm:      string(opt.Algorithm),
		Workers:        opt.Workers,
		BlockSize:      opt.BlockSize,
		MaxBytes:       opt.MaxBytes,
		MaxMemoryBytes: opt.MaxMemoryBytes,
		Parallel:       parallel,
		MaxAbsColumn:   core.MaxAbsColumn(sch),
		EvalFraction:   evalFractionProbe(tr, sch, opt),
	}
}

// PlanAlign resolves the execution plan Align would run for the triple
// under opt — kernel, tile shape, workers, and footprint/duration
// estimates — without allocating a lattice or aligning anything. It is
// the dry-run entry point behind align3 -explain and alignd's POST
// /v1/plan, and the admission hook serving layers use to reject oversized
// requests before they queue (the returned error wraps ErrTooLarge when
// no kernel fits Options.MaxMemoryBytes).
func PlanAlign(tr Triple, opt Options) (*Plan, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	sch, err := resolveScheme(tr, opt)
	if err != nil {
		return nil, err
	}
	pl, _, err := resolvePlan(tr, sch, opt, true)
	return pl, err
}

// resolvePlan runs the planner for a validated triple and resolved scheme,
// keeping the facade's historical error surface (unknown algorithms are
// reported as "repro: unknown algorithm").
func resolvePlan(tr Triple, sch *Scheme, opt Options, parallel bool) (*Plan, *plan.KernelSpec, error) {
	if opt.Algorithm != AlgorithmAuto {
		if _, ok := plan.Lookup(string(opt.Algorithm)); !ok {
			return nil, nil, fmt.Errorf("repro: unknown algorithm %q", opt.Algorithm)
		}
	}
	pl, spec, err := plan.Resolve(planRequest(tr, sch, opt, parallel))
	if err != nil {
		return nil, nil, fmt.Errorf("repro: align: %w", err)
	}
	return pl, spec, nil
}

// degradable reports whether err is a budget exhaustion the Fallback
// policy may recover from: a deadline or cancellation that stopped the
// kernel mid-flight, or the MaxBytes admission check rejecting the lattice
// up front.
func degradable(err error) bool {
	return errors.Is(err, ErrTooLarge) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// Align aligns the triple according to opt. It is AlignContext under
// context.Background(): uncancellable, but still subject to Options.Deadline
// and Options.Fallback.
func Align(tr Triple, opt Options) (*Result, error) {
	return AlignContext(context.Background(), tr, opt)
}

// AlignContext aligns the triple according to opt under a context — the
// primary entry point. Cancelling ctx (or exceeding Options.Deadline)
// stops the alignment cooperatively: sequential kernels poll at plane
// boundaries, parallel kernels per wavefront block, and the worker pool
// drains without leaking goroutines. The returned error wraps
// context.Canceled or context.DeadlineExceeded (check with errors.Is).
//
// With Options.Fallback set, a deadline or memory-cap failure of an exact
// algorithm degrades to AlgorithmCenterStarRefined instead of failing; the
// Result then has Degraded set and DegradedCause holding the original
// error.
func AlignContext(ctx context.Context, tr Triple, opt Options) (*Result, error) {
	return alignWith(ctx, tr, opt, true)
}

// alignWith is the single execution path behind Align, AlignContext, and
// the batch claimers: plan through the kernel registry, dispatch the
// planned spec, and apply the Fallback degradation policy.
func alignWith(ctx context.Context, tr Triple, opt Options, parallel bool) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("repro: align: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	sch, err := resolveScheme(tr, opt)
	if err != nil {
		return nil, err
	}
	pl, spec, err := resolvePlan(tr, sch, opt, parallel)
	if err != nil {
		return nil, err
	}
	copt := core.Options{
		Workers:   opt.Workers,
		BlockSize: opt.BlockSize,
		MaxBytes:  opt.MaxBytes,
		TileDims:  pl.TileDims,
		CellWidth: pl.CellWidthBits,
	}

	runCtx := ctx
	if opt.Deadline > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, opt.Deadline)
		defer cancel()
	}

	start := time.Now()
	aln, prune, err := spec.Run(runCtx, tr, sch, copt)
	if err != nil {
		// Degrade only when the caller's own context still has budget:
		// a dead parent means the caller is gone, not over-ambitious.
		if opt.Fallback && spec.Exact && degradable(err) && ctx.Err() == nil {
			aln2, ferr := msa.CenterStarRefined(tr, sch)
			if ferr != nil {
				return nil, fmt.Errorf("repro: fallback after %v failed: %w", err, ferr)
			}
			return &Result{
				Alignment:     aln2,
				Algorithm:     AlgorithmCenterStarRefined,
				Elapsed:       time.Since(start),
				Plan:          pl,
				Degraded:      true,
				DegradedCause: err,
			}, nil
		}
		return nil, err
	}
	res := &Result{
		Alignment: aln,
		Algorithm: Algorithm(pl.Algorithm),
		Elapsed:   time.Since(start),
		Prune:     prune,
		Plan:      pl,
	}
	// A plan that bottomed out on the heuristic last resort is a degraded
	// answer even though the run itself succeeded: the score is a lower
	// bound, not the optimum the caller asked for.
	if pl.Degraded {
		res.Degraded = true
		res.DegradedCause = fmt.Errorf(
			"repro: exact alignment exceeds the %d-byte memory budget; planned heuristic %s instead: %w",
			opt.MaxMemoryBytes, pl.Algorithm, ErrTooLarge)
	}
	return res, nil
}

// AlignSeeded runs the Carrillo–Lipman bounded kernel seeded with a
// caller-supplied lower bound on the triple's optimal SP score — the
// verified patch-up behind near-duplicate result caching. A tight seed
// (for example the cached score of a near-identical triple, minus a
// mutation-cost margin) makes the admissible band thin, so the re-align
// costs a small fraction of a full plan while staying exact: AlignBounded
// either returns the true optimum with a full preference-ordered
// traceback, or fails — a seed above the optimum excludes the optimal
// path from the band and the traceback reports it — in which case the
// caller falls back to a full plan. A seed below the kernel's built-in
// trivial bound is simply ignored, so any int32 is safe to pass.
//
// The scheme must be linear-gap (the bounded kernels are); affine schemes
// fail immediately. Options.Fallback and MaxMemoryBytes do not apply —
// degradation policy belongs to the caller's fallback path.
func AlignSeeded(ctx context.Context, tr Triple, opt Options, lower int32) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("repro: align: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	sch, err := resolveScheme(tr, opt)
	if err != nil {
		return nil, err
	}
	if sch.Affine() {
		return nil, fmt.Errorf("repro: AlignSeeded: scheme %q is affine; the bounded kernel is linear-gap", sch.Name())
	}
	// Resolve an honest plan for the bounded kernel so the Result carries
	// real footprint estimates; the soft budget is cleared because its
	// downgrade ladder could swap the plan away from the kernel that will
	// actually run.
	popt := opt
	popt.Algorithm = AlgorithmBounded
	popt.MaxMemoryBytes = 0
	pl, _, err := resolvePlan(tr, sch, popt, true)
	if err != nil {
		return nil, err
	}
	copt := core.Options{
		Workers:   opt.Workers,
		BlockSize: opt.BlockSize,
		MaxBytes:  opt.MaxBytes,
		TileDims:  pl.TileDims,
		CellWidth: pl.CellWidthBits,
	}
	runCtx := ctx
	if opt.Deadline > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, opt.Deadline)
		defer cancel()
	}
	start := time.Now()
	aln, prune, err := core.AlignBounded(runCtx, tr, sch, copt, lower)
	if err != nil {
		return nil, err
	}
	return &Result{
		Alignment: aln,
		Algorithm: AlgorithmBounded,
		Elapsed:   time.Since(start),
		Prune:     &prune,
		Plan:      pl,
	}, nil
}

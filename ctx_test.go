package repro

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestAlignContextPreCancelledAllAlgorithms verifies every algorithm —
// exact and heuristic alike — fails fast under an already-cancelled
// context, wrapping context.Canceled.
func TestAlignContextPreCancelledAllAlgorithms(t *testing.T) {
	g := NewGenerator(DNA, 301)
	tr := g.RelatedTriple(20, MutationModel{SubstitutionRate: 0.1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	algos := append(Algorithms(), AlgorithmAuto)
	for _, algo := range algos {
		res, err := AlignContext(ctx, tr, Options{Algorithm: algo})
		if err == nil {
			t.Errorf("%q: pre-cancelled context accepted", algo)
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%q: err = %v, want wrapped context.Canceled", algo, err)
		}
		if res != nil {
			t.Errorf("%q: non-nil result on cancellation", algo)
		}
	}
}

// TestAlignContextMidFlightDeadline cancels a large parallel alignment
// mid-flight: the call must return within a small bounded time, report
// the deadline, and leave no worker goroutines behind.
func TestAlignContextMidFlightDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("large lattice")
	}
	g := NewGenerator(DNA, 302)
	tr := g.RelatedTriple(200, MutationModel{SubstitutionRate: 0.15})
	// Warm the shared worker pool before capturing the goroutine baseline:
	// pool workers persist across runs by design and must not read as leaks.
	warm := g.RelatedTriple(24, MutationModel{SubstitutionRate: 0.1})
	if _, err := Align(warm, Options{Algorithm: AlgorithmParallel, Workers: 4}); err != nil {
		t.Fatalf("pool warm-up failed: %v", err)
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := AlignContext(ctx, tr, Options{Algorithm: AlgorithmParallel, Workers: 4})
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("200^3 alignment finished under a 20ms deadline — lattice too small to test cancellation")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want bounded return", elapsed)
	}
	waitForGoroutines(t, before)
}

// TestAlignContextDeadlineFallback exercises the graceful-degradation
// policy: with Fallback set, an aggressive deadline yields a valid
// center-star-refined alignment marked Degraded.
func TestAlignContextDeadlineFallback(t *testing.T) {
	g := NewGenerator(DNA, 303)
	tr := g.RelatedTriple(150, MutationModel{SubstitutionRate: 0.1})

	res, err := Align(tr, Options{Deadline: time.Nanosecond, Fallback: true})
	if err != nil {
		t.Fatalf("fallback should have recovered: %v", err)
	}
	if !res.Degraded {
		t.Fatal("result not marked Degraded")
	}
	if res.Algorithm != AlgorithmCenterStarRefined {
		t.Fatalf("degraded algorithm = %q, want center-star-refined", res.Algorithm)
	}
	if !errors.Is(res.DegradedCause, context.DeadlineExceeded) {
		t.Fatalf("DegradedCause = %v, want wrapped context.DeadlineExceeded", res.DegradedCause)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("degraded alignment invalid: %v", err)
	}
}

// TestAlignContextMaxBytesFallback: the MaxBytes admission check is the
// other degradable failure. A forced exact algorithm over the cap either
// fails (no fallback) or degrades (fallback).
func TestAlignContextMaxBytesFallback(t *testing.T) {
	g := NewGenerator(DNA, 304)
	tr := g.RelatedTriple(60, MutationModel{SubstitutionRate: 0.1})
	opt := Options{Algorithm: AlgorithmFull, MaxBytes: 128}

	if _, err := Align(tr, opt); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("no-fallback err = %v, want ErrTooLarge", err)
	}

	opt.Fallback = true
	res, err := Align(tr, opt)
	if err != nil {
		t.Fatalf("fallback should have recovered: %v", err)
	}
	if !res.Degraded || !errors.Is(res.DegradedCause, ErrTooLarge) {
		t.Fatalf("Degraded = %v, DegradedCause = %v, want ErrTooLarge", res.Degraded, res.DegradedCause)
	}
}

// TestAlignContextDeadlineNoFallback: without Fallback the deadline error
// surfaces to the caller.
func TestAlignContextDeadlineNoFallback(t *testing.T) {
	g := NewGenerator(DNA, 305)
	tr := g.RelatedTriple(150, MutationModel{SubstitutionRate: 0.1})
	_, err := Align(tr, Options{Deadline: time.Nanosecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
}

// TestAlignContextNoFallbackForHeuristics: heuristics are already the
// floor; Fallback must not mask their failure modes or re-run them.
func TestAlignContextNoFallbackForHeuristics(t *testing.T) {
	g := NewGenerator(DNA, 306)
	tr := g.RelatedTriple(30, MutationModel{SubstitutionRate: 0.1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := AlignContext(ctx, tr, Options{Algorithm: AlgorithmCenterStar, Fallback: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled heuristic with fallback: err = %v, want context.Canceled", err)
	}
}

// TestAlignContextDeadParentNoFallback: when the caller's own context is
// done, Fallback must not burn more work on a caller that has left.
func TestAlignContextDeadParentNoFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("large lattice")
	}
	g := NewGenerator(DNA, 307)
	tr := g.RelatedTriple(150, MutationModel{SubstitutionRate: 0.1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	res, err := AlignContext(ctx, tr, Options{Algorithm: AlgorithmParallel, Fallback: true})
	if err == nil {
		if res.Degraded {
			t.Fatal("degraded result despite dead parent context")
		}
		t.Skip("alignment finished before the parent deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
}

// waitForGoroutines polls until the goroutine count returns to (near) the
// baseline, failing after a grace period. A small tolerance absorbs
// runtime/test-framework goroutines that come and go.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d now, baseline %d", runtime.NumGoroutine(), baseline)
}

// Package client is the Go client for an alignd server: a thin typed
// wrapper over the HTTP JSON API that adds the retry discipline the
// serving layer is designed for.
//
// alignd sheds load instead of queueing it — a full admission queue
// answers 429, a draining or fault-injected server answers 503, both with
// a Retry-After hint — so a correct client is a retrying client. This
// package classifies every failure as retryable (429, 502, 503, transport
// errors) or terminal (all other statuses), retries the former under
// capped exponential backoff with full jitter, honors the server's
// Retry-After hint when it asks for more patience than the backoff would
// give, and bounds each attempt with an optional per-attempt timeout so a
// stalled connection cannot eat the whole deadline of the call. Retried
// attempts carry an X-Retry-Attempt header, which the server counts in
// /statsz as retries_observed — fleet-wide retry pressure is visible on
// the server even when no single client logs it.
//
// Optionally a call can be hedged: when HedgeDelay elapses with no answer,
// a second identical request is issued and the first response wins. POST
// /v1/align is idempotent (aligning the same triple twice computes the
// same answer; the cost is one duplicated alignment), so hedging trades
// duplicate work for tail latency. Against a server with the result cache
// enabled even that cost disappears: the hedge carries the same content
// address as the primary, so the server collapses the pair into one
// computation (the response's Cache field reports "collapsed" or "hit"
// instead of a second kernel run).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	repro "repro"
	"repro/internal/server"
)

// Wire types, aliased from the serving layer so there is exactly one
// definition of the protocol.
type (
	// AlignRequest is the POST /v1/align (and /v1/plan) request body.
	AlignRequest = server.AlignRequest
	// AlignResponse is one alignment result.
	AlignResponse = server.AlignResponse
	// BatchRequest is the POST /v1/align/batch request body.
	BatchRequest = server.BatchRequest
	// BatchResponse is the batch result set, one entry per item.
	BatchResponse = server.BatchResponse
	// BatchItemResponse is one batch item's outcome.
	BatchItemResponse = server.BatchItemResponse
	// MsaRequest is the POST /v1/msa (and /v1/msa/plan) request body.
	MsaRequest = server.MsaRequest
	// MsaResponse is one progressive MSA result.
	MsaResponse = server.MsaResponse
	// Statsz is the GET /statsz document.
	Statsz = server.Statsz
	// Plan is the execution plan returned by POST /v1/plan.
	Plan = repro.Plan
	// MSAPlan is the progressive plan returned by POST /v1/msa/plan.
	MSAPlan = repro.MSAPlan
)

// retryAttemptHeader marks attempt n of a retried call; the server counts
// requests bearing it.
const retryAttemptHeader = "X-Retry-Attempt"

// Config tunes a Client. The zero value (plus a BaseURL) is a working
// configuration with the defaults noted per field.
type Config struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient overrides the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
	// MaxRetries is how many times a retryable failure is retried after
	// the initial attempt. Default 3; negative means no retries.
	MaxRetries int
	// BaseBackoff is the first retry's backoff ceiling; attempt n waits a
	// uniformly random duration in [0, min(BaseBackoff·2ⁿ⁻¹, MaxBackoff)]
	// (full jitter), raised to the server's Retry-After hint when that is
	// longer. Defaults 100ms and 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// AttemptTimeout bounds each individual attempt (connection + full
	// response) on top of the call context; 0 means no per-attempt bound.
	AttemptTimeout time.Duration
	// HedgeDelay, when positive, arms request hedging on Align: an
	// attempt still unanswered after this delay is raced against a second
	// identical request, first response wins. 0 disables hedging.
	HedgeDelay time.Duration
	// Seed makes the jitter deterministic for tests; 0 seeds from the
	// clock.
	Seed int64
}

// Client is a retrying alignd client; safe for concurrent use.
type Client struct {
	base string
	http *http.Client
	cfg  Config

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a Client for the server at cfg.BaseURL.
func New(cfg Config) *Client {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Client{
		base: strings.TrimRight(cfg.BaseURL, "/"),
		http: hc,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// HTTPError is a non-2xx response from the server: the status, the error
// message from the JSON body (or the raw body when it is not the standard
// error document), and the parsed Retry-After hint when one was sent.
type HTTPError struct {
	StatusCode int
	Message    string
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("client: server answered %d: %s", e.StatusCode, e.Message)
}

// Retryable reports whether the failure is transient by the serving
// layer's own contract: shed load (429), a bad or briefly absent upstream
// (502), and unavailable/draining (503) are worth retrying; everything
// else — validation, over-cap lattices, genuine server errors, deadline
// exhaustion — is terminal, because repeating the identical request
// repeats the outcome.
func (e *HTTPError) Retryable() bool {
	switch e.StatusCode {
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable:
		return true
	}
	return false
}

// Retryable classifies any error from this package: *HTTPError by status,
// everything else (transport failures, unexpected EOF) as retryable
// unless it is the caller's own context expiring.
func Retryable(err error) bool {
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Retryable()
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return err != nil
}

// Align submits one alignment, retrying per the configuration (and
// hedging when HedgeDelay is set).
func (c *Client) Align(ctx context.Context, req *AlignRequest) (*AlignResponse, error) {
	var out AlignResponse
	if err := c.call(ctx, "/v1/align", req, &out, c.cfg.HedgeDelay > 0); err != nil {
		return nil, err
	}
	return &out, nil
}

// AlignBatch submits a batch; one admission covers all items.
func (c *Client) AlignBatch(ctx context.Context, req *BatchRequest) (*BatchResponse, error) {
	var out BatchResponse
	if err := c.call(ctx, "/v1/align/batch", req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Msa submits one N-sequence progressive alignment. MSA requests are
// never hedged: unlike /v1/align they are heavyweight by construction, so
// a duplicate costs a whole progressive run.
func (c *Client) Msa(ctx context.Context, req *MsaRequest) (*MsaResponse, error) {
	var out MsaResponse
	if err := c.call(ctx, "/v1/msa", req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// MsaPlan asks the server for the progressive plan it would run for req —
// a dry run, like Plan.
func (c *Client) MsaPlan(ctx context.Context, req *MsaRequest) (*MSAPlan, error) {
	var out MSAPlan
	if err := c.call(ctx, "/v1/msa/plan", req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Plan asks the server for the execution plan it would run for req — a
// dry run, available even while the server drains.
func (c *Client) Plan(ctx context.Context, req *AlignRequest) (*Plan, error) {
	var out Plan
	if err := c.call(ctx, "/v1/plan", req, &out, c.cfg.HedgeDelay > 0); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the /statsz document.
func (c *Client) Stats(ctx context.Context) (*Statsz, error) {
	body, err := c.get(ctx, "/statsz")
	if err != nil {
		return nil, err
	}
	var out Statsz
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("client: decoding /statsz: %w", err)
	}
	return &out, nil
}

// Ready reports whether the server is accepting work: nil on 200, the
// *HTTPError otherwise (503 while draining). It never retries — readiness
// is a point-in-time question.
func (c *Client) Ready(ctx context.Context) error {
	_, err := c.get(ctx, "/readyz")
	return err
}

// call runs the retry loop around one POST: attempt, classify, back off
// (honoring Retry-After), repeat up to MaxRetries times.
func (c *Client) call(ctx context.Context, path string, in, out any, hedge bool) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: encoding request: %w", err)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			delay := c.backoff(attempt, lastErr)
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return fmt.Errorf("client: %w (last attempt: %v)", ctx.Err(), lastErr)
			}
		}
		body, err := c.attemptMaybeHedged(ctx, path, payload, attempt, hedge)
		if err == nil {
			if uerr := json.Unmarshal(body, out); uerr != nil {
				return fmt.Errorf("client: decoding %s response: %w", path, uerr)
			}
			return nil
		}
		lastErr = err
		if !Retryable(err) {
			return err
		}
		if attempt >= c.cfg.MaxRetries {
			return fmt.Errorf("client: giving up after %d attempts: %w", attempt+1, lastErr)
		}
	}
}

// backoff computes the wait before retry number attempt (1-based): full
// jitter over the exponential ceiling, raised to the server's Retry-After
// when the last failure carried a longer hint.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	ceil := c.cfg.BaseBackoff << (attempt - 1)
	if ceil > c.cfg.MaxBackoff || ceil <= 0 {
		ceil = c.cfg.MaxBackoff
	}
	c.mu.Lock()
	d := time.Duration(c.rng.Int63n(int64(ceil) + 1))
	c.mu.Unlock()
	var he *HTTPError
	if errors.As(lastErr, &he) && he.RetryAfter > d {
		d = he.RetryAfter
	}
	return d
}

// attemptMaybeHedged runs one logical attempt: a single request, or — when
// hedging is armed and the primary is still unanswered after HedgeDelay —
// two racing requests whose first success wins (first terminal failure
// loses only if the other lane also fails).
func (c *Client) attemptMaybeHedged(ctx context.Context, path string, payload []byte, attempt int, hedge bool) ([]byte, error) {
	if !hedge || c.cfg.HedgeDelay <= 0 {
		return c.attempt(ctx, path, payload, attempt)
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	type lane struct {
		body []byte
		err  error
	}
	results := make(chan lane, 2)
	launch := func() {
		body, err := c.attempt(raceCtx, path, payload, attempt)
		results <- lane{body, err}
	}
	go launch()
	hedgeTimer := time.NewTimer(c.cfg.HedgeDelay)
	defer hedgeTimer.Stop()
	launched, landed := 1, 0
	var firstErr error
	for {
		select {
		case <-hedgeTimer.C:
			if launched == 1 {
				launched++
				go launch()
			}
		case l := <-results:
			landed++
			if l.err == nil {
				return l.body, nil
			}
			if firstErr == nil {
				firstErr = l.err
			}
			if landed == launched {
				return nil, firstErr
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// attempt issues one POST and maps the response: 2xx returns the body,
// anything else an *HTTPError.
func (c *Client) attempt(ctx context.Context, path string, payload []byte, attempt int) ([]byte, error) {
	actx := ctx
	if c.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.cfg.AttemptTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if attempt > 0 {
		req.Header.Set(retryAttemptHeader, strconv.Itoa(attempt))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		// Surface the caller's own expiry as such; transport errors under
		// a live context stay retryable.
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("client: %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("client: reading %s response: %w", path, err)
	}
	if resp.StatusCode/100 != 2 {
		return nil, httpError(resp, body)
	}
	return body, nil
}

// get issues one plain GET (no retries): 2xx returns the body, anything
// else an *HTTPError.
func (c *Client) get(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("client: reading %s response: %w", path, err)
	}
	if resp.StatusCode/100 != 2 {
		return nil, httpError(resp, body)
	}
	return body, nil
}

// httpError builds the *HTTPError for a non-2xx response, extracting the
// server's JSON error message and Retry-After hint when present.
func httpError(resp *http.Response, body []byte) *HTTPError {
	he := &HTTPError{StatusCode: resp.StatusCode}
	var doc struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &doc) == nil && doc.Error != "" {
		he.Message = doc.Error
	} else {
		he.Message = strings.TrimSpace(string(body))
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			he.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return he
}

package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	repro "repro"
	"repro/internal/faultpoint"
	"repro/internal/server"
)

// The client suite runs against a real alignd server (and, for the
// transport edge cases, scripted httptest handlers): retries must mask
// injected transient failures, terminal failures must fail fast, and the
// server must observe the retry pressure in /statsz.

func newAlignd(t *testing.T, cfg server.Config) *httptest.Server {
	t.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

func fastClient(t *testing.T, baseURL string, retries int) *Client {
	t.Helper()
	return New(Config{
		BaseURL:     baseURL,
		MaxRetries:  retries,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Seed:        1,
	})
}

func testRequest(t *testing.T, seed int64, n int) *AlignRequest {
	t.Helper()
	g := repro.NewGenerator(repro.DNA, seed)
	tr := g.RelatedTriple(n, repro.MutationModel{SubstitutionRate: 0.2, InsertionRate: 0.02, DeletionRate: 0.02})
	return &AlignRequest{A: tr.A.String(), B: tr.B.String(), C: tr.C.String()}
}

// TestRetriesMaskInjectedUnavailability is the contract the whole layer
// exists for: the server's admission edge injects two 503s via the
// server.admit fault point, and a single client.Align call still returns
// the alignment — while the server's /statsz records the retry pressure.
func TestRetriesMaskInjectedUnavailability(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Arm("server.admit", "first:2"); err != nil {
		t.Fatal(err)
	}
	ts := newAlignd(t, server.Config{CoalesceTick: -1})
	c := fastClient(t, ts.URL, 3)

	res, err := c.Align(context.Background(), testRequest(t, 1, 40))
	if err != nil {
		t.Fatalf("Align did not mask injected 503s: %v", err)
	}
	if res.Score == 0 && res.Columns == 0 {
		t.Fatalf("masked call returned an empty result: %+v", res)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.RetriesObserved < 1 {
		t.Fatalf("retries_observed = %d, want >= 1", st.RetriesObserved)
	}
	if st.FaultsInjected < 2 {
		t.Fatalf("faults_injected = %d, want >= 2", st.FaultsInjected)
	}
}

// TestTerminalFailureNotRetried: a 400 must fail on the first attempt.
func TestTerminalFailureNotRetried(t *testing.T) {
	var calls atomic.Int64
	h := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"sequence A is empty"}`)
	}))
	defer h.Close()

	c := fastClient(t, h.URL, 5)
	_, err := c.Align(context.Background(), &AlignRequest{})
	var he *HTTPError
	if !errors.As(err, &he) || he.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want *HTTPError with status 400", err)
	}
	if he.Message != "sequence A is empty" {
		t.Fatalf("message = %q, want the server's error body", he.Message)
	}
	if Retryable(err) {
		t.Fatal("400 classified retryable")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("terminal failure hit the server %d times, want 1", n)
	}
}

// TestGivesUpAfterMaxRetries: a server that always sheds exhausts the
// budget — MaxRetries retries after the first attempt — then surfaces the
// last failure.
func TestGivesUpAfterMaxRetries(t *testing.T) {
	var calls atomic.Int64
	h := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"queue full; retry later"}`)
	}))
	defer h.Close()

	c := fastClient(t, h.URL, 2)
	_, err := c.Align(context.Background(), testRequest(t, 2, 20))
	var he *HTTPError
	if !errors.As(err, &he) || he.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want wrapped 429", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d attempts, want 1 initial + 2 retries", n)
	}
}

// TestRetryAttemptHeaderSequence: retried attempts must carry
// X-Retry-Attempt: n, the first attempt none.
func TestRetryAttemptHeaderSequence(t *testing.T) {
	var headers []string
	h := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		headers = append(headers, r.Header.Get("X-Retry-Attempt"))
		if len(headers) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"draining"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"score":7}`)
	}))
	defer h.Close()

	c := fastClient(t, h.URL, 3)
	res, err := c.Align(context.Background(), testRequest(t, 3, 20))
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 7 {
		t.Fatalf("score = %d, want 7", res.Score)
	}
	want := []string{"", "1", "2"}
	if len(headers) != len(want) {
		t.Fatalf("server saw %d attempts, want %d", len(headers), len(want))
	}
	for i := range want {
		if headers[i] != want[i] {
			t.Fatalf("attempt %d header = %q, want %q", i, headers[i], want[i])
		}
	}
}

// TestRetryAfterHonored: the server's hint must stretch the backoff beyond
// the client's own (tiny) jitter ceiling.
func TestRetryAfterHonored(t *testing.T) {
	var times []time.Time
	h := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		times = append(times, time.Now())
		if len(times) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"draining"}`)
			return
		}
		fmt.Fprint(w, `{"score":1}`)
	}))
	defer h.Close()

	c := fastClient(t, h.URL, 1) // 1ms..5ms jitter, so any gap >=1s is the hint
	if _, err := c.Align(context.Background(), testRequest(t, 4, 20)); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("server saw %d attempts, want 2", len(times))
	}
	if gap := times[1].Sub(times[0]); gap < time.Second {
		t.Fatalf("retry came after %v, want >= 1s (Retry-After ignored)", gap)
	}
}

// TestCallerContextNotRetried: the caller's own expiry is terminal even
// though it surfaces as a transport error.
func TestCallerContextNotRetried(t *testing.T) {
	release := make(chan struct{})
	h := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer h.Close()
	defer close(release) // unblock the handler before h.Close waits on it

	c := fastClient(t, h.URL, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.Align(ctx, testRequest(t, 5, 20))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the caller's DeadlineExceeded", err)
	}
	if Retryable(err) {
		t.Fatal("caller context expiry classified retryable")
	}
}

// TestHedgeRacesSlowPrimary: with hedging armed, a primary that hangs is
// overtaken by the hedge lane and the call still succeeds quickly.
func TestHedgeRacesSlowPrimary(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	h := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-release // the slow primary never answers on its own
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"score":9}`)
	}))
	defer h.Close()
	defer close(release) // unblock the wedged primary before h.Close waits on it

	c := New(Config{
		BaseURL:    h.URL,
		MaxRetries: 0,
		HedgeDelay: 10 * time.Millisecond,
		Seed:       1,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := c.Align(ctx, testRequest(t, 6, 20))
	if err != nil {
		t.Fatalf("hedged call failed: %v", err)
	}
	if res.Score != 9 {
		t.Fatalf("score = %d, want the hedge lane's 9", res.Score)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("server saw %d requests, want primary + hedge", n)
	}
}

// TestReadyAndDrain: Ready is nil on a serving alignd and a 503 *HTTPError
// once it drains; readiness is point-in-time, never retried.
func TestReadyAndDrain(t *testing.T) {
	s := server.New(server.Config{CoalesceTick: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	c := fastClient(t, ts.URL, 3)
	if err := c.Ready(context.Background()); err != nil {
		t.Fatalf("Ready on a serving alignd: %v", err)
	}
	s.BeginDrain()
	err := c.Ready(context.Background())
	var he *HTTPError
	if !errors.As(err, &he) || he.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("Ready on a draining alignd = %v, want a 503 *HTTPError", err)
	}
}

// TestPlanDryRun: Plan returns the execution plan document for a request
// without running the alignment.
func TestPlanDryRun(t *testing.T) {
	ts := newAlignd(t, server.Config{CoalesceTick: -1})
	c := fastClient(t, ts.URL, 0)
	pl, err := c.Plan(context.Background(), testRequest(t, 7, 50))
	if err != nil {
		t.Fatal(err)
	}
	if pl.Algorithm == "" || pl.EstCells == 0 {
		t.Fatalf("plan document incomplete: %+v", pl)
	}
}

// TestBatchRoundTrip: AlignBatch answers every item in order against a
// real server.
func TestBatchRoundTrip(t *testing.T) {
	ts := newAlignd(t, server.Config{CoalesceTick: -1})
	c := fastClient(t, ts.URL, 1)
	req := &BatchRequest{}
	for i := 0; i < 3; i++ {
		req.Items = append(req.Items, *testRequest(t, int64(10+i), 30))
	}
	res, err := c.AlignBatch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 3 {
		t.Fatalf("batch answered %d of 3 items", len(res.Results))
	}
	for i, item := range res.Results {
		if item.Index != i || item.Error != "" || item.Result == nil {
			t.Fatalf("item %d malformed: %+v", i, item)
		}
	}
}

// TestStatszDecodes pins the statsz wire contract the client exposes.
func TestStatszDecodes(t *testing.T) {
	ts := newAlignd(t, server.Config{CoalesceTick: -1})
	c := fastClient(t, ts.URL, 0)
	if _, err := c.Align(context.Background(), testRequest(t, 8, 30)); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed < 1 {
		t.Fatalf("completed = %d after a successful align", st.Completed)
	}
	// The robustness counters must be present in the document (zero is
	// fine; absent would mean the contract regressed).
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"panics_contained", "watchdog_stalls", "retries_observed", "mem_pressure_degraded", "faults_injected"} {
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		if _, ok := doc[key]; !ok {
			t.Fatalf("statsz misses %q", key)
		}
	}
}

// TestMsaRoundTrip drives /v1/msa and /v1/msa/plan through the typed
// client against a real server, including retry masking of an injected
// admission fault.
func TestMsaRoundTrip(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Arm("server.admit", "first:1"); err != nil {
		t.Fatal(err)
	}
	ts := newAlignd(t, server.Config{})
	c := fastClient(t, ts.URL, 3)
	g := repro.NewGenerator(repro.DNA, 9)
	fam := g.RelatedFamily(5, 30, repro.MutationModel{SubstitutionRate: 0.15, InsertionRate: 0.03, DeletionRate: 0.03})
	req := &MsaRequest{}
	for _, s := range fam {
		req.Sequences = append(req.Sequences, s.String())
	}
	pl, err := c.MsaPlan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumSequences != 5 || len(pl.Merges) == 0 {
		t.Fatalf("plan = %+v", pl)
	}
	res, err := c.Msa(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSequences != 5 || len(res.Rows) != 5 {
		t.Fatalf("msa response: %d sequences, %d rows", res.NumSequences, len(res.Rows))
	}
	if res.OptimalityGap < 0 {
		t.Fatalf("score %d beats bound %d", res.Score, res.UpperBound)
	}
}

package repro

// One benchmark per table (T*) and figure (F*) of the reconstructed
// evaluation; see DESIGN.md §6 for the experiment index and
// cmd/benchsuite for the paper-style tabular driver over the same
// workloads. Workloads are seeded, so every run measures identical inputs.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/msa"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/wavefront"
)

var benchSink int32

// benchTriple generates the canonical workload: three descendants of one
// ancestor of length n with the given substitution rate (plus light indels).
func benchTriple(seed int64, n int, subRate float64) seq.Triple {
	g := seq.NewGenerator(seq.DNA, seed)
	return g.RelatedTriple(n, seq.MutationModel{
		SubstitutionRate: subRate,
		InsertionRate:    0.02,
		DeletionRate:     0.02,
	})
}

func cells(tr seq.Triple) int64 {
	return int64(tr.A.Len()+1) * int64(tr.B.Len()+1) * int64(tr.C.Len()+1)
}

// BenchmarkT1SequentialRuntime — T1: sequential runtime and cell rate vs
// length, full-matrix vs linear-space.
func BenchmarkT1SequentialRuntime(b *testing.B) {
	for _, n := range []int{32, 64, 96, 128, 192} {
		tr := benchTriple(1000+int64(n), n, 0.3)
		b.Run(fmt.Sprintf("algo=full/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				aln, err := core.AlignFull(context.Background(), tr, scoring.DNADefault(), core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				benchSink = aln.Score
			}
			b.ReportMetric(float64(cells(tr))*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
		})
		b.Run(fmt.Sprintf("algo=linear/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				aln, err := core.AlignLinear(context.Background(), tr, scoring.DNADefault(), core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				benchSink = aln.Score
			}
			b.ReportMetric(float64(cells(tr))*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}

// BenchmarkT2Memory — T2: lattice bytes of the full matrix vs the
// linear-space planes (reported as metrics; the loop only exercises the
// accounting functions).
func BenchmarkT2Memory(b *testing.B) {
	for _, n := range []int{64, 128, 256, 384} {
		tr := benchTriple(2000+int64(n), n, 0.3)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var full, lin int64
			for i := 0; i < b.N; i++ {
				full = core.FullMatrixBytes(tr)
				lin = core.LinearBytes(tr)
			}
			b.ReportMetric(float64(full), "full_bytes")
			b.ReportMetric(float64(lin), "linear_bytes")
			b.ReportMetric(float64(full)/float64(lin), "ratio")
		})
	}
}

// benchWorkers is the worker sweep for the scaling experiments. It is
// deliberately independent of GOMAXPROCS: on a single-core host the
// measured wall-clock stays flat (workers time-share one CPU) while the
// simulated_speedup metric — the deterministic list-scheduling makespan of
// the exact schedule Run3D executes — reproduces the multi-processor
// figure; see DESIGN.md and EXPERIMENTS.md.
var benchWorkers = []int{1, 2, 4, 8}

// simulatedSpeedup predicts the speedup of the blocked wavefront on w
// processors from the block structure of the triple.
func simulatedSpeedup(tr seq.Triple, blockSize, w int) float64 {
	si := wavefront.Partition(tr.A.Len()+1, blockSize)
	sj := wavefront.Partition(tr.B.Len()+1, blockSize)
	sk := wavefront.Partition(tr.C.Len()+1, blockSize)
	cost := wavefront.SpanCost(si, sj, sk, 1)
	t1 := wavefront.Simulate(len(si), len(sj), len(sk), 1, cost)
	tw := wavefront.Simulate(len(si), len(sj), len(sk), w, cost)
	if tw == 0 {
		return 0
	}
	return t1 / tw
}

// BenchmarkF1Speedup — F1: parallel wavefront runtime vs worker count.
// Measured speedup is t(workers=1)/t(workers=w) across the sub-benchmarks;
// the simulated_speedup metric carries the hardware-independent curve.
func BenchmarkF1Speedup(b *testing.B) {
	tr := benchTriple(3000, 128, 0.3)
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				aln, err := core.AlignParallel(context.Background(), tr, scoring.DNADefault(), core.Options{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				benchSink = aln.Score
			}
			b.ReportMetric(float64(cells(tr))*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
			b.ReportMetric(simulatedSpeedup(tr, core.DefaultBlockSize, w), "simulated_speedup")
		})
	}
}

// BenchmarkF2Efficiency — F2: as F1 but at several lengths, so efficiency
// (speedup/workers) can be compared across problem sizes.
func BenchmarkF2Efficiency(b *testing.B) {
	for _, n := range []int{96, 160} {
		tr := benchTriple(4000+int64(n), n, 0.3)
		for _, w := range benchWorkers {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					aln, err := core.AlignParallel(context.Background(), tr, scoring.DNADefault(), core.Options{Workers: w})
					if err != nil {
						b.Fatal(err)
					}
					benchSink = aln.Score
				}
				b.ReportMetric(simulatedSpeedup(tr, core.DefaultBlockSize, w)/float64(w), "simulated_efficiency")
			})
		}
	}
}

// BenchmarkF3BlockSize — F3: tile-size ablation at a fixed length and full
// parallelism.
func BenchmarkF3BlockSize(b *testing.B) {
	tr := benchTriple(5000, 128, 0.3)
	for _, bs := range []int{4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("block=%d", bs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				aln, err := core.AlignParallel(context.Background(), tr, scoring.DNADefault(), core.Options{BlockSize: bs})
				if err != nil {
					b.Fatal(err)
				}
				benchSink = aln.Score
			}
		})
	}
}

// BenchmarkT3Quality — T3: exact aligner vs heuristics; the sp_score
// metric carries the quality comparison, the timing carries the cost gap.
func BenchmarkT3Quality(b *testing.B) {
	for _, id := range []float64{0.5, 0.7, 0.9} {
		tr := benchTriple(6000+int64(id*100), 100, 1-id)
		runs := []struct {
			name string
			f    func() (int32, error)
		}{
			{"exact", func() (int32, error) {
				a, err := core.AlignParallel(context.Background(), tr, scoring.DNADefault(), core.Options{})
				if err != nil {
					return 0, err
				}
				return a.Score, nil
			}},
			{"center-star", func() (int32, error) {
				a, err := msa.CenterStar(tr, scoring.DNADefault())
				if err != nil {
					return 0, err
				}
				return a.Score, nil
			}},
			{"progressive", func() (int32, error) {
				a, err := msa.Progressive(tr, scoring.DNADefault())
				if err != nil {
					return 0, err
				}
				return a.Score, nil
			}},
		}
		for _, r := range runs {
			b.Run(fmt.Sprintf("identity=%.0f%%/algo=%s", id*100, r.name), func(b *testing.B) {
				var score int32
				for i := 0; i < b.N; i++ {
					s, err := r.f()
					if err != nil {
						b.Fatal(err)
					}
					score = s
				}
				benchSink = score
				b.ReportMetric(float64(score), "sp_score")
			})
		}
	}
}

// BenchmarkF4Pruning — F4: Carrillo–Lipman evaluated-cell fraction and
// runtime vs sequence identity, with the center-star score as lower bound.
func BenchmarkF4Pruning(b *testing.B) {
	for _, id := range []float64{0.5, 0.7, 0.9, 0.95} {
		tr := benchTriple(7000+int64(id*100), 96, 1-id)
		b.Run(fmt.Sprintf("identity=%.0f%%", id*100), func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				bound, err := msa.CenterStar(tr, scoring.DNADefault())
				if err != nil {
					b.Fatal(err)
				}
				aln, st, err := core.AlignPruned(context.Background(), tr, scoring.DNADefault(), core.Options{}, bound.Score)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = aln.Score
				frac = st.Fraction()
			}
			b.ReportMetric(frac, "evaluated_fraction")
		})
	}
}

// BenchmarkT4UnequalLengths — T4: constant-volume shapes; runtime should
// track n·m·p, so all sub-benchmarks land near the same time.
func BenchmarkT4UnequalLengths(b *testing.B) {
	shapes := [][3]int{{64, 64, 64}, {128, 64, 32}, {256, 64, 16}, {512, 32, 16}}
	for _, s := range shapes {
		g := seq.NewGenerator(seq.DNA, 8000+int64(s[0]))
		tr := g.TripleWithLengths(s[0], s[1], s[2], seq.Uniform(0.3))
		b.Run(fmt.Sprintf("shape=%dx%dx%d", s[0], s[1], s[2]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				aln, err := core.AlignParallel(context.Background(), tr, scoring.DNADefault(), core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				benchSink = aln.Score
			}
			b.ReportMetric(float64(cells(tr))*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}

// BenchmarkF5ParallelLinear — F5: the linear-space algorithm's scaling with
// workers at lengths where the full matrix would be uncomfortably large.
func BenchmarkF5ParallelLinear(b *testing.B) {
	tr := benchTriple(9000, 192, 0.3)
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				aln, err := core.AlignParallelLinear(context.Background(), tr, scoring.DNADefault(), core.Options{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				benchSink = aln.Score
			}
			b.ReportMetric(float64(core.LinearBytes(tr)), "lattice_bytes")
		})
	}
}

// BenchmarkF6Schedule — F6: schedule ablation. The blocked wavefront
// (paper's design) against the plane-synchronized anti-diagonal schedule
// (one barrier per i+j+k level) on identical inputs.
func BenchmarkF6Schedule(b *testing.B) {
	for _, n := range []int{64, 128} {
		tr := benchTriple(11000+int64(n), n, 0.3)
		b.Run(fmt.Sprintf("schedule=blocked/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				aln, err := core.AlignParallel(context.Background(), tr, scoring.DNADefault(), core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				benchSink = aln.Score
			}
		})
		b.Run(fmt.Sprintf("schedule=diagonal/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				aln, err := core.AlignDiagonal(context.Background(), tr, scoring.DNADefault(), core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				benchSink = aln.Score
			}
		})
	}
}

// BenchmarkT5Affine — T5: overhead of the 7-state affine DP relative to
// the linear model at the same lengths.
func BenchmarkT5Affine(b *testing.B) {
	affSch, err := scoring.DNADefault().WithGaps(-4, -1)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{32, 64} {
		tr := benchTriple(10000+int64(n), n, 0.3)
		b.Run(fmt.Sprintf("model=linear/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				aln, err := core.AlignFull(context.Background(), tr, scoring.DNADefault(), core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				benchSink = aln.Score
			}
		})
		b.Run(fmt.Sprintf("model=affine/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				aln, err := core.AlignAffine(context.Background(), tr, affSch, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				benchSink = aln.Score
			}
		})
		b.Run(fmt.Sprintf("model=affine-linear/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				aln, err := core.AlignAffineLinear(context.Background(), tr, affSch, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				benchSink = aln.Score
			}
		})
	}
}

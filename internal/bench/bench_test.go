package bench

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]time.Duration{10, 20, 30})
	if s.N != 3 || s.Min != 10 || s.Max != 30 || s.Mean != 20 {
		t.Fatalf("Summarize = %+v", s)
	}
	// Population std of {10,20,30} is sqrt(200/3) ≈ 8.16.
	if s.Std < 8 || s.Std > 9 {
		t.Fatalf("Std = %v", s.Std)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("Summarize(nil) = %+v", z)
	}
}

func TestMeasureRuns(t *testing.T) {
	n := 0
	got := Measure(3, func() { n++ })
	if n != 4 { // 1 warm-up + 3 measured
		t.Fatalf("f ran %d times, want 4", n)
	}
	if got.N != 3 {
		t.Fatalf("N = %d, want 3", got.N)
	}
	n = 0
	Measure(0, func() { n++ })
	if n != 2 {
		t.Fatalf("reps<1: f ran %d times, want 2", n)
	}
}

func TestSpeedupEfficiency(t *testing.T) {
	if s := Speedup(100, 25); s != 4 {
		t.Errorf("Speedup = %v, want 4", s)
	}
	if s := Speedup(100, 0); s != 0 {
		t.Errorf("Speedup(÷0) = %v, want 0", s)
	}
	if e := Efficiency(100, 25, 8); e != 0.5 {
		t.Errorf("Efficiency = %v, want 0.5", e)
	}
	if e := Efficiency(100, 25, 0); e != 0 {
		t.Errorf("Efficiency(0 workers) = %v, want 0", e)
	}
}

func TestCellRate(t *testing.T) {
	if r := CellRate(1_000_000, time.Second); r != 1e6 {
		t.Errorf("CellRate = %v, want 1e6", r)
	}
	if r := CellRate(10, 0); r != 0 {
		t.Errorf("CellRate(0s) = %v, want 0", r)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("T1: runtimes", "n", "time", "rate")
	tab.Caption = "lower is better"
	tab.AddRowf(64, 1500*time.Microsecond, 12.3456)
	tab.AddRow("128", "12ms")
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"T1: runtimes", "=====", "n", "time", "rate", "12.35", "1.5ms", "128", "lower is better"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if tab.Rows() != 2 {
		t.Errorf("Rows = %d, want 2", tab.Rows())
	}
}

func TestTableRowPadding(t *testing.T) {
	tab := NewTable("x", "a", "b")
	tab.AddRow("1")           // short row padded
	tab.AddRow("1", "2", "3") // long row truncated
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "3") {
		t.Errorf("overflow cell rendered:\n%s", b.String())
	}
}

func TestNumericCell(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"123", true}, {"1.5ms", true}, {"-0.25", true}, {"1.2e6", true},
		{"abc", false}, {"", false}, {"n=64", false}, {"12%", true},
	}
	for _, c := range cases {
		if got := numericCell(c.in); got != c.want {
			t.Errorf("numericCell(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("GeoMean = %v, want 4", g)
	}
	if g := GeoMean([]float64{0, -1}); g != 0 {
		t.Errorf("GeoMean of nonpositives = %v, want 0", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", g)
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("Median odd = %v, want 2", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("Median even = %v, want 2.5", m)
	}
	if m := Median(nil); m != 0 {
		t.Errorf("Median(nil) = %v, want 0", m)
	}
	in := []float64{9, 1}
	Median(in)
	if in[0] != 9 {
		t.Error("Median mutated its argument")
	}
}

func TestRenderCSV(t *testing.T) {
	tab := NewTable("T9: demo", "n", "time")
	tab.AddRowf(64, 1500*time.Microsecond)
	tab.AddRow("has,comma", "x")
	var b strings.Builder
	if err := tab.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "# T9: demo\n") {
		t.Errorf("missing title comment:\n%s", out)
	}
	if !strings.Contains(out, "n,time\n") {
		t.Errorf("missing header row:\n%s", out)
	}
	if !strings.Contains(out, "64,1.5ms\n") {
		t.Errorf("missing data row:\n%s", out)
	}
	if !strings.Contains(out, `"has,comma",x`) {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
}

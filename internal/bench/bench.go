// Package bench provides the measurement and reporting substrate for the
// experiment suite: repeated wall-clock timing, summary statistics,
// speedup/efficiency derivation, and fixed-width text tables matching the
// shape of the paper's tables and figures.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Timing summarizes repeated measurements of one configuration.
type Timing struct {
	N    int           // number of measured repetitions
	Min  time.Duration // fastest repetition
	Mean time.Duration
	Max  time.Duration
	Std  time.Duration // population standard deviation
}

// Measure runs f once to warm up, then reps more times, and summarizes the
// measured repetitions. reps < 1 is treated as 1.
func Measure(reps int, f func()) Timing {
	if reps < 1 {
		reps = 1
	}
	f() // warm-up: page in lattices, stabilize the scheduler
	samples := make([]time.Duration, reps)
	for i := range samples {
		start := time.Now()
		f()
		samples[i] = time.Since(start)
	}
	return Summarize(samples)
}

// Summarize computes the Timing statistics of a sample set.
func Summarize(samples []time.Duration) Timing {
	if len(samples) == 0 {
		return Timing{}
	}
	t := Timing{N: len(samples), Min: samples[0], Max: samples[0]}
	var sum float64
	for _, s := range samples {
		if s < t.Min {
			t.Min = s
		}
		if s > t.Max {
			t.Max = s
		}
		sum += float64(s)
	}
	mean := sum / float64(len(samples))
	t.Mean = time.Duration(mean)
	var ss float64
	for _, s := range samples {
		d := float64(s) - mean
		ss += d * d
	}
	t.Std = time.Duration(math.Sqrt(ss / float64(len(samples))))
	return t
}

// Speedup is t1/tp: how much faster p workers are than one.
func Speedup(t1, tp time.Duration) float64 {
	if tp <= 0 {
		return 0
	}
	return float64(t1) / float64(tp)
}

// Efficiency is Speedup divided by the worker count.
func Efficiency(t1, tp time.Duration, workers int) float64 {
	if workers <= 0 {
		return 0
	}
	return Speedup(t1, tp) / float64(workers)
}

// CellRate converts a lattice size and a duration into cells per second,
// the throughput unit used by the runtime tables.
func CellRate(cells int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(cells) / d.Seconds()
}

// Table is a fixed-width text table with a title and caption, rendered in
// the style of the paper's tables.
type Table struct {
	Title   string
	Caption string
	Header  []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells beyond the header width are dropped and
// missing cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells; each argument is rendered with
// %v except float64, which uses two decimals, and time.Duration, which uses
// its native formatting rounded to 10µs.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		case time.Duration:
			row = append(row, v.Round(10*time.Microsecond).String())
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table: title, underline, aligned header and rows, and
// the caption. Numeric-looking cells are right-aligned.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if numericCell(c) {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(widths) - 1
	if total < 0 {
		total = 0
	}
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

func numericCell(s string) bool {
	if s == "" {
		return false
	}
	digits := 0
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			digits++
		case strings.ContainsRune(".-+eEx%sµmnh", r):
			// signs, exponents, duration suffixes, percent
		default:
			return false
		}
	}
	return digits > 0
}

// RenderCSV writes the table as RFC-4180 CSV: a comment line with the
// title, the header row, then the data rows. Machine-readable counterpart
// of Render for plotting pipelines.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// GeoMean returns the geometric mean of positive values; zero or negative
// inputs are skipped. It is used to aggregate speedups across lengths.
func GeoMean(vals []float64) float64 {
	var logSum float64
	n := 0
	for _, v := range vals {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Median returns the median of the values (the mean of the middle pair for
// even lengths). It does not modify its argument.
func Median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

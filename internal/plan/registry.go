package plan

import (
	"context"

	"repro/internal/alignment"
	"repro/internal/core"
	"repro/internal/msa"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// RunFunc executes one kernel. PruneStats is non-nil only for the
// Carrillo–Lipman kernels.
type RunFunc func(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt core.Options) (*alignment.Alignment, *core.PruneStats, error)

// KernelSpec is one algorithm's self-description: what it optimizes, how
// it scales, how to estimate its footprint, and how to run it. The
// registry of specs replaces the hard-coded algorithm switch that used to
// live in the facade.
type KernelSpec struct {
	// Name is the public algorithm name (repro.Algorithm value).
	Name string
	// Gaps is the bitmask of gap models the kernel optimizes. Purely
	// descriptive for dispatch (an explicit request runs regardless, as the
	// old switch did), normative for automatic selection.
	Gaps GapModel
	// Space is the working-memory growth class; the downgrade ladder is
	// monotone non-increasing in it.
	Space SpaceClass
	// Parallel reports that the kernel exploits Options.Workers.
	Parallel bool
	// Exact reports a provably optimal kernel (under its gap model), as
	// opposed to a heuristic; only exact kernels participate in the
	// Fallback degradation policy and the budget last resort.
	Exact bool
	// Traceback reports that the kernel reconstructs the full aligned rows
	// (every registered kernel currently does; score-only kernels would
	// clear it).
	Traceback bool
	// Blocked3D reports that the kernel runs the blocked 3D wavefront
	// schedule and therefore negotiates TileDims through the planner.
	Blocked3D bool
	// WidthAware reports that the kernel honors core.Options.CellWidth:
	// the planner may negotiate 16-bit lattice cells for it (halving the
	// byte estimate) when the request's score bound allows.
	WidthAware bool
	// BytesPerCell is the lattice cost per DP cell for blocked kernels
	// (4 for the single linear-gap tensor, 28 for the seven affine ones);
	// it parameterizes the adaptive tile heuristic.
	BytesPerCell int
	// RateKey and RateScale map the kernel onto the calibrated throughput
	// table: predicted rate = Calibration[RateKey] × RateScale.
	RateKey   string
	RateScale float64
	// RateOnEvaluated marks the calibrated rate (and EstCellsFrac) as
	// per-*evaluated*-cell rather than per-lattice-cell: the bounded-search
	// kernels' throughput is measured over the cells the bound admits, so
	// their duration estimate must multiply by the predicted evaluated
	// count, never the full lattice. Plans for such kernels surface the
	// prediction as EstEvaluatedCells.
	RateOnEvaluated bool
	// Downgrade names the next kernel down the memory ladder, or "" when
	// only the heuristic last resort (exact kernels) or nothing (heuristics)
	// remains.
	Downgrade string
	// EstBytes predicts the peak working-set allocation for a shape,
	// saturating in uint64.
	EstBytes func(Shape) uint64
	// EstCells predicts the DP cell count; nil means the full lattice
	// Shape.Cells (linear-space kernels still fill every lattice cell —
	// their saving is space, not work).
	EstCells func(Shape) uint64
	// EstBytesFrac, when non-nil, refines EstBytes with a predicted
	// evaluated fraction (Request.EvalFraction); the planner uses it
	// whenever the request carries a prediction. EstBytes stays the
	// conservative fraction-1 model for requests without one.
	EstBytesFrac func(Shape, float64) uint64
	// EstCellsFrac is the fraction-aware companion of EstCells; for the
	// bounded kernels it predicts the evaluated cell count.
	EstCellsFrac func(Shape, float64) uint64
	// Run executes the kernel.
	Run RunFunc
}

func (k *KernelSpec) estCells(s Shape) uint64 {
	if k.EstCells != nil {
		return k.EstCells(s)
	}
	return s.Cells()
}

// Supports reports whether the kernel optimizes the gap model.
func (k *KernelSpec) Supports(g GapModel) bool { return k.Gaps&g != 0 }

var (
	kernels = make(map[string]*KernelSpec)
	order   []string
)

// Lookup finds a kernel spec by algorithm name.
func Lookup(name string) (*KernelSpec, bool) {
	k, ok := kernels[name]
	return k, ok
}

// Kernels lists every registered spec in registration order.
func Kernels() []*KernelSpec {
	out := make([]*KernelSpec, len(order))
	for i, name := range order {
		out[i] = kernels[name]
	}
	return out
}

func register(k *KernelSpec) {
	if _, dup := kernels[k.Name]; dup {
		panic("plan: duplicate kernel " + k.Name)
	}
	kernels[k.Name] = k
	order = append(order, k.Name)
}

// wrap adapts the common (Alignment, error) kernel signature to RunFunc.
func wrap(f func(context.Context, seq.Triple, *scoring.Scheme, core.Options) (*alignment.Alignment, error)) RunFunc {
	return func(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt core.Options) (*alignment.Alignment, *core.PruneStats, error) {
		aln, err := f(ctx, tr, sch, opt)
		return aln, nil, err
	}
}

// wrapHeuristic adapts the context-free msa heuristics to RunFunc.
func wrapHeuristic(f func(seq.Triple, *scoring.Scheme) (*alignment.Alignment, error)) RunFunc {
	return func(_ context.Context, tr seq.Triple, sch *scoring.Scheme, _ core.Options) (*alignment.Alignment, *core.PruneStats, error) {
		aln, err := f(tr, sch)
		return aln, nil, err
	}
}

// runPruned runs a Carrillo–Lipman kernel seeded with the
// center-star-refined lower bound, surfacing its PruneStats.
func runPruned(parallel bool) RunFunc {
	return func(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt core.Options) (*alignment.Alignment, *core.PruneStats, error) {
		bound, err := msa.CenterStarRefined(tr, sch)
		if err != nil {
			return nil, nil, err
		}
		var (
			aln *alignment.Alignment
			st  core.PruneStats
		)
		if parallel {
			aln, st, err = core.AlignPrunedParallel(ctx, tr, sch, opt, bound.Score)
		} else {
			aln, st, err = core.AlignPruned(ctx, tr, sch, opt, bound.Score)
		}
		if err != nil {
			return nil, nil, err
		}
		return aln, &st, nil
	}
}

// runBounded runs a Carrillo–Lipman bounded-search kernel — the contiguous
// band fill or the A* frontier — seeded with the center-star-refined lower
// bound, surfacing its PruneStats.
func runBounded(frontier bool) RunFunc {
	return func(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt core.Options) (*alignment.Alignment, *core.PruneStats, error) {
		bound, err := msa.CenterStarRefined(tr, sch)
		if err != nil {
			return nil, nil, err
		}
		var (
			aln *alignment.Alignment
			st  core.PruneStats
		)
		if frontier {
			aln, st, err = core.AlignAStar(ctx, tr, sch, opt, bound.Score)
		} else {
			aln, st, err = core.AlignBounded(ctx, tr, sch, opt, bound.Score)
		}
		if err != nil {
			return nil, nil, err
		}
		return aln, &st, nil
	}
}

// Footprint estimators. The byte models mirror what the kernels actually
// allocate: one int32 lattice for linear gaps, seven for affine,
// 4 sweep planes (Hirschberg) or 28 (affine Hirschberg), and int32
// score + traceback pairwise matrices for the heuristics.
func latticeBytes(perCell uint64) func(Shape) uint64 {
	return func(s Shape) uint64 { return mulSat(s.Cells(), perCell) }
}

func planeBytes(perCell uint64) func(Shape) uint64 {
	return func(s Shape) uint64 { return mulSat(s.PlaneCells(), perCell) }
}

func pairBytes(s Shape) uint64 { return mulSat(s.PairCells(), 12) }

func pairCells(s Shape) uint64 { return s.PairCells() }

func init() {
	register(&KernelSpec{
		Name: "full", Gaps: GapLinear, Space: SpaceLattice,
		Exact: true, Traceback: true, WidthAware: true, BytesPerCell: 4,
		RateKey: "full", RateScale: 1,
		Downgrade: "linear", EstBytes: latticeBytes(4),
		Run: wrap(core.AlignFull),
	})
	register(&KernelSpec{
		Name: "parallel", Gaps: GapLinear, Space: SpaceLattice,
		Parallel: true, Exact: true, Traceback: true, Blocked3D: true, WidthAware: true, BytesPerCell: 4,
		RateKey: "parallel", RateScale: 1,
		Downgrade: "parallel-linear", EstBytes: latticeBytes(4),
		Run: wrap(core.AlignParallel),
	})
	register(&KernelSpec{
		// The lane-packed sequential fill: same lattice, same optimum, with
		// the k-lane interior vectorized (AVX2 two-pass max-plus scan where
		// the host has it, unrolled bounds-check-free windows elsewhere).
		Name: "full-packed", Gaps: GapLinear, Space: SpaceLattice,
		Exact: true, Traceback: true, WidthAware: true, BytesPerCell: 4,
		RateKey: "full-packed", RateScale: 1,
		Downgrade: "linear", EstBytes: latticeBytes(4),
		Run: wrap(core.AlignFullPacked),
	})
	register(&KernelSpec{
		Name: "parallel-packed", Gaps: GapLinear, Space: SpaceLattice,
		Parallel: true, Exact: true, Traceback: true, Blocked3D: true, WidthAware: true, BytesPerCell: 4,
		RateKey: "parallel-packed", RateScale: 1,
		Downgrade: "parallel-linear", EstBytes: latticeBytes(4),
		Run: wrap(core.AlignParallelPacked),
	})
	register(&KernelSpec{
		Name: "linear", Gaps: GapLinear, Space: SpacePlanes,
		Exact: true, Traceback: true, BytesPerCell: 4,
		RateKey: "linear", RateScale: 1,
		EstBytes: planeBytes(16),
		Run:      wrap(core.AlignLinear),
	})
	register(&KernelSpec{
		Name: "parallel-linear", Gaps: GapLinear, Space: SpacePlanes,
		Parallel: true, Exact: true, Traceback: true, BytesPerCell: 4,
		RateKey: "linear", RateScale: 1,
		EstBytes: planeBytes(16),
		Run:      wrap(core.AlignParallelLinear),
	})
	register(&KernelSpec{
		Name: "diagonal", Gaps: GapLinear, Space: SpaceLattice,
		Parallel: true, Exact: true, Traceback: true, BytesPerCell: 4,
		RateKey: "diagonal", RateScale: 1,
		Downgrade: "parallel-linear", EstBytes: latticeBytes(4),
		Run: wrap(core.AlignDiagonal),
	})
	register(&KernelSpec{
		Name: "pruned", Gaps: GapLinear, Space: SpaceLattice,
		Exact: true, Traceback: true, BytesPerCell: 4,
		RateKey: "pruned", RateScale: 1,
		Downgrade: "linear", EstBytes: latticeBytes(4),
		Run: runPruned(false),
	})
	register(&KernelSpec{
		Name: "pruned-parallel", Gaps: GapLinear, Space: SpaceLattice,
		Parallel: true, Exact: true, Traceback: true, Blocked3D: true, BytesPerCell: 4,
		RateKey: "pruned", RateScale: 1,
		Downgrade: "parallel-linear", EstBytes: latticeBytes(4),
		Run: runPruned(true),
	})
	register(&KernelSpec{
		// The Carrillo–Lipman contiguous band: allocates only the cells the
		// three-way bound admits, so memory and work scale with the
		// evaluated fraction. Exact and bit-identical to the full kernel's
		// traceback; the rate and cell estimates are per evaluated cell.
		Name: "bounded", Gaps: GapLinear, Space: SpaceBand,
		Parallel: true, Exact: true, Traceback: true, BytesPerCell: 4,
		RateKey: "bounded", RateScale: 1, RateOnEvaluated: true,
		Downgrade:    "parallel-linear",
		EstBytes:     func(s Shape) uint64 { return bandBytes(s, 1) },
		EstBytesFrac: bandBytes, EstCellsFrac: fracCells,
		Run: runBounded(false),
	})
	register(&KernelSpec{
		// The A* frontier (Schroedl): best-first over the lattice with the
		// pairwise suffix heuristic. No lattice-shaped allocation at all —
		// memory is per expanded node — which wins on very similar triples
		// whose admissible region is a thin tube, at a steep per-node cost.
		Name: "astar", Gaps: GapLinear, Space: SpaceBand,
		Exact: true, Traceback: true, BytesPerCell: 4,
		RateKey: "astar", RateScale: 1, RateOnEvaluated: true,
		Downgrade:    "linear",
		EstBytes:     func(s Shape) uint64 { return astarBytes(s, 1) },
		EstBytesFrac: astarBytes, EstCellsFrac: fracCells,
		Run: runBounded(true),
	})
	register(&KernelSpec{
		Name: "affine", Gaps: GapAffine, Space: SpaceLattice,
		Exact: true, Traceback: true, BytesPerCell: 28,
		RateKey: "affine7", RateScale: 1,
		Downgrade: "affine-linear", EstBytes: latticeBytes(28),
		Run: wrap(core.AlignAffine),
	})
	register(&KernelSpec{
		// The affine Hirschberg halves at every level; its rate is roughly
		// half the one-pass affine fill's.
		Name: "affine-linear", Gaps: GapAffine, Space: SpacePlanes,
		Exact: true, Traceback: true, BytesPerCell: 28,
		RateKey: "affine7", RateScale: 0.5,
		EstBytes: planeBytes(112),
		Run:      wrap(core.AlignAffineLinear),
	})
	register(&KernelSpec{
		Name: "affine-parallel", Gaps: GapAffine, Space: SpaceLattice,
		Parallel: true, Exact: true, Traceback: true, Blocked3D: true, BytesPerCell: 28,
		RateKey: "affine7", RateScale: 1,
		Downgrade: "affine-linear", EstBytes: latticeBytes(28),
		Run: wrap(core.AlignAffineParallel),
	})
	register(&KernelSpec{
		Name: "center-star", Gaps: GapLinear | GapAffine, Space: SpacePairwise,
		Traceback: true,
		RateKey:   "pairwise-global", RateScale: 1,
		EstBytes: pairBytes, EstCells: pairCells,
		Run: wrapHeuristic(msa.CenterStar),
	})
	register(&KernelSpec{
		// Refinement re-aligns each row against the other two a bounded
		// number of rounds; call it half the raw center-star rate.
		Name: "center-star-refined", Gaps: GapLinear | GapAffine, Space: SpacePairwise,
		Traceback: true,
		RateKey:   "pairwise-global", RateScale: 0.5,
		EstBytes: pairBytes, EstCells: pairCells,
		Run: wrapHeuristic(msa.CenterStarRefined),
	})
	register(&KernelSpec{
		Name: "progressive", Gaps: GapLinear | GapAffine, Space: SpacePairwise,
		Traceback: true,
		RateKey:   "pairwise-global", RateScale: 0.7,
		EstBytes: pairBytes, EstCells: pairCells,
		Run: wrapHeuristic(msa.Progressive),
	})

	// Registry self-check: every downgrade edge must exist and move down
	// (or stay level in) the space-class ladder, or the budget loop in
	// Resolve could cycle or dead-end on a typo; every rate key must have a
	// calibration row, or duration predictions silently go to zero.
	for _, k := range Kernels() {
		if _, ok := Calibration[k.RateKey]; !ok {
			panic("plan: " + k.Name + " has no calibration entry for rate key " + k.RateKey)
		}
		if k.Downgrade == "" {
			continue
		}
		to, ok := kernels[k.Downgrade]
		if !ok {
			panic("plan: " + k.Name + " downgrades to unregistered " + k.Downgrade)
		}
		if to.Space >= k.Space {
			panic("plan: downgrade " + k.Name + "→" + to.Name + " does not shrink the space class")
		}
	}
}

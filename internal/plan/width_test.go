package plan

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// widthRequest builds an explicit full-packed request so the property
// exercises only the width negotiation, not kernel selection.
func widthRequest(na, nb, nc int, maxAbsColumn int64) Request {
	return Request{
		Shape:        Shape{NA: na, NB: nb, NC: nc},
		Algorithm:    "full-packed",
		MaxAbsColumn: maxAbsColumn,
	}
}

// TestWidthNegotiationProperty drives Resolve with shapes and column
// bounds randomly straddling the int16 limit and asserts the planner
// chooses 16-bit cells exactly when total·maxAbsColumn provably fits
// int16 — and that the check itself never wraps into a false 16.
func TestWidthNegotiationProperty(t *testing.T) {
	prop := func(na, nb, nc uint16, mc uint16) bool {
		// Bias the draw toward the boundary: sequence totals up to
		// ~196k residues and per-column bounds up to 64 cover both
		// sides of total·mc ≤ MaxInt16.
		bound := int64(mc%64) + 1
		a, b, c := int(na), int(nb), int(nc)
		pl, _, err := Resolve(widthRequest(a, b, c, bound))
		if err != nil {
			t.Fatalf("Resolve(%d,%d,%d,mc=%d): %v", a, b, c, bound, err)
		}
		total := uint64(a) + uint64(b) + uint64(c)
		wantWidth := 32
		if core.Int16SafeBound(total, uint64(bound)) {
			wantWidth = 16
		}
		if pl.CellWidthBits != wantWidth {
			t.Errorf("shape (%d,%d,%d) mc=%d: width %d, want %d (total·mc=%d)",
				a, b, c, bound, pl.CellWidthBits, wantWidth, total*uint64(bound))
			return false
		}
		// Footprint accounting must match the negotiated width: a 16-bit
		// plan reports exactly half the 32-bit estimate of the same
		// shape (well under the 55% acceptance ceiling), and a 32-bit
		// plan reports the unscaled estimate.
		wide, _, err := Resolve(widthRequest(a, b, c, 0))
		if err != nil {
			t.Fatalf("Resolve wide: %v", err)
		}
		if wide.CellWidthBits != 32 {
			t.Errorf("MaxAbsColumn=0 must keep 32-bit cells, got %d", wide.CellWidthBits)
			return false
		}
		switch wantWidth {
		case 16:
			if pl.EstBytes != wide.EstBytes/2 {
				t.Errorf("int16 EstBytes %d, want half of %d", pl.EstBytes, wide.EstBytes)
				return false
			}
		case 32:
			if pl.EstBytes != wide.EstBytes {
				t.Errorf("int32 EstBytes %d, want %d", pl.EstBytes, wide.EstBytes)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestWidthNegotiationBoundary pins the exact int16 cliff and the
// saturation backstops that keep adversarial inputs from wrapping the
// predicate into an unsafe 16-bit plan.
func TestWidthNegotiationBoundary(t *testing.T) {
	cases := []struct {
		name      string
		na        int
		mc        int64
		wantWidth int
	}{
		// MaxInt16 = 32767. With mc=1 the boundary sits at total=32767.
		{"at-limit", 32767, 1, 16},
		{"one-past", 32768, 1, 32},
		// mc=7: 32767/7 = 4681 columns fit; 4682 do not.
		{"divided-at", 4681, 7, 16},
		{"divided-past", 4682, 7, 32},
		// A bound alone past MaxInt16 can never fit, whatever the shape.
		{"huge-bound", 1, math.MaxInt16 + 1, 32},
		// MaxInt64 bound must not wrap the division-based check.
		{"maxint64-bound", 1, math.MaxInt64, 32},
		// Zero/negative bounds mean "unknown": stay wide.
		{"zero-bound", 4, 0, 32},
		{"negative-bound", 4, -3, 32},
	}
	for _, tc := range cases {
		pl, _, err := Resolve(widthRequest(tc.na, 0, 0, tc.mc))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if pl.CellWidthBits != tc.wantWidth {
			t.Errorf("%s: na=%d mc=%d: width %d, want %d",
				tc.name, tc.na, tc.mc, pl.CellWidthBits, tc.wantWidth)
		}
	}
	// Width-unaware kernels ignore the bound entirely.
	pl, _, err := Resolve(Request{
		Shape: Shape{NA: 8, NB: 8, NC: 8}, Algorithm: "linear", MaxAbsColumn: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pl.CellWidthBits != 32 {
		t.Errorf("width-unaware kernel negotiated %d-bit cells", pl.CellWidthBits)
	}
}

package plan

import "math"

// Data-dependent cost model for the Carrillo–Lipman bounded-search kernels.
//
// The bounded kernels' work and memory scale with the *evaluated* fraction
// of the lattice — the cells the three-way bound admits — not with n·m·p.
// That fraction is unknowable without running the bound, but it correlates
// tightly with pairwise identity: near-identical triples leave a thin tube
// around the main diagonal, unrelated ones admit everything. The facade
// probes identity with a k-mer distance (cheap, alignment-free) and maps it
// through EvalFractionForIdentity; the planner treats the result as the
// predicted fraction for both byte and duration estimates. A request that
// carries no prediction (EvalFraction == 0) is planned at fraction 1 — the
// whole lattice — which keeps the estimate conservative and the bounded
// kernels unattractive, exactly as they should be on unknown data.

// MinBoundedLen is the smallest min-dimension for which automatic selection
// considers the bounded kernels. Below it the full-lattice kernels are
// effectively free and the bounded kernels' O(n²) projection planes and
// band planning are pure overhead.
const MinBoundedLen = 128

// AStarFractionMax is the predicted evaluated fraction below which a
// sequential automatic request prefers the A* frontier over the contiguous
// band: the frontier beats the band only when the admissible region is a
// thin tube, since each expanded node costs a heap operation and a map
// probe instead of a handful of adds.
const AStarFractionMax = 0.05

// evalFracPoints is the piecewise-linear map from mean pairwise identity to
// predicted evaluated fraction, fitted against the benchsuite similarity
// sweep (identity 60/80/95%) and the core differential tests: ~96% identity
// evaluates a few percent of the lattice, 80% about a quarter, and by 50%
// the band is the whole lattice.
var evalFracPoints = [...][2]float64{
	{0.50, 1.00},
	{0.60, 0.70},
	{0.70, 0.45},
	{0.80, 0.25},
	{0.90, 0.12},
	{0.95, 0.05},
	{1.00, 0.01},
}

// EvalFractionForIdentity predicts the fraction of lattice cells the
// Carrillo–Lipman bound admits for a triple of the given mean pairwise
// identity (0..1). The prediction is monotone non-increasing in identity,
// clamped to [0.01, 1].
func EvalFractionForIdentity(identity float64) float64 {
	if math.IsNaN(identity) || identity <= evalFracPoints[0][0] {
		return 1
	}
	last := evalFracPoints[len(evalFracPoints)-1]
	if identity >= last[0] {
		return last[1]
	}
	for i := 1; i < len(evalFracPoints); i++ {
		if identity <= evalFracPoints[i][0] {
			lo, hi := evalFracPoints[i-1], evalFracPoints[i]
			t := (identity - lo[0]) / (hi[0] - lo[0])
			return lo[1] + t*(hi[1]-lo[1])
		}
	}
	return last[1]
}

// clampFrac sanitizes a predicted evaluated fraction: NaN or non-positive
// means "unknown", planned as the whole lattice; anything above 1 is a
// fraction of nothing more than the lattice.
func clampFrac(frac float64) float64 {
	if math.IsNaN(frac) || frac <= 0 || frac > 1 {
		return 1
	}
	return frac
}

// fracCells is the predicted evaluated cell count frac·Cells, saturating.
func fracCells(s Shape, frac float64) uint64 {
	f := float64(s.Cells()) * clampFrac(frac)
	if f >= float64(math.MaxUint64) {
		return math.MaxUint64
	}
	return uint64(f)
}

// bandBytes models AlignBounded's peak footprint: 4 bytes per stored band
// cell plus the pairwise planes (three through-planes for the bound, three
// score tables for the fill — ~8 bytes per pair cell).
func bandBytes(s Shape, frac float64) uint64 {
	return addSat(mulSat(fracCells(s, frac), 4), mulSat(s.PairCells(), 8))
}

// astarBytes models AlignAStar's peak footprint: ~64 bytes per expanded or
// frontier node (map entry plus amortized heap entry) over the same
// pairwise planes. The per-node constant is why A* only wins at tiny
// fractions despite expanding fewer cells.
func astarBytes(s Shape, frac float64) uint64 {
	return addSat(mulSat(fracCells(s, frac), 64), mulSat(s.PairCells(), 8))
}

// boundedCandidate is the Carrillo–Lipman kernel automatic selection would
// run for this request, or nil when none applies: the request must be
// linear-gap, carry an identity-probe prediction, and be long enough in
// every dimension that band planning pays for itself. Sequential requests
// with a very thin predicted band get the A* frontier; everything else gets
// the parallel contiguous band.
func boundedCandidate(req Request, gap GapModel) *KernelSpec {
	if gap != GapLinear || req.EvalFraction <= 0 || math.IsNaN(req.EvalFraction) {
		return nil
	}
	min := req.Shape.NA
	if req.Shape.NB < min {
		min = req.Shape.NB
	}
	if req.Shape.NC < min {
		min = req.Shape.NC
	}
	if min < MinBoundedLen {
		return nil
	}
	if !req.Parallel && req.EvalFraction <= AStarFractionMax {
		return kernels["astar"]
	}
	return kernels["bounded"]
}

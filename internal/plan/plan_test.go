package plan

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
)

// TestRegistryComplete pins the registry to the public algorithm list: 17
// kernels, each with a working estimator and a run function.
func TestRegistryComplete(t *testing.T) {
	ks := Kernels()
	if len(ks) != 17 {
		t.Fatalf("registry has %d kernels, want 17", len(ks))
	}
	s := Shape{NA: 10, NB: 11, NC: 12}
	for _, k := range ks {
		if k.Run == nil {
			t.Errorf("%s: nil Run", k.Name)
		}
		if k.EstBytes == nil || k.EstBytes(s) == 0 {
			t.Errorf("%s: missing or zero EstBytes", k.Name)
		}
		if k.estCells(s) == 0 {
			t.Errorf("%s: zero estCells", k.Name)
		}
		if !k.Traceback {
			t.Errorf("%s: every registered kernel reconstructs rows", k.Name)
		}
		if _, ok := Calibration[k.RateKey]; !ok {
			t.Errorf("%s: rate key %q not in the calibration table", k.Name, k.RateKey)
		}
	}
}

// TestPlannerProperties is the testing/quick invariant suite over random
// shapes, gap models, and budgets:
//
//  1. an automatic request always lands on a kernel that supports the
//     scheme's gap model;
//  2. whenever a MaxMemoryBytes budget is set and planning succeeds, the
//     plan's EstBytes fits the budget;
//  3. the downgrade chain is monotone non-increasing in space class,
//     internally consistent (each step starts where the previous ended),
//     and ends at the planned kernel.
func TestPlannerProperties(t *testing.T) {
	prop := func(na, nb, nc uint16, budgetUnits uint32, affine, parallel, explicit bool) bool {
		shape := Shape{NA: int(na % 512), NB: int(nb % 512), NC: int(nc % 512)}
		gap := GapLinear
		if affine {
			gap = GapAffine
		}
		req := Request{Shape: shape, Gap: gap, Parallel: parallel}
		if explicit {
			req.Algorithm = "full"
		}
		// 0 means "no budget"; otherwise up to 256 MiB, biased small so the
		// ladder actually gets exercised.
		req.MaxMemoryBytes = int64(budgetUnits%(1<<22)) * 64

		pl, spec, err := Resolve(req)
		if err != nil {
			// Only an over-tight budget may fail, and it must say so in a
			// way 413 mapping can see.
			return req.MaxMemoryBytes > 0 && errors.Is(err, core.ErrTooLarge)
		}
		if pl.Algorithm != spec.Name {
			return false
		}
		// (1) gap-model support for automatic selection.
		if !explicit && !spec.Supports(gap) {
			return false
		}
		// (2) budget respected on success.
		if req.MaxMemoryBytes > 0 && pl.EstBytes > uint64(req.MaxMemoryBytes) {
			return false
		}
		// (3) downgrade chain shape.
		prevTo := ""
		for _, entry := range pl.Downgrades {
			from, to, ok := ParseDowngrade(entry)
			if !ok {
				return false
			}
			fromSpec, ok1 := Lookup(from)
			toSpec, ok2 := Lookup(to)
			if !ok1 || !ok2 || toSpec.Space > fromSpec.Space {
				return false
			}
			if prevTo != "" && from != prevTo {
				return false
			}
			prevTo = to
		}
		if prevTo != "" && prevTo != pl.Algorithm {
			return false
		}
		// Degraded implies the plan landed on a heuristic.
		if pl.Degraded && spec.Exact {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestShapeOverflowSaturates is the regression test for the old int-typed
// lattice guard: adversarially long sequences must saturate the uint64
// estimates instead of wrapping around to a small number that would admit
// an impossible allocation. Plan-only — nothing is allocated.
func TestShapeOverflowSaturates(t *testing.T) {
	huge := Shape{NA: math.MaxInt32, NB: math.MaxInt32, NC: math.MaxInt32}
	if got := huge.Cells(); got != math.MaxUint64 {
		t.Fatalf("Cells() = %d, want saturation at MaxUint64", got)
	}
	// Three MaxInt32 pair products sum to ~3·2^62, which still fits uint64;
	// push one axis to MaxInt64 to force PairCells through its saturation.
	if got := (Shape{NA: math.MaxInt64, NB: math.MaxInt64, NC: math.MaxInt64}).PairCells(); got != math.MaxUint64 {
		t.Fatalf("PairCells() = %d, want saturation", got)
	}

	// Without a budget the plan must carry the saturated estimates.
	pl, _, err := Resolve(Request{Shape: huge, Parallel: true})
	if err != nil {
		t.Fatalf("Resolve(huge): %v", err)
	}
	if pl.EstCells != math.MaxUint64 || pl.EstBytes != math.MaxUint64 {
		t.Fatalf("EstCells=%d EstBytes=%d, want saturated estimates", pl.EstCells, pl.EstBytes)
	}
	if pl.EstDuration != time.Duration(math.MaxInt64) {
		t.Fatalf("EstDuration=%v, want saturation at MaxInt64 ns", pl.EstDuration)
	}

	// With a budget, no kernel fits a saturated estimate: the planner must
	// reject with ErrTooLarge — never admit via wraparound.
	_, _, err = Resolve(Request{Shape: huge, Parallel: true, MaxMemoryBytes: 1 << 30})
	if !errors.Is(err, core.ErrTooLarge) {
		t.Fatalf("Resolve(huge, budget) err = %v, want ErrTooLarge", err)
	}
}

// TestAutoMatchesLegacyHeuristic pins automatic selection to the decision
// table of the old resolveAlgorithm switch in tsa.go, updated deliberately
// for the lane-packed linear-gap primaries.
func TestAutoMatchesLegacyHeuristic(t *testing.T) {
	small := Shape{NA: 10, NB: 10, NC: 10}
	big := Shape{NA: 200, NB: 200, NC: 200} // full lattice ≈ 32 MiB
	cases := []struct {
		name     string
		shape    Shape
		gap      GapModel
		parallel bool
		maxBytes int64
		want     string
	}{
		{"linear-parallel", small, GapLinear, true, 0, "parallel-packed"},
		{"linear-sequential", small, GapLinear, false, 0, "full-packed"},
		{"affine-parallel", small, GapAffine, true, 0, "affine-parallel"},
		{"affine-sequential", small, GapAffine, false, 0, "affine"},
		{"capped-linear-parallel", big, GapLinear, true, 1 << 20, "parallel-linear"},
		{"capped-linear-sequential", big, GapLinear, false, 1 << 20, "linear"},
		{"capped-affine", big, GapAffine, true, 1 << 20, "affine-linear"},
		{"capped-affine-sequential", big, GapAffine, false, 1 << 20, "affine-linear"},
	}
	for _, tc := range cases {
		pl, _, err := Resolve(Request{Shape: tc.shape, Gap: tc.gap, Parallel: tc.parallel, MaxBytes: tc.maxBytes})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if pl.Algorithm != tc.want {
			t.Errorf("%s: planned %s, want %s", tc.name, pl.Algorithm, tc.want)
		}
	}
}

// TestBudgetLadder walks the full downgrade ladder on an asymmetric shape
// where each rung has a distinct footprint: lattice (full) > planes
// (linear space) > pairwise (heuristic last resort).
func TestBudgetLadder(t *testing.T) {
	// A long A against short B and C keeps the three footprint classes far
	// apart: the sweep planes span only B×C while the pairwise matrices
	// pick up the long A edge twice.
	shape := Shape{NA: 4000, NB: 64, NC: 64}
	lattice := shape.Cells() * 4      // ≈ 67.6 MB
	planes := shape.PlaneCells() * 16 // ≈ 67.6 KB
	pairs := shape.PairCells() * 12   // ≈ 6.3 MB
	if !(pairs < lattice && planes < pairs) {
		t.Fatalf("shape does not order the ladder: lattice=%d pairs=%d planes=%d", lattice, pairs, planes)
	}

	// Budget between planes and pairs: the exact linear-space kernel fits.
	pl, _, err := Resolve(Request{Shape: shape, Parallel: true, MaxMemoryBytes: int64(planes) + 1024})
	if err != nil {
		t.Fatalf("planes budget: %v", err)
	}
	if pl.Algorithm != "parallel-linear" || pl.Degraded {
		t.Fatalf("planes budget: planned %s (degraded=%v), want parallel-linear", pl.Algorithm, pl.Degraded)
	}
	if len(pl.Downgrades) == 0 {
		t.Fatalf("planes budget: no downgrade recorded")
	}

	// Budget below even the planes: nothing exact fits; an automatic
	// request bottoms out on the degraded heuristic only if the heuristic
	// fits, which it does not here — expect ErrTooLarge.
	_, _, err = Resolve(Request{Shape: shape, Parallel: true, MaxMemoryBytes: 1024})
	if !errors.Is(err, core.ErrTooLarge) {
		t.Fatalf("tiny budget: err = %v, want ErrTooLarge", err)
	}
}

// TestLastResortHeuristic exercises the exact→heuristic last resort on a
// shape where the pairwise matrices are the only thing that fits: a short
// A against a large B×C face keeps the lattice big and makes the pairwise
// matrices slightly cheaper than the linear-space planes.
func TestLastResortHeuristic(t *testing.T) {
	shape := Shape{NA: 60, NB: 400, NC: 400}
	lattice := shape.Cells() * 4      // ≈ 39 MB
	planes := shape.PlaneCells() * 16 // ≈ 2.57 MB
	pairs := shape.PairCells() * 12   // ≈ 2.52 MB
	if !(pairs < planes && planes < lattice) {
		t.Fatalf("shape does not order pairs<planes<lattice: %d %d %d", pairs, planes, lattice)
	}
	budget := int64(pairs) + 1024
	pl, spec, err := Resolve(Request{Shape: shape, Parallel: true, MaxMemoryBytes: budget})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if pl.Algorithm != lastResort || spec.Exact {
		t.Fatalf("planned %s (exact=%v), want the %s last resort", pl.Algorithm, spec.Exact, lastResort)
	}
	if !pl.Degraded {
		t.Fatal("last-resort plan not marked Degraded")
	}
	if len(pl.Downgrades) < 2 {
		t.Fatalf("expected the full ladder in Downgrades, got %v", pl.Downgrades)
	}
	if pl.EstBytes > uint64(budget) {
		t.Fatalf("EstBytes %d over budget %d", pl.EstBytes, budget)
	}
}

// TestExplicitAlgorithmIdentity pins explicit requests: without a budget
// the planner never substitutes, whatever the shape.
func TestExplicitAlgorithmIdentity(t *testing.T) {
	shape := Shape{NA: 300, NB: 300, NC: 300}
	for _, k := range Kernels() {
		pl, _, err := Resolve(Request{Shape: shape, Algorithm: k.Name, Parallel: true})
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if pl.Algorithm != k.Name || len(pl.Downgrades) != 0 {
			t.Errorf("%s: planned %s with downgrades %v", k.Name, pl.Algorithm, pl.Downgrades)
		}
	}
	if _, _, err := Resolve(Request{Shape: shape, Algorithm: "nonsense"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// TestEvalFractionForIdentity pins the estimator's shape: monotone
// non-increasing in identity, clamped to [0.01, 1], and anchored at the
// calibrated sweep points.
func TestEvalFractionForIdentity(t *testing.T) {
	if got := EvalFractionForIdentity(0.3); got != 1 {
		t.Errorf("identity 0.3: frac %v, want 1 (unrelated data admits everything)", got)
	}
	if got := EvalFractionForIdentity(1.0); got != 0.01 {
		t.Errorf("identity 1.0: frac %v, want 0.01", got)
	}
	if got := EvalFractionForIdentity(math.NaN()); got != 1 {
		t.Errorf("NaN identity: frac %v, want the conservative 1", got)
	}
	if got := EvalFractionForIdentity(0.8); got != 0.25 {
		t.Errorf("identity 0.8: frac %v, want the anchored 0.25", got)
	}
	prev := math.Inf(1)
	for id := 0.0; id <= 1.5; id += 0.01 {
		f := EvalFractionForIdentity(id)
		if f < 0.01 || f > 1 {
			t.Fatalf("identity %.2f: frac %v out of [0.01, 1]", id, f)
		}
		if f > prev {
			t.Fatalf("identity %.2f: frac %v > %v — not monotone non-increasing", id, f, prev)
		}
		prev = f
	}
}

// TestBoundedAutoSelection covers the identity-probe selection paths:
// a thin predicted band wins the automatic slot outright, no prediction
// (or a short triple) keeps the legacy choice, and a sequential request
// with a very thin band prefers the A* frontier once the lattice kernels
// are priced out.
func TestBoundedAutoSelection(t *testing.T) {
	big := Shape{NA: 300, NB: 300, NC: 300}
	// Thin band, everything fits: bounded is predicted faster than the
	// packed lattice primary (0.05·cells at the bounded rate beats the full
	// lattice even at the packed kernels' higher per-cell rate).
	pl, spec, err := Resolve(Request{Shape: big, Parallel: true, EvalFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Algorithm != "bounded" {
		t.Fatalf("thin-band auto request planned %s, want bounded", pl.Algorithm)
	}
	if !spec.Exact || len(pl.Downgrades) != 0 || pl.Degraded {
		t.Fatalf("bounded plan not a clean exact selection: %+v", pl)
	}
	if pl.EstEvaluatedCells == 0 || pl.EstEvaluatedCells != pl.EstCells {
		t.Fatalf("EstEvaluatedCells %d / EstCells %d, want equal and non-zero",
			pl.EstEvaluatedCells, pl.EstCells)
	}
	want := fracCells(big, 0.05)
	if pl.EstCells != want {
		t.Fatalf("EstCells %d, want predicted evaluated count %d", pl.EstCells, want)
	}

	// No prediction: the legacy primary keeps the slot and no evaluated-cell
	// estimate is surfaced.
	pl, _, err = Resolve(Request{Shape: big, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Algorithm != "parallel-packed" || pl.EstEvaluatedCells != 0 {
		t.Fatalf("prediction-free request planned %s (est_evaluated=%d), want parallel-packed/0",
			pl.Algorithm, pl.EstEvaluatedCells)
	}

	// Short triple: band planning is pure overhead below MinBoundedLen.
	small := Shape{NA: 96, NB: 96, NC: 96}
	pl, _, err = Resolve(Request{Shape: small, Parallel: true, EvalFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Algorithm != "parallel-packed" {
		t.Fatalf("short triple planned %s, want parallel-packed", pl.Algorithm)
	}

	// Sequential, very thin band, lattice priced out by the hard cap: the
	// A* frontier is the preferred downgrade.
	// (24 MiB cap: prices out the ~109 MB lattice while admitting the A*
	// node estimate — ~64 B per expanded cell at fraction 0.01 ≈ 20 MB.)
	pl, _, err = Resolve(Request{Shape: big, EvalFraction: 0.01, MaxBytes: 24 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Algorithm != "astar" {
		t.Fatalf("sequential thin-band capped request planned %s, want astar", pl.Algorithm)
	}
	if len(pl.Downgrades) != 1 {
		t.Fatalf("expected one recorded downgrade, got %v", pl.Downgrades)
	}
	if from, to, ok := ParseDowngrade(pl.Downgrades[0]); !ok || from != "full-packed" || to != "astar" {
		t.Fatalf("downgrade entry %q, want full-packed→astar", pl.Downgrades[0])
	}
}

// TestBoundedBudgetLadderRung checks the soft-budget rung: a full-lattice
// kernel over budget lands on the Carrillo–Lipman band — still exact,
// still preference-ordered traceback — before falling to the sweep planes.
func TestBoundedBudgetLadderRung(t *testing.T) {
	shape := Shape{NA: 300, NB: 300, NC: 300} // lattice ≈ 109 MB
	budget := int64(32 << 20)
	pl, spec, err := Resolve(Request{
		Shape: shape, Algorithm: "full", EvalFraction: 0.12, MaxMemoryBytes: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Algorithm != "bounded" || !spec.Exact || pl.Degraded {
		t.Fatalf("ladder landed on %s (exact=%v degraded=%v), want bounded", pl.Algorithm, spec.Exact, pl.Degraded)
	}
	if len(pl.Downgrades) != 1 {
		t.Fatalf("downgrades %v, want exactly the full→bounded rung", pl.Downgrades)
	}
	if from, to, ok := ParseDowngrade(pl.Downgrades[0]); !ok || from != "full" || to != "bounded" {
		t.Fatalf("downgrade entry %q, want full→bounded", pl.Downgrades[0])
	}
	if pl.EstBytes > uint64(budget) {
		t.Fatalf("EstBytes %d over budget %d", pl.EstBytes, budget)
	}

	// Without the prediction the same request must skip the rung and fall
	// through to the sweep planes as before.
	pl, _, err = Resolve(Request{Shape: shape, Algorithm: "full", MaxMemoryBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Algorithm != "linear" {
		t.Fatalf("prediction-free ladder landed on %s, want linear", pl.Algorithm)
	}
}

// TestTileDims checks tile negotiation: blocked kernels carry tile
// dimensions (cubic under an explicit BlockSize), others none.
func TestTileDims(t *testing.T) {
	shape := Shape{NA: 200, NB: 200, NC: 200}
	pl, _, err := Resolve(Request{Shape: shape, Algorithm: "parallel"})
	if err != nil {
		t.Fatal(err)
	}
	if pl.TileDims[0] <= 0 || pl.TileDims[1] <= 0 || pl.TileDims[2] <= 0 {
		t.Fatalf("blocked kernel got no tile dims: %v", pl.TileDims)
	}
	pl, _, err = Resolve(Request{Shape: shape, Algorithm: "parallel", BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if pl.TileDims != [3]int{8, 8, 8} {
		t.Fatalf("BlockSize override ignored: %v", pl.TileDims)
	}
	pl, _, err = Resolve(Request{Shape: shape, Algorithm: "linear"})
	if err != nil {
		t.Fatal(err)
	}
	if pl.TileDims != [3]int{} {
		t.Fatalf("non-blocked kernel got tile dims: %v", pl.TileDims)
	}
}

// TestParseDowngrade round-trips the entry format.
func TestParseDowngrade(t *testing.T) {
	entry := downgradeEntry(kernels["parallel"], kernels["parallel-linear"], Request{Shape: Shape{NA: 100, NB: 100, NC: 100}}, 1<<20)
	from, to, ok := ParseDowngrade(entry)
	if !ok || from != "parallel" || to != "parallel-linear" {
		t.Fatalf("ParseDowngrade(%q) = %q, %q, %v", entry, from, to, ok)
	}
	if _, _, ok := ParseDowngrade("not a downgrade"); ok {
		t.Fatal("ParseDowngrade accepted garbage")
	}
}

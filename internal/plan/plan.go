// Package plan is the memory-aware execution planner: the single place
// where the library decides *how* a three-sequence alignment runs.
//
// Every kernel self-describes through a KernelSpec in the registry
// (registry.go): which gap models it optimizes, its space class, whether
// it runs on the wavefront pool, and how to estimate its lattice
// footprint for a problem Shape. Resolve maps a Request — shape, gap
// model, requested algorithm, workers, tile override, and memory budgets
// — onto an ExecutionPlan: the concrete kernel, its tile dimensions, and
// the predicted cells, bytes, throughput, and duration of the run.
//
// The prediction side is calibrated from the committed BENCH_<rev>.json
// baseline (calib.go); `benchsuite -calibrate` re-derives the constants
// and fails when they drift from the committed table.
//
// Budgets come in two strengths:
//
//   - Request.MaxBytes is the hard admission cap the kernels themselves
//     enforce (core.Options.MaxBytes, ErrTooLarge). The planner only uses
//     it to steer automatic selection, exactly as the old resolveAlgorithm
//     switch did: an auto request whose full lattice exceeds the cap gets
//     the linear-space sibling.
//
//   - Request.MaxMemoryBytes is the soft planning budget. When set, the
//     planner walks the downgrade ladder — full lattice → linear-space
//     sweep planes → (for exact requests) the center-star-refined
//     heuristic as a degraded last resort — until the estimated footprint
//     fits, recording every step in ExecutionPlan.Downgrades. A plan that
//     cannot fit even its cheapest kernel fails with an error wrapping
//     core.ErrTooLarge.
//
// All cell and byte arithmetic saturates in uint64, so adversarially long
// sequences produce a saturated estimate instead of a wrapped-around small
// one (the overflow class of bug the old int-typed lattice guard had).
package plan

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/wavefront"
)

// fpDowngrade forces one extra step down the space-class ladder on a fired
// hit, as if the resolved kernel's estimate had come in over budget. Chaos
// runs use it to drive the downgrade machinery — and everything downstream
// that reads ExecutionPlan.Downgrades — deterministically, without
// crafting shapes that straddle a real budget boundary.
var fpDowngrade = faultpoint.New("plan.downgrade")

// GapModel is the gap-cost family a scoring scheme uses and a kernel
// optimizes. Specs carry a bitmask; requests carry a single model.
type GapModel uint8

const (
	// GapLinear is the linear gap model: cost proportional to gap length.
	GapLinear GapModel = 1 << iota
	// GapAffine is the quasi-natural affine model: open + extend costs.
	GapAffine
)

func (g GapModel) String() string {
	switch g {
	case GapLinear:
		return "linear"
	case GapAffine:
		return "affine"
	}
	return fmt.Sprintf("gap-model(%d)", uint8(g))
}

// SpaceClass orders kernels by the asymptotic growth of their working
// memory. The downgrade ladder is monotone non-increasing in this order.
type SpaceClass int

const (
	// SpacePairwise is O(n²) pairwise matrices — the heuristics.
	SpacePairwise SpaceClass = iota
	// SpacePlanes is O(m·p) sweep planes — the linear-space exact kernels.
	SpacePlanes
	// SpaceBand is the Carrillo–Lipman admissible band: O(f·n·m·p) for the
	// data-dependent evaluated fraction f, plus the O(n²) projection planes.
	// It sits between the sweep planes and the full lattice because f is
	// bounded only by the data — near-identical triples make it tiny,
	// unrelated ones make it the whole lattice.
	SpaceBand
	// SpaceLattice is the O(n·m·p) full lattice.
	SpaceLattice
)

func (c SpaceClass) String() string {
	switch c {
	case SpacePairwise:
		return "O(n²)"
	case SpacePlanes:
		return "O(m·p)"
	case SpaceBand:
		return "O(f·n·m·p)"
	case SpaceLattice:
		return "O(n·m·p)"
	}
	return fmt.Sprintf("space-class(%d)", int(c))
}

// Shape is the problem size: residue counts of the three sequences. It is
// deliberately three ints rather than a Triple so that plans — including
// tests with adversarially long sequences — need no allocation.
type Shape struct {
	NA, NB, NC int
}

// mulSat is saturating uint64 multiplication.
func mulSat(a, b uint64) uint64 {
	if a != 0 && b > math.MaxUint64/a {
		return math.MaxUint64
	}
	return a * b
}

// addSat is saturating uint64 addition.
func addSat(a, b uint64) uint64 {
	if a > math.MaxUint64-b {
		return math.MaxUint64
	}
	return a + b
}

// Cells is the DP lattice cell count (na+1)(nb+1)(nc+1), saturating at
// MaxUint64.
func (s Shape) Cells() uint64 {
	return mulSat(mulSat(uint64(s.NA)+1, uint64(s.NB)+1), uint64(s.NC)+1)
}

// PlaneCells is the (nb+1)(nc+1) sweep-plane cell count the linear-space
// kernels re-fill, saturating.
func (s Shape) PlaneCells() uint64 {
	return mulSat(uint64(s.NB)+1, uint64(s.NC)+1)
}

// PairCells sums the three pairwise DP matrix sizes the heuristics fill,
// saturating.
func (s Shape) PairCells() uint64 {
	ab := mulSat(uint64(s.NA)+1, uint64(s.NB)+1)
	ac := mulSat(uint64(s.NA)+1, uint64(s.NC)+1)
	bc := mulSat(uint64(s.NB)+1, uint64(s.NC)+1)
	return addSat(addSat(ab, ac), bc)
}

func (s Shape) valid() bool { return s.NA >= 0 && s.NB >= 0 && s.NC >= 0 }

// Request is one planning problem.
type Request struct {
	// Shape is the triple's residue counts.
	Shape Shape
	// Gap is the scheme's gap model; zero means GapLinear.
	Gap GapModel
	// Algorithm is the requested kernel name; empty means automatic
	// selection by gap model, parallelism, and budget.
	Algorithm string
	// Workers is the requested pool size; non-positive means GOMAXPROCS.
	Workers int
	// BlockSize is an explicit cubic tile override for blocked kernels;
	// non-positive means the adaptive heuristic picks the shape.
	BlockSize int
	// MaxBytes is the hard lattice admission cap (kernels reject beyond
	// it); non-positive means core.DefaultMaxBytes. It steers automatic
	// selection only — explicit algorithms keep their historical
	// reject-with-ErrTooLarge contract.
	MaxBytes int64
	// MaxMemoryBytes, when positive, is the soft planning budget: the
	// planner downgrades along the space-class ladder until the estimated
	// footprint fits, instead of rejecting.
	MaxMemoryBytes int64
	// Parallel selects the intra-alignment parallel variants on automatic
	// requests (false when an outer batch supplies the parallelism).
	Parallel bool
	// MaxAbsColumn bounds the absolute SP score of a single alignment
	// column under the request's scheme (core.MaxAbsColumn). Together with
	// the shape it lets the planner negotiate the lattice cell width: when
	// (NA+NB+NC)·MaxAbsColumn provably fits int16, width-aware kernels run
	// on 16-bit cells and their byte estimates halve. Zero (unknown bound)
	// keeps every plan at 32-bit cells.
	MaxAbsColumn int64
	// EvalFraction, when in (0, 1], is the predicted fraction of lattice
	// cells the Carrillo–Lipman bound will admit (typically
	// EvalFractionForIdentity over a k-mer identity probe). It makes the
	// bounded-search kernels eligible for automatic selection and scales
	// their byte and duration estimates. Zero means no prediction: the
	// bounded kernels are planned at the full lattice and automatic
	// selection ignores them.
	EvalFraction float64
}

// ExecutionPlan is the planner's answer: the kernel that will run and the
// predicted footprint of the run. It is attached to every Result and
// served verbatim by alignd's POST /v1/plan.
type ExecutionPlan struct {
	// Algorithm is the kernel the plan selects.
	Algorithm string `json:"algorithm"`
	// Workers is the pool size the kernel will use (1 for sequential
	// kernels regardless of the request).
	Workers int `json:"workers"`
	// TileDims is the blocked-wavefront tile shape (ti, tj, tk); all-zero
	// for kernels that do not run the blocked 3D schedule.
	TileDims [3]int `json:"tile_dims"`
	// EstCells is the predicted DP cell count (saturating). For the
	// bounded-search kernels this is the predicted *evaluated* count — the
	// cells the Carrillo–Lipman bound is expected to admit — since that is
	// what their calibrated rate and footprint scale with.
	EstCells uint64 `json:"est_cells"`
	// EstEvaluatedCells, for the bounded-search kernels, is the predicted
	// number of lattice cells the Carrillo–Lipman bound admits (equal to
	// EstCells for those kernels); zero for kernels that evaluate the full
	// lattice.
	EstEvaluatedCells uint64 `json:"est_evaluated_cells,omitempty"`
	// EstBytes is the predicted peak lattice allocation (saturating),
	// already adjusted for the negotiated cell width.
	EstBytes uint64 `json:"est_bytes"`
	// CellWidthBits is the negotiated lattice cell width: 16 when the
	// kernel is width-aware and the request's score bound proves every
	// lattice value fits int16, else 32.
	CellWidthBits int `json:"cell_width_bits"`
	// EstMcellsPerSec is the calibrated throughput prediction.
	EstMcellsPerSec float64 `json:"est_mcells_per_s"`
	// EstDuration is EstCells / EstMcellsPerSec.
	EstDuration time.Duration `json:"est_duration_ns"`
	// Downgrades records every budget-driven substitution, in order, as
	// "from→to: est <bytes> over <budget> budget" entries.
	Downgrades []string `json:"downgrades,omitempty"`
	// Degraded reports that an exact request was downgraded to a heuristic
	// as the last resort: the planned score will be a lower bound, not the
	// optimum.
	Degraded bool `json:"degraded,omitempty"`
}

// lastResort is the heuristic an exact request degrades to when no exact
// kernel fits the memory budget.
const lastResort = "center-star-refined"

// Resolve maps a Request onto an ExecutionPlan and the KernelSpec that
// will run it. Unknown algorithm names and budgets too small for any
// kernel (the latter wrapping core.ErrTooLarge) are errors.
func Resolve(req Request) (*ExecutionPlan, *KernelSpec, error) {
	if !req.Shape.valid() {
		return nil, nil, fmt.Errorf("plan: negative sequence length in shape %+v", req.Shape)
	}
	gap := req.Gap
	if gap == 0 {
		gap = GapLinear
	}
	workers := wavefront.Workers(req.Workers)

	var (
		spec       *KernelSpec
		downgrades []string
		degraded   bool
	)
	if req.Algorithm != "" {
		s, ok := Lookup(req.Algorithm)
		if !ok {
			return nil, nil, fmt.Errorf("plan: unknown algorithm %q", req.Algorithm)
		}
		spec = s
	} else {
		spec, downgrades = autoSpec(req, gap, autoBudget(req))
	}

	if fpDowngrade.Fire() {
		if next := spec.Downgrade; next != "" {
			to := kernels[next]
			downgrades = append(downgrades,
				spec.Name+"→"+to.Name+": forced by fault point plan.downgrade")
			spec = to
		}
	}

	// The soft budget walks the downgrade ladder until the estimate fits.
	// Width-aware kernels are judged by their negotiated-width footprint, so
	// a lattice that fits only at 16 bits stays on the fast kernel instead
	// of downgrading.
	if req.MaxMemoryBytes > 0 {
		budget := uint64(req.MaxMemoryBytes)
		for planEstBytes(spec, req) > budget {
			// A full-lattice kernel over budget tries the Carrillo–Lipman
			// band before surrendering exactness to the sweep planes or the
			// heuristic: when the request carries an identity-probe
			// prediction and the predicted band fits, the ladder lands on a
			// still-exact, still-traceback kernel.
			if cand := boundedCandidate(req, gap); cand != nil &&
				cand.Space < spec.Space && planEstBytes(cand, req) <= budget {
				downgrades = append(downgrades, downgradeEntry(spec, cand, req, budget))
				spec = cand
				continue
			}
			next := spec.Downgrade
			if next == "" {
				if !spec.Exact {
					return nil, nil, fmt.Errorf(
						"plan: no kernel fits the %s memory budget (cheapest %q needs %s): %w",
						fmtBytes(budget), spec.Name, fmtBytes(planEstBytes(spec, req)), core.ErrTooLarge)
				}
				next = lastResort
				degraded = true
			}
			to := kernels[next]
			downgrades = append(downgrades, downgradeEntry(spec, to, req, budget))
			spec = to
		}
	}

	width := negotiatedWidth(spec, req)
	pl := &ExecutionPlan{
		Algorithm:     spec.Name,
		Workers:       1,
		EstCells:      planEstCells(spec, req),
		EstBytes:      planEstBytes(spec, req),
		CellWidthBits: width,
		Downgrades:    downgrades,
		Degraded:      degraded,
	}
	if spec.RateOnEvaluated {
		pl.EstEvaluatedCells = pl.EstCells
	}
	if spec.Parallel {
		pl.Workers = workers
	}
	if spec.Blocked3D {
		if req.BlockSize > 0 {
			pl.TileDims = [3]int{req.BlockSize, req.BlockSize, req.BlockSize}
		} else {
			bpc := spec.BytesPerCell
			if width == 16 {
				// Half-width cells halve the per-tile working set, so the
				// adaptive heuristic may pick proportionally larger tiles.
				bpc /= 2
			}
			ti, tj, tk := core.AdaptiveTileDims(
				req.Shape.NA+1, req.Shape.NB+1, req.Shape.NC+1, workers, bpc)
			pl.TileDims = [3]int{ti, tj, tk}
		}
	}
	pl.EstMcellsPerSec = rateFor(spec, pl.Workers)
	pl.EstDuration = estDuration(pl.EstCells, pl.EstMcellsPerSec)
	return pl, spec, nil
}

// negotiatedWidth is the lattice cell width (in bits) the kernel will run
// at: 16 when the kernel honors core.Options.CellWidth and the request's
// column bound proves every lattice value — |score| ≤ total·MaxAbsColumn —
// fits int16; 32 otherwise. The same Int16SafeBound predicate gates the
// kernels themselves (core.Options.CellWidth is a hint, never trusted), so
// plan and execution cannot disagree.
func negotiatedWidth(spec *KernelSpec, req Request) int {
	if !spec.WidthAware || req.MaxAbsColumn <= 0 {
		return 32
	}
	total := addSat(addSat(uint64(req.Shape.NA), uint64(req.Shape.NB)), uint64(req.Shape.NC))
	if core.Int16SafeBound(total, uint64(req.MaxAbsColumn)) {
		return 16
	}
	return 32
}

// planEstBytes is the width-adjusted footprint estimate: half the 32-bit
// model when the kernel would run 16-bit cells. Kernels with a
// fraction-aware byte model are judged by it whenever the request carries
// an evaluated-fraction prediction.
func planEstBytes(spec *KernelSpec, req Request) uint64 {
	var b uint64
	if spec.EstBytesFrac != nil && req.EvalFraction > 0 {
		b = spec.EstBytesFrac(req.Shape, req.EvalFraction)
	} else {
		b = spec.EstBytes(req.Shape)
	}
	if negotiatedWidth(spec, req) == 16 {
		b /= 2
	}
	return b
}

// planEstCells is the cell-count estimate: the predicted evaluated count
// for fraction-aware kernels when the request carries a prediction, the
// spec's own model otherwise.
func planEstCells(spec *KernelSpec, req Request) uint64 {
	if spec.EstCellsFrac != nil && req.EvalFraction > 0 {
		return spec.EstCellsFrac(req.Shape, req.EvalFraction)
	}
	return spec.estCells(req.Shape)
}

// predictedDuration is the wall-clock estimate automatic selection
// compares kernels by: predicted cells over the calibrated rate at the
// worker count the kernel would actually use.
func predictedDuration(spec *KernelSpec, req Request) time.Duration {
	w := 1
	if spec.Parallel {
		w = wavefront.Workers(req.Workers)
	}
	return estDuration(planEstCells(spec, req), rateFor(spec, w))
}

// autoBudget is the byte limit automatic selection steers against: the
// hard admission cap, tightened by the soft budget when one is set.
func autoBudget(req Request) uint64 {
	b := req.MaxBytes
	if b <= 0 {
		b = core.DefaultMaxBytes
	}
	budget := uint64(b)
	if req.MaxMemoryBytes > 0 && uint64(req.MaxMemoryBytes) < budget {
		budget = uint64(req.MaxMemoryBytes)
	}
	return budget
}

// autoSpec picks the kernel for an automatic request: the gap model's
// primary (parallel or sequential per the split), downgraded once to its
// linear-space sibling when the primary's lattice exceeds the budget —
// the selection rule the old resolveAlgorithm switch hard-coded. Linear-gap
// requests get the lane-packed primaries; they compute the same optimum as
// the legacy kernels on a several-times-faster interior.
func autoSpec(req Request, gap GapModel, budget uint64) (*KernelSpec, []string) {
	var primary string
	switch {
	case gap == GapAffine && req.Parallel:
		primary = "affine-parallel"
	case gap == GapAffine:
		primary = "affine"
	case req.Parallel:
		primary = "parallel-packed"
	default:
		primary = "full-packed"
	}
	spec := kernels[primary]
	cand := boundedCandidate(req, gap)
	if planEstBytes(spec, req) <= budget {
		// The primary fits; the Carrillo–Lipman band still wins the slot
		// when the identity probe predicts it strictly faster — evaluating
		// a thin admissible band beats filling the whole lattice even at a
		// lower per-cell rate.
		if cand != nil && planEstBytes(cand, req) <= budget &&
			predictedDuration(cand, req) < predictedDuration(spec, req) {
			return cand, nil
		}
		return spec, nil
	}
	// Over budget: a fitting bounded kernel is the preferred downgrade —
	// it keeps exactness and the preference-ordered traceback, unlike the
	// sweep planes' divide-and-conquer.
	if cand != nil && planEstBytes(cand, req) <= budget {
		return cand, []string{downgradeEntry(spec, cand, req, budget)}
	}
	next := kernels[spec.Downgrade]
	return next, []string{downgradeEntry(spec, next, req, budget)}
}

// downgradeEntry formats one ladder step for ExecutionPlan.Downgrades.
func downgradeEntry(from, to *KernelSpec, req Request, budget uint64) string {
	return fmt.Sprintf("%s→%s: est %s over %s budget",
		from.Name, to.Name, fmtBytes(planEstBytes(from, req)), fmtBytes(budget))
}

// ParseDowngrade splits a Downgrades entry back into the kernel names it
// records; ok is false for strings not produced by downgradeEntry.
func ParseDowngrade(entry string) (from, to string, ok bool) {
	for i, r := range entry {
		if r == '→' {
			from = entry[:i]
			rest := entry[i+len("→"):]
			for j := 0; j < len(rest); j++ {
				if rest[j] == ':' {
					return from, rest[:j], from != "" && j > 0
				}
			}
			return "", "", false
		}
	}
	return "", "", false
}

// estDuration converts a cell count and rate to a wall-clock prediction,
// saturating at the maximum Duration.
func estDuration(cells uint64, mcellsPerSec float64) time.Duration {
	if mcellsPerSec <= 0 {
		return 0
	}
	ns := float64(cells) / (mcellsPerSec * 1e6) * 1e9
	if ns >= float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(ns)
}

// fmtBytes renders a byte count with a binary unit suffix for downgrade
// entries and errors.
func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

package server

import (
	"context"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

// gate is the two-stage admission control: a non-blocking bounded
// admission semaphore (the "queue" — waiting plus running requests) in
// front of a blocking run-slot semaphore (executing submissions). The
// split is what gives the server its load-shedding shape: admission fails
// fast with 429 when the queue is full, while admitted requests wait a
// bounded time — at most QueueDepth requests can be ahead of them — for
// one of MaxInFlight run slots.
type gate struct {
	admitCh chan struct{}
	runCh   chan struct{}

	admitted atomic.Int64 // slots currently held in admitCh
	inFlight atomic.Int64 // slots currently held in runCh
}

func newGate(queueDepth, maxInFlight int) *gate {
	return &gate{
		admitCh: make(chan struct{}, queueDepth),
		runCh:   make(chan struct{}, maxInFlight),
	}
}

// tryAdmit takes an admission slot without blocking; false means shed.
func (g *gate) tryAdmit() bool {
	select {
	case g.admitCh <- struct{}{}:
		g.admitted.Add(1)
		return true
	default:
		return false
	}
}

// releaseAdmit returns an admission slot.
func (g *gate) releaseAdmit() {
	<-g.admitCh
	g.admitted.Add(-1)
}

// acquireRun blocks for a run slot or until ctx is done.
func (g *gate) acquireRun(ctx context.Context) error {
	select {
	case g.runCh <- struct{}{}:
		g.inFlight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// releaseRun returns a run slot.
func (g *gate) releaseRun() {
	<-g.runCh
	g.inFlight.Add(-1)
}

// loads reports the current admitted and in-flight gauges.
func (g *gate) loads() (admitted, inFlight int64) {
	return g.admitted.Load(), g.inFlight.Load()
}

// stats holds the cumulative request counters and the latency ring.
type stats struct {
	completed atomic.Int64 // requests answered 200 (batch items count individually)
	shed      atomic.Int64 // requests rejected 429
	failed    atomic.Int64 // requests (or batch items) that errored
	degraded  atomic.Int64 // results served from the heuristic fallback

	coalescedBatches  atomic.Int64 // coalesced flushes submitted
	coalescedRequests atomic.Int64 // requests served through a coalesced flush

	cacheFills     atomic.Int64 // flight-leader computations on the cached path
	cacheCollapsed atomic.Int64 // requests that piggybacked on a leader's computation
	cacheNearDup   atomic.Int64 // misses served by a verified near-duplicate patch-up

	estBytesInFlight   atomic.Int64 // planner-estimated bytes of executing alignments
	plannedDowngrades  atomic.Int64 // downgrade steps recorded by served plans
	plannedInt16       atomic.Int64 // served plans that negotiated 16-bit lattice cells
	plannedPacked      atomic.Int64 // served plans that selected a lane-packed kernel
	plannedBounded     atomic.Int64 // served plans that selected a bounded-search kernel
	prunedCellsSkipped atomic.Int64 // lattice cells the Carrillo–Lipman kernels never evaluated

	msaRequests      atomic.Int64 // /v1/msa requests admitted to execution
	msaCompleted     atomic.Int64 // /v1/msa requests answered 200
	msaSequences     atomic.Int64 // sequences aligned across completed MSA requests
	msaMerges        atomic.Int64 // progressive merges executed by completed MSA requests
	msaBatchedMerges atomic.Int64 // MSA merges fanned through a shared batch submission

	panicsContained     atomic.Int64 // panics recovered instead of crashing the process
	retriesObserved     atomic.Int64 // requests arriving with an X-Retry-Attempt header
	memPressureDegraded atomic.Int64 // admissions routed through the degrade ladder

	latency latencyRing
}

func newStats() *stats { return &stats{latency: latencyRing{buf: make([]time.Duration, 1024)}} }

// recordPlan folds one served execution plan into the planner counters:
// downgrade steps, negotiated 16-bit widths, and lane-packed kernel picks.
func (st *stats) recordPlan(pl *repro.Plan) {
	if pl == nil {
		return
	}
	st.plannedDowngrades.Add(int64(len(pl.Downgrades)))
	if pl.CellWidthBits == 16 {
		st.plannedInt16.Add(1)
	}
	if strings.HasSuffix(pl.Algorithm, "-packed") {
		st.plannedPacked.Add(1)
	}
	if pl.Algorithm == "bounded" || pl.Algorithm == "astar" {
		st.plannedBounded.Add(1)
	}
}

// recordPrune folds one result's Carrillo–Lipman statistics into the
// skipped-cells counter: the lattice cells the bound let the kernel never
// evaluate. Nil (a kernel without pruning) is a no-op.
func (st *stats) recordPrune(p *repro.PruneStats) {
	if p == nil {
		return
	}
	if skipped := p.TotalCells - p.EvaluatedCells; skipped > 0 {
		st.prunedCellsSkipped.Add(skipped)
	}
}

// latencyRing records the most recent request latencies in a fixed ring;
// quantiles sorts a snapshot. 1024 samples keep the p99 meaningful while
// the lock stays uncontended next to O(n³) alignment work.
type latencyRing struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int   // next write position
	n    int64 // total samples recorded
}

func (r *latencyRing) record(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	r.n++
	r.mu.Unlock()
}

// quantiles returns the p50/p90/p99 of the retained window (zeros before
// the first sample).
func (r *latencyRing) quantiles() (p50, p90, p99 time.Duration) {
	r.mu.Lock()
	filled := len(r.buf)
	if r.n < int64(filled) {
		filled = int(r.n)
	}
	snap := make([]time.Duration, filled)
	copy(snap, r.buf[:filled])
	r.mu.Unlock()
	if filled == 0 {
		return 0, 0, 0
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(filled-1))
		return snap[i]
	}
	return q(0.50), q(0.90), q(0.99)
}

package server

// Tests for the planner-facing surface of the server: the /v1/plan
// dry-run endpoint, the -max-lattice-bytes admission gate (413 before a
// queue slot), and the est_bytes_in_flight / planned_downgrades statsz
// fields.

import (
	"fmt"
	"net/http"
	"testing"

	repro "repro"
)

// TestPlanEndpoint: POST /v1/plan returns the execution plan without
// aligning anything.
func TestPlanEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a, b, c := testTriple(t, 7, 40)
	var pl repro.Plan
	resp := postJSON(t, ts, "/v1/plan",
		fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, a, b, c), &pl)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if pl.Algorithm == "" || pl.EstCells == 0 || pl.EstBytes == 0 {
		t.Errorf("incomplete plan: %+v", pl)
	}
	if pl.Workers < 1 {
		t.Errorf("planned workers = %d", pl.Workers)
	}
}

// TestPlanEndpointDowngrade: a max_memory_bytes too small for the full
// lattice shows the downgrade in the dry-run plan.
func TestPlanEndpointDowngrade(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a, b, c := testTriple(t, 7, 96)
	var pl repro.Plan
	resp := postJSON(t, ts, "/v1/plan",
		fmt.Sprintf(`{"a":%q,"b":%q,"c":%q,"max_memory_bytes":262144}`, a, b, c), &pl)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if pl.Algorithm != string(repro.AlgorithmParallelLinear) {
		t.Errorf("planned %s, want %s under a 256 KiB budget", pl.Algorithm, repro.AlgorithmParallelLinear)
	}
	if len(pl.Downgrades) == 0 {
		t.Error("downgrade missing from the dry-run plan")
	}
	if pl.Degraded {
		t.Error("linear-space plan flagged Degraded")
	}
}

// TestPlanEndpointBadRequest: malformed input is a 400, not a 500.
func TestPlanEndpointBadRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var er errorResponse
	resp := postJSON(t, ts, "/v1/plan", `{"a":"ACGT","b":"ACGT","c":"not dna!"}`, &er)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestMaxLatticeBytesAdmission: a request whose planned footprint exceeds
// the server cap is shed with 413 before taking a queue slot — failed
// increments, shed (the queue-full counter) does not — and a small
// request still succeeds.
func TestMaxLatticeBytesAdmission(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxLatticeBytes: 64 << 10})
	big := fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, seqN(96), seqN(96), seqN(96))
	var er errorResponse
	resp := postJSON(t, ts, "/v1/align", big, &er)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize align status = %d, want 413 (%s)", resp.StatusCode, er.Error)
	}
	// /v1/plan applies the same cap so clients can probe it.
	resp = postJSON(t, ts, "/v1/plan", big, &er)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize plan status = %d, want 413", resp.StatusCode)
	}

	small := fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, seqN(10), seqN(10), seqN(10))
	var ar AlignResponse
	resp = postJSON(t, ts, "/v1/align", small, &ar)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small align status = %d", resp.StatusCode)
	}
	if ar.Plan == nil || ar.Plan.EstBytes > 64<<10 {
		t.Errorf("small align plan = %+v", ar.Plan)
	}

	var st Statsz
	getJSON(t, ts, "/statsz", &st)
	if st.Failed < 1 {
		t.Errorf("statsz failed = %d, want >= 1 (oversize align)", st.Failed)
	}
	if st.Shed != 0 {
		t.Errorf("statsz shed = %d; 413s must not consume queue slots", st.Shed)
	}
	if st.EstBytesInFlight != 0 {
		t.Errorf("est_bytes_in_flight = %d after all requests drained", st.EstBytesInFlight)
	}
}

// TestStatszPlannedDowngrades: a budgeted align that walks the ladder
// increments planned_downgrades and carries the plan in the response.
func TestStatszPlannedDowngrades(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a, b, c := testTriple(t, 9, 96)
	var ar AlignResponse
	resp := postJSON(t, ts, "/v1/align",
		fmt.Sprintf(`{"a":%q,"b":%q,"c":%q,"max_memory_bytes":262144}`, a, b, c), &ar)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ar.Plan == nil || len(ar.Plan.Downgrades) == 0 {
		t.Fatalf("response plan missing downgrades: %+v", ar.Plan)
	}
	if ar.Algorithm != string(repro.AlgorithmParallelLinear) {
		t.Errorf("ran %s, want %s", ar.Algorithm, repro.AlgorithmParallelLinear)
	}
	var st Statsz
	getJSON(t, ts, "/statsz", &st)
	if st.PlannedDowngrades < 1 {
		t.Errorf("statsz planned_downgrades = %d, want >= 1", st.PlannedDowngrades)
	}
}

// TestBatchRejectsOversizeItem: one over-cap item fails the whole batch
// with 413 before any of it is queued.
func TestBatchRejectsOversizeItem(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxLatticeBytes: 64 << 10})
	body := fmt.Sprintf(`{"items":[{"a":%q,"b":%q,"c":%q},{"a":%q,"b":%q,"c":%q}]}`,
		seqN(10), seqN(10), seqN(10), seqN(96), seqN(96), seqN(96))
	var er errorResponse
	resp := postJSON(t, ts, "/v1/align/batch", body, &er)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%s)", resp.StatusCode, er.Error)
	}
}

// seqN builds a deterministic DNA string of length n.
func seqN(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = "ACGT"[i%4]
	}
	return string(b)
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	repro "repro"
	"repro/internal/faultpoint"
	"repro/internal/wavefront"
)

// errDraining is the 503 body for alignment requests arriving mid-drain.
var errDraining = errors.New("server draining; not accepting new alignments")

// retryAttemptHeader marks a request as attempt n of a retrying client
// (the client package sets it); the server counts them so operators can
// see retry pressure that per-client logs hide.
const retryAttemptHeader = "X-Retry-Attempt"

// fpAdmit injects a transient 503 (with a Retry-After hint) at admission —
// the canonical fault a retrying client must mask. Behavioral: nothing is
// corrupted, the request is simply refused as if the server were briefly
// unavailable.
var fpAdmit = faultpoint.New("server.admit")

// observeRetry counts requests that arrive marked as client retries.
func (s *Server) observeRetry(r *http.Request) {
	if r.Header.Get(retryAttemptHeader) != "" {
		s.stats.retriesObserved.Add(1)
	}
}

// fail records one failed request, counting contained panics separately:
// a *wavefront.PanicError surfacing here means a kernel died and the
// process did not.
func (s *Server) fail(err error) {
	s.stats.failed.Add(1)
	if wavefront.IsPanic(err) {
		s.stats.panicsContained.Add(1)
	}
}

// injectUnavailable answers a fired admission fault: 503 plus the same
// Retry-After hint a real shed carries.
func (s *Server) injectUnavailable(w http.ResponseWriter) {
	s.stats.shed.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	writeError(w, http.StatusServiceUnavailable, errors.New("fault injected: admission unavailable; retry"))
}

// decode reads one JSON request body under the configured size cap.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return &badRequestError{"malformed JSON: " + err.Error()}
	}
	return nil
}

// shed writes the 429 response with the Retry-After hint.
func (s *Server) shed(w http.ResponseWriter) {
	s.stats.shed.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	writeError(w, http.StatusTooManyRequests, errors.New("queue full; retry later"))
}

// planItem plans one resolved item and enforces the server's lattice cap:
// the memory-aware admission check that runs *before* a queue slot is
// taken, so an oversized request is shed with 413 without ever occupying
// queue depth.
func (s *Server) planItem(item repro.BatchItem) (*repro.Plan, error) {
	pl, err := repro.PlanAlign(item.Triple, item.Opt)
	if err != nil {
		return nil, err
	}
	if limit := s.cfg.MaxLatticeBytes; limit > 0 && pl.EstBytes > uint64(limit) {
		return nil, fmt.Errorf("planned %s lattice needs %d bytes; the server caps lattices at %d bytes: %w",
			pl.Algorithm, pl.EstBytes, limit, repro.ErrTooLarge)
	}
	return pl, nil
}

// estGauge converts a planned byte estimate to the in-flight gauge's
// int64 domain (saturating; a saturated uint64 estimate never reaches the
// gauge in practice because planItem or the kernels reject it first).
func estGauge(estBytes uint64) int64 {
	if estBytes > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(estBytes)
}

// handleAlign serves POST /v1/align: parse, then route to the cached path
// (cache.go) when the result cache is enabled, or straight to the
// classic pipeline — plan (shedding over-cap lattices with 413 before
// queueing), admit or shed, then execute through the coalescer for small
// requests or a dedicated run slot otherwise.
func (s *Server) handleAlign(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	s.observeRetry(r)
	if fpAdmit.Fire() {
		s.injectUnavailable(w)
		return
	}
	var req AlignRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(err)
		writeError(w, errorStatus(err), err)
		return
	}
	item, err := s.item(&req)
	if err != nil {
		s.fail(err)
		writeError(w, errorStatus(err), err)
		return
	}
	if s.cache != nil {
		s.alignCached(w, r, item, &req)
		return
	}
	s.alignUncached(w, r, item)
}

// alignUncached is the classic (cache-disabled) /v1/align pipeline.
func (s *Server) alignUncached(w http.ResponseWriter, r *http.Request, item repro.BatchItem) {
	// Pressure routing happens before planning so an imposed degrade
	// budget shapes the plan (and its downgrade ladder) rather than
	// second-guessing it afterwards.
	switch s.pressureLevel() {
	case pressureShed:
		s.shed(w)
		return
	case pressureDegrade:
		s.degradeForPressure(&item)
	}
	pl, err := s.planItem(item)
	if err != nil {
		s.fail(err)
		writeError(w, errorStatus(err), err)
		return
	}
	if !s.gate.tryAdmit() {
		s.shed(w)
		return
	}
	defer s.gate.releaseAdmit()

	est := estGauge(pl.EstBytes)
	s.stats.estBytesInFlight.Add(est)
	start := time.Now()
	res, coalesced, err := s.executeCtx(r.Context(), item)
	s.stats.latency.record(time.Since(start))
	s.stats.estBytesInFlight.Add(-est)
	if err != nil {
		s.fail(err)
		writeError(w, errorStatus(err), err)
		return
	}
	s.stats.completed.Add(1)
	if res.Degraded {
		s.stats.degraded.Add(1)
	}
	s.stats.recordPlan(res.Plan)
	s.stats.recordPrune(res.Prune)
	writeJSON(w, http.StatusOK, response(res, coalesced))
}

// handlePlan serves POST /v1/plan: the dry-run planning endpoint. The
// request body is an AlignRequest; the response is the execution plan
// Align would run, resolved under the same option and admission rules —
// including the MaxLatticeBytes 413 — but without taking a queue slot or
// aligning anything. Planning is read-only, so it stays available during
// drain.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req AlignRequest
	if err := s.decode(w, r, &req); err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	item, err := s.item(&req)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	pl, err := s.planItem(item)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, pl)
}

// handleBatch serves POST /v1/align/batch: one admission slot and one run
// slot cover the whole batch, which executes as a single
// AlignBatchItemsContext submission.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	s.observeRetry(r)
	if fpAdmit.Fire() {
		s.injectUnavailable(w)
		return
	}
	var req BatchRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(err)
		writeError(w, errorStatus(err), err)
		return
	}
	if len(req.Items) == 0 {
		s.fail(nil)
		writeError(w, http.StatusBadRequest, errors.New("empty batch: give items"))
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		s.fail(nil)
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch has %d items; the server caps batches at %d", len(req.Items), s.cfg.MaxBatchItems))
		return
	}
	// One pressure decision covers the whole batch: it is one admission.
	pressure := s.pressureLevel()
	if pressure == pressureShed {
		s.shed(w)
		return
	}
	// Resolve and plan every item before admitting: a batch with a
	// malformed or over-cap item is rejected whole, which keeps "results"
	// aligned with "items" and keeps oversized lattices out of the queue.
	items := make([]repro.BatchItem, len(req.Items))
	var est int64
	for i := range req.Items {
		merged := merge(req.Defaults, req.Items[i])
		item, err := s.item(&merged)
		if err != nil {
			s.fail(err)
			writeError(w, errorStatus(err), fmt.Errorf("item %d: %w", i, err))
			return
		}
		if pressure == pressureDegrade {
			s.degradeForPressure(&item)
		}
		pl, err := s.planItem(item)
		if err != nil {
			s.fail(err)
			writeError(w, errorStatus(err), fmt.Errorf("item %d: %w", i, err))
			return
		}
		est += estGauge(pl.EstBytes)
		items[i] = item
	}
	if !s.gate.tryAdmit() {
		s.shed(w)
		return
	}
	defer s.gate.releaseAdmit()
	s.stats.estBytesInFlight.Add(est)
	start := time.Now()
	if err := s.gate.acquireRun(r.Context()); err != nil {
		s.stats.estBytesInFlight.Add(-est)
		writeError(w, errorStatus(err), err)
		return
	}
	results := repro.AlignBatchItemsContext(r.Context(), items)
	s.gate.releaseRun()
	s.stats.latency.record(time.Since(start))
	s.stats.estBytesInFlight.Add(-est)

	out := BatchResponse{Results: make([]BatchItemResponse, len(results))}
	for i, res := range results {
		out.Results[i].Index = res.Index
		if res.Err != nil {
			s.fail(res.Err)
			out.Results[i].Error = res.Err.Error()
			continue
		}
		s.stats.completed.Add(1)
		if res.Result.Degraded {
			s.stats.degraded.Add(1)
		}
		s.stats.recordPlan(res.Result.Plan)
		s.stats.recordPrune(res.Result.Prune)
		out.Results[i].Result = response(res.Result, false)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports readiness: 503 once draining so load balancers
// stop routing here before the listener goes away.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.snapshot())
}

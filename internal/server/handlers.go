package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	repro "repro"
)

// errDraining is the 503 body for alignment requests arriving mid-drain.
var errDraining = errors.New("server draining; not accepting new alignments")

// decode reads one JSON request body under the configured size cap.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return &badRequestError{"malformed JSON: " + err.Error()}
	}
	return nil
}

// shed writes the 429 response with the Retry-After hint.
func (s *Server) shed(w http.ResponseWriter) {
	s.stats.shed.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	writeError(w, http.StatusTooManyRequests, errors.New("queue full; retry later"))
}

// handleAlign serves POST /v1/align: parse, admit or shed, then execute —
// through the coalescer for small requests, on a dedicated run slot
// otherwise.
func (s *Server) handleAlign(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	var req AlignRequest
	if err := s.decode(w, r, &req); err != nil {
		s.stats.failed.Add(1)
		writeError(w, errorStatus(err), err)
		return
	}
	item, err := s.item(&req)
	if err != nil {
		s.stats.failed.Add(1)
		writeError(w, errorStatus(err), err)
		return
	}
	if !s.gate.tryAdmit() {
		s.shed(w)
		return
	}
	defer s.gate.releaseAdmit()

	start := time.Now()
	res, coalesced, err := s.execute(r, item)
	s.stats.latency.record(time.Since(start))
	if err != nil {
		s.stats.failed.Add(1)
		writeError(w, errorStatus(err), err)
		return
	}
	s.stats.completed.Add(1)
	if res.Degraded {
		s.stats.degraded.Add(1)
	}
	writeJSON(w, http.StatusOK, response(res, coalesced))
}

// execute runs one admitted item: coalesced when eligible, else directly
// on a run slot under the request's context.
func (s *Server) execute(r *http.Request, item repro.BatchItem) (res *repro.Result, coalesced bool, err error) {
	if s.coal.eligible(item) {
		if p := s.coal.submit(item); p != nil {
			select {
			case d := <-p.done:
				return d.res, true, d.err
			case <-r.Context().Done():
				// The client is gone; the flush still runs (under the
				// server's base context) and its result is discarded.
				return nil, true, r.Context().Err()
			}
		}
		// Coalescer closed mid-drain: fall through to the direct path.
	}
	if err := s.gate.acquireRun(r.Context()); err != nil {
		return nil, false, err
	}
	defer s.gate.releaseRun()
	res, err = repro.AlignContext(r.Context(), item.Triple, item.Opt)
	return res, false, err
}

// handleBatch serves POST /v1/align/batch: one admission slot and one run
// slot cover the whole batch, which executes as a single
// AlignBatchItemsContext submission.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	var req BatchRequest
	if err := s.decode(w, r, &req); err != nil {
		s.stats.failed.Add(1)
		writeError(w, errorStatus(err), err)
		return
	}
	if len(req.Items) == 0 {
		s.stats.failed.Add(1)
		writeError(w, http.StatusBadRequest, errors.New("empty batch: give items"))
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		s.stats.failed.Add(1)
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch has %d items; the server caps batches at %d", len(req.Items), s.cfg.MaxBatchItems))
		return
	}
	// Resolve every item before admitting: a batch with a malformed item
	// is rejected whole, which keeps "results" aligned with "items".
	items := make([]repro.BatchItem, len(req.Items))
	for i := range req.Items {
		merged := merge(req.Defaults, req.Items[i])
		item, err := s.item(&merged)
		if err != nil {
			s.stats.failed.Add(1)
			writeError(w, errorStatus(err), fmt.Errorf("item %d: %w", i, err))
			return
		}
		items[i] = item
	}
	if !s.gate.tryAdmit() {
		s.shed(w)
		return
	}
	defer s.gate.releaseAdmit()
	start := time.Now()
	if err := s.gate.acquireRun(r.Context()); err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	results := repro.AlignBatchItemsContext(r.Context(), items)
	s.gate.releaseRun()
	s.stats.latency.record(time.Since(start))

	out := BatchResponse{Results: make([]BatchItemResponse, len(results))}
	for i, res := range results {
		out.Results[i].Index = res.Index
		if res.Err != nil {
			s.stats.failed.Add(1)
			out.Results[i].Error = res.Err.Error()
			continue
		}
		s.stats.completed.Add(1)
		if res.Result.Degraded {
			s.stats.degraded.Add(1)
		}
		out.Results[i].Result = response(res.Result, false)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports readiness: 503 once draining so load balancers
// stop routing here before the listener goes away.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.snapshot())
}

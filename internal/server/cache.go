package server

// The cached /v1/align path. With CacheBytes set, every align request is
// content-addressed (internal/resultcache.KeyFor) before touching
// admission:
//
//   - A cache hit is answered immediately — no pressure check, no plan, no
//     queue slot, no coalescer. Hits are the point of the cache: they must
//     stay cheap when the queue is on fire.
//   - A miss enters a singleflight keyed by the same content address.
//     Exactly one request (the leader) runs the admission pipeline the
//     uncached path would have run — pressure, plan with the 413 lattice
//     cap, the bounded admission queue — and computes under the server's
//     base context, like a coalesced flush, so one impatient client cannot
//     cancel work its flight-mates share. The other members collapse onto
//     the leader's result without consuming queue depth.
//   - Before computing in full, the leader consults the k-mer
//     near-duplicate prescreen: a cached triple within the identity
//     threshold donates its score as the seed of a cheap bounded re-align
//     (repro.AlignSeeded). The patch-up is verified by construction — a
//     seed above the true optimum makes the bounded traceback fail, and
//     the leader falls through to the full plan — so near-dup answers are
//     bit-identical to uncached ones.
//
// Every response on this path carries an X-Cache header and a "cache"
// body field: "hit", "miss" (leader, computed in full), "near-dup"
// (leader, verified patch-up), or "collapsed" (waiter).

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"time"

	repro "repro"
	"repro/internal/resultcache"
)

// Cache states reported in the X-Cache header and the response body.
const (
	cacheStateHit       = "hit"
	cacheStateMiss      = "miss"
	cacheStateNearDup   = "near-dup"
	cacheStateCollapsed = "collapsed"
)

// errQueueFull is the sentinel a flight leader returns when admission
// sheds it; every member of the flight answers 429 with the Retry-After
// hint, exactly as if each had been shed individually.
var errQueueFull = errors.New("server: queue full")

// cacheFill is the value a flight computes: the result plus how it was
// produced. Waiters share the same *Result; nothing on the response path
// mutates it.
type cacheFill struct {
	res       *repro.Result
	state     string // cacheStateMiss or cacheStateNearDup
	coalesced bool
}

// cacheScheme resolves the scoring scheme a request will align under —
// the explicit option or the alphabet's default — for key derivation.
func cacheScheme(item repro.BatchItem) (*repro.Scheme, error) {
	if item.Opt.Scheme != nil {
		return item.Opt.Scheme, nil
	}
	return repro.DefaultScheme(item.Triple.A.Alphabet())
}

// nearDupEligible gates the prescreen: it needs an enabled threshold, a
// linear-gap scheme (the seeded kernel is linear), and an algorithm-
// agnostic request — a client that pinned a specific kernel gets exactly
// that kernel, never the patch-up's bounded one.
func (s *Server) nearDupEligible(req *AlignRequest, sch *repro.Scheme) bool {
	id := s.cfg.CacheNearDupIdentity
	if id <= 0 || id >= 1 || sch.Affine() {
		return false
	}
	algo := strings.ToLower(strings.TrimSpace(req.Algorithm))
	return algo == "" || algo == "auto"
}

// alignCached serves one /v1/align request through the cache. The request
// has been decoded and resolved; draining, retry observation, and the
// admission fault point already ran in handleAlign.
func (s *Server) alignCached(w http.ResponseWriter, r *http.Request, item repro.BatchItem, req *AlignRequest) {
	start := time.Now()
	sch, err := cacheScheme(item)
	if err != nil {
		// No canonical scheme to key on: serve uncached rather than fail a
		// request the uncached path could answer.
		s.alignUncached(w, r, item)
		return
	}
	// One sketch per request: the near-dup prescreen probes with it and
	// the planner's identity probe reuses it through Options.Sketch.
	sk := repro.SketchTriple(item.Triple)
	item.Opt.Sketch = sk
	key, meta := resultcache.KeyFor(item.Triple, sch, req.Algorithm)

	if res, ok := s.cache.Get(key); ok {
		res.CacheHit = true
		res.Elapsed = time.Since(start)
		s.stats.completed.Add(1)
		s.stats.latency.record(res.Elapsed)
		s.writeAligned(w, res, false, cacheStateHit)
		return
	}

	out := s.flight.Do(r.Context(), key, func() (cacheFill, error) {
		return s.fillAlign(item, req, key, meta, sk, sch)
	})
	if !out.Leader {
		s.stats.cacheCollapsed.Add(1)
	}
	if out.Err != nil {
		if errors.Is(out.Err, errQueueFull) {
			s.shed(w)
			return
		}
		var lp *resultcache.LeaderPanicError
		if errors.As(out.Err, &lp) && out.Leader {
			// Count the contained panic once (the leader), not once per
			// flight member; fail() below counts each affected request.
			s.stats.panicsContained.Add(1)
		}
		s.fail(out.Err)
		writeError(w, errorStatus(out.Err), out.Err)
		return
	}
	state := out.Val.state
	if !out.Leader {
		state = cacheStateCollapsed
	}
	s.stats.completed.Add(1)
	if out.Val.res.Degraded {
		s.stats.degraded.Add(1)
	}
	s.stats.latency.record(time.Since(start))
	s.writeAligned(w, out.Val.res, out.Val.coalesced, state)
}

// fillAlign is the flight leader's computation: the full admission
// pipeline (pressure, plan, queue slot), then either a verified
// near-duplicate patch-up or the regular execution path, then cache
// admission by planned cost.
func (s *Server) fillAlign(item repro.BatchItem, req *AlignRequest, key resultcache.Key, meta resultcache.Meta, sk *repro.TripleSketch, sch *repro.Scheme) (cacheFill, error) {
	switch s.pressureLevel() {
	case pressureShed:
		return cacheFill{}, errQueueFull
	case pressureDegrade:
		s.degradeForPressure(&item)
	}
	pl, err := s.planItem(item)
	if err != nil {
		return cacheFill{}, err
	}
	if !s.gate.tryAdmit() {
		return cacheFill{}, errQueueFull
	}
	defer s.gate.releaseAdmit()
	est := estGauge(pl.EstBytes)
	s.stats.estBytesInFlight.Add(est)
	defer s.stats.estBytesInFlight.Add(-est)
	s.stats.cacheFills.Add(1)

	fill := cacheFill{state: cacheStateMiss}
	if s.nearDupEligible(req, sch) {
		if cand, ok := s.cache.Nearest(sk, meta, s.cfg.CacheNearDupIdentity); ok {
			if res := s.patchNearDup(item, cand, sch); res != nil {
				fill.res, fill.state = res, cacheStateNearDup
				s.stats.cacheNearDup.Add(1)
			}
		}
	}
	if fill.res == nil {
		res, coalesced, err := s.executeCtx(s.base, item)
		if err != nil {
			return cacheFill{}, err
		}
		fill.res, fill.coalesced = res, coalesced
	}
	s.stats.recordPlan(fill.res.Plan)
	s.stats.recordPrune(fill.res.Prune)
	if s.cfg.CacheMinCost <= 0 || pl.EstDuration >= s.cfg.CacheMinCost {
		// Put refuses degraded results itself — their content depends on
		// the deadline that produced them, which is not part of the key.
		s.cache.Put(key, meta, fill.res, pl.EstDuration, sk)
	}
	return fill, nil
}

// patchNearDup runs the verified near-duplicate patch-up: a bounded
// re-align of the request's own triple seeded by the candidate's cached
// score, on a regular run slot. Any failure — an invalid (too-high) seed
// detected by the bounded traceback, a deadline, a cancelled server —
// returns nil and the caller falls through to the full plan, so this path
// can only ever change latency, not results.
func (s *Server) patchNearDup(item repro.BatchItem, cand resultcache.Candidate, sch *repro.Scheme) *repro.Result {
	tr := item.Triple
	total := tr.A.Len() + tr.B.Len() + tr.C.Len()
	seed := resultcache.SeedBound(cand.Score, cand.Identity, total, sch)
	if err := s.gate.acquireRun(s.base); err != nil {
		return nil
	}
	defer s.gate.releaseRun()
	res, err := repro.AlignSeeded(s.base, tr, item.Opt, int32(seed))
	if err != nil {
		return nil
	}
	return res
}

// writeAligned writes one successful alignment with its cache state in
// both the X-Cache header (for smoke tests and proxies) and the JSON body.
func (s *Server) writeAligned(w http.ResponseWriter, res *repro.Result, coalesced bool, state string) {
	resp := response(res, coalesced)
	resp.Cache = state
	w.Header().Set("X-Cache", state)
	writeJSON(w, http.StatusOK, resp)
}

// executeCtx runs one admitted item under ctx: coalesced when eligible,
// else directly on a run slot. The uncached path passes the request's
// context; a flight leader passes the server's base context so shared
// work survives any single client's disconnect.
func (s *Server) executeCtx(ctx context.Context, item repro.BatchItem) (res *repro.Result, coalesced bool, err error) {
	if s.coal.eligible(item) {
		if p := s.coal.submit(item); p != nil {
			select {
			case d := <-p.done:
				return d.res, true, d.err
			case <-ctx.Done():
				// The client is gone; the flush still runs (under the
				// server's base context) and its result is discarded.
				return nil, true, ctx.Err()
			}
		}
		// Coalescer closed mid-drain: fall through to the direct path.
	}
	if err := s.gate.acquireRun(ctx); err != nil {
		return nil, false, err
	}
	defer s.gate.releaseRun()
	res, err = repro.AlignContext(ctx, item.Triple, item.Opt)
	return res, false, err
}

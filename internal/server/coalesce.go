package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	repro "repro"
	"repro/internal/faultpoint"
)

// The coalescer merges concurrent small /v1/align requests into one
// AlignBatchItemsContext submission. Each arriving request is buffered;
// the first arrival arms a CoalesceTick timer, and when it fires (or the
// buffer reaches CoalesceMax) the whole buffer is flushed as a single
// batch holding one run slot. The win is PR 3's narrow-batch arbitration:
// a flush of k small triples on a w-way pool gets intra-triple
// parallelism when k < w, whereas k independent submissions would fight
// over run slots and schedule k separate wavefronts. The cost is up to
// one tick of added latency on the coalesced path — which is why only
// requests below CoalesceCells lattice cells are eligible; large
// alignments go straight to a dedicated run slot where the tick would be
// noise but a shared flush could convoy them behind each other.

// ErrServerClosed is reported to coalesced requests caught by Close
// before their flush was submitted.
var ErrServerClosed = errors.New("server: draining, request abandoned")

// fpFlush panics inside the flush delivery loop — after some parked
// requests have been answered and before the rest — which is the nastiest
// place a flush can die: a naive flusher would abandon the unanswered
// tail on their done channels forever.
var fpFlush = faultpoint.New("server.coalesce.flush")

// flushPanicError is the typed failure delivered to parked requests whose
// coalesced flush panicked after they were buffered: a server-side 500
// carrying the recovered cause, scoped to the affected requests only.
type flushPanicError struct{ cause any }

func (e *flushPanicError) Error() string {
	return fmt.Sprintf("server: coalesced flush panicked: %v", e.cause)
}

// coalescePending is one buffered request awaiting its flush.
type coalescePending struct {
	item repro.BatchItem
	done chan coalesceDone // buffered: the flusher never blocks delivering
}

// coalesceDone is the flush outcome delivered back to the waiting handler.
type coalesceDone struct {
	res *repro.Result
	err error
}

type coalescer struct {
	srv *Server

	mu     sync.Mutex
	buf    []*coalescePending
	timer  *time.Timer
	closed bool
	wg     sync.WaitGroup // outstanding flush goroutines
}

func newCoalescer(s *Server) *coalescer { return &coalescer{srv: s} }

// enabled reports whether the configuration turns coalescing on and the
// request is small enough to be eligible.
func (c *coalescer) eligible(item repro.BatchItem) bool {
	if c.srv.cfg.CoalesceTick <= 0 {
		return false
	}
	tr := item.Triple
	cells := int64(tr.A.Len()+1) * int64(tr.B.Len()+1) * int64(tr.C.Len()+1)
	return cells <= c.srv.cfg.CoalesceCells
}

// submit buffers the item and returns its pending handle; the caller
// waits on done. A nil return means the coalescer is closed and the
// caller should run directly.
func (c *coalescer) submit(item repro.BatchItem) *coalescePending {
	p := &coalescePending{item: item, done: make(chan coalesceDone, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.buf = append(c.buf, p)
	full := len(c.buf) >= c.srv.cfg.CoalesceMax
	if full {
		batch := c.take()
		c.mu.Unlock()
		c.flush(batch)
		return p
	}
	if c.timer == nil {
		c.timer = time.AfterFunc(c.srv.cfg.CoalesceTick, c.tick)
	}
	c.mu.Unlock()
	return p
}

// take detaches the buffer and disarms the timer; callers hold mu.
func (c *coalescer) take() []*coalescePending {
	batch := c.buf
	c.buf = nil
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	return batch
}

// tick is the timer callback: flush whatever the window accumulated.
func (c *coalescer) tick() {
	c.mu.Lock()
	batch := c.take()
	c.mu.Unlock()
	c.flush(batch)
}

// flush submits one batch on a run slot from a fresh goroutine and
// delivers each item's outcome. The batch runs under the server's base
// context so one client's disconnect cannot cancel its batch-mates;
// per-item deadlines ride in each item's Options.
//
// A panic anywhere in the flush — most dangerously mid-delivery, when
// some parked requests are already answered — must not abandon the rest
// on their done channels: the deferred recover answers exactly the
// not-yet-answered requests with a *flushPanicError (their 500), so every
// parked handler is always released. The per-item alignment panics are
// already contained by AlignBatchItemsContext; this recover covers the
// flush machinery itself.
func (c *coalescer) flush(batch []*coalescePending) {
	if len(batch) == 0 {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		s := c.srv
		answered := make([]bool, len(batch))
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			s.stats.panicsContained.Add(1)
			err := &flushPanicError{cause: r}
			for i, p := range batch {
				if !answered[i] {
					p.done <- coalesceDone{err: err}
				}
			}
		}()
		if err := s.gate.acquireRun(s.base); err != nil {
			for i, p := range batch {
				p.done <- coalesceDone{err: ErrServerClosed}
				answered[i] = true
			}
			return
		}
		defer s.gate.releaseRun()
		items := make([]repro.BatchItem, len(batch))
		for i, p := range batch {
			items[i] = p.item
		}
		s.stats.coalescedBatches.Add(1)
		s.stats.coalescedRequests.Add(int64(len(batch)))
		for _, r := range repro.AlignBatchItemsContext(s.base, items) {
			if fpFlush.Fire() {
				panic("faultpoint: server.coalesce.flush")
			}
			batch[r.Index].done <- coalesceDone{res: r.Result, err: r.Err}
			answered[r.Index] = true
		}
	}()
}

// close flushes the remaining buffer and waits for outstanding flushes,
// so every handler still parked on a done channel is answered.
func (c *coalescer) close() {
	c.mu.Lock()
	c.closed = true
	batch := c.take()
	c.mu.Unlock()
	c.flush(batch)
	c.wg.Wait()
}

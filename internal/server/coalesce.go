package server

import (
	"errors"
	"sync"
	"time"

	repro "repro"
)

// The coalescer merges concurrent small /v1/align requests into one
// AlignBatchItemsContext submission. Each arriving request is buffered;
// the first arrival arms a CoalesceTick timer, and when it fires (or the
// buffer reaches CoalesceMax) the whole buffer is flushed as a single
// batch holding one run slot. The win is PR 3's narrow-batch arbitration:
// a flush of k small triples on a w-way pool gets intra-triple
// parallelism when k < w, whereas k independent submissions would fight
// over run slots and schedule k separate wavefronts. The cost is up to
// one tick of added latency on the coalesced path — which is why only
// requests below CoalesceCells lattice cells are eligible; large
// alignments go straight to a dedicated run slot where the tick would be
// noise but a shared flush could convoy them behind each other.

// ErrServerClosed is reported to coalesced requests caught by Close
// before their flush was submitted.
var ErrServerClosed = errors.New("server: draining, request abandoned")

// coalescePending is one buffered request awaiting its flush.
type coalescePending struct {
	item repro.BatchItem
	done chan coalesceDone // buffered: the flusher never blocks delivering
}

// coalesceDone is the flush outcome delivered back to the waiting handler.
type coalesceDone struct {
	res *repro.Result
	err error
}

type coalescer struct {
	srv *Server

	mu     sync.Mutex
	buf    []*coalescePending
	timer  *time.Timer
	closed bool
	wg     sync.WaitGroup // outstanding flush goroutines
}

func newCoalescer(s *Server) *coalescer { return &coalescer{srv: s} }

// enabled reports whether the configuration turns coalescing on and the
// request is small enough to be eligible.
func (c *coalescer) eligible(item repro.BatchItem) bool {
	if c.srv.cfg.CoalesceTick <= 0 {
		return false
	}
	tr := item.Triple
	cells := int64(tr.A.Len()+1) * int64(tr.B.Len()+1) * int64(tr.C.Len()+1)
	return cells <= c.srv.cfg.CoalesceCells
}

// submit buffers the item and returns its pending handle; the caller
// waits on done. A nil return means the coalescer is closed and the
// caller should run directly.
func (c *coalescer) submit(item repro.BatchItem) *coalescePending {
	p := &coalescePending{item: item, done: make(chan coalesceDone, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.buf = append(c.buf, p)
	full := len(c.buf) >= c.srv.cfg.CoalesceMax
	if full {
		batch := c.take()
		c.mu.Unlock()
		c.flush(batch)
		return p
	}
	if c.timer == nil {
		c.timer = time.AfterFunc(c.srv.cfg.CoalesceTick, c.tick)
	}
	c.mu.Unlock()
	return p
}

// take detaches the buffer and disarms the timer; callers hold mu.
func (c *coalescer) take() []*coalescePending {
	batch := c.buf
	c.buf = nil
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	return batch
}

// tick is the timer callback: flush whatever the window accumulated.
func (c *coalescer) tick() {
	c.mu.Lock()
	batch := c.take()
	c.mu.Unlock()
	c.flush(batch)
}

// flush submits one batch on a run slot from a fresh goroutine and
// delivers each item's outcome. The batch runs under the server's base
// context so one client's disconnect cannot cancel its batch-mates;
// per-item deadlines ride in each item's Options.
func (c *coalescer) flush(batch []*coalescePending) {
	if len(batch) == 0 {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		s := c.srv
		if err := s.gate.acquireRun(s.base); err != nil {
			for _, p := range batch {
				p.done <- coalesceDone{err: ErrServerClosed}
			}
			return
		}
		defer s.gate.releaseRun()
		items := make([]repro.BatchItem, len(batch))
		for i, p := range batch {
			items[i] = p.item
		}
		s.stats.coalescedBatches.Add(1)
		s.stats.coalescedRequests.Add(int64(len(batch)))
		for _, r := range repro.AlignBatchItemsContext(s.base, items) {
			batch[r.Index].done <- coalesceDone{res: r.Result, err: r.Err}
		}
	}()
}

// close flushes the remaining buffer and waits for outstanding flushes,
// so every handler still parked on a done channel is answered.
func (c *coalescer) close() {
	c.mu.Lock()
	c.closed = true
	batch := c.take()
	c.mu.Unlock()
	c.flush(batch)
	c.wg.Wait()
}

package server

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultpoint"
)

// cacheConfig is a small-but-real cache setup for the HTTP-level tests.
func cacheConfig() Config {
	return Config{CacheBytes: 1 << 20, CoalesceTick: -1}
}

// TestCacheHitServesIdenticalResultAndHeader: the second identical request
// must be a hit — same score and rows, X-Cache flips miss → hit, and the
// statsz counters account for exactly one fill.
func TestCacheHitServesIdenticalResultAndHeader(t *testing.T) {
	_, ts := newTestServer(t, cacheConfig())
	a, b, c := testTriple(t, 101, 40)
	body := fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, a, b, c)

	var first, second AlignResponse
	r1 := postJSON(t, ts, "/v1/align", body, &first)
	r2 := postJSON(t, ts, "/v1/align", body, &second)
	if r1.StatusCode != http.StatusOK || r2.StatusCode != http.StatusOK {
		t.Fatalf("statuses %d/%d, want 200/200", r1.StatusCode, r2.StatusCode)
	}
	if got := r1.Header.Get("X-Cache"); got != cacheStateMiss {
		t.Errorf("first X-Cache = %q, want miss", got)
	}
	if got := r2.Header.Get("X-Cache"); got != cacheStateHit {
		t.Errorf("second X-Cache = %q, want hit", got)
	}
	if first.Cache != cacheStateMiss || second.Cache != cacheStateHit {
		t.Errorf("body cache fields %q/%q, want miss/hit", first.Cache, second.Cache)
	}
	if first.Score != second.Score || first.Rows != second.Rows || first.Names != second.Names {
		t.Fatalf("hit differs from the computed result:\n%+v\n%+v", first, second)
	}
	if first.Score != directScore(t, a, b, c) {
		t.Fatalf("served score %d != library score", first.Score)
	}

	var st Statsz
	getJSON(t, ts, "/statsz", &st)
	if st.CacheHits != 1 || st.CacheFills != 1 || st.CacheEntries != 1 || st.CacheBytes <= 0 {
		t.Fatalf("cache counters: %+v", st)
	}
	if st.CacheMisses < 1 {
		t.Fatalf("cache_misses = %d, want >= 1", st.CacheMisses)
	}
}

// TestCacheHitBypassesAdmission: with the whole admission queue held, a
// cached request still answers 200 while a fresh one sheds 429.
func TestCacheHitBypassesAdmission(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheBytes: 1 << 20, QueueDepth: 2, MaxInFlight: 1, CoalesceTick: -1})
	a, b, c := testTriple(t, 103, 30)
	cached := fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, a, b, c)
	if resp := postJSON(t, ts, "/v1/align", cached, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("prime: status %d", resp.StatusCode)
	}

	for i := 0; i < 2; i++ {
		if !s.gate.tryAdmit() {
			t.Fatalf("admission slot %d unavailable", i)
		}
	}
	defer func() {
		s.gate.releaseAdmit()
		s.gate.releaseAdmit()
	}()

	x, y, z := testTriple(t, 104, 30)
	fresh := fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, x, y, z)
	if resp := postJSON(t, ts, "/v1/align", fresh, nil); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("fresh request under full queue: status %d, want 429", resp.StatusCode)
	}
	resp := postJSON(t, ts, "/v1/align", cached, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached request under full queue: status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != cacheStateHit {
		t.Fatalf("X-Cache = %q, want hit", got)
	}
}

// TestCacheSingleflightCollapsesFlood floods identical concurrent requests
// at a one-slot server: every response is a 200 with the same score, the
// kernel ran exactly once (one fill), and all but the leader collapsed.
func TestCacheSingleflightCollapsesFlood(t *testing.T) {
	const n = 8
	_, ts := newTestServer(t, Config{CacheBytes: 1 << 20, QueueDepth: 1, MaxInFlight: 1, Workers: 2, CoalesceTick: -1})
	a, b, c := testTriple(t, 105, 120)
	body := fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, a, b, c)

	var wg sync.WaitGroup
	scores := make([]int32, n)
	states := make([]string, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out AlignResponse
			resp := postJSON(t, ts, "/v1/align", body, &out)
			codes[i], scores[i], states[i] = resp.StatusCode, out.Score, out.Cache
		}(i)
	}
	wg.Wait()

	var st Statsz
	getJSON(t, ts, "/statsz", &st)
	if st.CacheFills != 1 {
		t.Fatalf("cache_fills = %d, want exactly 1 kernel run for %d identical requests", st.CacheFills, n)
	}
	// A request that races in while the leader computes collapses onto the
	// flight; one that arrives after the fill hits the cache. Either way the
	// kernel ran once and nobody else paid for it.
	if free := st.CacheCollapsed + st.CacheHits; free < n-1 {
		t.Fatalf("collapsed %d + hits %d = %d, want >= %d", st.CacheCollapsed, st.CacheHits, free, n-1)
	}
	want := directScore(t, a, b, c)
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK || scores[i] != want {
			t.Fatalf("request %d: code %d score %d (state %q), want 200/%d", i, codes[i], scores[i], states[i], want)
		}
	}
}

// TestCacheNearDupPatchUp primes the cache with one triple, then requests
// a single-substitution variant: the response must be flagged near-dup and
// bit-identical to an uncached control of the same variant.
func TestCacheNearDupPatchUp(t *testing.T) {
	_, ts := newTestServer(t, cacheConfig())
	base := strings.Repeat("ACGTTGCAAGCTGGATCCAT", 6)
	varB := base[:50] + "G" + base[51:]
	prime := fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, base, varB, base)
	if resp := postJSON(t, ts, "/v1/align", prime, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("prime: status %d", resp.StatusCode)
	}

	sub := "C"
	if base[30] == 'C' {
		sub = "G"
	}
	mutA := base[:30] + sub + base[31:]
	if mutA == base {
		t.Fatal("test bug: substitution did not change the sequence")
	}
	nearDup := fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, mutA, varB, base)
	var out AlignResponse
	resp := postJSON(t, ts, "/v1/align", nearDup, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("near-dup: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != cacheStateNearDup {
		t.Fatalf("X-Cache = %q, want near-dup", got)
	}

	// Uncached control: same variant on a cache-less server.
	_, control := newTestServer(t, Config{CoalesceTick: -1})
	var ctl AlignResponse
	if resp := postJSON(t, control, "/v1/align", nearDup, &ctl); resp.StatusCode != http.StatusOK {
		t.Fatalf("control: status %d", resp.StatusCode)
	}
	if out.Score != ctl.Score || out.Rows != ctl.Rows {
		t.Fatalf("near-dup result differs from uncached control:\n%+v\n%+v", out, ctl)
	}

	var st Statsz
	getJSON(t, ts, "/statsz", &st)
	if st.CacheNearDupPatched != 1 {
		t.Fatalf("cache_near_dup_patched = %d, want 1", st.CacheNearDupPatched)
	}
}

// TestCacheNearDupRespectsExplicitAlgorithm: a client that pinned a
// kernel must never receive the patch-up's bounded kernel.
func TestCacheNearDupRespectsExplicitAlgorithm(t *testing.T) {
	_, ts := newTestServer(t, cacheConfig())
	base := strings.Repeat("ACGTTGCAAGCTGGATCCAT", 5)
	prime := fmt.Sprintf(`{"a":%q,"b":%q,"c":%q,"algorithm":"full"}`, base, base, base)
	postJSON(t, ts, "/v1/align", prime, nil)

	sub := "C"
	if base[30] == 'C' {
		sub = "G"
	}
	mut := base[:30] + sub + base[31:]
	var out AlignResponse
	resp := postJSON(t, ts, "/v1/align", fmt.Sprintf(`{"a":%q,"b":%q,"c":%q,"algorithm":"full"}`, mut, base, base), &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Cache == cacheStateNearDup || out.Algorithm != "full" {
		t.Fatalf("explicit algorithm=full served cache=%q algorithm=%q", out.Cache, out.Algorithm)
	}
}

// TestCacheMinCostFloor: with an impossible cost floor nothing is
// admitted to the cache, so identical requests keep missing.
func TestCacheMinCostFloor(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheBytes: 1 << 20, CacheMinCost: time.Hour, CoalesceTick: -1})
	a, b, c := testTriple(t, 107, 30)
	body := fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, a, b, c)
	r1 := postJSON(t, ts, "/v1/align", body, nil)
	r2 := postJSON(t, ts, "/v1/align", body, nil)
	if r1.Header.Get("X-Cache") != cacheStateMiss || r2.Header.Get("X-Cache") != cacheStateMiss {
		t.Fatalf("X-Cache %q/%q, want miss/miss under an unreachable cost floor",
			r1.Header.Get("X-Cache"), r2.Header.Get("X-Cache"))
	}
	var st Statsz
	getJSON(t, ts, "/statsz", &st)
	if st.CacheEntries != 0 || st.CacheHits != 0 {
		t.Fatalf("cost floor leaked entries: %+v", st)
	}
}

// TestCacheKeyDistinguishesOptionsThatMatter: scheme and algorithm are
// part of the key; workers and deadline are not.
func TestCacheKeyDistinguishesOptionsThatMatter(t *testing.T) {
	_, ts := newTestServer(t, cacheConfig())
	a, b, c := testTriple(t, 109, 24)
	post := func(extra string) string {
		resp := postJSON(t, ts, "/v1/align", fmt.Sprintf(`{"a":%q,"b":%q,"c":%q%s}`, a, b, c, extra), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d for extra %q", resp.StatusCode, extra)
		}
		return resp.Header.Get("X-Cache")
	}
	if got := post(""); got != cacheStateMiss {
		t.Fatalf("first: %q", got)
	}
	// Execution knobs that cannot change the exact result hit anyway.
	if got := post(`,"workers":1`); got != cacheStateHit {
		t.Errorf("different workers: %q, want hit", got)
	}
	if got := post(`,"deadline_ms":25000`); got != cacheStateHit {
		t.Errorf("different deadline: %q, want hit", got)
	}
	// Semantic knobs miss.
	if got := post(`,"algorithm":"full"`); got != cacheStateMiss {
		t.Errorf("different algorithm: %q, want miss", got)
	}
}

// TestCacheChaosLeaderPanicServes500AndRecovers: an armed flight-panic
// fault must surface as a typed 500 counted in panics_contained — and the
// very next identical request must compute and cache normally.
func TestCacheChaosLeaderPanicServes500AndRecovers(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	_, ts := newTestServer(t, cacheConfig())
	if err := faultpoint.Arm("resultcache.flight.panic", "nth:1"); err != nil {
		t.Fatal(err)
	}
	a, b, c := testTriple(t, 111, 30)
	body := fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, a, b, c)
	var out errorResponse
	resp := postJSON(t, ts, "/v1/align", body, &out)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked leader: status %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(out.Error, "flight leader") {
		t.Fatalf("error %q does not name the flight panic", out.Error)
	}
	var ok AlignResponse
	if resp := postJSON(t, ts, "/v1/align", body, &ok); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request: status %d", resp.StatusCode)
	}
	if ok.Score != directScore(t, a, b, c) {
		t.Fatalf("post-panic score %d != library score", ok.Score)
	}
	var st Statsz
	getJSON(t, ts, "/statsz", &st)
	if st.PanicsContained < 1 || st.Failed < 1 {
		t.Fatalf("panic not accounted: %+v", st)
	}
}

// TestCacheChaosCorruptEntryRecomputes: with put-corruption armed, the
// poisoned entry must never be served — the next identical request drops
// it, recomputes, and still returns the exact score.
func TestCacheChaosCorruptEntryRecomputes(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	_, ts := newTestServer(t, cacheConfig())
	if err := faultpoint.Arm("resultcache.put.corrupt", "nth:1"); err != nil {
		t.Fatal(err)
	}
	a, b, c := testTriple(t, 113, 30)
	body := fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, a, b, c)
	want := directScore(t, a, b, c)

	var first, second AlignResponse
	postJSON(t, ts, "/v1/align", body, &first)
	r2 := postJSON(t, ts, "/v1/align", body, &second)
	if first.Score != want || second.Score != want {
		t.Fatalf("scores %d/%d, want %d — a corrupted entry leaked", first.Score, second.Score, want)
	}
	if got := r2.Header.Get("X-Cache"); got == cacheStateHit {
		t.Fatal("corrupted entry served as a hit")
	}
	var st Statsz
	getJSON(t, ts, "/statsz", &st)
	if st.CacheCorruptDropped < 1 {
		t.Fatalf("cache_corrupt_dropped = %d, want >= 1", st.CacheCorruptDropped)
	}
}

// TestCacheDisabledHasNoHeader: the default (cache off) path must not
// grow an X-Cache header or cache body field.
func TestCacheDisabledHasNoHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{CoalesceTick: -1})
	a, b, c := testTriple(t, 115, 20)
	var out AlignResponse
	resp := postJSON(t, ts, "/v1/align", fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, a, b, c), &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if h := resp.Header.Get("X-Cache"); h != "" || out.Cache != "" {
		t.Fatalf("cache-disabled response carries cache state %q/%q", h, out.Cache)
	}
}

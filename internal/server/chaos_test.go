package server

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultpoint"
)

// The serving chaos suite: fault points at the coalescer flush, the
// admission edge, and the pressure guard, with the invariant that every
// in-flight request gets exactly one well-formed answer — a 200, or a
// typed error status — and the server survives to serve the next one.

// TestChaosFlushPanicContained arms server.coalesce.flush so one parked
// request's delivery panics mid-flush. That request must get a typed 500;
// the other requests in the same buffer keep their 200s; the panic is
// counted in /statsz.
func TestChaosFlushPanicContained(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Arm("server.coalesce.flush", "nth:2"); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{CoalesceTick: 20 * time.Millisecond, CoalesceMax: 64})

	const requests = 6
	type reply struct {
		status int
		body   string
	}
	replies := make([]reply, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, b, c := testTriple(t, int64(i+1), 30)
			body := fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, a, b, c)
			resp, err := http.Post(ts.URL+"/v1/align", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			buf := make([]byte, 4096)
			n, _ := resp.Body.Read(buf)
			replies[i] = reply{resp.StatusCode, string(buf[:n])}
		}(i)
	}
	wg.Wait()

	var oks, panics int
	for i, r := range replies {
		switch r.status {
		case http.StatusOK:
			oks++
		case http.StatusInternalServerError:
			if !strings.Contains(r.body, "flush panicked") {
				t.Errorf("request %d: 500 body %q misses the flush-panic cause", i, r.body)
			}
			panics++
		default:
			t.Errorf("request %d: status %d body %q", i, r.status, r.body)
		}
	}
	if panics == 0 {
		t.Fatal("injected flush panic reached no request")
	}
	if oks == 0 {
		t.Fatal("flush panic took down the whole buffer: no request succeeded")
	}

	// The server survives: a fresh request (fault is nth — already spent)
	// still aligns, and the panic was counted.
	a, b, c := testTriple(t, 99, 30)
	var out AlignResponse
	resp := postJSON(t, ts, "/v1/align", fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, a, b, c), &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request: status %d, want 200", resp.StatusCode)
	}
	var st Statsz
	getJSON(t, ts, "/statsz", &st)
	if st.PanicsContained < 1 {
		t.Fatalf("panics_contained = %d, want >= 1", st.PanicsContained)
	}
	if st.FaultsInjected < 1 {
		t.Fatalf("faults_injected = %d, want >= 1", st.FaultsInjected)
	}
}

// TestChaosAdmitFaultInjects503 arms server.admit and checks the injected
// unavailability is a well-formed transient: 503 plus a Retry-After hint,
// and the very next attempt (fault spent) succeeds.
func TestChaosAdmitFaultInjects503(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Arm("server.admit", "first:2"); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{CoalesceTick: -1})
	a, b, c := testTriple(t, 7, 30)
	body := fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, a, b, c)

	for attempt := 0; attempt < 2; attempt++ {
		resp, err := http.Post(ts.URL+"/v1/align", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("attempt %d: status %d, want 503", attempt, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("attempt %d: injected 503 without a Retry-After hint", attempt)
		}
	}
	var out AlignResponse
	resp := postJSON(t, ts, "/v1/align", body, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("attempt after fault spent: status %d, want 200", resp.StatusCode)
	}
}

// TestChaosPressureDegrade forces the guard's degrade level: a request big
// enough that the full lattice exceeds the forced budget must still get an
// exact answer, served under a downgraded plan, and be counted.
func TestChaosPressureDegrade(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Arm("server.pressure.degrade", "always"); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{CoalesceTick: -1})
	a, b, c := testTriple(t, 3, 260)
	want := directScore(t, a, b, c)

	var out AlignResponse
	resp := postJSON(t, ts, "/v1/align", fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, a, b, c), &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (degrade serves, never sheds)", resp.StatusCode)
	}
	if out.Score != want {
		t.Fatalf("score under pressure = %d, want exact %d", out.Score, want)
	}
	if out.Plan == nil || len(out.Plan.Downgrades) == 0 {
		t.Fatalf("pressure degrade left no downgrade trail: plan = %+v", out.Plan)
	}
	var st Statsz
	getJSON(t, ts, "/statsz", &st)
	if st.MemPressureDegraded < 1 {
		t.Fatalf("mem_pressure_degraded = %d, want >= 1", st.MemPressureDegraded)
	}
}

// TestChaosPressureShed forces the guard's shed level: new work bounces
// with 429 + Retry-After, then flows again once the fault is disarmed.
func TestChaosPressureShed(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Arm("server.pressure.shed", "always"); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{CoalesceTick: -1})
	a, b, c := testTriple(t, 5, 30)
	body := fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, a, b, c)

	resp, err := http.Post(ts.URL+"/v1/align", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status under forced shed = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed without a Retry-After hint")
	}

	faultpoint.Disarm("server.pressure.shed")
	var out AlignResponse
	resp = postJSON(t, ts, "/v1/align", body, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after shed lifted = %d, want 200", resp.StatusCode)
	}
}

// TestChaosBatchPressureDegrade routes a whole batch through the degrade
// level: every item answers, exact scores, downgraded plans where the
// lattice is too big for the forced budget.
func TestChaosBatchPressureDegrade(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Arm("server.pressure.degrade", "always"); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{CoalesceTick: -1})

	items := make([]string, 3)
	wants := make([]int32, 3)
	for i := range items {
		a, b, c := testTriple(t, int64(40+i), 200)
		items[i] = fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, a, b, c)
		wants[i] = directScore(t, a, b, c)
	}
	var out BatchResponse
	resp := postJSON(t, ts, "/v1/align/batch",
		fmt.Sprintf(`{"items":[%s]}`, strings.Join(items, ",")), &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, want 200", resp.StatusCode)
	}
	if len(out.Results) != len(items) {
		t.Fatalf("batch answered %d of %d items", len(out.Results), len(items))
	}
	for i, item := range out.Results {
		if item.Error != "" {
			t.Fatalf("item %d failed under pressure: %s", i, item.Error)
		}
		if item.Result == nil || item.Result.Score != wants[i] {
			t.Fatalf("item %d result = %+v, want exact score %d", i, item.Result, wants[i])
		}
	}
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	repro "repro"
)

// AlignRequest is the wire form of one alignment: either inline residues
// (a/b/c) or a three-record FASTA document, plus per-request knobs. The
// zero knobs mean "server defaults": DNA alphabet, the alphabet's default
// scheme, AlgorithmAuto, the shared pool's worker count, the server's
// default deadline, and fallback-on.
type AlignRequest struct {
	A     string `json:"a,omitempty"`
	B     string `json:"b,omitempty"`
	C     string `json:"c,omitempty"`
	FASTA string `json:"fasta,omitempty"`

	Alphabet  string `json:"alphabet,omitempty"`
	Scheme    string `json:"scheme,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	// DeadlineMS bounds this request's alignment wall-clock; with fallback
	// on (the default) an exceeded deadline degrades to the heuristic and
	// sets "degraded" in the response instead of failing.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Fallback opts out of graceful degradation when set to false.
	Fallback *bool `json:"fallback,omitempty"`
	MaxBytes int64 `json:"max_bytes,omitempty"`
	// MaxMemoryBytes is the soft planning budget (Options.MaxMemoryBytes):
	// the planner downgrades to a smaller-memory kernel instead of
	// rejecting, recording each step in the response plan.
	MaxMemoryBytes int64 `json:"max_memory_bytes,omitempty"`
}

// BatchRequest is the wire form of /v1/align/batch: shared defaults plus
// per-item requests (item fields override the defaults field-by-field for
// the knobs; sequences are always per-item).
type BatchRequest struct {
	Defaults *AlignRequest  `json:"defaults,omitempty"`
	Items    []AlignRequest `json:"items"`
}

// AlignResponse is the wire form of one alignment result.
type AlignResponse struct {
	Algorithm string    `json:"algorithm"`
	Score     int32     `json:"score"`
	ElapsedMS float64   `json:"elapsed_ms"`
	Columns   int       `json:"columns"`
	Names     [3]string `json:"names"`
	Rows      [3]string `json:"rows"`
	// Degraded marks a heuristic fallback result: the score is a lower
	// bound on the optimum, and DegradedCause names the budget that ran
	// out (deadline or memory cap).
	Degraded      bool   `json:"degraded,omitempty"`
	DegradedCause string `json:"degraded_cause,omitempty"`
	// Coalesced reports that this request was served through a coalesced
	// batch submission rather than a dedicated run slot.
	Coalesced bool `json:"coalesced,omitempty"`
	// Cache reports how the result cache served this request when the
	// server has one enabled (also carried in the X-Cache header):
	// "hit" (answered from the cache, no kernel work), "miss" (this
	// request led the computation), "collapsed" (piggybacked on a
	// concurrent identical request's computation), or "near-dup" (served
	// by a verified bounded re-align seeded from a near-duplicate's
	// cached score — bit-identical to a full alignment). Empty when the
	// cache is disabled.
	Cache string `json:"cache,omitempty"`
	// Plan is the execution plan that served the request: kernel, tile
	// shape, workers, footprint and duration estimates, and any
	// budget-driven downgrades.
	Plan *repro.Plan `json:"plan,omitempty"`
	// EvaluatedCells is the number of lattice cells a Carrillo–Lipman
	// kernel actually evaluated (the plan's est_evaluated_cells is the
	// prediction; this is the measurement). Zero for kernels that fill the
	// whole lattice.
	EvaluatedCells int64 `json:"evaluated_cells,omitempty"`
}

// BatchResponse is the wire form of /v1/align/batch: one entry per item in
// input order, each either a result or an error string.
type BatchResponse struct {
	Results []BatchItemResponse `json:"results"`
}

// BatchItemResponse is one batch item's outcome.
type BatchItemResponse struct {
	Index  int            `json:"index"`
	Result *AlignResponse `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// errorResponse is the body of every non-2xx JSON reply.
type errorResponse struct {
	Error string `json:"error"`
}

// badRequestError marks client-side validation failures so errorStatus can
// map them to 400 without string matching.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

// badRequestf builds a *badRequestError.
func badRequestf(format string, args ...any) error {
	return &badRequestError{fmt.Sprintf(format, args...)}
}

// triple materializes the request's sequences: inline residues or FASTA,
// never both, validated against the alphabet and the server's length cap.
func (s *Server) triple(req *AlignRequest) (repro.Triple, error) {
	name := req.Alphabet
	if name == "" {
		name = "dna"
	}
	alpha, ok := repro.AlphabetByName(name)
	if !ok {
		return repro.Triple{}, badRequestf("unknown alphabet %q (want dna, rna, or protein)", name)
	}
	inline := req.A != "" || req.B != "" || req.C != ""
	if inline && req.FASTA != "" {
		return repro.Triple{}, badRequestf("give either a/b/c or fasta, not both")
	}
	var tr repro.Triple
	var err error
	if req.FASTA != "" {
		tr, err = repro.ReadTripleFASTA(strings.NewReader(req.FASTA), alpha)
	} else if inline {
		tr, err = repro.NewTriple(req.A, req.B, req.C, alpha)
	} else {
		return repro.Triple{}, badRequestf("no sequences: give a/b/c or fasta")
	}
	if err != nil {
		return repro.Triple{}, &badRequestError{err.Error()}
	}
	for _, sq := range []*repro.Sequence{tr.A, tr.B, tr.C} {
		if sq.Len() > s.cfg.MaxSequenceLen {
			return repro.Triple{}, badRequestf("sequence %q has %d residues; the server caps sequences at %d",
				sq.Name(), sq.Len(), s.cfg.MaxSequenceLen)
		}
	}
	return tr, nil
}

// item resolves one wire request into a BatchItem ready for execution.
func (s *Server) item(req *AlignRequest) (repro.BatchItem, error) {
	tr, err := s.triple(req)
	if err != nil {
		return repro.BatchItem{}, err
	}
	opt, err := s.resolveOptions(req)
	if err != nil {
		return repro.BatchItem{}, err
	}
	return repro.BatchItem{Triple: tr, Opt: opt}, nil
}

// merge overlays item-level knobs on the batch defaults. Sequence fields
// are never inherited; knob fields are taken from the item when set.
func merge(def *AlignRequest, item AlignRequest) AlignRequest {
	if def == nil {
		return item
	}
	out := item
	if out.Alphabet == "" {
		out.Alphabet = def.Alphabet
	}
	if out.Scheme == "" {
		out.Scheme = def.Scheme
	}
	if out.Algorithm == "" {
		out.Algorithm = def.Algorithm
	}
	if out.Workers == 0 {
		out.Workers = def.Workers
	}
	if out.DeadlineMS == 0 {
		out.DeadlineMS = def.DeadlineMS
	}
	if out.Fallback == nil {
		out.Fallback = def.Fallback
	}
	if out.MaxBytes == 0 {
		out.MaxBytes = def.MaxBytes
	}
	if out.MaxMemoryBytes == 0 {
		out.MaxMemoryBytes = def.MaxMemoryBytes
	}
	return out
}

// response converts a library Result to the wire form.
func response(res *repro.Result, coalesced bool) *AlignResponse {
	ra, rb, rc := res.Rows()
	out := &AlignResponse{
		Algorithm: string(res.Algorithm),
		Score:     res.Score,
		ElapsedMS: durMS(res.Elapsed),
		Columns:   res.Columns(),
		Names:     [3]string{res.Triple.A.Name(), res.Triple.B.Name(), res.Triple.C.Name()},
		Rows:      [3]string{ra, rb, rc},
		Coalesced: coalesced,
		Plan:      res.Plan,
	}
	if res.Prune != nil {
		out.EvaluatedCells = res.Prune.EvaluatedCells
	}
	if res.Degraded {
		out.Degraded = true
		if res.DegradedCause != nil {
			out.DegradedCause = res.DegradedCause.Error()
		}
	}
	return out
}

// errorStatus maps an execution error to an HTTP status: validation 400,
// over-cap lattices 413, deadlines 504, cancelled requests 499 (the
// de-facto client-closed-request code), everything else 500.
func errorStatus(err error) int {
	var br *badRequestError
	switch {
	case errors.As(err, &br):
		return http.StatusBadRequest
	case errors.Is(err, repro.ErrTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	}
	return http.StatusInternalServerError
}

// writeJSON writes a JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

// writeError writes the JSON error body for status.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

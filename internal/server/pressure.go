package server

import (
	"runtime"
	"sync/atomic"
	"time"

	repro "repro"
	"repro/internal/faultpoint"
)

// The soft memory-pressure guard. MaxLatticeBytes caps what any single
// request may plan, but it cannot see the aggregate: enough concurrent
// mid-sized lattices push the heap toward the container limit and the next
// allocation OOM-kills the process. The guard samples runtime.MemStats on
// a ticker and classifies the heap against a configured soft limit into
// three levels; handlers consult the level per admission:
//
//   - ok: admit normally.
//   - degrade (heap ≥ MemDegradeFraction × soft limit): admit, but force a
//     soft planning budget (Options.MaxMemoryBytes) equal to the remaining
//     headroom, so the planner walks its downgrade ladder — full lattice →
//     sweep planes → heuristic last resort — and the request is served
//     with a smaller footprint (a degraded 200) instead of being refused.
//   - shed (heap ≥ soft limit): refuse new alignment work with 429 and a
//     Retry-After hint; serving anything new would risk the whole process.
//
// Degrade-before-shed is the point: the planner already knows how to trade
// memory for accuracy, so pressure routes through that ladder first and
// only sheds when there is no headroom left to plan into.

// pressureLevel is the guard's classification of the current heap.
type pressureLevel int32

const (
	pressureOK pressureLevel = iota
	pressureDegrade
	pressureShed
)

// Pressure fault points. Both are behavioral: a fired hit forces the
// corresponding level for that one admission, so chaos suites drive the
// degrade and shed paths deterministically instead of having to inflate
// the real heap to a configured boundary.
var (
	fpPressureDegrade = faultpoint.New("server.pressure.degrade")
	fpPressureShed    = faultpoint.New("server.pressure.shed")
)

// minPressureBudget floors the degrade budget so a near-zero headroom
// reading still leaves the planner something to plan into (the sweep-plane
// kernels fit comfortably below it for every admissible sequence length).
const minPressureBudget = 8 << 20

// pressureGuard samples the heap and publishes the current level.
type pressureGuard struct {
	soft      int64 // shed at or above this heap size
	degradeAt int64 // degrade at or above this heap size

	level    atomic.Int32
	lastHeap atomic.Int64

	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
}

// newPressureGuard starts the sampler; nil when soft is non-positive (the
// guard disabled). It takes one synchronous sample so the level is valid
// before the first request.
func newPressureGuard(soft int64, frac float64, interval time.Duration) *pressureGuard {
	if soft <= 0 {
		return nil
	}
	if frac <= 0 || frac >= 1 {
		frac = 0.85
	}
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	g := &pressureGuard{
		soft:      soft,
		degradeAt: int64(float64(soft) * frac),
		interval:  interval,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	g.sample()
	go g.run()
	return g
}

func (g *pressureGuard) run() {
	defer close(g.done)
	t := time.NewTicker(g.interval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.sample()
		}
	}
}

// sample reads the heap once and reclassifies. ReadMemStats briefly stops
// the world, which is why the guard samples on a ticker instead of per
// request.
func (g *pressureGuard) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heap := int64(ms.HeapAlloc)
	g.lastHeap.Store(heap)
	lvl := pressureOK
	switch {
	case heap >= g.soft:
		lvl = pressureShed
	case heap >= g.degradeAt:
		lvl = pressureDegrade
	}
	g.level.Store(int32(lvl))
}

// close stops the sampler and waits for it to exit. Nil-safe.
func (g *pressureGuard) close() {
	if g == nil {
		return
	}
	close(g.stop)
	<-g.done
}

// pressureLevel resolves the level for one admission: fault points first
// (deterministic chaos), then the sampled level, ok when no guard runs.
func (s *Server) pressureLevel() pressureLevel {
	if fpPressureShed.Fire() {
		return pressureShed
	}
	if fpPressureDegrade.Fire() {
		return pressureDegrade
	}
	if s.pressure == nil {
		return pressureOK
	}
	return pressureLevel(s.pressure.level.Load())
}

// pressureBudget is the soft planning budget imposed on admissions under
// degrade pressure: the remaining headroom under the soft limit, floored
// at minPressureBudget. With no guard configured (a fault point forced the
// level) the floor itself is used, which is small enough to force the
// downgrade ladder visibly in chaos runs.
func (s *Server) pressureBudget() int64 {
	b := int64(minPressureBudget)
	if g := s.pressure; g != nil {
		if hr := g.soft - g.lastHeap.Load(); hr > b {
			b = hr
		}
	}
	return b
}

// degradeForPressure rewrites one admission's options for degrade
// pressure: impose the pressure budget unless the client already asked
// for a tighter one, and count the routing.
func (s *Server) degradeForPressure(item *repro.BatchItem) {
	b := s.pressureBudget()
	if item.Opt.MaxMemoryBytes == 0 || item.Opt.MaxMemoryBytes > b {
		item.Opt.MaxMemoryBytes = b
	}
	s.stats.memPressureDegraded.Add(1)
}

package server

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	repro "repro"
)

// MsaRequest is the wire form of POST /v1/msa: N sequences (inline or
// FASTA) plus the same per-request knobs as /v1/align and the MSA-specific
// ones. MSA requests are never coalesced — they are batches internally —
// and never served from the result cache.
type MsaRequest struct {
	// Sequences are inline residue strings; Names optionally names them
	// (defaults to s0, s1, ...). Give either Sequences or FASTA, not both.
	Sequences []string `json:"sequences,omitempty"`
	Names     []string `json:"names,omitempty"`
	FASTA     string   `json:"fasta,omitempty"`

	Alphabet  string `json:"alphabet,omitempty"`
	Scheme    string `json:"scheme,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	// DeadlineMS bounds the whole progressive run's wall-clock.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	Fallback   *bool `json:"fallback,omitempty"`
	MaxBytes   int64 `json:"max_bytes,omitempty"`
	// MaxMemoryBytes is the request-level soft budget, split across each
	// guide-tree level's concurrent merges by the planner's byte estimates.
	MaxMemoryBytes int64 `json:"max_memory_bytes,omitempty"`
	// GuideK overrides the guide-tree k-mer size (default: the probe k).
	GuideK int `json:"guide_k,omitempty"`
	// RefineRounds bounds the refinement polish; negative disables it.
	RefineRounds int `json:"refine_rounds,omitempty"`
	// SerialMerges disables fanning merges through the batch layer.
	SerialMerges bool `json:"serial_merges,omitempty"`
	// Explain includes the guide tree and per-merge plans in the response.
	Explain bool `json:"explain,omitempty"`
}

// MsaMergeResponse describes one progressive merge in an explain response.
type MsaMergeResponse struct {
	Level     int         `json:"level"`
	Members   []int       `json:"members"`
	Out       int         `json:"out"`
	NWay      int         `json:"n_way"`
	Algorithm string      `json:"algorithm,omitempty"`
	BatchSize int         `json:"batch_size"`
	Degraded  bool        `json:"degraded,omitempty"`
	Plan      *repro.Plan `json:"plan,omitempty"`
}

// MsaResponse is the wire form of one /v1/msa result.
type MsaResponse struct {
	NumSequences int   `json:"num_sequences"`
	Score        int32 `json:"score"`
	// UpperBound is the Carrillo–Lipman sum of optimal pairwise scores;
	// OptimalityGap = UpperBound − Score bounds the distance to optimal
	// (0 certifies optimality).
	UpperBound    int32    `json:"upper_bound"`
	OptimalityGap int32    `json:"optimality_gap"`
	ElapsedMS     float64  `json:"elapsed_ms"`
	Columns       int      `json:"columns"`
	Names         []string `json:"names"`
	Rows          []string `json:"rows"`
	// BatchedMerges counts merges that ran through a shared batch
	// submission (the LPT-scheduled fan-out path).
	BatchedMerges int  `json:"batched_merges"`
	Degraded      bool `json:"degraded,omitempty"`
	// GuideTree and Merges are included when the request sets explain.
	GuideTree string             `json:"guide_tree,omitempty"`
	Merges    []MsaMergeResponse `json:"merges,omitempty"`
}

// msaSequences materializes the request's family: inline residues or
// FASTA, validated against the alphabet and the server's caps.
func (s *Server) msaSequences(req *MsaRequest) ([]*repro.Sequence, error) {
	name := req.Alphabet
	if name == "" {
		name = "dna"
	}
	alpha, ok := repro.AlphabetByName(name)
	if !ok {
		return nil, badRequestf("unknown alphabet %q (want dna, rna, or protein)", name)
	}
	if len(req.Sequences) > 0 && req.FASTA != "" {
		return nil, badRequestf("give either sequences or fasta, not both")
	}
	var seqs []*repro.Sequence
	if req.FASTA != "" {
		var err error
		seqs, err = repro.ReadFASTA(strings.NewReader(req.FASTA), alpha)
		if err != nil {
			return nil, &badRequestError{err.Error()}
		}
	} else if len(req.Sequences) > 0 {
		if len(req.Names) > 0 && len(req.Names) != len(req.Sequences) {
			return nil, badRequestf("%d names for %d sequences", len(req.Names), len(req.Sequences))
		}
		for i, res := range req.Sequences {
			nm := fmt.Sprintf("s%d", i)
			if len(req.Names) > 0 {
				nm = req.Names[i]
			}
			sq, err := repro.NewSequence(nm, res, alpha)
			if err != nil {
				return nil, &badRequestError{fmt.Sprintf("sequence %d: %s", i, err)}
			}
			seqs = append(seqs, sq)
		}
	} else {
		return nil, badRequestf("no sequences: give sequences or fasta")
	}
	if len(seqs) < 2 {
		return nil, badRequestf("msa needs at least 2 sequences, have %d", len(seqs))
	}
	if len(seqs) > s.cfg.MaxMsaSequences {
		return nil, badRequestf("msa has %d sequences; the server caps families at %d",
			len(seqs), s.cfg.MaxMsaSequences)
	}
	for _, sq := range seqs {
		if sq.Len() > s.cfg.MaxSequenceLen {
			return nil, badRequestf("sequence %q has %d residues; the server caps sequences at %d",
				sq.Name(), sq.Len(), s.cfg.MaxSequenceLen)
		}
	}
	return seqs, nil
}

// msaOptions maps the wire knobs onto repro.MSAOptions by reusing the
// /v1/align option resolution for the shared fields.
func (s *Server) msaOptions(req *MsaRequest) (repro.MSAOptions, error) {
	base, err := s.resolveOptions(&AlignRequest{
		Scheme:         req.Scheme,
		Algorithm:      req.Algorithm,
		Workers:        req.Workers,
		DeadlineMS:     req.DeadlineMS,
		Fallback:       req.Fallback,
		MaxBytes:       req.MaxBytes,
		MaxMemoryBytes: req.MaxMemoryBytes,
	})
	if err != nil {
		return repro.MSAOptions{}, err
	}
	return repro.MSAOptions{
		Options:      base,
		GuideK:       req.GuideK,
		RefineRounds: req.RefineRounds,
		SerialMerges: req.SerialMerges,
	}, nil
}

// planMsa plans the progressive run and enforces the server's lattice cap
// against the peak concurrent footprint of any one guide-tree level — the
// /v1/msa analogue of planItem's pre-queue 413.
func (s *Server) planMsa(seqs []*repro.Sequence, opt repro.MSAOptions) (*repro.MSAPlan, error) {
	mp, err := repro.PlanMSA(seqs, opt)
	if err != nil {
		return nil, err
	}
	if limit := s.cfg.MaxLatticeBytes; limit > 0 && mp.PeakLevelBytes > uint64(limit) {
		return nil, fmt.Errorf("planned msa peak level needs %d bytes; the server caps lattices at %d bytes: %w",
			mp.PeakLevelBytes, limit, repro.ErrTooLarge)
	}
	return mp, nil
}

// handleMsa serves POST /v1/msa: parse, plan (413 over the lattice cap
// before queueing), admit or shed, then run the progressive MSA on a
// dedicated run slot. MSA requests bypass the coalescer — they are never
// small — and the result cache.
func (s *Server) handleMsa(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	s.observeRetry(r)
	if fpAdmit.Fire() {
		s.injectUnavailable(w)
		return
	}
	var req MsaRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(err)
		writeError(w, errorStatus(err), err)
		return
	}
	seqs, err := s.msaSequences(&req)
	if err != nil {
		s.fail(err)
		writeError(w, errorStatus(err), err)
		return
	}
	opt, err := s.msaOptions(&req)
	if err != nil {
		s.fail(err)
		writeError(w, errorStatus(err), err)
		return
	}
	switch s.pressureLevel() {
	case pressureShed:
		s.shed(w)
		return
	case pressureDegrade:
		s.stats.memPressureDegraded.Add(1)
		opt.Options = s.degradedOptions(opt.Options)
	}
	mp, err := s.planMsa(seqs, opt)
	if err != nil {
		s.fail(err)
		writeError(w, errorStatus(err), err)
		return
	}
	if !s.gate.tryAdmit() {
		s.shed(w)
		return
	}
	defer s.gate.releaseAdmit()

	est := estGauge(mp.PeakLevelBytes)
	s.stats.estBytesInFlight.Add(est)
	s.stats.msaRequests.Add(1)
	start := time.Now()
	if err := s.gate.acquireRun(r.Context()); err != nil {
		s.stats.estBytesInFlight.Add(-est)
		writeError(w, errorStatus(err), err)
		return
	}
	res, err := repro.AlignMSA(r.Context(), seqs, opt)
	s.gate.releaseRun()
	s.stats.latency.record(time.Since(start))
	s.stats.estBytesInFlight.Add(-est)
	if err != nil {
		s.fail(err)
		writeError(w, errorStatus(err), err)
		return
	}
	s.stats.completed.Add(1)
	s.stats.msaCompleted.Add(1)
	s.stats.msaSequences.Add(int64(len(seqs)))
	s.stats.msaMerges.Add(int64(len(res.Merges)))
	s.stats.msaBatchedMerges.Add(int64(res.BatchedMerges))
	if res.Degraded {
		s.stats.degraded.Add(1)
	}
	for _, m := range res.Merges {
		s.stats.recordPlan(m.Plan)
	}
	writeJSON(w, http.StatusOK, msaResponse(res, req.Explain))
}

// handleMsaPlan serves POST /v1/msa/plan: the dry-run planning endpoint
// for progressive MSA, available during drain like /v1/plan.
func (s *Server) handleMsaPlan(w http.ResponseWriter, r *http.Request) {
	var req MsaRequest
	if err := s.decode(w, r, &req); err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	seqs, err := s.msaSequences(&req)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	opt, err := s.msaOptions(&req)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	mp, err := s.planMsa(seqs, opt)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, mp)
}

// degradedOptions is the MSA arm of memory-pressure degradation: impose
// the pressure guard's budget on the request the same way degradeForPressure
// does for /v1/align items.
func (s *Server) degradedOptions(opt repro.Options) repro.Options {
	item := repro.BatchItem{Opt: opt}
	s.degradeForPressure(&item)
	return item.Opt
}

// msaResponse converts a library MSAResult to the wire form.
func msaResponse(res *repro.MSAResult, explain bool) *MsaResponse {
	out := &MsaResponse{
		NumSequences:  res.Profile.NumRows(),
		Score:         res.Score,
		UpperBound:    res.UpperBound,
		OptimalityGap: res.OptimalityGap,
		ElapsedMS:     durMS(res.Elapsed),
		Columns:       res.Profile.Columns(),
		Names:         res.Profile.Names(),
		Rows:          res.Profile.RowStrings(),
		BatchedMerges: res.BatchedMerges,
		Degraded:      res.Degraded,
	}
	if explain {
		out.GuideTree = res.Tree.String()
		for _, m := range res.Merges {
			out.Merges = append(out.Merges, MsaMergeResponse{
				Level: m.Level, Members: m.Members, Out: m.Out, NWay: m.NWay,
				Algorithm: string(m.Algorithm), BatchSize: m.BatchSize,
				Degraded: m.Degraded, Plan: m.Plan,
			})
		}
	}
	return out
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	repro "repro"
)

// newTestServer builds a Server plus an httptest front for it.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postJSON posts body to path and returns the response with its decoded
// JSON body (into out when non-nil).
func postJSON(t *testing.T, ts *httptest.Server, path, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		var buf bytes.Buffer
		if err := json.NewDecoder(io2(&buf, resp)).Decode(out); err != nil {
			t.Fatalf("POST %s: decode %q: %v", path, buf.String(), err)
		}
	}
	return resp
}

// io2 tees the body so decode failures can show it.
func io2(buf *bytes.Buffer, resp *http.Response) *strings.Reader {
	buf.ReadFrom(resp.Body)
	return strings.NewReader(buf.String())
}

// testTriple returns three related DNA residue strings of roughly length n.
func testTriple(t *testing.T, seed int64, n int) (a, b, c string) {
	t.Helper()
	g := repro.NewGenerator(repro.DNA, seed)
	tr := g.RelatedTriple(n, repro.MutationModel{SubstitutionRate: 0.2, InsertionRate: 0.02, DeletionRate: 0.02})
	return tr.A.String(), tr.B.String(), tr.C.String()
}

// directScore aligns the same residues through the library for comparison.
func directScore(t *testing.T, a, b, c string) int32 {
	t.Helper()
	tr, err := repro.NewTriple(a, b, c, repro.DNA)
	if err != nil {
		t.Fatalf("NewTriple: %v", err)
	}
	res, err := repro.Align(tr, repro.Options{Workers: 1})
	if err != nil {
		t.Fatalf("Align: %v", err)
	}
	return res.Score
}

func TestServeAlignInline(t *testing.T) {
	_, ts := newTestServer(t, Config{CoalesceTick: -1}) // direct path
	a, b, c := testTriple(t, 1, 40)
	var out AlignResponse
	resp := postJSON(t, ts, "/v1/align", fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, a, b, c), &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if want := directScore(t, a, b, c); out.Score != want {
		t.Errorf("score = %d, want %d", out.Score, want)
	}
	if out.Coalesced {
		t.Errorf("Coalesced = true on the direct path")
	}
	if out.Columns <= 0 || len(out.Rows[0]) != out.Columns {
		t.Errorf("columns = %d, rows[0] len %d", out.Columns, len(out.Rows[0]))
	}
}

func TestServeAlignFASTA(t *testing.T) {
	_, ts := newTestServer(t, Config{CoalesceTick: -1})
	a, b, c := testTriple(t, 2, 30)
	fasta := fmt.Sprintf(">sA\n%s\n>sB\n%s\n>sC\n%s\n", a, b, c)
	body, err := json.Marshal(AlignRequest{FASTA: fasta})
	if err != nil {
		t.Fatal(err)
	}
	var out AlignResponse
	resp := postJSON(t, ts, "/v1/align", string(body), &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if out.Names != [3]string{"sA", "sB", "sC"} {
		t.Errorf("names = %v", out.Names)
	}
	if want := directScore(t, a, b, c); out.Score != want {
		t.Errorf("score = %d, want %d", out.Score, want)
	}
}

func TestServeBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSequenceLen: 16, CoalesceTick: -1})
	cases := []struct {
		name, body string
		status     int
	}{
		{"malformed JSON", `{"a":`, http.StatusBadRequest},
		{"unknown field", `{"sequence_a":"ACGT"}`, http.StatusBadRequest},
		{"no sequences", `{}`, http.StatusBadRequest},
		{"both forms", `{"a":"ACGT","b":"ACGT","c":"ACGT","fasta":">x\nACGT"}`, http.StatusBadRequest},
		{"bad residues", `{"a":"ACGT","b":"ACGT","c":"ACGTZ!"}`, http.StatusBadRequest},
		{"malformed FASTA", `{"fasta":"not a fasta document"}`, http.StatusBadRequest},
		{"two-record FASTA", `{"fasta":">x\nACGT\n>y\nACGT"}`, http.StatusBadRequest},
		{"unknown alphabet", `{"a":"ACGT","b":"ACGT","c":"ACGT","alphabet":"klingon"}`, http.StatusBadRequest},
		{"unknown algorithm", `{"a":"ACGT","b":"ACGT","c":"ACGT","algorithm":"quantum"}`, http.StatusBadRequest},
		{"unknown scheme", `{"a":"ACGT","b":"ACGT","c":"ACGT","scheme":"blosum1"}`, http.StatusBadRequest},
		{"over length cap", fmt.Sprintf(`{"a":%q,"b":"ACGT","c":"ACGT"}`, strings.Repeat("A", 17)), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out errorResponse
			resp := postJSON(t, ts, "/v1/align", tc.body, &out)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (error %q)", resp.StatusCode, tc.status, out.Error)
			}
			if out.Error == "" {
				t.Errorf("empty error body")
			}
		})
	}
}

func TestShedOverload(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 2, MaxInFlight: 1, CoalesceTick: -1})
	// Fill the admission queue from below; the next request must shed.
	for i := 0; i < 2; i++ {
		if !s.gate.tryAdmit() {
			t.Fatalf("admission slot %d unavailable", i)
		}
	}
	a, b, c := testTriple(t, 3, 20)
	var out errorResponse
	resp := postJSON(t, ts, "/v1/align", fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, a, b, c), &out)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Errorf("missing Retry-After header")
	}
	var st Statsz
	r2 := getJSON(t, ts, "/statsz", &st)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("statsz status = %d", r2.StatusCode)
	}
	if st.Shed != 1 {
		t.Errorf("shed = %d, want 1", st.Shed)
	}
	if st.QueueDepth != 2 {
		t.Errorf("queue_depth = %d, want 2 (the held slots)", st.QueueDepth)
	}
	s.gate.releaseAdmit()
	s.gate.releaseAdmit()
	resp2 := postJSON(t, ts, "/v1/align", fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, a, b, c), nil)
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("after release: status = %d, want 200", resp2.StatusCode)
	}
}

// getJSON fetches path and decodes the JSON body.
func getJSON(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
	return resp
}

func TestServeDeadlineDegraded(t *testing.T) {
	_, ts := newTestServer(t, Config{CoalesceTick: -1})
	a, b, c := testTriple(t, 4, 220)
	// 1ms cannot finish a 220³ exact lattice; fallback (the default)
	// degrades to the heuristic and reports the cause.
	var out AlignResponse
	resp := postJSON(t, ts, "/v1/align",
		fmt.Sprintf(`{"a":%q,"b":%q,"c":%q,"algorithm":"full","deadline_ms":1}`, a, b, c), &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (degraded)", resp.StatusCode)
	}
	if !out.Degraded {
		t.Fatalf("Degraded = false; algorithm %q finished a 220-cube in 1ms?", out.Algorithm)
	}
	if out.DegradedCause == "" {
		t.Errorf("empty degraded_cause")
	}
	if out.Algorithm != string(repro.AlgorithmCenterStarRefined) {
		t.Errorf("algorithm = %q, want %q", out.Algorithm, repro.AlgorithmCenterStarRefined)
	}
	var st Statsz
	getJSON(t, ts, "/statsz", &st)
	if st.Degraded < 1 {
		t.Errorf("statsz degraded = %d, want >= 1", st.Degraded)
	}

	// With fallback off the same request is a 504.
	var errOut errorResponse
	resp2 := postJSON(t, ts, "/v1/align",
		fmt.Sprintf(`{"a":%q,"b":%q,"c":%q,"algorithm":"full","deadline_ms":1,"fallback":false}`, a, b, c), &errOut)
	if resp2.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("no-fallback status = %d, want 504 (error %q)", resp2.StatusCode, errOut.Error)
	}
}

func TestCoalesceCorrectness(t *testing.T) {
	const reqs = 6
	_, ts := newTestServer(t, Config{CoalesceTick: 10 * time.Millisecond, CoalesceMax: 4, Workers: 4})
	type seqs struct{ a, b, c string }
	in := make([]seqs, reqs)
	for i := range in {
		a, b, c := testTriple(t, 100+int64(i), 30+2*i)
		in[i] = seqs{a, b, c}
	}
	outs := make([]AlignResponse, reqs)
	codes := make([]int, reqs)
	var wg sync.WaitGroup
	for i := 0; i < reqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/align", "application/json",
				strings.NewReader(fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, in[i].a, in[i].b, in[i].c)))
			if err != nil {
				t.Errorf("req %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			json.NewDecoder(resp.Body).Decode(&outs[i]) //nolint:errcheck
		}(i)
	}
	wg.Wait()
	coalesced := 0
	for i := 0; i < reqs; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("req %d: status %d", i, codes[i])
		}
		if want := directScore(t, in[i].a, in[i].b, in[i].c); outs[i].Score != want {
			t.Errorf("req %d: score %d, want %d", i, outs[i].Score, want)
		}
		if outs[i].Coalesced {
			coalesced++
		}
	}
	if coalesced != reqs {
		t.Errorf("coalesced %d of %d requests, want all (all are small)", coalesced, reqs)
	}
	var st Statsz
	getJSON(t, ts, "/statsz", &st)
	if st.CoalescedRequests != reqs {
		t.Errorf("statsz coalesced_requests = %d, want %d", st.CoalescedRequests, reqs)
	}
	if st.CoalescedBatches < 1 {
		t.Errorf("statsz coalesced_batches = %d, want >= 1", st.CoalescedBatches)
	}
	if st.Completed != reqs {
		t.Errorf("statsz completed = %d, want %d", st.Completed, reqs)
	}
}

func TestServeBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{CoalesceTick: -1})
	a0, b0, c0 := testTriple(t, 5, 30)
	a1, b1, c1 := testTriple(t, 6, 35)
	body := fmt.Sprintf(`{
		"defaults": {"alphabet": "dna"},
		"items": [
			{"a":%q,"b":%q,"c":%q},
			{"a":%q,"b":%q,"c":%q}
		]
	}`, a0, b0, c0, a1, b1, c1)
	var out BatchResponse
	resp := postJSON(t, ts, "/v1/align/batch", body, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if len(out.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(out.Results))
	}
	for i, want := range []int32{directScore(t, a0, b0, c0), directScore(t, a1, b1, c1)} {
		r := out.Results[i]
		if r.Error != "" || r.Result == nil {
			t.Fatalf("item %d: error %q", i, r.Error)
		}
		if r.Result.Score != want {
			t.Errorf("item %d: score %d, want %d", i, r.Result.Score, want)
		}
	}

	// A malformed item rejects the whole batch with its index named.
	var errOut errorResponse
	resp2 := postJSON(t, ts, "/v1/align/batch",
		fmt.Sprintf(`{"items":[{"a":%q,"b":%q,"c":%q},{"a":"!!","b":"A","c":"A"}]}`, a0, b0, c0), &errOut)
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad item status = %d, want 400", resp2.StatusCode)
	}
	if !strings.Contains(errOut.Error, "item 1") {
		t.Errorf("error %q does not name the offending item", errOut.Error)
	}

	// Empty batches are a client error, not an empty 200.
	resp3 := postJSON(t, ts, "/v1/align/batch", `{"items":[]}`, nil)
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status = %d, want 400", resp3.StatusCode)
	}
}

func TestServeHealthAndStats(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, CoalesceTick: -1})
	if resp := getJSON(t, ts, "/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts, "/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("readyz = %d", resp.StatusCode)
	}
	a, b, c := testTriple(t, 7, 25)
	postJSON(t, ts, "/v1/align", fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, a, b, c), nil)
	var st Statsz
	getJSON(t, ts, "/statsz", &st)
	if st.Completed != 1 {
		t.Errorf("completed = %d, want 1", st.Completed)
	}
	if st.Pool.Capacity < 2 {
		t.Errorf("pool capacity = %d, want >= 2 (prewarmed)", st.Pool.Capacity)
	}
	if st.LatencyMS.P50 <= 0 {
		t.Errorf("latency p50 = %v, want > 0 after a request", st.LatencyMS.P50)
	}
	if st.QueueDepth != 0 || st.InFlight != 0 {
		t.Errorf("idle gauges: queue_depth %d in_flight %d", st.QueueDepth, st.InFlight)
	}
}

func TestServeMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{CoalesceTick: -1})
	resp, err := http.Get(ts.URL + "/v1/align")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/align = %d, want 405", resp.StatusCode)
	}
}

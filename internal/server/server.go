// Package server implements the alignd serving layer: an HTTP JSON API
// over the three-sequence aligner with bounded admission, request
// coalescing, per-request deadlines, and graceful drain.
//
// The server is the thin front of the substrate the library already
// provides — context-aware cancellation (AlignContext), graceful
// degradation (Options.Fallback surfacing Result.Degraded), and the
// persistent process-wide worker pool shared by AlignBatchItemsContext —
// so its own job reduces to admission control and observability:
//
//   - Admission is a bounded queue. A request either takes a slot
//     immediately or is shed with 429 and a Retry-After hint; nothing
//     queues unboundedly, so the queue depth reported by /statsz is a hard
//     bound, not a high-water mark. Admitted requests then wait (bounded
//     by the queue size) for one of a fixed number of run slots.
//
//   - Concurrent small /v1/align requests are coalesced: instead of each
//     taking a run slot, they are buffered for one short tick and
//     submitted together as a single AlignBatchItemsContext call. A narrow
//     coalesced batch gets intra-triple parallelism from the pool, so
//     coalescing trades a tick of latency for much better pool utilization
//     under many-small-request load.
//
//   - Drain is cooperative: BeginDrain flips /readyz to 503 and sheds new
//     alignment work while in-flight requests — including a pending
//     coalesced flush — run to completion; Close then stops the coalescer.
//     The process exit path (signal handling, listener shutdown) belongs
//     to cmd/alignd.
//
//   - Admission is memory-aware: every request is planned (internal/plan
//     through repro.PlanAlign) before it takes a queue slot. A configured
//     MaxLatticeBytes sheds requests whose estimated lattice footprint is
//     over the cap with 413 before queueing, POST /v1/plan exposes the
//     plan itself as a dry run, and /statsz reports est_bytes_in_flight
//     and planned_downgrades so operators can see budget pressure.
//
// Endpoints: POST /v1/align, POST /v1/align/batch, POST /v1/plan,
// GET /healthz, GET /readyz, GET /statsz, and /debug/pprof/*.
package server

import (
	"context"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	repro "repro"
	"repro/internal/faultpoint"
	"repro/internal/resultcache"
	"repro/internal/wavefront"
)

// Config tunes the serving layer. The zero value serves with the defaults
// noted on each field (applied by New).
type Config struct {
	// Workers is the alignment worker-pool size shared by all requests;
	// non-positive means GOMAXPROCS. New prewarms the process-wide pool to
	// this size.
	Workers int
	// QueueDepth bounds admitted requests (waiting plus running). A request
	// arriving at a full queue is shed with 429. Default 64.
	QueueDepth int
	// MaxInFlight bounds concurrently executing alignment submissions (a
	// coalesced flush counts as one). Default: Workers.
	MaxInFlight int
	// CoalesceTick is the buffering window for coalescing small /v1/align
	// requests into one batch submission; non-positive disables coalescing
	// (cmd/alignd defaults the flag to 2ms).
	CoalesceTick time.Duration
	// CoalesceMax flushes a coalesced batch early once this many requests
	// are buffered. Default 16.
	CoalesceMax int
	// CoalesceCells is the per-request lattice-cell ceiling for coalescing;
	// requests larger than this run directly on their own run slot.
	// Default 2^24 (~256³).
	CoalesceCells int64
	// DefaultDeadline is applied to requests that set no deadline_ms;
	// 0 means no default. MaxDeadline caps any requested deadline;
	// default 30s.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// RetryAfter is the hint returned with 429 responses. Default 1s.
	RetryAfter time.Duration
	// MaxBodyBytes caps request bodies (default 8 MiB); MaxSequenceLen caps
	// each sequence's residue count (default 4096); MaxBatchItems caps
	// items per /v1/align/batch (default 256).
	MaxBodyBytes   int64
	MaxSequenceLen int
	MaxBatchItems  int
	// MaxMsaSequences caps the family size per /v1/msa request (default
	// 16, hard-capped by the 64-row profile mask width).
	MaxMsaSequences int
	// MaxLatticeBytes, when positive, caps the planner-estimated lattice
	// footprint of any single alignment (each batch item counts
	// separately). Requests planning a larger allocation are shed with 413
	// *before* taking an admission slot, so an oversized request can never
	// occupy queue depth. 0 means no cap beyond the per-request MaxBytes
	// the kernels enforce.
	MaxLatticeBytes int64
	// MemSoftLimitBytes, when positive, enables the memory-pressure guard:
	// a sampler watches the process heap and, as it approaches this limit,
	// new admissions are first routed through the planner's downgrade
	// ladder (degraded 200s) and finally shed with 429 (see pressure.go).
	// 0 disables the guard.
	MemSoftLimitBytes int64
	// MemDegradeFraction is the fraction of MemSoftLimitBytes at which
	// admissions start degrading; out-of-range values mean 0.85.
	MemDegradeFraction float64
	// MemSampleInterval is the heap sampling period; non-positive means
	// 100ms.
	MemSampleInterval time.Duration
	// CacheBytes, when positive, enables the content-addressed result
	// cache (internal/resultcache) with that byte budget: identical
	// /v1/align requests are answered from the cache without taking an
	// admission slot, and concurrent identical misses collapse onto one
	// computation. 0 disables caching (the default — the cache changes
	// observable shedding behavior, so operators opt in).
	CacheBytes int64
	// CacheMinCost is the admission-by-cost floor: only results whose
	// execution plan estimated at least this duration are cached, so the
	// budget is spent on the entries that save real compute. 0 caches
	// every successful exact result.
	CacheMinCost time.Duration
	// CacheNearDupIdentity is the k-mer identity threshold for the
	// near-duplicate prescreen: a miss whose triple matches a cached one
	// at or above this estimated identity is served by a cheap bounded
	// re-align seeded with the cached score (verified — a failed seed
	// falls through to the full plan). Zero means the 0.90 default when
	// the cache is enabled; values outside (0, 1) disable the prescreen.
	CacheNearDupIdentity float64
}

// withDefaults resolves zero fields to the documented defaults.
func (c Config) withDefaults() Config {
	c.Workers = wavefront.Workers(c.Workers)
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = c.Workers
	}
	if c.CoalesceMax <= 0 {
		c.CoalesceMax = 16
	}
	if c.CoalesceCells <= 0 {
		c.CoalesceCells = 1 << 24
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxSequenceLen <= 0 {
		c.MaxSequenceLen = 4096
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	if c.MaxMsaSequences <= 0 {
		c.MaxMsaSequences = 16
	}
	if c.MaxMsaSequences > repro.MaxMSASequences {
		c.MaxMsaSequences = repro.MaxMSASequences
	}
	if c.CacheBytes > 0 && c.CacheNearDupIdentity == 0 {
		c.CacheNearDupIdentity = 0.90
	}
	return c
}

// Server is the alignd HTTP serving layer. Create with New, mount
// Handler() on an http.Server, and call BeginDrain/Close on shutdown.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	gate     *gate
	coal     *coalescer
	stats    *stats
	pressure *pressureGuard // nil when MemSoftLimitBytes is unset
	// cache is the content-addressed result cache (nil when CacheBytes is
	// unset); flight collapses concurrent identical misses onto one
	// computation.
	cache  *resultcache.Cache
	flight resultcache.Group[cacheFill]

	draining atomic.Bool
	// base outlives individual requests: coalesced batches run under it so
	// one impatient client cannot cancel its batch-mates, and it stays open
	// through drain so in-flight work completes. Close cancels it.
	base     context.Context
	stopBase context.CancelFunc
	started  time.Time
}

// New builds a Server, prewarming the shared worker pool to cfg.Workers.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	wavefront.Prewarm(cfg.Workers)
	base, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		gate:     newGate(cfg.QueueDepth, cfg.MaxInFlight),
		stats:    newStats(),
		pressure: newPressureGuard(cfg.MemSoftLimitBytes, cfg.MemDegradeFraction, cfg.MemSampleInterval),
		cache:    resultcache.New(cfg.CacheBytes),
		base:     base,
		stopBase: stop,
		started:  time.Now(),
	}
	s.coal = newCoalescer(s)
	s.mux.HandleFunc("POST /v1/align", s.handleAlign)
	s.mux.HandleFunc("POST /v1/align/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/plan", s.handlePlan)
	s.mux.HandleFunc("POST /v1/msa", s.handleMsa)
	s.mux.HandleFunc("POST /v1/msa/plan", s.handleMsaPlan)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the root handler for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain flips /readyz to 503 and sheds new alignment requests with
// 503 while in-flight ones complete. It does not wait: callers drain the
// HTTP layer (http.Server.Shutdown) and then Close the server.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close flushes the coalescer, waits for its outstanding batches, and
// cancels the server's base context. Call after the HTTP layer has
// drained; in-flight handlers still waiting on coalesced results receive
// them before Close returns.
func (s *Server) Close() {
	s.draining.Store(true)
	s.coal.close()
	s.pressure.close()
	s.stopBase()
}

// Statsz is the /statsz document: queue and pool gauges plus cumulative
// request counters and ring-buffer latency quantiles.
type Statsz struct {
	UptimeS  float64 `json:"uptime_s"`
	Draining bool    `json:"draining"`

	// QueueDepth is admitted-but-not-running requests; InFlight is running
	// submissions. QueueDepth+InFlight never exceeds the configured
	// QueueDepth bound.
	QueueDepth int64 `json:"queue_depth"`
	InFlight   int64 `json:"in_flight"`

	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Failed    int64 `json:"failed"`
	Degraded  int64 `json:"degraded"`

	CoalescedBatches  int64 `json:"coalesced_batches"`
	CoalescedRequests int64 `json:"coalesced_requests"`

	// Result-cache counters (all zero while CacheBytes is unset). Hits
	// are requests answered from the cache without touching admission;
	// Misses count cache lookups that missed (every member of a collapsed
	// flight missed individually); Fills count leader computations — the
	// kernel runs actually executed on the cached path; Collapsed counts
	// requests that piggybacked on another request's in-flight
	// computation; NearDupPatched counts misses served by a verified
	// bounded re-align seeded from a near-duplicate's cached score.
	CacheHits           int64 `json:"cache_hits"`
	CacheMisses         int64 `json:"cache_misses"`
	CacheFills          int64 `json:"cache_fills"`
	CacheCollapsed      int64 `json:"cache_collapsed"`
	CacheNearDupPatched int64 `json:"cache_near_dup_patched"`
	CacheEvictions      int64 `json:"cache_evictions"`
	CacheCorruptDropped int64 `json:"cache_corrupt_dropped"`
	CacheBytes          int64 `json:"cache_bytes"`
	CacheEntries        int64 `json:"cache_entries"`

	// EstBytesInFlight sums the planner-estimated lattice bytes of the
	// alignments currently executing — the budget-pressure gauge behind
	// MaxLatticeBytes sizing. PlannedDowngrades counts individual
	// downgrade steps the planner recorded across all served requests.
	EstBytesInFlight  int64 `json:"est_bytes_in_flight"`
	PlannedDowngrades int64 `json:"planned_downgrades"`
	// PlannedInt16 counts served plans whose lattice cell width was
	// negotiated down to 16 bits; PlannedPacked counts plans that selected
	// a lane-packed kernel. Together they show how often the fast paths
	// actually serve traffic.
	PlannedInt16  int64 `json:"planned_int16"`
	PlannedPacked int64 `json:"planned_packed"`
	// PlannedBounded counts served plans that selected a Carrillo–Lipman
	// bounded-search kernel (bounded or astar); PrunedCellsSkipped sums the
	// lattice cells those kernels (and the dense pruned ones) never
	// evaluated — the work the bound saved across all served traffic.
	PlannedBounded     int64 `json:"planned_bounded"`
	PrunedCellsSkipped int64 `json:"pruned_cells_skipped"`

	// Progressive-MSA counters. MsaRequests counts /v1/msa requests
	// admitted to execution; MsaCompleted counts the ones answered 200;
	// MsaSequences sums their family sizes; MsaMerges counts the
	// progressive merges those runs executed; MsaBatchedMerges counts the
	// merges that fanned through a shared batch (LPT-scheduled) submission
	// rather than running serially.
	MsaRequests      int64 `json:"msa_requests"`
	MsaCompleted     int64 `json:"msa_completed"`
	MsaSequences     int64 `json:"msa_sequences"`
	MsaMerges        int64 `json:"msa_merges"`
	MsaBatchedMerges int64 `json:"msa_batched_merges"`

	// Robustness counters. PanicsContained counts panics the serving and
	// scheduling layers recovered instead of crashing (contained kernel
	// panics and flush panics); WatchdogStalls counts parallel runs the
	// wavefront watchdog cancelled; RetriesObserved counts requests that
	// arrived bearing an X-Retry-Attempt header (a client retrying);
	// MemPressureDegraded counts admissions routed through the planner's
	// downgrade ladder by the memory-pressure guard; FaultsInjected sums
	// fired fault-point hits (zero outside chaos runs).
	PanicsContained     int64 `json:"panics_contained"`
	WatchdogStalls      int64 `json:"watchdog_stalls"`
	RetriesObserved     int64 `json:"retries_observed"`
	MemPressureDegraded int64 `json:"mem_pressure_degraded"`
	FaultsInjected      int64 `json:"faults_injected"`

	LatencyMS struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
	} `json:"latency_ms"`

	Pool struct {
		Workers  int `json:"workers"`
		Capacity int `json:"capacity"`
	} `json:"pool"`
}

// snapshot assembles the current Statsz document.
func (s *Server) snapshot() Statsz {
	var st Statsz
	st.UptimeS = time.Since(s.started).Seconds()
	st.Draining = s.draining.Load()
	admitted, inFlight := s.gate.loads()
	st.QueueDepth = admitted - inFlight
	st.InFlight = inFlight
	st.Completed = s.stats.completed.Load()
	st.Shed = s.stats.shed.Load()
	st.Failed = s.stats.failed.Load()
	st.Degraded = s.stats.degraded.Load()
	st.CoalescedBatches = s.stats.coalescedBatches.Load()
	st.CoalescedRequests = s.stats.coalescedRequests.Load()
	cs := s.cache.Stats()
	st.CacheHits = cs.Hits
	st.CacheMisses = cs.Misses
	st.CacheEvictions = cs.Evictions
	st.CacheCorruptDropped = cs.CorruptDropped
	st.CacheBytes = cs.Bytes
	st.CacheEntries = cs.Entries
	st.CacheFills = s.stats.cacheFills.Load()
	st.CacheCollapsed = s.stats.cacheCollapsed.Load()
	st.CacheNearDupPatched = s.stats.cacheNearDup.Load()
	st.EstBytesInFlight = s.stats.estBytesInFlight.Load()
	st.PlannedDowngrades = s.stats.plannedDowngrades.Load()
	st.PlannedInt16 = s.stats.plannedInt16.Load()
	st.PlannedPacked = s.stats.plannedPacked.Load()
	st.PlannedBounded = s.stats.plannedBounded.Load()
	st.PrunedCellsSkipped = s.stats.prunedCellsSkipped.Load()
	st.MsaRequests = s.stats.msaRequests.Load()
	st.MsaCompleted = s.stats.msaCompleted.Load()
	st.MsaSequences = s.stats.msaSequences.Load()
	st.MsaMerges = s.stats.msaMerges.Load()
	st.MsaBatchedMerges = s.stats.msaBatchedMerges.Load()
	st.PanicsContained = s.stats.panicsContained.Load()
	st.RetriesObserved = s.stats.retriesObserved.Load()
	st.MemPressureDegraded = s.stats.memPressureDegraded.Load()
	for _, name := range faultpoint.Names() {
		_, fired := faultpoint.Stats(name)
		st.FaultsInjected += fired
	}
	p50, p90, p99 := s.stats.latency.quantiles()
	st.LatencyMS.P50 = durMS(p50)
	st.LatencyMS.P90 = durMS(p90)
	st.LatencyMS.P99 = durMS(p99)
	ws := wavefront.Stats()
	st.WatchdogStalls = ws.Stalls
	st.Pool.Workers = ws.PoolWorkers
	st.Pool.Capacity = ws.PoolCapacity
	return st
}

// durMS converts a duration to fractional milliseconds.
func durMS(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// resolveOptions maps wire-level knobs onto repro.Options under the
// server's caps: workers are clamped to the shared pool size, the deadline
// is defaulted and capped, and fallback defaults to on — a serving layer
// prefers a degraded answer over a timeout error unless the client opts
// out.
func (s *Server) resolveOptions(req *AlignRequest) (repro.Options, error) {
	algo, err := repro.ParseAlgorithm(req.Algorithm)
	if err != nil {
		return repro.Options{}, &badRequestError{err.Error()}
	}
	opt := repro.Options{Algorithm: algo, Workers: s.cfg.Workers, Fallback: true}
	if req.Workers > 0 && req.Workers < s.cfg.Workers {
		opt.Workers = req.Workers
	}
	if req.Scheme != "" {
		sch, ok := repro.SchemeByName(req.Scheme)
		if !ok {
			return repro.Options{}, badRequestf("unknown scheme %q", req.Scheme)
		}
		opt.Scheme = sch
	}
	if req.MaxBytes > 0 {
		opt.MaxBytes = req.MaxBytes
	}
	if req.MaxMemoryBytes > 0 {
		opt.MaxMemoryBytes = req.MaxMemoryBytes
	}
	opt.Deadline = s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		opt.Deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if opt.Deadline > s.cfg.MaxDeadline {
		opt.Deadline = s.cfg.MaxDeadline
	}
	if req.Fallback != nil {
		opt.Fallback = *req.Fallback
	}
	return opt, nil
}

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	repro "repro"
)

// msaFamilyJSON returns a JSON array of n related DNA residue strings.
func msaFamilyJSON(t *testing.T, seed int64, n, length int) ([]*repro.Sequence, string) {
	t.Helper()
	g := repro.NewGenerator(repro.DNA, seed)
	fam := g.RelatedFamily(n, length, repro.MutationModel{
		SubstitutionRate: 0.15, InsertionRate: 0.04, DeletionRate: 0.04,
	})
	strs := make([]string, len(fam))
	for i, s := range fam {
		strs[i] = s.String()
	}
	b, err := json.Marshal(strs)
	if err != nil {
		t.Fatal(err)
	}
	return fam, string(b)
}

func TestServeMsaInline(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	fam, seqsJSON := msaFamilyJSON(t, 11, 6, 35)
	var out MsaResponse
	resp := postJSON(t, ts, "/v1/msa", fmt.Sprintf(`{"sequences":%s}`, seqsJSON), &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if out.NumSequences != 6 || len(out.Rows) != 6 {
		t.Fatalf("got %d sequences, %d rows", out.NumSequences, len(out.Rows))
	}
	for i, row := range out.Rows {
		if len(row) != out.Columns {
			t.Errorf("row %d has %d chars, columns = %d", i, len(row), out.Columns)
		}
		if strings.Replace(row, "-", "", -1) != fam[i].String() {
			t.Errorf("row %d does not degap to input %d", i, i)
		}
	}
	if out.OptimalityGap < 0 {
		t.Errorf("score %d beats upper bound %d", out.Score, out.UpperBound)
	}
	if out.BatchedMerges < 2 {
		t.Errorf("BatchedMerges = %d, want >= 2 for a 6-sequence family", out.BatchedMerges)
	}
	st := s.snapshot()
	if st.MsaRequests != 1 || st.MsaCompleted != 1 {
		t.Errorf("msa_requests=%d msa_completed=%d, want 1/1", st.MsaRequests, st.MsaCompleted)
	}
	if st.MsaSequences != 6 {
		t.Errorf("msa_sequences = %d, want 6", st.MsaSequences)
	}
	if st.MsaMerges == 0 || st.MsaBatchedMerges != int64(out.BatchedMerges) {
		t.Errorf("msa_merges=%d msa_batched_merges=%d (response %d)",
			st.MsaMerges, st.MsaBatchedMerges, out.BatchedMerges)
	}
}

func TestServeMsaFASTA(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	fam, _ := msaFamilyJSON(t, 21, 4, 30)
	var fasta strings.Builder
	for _, s := range fam {
		fmt.Fprintf(&fasta, ">%s\n%s\n", s.Name(), s.String())
	}
	body, _ := json.Marshal(map[string]any{"fasta": fasta.String(), "explain": true})
	var out MsaResponse
	resp := postJSON(t, ts, "/v1/msa", string(body), &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if len(out.Names) != 4 || out.Names[0] != fam[0].Name() {
		t.Fatalf("names = %v", out.Names)
	}
	if out.GuideTree == "" || len(out.Merges) == 0 {
		t.Errorf("explain response missing guide tree (%q) or merges (%d)", out.GuideTree, len(out.Merges))
	}
}

// TestServeMsaTripleMatchesAlign pins the N=3 contract over the wire: a
// three-sequence /v1/msa answer is bit-identical to /v1/align on the same
// residues.
func TestServeMsaTripleMatchesAlign(t *testing.T) {
	_, ts := newTestServer(t, Config{CoalesceTick: -1})
	a, b, c := testTriple(t, 31, 40)
	var al AlignResponse
	if resp := postJSON(t, ts, "/v1/align", fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, a, b, c), &al); resp.StatusCode != 200 {
		t.Fatalf("align status %d", resp.StatusCode)
	}
	var ms MsaResponse
	if resp := postJSON(t, ts, "/v1/msa", fmt.Sprintf(`{"sequences":[%q,%q,%q]}`, a, b, c), &ms); resp.StatusCode != 200 {
		t.Fatalf("msa status %d", resp.StatusCode)
	}
	if ms.Score != al.Score {
		t.Fatalf("msa score %d, align score %d", ms.Score, al.Score)
	}
	for i := range al.Rows {
		if ms.Rows[i] != al.Rows[i] {
			t.Fatalf("row %d differs:\nmsa   %s\nalign %s", i, ms.Rows[i], al.Rows[i])
		}
	}
}

func TestServeMsaRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxMsaSequences: 4, MaxSequenceLen: 50})
	cases := []struct {
		name, body string
	}{
		{"empty", `{}`},
		{"single", `{"sequences":["ACGT"]}`},
		{"both forms", `{"sequences":["ACGT","ACGA"],"fasta":">a\nACGT\n"}`},
		{"bad residue", `{"sequences":["ACGT","ACGZ"]}`},
		{"bad alphabet", `{"sequences":["ACGT","ACGA"],"alphabet":"klingon"}`},
		{"name mismatch", `{"sequences":["ACGT","ACGA"],"names":["x"]}`},
		{"too many", `{"sequences":["ACGT","ACGA","ACGC","ACGG","AACG"]}`},
		{"too long", fmt.Sprintf(`{"sequences":[%q,%q]}`, strings.Repeat("A", 51), "ACGT")},
	}
	for _, tc := range cases {
		var out map[string]any
		resp := postJSON(t, ts, "/v1/msa", tc.body, &out)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%v)", tc.name, resp.StatusCode, out)
		}
	}
}

func TestServeMsaLatticeCap413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxLatticeBytes: 1024})
	_, seqsJSON := msaFamilyJSON(t, 41, 5, 60)
	var out map[string]any
	resp := postJSON(t, ts, "/v1/msa", fmt.Sprintf(`{"sequences":%s}`, seqsJSON), &out)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%v)", resp.StatusCode, out)
	}
}

func TestServeMsaDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.BeginDrain()
	_, seqsJSON := msaFamilyJSON(t, 51, 4, 20)
	resp := postJSON(t, ts, "/v1/msa", fmt.Sprintf(`{"sequences":%s}`, seqsJSON), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 while draining", resp.StatusCode)
	}
}

func TestServeMsaPlan(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, seqsJSON := msaFamilyJSON(t, 61, 6, 40)
	var out repro.MSAPlan
	resp := postJSON(t, ts, "/v1/msa/plan", fmt.Sprintf(`{"sequences":%s}`, seqsJSON), &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if out.NumSequences != 6 || len(out.Merges) == 0 || out.PeakLevelBytes == 0 {
		t.Fatalf("plan = %+v", out)
	}
}

func TestServeMsaSerialKnob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, seqsJSON := msaFamilyJSON(t, 71, 6, 30)
	var fanned, serial MsaResponse
	if resp := postJSON(t, ts, "/v1/msa", fmt.Sprintf(`{"sequences":%s}`, seqsJSON), &fanned); resp.StatusCode != 200 {
		t.Fatalf("fanned status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts, "/v1/msa", fmt.Sprintf(`{"sequences":%s,"serial_merges":true}`, seqsJSON), &serial); resp.StatusCode != 200 {
		t.Fatalf("serial status %d", resp.StatusCode)
	}
	if serial.BatchedMerges != 0 {
		t.Errorf("serial run reported %d batched merges", serial.BatchedMerges)
	}
	if serial.Score != fanned.Score {
		t.Errorf("serial score %d != fanned score %d", serial.Score, fanned.Score)
	}
}

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDrainFlipsReadyzAndShedsWork(t *testing.T) {
	s, ts := newTestServer(t, Config{CoalesceTick: 0})
	s.BeginDrain()
	if resp := getJSON(t, ts, "/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", resp.StatusCode)
	}
	if resp := getJSON(t, ts, "/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200 (process is alive)", resp.StatusCode)
	}
	a, b, c := testTriple(t, 20, 20)
	body := fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, a, b, c)
	if resp := postJSON(t, ts, "/v1/align", body, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("align during drain = %d, want 503", resp.StatusCode)
	}
	if resp := postJSON(t, ts, "/v1/align/batch", `{"items":[`+body+`]}`, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("batch during drain = %d, want 503", resp.StatusCode)
	}
	var st Statsz
	getJSON(t, ts, "/statsz", &st)
	if !st.Draining {
		t.Errorf("statsz draining = false during drain")
	}
}

// TestDrainInFlightCompletes exercises the drain contract under -race:
// requests already admitted finish with 200 even though BeginDrain flips
// readiness mid-flight.
func TestDrainInFlightCompletes(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, CoalesceTick: 0})
	a, b, c := testTriple(t, 21, 150)
	body := fmt.Sprintf(`{"a":%q,"b":%q,"c":%q,"algorithm":"full"}`, a, b, c)

	started := make(chan struct{})
	var wg sync.WaitGroup
	var status int
	var out AlignResponse
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		resp, err := http.Post(ts.URL+"/v1/align", "application/json", strings.NewReader(body))
		if err != nil {
			t.Errorf("in-flight request: %v", err)
			return
		}
		defer resp.Body.Close()
		status = resp.StatusCode
		json.NewDecoder(resp.Body).Decode(&out) //nolint:errcheck
	}()
	<-started
	time.Sleep(5 * time.Millisecond) // let the request pass admission
	s.BeginDrain()
	wg.Wait()
	if status != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d, want 200", status)
	}
	if want := directScore(t, a, b, c); out.Score != want {
		t.Errorf("score = %d, want %d", out.Score, want)
	}
}

// TestDrainCoalescedFlush pins Close's guarantee for the coalesced path:
// requests buffered in the coalescer when drain begins are flushed and
// answered, not dropped.
func TestDrainCoalescedFlush(t *testing.T) {
	// A one-minute tick never fires during the test; only Close's flush
	// can answer the buffered requests.
	s := New(Config{CoalesceTick: time.Minute, Workers: 2})
	ts := newFrontend(t, s)
	a, b, c := testTriple(t, 22, 25)
	body := fmt.Sprintf(`{"a":%q,"b":%q,"c":%q}`, a, b, c)

	const reqs = 3
	codes := make([]int, reqs)
	scores := make([]int32, reqs)
	var wg sync.WaitGroup
	for i := 0; i < reqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/align", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("req %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			var out AlignResponse
			json.NewDecoder(resp.Body).Decode(&out) //nolint:errcheck
			scores[i] = out.Score
		}(i)
	}
	// Wait until all requests are parked in the coalescer buffer.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.coal.mu.Lock()
		n := len(s.coal.buf)
		s.coal.mu.Unlock()
		if n == reqs {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests reached the coalescer buffer", n, reqs)
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	wg.Wait()
	want := directScore(t, a, b, c)
	for i := 0; i < reqs; i++ {
		if codes[i] != http.StatusOK {
			t.Errorf("req %d: status %d, want 200", i, codes[i])
		}
		if scores[i] != want {
			t.Errorf("req %d: score %d, want %d", i, scores[i], want)
		}
	}
}

// newFrontend wires an httptest server for tests that manage s.Close
// themselves.
func newFrontend(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

package core

import "testing"

func TestAdaptiveTileDimsLongK(t *testing.T) {
	ti, tj, tk := AdaptiveTileDims(512, 512, 512, 4, 4)
	if tk != tileMaxK {
		t.Fatalf("tk = %d, want the long-k cap %d", tk, tileMaxK)
	}
	if tk <= ti || tk <= tj {
		t.Fatalf("tile %dx%dx%d is not long in k", ti, tj, tk)
	}
	if ti < tileMinEdge || ti > tileMaxEdge || tj < tileMinEdge || tj > tileMaxEdge {
		t.Fatalf("cross-section %dx%d outside [%d, %d]", ti, tj, tileMinEdge, tileMaxEdge)
	}
}

func TestAdaptiveTileDimsShortK(t *testing.T) {
	_, _, tk := AdaptiveTileDims(300, 300, 20, 2, 4)
	if tk != 20 {
		t.Fatalf("tk = %d, want the full short axis 20", tk)
	}
}

func TestAdaptiveTileDimsAffineSmaller(t *testing.T) {
	li, lj, _ := AdaptiveTileDims(512, 512, 512, 1, 4)
	ai, aj, _ := AdaptiveTileDims(512, 512, 512, 1, 28)
	if ai*aj > li*lj {
		t.Fatalf("affine cross-section %dx%d exceeds linear %dx%d despite 7x cell cost",
			ai, aj, li, lj)
	}
}

func TestAdaptiveTileDimsFeedsWorkers(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8, 16} {
		ti, tj, _ := AdaptiveTileDims(400, 400, 400, w, 4)
		lanes := blocksAlong(400, ti) * blocksAlong(400, tj)
		if lanes < 2*w && (ti > tileMinEdge || tj > tileMinEdge) {
			t.Fatalf("workers=%d: %d i×j lanes from %dx%d tiles, want >= %d", w, lanes, ti, tj, 2*w)
		}
	}
}

func TestAdaptiveTileDimsDegenerate(t *testing.T) {
	for _, c := range [][3]int{{1, 1, 1}, {0, 5, 5}, {5, 0, 5}, {5, 5, 0}, {2, 3, 1}} {
		ti, tj, tk := AdaptiveTileDims(c[0], c[1], c[2], 4, 4)
		if ti < 1 || tj < 1 || tk < 1 {
			t.Fatalf("dims %v: non-positive tile %dx%dx%d", c, ti, tj, tk)
		}
	}
	// Bad inputs must not panic and must still yield usable tiles.
	ti, tj, tk := AdaptiveTileDims(100, 100, 100, 0, 0)
	if ti < 1 || tj < 1 || tk < 1 {
		t.Fatalf("defaulted inputs produced tile %dx%dx%d", ti, tj, tk)
	}
}

func TestOptionsTileDimsCubicOverride(t *testing.T) {
	o := Options{BlockSize: 24}
	ti, tj, tk := o.tileDims(500, 500, 500, 4)
	if ti != 24 || tj != 24 || tk != 24 {
		t.Fatalf("BlockSize override gave %dx%dx%d, want cubic 24", ti, tj, tk)
	}
	tj, tk = o.tile2D(500, 500, 4)
	if tj != 24 || tk != 24 {
		t.Fatalf("BlockSize 2D override gave %dx%d, want 24x24", tj, tk)
	}
}

func TestOptionsTileDimsAdaptiveDefault(t *testing.T) {
	o := Options{Workers: 4}
	ti, tj, tk := o.tileDims(512, 512, 512, 4)
	ai, aj, ak := AdaptiveTileDims(512, 512, 512, 4, 4)
	if ti != ai || tj != aj || tk != ak {
		t.Fatalf("tileDims = %dx%dx%d, want adaptive %dx%dx%d", ti, tj, tk, ai, aj, ak)
	}
}

package core

import (
	"context"
	"fmt"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// AlignBanded computes a three-way alignment restricted to a tube of the
// given width around the scaled main diagonal: cell (i, j, k) is evaluated
// only when both j and k are within width of i scaled to their axes. The
// result is a valid alignment whose score never exceeds the optimum and
// equals it whenever an optimal path stays inside the tube — the usual
// regime for highly similar sequences, where the tube shrinks the O(n³)
// work to O(n·width²). Width must be at least 1 (the tube always contains
// the scaled-diagonal path, so a result always exists).
func AlignBanded(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options, width int) (*alignment.Alignment, error) {
	if width < 1 {
		return nil, fmt.Errorf("core: band width %d must be at least 1", width)
	}
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return nil, err
	}
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	if FullMatrixBytes(tr) > opt.maxBytes() {
		return nil, fmt.Errorf("%w: need %d bytes, cap %d", ErrTooLarge, FullMatrixBytes(tr), opt.maxBytes())
	}
	n, m, p := len(ca), len(cb), len(cc)
	inBand := bandPredicate(n, m, p, width)

	t := mat.NewTensor3(n+1, m+1, p+1)
	ge2 := 2 * sch.GapExtend()
	for i := 0; i <= n; i++ {
		if err := checkCtx(ctx); err != nil {
			return nil, err
		}
		var ai int8
		if i > 0 {
			ai = ca[i-1]
		}
		for j := 0; j <= m; j++ {
			var bj int8
			var sAB mat.Score
			if j > 0 {
				bj = cb[j-1]
				if i > 0 {
					sAB = sch.Sub(ai, bj)
				}
			}
			cur := t.Lane(i, j)
			var lane11, lane10, lane01 []mat.Score
			if i > 0 && j > 0 {
				lane11 = t.Lane(i-1, j-1)
			}
			if i > 0 {
				lane10 = t.Lane(i-1, j)
			}
			if j > 0 {
				lane01 = t.Lane(i, j-1)
			}
			for k := 0; k <= p; k++ {
				if i == 0 && j == 0 && k == 0 {
					cur[0] = 0
					continue
				}
				if !inBand(i, j, k) {
					cur[k] = mat.NegInf
					continue
				}
				best := mat.NegInf
				if k > 0 {
					ck := cc[k-1]
					if lane11 != nil {
						if v := lane11[k-1] + sAB + sch.Sub(ai, ck) + sch.Sub(bj, ck); v > best {
							best = v
						}
					}
					if lane10 != nil {
						if v := lane10[k-1] + sch.Sub(ai, ck) + ge2; v > best {
							best = v
						}
					}
					if lane01 != nil {
						if v := lane01[k-1] + sch.Sub(bj, ck) + ge2; v > best {
							best = v
						}
					}
					if v := cur[k-1] + ge2; v > best {
						best = v
					}
				}
				if lane11 != nil {
					if v := lane11[k] + sAB + ge2; v > best {
						best = v
					}
				}
				if lane10 != nil {
					if v := lane10[k] + ge2; v > best {
						best = v
					}
				}
				if lane01 != nil {
					if v := lane01[k] + ge2; v > best {
						best = v
					}
				}
				cur[k] = best
			}
		}
	}
	moves, err := tracebackTensor(t, ca, cb, cc, sch)
	if err != nil {
		return nil, fmt.Errorf("core: banded traceback failed: %w", err)
	}
	return &alignment.Alignment{Triple: tr, Moves: moves, Score: t.At(n, m, p)}, nil
}

// bandPredicate returns the tube membership test. Each coordinate is
// compared against its expected value at the cell's total progress
// d = i+j+k along the straight line from (0,0,0) to (n,m,p), so unequal
// lengths get a correctly slanted tube containing both corners. The
// greedy largest-deficit path along that line deviates by at most 1 per
// coordinate (the Bresenham argument), so every width ≥ 1 tube is
// connected.
func bandPredicate(n, m, p, width int) func(i, j, k int) bool {
	total := n + m + p
	if total == 0 {
		return func(int, int, int) bool { return true }
	}
	expect := func(d, to int) int {
		return (2*d*to + total) / (2 * total) // round(d*to/total)
	}
	abs := func(x int) int {
		if x < 0 {
			return -x
		}
		return x
	}
	return func(i, j, k int) bool {
		d := i + j + k
		return abs(i-expect(d, n)) <= width &&
			abs(j-expect(d, m)) <= width &&
			abs(k-expect(d, p)) <= width
	}
}

// BandedCells counts the lattice cells inside the tube; the work the
// banded aligner performs relative to (n+1)(m+1)(p+1).
func BandedCells(tr seq.Triple, width int) int64 {
	n, m, p := tr.A.Len(), tr.B.Len(), tr.C.Len()
	inBand := bandPredicate(n, m, p, width)
	var count int64
	for i := 0; i <= n; i++ {
		for j := 0; j <= m; j++ {
			for k := 0; k <= p; k++ {
				if inBand(i, j, k) {
					count++
				}
			}
		}
	}
	return count
}

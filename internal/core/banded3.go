package core

import (
	"context"
	"fmt"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// AlignBanded computes a three-way alignment restricted to a tube of the
// given width around the scaled main diagonal: cell (i, j, k) is evaluated
// only when both j and k are within width of i scaled to their axes. The
// result is a valid alignment whose score never exceeds the optimum and
// equals it whenever an optimal path stays inside the tube — the usual
// regime for highly similar sequences, where the tube shrinks the O(n³)
// work to O(n·width²). Width must be at least 1 (the tube always contains
// the scaled-diagonal path, so a result always exists).
func AlignBanded(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options, width int) (*alignment.Alignment, error) {
	if width < 1 {
		return nil, fmt.Errorf("core: band width %d must be at least 1", width)
	}
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return nil, err
	}
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	if FullMatrixBytes(tr) > opt.maxBytes() {
		return nil, fmt.Errorf("%w: need %d bytes, cap %d", ErrTooLarge, FullMatrixBytes(tr), opt.maxBytes())
	}
	n, m, p := len(ca), len(cb), len(cc)
	inBand := bandPredicate(n, m, p, width)

	st := newScoreTables(ca, cb, cc, sch)
	defer st.release()
	t := mat.GetTensor3(n+1, m+1, p+1)
	defer mat.PutTensor3(t)
	ge2 := 2 * sch.GapExtend()
	bandedBoundaryI0(t, st, inBand, ge2, m, p)
	for i := 1; i <= n; i++ {
		if err := checkCtx(ctx); err != nil {
			return nil, err
		}
		abRow := st.ab.Row(i)
		acRow := st.ac.Row(i)
		bandedBoundaryJ0(t, inBand, ge2, i, acRow, p)
		for j := 1; j <= m; j++ {
			sAB := abRow[j]
			ac := acRow[: p+1 : p+1]
			bcRow := st.bc.Row(j)[: p+1 : p+1]
			cur := t.Lane(i, j)[: p+1 : p+1]
			lane11 := t.Lane(i-1, j-1)[: p+1 : p+1]
			lane10 := t.Lane(i-1, j)[: p+1 : p+1]
			lane01 := t.Lane(i, j-1)[: p+1 : p+1]
			if !inBand(i, j, 0) {
				cur[0] = mat.NegInf
			} else {
				cur[0] = max(mat.NegInf, lane11[0]+sAB+ge2, lane10[0]+ge2, lane01[0]+ge2)
			}
			for k := 1; k <= p; k++ {
				if !inBand(i, j, k) {
					cur[k] = mat.NegInf
					continue
				}
				sac, sbc := ac[k], bcRow[k]
				cur[k] = max(
					mat.NegInf,
					lane11[k-1]+sAB+sac+sbc, // XXX
					lane10[k-1]+sac+ge2,     // XGX
					lane01[k-1]+sbc+ge2,     // GXX
					cur[k-1]+ge2,            // GGX
					lane11[k]+sAB+ge2,       // XXG
					lane10[k]+ge2,           // XGG
					lane01[k]+ge2,           // GXG
				)
			}
		}
	}
	moves, err := tracebackTensor(t, ca, cb, cc, sch)
	if err != nil {
		return nil, fmt.Errorf("core: banded traceback failed: %w", err)
	}
	return &alignment.Alignment{Triple: tr, Moves: moves, Score: t.At(n, m, p)}, nil
}

// bandedBoundaryI0 fills the i == 0 plane of the banded lattice.
func bandedBoundaryI0(t *mat.Tensor3, st *scoreTables, inBand func(i, j, k int) bool, ge2 mat.Score, m, p int) {
	cur := t.Lane(0, 0)
	cur[0] = 0
	for k := 1; k <= p; k++ {
		if !inBand(0, 0, k) {
			cur[k] = mat.NegInf
			continue
		}
		cur[k] = max(mat.NegInf, cur[k-1]+ge2) // GGX
	}
	for j := 1; j <= m; j++ {
		prev := cur
		cur = t.Lane(0, j)
		bcRow := st.bc.Row(j)
		if !inBand(0, j, 0) {
			cur[0] = mat.NegInf
		} else {
			cur[0] = max(mat.NegInf, prev[0]+ge2) // GXG
		}
		for k := 1; k <= p; k++ {
			if !inBand(0, j, k) {
				cur[k] = mat.NegInf
				continue
			}
			cur[k] = max(mat.NegInf, prev[k-1]+bcRow[k]+ge2, cur[k-1]+ge2, prev[k]+ge2)
		}
	}
}

// bandedBoundaryJ0 fills the j == 0 row of banded plane i ≥ 1.
func bandedBoundaryJ0(t *mat.Tensor3, inBand func(i, j, k int) bool, ge2 mat.Score, i int, acRow []mat.Score, p int) {
	cur := t.Lane(i, 0)
	prev := t.Lane(i-1, 0)
	if !inBand(i, 0, 0) {
		cur[0] = mat.NegInf
	} else {
		cur[0] = max(mat.NegInf, prev[0]+ge2) // XGG
	}
	for k := 1; k <= p; k++ {
		if !inBand(i, 0, k) {
			cur[k] = mat.NegInf
			continue
		}
		cur[k] = max(mat.NegInf, prev[k-1]+acRow[k]+ge2, prev[k]+ge2, cur[k-1]+ge2)
	}
}

// bandPredicate returns the tube membership test. Each coordinate is
// compared against its expected value at the cell's total progress
// d = i+j+k along the straight line from (0,0,0) to (n,m,p), so unequal
// lengths get a correctly slanted tube containing both corners. The
// greedy largest-deficit path along that line deviates by at most 1 per
// coordinate (the Bresenham argument), so every width ≥ 1 tube is
// connected.
func bandPredicate(n, m, p, width int) func(i, j, k int) bool {
	total := n + m + p
	if total == 0 {
		return func(int, int, int) bool { return true }
	}
	expect := func(d, to int) int {
		return (2*d*to + total) / (2 * total) // round(d*to/total)
	}
	abs := func(x int) int {
		if x < 0 {
			return -x
		}
		return x
	}
	return func(i, j, k int) bool {
		d := i + j + k
		return abs(i-expect(d, n)) <= width &&
			abs(j-expect(d, m)) <= width &&
			abs(k-expect(d, p)) <= width
	}
}

// BandedCells counts the lattice cells inside the tube; the work the
// banded aligner performs relative to (n+1)(m+1)(p+1).
func BandedCells(tr seq.Triple, width int) int64 {
	n, m, p := tr.A.Len(), tr.B.Len(), tr.C.Len()
	inBand := bandPredicate(n, m, p, width)
	var count int64
	for i := 0; i <= n; i++ {
		for j := 0; j <= m; j++ {
			for k := 0; k <= p; k++ {
				if inBand(i, j, k) {
					count++
				}
			}
		}
	}
	return count
}

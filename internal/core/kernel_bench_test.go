package core

import (
	"context"
	"testing"

	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/wavefront"
)

// Kernel micro-benchmarks: raw cell rates of the inner DP loops,
// independent of scheduling and traceback. The experiment-level
// benchmarks live in the repository root.

func benchCodes(n int) ([]int8, []int8, []int8) {
	g := seq.NewGenerator(seq.DNA, 4321)
	tr := g.RelatedTriple(n, seq.MutationModel{SubstitutionRate: 0.3})
	return tr.A.Codes(), tr.B.Codes(), tr.C.Codes()
}

func BenchmarkKernelFillRange(b *testing.B) {
	ca, cb, cc := benchCodes(64)
	sch := scoring.DNADefault()
	t := mat.NewTensor3(len(ca)+1, len(cb)+1, len(cc)+1)
	cells := int64(len(ca)+1) * int64(len(cb)+1) * int64(len(cc)+1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fillRange(t, ca, cb, cc, sch,
			wavefront.Span{Lo: 0, Hi: len(ca) + 1},
			wavefront.Span{Lo: 0, Hi: len(cb) + 1},
			wavefront.Span{Lo: 0, Hi: len(cc) + 1})
	}
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

func BenchmarkKernelPlaneSweep(b *testing.B) {
	ca, cb, cc := benchCodes(64)
	sch := scoring.DNADefault()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		planeSweep(context.Background(), ca, cb, cc, sch, 1, DefaultBlockSize)
	}
}

func BenchmarkKernelTraceback(b *testing.B) {
	ca, cb, cc := benchCodes(64)
	sch := scoring.DNADefault()
	t := mat.NewTensor3(len(ca)+1, len(cb)+1, len(cc)+1)
	fillRange(t, ca, cb, cc, sch,
		wavefront.Span{Lo: 0, Hi: len(ca) + 1},
		wavefront.Span{Lo: 0, Hi: len(cb) + 1},
		wavefront.Span{Lo: 0, Hi: len(cc) + 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tracebackTensor(t, ca, cb, cc, sch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelAffineFill(b *testing.B) {
	ca, cb, cc := benchCodes(32)
	sch, err := scoring.DNADefault().WithGaps(-4, -1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := affineDPMoves(context.Background(), ca, cb, cc, sch, 7, 0); err != nil {
			b.Fatal(err)
		}
	}
}

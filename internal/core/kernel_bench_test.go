package core

import (
	"context"
	"testing"

	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/wavefront"
)

// Kernel micro-benchmarks: raw cell rates of the inner DP loops,
// independent of scheduling and traceback. Benchmarks whose names contain
// "Interior" run against prebuilt tables and buffers and must not allocate;
// the CI bench-smoke job enforces 0 allocs/op on them. The experiment-level
// benchmarks live in the repository root.

func benchCodes(n int) ([]int8, []int8, []int8) {
	g := seq.NewGenerator(seq.DNA, 4321)
	tr := g.RelatedTriple(n, seq.MutationModel{SubstitutionRate: 0.3})
	return tr.A.Codes(), tr.B.Codes(), tr.C.Codes()
}

func fullSpans(ca, cb, cc []int8) (si, sj, sk wavefront.Span) {
	return wavefront.Span{Lo: 0, Hi: len(ca) + 1},
		wavefront.Span{Lo: 0, Hi: len(cb) + 1},
		wavefront.Span{Lo: 0, Hi: len(cc) + 1}
}

// BenchmarkKernelFillRange measures the full sequential fill path: score
// tables built per iteration, lattice from the arena, then the peeled
// kernel over the whole box.
func BenchmarkKernelFillRange(b *testing.B) {
	ca, cb, cc := benchCodes(64)
	sch := scoring.DNADefault()
	si, sj, sk := fullSpans(ca, cb, cc)
	cells := int64(len(ca)+1) * int64(len(cb)+1) * int64(len(cc)+1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := newScoreTables(ca, cb, cc, sch)
		t := mat.GetTensor3(len(ca)+1, len(cb)+1, len(cc)+1)
		fillRange(t, st, 2*sch.GapExtend(), si, sj, sk)
		mat.PutTensor3(t)
		st.release()
	}
	b.StopTimer() // exclude the metric bookkeeping from the alloc count
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkKernelFillRangeInterior measures only the cell-fill loop:
// tables and lattice are prebuilt, so the loop body must not allocate.
func BenchmarkKernelFillRangeInterior(b *testing.B) {
	ca, cb, cc := benchCodes(64)
	sch := scoring.DNADefault()
	st := newScoreTables(ca, cb, cc, sch)
	defer st.release()
	t := mat.GetTensor3(len(ca)+1, len(cb)+1, len(cc)+1)
	defer mat.PutTensor3(t)
	ge2 := 2 * sch.GapExtend()
	si, sj, sk := fullSpans(ca, cb, cc)
	cells := int64(len(ca)+1) * int64(len(cb)+1) * int64(len(cc)+1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fillRange(t, st, ge2, si, sj, sk)
	}
	b.StopTimer() // exclude the metric bookkeeping from the alloc count
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// benchInteriorOf is the shared body of the width- and packing-variant
// interior benchmarks: tables and lattice prebuilt at cell width T, the
// chosen fill kernel timed alone.
func benchInteriorOf[T mat.Cell](b *testing.B, packed bool) {
	ca, cb, cc := benchCodes(64)
	sch := scoring.DNADefault()
	st := newScoreTablesOf[T](ca, cb, cc, sch)
	defer st.release()
	t := mat.GetTensor3Of[T](len(ca)+1, len(cb)+1, len(cc)+1)
	defer mat.PutTensor3Of(t)
	ge2 := T(2 * sch.GapExtend())
	var lv laneVec
	if packed {
		initLaneVec(&lv, ca, cb, cc, sch, ge2)
	}
	si, sj, sk := fullSpans(ca, cb, cc)
	cells := int64(len(ca)+1) * int64(len(cb)+1) * int64(len(cc)+1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if packed {
			fillRangePacked(t, st, ge2, si, sj, sk, &lv)
		} else {
			fillRange(t, st, ge2, si, sj, sk)
		}
	}
	b.StopTimer() // exclude the metric bookkeeping from the alloc count
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkKernelFillRangePackedInterior measures the lane-packed interior
// at Score width against the same box as BenchmarkKernelFillRangeInterior.
func BenchmarkKernelFillRangePackedInterior(b *testing.B) {
	benchInteriorOf[mat.Score](b, true)
}

// BenchmarkKernelFillRangeInterior16 measures the scalar interior on an
// int16 lattice.
func BenchmarkKernelFillRangeInterior16(b *testing.B) {
	benchInteriorOf[int16](b, false)
}

// BenchmarkKernelFillRangePackedInterior16 measures the lane-packed
// interior on an int16 lattice — the planner's preferred sequential kernel
// when the score bound allows narrowing.
func BenchmarkKernelFillRangePackedInterior16(b *testing.B) {
	benchInteriorOf[int16](b, true)
}

// BenchmarkKernelPrunedInterior measures the admissibility-gated kernel
// with prebuilt bounds, tables, and lattice.
func BenchmarkKernelPrunedInterior(b *testing.B) {
	ca, cb, cc := benchCodes(64)
	sch := scoring.DNADefault()
	bc := newBoundCtx(ca, cb, cc, sch, mat.NegInf/4)
	defer bc.release()
	st := newScoreTables(ca, cb, cc, sch)
	defer st.release()
	t := mat.GetTensor3(len(ca)+1, len(cb)+1, len(cc)+1)
	defer mat.PutTensor3(t)
	ge2 := 2 * sch.GapExtend()
	si, sj, sk := fullSpans(ca, cb, cc)
	cells := int64(len(ca)+1) * int64(len(cb)+1) * int64(len(cc)+1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fillRangePruned(t, st, bc, ge2, si, sj, sk)
	}
	b.StopTimer() // exclude the metric bookkeeping from the alloc count
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkKernelAffineInterior measures the 7-state transition kernel
// with prebuilt tables and lattices. The fill is idempotent, so the seeded
// lattices are reused across iterations.
func BenchmarkKernelAffineInterior(b *testing.B) {
	ca, cb, cc := benchCodes(32)
	sch, err := scoring.DNADefault().WithGaps(-4, -1)
	if err != nil {
		b.Fatal(err)
	}
	st := newScoreTables(ca, cb, cc, sch)
	defer st.release()
	open := newAffineOpenTable(sch)
	var d [7]*mat.Tensor3
	for s := 0; s < 7; s++ {
		d[s] = mat.GetTensor3(len(ca)+1, len(cb)+1, len(cc)+1)
		d[s].Fill(mat.NegInf)
		defer mat.PutTensor3(d[s])
	}
	d[6].Set(0, 0, 0, 0)
	si, sj, sk := fullSpans(ca, cb, cc)
	cells := int64(len(ca)+1) * int64(len(cb)+1) * int64(len(cc)+1) * 7
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fillRangeAffine(&d, st, ca, cb, cc, sch, &open, si, sj, sk)
	}
	b.StopTimer() // exclude the metric bookkeeping from the alloc count
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkKernelPlaneSweepInterior measures one packed plane fill with
// prebuilt planes, profile, and lane state — the steady-state inner work of
// the linear-space kernels. Covered by the CI zero-alloc gate.
func BenchmarkKernelPlaneSweepInterior(b *testing.B) {
	ca, cb, cc := benchCodes(64)
	sch := scoring.DNADefault()
	m, p := len(cb), len(cc)
	prev := mat.GetPlane(m+1, p+1)
	defer mat.PutPlane(prev)
	cur := mat.GetPlane(m+1, p+1)
	defer mat.PutPlane(cur)
	prof := newPairProfile(cc, sch)
	defer prof.release()
	var lv laneVec
	initLaneVec(&lv, ca, cb, cc, sch, 2*sch.GapExtend())
	sj := wavefront.Span{Lo: 0, Hi: m + 1}
	sk := wavefront.Span{Lo: 0, Hi: p + 1}
	fillPlaneRangePacked(prev, nil, 0, cb, sch, prof, sj, sk, &lv)
	cells := int64(m+1) * int64(p+1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fillPlaneRangePacked(cur, prev, ca[0], cb, sch, prof, sj, sk, &lv)
	}
	b.StopTimer() // exclude the metric bookkeeping from the alloc count
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

func BenchmarkKernelPlaneSweep(b *testing.B) {
	ca, cb, cc := benchCodes(64)
	sch := scoring.DNADefault()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		final, err := planeSweep(context.Background(), ca, cb, cc, sch, 1, DefaultBlockSize, DefaultBlockSize)
		if err != nil {
			b.Fatal(err)
		}
		mat.PutPlane(final)
	}
}

func BenchmarkKernelTraceback(b *testing.B) {
	ca, cb, cc := benchCodes(64)
	sch := scoring.DNADefault()
	st := newScoreTables(ca, cb, cc, sch)
	defer st.release()
	t := mat.GetTensor3(len(ca)+1, len(cb)+1, len(cc)+1)
	defer mat.PutTensor3(t)
	si, sj, sk := fullSpans(ca, cb, cc)
	fillRange(t, st, 2*sch.GapExtend(), si, sj, sk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tracebackTensor(t, ca, cb, cc, sch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelAffineFill(b *testing.B) {
	ca, cb, cc := benchCodes(32)
	sch, err := scoring.DNADefault().WithGaps(-4, -1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := affineDPMoves(context.Background(), ca, cb, cc, sch, 7, 0); err != nil {
			b.Fatal(err)
		}
	}
}

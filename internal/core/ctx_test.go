package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/alignment"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// TestKernelsPreCancelled verifies every exact kernel rejects an
// already-cancelled context before touching the lattice.
func TestKernelsPreCancelled(t *testing.T) {
	tr := dnaTriple(t, "ACGTACGT", "ACGACGT", "ACGTACG")
	affSch, err := scoring.DNADefault().WithGaps(-4, -1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	kernels := []struct {
		name string
		run  func() error
	}{
		{"full", func() error { _, err := AlignFull(ctx, tr, dnaSch, Options{}); return err }},
		{"parallel", func() error { _, err := AlignParallel(ctx, tr, dnaSch, Options{}); return err }},
		{"linear", func() error { _, err := AlignLinear(ctx, tr, dnaSch, Options{}); return err }},
		{"parallel-linear", func() error { _, err := AlignParallelLinear(ctx, tr, dnaSch, Options{}); return err }},
		{"diagonal", func() error { _, err := AlignDiagonal(ctx, tr, dnaSch, Options{}); return err }},
		{"pruned", func() error { _, _, err := AlignPruned(ctx, tr, dnaSch, Options{}, -1000); return err }},
		{"pruned-parallel", func() error { _, _, err := AlignPrunedParallel(ctx, tr, dnaSch, Options{}, -1000); return err }},
		{"bounded", func() error { _, _, err := AlignBounded(ctx, tr, dnaSch, Options{}, -1000); return err }},
		{"astar", func() error { _, _, err := AlignAStar(ctx, tr, dnaSch, Options{}, -1000); return err }},
		{"affine", func() error { _, err := AlignAffine(ctx, tr, affSch, Options{}); return err }},
		{"affine-linear", func() error { _, err := AlignAffineLinear(ctx, tr, affSch, Options{}); return err }},
		{"affine-parallel", func() error { _, err := AlignAffineParallel(ctx, tr, affSch, Options{}); return err }},
		{"score", func() error { _, err := Score(ctx, tr, dnaSch, Options{}); return err }},
	}
	for _, k := range kernels {
		err := k.run()
		if err == nil {
			t.Errorf("%s: pre-cancelled context accepted", k.name)
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want wrapped context.Canceled", k.name, err)
		}
	}
}

// TestKernelMidPlaneCancel cancels a sequential kernel after it has
// started: the per-plane poll must stop the fill and surface the error.
func TestKernelMidPlaneCancel(t *testing.T) {
	g := seq.NewGenerator(seq.DNA, 91)
	tr := g.RelatedTriple(80, seq.Uniform(0.1))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var aln *alignment.Alignment
	var err error
	go func() {
		defer close(done)
		aln, err = AlignFull(ctx, tr, dnaSch, Options{})
	}()
	cancel()
	<-done
	if err == nil {
		// The fill won the race — legal, but then the result must be valid.
		if vErr := aln.Validate(); vErr != nil {
			t.Fatal(vErr)
		}
		return
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

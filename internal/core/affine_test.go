package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/alignment"
	"repro/internal/scoring"
	"repro/internal/seq"
)

func TestOpenCountTable(t *testing.T) {
	// From "all consume" (q=7) every one-sided gap pair pays an open.
	cases := []struct {
		q, s alignment.Move
		want int8
	}{
		{7, 7, 0},                                 // XXX after XXX: no gaps at all
		{7, alignment.MoveXXG, 2},                 // pairs A/C and B/C open
		{7, alignment.MoveXGG, 2},                 // pairs A/B and A/C open (B/C is gap-gap)
		{alignment.MoveXGG, alignment.MoveXGG, 0}, // continuing both gaps
		{alignment.MoveXXG, alignment.MoveXXG, 0}, // continuing C's gap
		{alignment.MoveXXG, alignment.MoveXGX, 2}, // C's gaps close, B's open: A/B opens, B/C flips direction
		{alignment.MoveXGG, 7, 0},                 // closing gaps costs nothing
		{alignment.MoveGXG, alignment.MoveXGG, 2},
	}
	for _, c := range cases {
		if got := openCount[c.q][c.s]; got != c.want {
			t.Errorf("openCount[%s][%s] = %d, want %d", c.q, c.s, got, c.want)
		}
	}
}

func TestAlignAffineZeroOpenEqualsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 15; trial++ {
		tr := randomTriple(rng, rng.Intn(10), rng.Intn(10), rng.Intn(10))
		lin, err := AlignFull(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		aff, err := AlignAffine(context.Background(), tr, dnaSch, Options{}) // gapOpen == 0
		if err != nil {
			t.Fatal(err)
		}
		if aff.Score != lin.Score {
			t.Fatalf("trial %d: affine(open=0) = %d, linear = %d", trial, aff.Score, lin.Score)
		}
		if err := aff.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestAlignAffineMatchesBruteForce(t *testing.T) {
	sch, err := scoring.DNADefault().WithGaps(-4, -1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 25; trial++ {
		tr := randomTriple(rng, rng.Intn(4), rng.Intn(4), rng.Intn(4))
		want, err := BruteForceAffineScore(tr, sch)
		if err != nil {
			t.Fatal(err)
		}
		aln, err := AlignAffine(context.Background(), tr, sch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if aln.Score != want {
			t.Fatalf("trial %d (%s): AlignAffine = %d, brute = %d",
				trial, tr.Describe(), aln.Score, want)
		}
	}
}

func TestAlignAffineNaturalRescoreNeverBelowDP(t *testing.T) {
	// Quasi-natural charges at least as many opens as the natural count,
	// so the natural rescore of the returned alignment is >= the DP score.
	sch, err := scoring.DNADefault().WithGaps(-6, -1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 10; trial++ {
		tr := randomTriple(rng, 3+rng.Intn(8), 3+rng.Intn(8), 3+rng.Intn(8))
		aln, err := AlignAffine(context.Background(), tr, sch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if natural := aln.SPScoreAffine(sch); natural < aln.Score {
			t.Fatalf("trial %d: natural rescore %d below DP score %d", trial, natural, aln.Score)
		}
	}
}

func TestAlignAffinePrefersSingleLongGap(t *testing.T) {
	sch, err := scoring.DNADefault().WithGaps(-8, -1)
	if err != nil {
		t.Fatal(err)
	}
	tr := dnaTriple(t, "ACGTACGTACGT", "ACGTACGT", "ACGTACGTACGT")
	aln, err := AlignAffine(context.Background(), tr, sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := aln.Validate(); err != nil {
		t.Fatal(err)
	}
	// B needs 4 gap columns; with a harsh open they must be contiguous.
	runs := 0
	inRun := false
	for _, m := range aln.Moves {
		gapB := m&alignment.ConsumeB == 0
		if gapB && !inRun {
			runs++
		}
		inRun = gapB
	}
	if runs != 1 {
		_, rb, _ := aln.Rows()
		t.Fatalf("B's gaps split into %d runs: %q", runs, rb)
	}
}

func TestAlignAffineEmpty(t *testing.T) {
	sch, _ := scoring.DNADefault().WithGaps(-4, -1)
	aln, err := AlignAffine(context.Background(), dnaTriple(t, "", "", ""), sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if aln.Score != 0 || aln.Columns() != 0 {
		t.Fatalf("empty affine: score %d cols %d", aln.Score, aln.Columns())
	}
	// One sequence only: a single gap run in each of the two pairs that
	// involve the non-empty sequence.
	aln, err = AlignAffine(context.Background(), dnaTriple(t, "ACG", "", ""), sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Pairs A/B and A/C: open -4 once each, extend -1 ×3 each; B/C all gap-gap.
	if want := int32(2 * (-4 - 3)); aln.Score != want {
		t.Fatalf("single-sequence affine = %d, want %d", aln.Score, want)
	}
}

func TestAlignAffineProtein(t *testing.T) {
	sch := scoring.BLOSUM62() // affine by default: -11/-1
	g := seq.NewGenerator(seq.Protein, 53)
	tr := g.RelatedTriple(12, seq.Uniform(0.15))
	aln, err := AlignAffine(context.Background(), tr, sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := aln.Validate(); err != nil {
		t.Fatal(err)
	}
	// The affine optimum is at least the linear-model optimum penalized by
	// the extra opens, and at least the trivial alignment's affine score.
	trivial, err := TrivialAlignment(tr, sch)
	if err != nil {
		t.Fatal(err)
	}
	if aln.Score < trivial.SPScoreAffine(sch) {
		t.Fatalf("affine optimum %d below trivial alignment's natural score %d",
			aln.Score, trivial.SPScoreAffine(sch))
	}
}

func TestAlignAffineParallelEqualsSequential(t *testing.T) {
	sch, err := scoring.DNADefault().WithGaps(-5, -1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 12; trial++ {
		tr := randomTriple(rng, rng.Intn(14), rng.Intn(14), rng.Intn(14))
		ref, err := AlignAffine(context.Background(), tr, sch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, opt := range []Options{
			{Workers: 1, BlockSize: 4},
			{Workers: 4, BlockSize: 3},
			{Workers: 8, BlockSize: 16},
		} {
			par, err := AlignAffineParallel(context.Background(), tr, sch, opt)
			if err != nil {
				t.Fatalf("trial %d %+v: %v", trial, opt, err)
			}
			if par.Score != ref.Score {
				t.Fatalf("trial %d %+v (%s): parallel affine %d != sequential %d",
					trial, opt, tr.Describe(), par.Score, ref.Score)
			}
			if err := par.Validate(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

func TestAlignAffineParallelEmptyAndCap(t *testing.T) {
	sch, _ := scoring.DNADefault().WithGaps(-4, -1)
	aln, err := AlignAffineParallel(context.Background(), dnaTriple(t, "", "", ""), sch, Options{})
	if err != nil || aln.Score != 0 {
		t.Fatalf("empty parallel affine: %v score %d", err, aln.Score)
	}
	tr := dnaTriple(t, "ACGTACGT", "ACGTACGT", "ACGTACGT")
	if _, err := AlignAffineParallel(context.Background(), tr, sch, Options{MaxBytes: 64}); err == nil {
		t.Fatal("memory cap not enforced")
	}
}

//go:build amd64

package core

// AVX2 lane kernels: the packed fill paths hand whole 16- (int16) or
// 8-cell (int32) groups of the unit-stride k lane to hand-written vector
// code when the CPU supports it. The pure-Go advancing-window loops in
// packed.go remain the portable implementation and still run the tail
// cells after the vector blocks (and everything, when AVX2 is absent or
// laneAsmEnabled is cleared).

//go:noescape
func cpuidEx(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

//go:noescape
func laneFill16(a *laneArgs16)

//go:noescape
func laneFill32(a *laneArgs32)

// haveLaneAsm reports whether the vector lane kernels may be used: AVX2
// present and the OS saving YMM state across context switches.
var haveLaneAsm = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuidEx(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuidEx(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c&(osxsave|avx) != osxsave|avx {
		return false
	}
	if lo, _ := xgetbv0(); lo&6 != 6 { // XMM and YMM state enabled
		return false
	}
	_, b, _, _ := cpuidEx(7, 0)
	return b&(1<<5) != 0 // AVX2
}

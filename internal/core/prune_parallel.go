package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/wavefront"
)

// fillRangePruned is fillRange with per-cell admissibility: pruned cells
// are stored as NegInf without evaluating the recurrence. It returns the
// number of evaluated cells in the box. Like fillRange it peels boundary
// passes off a table-driven interior loop; unlike fillRange every max chain
// keeps the NegInf seed, because pruned predecessors hold NegInf and the
// original kernel clamped the best value there. Admissibility reads the
// three precomputed through-planes (boundCtx) — three loads per cell where
// the pre-change kernel summed six forward/backward planes.
func fillRangePruned(t *mat.Tensor3, st *scoreTables, bc *boundCtx, ge2 mat.Score, si, sj, sk wavefront.Span) int64 {
	var evaluated int64
	if si.Lo == 0 {
		evaluated += prunedBoundaryI0(t, st, bc, ge2, sj, sk)
	}
	for i := max(si.Lo, 1); i < si.Hi; i++ {
		abRow := st.ab.Row(i)
		acRow := st.ac.Row(i)
		tacRow := bc.tAC.Row(i)
		tabRow := bc.tAB.Row(i)
		if sj.Lo == 0 {
			evaluated += prunedBoundaryJ0(t, bc, ge2, i, acRow, tabRow[0], tacRow, sk)
		}
		for j := max(sj.Lo, 1); j < sj.Hi; j++ {
			abPart := tabRow[j]
			hi := sk.Hi
			sAB := abRow[j]
			ac := acRow[:hi]
			bcRow := st.bc.Row(j)[:hi]
			tac := tacRow[:hi]
			tbc := bc.tBC.Row(j)[:hi]
			cur := t.Lane(i, j)[:hi:hi]
			lane11 := t.Lane(i-1, j-1)[:hi]
			lane10 := t.Lane(i-1, j)[:hi]
			lane01 := t.Lane(i, j-1)[:hi]
			lo := sk.Lo
			if lo < 1 {
				if abPart+tac[0]+tbc[0] < bc.bound {
					cur[0] = mat.NegInf
				} else {
					evaluated++
					cur[0] = max(mat.NegInf, lane11[0]+sAB+ge2, lane10[0]+ge2, lane01[0]+ge2)
				}
				lo = 1
			}
			// The dominating no-op reslice proves lo ≥ 0 to the compiler,
			// which frees the admissibility test — the path taken for every
			// k — of bounds checks. Evaluated cells keep one check on the
			// first k-1 lane read; the rest piggyback on it.
			_ = tac[:lo]
			for k := lo; k < hi; k++ {
				if abPart+tac[k]+tbc[k] < bc.bound {
					cur[k] = mat.NegInf
					continue
				}
				evaluated++
				sac, sbc := ac[k], bcRow[k]
				cur[k] = max(
					mat.NegInf,
					lane11[k-1]+sAB+sac+sbc, // XXX
					lane10[k-1]+sac+ge2,     // XGX
					lane01[k-1]+sbc+ge2,     // GXX
					cur[k-1]+ge2,            // GGX
					lane11[k]+sAB+ge2,       // XXG
					lane10[k]+ge2,           // XGG
					lane01[k]+ge2,           // GXG
				)
			}
		}
	}
	return evaluated
}

// prunedBoundaryI0 fills the admissible cells of the i == 0 plane portion.
func prunedBoundaryI0(t *mat.Tensor3, st *scoreTables, bc *boundCtx, ge2 mat.Score, sj, sk wavefront.Span) int64 {
	var evaluated int64
	tacRow := bc.tAC.Row(0)
	tabRow := bc.tAB.Row(0)
	for j := sj.Lo; j < sj.Hi; j++ {
		cur := t.Lane(0, j)
		abPart := tabRow[j]
		tbc := bc.tBC.Row(j)
		admissible := func(k int) bool {
			return abPart+tacRow[k]+tbc[k] >= bc.bound
		}
		if j == 0 {
			k := sk.Lo
			if k == 0 {
				cur[0] = 0
				evaluated++
				k = 1
			}
			for ; k < sk.Hi; k++ {
				if !admissible(k) {
					cur[k] = mat.NegInf
					continue
				}
				evaluated++
				cur[k] = max(mat.NegInf, cur[k-1]+ge2) // GGX
			}
			continue
		}
		prev := t.Lane(0, j-1)
		bcRow := st.bc.Row(j)
		k := sk.Lo
		if k == 0 {
			if !admissible(0) {
				cur[0] = mat.NegInf
			} else {
				evaluated++
				cur[0] = max(mat.NegInf, prev[0]+ge2) // GXG
			}
			k = 1
		}
		for ; k < sk.Hi; k++ {
			if !admissible(k) {
				cur[k] = mat.NegInf
				continue
			}
			evaluated++
			cur[k] = max(mat.NegInf, prev[k-1]+bcRow[k]+ge2, cur[k-1]+ge2, prev[k]+ge2)
		}
	}
	return evaluated
}

// prunedBoundaryJ0 fills the admissible cells of the j == 0 row of plane
// i ≥ 1.
func prunedBoundaryJ0(t *mat.Tensor3, bc *boundCtx, ge2 mat.Score, i int, acRow []mat.Score, abPart mat.Score, tacRow []mat.Score, sk wavefront.Span) int64 {
	var evaluated int64
	cur := t.Lane(i, 0)
	prev := t.Lane(i-1, 0)
	tbc := bc.tBC.Row(0)
	admissible := func(k int) bool {
		return abPart+tacRow[k]+tbc[k] >= bc.bound
	}
	k := sk.Lo
	if k == 0 {
		if !admissible(0) {
			cur[0] = mat.NegInf
		} else {
			evaluated++
			cur[0] = max(mat.NegInf, prev[0]+ge2) // XGG
		}
		k = 1
	}
	for ; k < sk.Hi; k++ {
		if !admissible(k) {
			cur[k] = mat.NegInf
			continue
		}
		evaluated++
		cur[k] = max(mat.NegInf, prev[k-1]+acRow[k]+ge2, prev[k]+ge2, cur[k-1]+ge2)
	}
	return evaluated
}

// AlignPrunedParallel combines Carrillo–Lipman pruning with the blocked
// wavefront schedule: the paper's parallel algorithm evaluating only the
// admissible region. The evaluated-cell count is identical to AlignPruned
// (the bound is deterministic); only the schedule differs.
func AlignPrunedParallel(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options, lower ...mat.Score) (*alignment.Alignment, PruneStats, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return nil, PruneStats{}, err
	}
	if err := checkCtx(ctx); err != nil {
		return nil, PruneStats{}, err
	}
	if FullMatrixBytes(tr) > opt.maxBytes() {
		return nil, PruneStats{}, fmt.Errorf("%w: need %d bytes, cap %d", ErrTooLarge, FullMatrixBytes(tr), opt.maxBytes())
	}
	trivial, err := TrivialAlignment(tr, sch)
	if err != nil {
		return nil, PruneStats{}, err
	}
	bound := trivial.Score
	for _, l := range lower {
		if l > bound {
			bound = l
		}
	}
	bc := newBoundCtx(ca, cb, cc, sch, bound)
	defer bc.release()

	n, m, p := len(ca), len(cb), len(cc)
	st := newScoreTables(ca, cb, cc, sch)
	defer st.release()
	t := mat.GetTensor3(n+1, m+1, p+1)
	defer mat.PutTensor3(t)
	ge2 := 2 * sch.GapExtend()
	ti, tj, tk := opt.tileDims(n+1, m+1, p+1, 4)
	si := wavefront.Partition(n+1, ti)
	sj := wavefront.Partition(m+1, tj)
	sk := wavefront.Partition(p+1, tk)
	var evaluated atomic.Int64
	stats := PruneStats{
		TotalCells: int64(n+1) * int64(m+1) * int64(p+1),
		LowerBound: bound,
	}
	if err := wavefront.Run3DContext(ctx, len(si), len(sj), len(sk), opt.workers(), func(bi, bj, bk int) {
		evaluated.Add(fillRangePruned(t, st, bc, ge2, si[bi], sj[bj], sk[bk]))
	}); err != nil {
		stats.EvaluatedCells = evaluated.Load()
		return nil, stats, err
	}
	stats.EvaluatedCells = evaluated.Load()
	moves, err := tracebackTensor(t, ca, cb, cc, sch)
	if err != nil {
		return nil, stats, fmt.Errorf("core: pruned traceback failed (is the lower bound valid?): %w", err)
	}
	aln := &alignment.Alignment{Triple: tr, Moves: moves, Score: t.At(n, m, p)}
	stats.Optimum = aln.Score
	return aln, stats, nil
}

package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/pairwise"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/wavefront"
)

// pruneCtx carries the Carrillo–Lipman admissibility data shared by the
// sequential and parallel pruned aligners.
type pruneCtx struct {
	fAB, fAC, fBC *mat.Plane
	bAB, bAC, bBC *mat.Plane
	bound         mat.Score
}

func newPruneCtx(ca, cb, cc []int8, sch *scoring.Scheme, bound mat.Score) *pruneCtx {
	return &pruneCtx{
		fAB:   pairwise.Forward(ca, cb, sch),
		fAC:   pairwise.Forward(ca, cc, sch),
		fBC:   pairwise.Forward(cb, cc, sch),
		bAB:   pairwise.Backward(ca, cb, sch),
		bAC:   pairwise.Backward(ca, cc, sch),
		bBC:   pairwise.Backward(cb, cc, sch),
		bound: bound,
	}
}

// admissible reports whether any alignment through (i, j, k) can reach the
// lower bound, by the pairwise projection upper bound.
func (pc *pruneCtx) admissible(i, j, k int) bool {
	ub := pc.fAB.At(i, j) + pc.bAB.At(i, j) +
		pc.fAC.At(i, k) + pc.bAC.At(i, k) +
		pc.fBC.At(j, k) + pc.bBC.At(j, k)
	return ub >= pc.bound
}

// fillRangePruned is fillRange with per-cell admissibility: pruned cells
// are stored as NegInf without evaluating the recurrence. It returns the
// number of evaluated cells in the box.
func fillRangePruned(t *mat.Tensor3, ca, cb, cc []int8, sch *scoring.Scheme, pc *pruneCtx, si, sj, sk wavefront.Span) int64 {
	ge2 := 2 * sch.GapExtend()
	var evaluated int64
	for i := si.Lo; i < si.Hi; i++ {
		var ai int8
		if i > 0 {
			ai = ca[i-1]
		}
		for j := sj.Lo; j < sj.Hi; j++ {
			var bj int8
			var sAB mat.Score
			if j > 0 {
				bj = cb[j-1]
				if i > 0 {
					sAB = sch.Sub(ai, bj)
				}
			}
			abPart := pc.fAB.At(i, j) + pc.bAB.At(i, j)
			cur := t.Lane(i, j)
			var lane11, lane10, lane01 []mat.Score
			if i > 0 && j > 0 {
				lane11 = t.Lane(i-1, j-1)
			}
			if i > 0 {
				lane10 = t.Lane(i-1, j)
			}
			if j > 0 {
				lane01 = t.Lane(i, j-1)
			}
			for k := sk.Lo; k < sk.Hi; k++ {
				if i == 0 && j == 0 && k == 0 {
					cur[0] = 0
					evaluated++
					continue
				}
				ub := abPart + pc.fAC.At(i, k) + pc.bAC.At(i, k) + pc.fBC.At(j, k) + pc.bBC.At(j, k)
				if ub < pc.bound {
					cur[k] = mat.NegInf
					continue
				}
				evaluated++
				best := mat.NegInf
				if k > 0 {
					ck := cc[k-1]
					if lane11 != nil {
						if v := lane11[k-1] + sAB + sch.Sub(ai, ck) + sch.Sub(bj, ck); v > best {
							best = v
						}
					}
					if lane10 != nil {
						if v := lane10[k-1] + sch.Sub(ai, ck) + ge2; v > best {
							best = v
						}
					}
					if lane01 != nil {
						if v := lane01[k-1] + sch.Sub(bj, ck) + ge2; v > best {
							best = v
						}
					}
					if v := cur[k-1] + ge2; v > best {
						best = v
					}
				}
				if lane11 != nil {
					if v := lane11[k] + sAB + ge2; v > best {
						best = v
					}
				}
				if lane10 != nil {
					if v := lane10[k] + ge2; v > best {
						best = v
					}
				}
				if lane01 != nil {
					if v := lane01[k] + ge2; v > best {
						best = v
					}
				}
				cur[k] = best
			}
		}
	}
	return evaluated
}

// AlignPrunedParallel combines Carrillo–Lipman pruning with the blocked
// wavefront schedule: the paper's parallel algorithm evaluating only the
// admissible region. The evaluated-cell count is identical to AlignPruned
// (the bound is deterministic); only the schedule differs.
func AlignPrunedParallel(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options, lower ...mat.Score) (*alignment.Alignment, PruneStats, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return nil, PruneStats{}, err
	}
	if err := checkCtx(ctx); err != nil {
		return nil, PruneStats{}, err
	}
	if FullMatrixBytes(tr) > opt.maxBytes() {
		return nil, PruneStats{}, fmt.Errorf("%w: need %d bytes, cap %d", ErrTooLarge, FullMatrixBytes(tr), opt.maxBytes())
	}
	trivial, err := TrivialAlignment(tr, sch)
	if err != nil {
		return nil, PruneStats{}, err
	}
	bound := trivial.Score
	for _, l := range lower {
		if l > bound {
			bound = l
		}
	}
	pc := newPruneCtx(ca, cb, cc, sch, bound)

	n, m, p := len(ca), len(cb), len(cc)
	t := mat.NewTensor3(n+1, m+1, p+1)
	bs := opt.blockSize()
	si := wavefront.Partition(n+1, bs)
	sj := wavefront.Partition(m+1, bs)
	sk := wavefront.Partition(p+1, bs)
	var evaluated atomic.Int64
	stats := PruneStats{
		TotalCells: int64(n+1) * int64(m+1) * int64(p+1),
		LowerBound: bound,
	}
	if err := wavefront.Run3DContext(ctx, len(si), len(sj), len(sk), opt.workers(), func(bi, bj, bk int) {
		evaluated.Add(fillRangePruned(t, ca, cb, cc, sch, pc, si[bi], sj[bj], sk[bk]))
	}); err != nil {
		stats.EvaluatedCells = evaluated.Load()
		return nil, stats, err
	}
	stats.EvaluatedCells = evaluated.Load()
	moves, err := tracebackTensor(t, ca, cb, cc, sch)
	if err != nil {
		return nil, stats, fmt.Errorf("core: pruned traceback failed (is the lower bound valid?): %w", err)
	}
	aln := &alignment.Alignment{Triple: tr, Moves: moves, Score: t.At(n, m, p)}
	stats.Optimum = aln.Score
	return aln, stats, nil
}

package core

import (
	"context"
	"fmt"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/wavefront"
)

// PruneStats reports how much of the lattice the Carrillo–Lipman bound
// admitted.
type PruneStats struct {
	TotalCells     int64     // (n+1)(m+1)(p+1)
	EvaluatedCells int64     // cells whose recurrence was evaluated
	LowerBound     mat.Score // the bound L used for admission
	Optimum        mat.Score // the optimal SP score found
}

// Fraction returns EvaluatedCells / TotalCells.
func (s PruneStats) Fraction() float64 {
	if s.TotalCells == 0 {
		return 0
	}
	return float64(s.EvaluatedCells) / float64(s.TotalCells)
}

// TrivialAlignment builds a valid (generally sub-optimal) alignment by
// consuming all three sequences in lock step, then pairs, then singles.
// Its SP score is the built-in Carrillo–Lipman lower bound.
func TrivialAlignment(tr seq.Triple, sch *scoring.Scheme) (*alignment.Alignment, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	na, nb, nc := tr.A.Len(), tr.B.Len(), tr.C.Len()
	moves := make([]alignment.Move, 0, na+nb+nc)
	emit := func(m alignment.Move, times int) {
		for t := 0; t < times; t++ {
			moves = append(moves, m)
		}
	}
	d := min3(na, nb, nc)
	emit(alignment.MoveXXX, d)
	na, nb, nc = na-d, nb-d, nc-d
	if ab := min2(na, nb); ab > 0 {
		emit(alignment.MoveXXG, ab)
		na, nb = na-ab, nb-ab
	}
	if ac := min2(na, nc); ac > 0 {
		emit(alignment.MoveXGX, ac)
		na, nc = na-ac, nc-ac
	}
	if bc := min2(nb, nc); bc > 0 {
		emit(alignment.MoveGXX, bc)
		nb, nc = nb-bc, nc-bc
	}
	emit(alignment.MoveXGG, na)
	emit(alignment.MoveGXG, nb)
	emit(alignment.MoveGGX, nc)
	aln := &alignment.Alignment{Triple: tr, Moves: moves}
	if err := aln.Validate(); err != nil {
		return nil, fmt.Errorf("core: trivial alignment invalid: %w", err)
	}
	aln.Score = aln.SPScore(sch)
	return aln, nil
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func min3(a, b, c int) int { return min2(min2(a, b), c) }

// AlignPruned computes the same optimum as AlignFull but evaluates only
// the Carrillo–Lipman admissible region: cell (i, j, k) is skipped when the
// sum of the three pairwise forward and backward projection bounds cannot
// reach the lower bound L. L defaults to the TrivialAlignment score; pass a
// tighter valid lower bound (any real alignment's SP score, e.g. from a
// heuristic) to prune more aggressively. Passing an L greater than the
// optimum is invalid and yields an error or a sub-optimal result.
func AlignPruned(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options, lower ...mat.Score) (*alignment.Alignment, PruneStats, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return nil, PruneStats{}, err
	}
	if err := checkCtx(ctx); err != nil {
		return nil, PruneStats{}, err
	}
	if FullMatrixBytes(tr) > opt.maxBytes() {
		return nil, PruneStats{}, fmt.Errorf("%w: need %d bytes, cap %d", ErrTooLarge, FullMatrixBytes(tr), opt.maxBytes())
	}
	trivial, err := TrivialAlignment(tr, sch)
	if err != nil {
		return nil, PruneStats{}, err
	}
	bound := trivial.Score
	for _, l := range lower {
		if l > bound {
			bound = l
		}
	}

	bc := newBoundCtx(ca, cb, cc, sch, bound)
	defer bc.release()
	n, m, p := len(ca), len(cb), len(cc)
	st := newScoreTables(ca, cb, cc, sch)
	defer st.release()
	t := mat.GetTensor3(n+1, m+1, p+1)
	defer mat.PutTensor3(t)
	ge2 := 2 * sch.GapExtend()
	stats := PruneStats{TotalCells: int64(n+1) * int64(m+1) * int64(p+1), LowerBound: bound}
	sj := wavefront.Span{Lo: 0, Hi: m + 1}
	sk := wavefront.Span{Lo: 0, Hi: p + 1}
	for i := 0; i <= n; i++ {
		if err := checkCtx(ctx); err != nil {
			return nil, stats, err
		}
		stats.EvaluatedCells += fillRangePruned(t, st, bc, ge2,
			wavefront.Span{Lo: i, Hi: i + 1}, sj, sk)
	}

	moves, err := tracebackTensor(t, ca, cb, cc, sch)
	if err != nil {
		return nil, stats, fmt.Errorf("core: pruned traceback failed (is the lower bound valid?): %w", err)
	}
	aln := &alignment.Alignment{Triple: tr, Moves: moves, Score: t.At(n, m, p)}
	stats.Optimum = aln.Score
	return aln, stats, nil
}

package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/pairwise"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/wavefront"
)

// smallVolume is the sub-lattice size below which the Hirschberg recursion
// switches to the full-matrix aligner; the switch trades a little memory
// for avoiding deep recursions over trivial boxes.
const smallVolume = 1 << 15

// derivePairScheme builds the two-sequence scheme equivalent to the
// three-way objective when one sequence is exhausted: each remaining column
// (gap, y, z) scores sub(y,z) + 2·gapExtend if both residues are present
// and 2·gapExtend if only one is, so the induced pairwise problem uses
// sub' = sub + 2·ge and gap' = 2·ge.
func derivePairScheme(sch *scoring.Scheme) *scoring.Scheme {
	ge2 := 2 * sch.GapExtend()
	d, err := sch.MapSub(sch.Name()+"+pair", func(v mat.Score) mat.Score { return v + ge2 }, 0, ge2)
	if err != nil {
		panic("core: derivePairScheme: " + err.Error()) // impossible: gaps ≤ 0
	}
	return d
}

// pairMoveTable maps a pairwise op to a three-way move given which sequence
// is exhausted (0 = A absent, 1 = B absent, 2 = C absent).
var pairMoveTable = [3][3]alignment.Move{
	{alignment.MoveGXX, alignment.MoveGXG, alignment.MoveGGX}, // aligning B with C
	{alignment.MoveXGX, alignment.MoveXGG, alignment.MoveGGX}, // aligning A with C
	{alignment.MoveXXG, alignment.MoveXGG, alignment.MoveGXG}, // aligning A with B
}

func pairMoves(ops []pairwise.Op, absent int) []alignment.Move {
	out := make([]alignment.Move, len(ops))
	for i, op := range ops {
		out[i] = pairMoveTable[absent][op]
	}
	return out
}

// fillPlaneRange computes cells (j, k) of one i-plane inside the given
// spans. prev is the completed (i-1)-plane; a nil prev means i == 0 (only
// the in-plane moves GXX, GXG, GGX apply). ai is the residue consumed when
// advancing in A; prof is the residue profile against C, serving both the
// A-vs-C and B-vs-C lookups of the interior loop.
//
// Like fillRange, the box is peeled into j == 0 / k == 0 boundary passes
// and a branch-minimal interior loop with hoisted, length-capped rows.
func fillPlaneRange(cur, prev *mat.Plane, ai int8, cb []int8, sch *scoring.Scheme, prof *pairProfile, sj, sk wavefront.Span) {
	ge2 := 2 * sch.GapExtend()
	if prev == nil {
		fillPlaneRangeI0(cur, prof, ge2, cb, sj, sk)
		return
	}
	acRow := prof.Row(ai)
	subAi := sch.SubRow(ai)
	if sj.Lo == 0 {
		// j == 0 row: only XGX, XGG, GGX apply.
		curRow := cur.Row(0)
		prevRow := prev.Row(0)
		k := sk.Lo
		if k == 0 {
			curRow[0] = prevRow[0] + ge2 // XGG
			k = 1
		}
		for ; k < sk.Hi; k++ {
			curRow[k] = max(prevRow[k-1]+acRow[k], prevRow[k], curRow[k-1]) + ge2
		}
	}
	hi := sk.Hi
	for j := max(sj.Lo, 1); j < sj.Hi; j++ {
		bj := cb[j-1]
		sAB := subAi[bj]
		bcRow := prof.Row(bj)[:hi]
		ac := acRow[:hi]
		curRow := cur.Row(j)[:hi:hi]
		cur01 := cur.Row(j - 1)[:hi]
		prev10 := prev.Row(j)[:hi]
		prev11 := prev.Row(j - 1)[:hi]
		lo := sk.Lo
		if lo < 1 {
			curRow[0] = max(prev11[0]+sAB, prev10[0], cur01[0]) + ge2
			lo = 1
		}
		if lo >= hi {
			continue
		}
		v11, v10, v01 := prev11[lo-1], prev10[lo-1], cur01[lo-1]
		vkk := curRow[lo-1]
		for k := lo; k < hi; k++ {
			n11, n10, n01 := prev11[k], prev10[k], cur01[k]
			sac, sbc := ac[k], bcRow[k]
			best := max(
				v11+sAB+sac+sbc, // XXX
				v10+sac+ge2,     // XGX
				v01+sbc+ge2,     // GXX
				vkk+ge2,         // GGX
				n11+sAB+ge2,     // XXG
				n10+ge2,         // XGG
				n01+ge2,         // GXG
			)
			curRow[k] = best
			v11, v10, v01, vkk = n11, n10, n01, best
		}
	}
}

// fillPlaneRangeI0 fills the i == 0 plane portion, where only the in-plane
// moves GXX, GXG, GGX apply.
func fillPlaneRangeI0(cur *mat.Plane, prof *pairProfile, ge2 mat.Score, cb []int8, sj, sk wavefront.Span) {
	for j := sj.Lo; j < sj.Hi; j++ {
		curRow := cur.Row(j)
		if j == 0 {
			k := sk.Lo
			if k == 0 {
				curRow[0] = 0
				k = 1
			}
			for ; k < sk.Hi; k++ {
				curRow[k] = curRow[k-1] + ge2 // GGX chain
			}
			continue
		}
		prevRow := cur.Row(j - 1)
		bcRow := prof.Row(cb[j-1])
		k := sk.Lo
		if k == 0 {
			curRow[0] = prevRow[0] + ge2 // GXG
			k = 1
		}
		for ; k < sk.Hi; k++ {
			curRow[k] = max(prevRow[k-1]+bcRow[k], prevRow[k], curRow[k-1]) + ge2
		}
	}
}

// planeSweep runs the forward DP over all of A and returns the final
// (len(cb)+1)×(len(cc)+1) plane: out[j][k] is the optimal score of aligning
// all of ca with cb[:j] and cc[:k]. With workers > 1 each plane is computed
// by a 2D blocked wavefront. The context is polled at every plane boundary
// (and per block inside parallel sweeps).
// planeSweep's working planes come from the mat arena; the returned final
// plane must be released with mat.PutPlane by the caller.
func planeSweep(ctx context.Context, ca, cb, cc []int8, sch *scoring.Scheme, workers, tj, tk int) (*mat.Plane, error) {
	m, p := len(cb), len(cc)
	prev := mat.GetPlane(m+1, p+1)
	cur := mat.GetPlane(m+1, p+1)
	prof := newPairProfile(cc, sch)
	defer prof.release()
	// The sweeps always run the packed interior — it is bit-identical to
	// fillPlaneRange, which survives as the differential suite's scalar
	// reference.
	var lv laneVec
	initLaneVec(&lv, ca, cb, cc, sch, 2*sch.GapExtend())
	var sj, sk []wavefront.Span
	if workers > 1 {
		// The partitions are only needed by the blocked 2D wavefront;
		// sequential sweeps skip the two slice allocations per call —
		// the Hirschberg recursion makes two planeSweep calls per node.
		sj = wavefront.Partition(m+1, tj)
		sk = wavefront.Partition(p+1, tk)
	}
	sweep := func(dst, src *mat.Plane, ai int8) error {
		if workers <= 1 {
			fillPlaneRangePacked(dst, src, ai, cb, sch, prof, wavefront.Span{Lo: 0, Hi: m + 1}, wavefront.Span{Lo: 0, Hi: p + 1}, &lv)
			return nil
		}
		return wavefront.Run2DContext(ctx, len(sj), len(sk), workers, func(bj, bk int) {
			blockLV := lv // private copy: the argument block is scratch state
			fillPlaneRangePacked(dst, src, ai, cb, sch, prof, sj[bj], sk[bk], &blockLV)
		})
	}
	fail := func(err error) (*mat.Plane, error) {
		mat.PutPlane(prev)
		mat.PutPlane(cur)
		return nil, err
	}
	if err := checkCtx(ctx); err != nil {
		return fail(err)
	}
	if err := sweep(prev, nil, 0); err != nil { // the i == 0 plane
		return fail(err)
	}
	for i := 1; i <= len(ca); i++ {
		if err := checkCtx(ctx); err != nil {
			return fail(err)
		}
		if err := sweep(cur, prev, ca[i-1]); err != nil {
			return fail(err)
		}
		prev, cur = cur, prev
	}
	mat.PutPlane(cur)
	return prev, nil
}

// hctx carries the recursion-invariant state of a Hirschberg run.
type hctx struct {
	sch      *scoring.Scheme
	derived  *scoring.Scheme
	workers  int
	tj, tk   int // plane-sweep tile edges
	parallel bool
	// spawn is the remaining budget of concurrent recursive branches; it
	// bounds goroutine fan-out without a global queue.
	spawn atomic.Int32
}

// fullMoves solves a sub-box exactly with the full-matrix DP, drawing its
// lattice and score tables from the arena — in the Hirschberg recursion
// every leaf box reuses the buffers of earlier leaves.
func fullMoves(ca, cb, cc []int8, sch *scoring.Scheme) ([]alignment.Move, error) {
	st := newScoreTables(ca, cb, cc, sch)
	defer st.release()
	t := mat.GetTensor3(len(ca)+1, len(cb)+1, len(cc)+1)
	defer mat.PutTensor3(t)
	fillRange(t, st, 2*sch.GapExtend(),
		wavefront.Span{Lo: 0, Hi: len(ca) + 1},
		wavefront.Span{Lo: 0, Hi: len(cb) + 1},
		wavefront.Span{Lo: 0, Hi: len(cc) + 1})
	return tracebackTensor(t, ca, cb, cc, sch)
}

func (h *hctx) rec(ctx context.Context, ca, cb, cc []int8) ([]alignment.Move, error) {
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	switch {
	case len(ca) == 0:
		return pairMoves(pairwise.Hirschberg(cb, cc, h.derived).Ops, 0), nil
	case len(cb) == 0:
		return pairMoves(pairwise.Hirschberg(ca, cc, h.derived).Ops, 1), nil
	case len(cc) == 0:
		return pairMoves(pairwise.Hirschberg(ca, cb, h.derived).Ops, 2), nil
	case len(ca) == 1 || (len(ca)+1)*(len(cb)+1)*(len(cc)+1) <= smallVolume:
		// A single A-residue cannot be split; the box is also small enough
		// (≤ 2 planes when len(ca) == 1) that full DP stays within the
		// linear-space budget.
		return fullMoves(ca, cb, cc, h.sch)
	}

	mid := len(ca) / 2
	// The backward sweep reads the reversed sequences; the reversed copies
	// come from the code arena so the recursion reuses a few buffers instead
	// of allocating three per node.
	rca, rcb, rcc := reverseCodesArena(ca[mid:]), reverseCodesArena(cb), reverseCodesArena(cc)
	var fwd, bwdRev *mat.Plane
	var errF, errB error
	if h.parallel {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			fwd, errF = planeSweep(ctx, ca[:mid], cb, cc, h.sch, h.workers, h.tj, h.tk)
		}()
		bwdRev, errB = planeSweep(ctx, rca, rcb, rcc, h.sch, h.workers, h.tj, h.tk)
		wg.Wait()
	} else {
		fwd, errF = planeSweep(ctx, ca[:mid], cb, cc, h.sch, 1, h.tj, h.tk)
		if errF == nil {
			bwdRev, errB = planeSweep(ctx, rca, rcb, rcc, h.sch, 1, h.tj, h.tk)
		}
	}
	mat.PutCodes(rca)
	mat.PutCodes(rcb)
	mat.PutCodes(rcc)
	if errF != nil {
		mat.PutPlane(fwd)
		mat.PutPlane(bwdRev)
		return nil, errF
	}
	if errB != nil {
		mat.PutPlane(fwd)
		mat.PutPlane(bwdRev)
		return nil, errB
	}

	m, p := len(cb), len(cc)
	bestJ, bestK := 0, 0
	bestV := fwd.At(0, 0) + bwdRev.At(m, p)
	for j := 0; j <= m; j++ {
		fRow := fwd.Row(j)
		bRow := bwdRev.Row(m - j)
		for k := 0; k <= p; k++ {
			if v := fRow[k] + bRow[p-k]; v > bestV {
				bestV, bestJ, bestK = v, j, k
			}
		}
	}
	mat.PutPlane(fwd)
	mat.PutPlane(bwdRev)

	var left, right []alignment.Move
	var errL, errR error
	if h.parallel && h.spawn.Add(-1) >= 0 {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			left, errL = h.rec(ctx, ca[:mid], cb[:bestJ], cc[:bestK])
		}()
		right, errR = h.rec(ctx, ca[mid:], cb[bestJ:], cc[bestK:])
		wg.Wait()
	} else {
		left, errL = h.rec(ctx, ca[:mid], cb[:bestJ], cc[:bestK])
		if errL == nil {
			right, errR = h.rec(ctx, ca[mid:], cb[bestJ:], cc[bestK:])
		}
	}
	if errL != nil {
		return nil, errL
	}
	if errR != nil {
		return nil, errR
	}
	return append(left, right...), nil
}

// reverseCodesArena returns a reversed copy of s drawn from the code arena;
// release it with mat.PutCodes once the consuming sweep has returned.
func reverseCodesArena(s []int8) []int8 {
	out := mat.GetCodes(len(s))
	for i, c := range s {
		out[len(s)-1-i] = c
	}
	return out
}

func alignHirschberg(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options, parallel bool) (*alignment.Alignment, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return nil, err
	}
	if LinearBytes(tr) > opt.maxBytes() {
		return nil, fmt.Errorf("%w: need %d bytes, cap %d", ErrTooLarge, LinearBytes(tr), opt.maxBytes())
	}
	h := &hctx{
		sch:      sch,
		derived:  derivePairScheme(sch),
		workers:  opt.workers(),
		parallel: parallel,
	}
	// 8 bytes per cell: the sweep reads the previous plane and writes the
	// current one, two 4-byte lattice slabs per tile.
	h.tj, h.tk = opt.tile2D(len(cb)+1, len(cc)+1, 8)
	h.spawn.Store(int32(h.workers))
	moves, err := h.rec(ctx, ca, cb, cc)
	if err != nil {
		return nil, err
	}
	aln := &alignment.Alignment{Triple: tr, Moves: moves}
	if err := aln.Validate(); err != nil {
		return nil, fmt.Errorf("core: hirschberg produced inconsistent alignment: %w", err)
	}
	aln.Score = aln.SPScore(sch)
	return aln, nil
}

// AlignLinear computes the same optimum as AlignFull with the 3D Hirschberg
// divide-and-conquer, using O(len(B)·len(C)) working memory. The context
// is polled at every plane boundary and recursion step.
func AlignLinear(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options) (*alignment.Alignment, error) {
	return alignHirschberg(ctx, tr, sch, opt, false)
}

// AlignParallelLinear is AlignLinear with parallel plane sweeps (2D blocked
// wavefronts) and concurrent independent sub-problems.
func AlignParallelLinear(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options) (*alignment.Alignment, error) {
	return alignHirschberg(ctx, tr, sch, opt, true)
}

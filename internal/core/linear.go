package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/pairwise"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/wavefront"
)

// smallVolume is the sub-lattice size below which the Hirschberg recursion
// switches to the full-matrix aligner; the switch trades a little memory
// for avoiding deep recursions over trivial boxes.
const smallVolume = 1 << 15

// derivePairScheme builds the two-sequence scheme equivalent to the
// three-way objective when one sequence is exhausted: each remaining column
// (gap, y, z) scores sub(y,z) + 2·gapExtend if both residues are present
// and 2·gapExtend if only one is, so the induced pairwise problem uses
// sub' = sub + 2·ge and gap' = 2·ge.
func derivePairScheme(sch *scoring.Scheme) *scoring.Scheme {
	n := sch.Alphabet().Size()
	ge := int(sch.GapExtend())
	table := make([][]int, n)
	for i := range table {
		table[i] = make([]int, n)
		for j := range table[i] {
			table[i][j] = int(sch.Sub(int8(i), int8(j))) + 2*ge
		}
	}
	d, err := scoring.New(sch.Name()+"+pair", sch.Alphabet(), table, 0, 2*ge)
	if err != nil {
		panic("core: derivePairScheme: " + err.Error()) // impossible: table symmetric, gaps ≤ 0
	}
	return d
}

// pairMoveTable maps a pairwise op to a three-way move given which sequence
// is exhausted (0 = A absent, 1 = B absent, 2 = C absent).
var pairMoveTable = [3][3]alignment.Move{
	{alignment.MoveGXX, alignment.MoveGXG, alignment.MoveGGX}, // aligning B with C
	{alignment.MoveXGX, alignment.MoveXGG, alignment.MoveGGX}, // aligning A with C
	{alignment.MoveXXG, alignment.MoveXGG, alignment.MoveGXG}, // aligning A with B
}

func pairMoves(ops []pairwise.Op, absent int) []alignment.Move {
	out := make([]alignment.Move, len(ops))
	for i, op := range ops {
		out[i] = pairMoveTable[absent][op]
	}
	return out
}

// fillPlaneRange computes cells (j, k) of one i-plane inside the given
// spans. prev is the completed (i-1)-plane; a nil prev means i == 0 (only
// the in-plane moves GXX, GXG, GGX apply). ai is the residue consumed when
// advancing in A.
func fillPlaneRange(cur, prev *mat.Plane, ai int8, cb, cc []int8, sch *scoring.Scheme, sj, sk wavefront.Span) {
	ge2 := 2 * sch.GapExtend()
	for j := sj.Lo; j < sj.Hi; j++ {
		var bj int8
		var sAB mat.Score
		if j > 0 {
			bj = cb[j-1]
			if prev != nil {
				sAB = sch.Sub(ai, bj)
			}
		}
		for k := sk.Lo; k < sk.Hi; k++ {
			if prev == nil && j == 0 && k == 0 {
				cur.Set(0, 0, 0)
				continue
			}
			best := mat.NegInf
			if k > 0 {
				ck := cc[k-1]
				if j > 0 {
					if v := cur.At(j-1, k-1) + sch.Sub(bj, ck) + ge2; v > best {
						best = v
					}
				}
				if v := cur.At(j, k-1) + ge2; v > best {
					best = v
				}
				if prev != nil {
					if v := prev.At(j, k-1) + sch.Sub(ai, ck) + ge2; v > best {
						best = v
					}
					if j > 0 {
						if v := prev.At(j-1, k-1) + sAB + sch.Sub(ai, ck) + sch.Sub(bj, ck); v > best {
							best = v
						}
					}
				}
			}
			if j > 0 {
				if v := cur.At(j-1, k) + ge2; v > best {
					best = v
				}
				if prev != nil {
					if v := prev.At(j-1, k) + sAB + ge2; v > best {
						best = v
					}
				}
			}
			if prev != nil {
				if v := prev.At(j, k) + ge2; v > best {
					best = v
				}
			}
			cur.Set(j, k, best)
		}
	}
}

// planeSweep runs the forward DP over all of A and returns the final
// (len(cb)+1)×(len(cc)+1) plane: out[j][k] is the optimal score of aligning
// all of ca with cb[:j] and cc[:k]. With workers > 1 each plane is computed
// by a 2D blocked wavefront. The context is polled at every plane boundary
// (and per block inside parallel sweeps).
func planeSweep(ctx context.Context, ca, cb, cc []int8, sch *scoring.Scheme, workers, blockSize int) (*mat.Plane, error) {
	m, p := len(cb), len(cc)
	prev := mat.NewPlane(m+1, p+1)
	cur := mat.NewPlane(m+1, p+1)
	sj := wavefront.Partition(m+1, blockSize)
	sk := wavefront.Partition(p+1, blockSize)
	sweep := func(dst, src *mat.Plane, ai int8) error {
		if workers <= 1 {
			fillPlaneRange(dst, src, ai, cb, cc, sch, wavefront.Span{Lo: 0, Hi: m + 1}, wavefront.Span{Lo: 0, Hi: p + 1})
			return nil
		}
		return wavefront.Run2DContext(ctx, len(sj), len(sk), workers, func(bj, bk int) {
			fillPlaneRange(dst, src, ai, cb, cc, sch, sj[bj], sk[bk])
		})
	}
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	if err := sweep(prev, nil, 0); err != nil { // the i == 0 plane
		return nil, err
	}
	for i := 1; i <= len(ca); i++ {
		if err := checkCtx(ctx); err != nil {
			return nil, err
		}
		if err := sweep(cur, prev, ca[i-1]); err != nil {
			return nil, err
		}
		prev, cur = cur, prev
	}
	return prev, nil
}

// hctx carries the recursion-invariant state of a Hirschberg run.
type hctx struct {
	sch      *scoring.Scheme
	derived  *scoring.Scheme
	workers  int
	block    int
	parallel bool
	// spawn is the remaining budget of concurrent recursive branches; it
	// bounds goroutine fan-out without a global queue.
	spawn atomic.Int32
}

// fullMoves solves a sub-box exactly with the full-matrix DP.
func fullMoves(ca, cb, cc []int8, sch *scoring.Scheme) ([]alignment.Move, error) {
	t := mat.NewTensor3(len(ca)+1, len(cb)+1, len(cc)+1)
	fillRange(t, ca, cb, cc, sch,
		wavefront.Span{Lo: 0, Hi: len(ca) + 1},
		wavefront.Span{Lo: 0, Hi: len(cb) + 1},
		wavefront.Span{Lo: 0, Hi: len(cc) + 1})
	return tracebackTensor(t, ca, cb, cc, sch)
}

func (h *hctx) rec(ctx context.Context, ca, cb, cc []int8) ([]alignment.Move, error) {
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	switch {
	case len(ca) == 0:
		return pairMoves(pairwise.Hirschberg(cb, cc, h.derived).Ops, 0), nil
	case len(cb) == 0:
		return pairMoves(pairwise.Hirschberg(ca, cc, h.derived).Ops, 1), nil
	case len(cc) == 0:
		return pairMoves(pairwise.Hirschberg(ca, cb, h.derived).Ops, 2), nil
	case len(ca) == 1 || (len(ca)+1)*(len(cb)+1)*(len(cc)+1) <= smallVolume:
		// A single A-residue cannot be split; the box is also small enough
		// (≤ 2 planes when len(ca) == 1) that full DP stays within the
		// linear-space budget.
		return fullMoves(ca, cb, cc, h.sch)
	}

	mid := len(ca) / 2
	var fwd, bwdRev *mat.Plane
	var errF, errB error
	if h.parallel {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			fwd, errF = planeSweep(ctx, ca[:mid], cb, cc, h.sch, h.workers, h.block)
		}()
		bwdRev, errB = planeSweep(ctx, reverseCodes(ca[mid:]), reverseCodes(cb), reverseCodes(cc), h.sch, h.workers, h.block)
		wg.Wait()
	} else {
		fwd, errF = planeSweep(ctx, ca[:mid], cb, cc, h.sch, 1, h.block)
		if errF == nil {
			bwdRev, errB = planeSweep(ctx, reverseCodes(ca[mid:]), reverseCodes(cb), reverseCodes(cc), h.sch, 1, h.block)
		}
	}
	if errF != nil {
		return nil, errF
	}
	if errB != nil {
		return nil, errB
	}

	m, p := len(cb), len(cc)
	bestJ, bestK := 0, 0
	bestV := fwd.At(0, 0) + bwdRev.At(m, p)
	for j := 0; j <= m; j++ {
		for k := 0; k <= p; k++ {
			if v := fwd.At(j, k) + bwdRev.At(m-j, p-k); v > bestV {
				bestV, bestJ, bestK = v, j, k
			}
		}
	}

	var left, right []alignment.Move
	var errL, errR error
	if h.parallel && h.spawn.Add(-1) >= 0 {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			left, errL = h.rec(ctx, ca[:mid], cb[:bestJ], cc[:bestK])
		}()
		right, errR = h.rec(ctx, ca[mid:], cb[bestJ:], cc[bestK:])
		wg.Wait()
	} else {
		left, errL = h.rec(ctx, ca[:mid], cb[:bestJ], cc[:bestK])
		if errL == nil {
			right, errR = h.rec(ctx, ca[mid:], cb[bestJ:], cc[bestK:])
		}
	}
	if errL != nil {
		return nil, errL
	}
	if errR != nil {
		return nil, errR
	}
	return append(left, right...), nil
}

func reverseCodes(s []int8) []int8 {
	out := make([]int8, len(s))
	for i, c := range s {
		out[len(s)-1-i] = c
	}
	return out
}

func alignHirschberg(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options, parallel bool) (*alignment.Alignment, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return nil, err
	}
	if LinearBytes(tr) > opt.maxBytes() {
		return nil, fmt.Errorf("%w: need %d bytes, cap %d", ErrTooLarge, LinearBytes(tr), opt.maxBytes())
	}
	h := &hctx{
		sch:      sch,
		derived:  derivePairScheme(sch),
		workers:  opt.workers(),
		block:    opt.blockSize(),
		parallel: parallel,
	}
	h.spawn.Store(int32(h.workers))
	moves, err := h.rec(ctx, ca, cb, cc)
	if err != nil {
		return nil, err
	}
	aln := &alignment.Alignment{Triple: tr, Moves: moves}
	if err := aln.Validate(); err != nil {
		return nil, fmt.Errorf("core: hirschberg produced inconsistent alignment: %w", err)
	}
	aln.Score = aln.SPScore(sch)
	return aln, nil
}

// AlignLinear computes the same optimum as AlignFull with the 3D Hirschberg
// divide-and-conquer, using O(len(B)·len(C)) working memory. The context
// is polled at every plane boundary and recursion step.
func AlignLinear(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options) (*alignment.Alignment, error) {
	return alignHirschberg(ctx, tr, sch, opt, false)
}

// AlignParallelLinear is AlignLinear with parallel plane sweeps (2D blocked
// wavefronts) and concurrent independent sub-problems.
func AlignParallelLinear(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options) (*alignment.Alignment, error) {
	return alignHirschberg(ctx, tr, sch, opt, true)
}

package core

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/pairwise"
	"repro/internal/seq"
)

// quickTriple derives a bounded random triple from quick-generated values.
func quickTriple(seed int64, la, lb, lc uint8) seq.Triple {
	g := seq.NewGenerator(seq.DNA, seed)
	return seq.Triple{
		A: g.Random("A", int(la)%16),
		B: g.Random("B", int(lb)%16),
		C: g.Random("C", int(lc)%16),
	}
}

// TestPropertyPairwiseProjectionUpperBound: the three-way optimum never
// exceeds the sum of the three pairwise optima (the Carrillo–Lipman
// projection bound at the corner cell).
func TestPropertyPairwiseProjectionUpperBound(t *testing.T) {
	f := func(seed int64, la, lb, lc uint8) bool {
		tr := quickTriple(seed, la, lb, lc)
		opt, err := Score(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			return false
		}
		ca, cb, cc := tr.A.Codes(), tr.B.Codes(), tr.C.Codes()
		bound := pairwise.GlobalScore(ca, cb, dnaSch) +
			pairwise.GlobalScore(ca, cc, dnaSch) +
			pairwise.GlobalScore(cb, cc, dnaSch)
		return opt <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTrivialLowerBound: any valid alignment's score bounds the
// optimum from below.
func TestPropertyTrivialLowerBound(t *testing.T) {
	f := func(seed int64, la, lb, lc uint8) bool {
		tr := quickTriple(seed, la, lb, lc)
		opt, err := Score(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			return false
		}
		trivial, err := TrivialAlignment(tr, dnaSch)
		if err != nil {
			return false
		}
		return trivial.Score <= opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyConcatenationSuperadditive: splitting all three sequences at
// any point and aligning the parts independently never beats aligning the
// wholes.
func TestPropertyConcatenationSuperadditive(t *testing.T) {
	f := func(seed int64, la, lb, lc, ra, rb, rc uint8) bool {
		g := seq.NewGenerator(seq.DNA, seed)
		a1, b1, c1 := g.Random("a1", int(la)%10), g.Random("b1", int(lb)%10), g.Random("c1", int(lc)%10)
		a2, b2, c2 := g.Random("a2", int(ra)%10), g.Random("b2", int(rb)%10), g.Random("c2", int(rc)%10)
		join := func(x, y *seq.Sequence) *seq.Sequence {
			return seq.MustNew(x.Name(), x.String()+y.String(), seq.DNA)
		}
		whole := seq.Triple{A: join(a1, a2), B: join(b1, b2), C: join(c1, c2)}
		left := seq.Triple{A: a1, B: b1, C: c1}
		right := seq.Triple{A: a2, B: b2, C: c2}
		sWhole, err := Score(context.Background(), whole, dnaSch, Options{})
		if err != nil {
			return false
		}
		sLeft, err := Score(context.Background(), left, dnaSch, Options{})
		if err != nil {
			return false
		}
		sRight, err := Score(context.Background(), right, dnaSch, Options{})
		if err != nil {
			return false
		}
		return sWhole >= sLeft+sRight
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAppendSharedColumn: appending the same residue to all three
// sequences raises the optimum by at least one all-match column.
func TestPropertyAppendSharedColumn(t *testing.T) {
	matchCol := 3 * dnaSch.Sub(0, 0) // (A,A,A) column
	f := func(seed int64, la, lb, lc uint8) bool {
		tr := quickTriple(seed, la, lb, lc)
		base, err := Score(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			return false
		}
		ext := seq.Triple{
			A: seq.MustNew("A", tr.A.String()+"A", seq.DNA),
			B: seq.MustNew("B", tr.B.String()+"A", seq.DNA),
			C: seq.MustNew("C", tr.C.String()+"A", seq.DNA),
		}
		got, err := Score(context.Background(), ext, dnaSch, Options{})
		if err != nil {
			return false
		}
		return got >= base+matchCol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyIdenticalTriplesScoreExactly: n identical residues align as
// n all-match columns.
func TestPropertyIdenticalTriplesScoreExactly(t *testing.T) {
	f := func(seed int64, l uint8) bool {
		g := seq.NewGenerator(seq.DNA, seed)
		s := g.Random("s", int(l)%24)
		tr := seq.Triple{
			A: seq.MustNew("A", s.String(), seq.DNA),
			B: seq.MustNew("B", s.String(), seq.DNA),
			C: seq.MustNew("C", s.String(), seq.DNA),
		}
		opt, err := Score(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			return false
		}
		var want mat.Score
		codes := s.Codes()
		for _, c := range codes {
			want += 3 * dnaSch.Sub(c, c)
		}
		return opt == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLinearEqualsFullQuick drives the Hirschberg/full-matrix
// equivalence through quick's input generation rather than a fixed rng.
func TestPropertyLinearEqualsFullQuick(t *testing.T) {
	f := func(seed int64, la, lb, lc uint8) bool {
		tr := quickTriple(seed, la, lb, lc)
		full, err := AlignFull(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			return false
		}
		lin, err := AlignLinear(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			return false
		}
		return full.Score == lin.Score && lin.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

package core

import (
	"context"
	"testing"
)

// TestLongSequencesLinearSpace is the end-to-end "long sequences" scenario
// the linear-space algorithm exists for: a length-320 triple whose full
// lattice (≈132 MB) is aligned within a 16 MB lattice budget, and the
// score is cross-checked against the pruned full-matrix run.
func TestLongSequencesLinearSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("long-input integration test")
	}
	tr := relatedTriple(2026, 320, 0.1)
	lin, err := AlignParallelLinear(context.Background(), tr, dnaSch, Options{MaxBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	checkAlignment(t, lin, dnaSch)

	// Independent cross-check with a completely different strategy.
	pruned, _, err := AlignPruned(context.Background(), tr, dnaSch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lin.Score != pruned.Score {
		t.Fatalf("linear-space %d != pruned full-matrix %d", lin.Score, pruned.Score)
	}
	if need := FullMatrixBytes(tr); need < (16 << 20) {
		t.Fatalf("test misconfigured: full lattice %d fits the cap", need)
	}
}

// TestLongSequencesBandedFastPath checks the banded tube on a long,
// highly similar triple against the same pruned reference.
func TestLongSequencesBandedFastPath(t *testing.T) {
	if testing.Short() {
		t.Skip("long-input integration test")
	}
	tr := relatedTriple(2027, 200, 0.03)
	ref, _, err := AlignPruned(context.Background(), tr, dnaSch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	banded, err := AlignBanded(context.Background(), tr, dnaSch, Options{}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if banded.Score != ref.Score {
		t.Fatalf("banded(12) %d != optimum %d on 97%%-identity input", banded.Score, ref.Score)
	}
}

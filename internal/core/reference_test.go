package core

import (
	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/pairwise"
	"repro/internal/scoring"
	"repro/internal/wavefront"
)

// This file preserves the pre-optimization cell-fill kernels verbatim (as
// of the branchy, scheme-call-per-cell implementation) so the differential
// suite in tables_diff_test.go can assert that the table-driven, peeled
// kernels produce bit-identical lattices — and therefore identical scores
// and tracebacks — on every scheme and shape.

// refFillRange is the pre-change fillRange: nil-checked lanes, three
// scoring.Scheme.Sub calls per interior cell.
func refFillRange(t *mat.Tensor3, ca, cb, cc []int8, sch *scoring.Scheme, si, sj, sk wavefront.Span) {
	ge2 := 2 * sch.GapExtend()
	for i := si.Lo; i < si.Hi; i++ {
		var ai int8
		if i > 0 {
			ai = ca[i-1]
		}
		for j := sj.Lo; j < sj.Hi; j++ {
			var bj int8
			var sAB mat.Score
			if j > 0 {
				bj = cb[j-1]
				if i > 0 {
					sAB = sch.Sub(ai, bj)
				}
			}
			var lane11, lane10, lane01 []mat.Score
			if i > 0 && j > 0 {
				lane11 = t.Lane(i-1, j-1)
			}
			if i > 0 {
				lane10 = t.Lane(i-1, j)
			}
			if j > 0 {
				lane01 = t.Lane(i, j-1)
			}
			cur := t.Lane(i, j)
			for k := sk.Lo; k < sk.Hi; k++ {
				if i == 0 && j == 0 && k == 0 {
					cur[0] = 0
					continue
				}
				best := mat.NegInf
				if k > 0 {
					ck := cc[k-1]
					if lane11 != nil {
						if v := lane11[k-1] + sAB + sch.Sub(ai, ck) + sch.Sub(bj, ck); v > best {
							best = v
						}
					}
					if lane10 != nil {
						if v := lane10[k-1] + sch.Sub(ai, ck) + ge2; v > best {
							best = v
						}
					}
					if lane01 != nil {
						if v := lane01[k-1] + sch.Sub(bj, ck) + ge2; v > best {
							best = v
						}
					}
					if v := cur[k-1] + ge2; v > best {
						best = v
					}
				}
				if lane11 != nil {
					if v := lane11[k] + sAB + ge2; v > best {
						best = v
					}
				}
				if lane10 != nil {
					if v := lane10[k] + ge2; v > best {
						best = v
					}
				}
				if lane01 != nil {
					if v := lane01[k] + ge2; v > best {
						best = v
					}
				}
				cur[k] = best
			}
		}
	}
}

// refFillPlaneRange is the pre-change fillPlaneRange from the linear-space
// sweep.
func refFillPlaneRange(cur, prev *mat.Plane, ai int8, cb, cc []int8, sch *scoring.Scheme, sj, sk wavefront.Span) {
	ge2 := 2 * sch.GapExtend()
	for j := sj.Lo; j < sj.Hi; j++ {
		var bj int8
		var sAB mat.Score
		if j > 0 {
			bj = cb[j-1]
			if prev != nil {
				sAB = sch.Sub(ai, bj)
			}
		}
		for k := sk.Lo; k < sk.Hi; k++ {
			if prev == nil && j == 0 && k == 0 {
				cur.Set(0, 0, 0)
				continue
			}
			best := mat.NegInf
			if k > 0 {
				ck := cc[k-1]
				if j > 0 {
					if v := cur.At(j-1, k-1) + sch.Sub(bj, ck) + ge2; v > best {
						best = v
					}
				}
				if v := cur.At(j, k-1) + ge2; v > best {
					best = v
				}
				if prev != nil {
					if v := prev.At(j, k-1) + sch.Sub(ai, ck) + ge2; v > best {
						best = v
					}
					if j > 0 {
						if v := prev.At(j-1, k-1) + sAB + sch.Sub(ai, ck) + sch.Sub(bj, ck); v > best {
							best = v
						}
					}
				}
			}
			if j > 0 {
				if v := cur.At(j-1, k) + ge2; v > best {
					best = v
				}
				if prev != nil {
					if v := prev.At(j-1, k) + sAB + ge2; v > best {
						best = v
					}
				}
			}
			if prev != nil {
				if v := prev.At(j, k) + ge2; v > best {
					best = v
				}
			}
			cur.Set(j, k, best)
		}
	}
}

// refPruneCtx is the pre-change pruneCtx: six separate forward/backward
// projection planes, summed per cell. The production kernels now read
// three precomputed through-planes (boundCtx); the diff suite pins both
// forms to identical admission decisions and lattices.
type refPruneCtx struct {
	fAB, fAC, fBC *mat.Plane
	bAB, bAC, bBC *mat.Plane
	bound         mat.Score
}

func newRefPruneCtx(ca, cb, cc []int8, sch *scoring.Scheme, bound mat.Score) *refPruneCtx {
	return &refPruneCtx{
		fAB:   pairwise.Forward(ca, cb, sch),
		fAC:   pairwise.Forward(ca, cc, sch),
		fBC:   pairwise.Forward(cb, cc, sch),
		bAB:   pairwise.Backward(ca, cb, sch),
		bAC:   pairwise.Backward(ca, cc, sch),
		bBC:   pairwise.Backward(cb, cc, sch),
		bound: bound,
	}
}

func (pc *refPruneCtx) release() {
	mat.PutPlane(pc.fAB)
	mat.PutPlane(pc.fAC)
	mat.PutPlane(pc.fBC)
	mat.PutPlane(pc.bAB)
	mat.PutPlane(pc.bAC)
	mat.PutPlane(pc.bBC)
}

// refFillRangePruned is the pre-change fillRangePruned.
func refFillRangePruned(t *mat.Tensor3, ca, cb, cc []int8, sch *scoring.Scheme, pc *refPruneCtx, si, sj, sk wavefront.Span) int64 {
	ge2 := 2 * sch.GapExtend()
	var evaluated int64
	for i := si.Lo; i < si.Hi; i++ {
		var ai int8
		if i > 0 {
			ai = ca[i-1]
		}
		for j := sj.Lo; j < sj.Hi; j++ {
			var bj int8
			var sAB mat.Score
			if j > 0 {
				bj = cb[j-1]
				if i > 0 {
					sAB = sch.Sub(ai, bj)
				}
			}
			abPart := pc.fAB.At(i, j) + pc.bAB.At(i, j)
			cur := t.Lane(i, j)
			var lane11, lane10, lane01 []mat.Score
			if i > 0 && j > 0 {
				lane11 = t.Lane(i-1, j-1)
			}
			if i > 0 {
				lane10 = t.Lane(i-1, j)
			}
			if j > 0 {
				lane01 = t.Lane(i, j-1)
			}
			for k := sk.Lo; k < sk.Hi; k++ {
				if i == 0 && j == 0 && k == 0 {
					cur[0] = 0
					evaluated++
					continue
				}
				ub := abPart + pc.fAC.At(i, k) + pc.bAC.At(i, k) + pc.fBC.At(j, k) + pc.bBC.At(j, k)
				if ub < pc.bound {
					cur[k] = mat.NegInf
					continue
				}
				evaluated++
				best := mat.NegInf
				if k > 0 {
					ck := cc[k-1]
					if lane11 != nil {
						if v := lane11[k-1] + sAB + sch.Sub(ai, ck) + sch.Sub(bj, ck); v > best {
							best = v
						}
					}
					if lane10 != nil {
						if v := lane10[k-1] + sch.Sub(ai, ck) + ge2; v > best {
							best = v
						}
					}
					if lane01 != nil {
						if v := lane01[k-1] + sch.Sub(bj, ck) + ge2; v > best {
							best = v
						}
					}
					if v := cur[k-1] + ge2; v > best {
						best = v
					}
				}
				if lane11 != nil {
					if v := lane11[k] + sAB + ge2; v > best {
						best = v
					}
				}
				if lane10 != nil {
					if v := lane10[k] + ge2; v > best {
						best = v
					}
				}
				if lane01 != nil {
					if v := lane01[k] + ge2; v > best {
						best = v
					}
				}
				cur[k] = best
			}
		}
	}
	return evaluated
}

// refAffineFill is the fill phase of the pre-change affineDPMoves: seven
// zeroed-then-NegInf lattices, colBaseAffine and the guarded 7×7 state
// transition evaluated per cell.
func refAffineFill(ca, cb, cc []int8, sch *scoring.Scheme, q0 alignment.Move) [7]*mat.Tensor3 {
	n, m, p := len(ca), len(cb), len(cc)
	go_ := sch.GapOpen()
	var d [7]*mat.Tensor3
	for s := 0; s < 7; s++ {
		d[s] = mat.NewTensor3(n+1, m+1, p+1)
		d[s].Fill(mat.NegInf)
	}
	d[q0-1].Set(0, 0, 0, 0)
	for i := 0; i <= n; i++ {
		var ai int8
		if i > 0 {
			ai = ca[i-1]
		}
		for j := 0; j <= m; j++ {
			var bj int8
			if j > 0 {
				bj = cb[j-1]
			}
			for k := 0; k <= p; k++ {
				if i == 0 && j == 0 && k == 0 {
					continue
				}
				var ck int8
				if k > 0 {
					ck = cc[k-1]
				}
				for s := alignment.Move(1); s <= 7; s++ {
					di, dj, dk := moveDelta(s)
					pi, pj, pk := i-di, j-dj, k-dk
					if pi < 0 || pj < 0 || pk < 0 {
						continue
					}
					base := colBaseAffine(sch, s, ai, bj, ck)
					best := mat.NegInf
					for q := alignment.Move(1); q <= 7; q++ {
						pv := d[q-1].At(pi, pj, pk)
						if pv <= mat.NegInf/2 {
							continue
						}
						if v := pv + mat.Score(openCount[q][s])*go_; v > best {
							best = v
						}
					}
					if best > mat.NegInf/2 {
						d[s-1].Set(i, j, k, best+base)
					}
				}
			}
		}
	}
	return d
}

package core

import (
	"context"
	"fmt"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/wavefront"
)

// The affine aligner generalizes Gotoh's algorithm to three sequences.
// Each lattice cell carries seven states — the non-empty subsets of
// {A, B, C} that consumed a residue in the last column. Gap-open charges
// use the quasi-natural gap count (Altschul 1989): for each induced pair,
// a one-sided gap column pays GapOpen unless the previous column had the
// same one-sided pattern for that pair. The quasi-natural count equals the
// natural count except when a pairwise gap run is interrupted by columns
// gapped in both sequences of the pair, where it may charge an extra open;
// SPScoreAffine reports the natural score of the returned alignment, which
// is therefore never below Alignment.Score.

// openCount[q][s] is the number of induced pairs whose one-sided gap
// pattern in mask s differs from the pattern in the previous mask q; each
// such pair pays one GapOpen. q == 7 (all consume) doubles as the
// "before the first column" state.
var openCount [8][8]int8

func init() {
	pairBits := [3][2]alignment.Move{
		{alignment.ConsumeA, alignment.ConsumeB},
		{alignment.ConsumeA, alignment.ConsumeC},
		{alignment.ConsumeB, alignment.ConsumeC},
	}
	for q := 0; q < 8; q++ {
		for s := 1; s < 8; s++ {
			var n int8
			for _, pb := range pairBits {
				u := alignment.Move(s)&pb[0] != 0
				v := alignment.Move(s)&pb[1] != 0
				pu := alignment.Move(q)&pb[0] != 0
				pv := alignment.Move(q)&pb[1] != 0
				if (u && !v && !(pu && !pv)) || (!u && v && !(!pu && pv)) {
					n++
				}
			}
			openCount[q][s] = n
		}
	}
}

// colBaseAffine is the substitution-plus-gap-extend contribution of a
// column with mask s (gap opens are charged by the transition).
func colBaseAffine(sch *scoring.Scheme, s alignment.Move, ai, bj, ck int8) mat.Score {
	ge := sch.GapExtend()
	var total mat.Score
	addPair := func(u, v bool, x, y int8) {
		switch {
		case u && v:
			total += sch.Sub(x, y)
		case u || v:
			total += ge
		}
	}
	a := s&alignment.ConsumeA != 0
	b := s&alignment.ConsumeB != 0
	c := s&alignment.ConsumeC != 0
	addPair(a, b, ai, bj)
	addPair(a, c, ai, ck)
	addPair(b, c, bj, ck)
	return total
}

func moveDelta(s alignment.Move) (di, dj, dk int) {
	if s&alignment.ConsumeA != 0 {
		di = 1
	}
	if s&alignment.ConsumeB != 0 {
		dj = 1
	}
	if s&alignment.ConsumeC != 0 {
		dk = 1
	}
	return
}

// AlignAffine computes an optimal three-sequence alignment under the
// quasi-natural affine sum-of-pairs objective. With GapOpen == 0 it returns
// the same optimum as AlignFull. Memory is seven full lattices.
func AlignAffine(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options) (*alignment.Alignment, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return nil, err
	}
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	if 7*FullMatrixBytes(tr) > opt.maxBytes() {
		return nil, fmt.Errorf("%w: need %d bytes, cap %d", ErrTooLarge, 7*FullMatrixBytes(tr), opt.maxBytes())
	}
	if len(ca) == 0 && len(cb) == 0 && len(cc) == 0 {
		return &alignment.Alignment{Triple: tr, Moves: nil, Score: 0}, nil
	}
	moves, score, err := affineDPMoves(ctx, ca, cb, cc, sch, 7, 0)
	if err != nil {
		return nil, err
	}
	aln := &alignment.Alignment{Triple: tr, Moves: moves, Score: score}
	if err := aln.Validate(); err != nil {
		return nil, fmt.Errorf("core: affine alignment invalid: %w", err)
	}
	return aln, nil
}

// affineDPMoves solves the 7-state affine DP over a (sub-)box with
// explicit boundary states: q0 is the mask of the column immediately
// before the box (7 at the true origin), and sEnd, when non-zero,
// constrains the box's final column mask (used by the linear-space
// divide-and-conquer to glue sub-solutions without double-charging gap
// opens). It returns the move list and its quasi-natural score under
// those boundary conditions.
func affineDPMoves(ctx context.Context, ca, cb, cc []int8, sch *scoring.Scheme, q0, sEnd alignment.Move) ([]alignment.Move, mat.Score, error) {
	n, m, p := len(ca), len(cb), len(cc)

	if n == 0 && m == 0 && p == 0 {
		if sEnd != 0 && sEnd != q0 {
			return nil, 0, fmt.Errorf("core: empty affine box cannot end in state %s", sEnd)
		}
		return nil, 0, nil
	}

	// d[s-1] holds the best score of prefix alignments whose last column
	// has mask s. The origin is seeded in state q0 so that the first real
	// column charges opens relative to the enclosing context.
	st := newScoreTables(ca, cb, cc, sch)
	defer st.release()
	open := newAffineOpenTable(sch)
	var d [7]*mat.Tensor3
	for s := 0; s < 7; s++ {
		d[s] = mat.GetTensor3(n+1, m+1, p+1)
		d[s].Fill(mat.NegInf)
		defer mat.PutTensor3(d[s])
	}
	d[q0-1].Set(0, 0, 0, 0)

	sj := wavefront.Span{Lo: 0, Hi: m + 1}
	sk := wavefront.Span{Lo: 0, Hi: p + 1}
	for i := 0; i <= n; i++ {
		if err := checkCtx(ctx); err != nil {
			return nil, 0, err
		}
		fillRangeAffine(&d, st, ca, cb, cc, sch, &open, wavefront.Span{Lo: i, Hi: i + 1}, sj, sk)
	}

	return affineTraceback(d, ca, cb, cc, sch, sEnd)
}

// affineTraceback selects the final state (constrained by sEnd when
// non-zero) and recovers the move sequence from the seven state lattices.
func affineTraceback(d [7]*mat.Tensor3, ca, cb, cc []int8, sch *scoring.Scheme, sEnd alignment.Move) ([]alignment.Move, mat.Score, error) {
	n, m, p := len(ca), len(cb), len(cc)
	go_ := sch.GapOpen()
	var bestS alignment.Move
	best := mat.NegInf
	if sEnd != 0 {
		bestS, best = sEnd, d[sEnd-1].At(n, m, p)
	} else {
		bestS, best = 1, d[0].At(n, m, p)
		for s := alignment.Move(2); s <= 7; s++ {
			if v := d[s-1].At(n, m, p); v > best {
				best, bestS = v, s
			}
		}
	}
	if best <= mat.NegInf/2 {
		return nil, 0, fmt.Errorf("core: affine box (%d,%d,%d) infeasible for end state %s", n, m, p, sEnd)
	}
	moves := make([]alignment.Move, 0, n+m+p)
	i, j, k, s := n, m, p, bestS
	for i > 0 || j > 0 || k > 0 {
		var ai, bj, ck int8
		if i > 0 {
			ai = ca[i-1]
		}
		if j > 0 {
			bj = cb[j-1]
		}
		if k > 0 {
			ck = cc[k-1]
		}
		di, dj, dk := moveDelta(s)
		pi, pj, pk := i-di, j-dj, k-dk
		v := d[s-1].At(i, j, k)
		base := colBaseAffine(sch, s, ai, bj, ck)
		found := false
		for q := alignment.Move(1); q <= 7; q++ {
			pv := d[q-1].At(pi, pj, pk)
			if pv <= mat.NegInf/2 {
				continue
			}
			if pv+mat.Score(openCount[q][s])*go_+base == v {
				moves = append(moves, s)
				i, j, k, s = pi, pj, pk, q
				found = true
				break
			}
		}
		if !found {
			return nil, 0, fmt.Errorf("core: affine traceback stuck at (%d,%d,%d) state %s", i, j, k, s)
		}
	}
	reverseMoves(moves)
	return moves, best, nil
}

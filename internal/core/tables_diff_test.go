package core

import (
	"context"
	"testing"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/wavefront"
)

// Differential suite: the table-driven, boundary-peeled kernels must
// produce bit-identical lattices — and therefore identical scores and
// tracebacks — to the pre-optimization kernels preserved verbatim in
// reference_test.go, on every scheme, shape, and span decomposition.

// diffShapes covers degenerate boxes (all-empty, one empty axis, single
// residues) alongside uneven and cubic interiors.
var diffShapes = [][3]int{
	{0, 0, 0}, {1, 0, 0}, {0, 0, 4}, {0, 5, 3},
	{1, 1, 1}, {1, 7, 4}, {6, 5, 4}, {9, 3, 7}, {8, 8, 8},
}

// diffTriple builds a reproducible triple with the given lengths over the
// scheme's alphabet.
func diffTriple(sch *scoring.Scheme, seed int64, na, nb, nc int) seq.Triple {
	g := seq.NewGenerator(sch.Alphabet(), seed)
	return seq.Triple{
		A: g.Random("A", na),
		B: g.Random("B", nb),
		C: g.Random("C", nc),
	}
}

func linearDiffSchemes(t *testing.T) map[string]*scoring.Scheme {
	t.Helper()
	prot, err := scoring.BLOSUM62().WithGaps(0, -2)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*scoring.Scheme{
		"dna":      scoring.DNADefault(),
		"neutralN": scoring.DNANeutralN(),
		"blosum62": prot,
	}
}

func affineDiffSchemes(t *testing.T) map[string]*scoring.Scheme {
	t.Helper()
	dna, err := scoring.DNADefault().WithGaps(-4, -1)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*scoring.Scheme{
		"dna":      dna,
		"blosum62": scoring.BLOSUM62(),
	}
}

func wantTensorsEqual(t *testing.T, got, want *mat.Tensor3) {
	t.Helper()
	ni, nj, nk := want.Dims()
	for i := 0; i < ni; i++ {
		for j := 0; j < nj; j++ {
			for k := 0; k < nk; k++ {
				if g, w := got.At(i, j, k), want.At(i, j, k); g != w {
					t.Fatalf("cell (%d,%d,%d): got %d, want %d", i, j, k, g, w)
				}
			}
		}
	}
}

func wantPlanesEqual(t *testing.T, layer int, got, want *mat.Plane) {
	t.Helper()
	for j := 0; j < want.Rows(); j++ {
		for k := 0; k < want.Cols(); k++ {
			if g, w := got.At(j, k), want.At(j, k); g != w {
				t.Fatalf("layer %d cell (%d,%d): got %d, want %d", layer, j, k, g, w)
			}
		}
	}
}

// runBlocked3D invokes fill for every block of the box in lexicographic
// order, which respects all DP dependencies (each predecessor cell lives in
// a block with component-wise smaller-or-equal indices).
func runBlocked3D(n, m, p, bs int, fill func(si, sj, sk wavefront.Span)) {
	si := wavefront.Partition(n+1, bs)
	sj := wavefront.Partition(m+1, bs)
	sk := wavefront.Partition(p+1, bs)
	for _, bi := range si {
		for _, bj := range sj {
			for _, bk := range sk {
				fill(bi, bj, bk)
			}
		}
	}
}

func TestFillRangeMatchesReference(t *testing.T) {
	for name, sch := range linearDiffSchemes(t) {
		t.Run(name, func(t *testing.T) {
			for _, shape := range diffShapes {
				tr := diffTriple(sch, 1000+int64(shape[0]), shape[0], shape[1], shape[2])
				ca, cb, cc, err := prepare(tr, sch)
				if err != nil {
					t.Fatal(err)
				}
				n, m, p := len(ca), len(cb), len(cc)
				full := func() (si, sj, sk wavefront.Span) {
					return wavefront.Span{Lo: 0, Hi: n + 1}, wavefront.Span{Lo: 0, Hi: m + 1}, wavefront.Span{Lo: 0, Hi: p + 1}
				}
				want := mat.NewTensor3(n+1, m+1, p+1)
				si, sj, sk := full()
				refFillRange(want, ca, cb, cc, sch, si, sj, sk)

				st := newScoreTables(ca, cb, cc, sch)
				ge2 := 2 * sch.GapExtend()
				got := mat.NewTensor3(n+1, m+1, p+1)
				fillRange(got, st, ge2, si, sj, sk)
				wantTensorsEqual(t, got, want)

				// The same kernel applied block-wise must land on the same
				// lattice: sub-span entry points (Lo > 0) take the non-peeled
				// paths.
				blocked := mat.NewTensor3(n+1, m+1, p+1)
				runBlocked3D(n, m, p, 3, func(si, sj, sk wavefront.Span) {
					fillRange(blocked, st, ge2, si, sj, sk)
				})
				wantTensorsEqual(t, blocked, want)
				st.release()
			}
		})
	}
}

func TestFillPlaneRangeMatchesReference(t *testing.T) {
	for name, sch := range linearDiffSchemes(t) {
		t.Run(name, func(t *testing.T) {
			for _, shape := range diffShapes {
				tr := diffTriple(sch, 2000+int64(shape[1]), shape[0], shape[1], shape[2])
				ca, cb, cc, err := prepare(tr, sch)
				if err != nil {
					t.Fatal(err)
				}
				m, p := len(cb), len(cc)
				sj := wavefront.Span{Lo: 0, Hi: m + 1}
				sk := wavefront.Span{Lo: 0, Hi: p + 1}
				prof := newPairProfile(cc, sch)

				wantPrev, wantCur := mat.NewPlane(m+1, p+1), mat.NewPlane(m+1, p+1)
				gotPrev, gotCur := mat.NewPlane(m+1, p+1), mat.NewPlane(m+1, p+1)
				blkPrev, blkCur := mat.NewPlane(m+1, p+1), mat.NewPlane(m+1, p+1)

				layer := func(dstW, srcW, dstG, srcG, dstB, srcB *mat.Plane, i int) {
					var ai int8
					if i > 0 {
						ai = ca[i-1]
					}
					refFillPlaneRange(dstW, srcW, ai, cb, cc, sch, sj, sk)
					fillPlaneRange(dstG, srcG, ai, cb, sch, prof, sj, sk)
					runBlocked3D(0, m, p, 3, func(_, bj, bk wavefront.Span) {
						fillPlaneRange(dstB, srcB, ai, cb, sch, prof, bj, bk)
					})
					wantPlanesEqual(t, i, dstG, dstW)
					wantPlanesEqual(t, i, dstB, dstW)
				}
				layer(wantPrev, nil, gotPrev, nil, blkPrev, nil, 0)
				for i := 1; i <= len(ca); i++ {
					layer(wantCur, wantPrev, gotCur, gotPrev, blkCur, blkPrev, i)
					wantPrev, wantCur = wantCur, wantPrev
					gotPrev, gotCur = gotCur, gotPrev
					blkPrev, blkCur = blkCur, blkPrev
				}
				prof.release()
			}
		})
	}
}

func TestFillRangePrunedMatchesReference(t *testing.T) {
	sch := scoring.DNADefault()
	for _, shape := range diffShapes {
		tr := diffTriple(sch, 3000+int64(shape[2]), shape[0], shape[1], shape[2])
		ca, cb, cc, err := prepare(tr, sch)
		if err != nil {
			t.Fatal(err)
		}
		trivial, err := TrivialAlignment(tr, sch)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Score(context.Background(), tr, sch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// A loose bound admits everything, the trivial bound is the default,
		// and the exact optimum prunes hardest while staying valid.
		for _, bound := range []mat.Score{mat.NegInf / 4, trivial.Score, opt} {
			n, m, p := len(ca), len(cb), len(cc)
			pc := newRefPruneCtx(ca, cb, cc, sch, bound)
			bc := newBoundCtx(ca, cb, cc, sch, bound)
			si := wavefront.Span{Lo: 0, Hi: n + 1}
			sj := wavefront.Span{Lo: 0, Hi: m + 1}
			sk := wavefront.Span{Lo: 0, Hi: p + 1}
			want := mat.NewTensor3(n+1, m+1, p+1)
			wantEval := refFillRangePruned(want, ca, cb, cc, sch, pc, si, sj, sk)

			st := newScoreTables(ca, cb, cc, sch)
			ge2 := 2 * sch.GapExtend()
			got := mat.NewTensor3(n+1, m+1, p+1)
			gotEval := fillRangePruned(got, st, bc, ge2, si, sj, sk)
			if gotEval != wantEval {
				t.Fatalf("bound %d: evaluated %d cells, want %d", bound, gotEval, wantEval)
			}
			wantTensorsEqual(t, got, want)

			blocked := mat.NewTensor3(n+1, m+1, p+1)
			var blockedEval int64
			runBlocked3D(n, m, p, 3, func(si, sj, sk wavefront.Span) {
				blockedEval += fillRangePruned(blocked, st, bc, ge2, si, sj, sk)
			})
			if blockedEval != wantEval {
				t.Fatalf("bound %d: blocked evaluated %d cells, want %d", bound, blockedEval, wantEval)
			}
			wantTensorsEqual(t, blocked, want)
			st.release()
			pc.release()
			bc.release()
		}
	}
}

func TestAffineFillMatchesReference(t *testing.T) {
	for name, sch := range affineDiffSchemes(t) {
		t.Run(name, func(t *testing.T) {
			for _, shape := range diffShapes {
				if shape[0]+shape[1]+shape[2] > 18 {
					continue // the reference fill is O(49·nmp); keep it quick
				}
				tr := diffTriple(sch, 4000+int64(shape[0]+shape[1]), shape[0], shape[1], shape[2])
				ca, cb, cc, err := prepare(tr, sch)
				if err != nil {
					t.Fatal(err)
				}
				n, m, p := len(ca), len(cb), len(cc)
				for _, q0 := range []alignment.Move{alignment.MoveXXX, alignment.MoveGGX} {
					want := refAffineFill(ca, cb, cc, sch, q0)

					st := newScoreTables(ca, cb, cc, sch)
					open := newAffineOpenTable(sch)
					var got [7]*mat.Tensor3
					for s := 0; s < 7; s++ {
						got[s] = mat.NewTensor3(n+1, m+1, p+1)
						got[s].Fill(mat.NegInf)
					}
					got[q0-1].Set(0, 0, 0, 0)
					fillRangeAffine(&got, st, ca, cb, cc, sch, &open,
						wavefront.Span{Lo: 0, Hi: n + 1},
						wavefront.Span{Lo: 0, Hi: m + 1},
						wavefront.Span{Lo: 0, Hi: p + 1})
					for s := 0; s < 7; s++ {
						wantTensorsEqual(t, got[s], want[s])
					}

					var blocked [7]*mat.Tensor3
					for s := 0; s < 7; s++ {
						blocked[s] = mat.NewTensor3(n+1, m+1, p+1)
						blocked[s].Fill(mat.NegInf)
					}
					blocked[q0-1].Set(0, 0, 0, 0)
					runBlocked3D(n, m, p, 3, func(si, sj, sk wavefront.Span) {
						fillRangeAffine(&blocked, st, ca, cb, cc, sch, &open, si, sj, sk)
					})
					for s := 0; s < 7; s++ {
						wantTensorsEqual(t, blocked[s], want[s])
					}
					st.release()
				}
			}
		})
	}
}

// TestAlignersAgreeOnRandomTriples pins the public aligners to each other
// and (on tiny shapes) to the exponential brute-force scorer: every kernel
// sees the same tables, so every kernel must report the same optimum, and
// the deterministic tracebacks of the full-matrix aligners must coincide.
func TestAlignersAgreeOnRandomTriples(t *testing.T) {
	ctx := context.Background()
	sch := scoring.DNADefault()
	affSch, err := scoring.DNADefault().WithGaps(-4, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, shape := range diffShapes {
		tr := diffTriple(sch, 5000+int64(shape[0]+2*shape[1]), shape[0], shape[1], shape[2])
		full, err := AlignFull(ctx, tr, sch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkAlignment(t, full, sch)

		par, err := AlignParallel(ctx, tr, sch, Options{Workers: 3, BlockSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		if par.Score != full.Score {
			t.Fatalf("AlignParallel score %d, AlignFull %d", par.Score, full.Score)
		}
		if len(par.Moves) != len(full.Moves) {
			t.Fatalf("AlignParallel moves differ from AlignFull")
		}
		for i := range par.Moves {
			if par.Moves[i] != full.Moves[i] {
				t.Fatalf("AlignParallel move %d = %v, AlignFull %v", i, par.Moves[i], full.Moves[i])
			}
		}

		scoreOnly, err := Score(ctx, tr, sch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if scoreOnly != full.Score {
			t.Fatalf("Score %d, AlignFull %d", scoreOnly, full.Score)
		}

		pruned, _, err := AlignPruned(ctx, tr, sch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if pruned.Score != full.Score {
			t.Fatalf("AlignPruned score %d, AlignFull %d", pruned.Score, full.Score)
		}

		lin, err := AlignLinear(ctx, tr, sch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkAlignment(t, lin, sch)
		if lin.Score != full.Score {
			t.Fatalf("AlignLinear score %d, AlignFull %d", lin.Score, full.Score)
		}

		diag, err := AlignDiagonal(ctx, tr, sch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if diag.Score != full.Score {
			t.Fatalf("AlignDiagonal score %d, AlignFull %d", diag.Score, full.Score)
		}

		width := tr.A.Len() + tr.B.Len() + tr.C.Len() + 1
		banded, err := AlignBanded(ctx, tr, sch, Options{}, width)
		if err != nil {
			t.Fatal(err)
		}
		if banded.Score != full.Score {
			t.Fatalf("AlignBanded(width=%d) score %d, AlignFull %d", width, banded.Score, full.Score)
		}

		if tr.A.Len()+tr.B.Len()+tr.C.Len() <= 12 {
			brute, err := BruteForceScore(tr, sch)
			if err != nil {
				t.Fatal(err)
			}
			if brute != full.Score {
				t.Fatalf("BruteForceScore %d, AlignFull %d", brute, full.Score)
			}
		}

		// Affine: sequential vs wavefront must share both score and moves.
		aff, err := AlignAffine(ctx, tr, affSch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := aff.Validate(); err != nil {
			t.Fatalf("affine alignment invalid: %v", err)
		}
		if got := QuasiNaturalScore(aff, affSch); got != aff.Score {
			t.Fatalf("QuasiNaturalScore = %d, reported Score = %d", got, aff.Score)
		}
		affPar, err := AlignAffineParallel(ctx, tr, affSch, Options{Workers: 3, BlockSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		if affPar.Score != aff.Score {
			t.Fatalf("AlignAffineParallel score %d, AlignAffine %d", affPar.Score, aff.Score)
		}
		affLin, err := AlignAffineLinear(ctx, tr, affSch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if affLin.Score != aff.Score {
			t.Fatalf("AlignAffineLinear score %d, AlignAffine %d", affLin.Score, aff.Score)
		}
	}
}

// TestParallelKernelsBitIdenticalAcrossSchedules pins every parallel kernel
// to its sequential reference under the work-stealing scheduler with
// adaptive (non-cubic) tiles and across several worker counts: the schedule
// is non-deterministic, the outputs must not be. Moves are compared where
// the kernel's traceback is deterministic (the full-matrix aligners).
func TestParallelKernelsBitIdenticalAcrossSchedules(t *testing.T) {
	ctx := context.Background()
	sch := scoring.DNADefault()
	affSch, err := scoring.DNADefault().WithGaps(-4, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Larger shapes than diffShapes so adaptive tiles produce real grids.
	shapes := [][3]int{{14, 11, 9}, {25, 20, 30}, {40, 8, 33}}
	for _, shape := range shapes {
		tr := diffTriple(sch, 7000+int64(shape[0]+2*shape[1]), shape[0], shape[1], shape[2])
		full, err := AlignFull(ctx, tr, sch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		aff, err := AlignAffine(ctx, tr, affSch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, 4, 7} {
			// BlockSize 0 selects the adaptive non-cubic tiling.
			opt := Options{Workers: w}
			par, err := AlignParallel(ctx, tr, sch, opt)
			if err != nil {
				t.Fatal(err)
			}
			if par.Score != full.Score {
				t.Fatalf("shape %v w=%d: AlignParallel score %d, AlignFull %d", shape, w, par.Score, full.Score)
			}
			for i := range par.Moves {
				if par.Moves[i] != full.Moves[i] {
					t.Fatalf("shape %v w=%d: AlignParallel move %d = %v, AlignFull %v",
						shape, w, i, par.Moves[i], full.Moves[i])
				}
			}
			affPar, err := AlignAffineParallel(ctx, tr, affSch, opt)
			if err != nil {
				t.Fatal(err)
			}
			if affPar.Score != aff.Score {
				t.Fatalf("shape %v w=%d: AlignAffineParallel score %d, AlignAffine %d", shape, w, affPar.Score, aff.Score)
			}
			for i := range affPar.Moves {
				if affPar.Moves[i] != aff.Moves[i] {
					t.Fatalf("shape %v w=%d: AlignAffineParallel move %d = %v, AlignAffine %v",
						shape, w, i, affPar.Moves[i], aff.Moves[i])
				}
			}
			prunedPar, _, err := AlignPrunedParallel(ctx, tr, sch, opt)
			if err != nil {
				t.Fatal(err)
			}
			if prunedPar.Score != full.Score {
				t.Fatalf("shape %v w=%d: AlignPrunedParallel score %d, AlignFull %d", shape, w, prunedPar.Score, full.Score)
			}
			linPar, err := AlignParallelLinear(ctx, tr, sch, opt)
			if err != nil {
				t.Fatal(err)
			}
			if linPar.Score != full.Score {
				t.Fatalf("shape %v w=%d: AlignParallelLinear score %d, AlignFull %d", shape, w, linPar.Score, full.Score)
			}
			s, err := Score(ctx, tr, sch, opt)
			if err != nil {
				t.Fatal(err)
			}
			if s != full.Score {
				t.Fatalf("shape %v w=%d: Score %d, AlignFull %d", shape, w, s, full.Score)
			}
		}
	}
}

package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/alignment"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// maxInt3 is max(n, m, p) — the lower bound on alignment columns.
func maxInt3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

// TestColumnCountBounds: every algorithm's alignment has between
// max(n,m,p) and n+m+p columns.
func TestColumnCountBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(901))
	algos := map[string]func(seq.Triple) (*alignment.Alignment, error){
		"full": func(tr seq.Triple) (*alignment.Alignment, error) {
			return AlignFull(context.Background(), tr, dnaSch, Options{})
		},
		"parallel": func(tr seq.Triple) (*alignment.Alignment, error) {
			return AlignParallel(context.Background(), tr, dnaSch, Options{Workers: 3, BlockSize: 5})
		},
		"linear": func(tr seq.Triple) (*alignment.Alignment, error) {
			return AlignLinear(context.Background(), tr, dnaSch, Options{})
		},
		"diagonal": func(tr seq.Triple) (*alignment.Alignment, error) {
			return AlignDiagonal(context.Background(), tr, dnaSch, Options{Workers: 2})
		},
		"affine": func(tr seq.Triple) (*alignment.Alignment, error) {
			return AlignAffine(context.Background(), tr, dnaSch, Options{})
		},
		"banded": func(tr seq.Triple) (*alignment.Alignment, error) {
			return AlignBanded(context.Background(), tr, dnaSch, Options{}, 3)
		},
	}
	for trial := 0; trial < 10; trial++ {
		tr := randomTriple(rng, rng.Intn(15), rng.Intn(15), rng.Intn(15))
		lo := maxInt3(tr.A.Len(), tr.B.Len(), tr.C.Len())
		hi := tr.A.Len() + tr.B.Len() + tr.C.Len()
		for name, run := range algos {
			aln, err := run(tr)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if aln.Columns() < lo || aln.Columns() > hi {
				t.Fatalf("trial %d %s: %d columns, want in [%d, %d]", trial, name, aln.Columns(), lo, hi)
			}
		}
	}
}

// TestDeterministicTracebacks: sequential algorithms return identical move
// sequences on repeated runs (the parallel ones are only score-deterministic).
func TestDeterministicTracebacks(t *testing.T) {
	tr := relatedTriple(903, 25, 0.25)
	for name, run := range map[string]func() (*alignment.Alignment, error){
		"full":   func() (*alignment.Alignment, error) { return AlignFull(context.Background(), tr, dnaSch, Options{}) },
		"linear": func() (*alignment.Alignment, error) { return AlignLinear(context.Background(), tr, dnaSch, Options{}) },
		"affine": func() (*alignment.Alignment, error) { return AlignAffine(context.Background(), tr, dnaSch, Options{}) },
	} {
		a, err := run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Moves) != len(b.Moves) {
			t.Fatalf("%s: non-deterministic column counts %d vs %d", name, len(a.Moves), len(b.Moves))
		}
		for i := range a.Moves {
			if a.Moves[i] != b.Moves[i] {
				t.Fatalf("%s: non-deterministic traceback at column %d", name, i)
			}
		}
	}
}

// TestParallelTracebackMatchesSequential: the parallel full-matrix lattice
// is bitwise the same as the sequential one, so even the traceback agrees.
func TestParallelTracebackMatchesSequential(t *testing.T) {
	tr := relatedTriple(905, 30, 0.2)
	seqAln, err := AlignFull(context.Background(), tr, dnaSch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	parAln, err := AlignParallel(context.Background(), tr, dnaSch, Options{Workers: 4, BlockSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqAln.Moves) != len(parAln.Moves) {
		t.Fatalf("column counts differ: %d vs %d", len(seqAln.Moves), len(parAln.Moves))
	}
	for i := range seqAln.Moves {
		if seqAln.Moves[i] != parAln.Moves[i] {
			t.Fatalf("tracebacks diverge at column %d", i)
		}
	}
}

// TestScoreMonotoneInGapPenalty: harsher gap penalties never raise the
// optimum when the shapes force gaps.
func TestScoreMonotoneInGapPenalty(t *testing.T) {
	rng := rand.New(rand.NewSource(907))
	for trial := 0; trial < 10; trial++ {
		tr := randomTriple(rng, 4+rng.Intn(10), 8+rng.Intn(10), rng.Intn(6))
		mild, err := scoring.MatchMismatch(seq.DNA, 2, -1, -1)
		if err != nil {
			t.Fatal(err)
		}
		harsh, err := scoring.MatchMismatch(seq.DNA, 2, -1, -6)
		if err != nil {
			t.Fatal(err)
		}
		sMild, err := Score(context.Background(), tr, mild, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sHarsh, err := Score(context.Background(), tr, harsh, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sHarsh > sMild {
			t.Fatalf("trial %d: harsher gaps raised score: %d > %d", trial, sHarsh, sMild)
		}
	}
}

// TestAlignmentNeverHasAllGapColumn across algorithms (Validate enforces
// this, but assert it directly for the parallel paths).
func TestAlignmentNeverHasAllGapColumn(t *testing.T) {
	tr := relatedTriple(909, 20, 0.4)
	for _, run := range []func() (*alignment.Alignment, error){
		func() (*alignment.Alignment, error) {
			return AlignParallel(context.Background(), tr, dnaSch, Options{Workers: 5})
		},
		func() (*alignment.Alignment, error) {
			return AlignParallelLinear(context.Background(), tr, dnaSch, Options{Workers: 5})
		},
	} {
		aln, err := run()
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range aln.Moves {
			if !m.Valid() {
				t.Fatalf("column %d invalid: %v", i, m)
			}
		}
	}
}

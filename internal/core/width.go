package core

import (
	"math"

	"repro/internal/scoring"
	"repro/internal/seq"
)

// Cell-width safety: the planner (internal/plan) negotiates an int16
// lattice when the problem's score bound provably fits, and the width-aware
// kernels re-verify that proof here before narrowing. The bound is simple:
// every lattice cell is the score of an alignment of prefixes, an alignment
// has at most n+m+p columns (each consumes at least one residue), and one
// column's contribution is bounded by MaxAbsColumn. The candidate sums the
// max chains compare are a predecessor cell plus one column, so they obey
// the same bound and the interior arithmetic can never wrap.
//
// Affine schemes never narrow: their kernels seed the NegInf sentinel,
// which exists only at Score width.

// MaxAbsColumn bounds the absolute sum-of-pairs contribution of one
// alignment column under sch's linear-gap model: 3·maxAbsSub for a
// three-residue column, maxAbsSub + 2·|gapExtend| when gaps appear.
func MaxAbsColumn(sch *scoring.Scheme) int64 {
	mas := int64(sch.MaxAbsSub())
	ge := int64(sch.GapExtend())
	if ge < 0 {
		ge = -ge
	}
	b := mas + 2*ge
	if 3*mas > b {
		b = 3 * mas
	}
	return b
}

// Int16SafeBound reports whether totalLen alignment columns, each bounded
// by maxAbsColumn, provably fit an int16 cell. Division instead of
// multiplication keeps adversarially long sequences from wrapping the
// check itself.
func Int16SafeBound(totalLen, maxAbsColumn uint64) bool {
	if maxAbsColumn == 0 {
		return true
	}
	return totalLen <= uint64(math.MaxInt16)/maxAbsColumn
}

// Int16Safe reports whether the linear-gap DP over tr under sch — every
// lattice cell and every candidate sum in the max chains — provably fits
// an int16 lattice. Affine schemes and incomplete triples never qualify.
func Int16Safe(tr seq.Triple, sch *scoring.Scheme) bool {
	if sch == nil || sch.Affine() {
		return false
	}
	if tr.A == nil || tr.B == nil || tr.C == nil {
		return false
	}
	total := uint64(tr.A.Len()) + uint64(tr.B.Len()) + uint64(tr.C.Len())
	return Int16SafeBound(total, uint64(MaxAbsColumn(sch)))
}

// useInt16 is the kernel-side dispatch test: the caller asked for a 16-bit
// lattice and the problem provably fits one. Kernels fall back to Score
// width silently otherwise, so a stale or hostile Options.CellWidth can
// cost bandwidth but never correctness.
func useInt16(opt Options, sch *scoring.Scheme, ca, cb, cc []int8) bool {
	if opt.CellWidth != 16 || sch.Affine() {
		return false
	}
	total := uint64(len(ca)) + uint64(len(cb)) + uint64(len(cc))
	return Int16SafeBound(total, uint64(MaxAbsColumn(sch)))
}

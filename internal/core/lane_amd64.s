//go:build amd64

#include "textflag.h"

// CPUID/XGETBV helpers for the one-time AVX2 feature probe.

// func cpuidEx(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidEx(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// laneFill16 fills a.n interior cells (a.n a positive multiple of 16) of
// one k-lane at int16 width, 16 cells per step. All six data pointers
// address the already-filled carried cell (lane index lo-1); the cells
// written are at element offsets 1..n from a.cur.
//
// Per 16-cell block the 7-move recurrence is computed in two passes:
//
//   pass 1   m[k] = max of the six moves that read only completed lanes
//            (XXX, XGX, GXX, XXG, XGG, GXG) — pure vertical SIMD.
//   pass 2   the loop-carried GGX chain w[k] = max(m[k], w[k-1]+ge2) is a
//            max-plus prefix scan: log2(16) doubling steps shift the
//            vector left by 1, 2, 4, then 8 lanes (shifting in -32768),
//            add s·ge2, and take the element-wise max; a final step folds
//            in the carry from the previous block via the precomputed
//            (1..16)·ge2 ramp.
//
// Shifted-in -32768 lanes use saturating adds (VPADDSW) so they can never
// wrap into winners; genuine candidates are in range by the planner's
// width negotiation, so saturation never alters a real value. Pass 1 uses
// wrapping adds (VPADDW), exactly matching the scalar kernel's proven
// non-overflowing arithmetic.
//
// func laneFill16(a *laneArgs16)
TEXT ·laneFill16(SB), NOSPLIT, $0-8
	MOVQ a+0(FP), AX
	MOVQ 0(AX), DI            // cur
	MOVQ 8(AX), R8            // lane11
	MOVQ 16(AX), R9           // lane10
	MOVQ 24(AX), R10          // lane01
	MOVQ 32(AX), R11          // acRow
	MOVQ 40(AX), R12          // bcRow
	MOVQ 48(AX), CX           // n
	VPCMPEQW Y0, Y0, Y0
	VPSLLW $15, Y0, Y0        // Y0 = -32768 in every lane
	VMOVDQU 72(AX), Y1        // Y1 = carry ramp (1..16)·ge2
	VPBROADCASTW 56(AX), Y2   // Y2 = sAB
	VPBROADCASTW 58(AX), Y3   // Y3 = ge2
	VPBROADCASTW 60(AX), Y4   // Y4 = 2·ge2
	VPBROADCASTW 62(AX), Y5   // Y5 = 4·ge2
	VPBROADCASTW 64(AX), Y6   // Y6 = 8·ge2
	XORQ BX, BX               // byte offset of the carried cell

loop16:
	// Pass 1: the six non-carried moves.
	VMOVDQU (R8)(BX*1), Y8    // v11 = lane11[k-1]
	VMOVDQU 2(R8)(BX*1), Y9   // n11 = lane11[k]
	VMOVDQU (R9)(BX*1), Y10   // v10
	VMOVDQU 2(R9)(BX*1), Y11  // n10
	VMOVDQU (R10)(BX*1), Y12  // v01
	VMOVDQU 2(R10)(BX*1), Y13 // n01
	VMOVDQU 2(R11)(BX*1), Y14 // ac[k]
	VMOVDQU 2(R12)(BX*1), Y15 // bc[k]
	VPADDW Y2, Y8, Y8         // v11+sAB
	VPADDW Y14, Y8, Y8
	VPADDW Y15, Y8, Y8        // XXX = v11+sAB+ac+bc
	VPADDW Y2, Y9, Y9         // XXG' = n11+sAB
	VPADDW Y14, Y10, Y10      // XGX' = v10+ac
	VPADDW Y15, Y12, Y12      // GXX' = v01+bc
	VPMAXSW Y11, Y13, Y7      // max(XGG', GXG') = max(n10, n01)
	VPMAXSW Y9, Y7, Y7
	VPMAXSW Y10, Y7, Y7
	VPMAXSW Y12, Y7, Y7
	VPADDW Y3, Y7, Y7         // all gapped moves share the +ge2
	VPMAXSW Y8, Y7, Y7        // m

	// Pass 2: max-plus prefix scan of the GGX chain.
	VPERM2I128 $0x20, Y7, Y0, Y8 // [minf.lo, m.lo]
	VPALIGNR $14, Y8, Y7, Y9     // m shifted left one lane
	VPADDSW Y3, Y9, Y9
	VPMAXSW Y9, Y7, Y7
	VPERM2I128 $0x20, Y7, Y0, Y8
	VPALIGNR $12, Y8, Y7, Y9     // two lanes
	VPADDSW Y4, Y9, Y9
	VPMAXSW Y9, Y7, Y7
	VPERM2I128 $0x20, Y7, Y0, Y8
	VPALIGNR $8, Y8, Y7, Y9      // four lanes
	VPADDSW Y5, Y9, Y9
	VPMAXSW Y9, Y7, Y7
	VPERM2I128 $0x20, Y7, Y0, Y8 // eight lanes is a half swap
	VPADDSW Y6, Y8, Y8
	VPMAXSW Y8, Y7, Y7

	// Fold in the carry from the previous cell.
	VPBROADCASTW (DI)(BX*1), Y8
	VPADDSW Y1, Y8, Y8
	VPMAXSW Y8, Y7, Y7
	VMOVDQU Y7, 2(DI)(BX*1)

	ADDQ $32, BX
	SUBQ $16, CX
	JNZ loop16
	VZEROUPPER
	RET

// laneFill32 is laneFill16 at int32 width: 8 cells per step, doubling
// shifts of 1, 2, then 4 lanes. AVX2 has no saturating dword add, so the
// shifted-in fill is -1<<30 rather than MinInt32; the caller guarantees
// (via int32ScanSafe) that no genuine candidate comes near ±1<<30, which
// keeps the fill lanes strictly below every real value without wrapping.
//
// func laneFill32(a *laneArgs32)
TEXT ·laneFill32(SB), NOSPLIT, $0-8
	MOVQ a+0(FP), AX
	MOVQ 0(AX), DI            // cur
	MOVQ 8(AX), R8            // lane11
	MOVQ 16(AX), R9           // lane10
	MOVQ 24(AX), R10          // lane01
	MOVQ 32(AX), R11          // acRow
	MOVQ 40(AX), R12          // bcRow
	MOVQ 48(AX), CX           // n
	VPCMPEQD Y0, Y0, Y0
	VPSLLD $30, Y0, Y0        // Y0 = -1<<30 in every lane
	VMOVDQU 72(AX), Y1        // Y1 = carry ramp (1..8)·ge2
	VPBROADCASTD 56(AX), Y2   // Y2 = sAB
	VPBROADCASTD 60(AX), Y3   // Y3 = ge2
	VPBROADCASTD 64(AX), Y4   // Y4 = 2·ge2
	VPBROADCASTD 68(AX), Y5   // Y5 = 4·ge2
	XORQ BX, BX               // byte offset of the carried cell

loop8:
	// Pass 1: the six non-carried moves.
	VMOVDQU (R8)(BX*1), Y8    // v11
	VMOVDQU 4(R8)(BX*1), Y9   // n11
	VMOVDQU (R9)(BX*1), Y10   // v10
	VMOVDQU 4(R9)(BX*1), Y11  // n10
	VMOVDQU (R10)(BX*1), Y12  // v01
	VMOVDQU 4(R10)(BX*1), Y13 // n01
	VMOVDQU 4(R11)(BX*1), Y14 // ac[k]
	VMOVDQU 4(R12)(BX*1), Y15 // bc[k]
	VPADDD Y2, Y8, Y8
	VPADDD Y14, Y8, Y8
	VPADDD Y15, Y8, Y8        // XXX
	VPADDD Y2, Y9, Y9
	VPADDD Y14, Y10, Y10
	VPADDD Y15, Y12, Y12
	VPMAXSD Y11, Y13, Y7
	VPMAXSD Y9, Y7, Y7
	VPMAXSD Y10, Y7, Y7
	VPMAXSD Y12, Y7, Y7
	VPADDD Y3, Y7, Y7
	VPMAXSD Y8, Y7, Y7        // m

	// Pass 2: max-plus prefix scan.
	VPERM2I128 $0x20, Y7, Y0, Y8 // [fill.lo, m.lo]
	VPALIGNR $12, Y8, Y7, Y9     // one lane
	VPADDD Y3, Y9, Y9
	VPMAXSD Y9, Y7, Y7
	VPERM2I128 $0x20, Y7, Y0, Y8
	VPALIGNR $8, Y8, Y7, Y9      // two lanes
	VPADDD Y4, Y9, Y9
	VPMAXSD Y9, Y7, Y7
	VPERM2I128 $0x20, Y7, Y0, Y8 // four lanes is a half swap
	VPADDD Y5, Y8, Y8
	VPMAXSD Y8, Y7, Y7

	// Fold in the carry from the previous cell.
	VPBROADCASTD (DI)(BX*1), Y8
	VPADDD Y1, Y8, Y8
	VPMAXSD Y8, Y7, Y7
	VMOVDQU Y7, 4(DI)(BX*1)

	ADDQ $32, BX
	SUBQ $8, CX
	JNZ loop8
	VZEROUPPER
	RET

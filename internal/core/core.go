// Package core implements exact optimal three-sequence alignment — the
// primary contribution of the reproduced paper — as a family of algorithms
// over the same objective:
//
//   - AlignFull: sequential full-matrix 3D dynamic programming with
//     traceback. O(n·m·p) time and space.
//   - AlignParallel: the paper's parallel algorithm. The 3D lattice is
//     tiled into blocks evaluated in wavefront order by a goroutine pool;
//     blocks on an anti-diagonal plane are independent.
//   - AlignLinear: 3D Hirschberg divide-and-conquer; O(n·m·p) time with
//     only O(m·p) working memory, which is what makes long sequences
//     feasible.
//   - AlignParallelLinear: the Hirschberg recursion with every plane sweep
//     parallelized by a 2D blocked wavefront, and independent sub-problems
//     solved concurrently.
//   - AlignAffine: the 7-state generalization of Gotoh's algorithm with
//     quasi-natural affine gap costs.
//   - AlignPruned: full-matrix DP restricted to the Carrillo–Lipman
//     admissible region derived from pairwise projection bounds.
//
// All algorithms maximize the linear-gap sum-of-pairs objective defined by
// a scoring.Scheme (AlignAffine maximizes the affine variant) and, except
// for the heuristically bounded pruning statistics, return identical
// optimal scores.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/wavefront"
)

// Options tunes the algorithms. The zero value is ready to use.
type Options struct {
	// Workers is the goroutine pool size for the parallel algorithms;
	// non-positive means GOMAXPROCS.
	Workers int
	// BlockSize is the tile edge length for blocked wavefront execution;
	// non-positive means DefaultBlockSize.
	BlockSize int
	// MaxBytes caps the score-lattice allocation; non-positive means
	// DefaultMaxBytes. Algorithms return ErrTooLarge instead of attempting
	// a larger allocation.
	MaxBytes int64
}

// DefaultBlockSize is the tile edge used when Options.BlockSize is unset.
// 16³ cells keep a block's working set inside L1 while leaving enough
// blocks per anti-diagonal to feed the pool (the F3 experiment sweeps this
// choice).
const DefaultBlockSize = 16

// DefaultMaxBytes is the default lattice allocation cap (4 GiB).
const DefaultMaxBytes int64 = 4 << 30

// ErrTooLarge is returned when an algorithm would exceed Options.MaxBytes.
var ErrTooLarge = errors.New("core: score lattice exceeds memory cap")

// checkCtx translates a done context into the error every kernel returns at
// its cancellation points. Sequential kernels poll it at plane boundaries;
// parallel kernels inherit the per-block polling of the wavefront
// scheduler.
func checkCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: alignment cancelled: %w", err)
	}
	return nil
}

func (o Options) workers() int { return wavefront.Workers(o.Workers) }

func (o Options) blockSize() int {
	if o.BlockSize <= 0 {
		return DefaultBlockSize
	}
	return o.BlockSize
}

func (o Options) maxBytes() int64 {
	if o.MaxBytes <= 0 {
		return DefaultMaxBytes
	}
	return o.MaxBytes
}

// FullMatrixBytes reports the lattice allocation AlignFull and
// AlignParallel perform for the given triple; the T2 experiment tabulates
// it against LinearBytes.
func FullMatrixBytes(tr seq.Triple) int64 {
	return mat.Tensor3Bytes(tr.A.Len()+1, tr.B.Len()+1, tr.C.Len()+1)
}

// LinearBytes reports the peak lattice allocation of AlignLinear: two
// (m+1)×(p+1) planes for each of the forward and backward sweeps.
func LinearBytes(tr seq.Triple) int64 {
	return 4 * mat.PlaneBytes(tr.B.Len()+1, tr.C.Len()+1)
}

// colXXX is the sum-of-pairs contribution of a column consuming residues in
// all three sequences.
func colXXX(sch *scoring.Scheme, ai, bj, ck int8) mat.Score {
	return sch.Sub(ai, bj) + sch.Sub(ai, ck) + sch.Sub(bj, ck)
}

// fillRange computes every lattice cell in the box si×sj×sk in
// lexicographic order. The caller guarantees all predecessor cells outside
// the box are already computed (true for sequential whole-lattice fills and
// for wavefront-scheduled blocks).
func fillRange(t *mat.Tensor3, ca, cb, cc []int8, sch *scoring.Scheme, si, sj, sk wavefront.Span) {
	ge2 := 2 * sch.GapExtend()
	for i := si.Lo; i < si.Hi; i++ {
		var ai int8
		if i > 0 {
			ai = ca[i-1]
		}
		for j := sj.Lo; j < sj.Hi; j++ {
			var bj int8
			var sAB mat.Score
			if j > 0 {
				bj = cb[j-1]
				if i > 0 {
					sAB = sch.Sub(ai, bj)
				}
			}
			var lane11, lane10, lane01 []mat.Score
			if i > 0 && j > 0 {
				lane11 = t.Lane(i-1, j-1)
			}
			if i > 0 {
				lane10 = t.Lane(i-1, j)
			}
			if j > 0 {
				lane01 = t.Lane(i, j-1)
			}
			cur := t.Lane(i, j)
			for k := sk.Lo; k < sk.Hi; k++ {
				if i == 0 && j == 0 && k == 0 {
					cur[0] = 0
					continue
				}
				best := mat.NegInf
				if k > 0 {
					ck := cc[k-1]
					if lane11 != nil {
						if v := lane11[k-1] + sAB + sch.Sub(ai, ck) + sch.Sub(bj, ck); v > best {
							best = v
						}
					}
					if lane10 != nil {
						if v := lane10[k-1] + sch.Sub(ai, ck) + ge2; v > best {
							best = v
						}
					}
					if lane01 != nil {
						if v := lane01[k-1] + sch.Sub(bj, ck) + ge2; v > best {
							best = v
						}
					}
					if v := cur[k-1] + ge2; v > best {
						best = v
					}
				}
				if lane11 != nil {
					if v := lane11[k] + sAB + ge2; v > best {
						best = v
					}
				}
				if lane10 != nil {
					if v := lane10[k] + ge2; v > best {
						best = v
					}
				}
				if lane01 != nil {
					if v := lane01[k] + ge2; v > best {
						best = v
					}
				}
				cur[k] = best
			}
		}
	}
}

// tracebackTensor recovers one optimal move sequence from a filled lattice
// by re-evaluating which predecessor produced each cell's value.
func tracebackTensor(t *mat.Tensor3, ca, cb, cc []int8, sch *scoring.Scheme) ([]alignment.Move, error) {
	ge2 := 2 * sch.GapExtend()
	i, j, k := len(ca), len(cb), len(cc)
	moves := make([]alignment.Move, 0, i+j+k)
	for i > 0 || j > 0 || k > 0 {
		v := t.At(i, j, k)
		switch {
		case i > 0 && j > 0 && k > 0 &&
			v == t.At(i-1, j-1, k-1)+colXXX(sch, ca[i-1], cb[j-1], cc[k-1]):
			moves = append(moves, alignment.MoveXXX)
			i, j, k = i-1, j-1, k-1
		case i > 0 && j > 0 && v == t.At(i-1, j-1, k)+sch.Sub(ca[i-1], cb[j-1])+ge2:
			moves = append(moves, alignment.MoveXXG)
			i, j = i-1, j-1
		case i > 0 && k > 0 && v == t.At(i-1, j, k-1)+sch.Sub(ca[i-1], cc[k-1])+ge2:
			moves = append(moves, alignment.MoveXGX)
			i, k = i-1, k-1
		case j > 0 && k > 0 && v == t.At(i, j-1, k-1)+sch.Sub(cb[j-1], cc[k-1])+ge2:
			moves = append(moves, alignment.MoveGXX)
			j, k = j-1, k-1
		case i > 0 && v == t.At(i-1, j, k)+ge2:
			moves = append(moves, alignment.MoveXGG)
			i--
		case j > 0 && v == t.At(i, j-1, k)+ge2:
			moves = append(moves, alignment.MoveGXG)
			j--
		case k > 0 && v == t.At(i, j, k-1)+ge2:
			moves = append(moves, alignment.MoveGGX)
			k--
		default:
			return nil, fmt.Errorf("core: traceback stuck at (%d,%d,%d)", i, j, k)
		}
	}
	reverseMoves(moves)
	return moves, nil
}

func reverseMoves(m []alignment.Move) {
	for l, r := 0, len(m)-1; l < r; l, r = l+1, r-1 {
		m[l], m[r] = m[r], m[l]
	}
}

func prepare(tr seq.Triple, sch *scoring.Scheme) (ca, cb, cc []int8, err error) {
	if err := tr.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if sch == nil {
		return nil, nil, nil, fmt.Errorf("core: nil scoring scheme")
	}
	if sch.Alphabet() != tr.A.Alphabet() {
		return nil, nil, nil, fmt.Errorf("core: scheme alphabet %q does not match sequences (%q)",
			sch.Alphabet().Name(), tr.A.Alphabet().Name())
	}
	return tr.A.Codes(), tr.B.Codes(), tr.C.Codes(), nil
}

// AlignFull computes an optimal alignment with the sequential full-matrix
// algorithm. The context is polled at every i-plane boundary.
func AlignFull(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options) (*alignment.Alignment, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return nil, err
	}
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	if FullMatrixBytes(tr) > opt.maxBytes() {
		return nil, fmt.Errorf("%w: need %d bytes, cap %d", ErrTooLarge, FullMatrixBytes(tr), opt.maxBytes())
	}
	t := mat.NewTensor3(len(ca)+1, len(cb)+1, len(cc)+1)
	sj := wavefront.Span{Lo: 0, Hi: len(cb) + 1}
	sk := wavefront.Span{Lo: 0, Hi: len(cc) + 1}
	for i := 0; i <= len(ca); i++ {
		if err := checkCtx(ctx); err != nil {
			return nil, err
		}
		fillRange(t, ca, cb, cc, sch, wavefront.Span{Lo: i, Hi: i + 1}, sj, sk)
	}
	moves, err := tracebackTensor(t, ca, cb, cc, sch)
	if err != nil {
		return nil, err
	}
	return &alignment.Alignment{Triple: tr, Moves: moves, Score: t.At(len(ca), len(cb), len(cc))}, nil
}

// AlignParallel computes the same optimum as AlignFull using the blocked
// wavefront schedule over a goroutine pool — the paper's parallel
// algorithm. The full lattice is retained, so traceback is exact.
// Cancellation is checked per block by the wavefront scheduler.
func AlignParallel(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options) (*alignment.Alignment, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return nil, err
	}
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	if FullMatrixBytes(tr) > opt.maxBytes() {
		return nil, fmt.Errorf("%w: need %d bytes, cap %d", ErrTooLarge, FullMatrixBytes(tr), opt.maxBytes())
	}
	t := mat.NewTensor3(len(ca)+1, len(cb)+1, len(cc)+1)
	bs := opt.blockSize()
	si := wavefront.Partition(len(ca)+1, bs)
	sj := wavefront.Partition(len(cb)+1, bs)
	sk := wavefront.Partition(len(cc)+1, bs)
	if err := wavefront.Run3DContext(ctx, len(si), len(sj), len(sk), opt.workers(), func(bi, bj, bk int) {
		fillRange(t, ca, cb, cc, sch, si[bi], sj[bj], sk[bk])
	}); err != nil {
		return nil, err
	}
	moves, err := tracebackTensor(t, ca, cb, cc, sch)
	if err != nil {
		return nil, err
	}
	return &alignment.Alignment{Triple: tr, Moves: moves, Score: t.At(len(ca), len(cb), len(cc))}, nil
}

// Package core implements exact optimal three-sequence alignment — the
// primary contribution of the reproduced paper — as a family of algorithms
// over the same objective:
//
//   - AlignFull: sequential full-matrix 3D dynamic programming with
//     traceback. O(n·m·p) time and space.
//   - AlignParallel: the paper's parallel algorithm. The 3D lattice is
//     tiled into blocks evaluated in wavefront order by a goroutine pool;
//     blocks on an anti-diagonal plane are independent.
//   - AlignLinear: 3D Hirschberg divide-and-conquer; O(n·m·p) time with
//     only O(m·p) working memory, which is what makes long sequences
//     feasible.
//   - AlignParallelLinear: the Hirschberg recursion with every plane sweep
//     parallelized by a 2D blocked wavefront, and independent sub-problems
//     solved concurrently.
//   - AlignAffine: the 7-state generalization of Gotoh's algorithm with
//     quasi-natural affine gap costs.
//   - AlignPruned: full-matrix DP restricted to the Carrillo–Lipman
//     admissible region derived from pairwise projection bounds.
//
// All algorithms maximize the linear-gap sum-of-pairs objective defined by
// a scoring.Scheme (AlignAffine maximizes the affine variant) and, except
// for the heuristically bounded pruning statistics, return identical
// optimal scores.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/alignment"
	"repro/internal/faultpoint"
	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/wavefront"
)

// fpFill is the kernel-interior fault point, checked once per block fill
// (never per cell — the interior loops stay branch-free). A fired hit
// panics inside the block function, which is exactly the fault the
// wavefront scheduler's panic containment and the batch layer's per-item
// recovery exist to absorb.
var fpFill = faultpoint.New("core.fill.block")

// Options tunes the algorithms. The zero value is ready to use.
type Options struct {
	// Workers is the goroutine pool size for the parallel algorithms;
	// non-positive means GOMAXPROCS.
	Workers int
	// BlockSize is the tile edge length for blocked wavefront execution;
	// non-positive means DefaultBlockSize.
	BlockSize int
	// MaxBytes caps the score-lattice allocation; non-positive means
	// DefaultMaxBytes. Algorithms return ErrTooLarge instead of attempting
	// a larger allocation.
	MaxBytes int64
	// TileDims, when all three edges are positive, pins the blocked-
	// wavefront tile shape exactly — the hook the execution planner
	// (internal/plan) uses to hand a pre-negotiated shape to the kernel.
	// It outranks BlockSize; the zero value defers to BlockSize or the
	// adaptive heuristic.
	TileDims [3]int
	// CellWidth selects the lattice cell storage width in bits for the
	// width-aware kernels (AlignFull, AlignParallel and their packed
	// variants): 16 requests an int16 lattice, 0 or 32 the default int32.
	// The kernels re-verify the request with the Int16Safe bound and keep
	// int32 silently when the narrow width could overflow, so a stale or
	// hostile value can cost bandwidth but never correctness.
	CellWidth int
}

// DefaultBlockSize is the tile edge used when Options.BlockSize is unset.
// 16³ cells keep a block's working set inside L1 while leaving enough
// blocks per anti-diagonal to feed the pool (the F3 experiment sweeps this
// choice).
const DefaultBlockSize = 16

// DefaultMaxBytes is the default lattice allocation cap (4 GiB).
const DefaultMaxBytes int64 = 4 << 30

// ErrTooLarge is returned when an algorithm would exceed Options.MaxBytes.
var ErrTooLarge = errors.New("core: score lattice exceeds memory cap")

// checkCtx translates a done context into the error every kernel returns at
// its cancellation points. Sequential kernels poll it at plane boundaries;
// parallel kernels inherit the per-block polling of the wavefront
// scheduler.
func checkCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: alignment cancelled: %w", err)
	}
	return nil
}

func (o Options) workers() int { return wavefront.Workers(o.Workers) }

func (o Options) maxBytes() int64 {
	if o.MaxBytes <= 0 {
		return DefaultMaxBytes
	}
	return o.MaxBytes
}

// FullMatrixBytes reports the lattice allocation AlignFull and
// AlignParallel perform for the given triple; the T2 experiment tabulates
// it against LinearBytes.
func FullMatrixBytes(tr seq.Triple) int64 {
	return mat.Tensor3Bytes(tr.A.Len()+1, tr.B.Len()+1, tr.C.Len()+1)
}

// LinearBytes reports the peak lattice allocation of AlignLinear: two
// (m+1)×(p+1) planes for each of the forward and backward sweeps.
func LinearBytes(tr seq.Triple) int64 {
	return 4 * mat.PlaneBytes(tr.B.Len()+1, tr.C.Len()+1)
}

// colXXX is the sum-of-pairs contribution of a column consuming residues in
// all three sequences.
func colXXX(sch *scoring.Scheme, ai, bj, ck int8) mat.Score {
	return sch.Sub(ai, bj) + sch.Sub(ai, ck) + sch.Sub(bj, ck)
}

// fillRange computes every lattice cell in the box si×sj×sk in
// lexicographic order. The caller guarantees all predecessor cells outside
// the box are already computed (true for sequential whole-lattice fills and
// for wavefront-scheduled blocks). Pair scores come from the precomputed
// tables; ge2 is 2·GapExtend.
//
// The box is peeled into explicit boundary passes (i == 0 plane, j == 0
// row, k == 0 column) and a branch-minimal interior loop, so the interior
// carries no per-cell boundary tests and no nil-lane checks.
func fillRange[T mat.Cell](t *mat.Tensor3Of[T], st *scoreTablesOf[T], ge2 T, si, sj, sk wavefront.Span) {
	if fpFill.Fire() {
		panic("faultpoint: core.fill.block")
	}
	if si.Lo == 0 {
		fillBoundaryI0(t, st, ge2, sj, sk)
	}
	for i := max(si.Lo, 1); i < si.Hi; i++ {
		abRow := st.ab.Row(i)
		acRow := st.ac.Row(i)
		if sj.Lo == 0 {
			fillBoundaryJ0(t, ge2, i, acRow, sk)
		}
		for j := max(sj.Lo, 1); j < sj.Hi; j++ {
			fillLane(t, ge2, i, j, abRow[j], acRow, st.bc.Row(j), sk)
		}
	}
}

// fillLane fills the interior k-lane of cell row (i, j), i ≥ 1, j ≥ 1. The
// four predecessor lanes are hoisted and re-sliced to the span's upper
// bound so the compiler elides every interior bounds check (verified with
// -gcflags=-d=ssa/check_bce), and the k-1 predecessors are carried in
// registers across iterations, so each lattice and table element is loaded
// exactly once.
func fillLane[T mat.Cell](t *mat.Tensor3Of[T], ge2 T, i, j int, sAB T, acRow, bcRow []T, sk wavefront.Span) {
	hi := sk.Hi
	cur := t.Lane(i, j)[:hi:hi]
	lane11 := t.Lane(i-1, j-1)[:hi]
	lane10 := t.Lane(i-1, j)[:hi]
	lane01 := t.Lane(i, j-1)[:hi]
	acRow = acRow[:hi]
	bcRow = bcRow[:hi]
	lo := sk.Lo
	if lo < 1 {
		// k == 0 column: only the k-preserving moves XXG, XGG, GXG apply.
		cur[0] = max(lane11[0]+sAB, lane10[0], lane01[0]) + ge2
		lo = 1
	}
	if lo >= hi {
		return
	}
	v11, v10, v01 := lane11[lo-1], lane10[lo-1], lane01[lo-1]
	vkk := cur[lo-1]
	for k := lo; k < hi; k++ {
		n11, n10, n01 := lane11[k], lane10[k], lane01[k]
		sac, sbc := acRow[k], bcRow[k]
		best := max(
			v11+sAB+sac+sbc, // XXX
			v10+sac+ge2,     // XGX
			v01+sbc+ge2,     // GXX
			vkk+ge2,         // GGX
			n11+sAB+ge2,     // XXG
			n10+ge2,         // XGG
			n01+ge2,         // GXG
		)
		cur[k] = best
		v11, v10, v01, vkk = n11, n10, n01, best
	}
}

// fillBoundaryI0 fills the i == 0 plane portion of the box: only the moves
// that leave A untouched (GXX, GXG, GGX) apply.
func fillBoundaryI0[T mat.Cell](t *mat.Tensor3Of[T], st *scoreTablesOf[T], ge2 T, sj, sk wavefront.Span) {
	for j := sj.Lo; j < sj.Hi; j++ {
		cur := t.Lane(0, j)
		if j == 0 {
			k := sk.Lo
			if k == 0 {
				cur[0] = 0
				k = 1
			}
			for ; k < sk.Hi; k++ {
				cur[k] = cur[k-1] + ge2 // GGX chain from the origin
			}
			continue
		}
		prev := t.Lane(0, j-1)
		bcRow := st.bc.Row(j)
		k := sk.Lo
		if k == 0 {
			cur[0] = prev[0] + ge2 // GXG
			k = 1
		}
		for ; k < sk.Hi; k++ {
			cur[k] = max(prev[k-1]+bcRow[k], prev[k], cur[k-1]) + ge2
		}
	}
}

// fillBoundaryJ0 fills the j == 0 row of plane i ≥ 1: only the B-gapped
// moves XGX, XGG, GGX apply.
func fillBoundaryJ0[T mat.Cell](t *mat.Tensor3Of[T], ge2 T, i int, acRow []T, sk wavefront.Span) {
	cur := t.Lane(i, 0)
	prev := t.Lane(i-1, 0)
	k := sk.Lo
	if k == 0 {
		cur[0] = prev[0] + ge2 // XGG
		k = 1
	}
	for ; k < sk.Hi; k++ {
		cur[k] = max(prev[k-1]+acRow[k], prev[k], cur[k-1]) + ge2
	}
}

// tracebackTensor recovers one optimal move sequence from a filled lattice
// by re-evaluating which predecessor produced each cell's value. The
// re-evaluation runs at the lattice's own cell width; every sum it compares
// is a candidate the fill already computed, so the width-safety bound that
// admitted the lattice covers the traceback too.
func tracebackTensor[T mat.Cell](t *mat.Tensor3Of[T], ca, cb, cc []int8, sch *scoring.Scheme) ([]alignment.Move, error) {
	ge2 := T(2 * sch.GapExtend())
	i, j, k := len(ca), len(cb), len(cc)
	moves := make([]alignment.Move, 0, i+j+k)
	for i > 0 || j > 0 || k > 0 {
		v := t.At(i, j, k)
		switch {
		case i > 0 && j > 0 && k > 0 &&
			v == t.At(i-1, j-1, k-1)+T(colXXX(sch, ca[i-1], cb[j-1], cc[k-1])):
			moves = append(moves, alignment.MoveXXX)
			i, j, k = i-1, j-1, k-1
		case i > 0 && j > 0 && v == t.At(i-1, j-1, k)+T(sch.Sub(ca[i-1], cb[j-1]))+ge2:
			moves = append(moves, alignment.MoveXXG)
			i, j = i-1, j-1
		case i > 0 && k > 0 && v == t.At(i-1, j, k-1)+T(sch.Sub(ca[i-1], cc[k-1]))+ge2:
			moves = append(moves, alignment.MoveXGX)
			i, k = i-1, k-1
		case j > 0 && k > 0 && v == t.At(i, j-1, k-1)+T(sch.Sub(cb[j-1], cc[k-1]))+ge2:
			moves = append(moves, alignment.MoveGXX)
			j, k = j-1, k-1
		case i > 0 && v == t.At(i-1, j, k)+ge2:
			moves = append(moves, alignment.MoveXGG)
			i--
		case j > 0 && v == t.At(i, j-1, k)+ge2:
			moves = append(moves, alignment.MoveGXG)
			j--
		case k > 0 && v == t.At(i, j, k-1)+ge2:
			moves = append(moves, alignment.MoveGGX)
			k--
		default:
			return nil, fmt.Errorf("core: traceback stuck at (%d,%d,%d)", i, j, k)
		}
	}
	reverseMoves(moves)
	return moves, nil
}

func reverseMoves(m []alignment.Move) {
	for l, r := 0, len(m)-1; l < r; l, r = l+1, r-1 {
		m[l], m[r] = m[r], m[l]
	}
}

func prepare(tr seq.Triple, sch *scoring.Scheme) (ca, cb, cc []int8, err error) {
	if err := tr.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if sch == nil {
		return nil, nil, nil, fmt.Errorf("core: nil scoring scheme")
	}
	if sch.Alphabet() != tr.A.Alphabet() {
		return nil, nil, nil, fmt.Errorf("core: scheme alphabet %q does not match sequences (%q)",
			sch.Alphabet().Name(), tr.A.Alphabet().Name())
	}
	return tr.A.Codes(), tr.B.Codes(), tr.C.Codes(), nil
}

// AlignFull computes an optimal alignment with the sequential full-matrix
// algorithm. The context is polled at every i-plane boundary. When
// Options.CellWidth asks for — and the Int16Safe bound admits — a 16-bit
// lattice, the fill runs over int16 cells at half the memory traffic and
// produces bit-identical scores.
func AlignFull(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options) (*alignment.Alignment, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return nil, err
	}
	if useInt16(opt, sch, ca, cb, cc) {
		return alignFullOf[int16](ctx, tr, ca, cb, cc, sch, opt, false)
	}
	return alignFullOf[mat.Score](ctx, tr, ca, cb, cc, sch, opt, false)
}

// AlignFullPacked is AlignFull with the lane-packed interior: the unit-
// stride k lane advances four cells per iteration with hand-unrolled,
// bounds-check-free max chains. Scores and moves are bit-identical to
// AlignFull (integer max is associative and commutative, so regrouping the
// chain cannot change any cell).
func AlignFullPacked(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options) (*alignment.Alignment, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return nil, err
	}
	if useInt16(opt, sch, ca, cb, cc) {
		return alignFullOf[int16](ctx, tr, ca, cb, cc, sch, opt, true)
	}
	return alignFullOf[mat.Score](ctx, tr, ca, cb, cc, sch, opt, true)
}

// latticeNeed is the width-aware admission size of the full lattice.
func latticeNeed[T mat.Cell](ca, cb, cc []int8) int64 {
	return int64(mat.CellBytes[T]()) * int64(len(ca)+1) * int64(len(cb)+1) * int64(len(cc)+1)
}

func alignFullOf[T mat.Cell](ctx context.Context, tr seq.Triple, ca, cb, cc []int8, sch *scoring.Scheme, opt Options, packed bool) (*alignment.Alignment, error) {
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	if need := latticeNeed[T](ca, cb, cc); need > opt.maxBytes() {
		return nil, fmt.Errorf("%w: need %d bytes, cap %d", ErrTooLarge, need, opt.maxBytes())
	}
	st := newScoreTablesOf[T](ca, cb, cc, sch)
	defer st.release()
	t := mat.GetTensor3Of[T](len(ca)+1, len(cb)+1, len(cc)+1)
	defer mat.PutTensor3Of(t)
	ge2 := T(2 * sch.GapExtend())
	var lv laneVec
	if packed {
		initLaneVec(&lv, ca, cb, cc, sch, ge2)
	}
	sj := wavefront.Span{Lo: 0, Hi: len(cb) + 1}
	sk := wavefront.Span{Lo: 0, Hi: len(cc) + 1}
	for i := 0; i <= len(ca); i++ {
		if err := checkCtx(ctx); err != nil {
			return nil, err
		}
		si := wavefront.Span{Lo: i, Hi: i + 1}
		if packed {
			fillRangePacked(t, st, ge2, si, sj, sk, &lv)
		} else {
			fillRange(t, st, ge2, si, sj, sk)
		}
	}
	moves, err := tracebackTensor(t, ca, cb, cc, sch)
	if err != nil {
		return nil, err
	}
	return &alignment.Alignment{Triple: tr, Moves: moves, Score: mat.Score(t.At(len(ca), len(cb), len(cc)))}, nil
}

// AlignParallel computes the same optimum as AlignFull using the blocked
// wavefront schedule over a goroutine pool — the paper's parallel
// algorithm. The full lattice is retained, so traceback is exact.
// Cancellation is checked per block by the wavefront scheduler. Like
// AlignFull it honors a planner-negotiated Options.CellWidth of 16.
func AlignParallel(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options) (*alignment.Alignment, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return nil, err
	}
	if useInt16(opt, sch, ca, cb, cc) {
		return alignParallelOf[int16](ctx, tr, ca, cb, cc, sch, opt, false)
	}
	return alignParallelOf[mat.Score](ctx, tr, ca, cb, cc, sch, opt, false)
}

// AlignParallelPacked is AlignParallel with the lane-packed interior
// filling each wavefront block; see AlignFullPacked.
func AlignParallelPacked(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options) (*alignment.Alignment, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return nil, err
	}
	if useInt16(opt, sch, ca, cb, cc) {
		return alignParallelOf[int16](ctx, tr, ca, cb, cc, sch, opt, true)
	}
	return alignParallelOf[mat.Score](ctx, tr, ca, cb, cc, sch, opt, true)
}

func alignParallelOf[T mat.Cell](ctx context.Context, tr seq.Triple, ca, cb, cc []int8, sch *scoring.Scheme, opt Options, packed bool) (*alignment.Alignment, error) {
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	if need := latticeNeed[T](ca, cb, cc); need > opt.maxBytes() {
		return nil, fmt.Errorf("%w: need %d bytes, cap %d", ErrTooLarge, need, opt.maxBytes())
	}
	st := newScoreTablesOf[T](ca, cb, cc, sch)
	defer st.release()
	t := mat.GetTensor3Of[T](len(ca)+1, len(cb)+1, len(cc)+1)
	defer mat.PutTensor3Of(t)
	ge2 := T(2 * sch.GapExtend())
	var lv laneVec
	if packed {
		initLaneVec(&lv, ca, cb, cc, sch, ge2)
	}
	ti, tj, tk := opt.tileDims(len(ca)+1, len(cb)+1, len(cc)+1, mat.CellBytes[T]())
	si := wavefront.Partition(len(ca)+1, ti)
	sj := wavefront.Partition(len(cb)+1, tj)
	sk := wavefront.Partition(len(cc)+1, tk)
	if err := wavefront.Run3DContext(ctx, len(si), len(sj), len(sk), opt.workers(), func(bi, bj, bk int) {
		if packed {
			// Each tile works on a private copy: the argument blocks
			// inside laneVec are scratch state, and tiles run on
			// concurrent workers.
			tileLV := lv
			fillRangePacked(t, st, ge2, si[bi], sj[bj], sk[bk], &tileLV)
		} else {
			fillRange(t, st, ge2, si[bi], sj[bj], sk[bk])
		}
	}); err != nil {
		return nil, err
	}
	moves, err := tracebackTensor(t, ca, cb, cc, sch)
	if err != nil {
		return nil, err
	}
	return &alignment.Alignment{Triple: tr, Moves: moves, Score: mat.Score(t.At(len(ca), len(cb), len(cc)))}, nil
}

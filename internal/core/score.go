package core

import (
	"context"
	"fmt"

	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// Score computes the optimal linear-gap SP score without an alignment,
// using two (m+1)×(p+1) planes — the cheapest exact query this package
// offers. With opt.Workers > 1 each plane advances by a 2D blocked
// wavefront. The context is polled at every plane boundary.
func Score(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options) (mat.Score, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return 0, err
	}
	// Peak memory: the two sweep planes.
	if need := 2 * mat.PlaneBytes(len(cb)+1, len(cc)+1); need > opt.maxBytes() {
		return 0, fmt.Errorf("%w: need %d bytes, cap %d", ErrTooLarge, need, opt.maxBytes())
	}
	workers := 1
	if opt.Workers != 0 {
		workers = opt.workers()
	}
	tj, tk := opt.tile2D(len(cb)+1, len(cc)+1, 8)
	final, err := planeSweep(ctx, ca, cb, cc, sch, workers, tj, tk)
	if err != nil {
		return 0, err
	}
	s := final.At(len(cb), len(cc))
	mat.PutPlane(final)
	return s, nil
}

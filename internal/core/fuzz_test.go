package core

import (
	"context"
	"testing"

	"repro/internal/seq"
)

// FuzzAlgorithmsAgree feeds arbitrary short residue strings to every exact
// algorithm and demands identical optimal scores and valid alignments.
// Inputs are truncated so the full-matrix reference stays cheap.
func FuzzAlgorithmsAgree(f *testing.F) {
	f.Add("ACGT", "ACG", "AGT")
	f.Add("", "", "")
	f.Add("AAAA", "TTTT", "CCCC")
	f.Add("ACGTACGTACGTACGT", "A", "")
	f.Add("NNN", "ACG", "NCN")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		const maxLen = 12
		tr, err := makeTriple(a, b, c, maxLen)
		if err != nil {
			return // invalid residues: not this fuzzer's concern
		}
		ref, err := AlignFull(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			t.Fatalf("AlignFull: %v", err)
		}
		checkAlignment(t, ref, dnaSch)
		runs := map[string]func() (int32, error){
			"parallel": func() (int32, error) {
				aln, err := AlignParallel(context.Background(), tr, dnaSch, Options{Workers: 3, BlockSize: 4})
				if err != nil {
					return 0, err
				}
				return aln.Score, nil
			},
			"linear": func() (int32, error) {
				aln, err := AlignLinear(context.Background(), tr, dnaSch, Options{})
				if err != nil {
					return 0, err
				}
				return aln.Score, nil
			},
			"diagonal": func() (int32, error) {
				aln, err := AlignDiagonal(context.Background(), tr, dnaSch, Options{Workers: 2})
				if err != nil {
					return 0, err
				}
				return aln.Score, nil
			},
			"pruned": func() (int32, error) {
				aln, _, err := AlignPruned(context.Background(), tr, dnaSch, Options{})
				if err != nil {
					return 0, err
				}
				return aln.Score, nil
			},
			"score-only": func() (int32, error) {
				return Score(context.Background(), tr, dnaSch, Options{})
			},
		}
		for name, run := range runs {
			got, err := run()
			if err != nil {
				t.Fatalf("%s(%q,%q,%q): %v", name, a, b, c, err)
			}
			if got != ref.Score {
				t.Fatalf("%s(%q,%q,%q) = %d, full = %d", name, a, b, c, got, ref.Score)
			}
		}
	})
}

func makeTriple(a, b, c string, maxLen int) (seq.Triple, error) {
	clip := func(s string) string {
		if len(s) > maxLen {
			return s[:maxLen]
		}
		return s
	}
	sa, err := seq.New("A", []byte(clip(a)), seq.DNA)
	if err != nil {
		return seq.Triple{}, err
	}
	sb, err := seq.New("B", []byte(clip(b)), seq.DNA)
	if err != nil {
		return seq.Triple{}, err
	}
	sc, err := seq.New("C", []byte(clip(c)), seq.DNA)
	if err != nil {
		return seq.Triple{}, err
	}
	return seq.Triple{A: sa, B: sb, C: sc}, nil
}

// FuzzAffineFamilyAgrees drives arbitrary short inputs through the three
// affine implementations (full, linear-space, blocked-parallel), which
// must return identical quasi-natural optima.
func FuzzAffineFamilyAgrees(f *testing.F) {
	f.Add("ACGT", "ACG", "AGT")
	f.Add("", "", "")
	f.Add("AAAAAAAA", "AA", "AAAA")
	f.Add("ACGTACGT", "", "TTTT")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		const maxLen = 9
		tr, err := makeTriple(a, b, c, maxLen)
		if err != nil {
			return
		}
		sch, err := dnaSch.WithGaps(-5, -1)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := AlignAffine(context.Background(), tr, sch, Options{})
		if err != nil {
			t.Fatalf("AlignAffine(%q,%q,%q): %v", a, b, c, err)
		}
		lin, err := AlignAffineLinear(context.Background(), tr, sch, Options{})
		if err != nil {
			t.Fatalf("AlignAffineLinear(%q,%q,%q): %v", a, b, c, err)
		}
		if lin.Score != ref.Score {
			t.Fatalf("linear %d != full %d for (%q,%q,%q)", lin.Score, ref.Score, a, b, c)
		}
		par, err := AlignAffineParallel(context.Background(), tr, sch, Options{Workers: 3, BlockSize: 3})
		if err != nil {
			t.Fatalf("AlignAffineParallel(%q,%q,%q): %v", a, b, c, err)
		}
		if par.Score != ref.Score {
			t.Fatalf("parallel %d != full %d for (%q,%q,%q)", par.Score, ref.Score, a, b, c)
		}
	})
}

package core

import (
	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/wavefront"
)

// Lane-packed interiors: the unit-stride k lane advances four cells per
// iteration. The 7-way recurrence splits into a 6-way maximum per cell that
// depends only on already-completed lanes (and so computes for all four
// cells with full instruction-level parallelism) plus the serial GGX chain
// — one add and one max per cell — threaded through at the end. Integer max
// is associative and commutative, so the regrouped chains produce exactly
// the values the scalar loop does: every packed kernel is bit-identical to
// its scalar sibling, and the differential suite pins that.
//
// The unrolled bodies carry no bounds checks (verified with
// -gcflags=-d=ssa/check_bce). The compiler's prove pass cannot see through
// either a span-dependent loop lower bound (the clamp's phi node hides
// `k ≥ 1`) or strided index arithmetic (`k+1..k+3` never inherit the
// induction variable's range), so the interiors use advancing windows
// instead: every lane is re-sliced once so the loop-carried cell sits at
// index 0 and the four new cells at 1..4, the loop condition tests every
// window's length explicitly, and all windows advance by four. Constant
// indices compared against length facts from the loop condition is the one
// shape the prove pass eliminates completely.

// fillRangePacked is fillRange with the lane-packed interior. The boundary
// peeling (i == 0 plane, j == 0 row, k == 0 column) is shared with the
// scalar kernel — boundaries are O(n²) work and not worth a second copy.
func fillRangePacked[T mat.Cell](t *mat.Tensor3Of[T], st *scoreTablesOf[T], ge2 T, si, sj, sk wavefront.Span, lv *laneVec) {
	if fpFill.Fire() {
		panic("faultpoint: core.fill.block")
	}
	if si.Lo == 0 {
		fillBoundaryI0(t, st, ge2, sj, sk)
	}
	for i := max(si.Lo, 1); i < si.Hi; i++ {
		abRow := st.ab.Row(i)
		acRow := st.ac.Row(i)
		if sj.Lo == 0 {
			fillBoundaryJ0(t, ge2, i, acRow, sk)
		}
		for j := max(sj.Lo, 1); j < sj.Hi; j++ {
			fillLanePacked(t, ge2, i, j, abRow[j], acRow, st.bc.Row(j), sk, lv)
		}
	}
}

// fillLanePacked fills the interior k-lane of cell row (i, j), i ≥ 1,
// j ≥ 1, four cells per step. Per group of four it loads the predecessor
// lanes and score rows once, computes the four 6-way maxima m0..m3
// independently, then resolves the loop-carried GGX dependence with the
// short serial chain w0..w3.
func fillLanePacked[T mat.Cell](t *mat.Tensor3Of[T], ge2 T, i, j int, sAB T, acRow, bcRow []T, sk wavefront.Span, lv *laneVec) {
	hi := sk.Hi
	curLane := t.Lane(i, j)
	lane11 := t.Lane(i-1, j-1)
	lane10 := t.Lane(i-1, j)
	lane01 := t.Lane(i, j-1)
	lo := sk.Lo
	if lo < 1 {
		// k == 0 column: only the k-preserving moves XXG, XGG, GXG apply.
		curLane[0] = max(lane11[0]+sAB, lane10[0], lane01[0]) + ge2
		lo = 1
	}
	if lo >= hi {
		return
	}
	// Vector fast path: hand whole 16- or 8-cell blocks to the assembly
	// lane kernel; the advancing-window loop below finishes the tail.
	if lv != nil && lv.use16 {
		if nblk := (hi - lo) &^ 15; nblk > 0 {
			setLane16(&lv.a16, curLane, lane11, lane10, lane01, acRow, bcRow, lo-1, nblk, sAB)
			laneFill16(&lv.a16)
			lo += nblk
			if lo >= hi {
				return
			}
		}
	} else if lv != nil && lv.use32 {
		if nblk := (hi - lo) &^ 7; nblk > 0 {
			setLane32(&lv.a32, curLane, lane11, lane10, lane01, acRow, bcRow, lo-1, nblk, sAB)
			laneFill32(&lv.a32)
			lo += nblk
			if lo >= hi {
				return
			}
		}
	}
	// Advancing windows: index 0 is the already-filled cell lo-1, indices
	// 1..4 are the next group of cells. Each group advances every window
	// by four.
	cur := curLane[lo-1 : hi]
	w11 := lane11[lo-1 : hi]
	w10 := lane10[lo-1 : hi]
	w01 := lane01[lo-1 : hi]
	ac := acRow[lo-1 : hi]
	bc := bcRow[lo-1 : hi]
	v11, v10, v01, vkk := w11[0], w10[0], w01[0], cur[0]
	for len(cur) >= 5 && len(w11) >= 5 && len(w10) >= 5 && len(w01) >= 5 && len(ac) >= 5 && len(bc) >= 5 {
		a11, a10, a01 := w11[1], w10[1], w01[1]
		b11, b10, b01 := w11[2], w10[2], w01[2]
		c11, c10, c01 := w11[3], w10[3], w01[3]
		d11, d10, d01 := w11[4], w10[4], w01[4]
		ac0, bc0 := ac[1], bc[1]
		ac1, bc1 := ac[2], bc[2]
		ac2, bc2 := ac[3], bc[3]
		ac3, bc3 := ac[4], bc[4]
		// XXX, XGX, GXX, XXG, XGG, GXG — everything but the carried GGX.
		m0 := max(v11+sAB+ac0+bc0, v10+ac0+ge2, v01+bc0+ge2, a11+sAB+ge2, a10+ge2, a01+ge2)
		m1 := max(a11+sAB+ac1+bc1, a10+ac1+ge2, a01+bc1+ge2, b11+sAB+ge2, b10+ge2, b01+ge2)
		m2 := max(b11+sAB+ac2+bc2, b10+ac2+ge2, b01+bc2+ge2, c11+sAB+ge2, c10+ge2, c01+ge2)
		m3 := max(c11+sAB+ac3+bc3, c10+ac3+ge2, c01+bc3+ge2, d11+sAB+ge2, d10+ge2, d01+ge2)
		// The GGX prefix chain: each cell's value may feed the next via +ge2.
		w0 := max(m0, vkk+ge2)
		w1 := max(m1, w0+ge2)
		w2 := max(m2, w1+ge2)
		w3 := max(m3, w2+ge2)
		cur[1] = w0
		cur[2] = w1
		cur[3] = w2
		cur[4] = w3
		v11, v10, v01, vkk = d11, d10, d01, w3
		cur, w11, w10, w01, ac, bc = cur[4:], w11[4:], w10[4:], w01[4:], ac[4:], bc[4:]
	}
	for len(cur) >= 2 && len(w11) >= 2 && len(w10) >= 2 && len(w01) >= 2 && len(ac) >= 2 && len(bc) >= 2 {
		n11, n10, n01 := w11[1], w10[1], w01[1]
		sac, sbc := ac[1], bc[1]
		best := max(
			v11+sAB+sac+sbc, // XXX
			v10+sac+ge2,     // XGX
			v01+sbc+ge2,     // GXX
			vkk+ge2,         // GGX
			n11+sAB+ge2,     // XXG
			n10+ge2,         // XGG
			n01+ge2,         // GXG
		)
		cur[1] = best
		v11, v10, v01, vkk = n11, n10, n01, best
		cur, w11, w10, w01, ac, bc = cur[1:], w11[1:], w10[1:], w01[1:], ac[1:], bc[1:]
	}
}

// fillPlaneRangePacked is fillPlaneRange with the lane-packed interior: the
// same four-cells-per-step walk over one (j, k) plane of the linear-space
// sweep. planeSweep always uses it — the packed interior is bit-identical,
// so the scalar fillPlaneRange survives only as the pinning reference.
func fillPlaneRangePacked(cur, prev *mat.Plane, ai int8, cb []int8, sch *scoring.Scheme, prof *pairProfile, sj, sk wavefront.Span, lv *laneVec) {
	ge2 := 2 * sch.GapExtend()
	if prev == nil {
		fillPlaneRangeI0(cur, prof, ge2, cb, sj, sk)
		return
	}
	acRowFull := prof.Row(ai)
	subAi := sch.SubRow(ai)
	if sj.Lo == 0 {
		// j == 0 row: only XGX, XGG, GGX apply.
		curRow := cur.Row(0)
		prevRow := prev.Row(0)
		k := sk.Lo
		if k == 0 {
			curRow[0] = prevRow[0] + ge2 // XGG
			k = 1
		}
		for ; k < sk.Hi; k++ {
			curRow[k] = max(prevRow[k-1]+acRowFull[k], prevRow[k], curRow[k-1]) + ge2
		}
	}
	hi := sk.Hi
	for j := max(sj.Lo, 1); j < sj.Hi; j++ {
		bj := cb[j-1]
		sAB := subAi[bj]
		bcRow := prof.Row(bj)
		curRow := cur.Row(j)
		cur01Row := cur.Row(j - 1)
		prev10Row := prev.Row(j)
		prev11Row := prev.Row(j - 1)
		lo := sk.Lo
		if lo < 1 {
			curRow[0] = max(prev11Row[0]+sAB, prev10Row[0], cur01Row[0]) + ge2
			lo = 1
		}
		if lo >= hi {
			continue
		}
		if lv != nil && lv.use32 {
			if nblk := (hi - lo) &^ 7; nblk > 0 {
				setLane32(&lv.a32, curRow, prev11Row, prev10Row, cur01Row, acRowFull, bcRow, lo-1, nblk, sAB)
				laneFill32(&lv.a32)
				lo += nblk
				if lo >= hi {
					continue
				}
			}
		}
		// Same advancing-window walk as fillLanePacked: index 0 is cell
		// lo-1, indices 1..4 the next group.
		cr := curRow[lo-1 : hi]
		w11 := prev11Row[lo-1 : hi]
		w10 := prev10Row[lo-1 : hi]
		w01 := cur01Row[lo-1 : hi]
		ac := acRowFull[lo-1 : hi]
		bc := bcRow[lo-1 : hi]
		v11, v10, v01, vkk := w11[0], w10[0], w01[0], cr[0]
		for len(cr) >= 5 && len(w11) >= 5 && len(w10) >= 5 && len(w01) >= 5 && len(ac) >= 5 && len(bc) >= 5 {
			a11, a10, a01 := w11[1], w10[1], w01[1]
			b11, b10, b01 := w11[2], w10[2], w01[2]
			c11, c10, c01 := w11[3], w10[3], w01[3]
			d11, d10, d01 := w11[4], w10[4], w01[4]
			ac0, bc0 := ac[1], bc[1]
			ac1, bc1 := ac[2], bc[2]
			ac2, bc2 := ac[3], bc[3]
			ac3, bc3 := ac[4], bc[4]
			m0 := max(v11+sAB+ac0+bc0, v10+ac0+ge2, v01+bc0+ge2, a11+sAB+ge2, a10+ge2, a01+ge2)
			m1 := max(a11+sAB+ac1+bc1, a10+ac1+ge2, a01+bc1+ge2, b11+sAB+ge2, b10+ge2, b01+ge2)
			m2 := max(b11+sAB+ac2+bc2, b10+ac2+ge2, b01+bc2+ge2, c11+sAB+ge2, c10+ge2, c01+ge2)
			m3 := max(c11+sAB+ac3+bc3, c10+ac3+ge2, c01+bc3+ge2, d11+sAB+ge2, d10+ge2, d01+ge2)
			w0 := max(m0, vkk+ge2)
			w1 := max(m1, w0+ge2)
			w2 := max(m2, w1+ge2)
			w3 := max(m3, w2+ge2)
			cr[1] = w0
			cr[2] = w1
			cr[3] = w2
			cr[4] = w3
			v11, v10, v01, vkk = d11, d10, d01, w3
			cr, w11, w10, w01, ac, bc = cr[4:], w11[4:], w10[4:], w01[4:], ac[4:], bc[4:]
		}
		for len(cr) >= 2 && len(w11) >= 2 && len(w10) >= 2 && len(w01) >= 2 && len(ac) >= 2 && len(bc) >= 2 {
			n11, n10, n01 := w11[1], w10[1], w01[1]
			sac, sbc := ac[1], bc[1]
			best := max(
				v11+sAB+sac+sbc, // XXX
				v10+sac+ge2,     // XGX
				v01+sbc+ge2,     // GXX
				vkk+ge2,         // GGX
				n11+sAB+ge2,     // XXG
				n10+ge2,         // XGG
				n01+ge2,         // GXG
			)
			cr[1] = best
			v11, v10, v01, vkk = n11, n10, n01, best
			cr, w11, w10, w01, ac, bc = cr[1:], w11[1:], w10[1:], w01[1:], ac[1:], bc[1:]
		}
	}
}

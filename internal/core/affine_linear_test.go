package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/scoring"
	"repro/internal/seq"
)

func TestAlignAffineLinearEqualsFullAffine(t *testing.T) {
	sch, err := scoring.DNADefault().WithGaps(-4, -1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(701))
	for trial := 0; trial < 30; trial++ {
		tr := randomTriple(rng, rng.Intn(12), rng.Intn(12), rng.Intn(12))
		ref, err := AlignAffine(context.Background(), tr, sch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		lin, err := AlignAffineLinear(context.Background(), tr, sch, Options{})
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, tr.Describe(), err)
		}
		if lin.Score != ref.Score {
			t.Fatalf("trial %d (%s): linear affine %d != full affine %d",
				trial, tr.Describe(), lin.Score, ref.Score)
		}
		if err := lin.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// forceRecursion shrinks nothing: to actually exercise the split path the
// box volume must exceed affineSmallVolume, so use longer sequences here.
func TestAlignAffineLinearExercisesRecursion(t *testing.T) {
	sch, err := scoring.DNADefault().WithGaps(-6, -1)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 4; seed++ {
		tr := relatedTriple(800+seed, 40, 0.2) // 41³ ≈ 69k > affineSmallVolume
		ref, err := AlignAffine(context.Background(), tr, sch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		lin, err := AlignAffineLinear(context.Background(), tr, sch, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if lin.Score != ref.Score {
			t.Fatalf("seed %d: linear affine %d != full affine %d", seed, lin.Score, ref.Score)
		}
	}
}

func TestAlignAffineLinearZeroOpenEqualsLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(703))
	for trial := 0; trial < 10; trial++ {
		tr := randomTriple(rng, rng.Intn(15), rng.Intn(15), rng.Intn(15))
		lin, err := AlignFull(context.Background(), tr, dnaSch, Options{}) // gapOpen == 0
		if err != nil {
			t.Fatal(err)
		}
		aff, err := AlignAffineLinear(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if aff.Score != lin.Score {
			t.Fatalf("trial %d: affine-linear(open=0) %d != linear %d", trial, aff.Score, lin.Score)
		}
	}
}

func TestAlignAffineLinearEmptyShapes(t *testing.T) {
	sch, _ := scoring.DNADefault().WithGaps(-4, -1)
	for _, s := range [][3]string{
		{"", "", ""}, {"ACGT", "", ""}, {"", "ACG", "AG"}, {"ACGT", "ACG", ""},
	} {
		tr := dnaTriple(t, s[0], s[1], s[2])
		ref, err := AlignAffine(context.Background(), tr, sch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		lin, err := AlignAffineLinear(context.Background(), tr, sch, Options{})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if lin.Score != ref.Score {
			t.Fatalf("%v: %d != %d", s, lin.Score, ref.Score)
		}
	}
}

func TestQuasiNaturalScoreMatchesDP(t *testing.T) {
	sch, _ := scoring.DNADefault().WithGaps(-5, -2)
	rng := rand.New(rand.NewSource(705))
	for trial := 0; trial < 15; trial++ {
		tr := randomTriple(rng, rng.Intn(10), rng.Intn(10), rng.Intn(10))
		aln, err := AlignAffine(context.Background(), tr, sch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := QuasiNaturalScore(aln, sch); got != aln.Score {
			t.Fatalf("trial %d: QuasiNaturalScore = %d, DP = %d", trial, got, aln.Score)
		}
	}
}

func TestAlignAffineLinearProtein(t *testing.T) {
	sch := scoring.BLOSUM62()
	g := seq.NewGenerator(seq.Protein, 707)
	tr := g.RelatedTriple(14, seq.Uniform(0.2))
	ref, err := AlignAffine(context.Background(), tr, sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lin, err := AlignAffineLinear(context.Background(), tr, sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lin.Score != ref.Score {
		t.Fatalf("protein: linear affine %d != full affine %d", lin.Score, ref.Score)
	}
}

func TestAlignAffineLinearMemoryCap(t *testing.T) {
	tr := dnaTriple(t, "ACGTACGT", "ACGTACGT", "ACGTACGT")
	sch, _ := scoring.DNADefault().WithGaps(-4, -1)
	if _, err := AlignAffineLinear(context.Background(), tr, sch, Options{MaxBytes: 64}); err == nil {
		t.Fatal("memory cap not enforced")
	}
}

package core

import (
	"math"
	"unsafe"

	"repro/internal/mat"
	"repro/internal/scoring"
)

// Argument blocks for the vector lane kernels in lane_amd64.s. The layouts
// are part of the assembly's contract — the field offsets below are pinned
// by the compile-time assertions at the end of this file.
//
// All six pointers address the carried cell (lane index lo-1); the kernel
// writes cells at element offsets 1..n. The per-scheme fields (gap steps
// and carry ramp) are filled once per fill call by initLaneArgs*, the
// per-lane fields by setLane*.

// laneAsmEnabled gates the vector kernels at run time; the differential
// tests clear it to pin the pure-Go interiors on hosts where the vector
// path would otherwise cover every full block.
var laneAsmEnabled = true

type laneArgs16 struct {
	cur, l11, l10, l01, ac, bc unsafe.Pointer
	n                          int64
	sAB                        int16
	g2, g2x2, g2x4, g2x8       int16
	_                          [3]int16
	ramp                       [16]int16 // (1..16)·g2, saturated
}

type laneArgs32 struct {
	cur, l11, l10, l01, ac, bc unsafe.Pointer
	n                          int64
	sAB                        int32
	g2, g2x2, g2x4             int32
	ramp                       [8]int32 // (1..8)·g2
}

func satInt16(v int32) int16 {
	if v < math.MinInt16 {
		return math.MinInt16
	}
	if v > math.MaxInt16 {
		return math.MaxInt16
	}
	return int16(v)
}

func initLaneArgs16(a *laneArgs16, ge2 int16) {
	g := int32(ge2)
	a.g2 = ge2
	a.g2x2 = satInt16(2 * g)
	a.g2x4 = satInt16(4 * g)
	a.g2x8 = satInt16(8 * g)
	for i := range a.ramp {
		a.ramp[i] = satInt16(int32(i+1) * g)
	}
}

func initLaneArgs32(a *laneArgs32, ge2 int32) {
	a.g2 = ge2
	a.g2x2 = 2 * ge2
	a.g2x4 = 4 * ge2
	for i := range a.ramp {
		a.ramp[i] = int32(i+1) * ge2
	}
}

// setLane16 points a at the carried cell of each row and records the block
// count. T is int16-wide (the caller checked mat.CellBytes).
func setLane16[T mat.Cell](a *laneArgs16, cur, l11, l10, l01, ac, bc []T, base, n int, sAB T) {
	a.cur = unsafe.Pointer(&cur[base])
	a.l11 = unsafe.Pointer(&l11[base])
	a.l10 = unsafe.Pointer(&l10[base])
	a.l01 = unsafe.Pointer(&l01[base])
	a.ac = unsafe.Pointer(&ac[base])
	a.bc = unsafe.Pointer(&bc[base])
	a.n = int64(n)
	a.sAB = int16(sAB)
}

func setLane32[T mat.Cell](a *laneArgs32, cur, l11, l10, l01, ac, bc []T, base, n int, sAB T) {
	a.cur = unsafe.Pointer(&cur[base])
	a.l11 = unsafe.Pointer(&l11[base])
	a.l10 = unsafe.Pointer(&l10[base])
	a.l01 = unsafe.Pointer(&l01[base])
	a.ac = unsafe.Pointer(&ac[base])
	a.bc = unsafe.Pointer(&bc[base])
	a.n = int64(n)
	a.sAB = int32(sAB)
}

// laneVec is the per-fill-call vector-kernel state: whether the cell width
// and score bounds admit the assembly lane kernels, plus their argument
// blocks (pre-filled with the per-scheme constants). A zero laneVec means
// "pure Go only".
type laneVec struct {
	use16, use32 bool
	a16          laneArgs16
	a32          laneArgs32
}

// initLaneVec decides whether the vector lane kernels may serve this fill.
// int16 lattices are admitted unconditionally — the width negotiation that
// produced them already bounds every candidate inside int16. int32
// lattices additionally need the ±1<<30 headroom check (int32ScanSafe)
// because the vector scan's fill lanes use wrapping adds.
func initLaneVec[T mat.Cell](lv *laneVec, ca, cb, cc []int8, sch *scoring.Scheme, ge2 T) {
	if !haveLaneAsm || !laneAsmEnabled {
		return
	}
	switch mat.CellBytes[T]() {
	case 2:
		lv.use16 = true
		initLaneArgs16(&lv.a16, int16(ge2))
	case 4:
		if sch != nil && int32ScanSafe(ca, cb, cc, sch) {
			lv.use32 = true
			initLaneArgs32(&lv.a32, int32(ge2))
		}
	}
}

// int32ScanSafe reports whether the int32 vector scan may run: its lane
// fill value is -1<<30 (AVX2 has no saturating dword add), so every
// genuine cell and candidate — bounded by (n+m+p+16)·MaxAbsColumn — must
// stay strictly inside ±1<<30.
func int32ScanSafe(ca, cb, cc []int8, sch *scoring.Scheme) bool {
	mc := MaxAbsColumn(sch)
	if mc == 0 {
		return true
	}
	total := int64(len(ca)) + int64(len(cb)) + int64(len(cc)) + 16
	return total <= (1<<30-1)/mc
}

// The assembly reads the argument blocks by fixed offset; a layout drift
// must fail the build, not corrupt lattices.
const (
	laneOff16N    = unsafe.Offsetof(laneArgs16{}.n)
	laneOff16SAB  = unsafe.Offsetof(laneArgs16{}.sAB)
	laneOff16Ramp = unsafe.Offsetof(laneArgs16{}.ramp)
	laneOff32SAB  = unsafe.Offsetof(laneArgs32{}.sAB)
	laneOff32G2   = unsafe.Offsetof(laneArgs32{}.g2)
	laneOff32Ramp = unsafe.Offsetof(laneArgs32{}.ramp)
)

var (
	_ [laneOff16N - 48]byte
	_ [48 - laneOff16N]byte
	_ [laneOff16SAB - 56]byte
	_ [56 - laneOff16SAB]byte
	_ [laneOff16Ramp - 72]byte
	_ [72 - laneOff16Ramp]byte
	_ [laneOff32SAB - 56]byte
	_ [56 - laneOff32SAB]byte
	_ [laneOff32G2 - 60]byte
	_ [60 - laneOff32G2]byte
	_ [laneOff32Ramp - 72]byte
	_ [72 - laneOff32Ramp]byte
)

package core_test

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// ExampleAlignParallel runs the paper's blocked-wavefront algorithm and
// cross-checks it against the sequential full-matrix reference.
func ExampleAlignParallel() {
	g := seq.NewGenerator(seq.DNA, 3)
	tr := g.RelatedTriple(60, seq.MutationModel{SubstitutionRate: 0.2})
	sch := scoring.DNADefault()

	par, _ := core.AlignParallel(context.Background(), tr, sch, core.Options{Workers: 8, BlockSize: 16})
	ref, _ := core.AlignFull(context.Background(), tr, sch, core.Options{})
	fmt.Println("parallel equals sequential:", par.Score == ref.Score)
	// Output:
	// parallel equals sequential: true
}

// ExampleAlignLinear demonstrates the memory argument: same optimum,
// quadratic instead of cubic lattice.
func ExampleAlignLinear() {
	g := seq.NewGenerator(seq.DNA, 5)
	tr := g.RelatedTriple(80, seq.MutationModel{SubstitutionRate: 0.2})
	sch := scoring.DNADefault()

	lin, _ := core.AlignLinear(context.Background(), tr, sch, core.Options{})
	ref, _ := core.AlignFull(context.Background(), tr, sch, core.Options{})
	fmt.Println("same optimum:", lin.Score == ref.Score)
	fmt.Println("memory ratio >= 20x:", core.FullMatrixBytes(tr)/core.LinearBytes(tr) >= 20)
	// Output:
	// same optimum: true
	// memory ratio >= 20x: true
}

// ExampleAlignPruned uses a heuristic lower bound to skip most of the
// lattice on similar sequences.
func ExampleAlignPruned() {
	g := seq.NewGenerator(seq.DNA, 7)
	tr := g.RelatedTriple(70, seq.MutationModel{SubstitutionRate: 0.05})
	sch := scoring.DNADefault()

	aln, stats, _ := core.AlignPruned(context.Background(), tr, sch, core.Options{})
	ref, _ := core.AlignFull(context.Background(), tr, sch, core.Options{})
	fmt.Println("optimal:", aln.Score == ref.Score)
	fmt.Println("evaluated under 10% of cells:", stats.Fraction() < 0.10)
	// Output:
	// optimal: true
	// evaluated under 10% of cells: true
}

package core

import (
	"context"
	"testing"

	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/wavefront"
)

// Differential suite for the lane-packed kernels: fillRangePacked and
// fillPlaneRangePacked must be bit-identical to the scalar fillRange /
// fillPlaneRange at every cell width, with the vector (assembly) path both
// enabled and disabled, on full boxes and on blocked sub-spans whose lanes
// start and end mid-vector. The scalar kernels are themselves pinned to the
// pre-optimization references in tables_diff_test.go, so transitively the
// packed kernels inherit that contract.

// packedShapes extends diffShapes with lane lengths that exercise the
// vector blocks: ≥17 cells hits the 16-lane int16 block, 31/32 hit
// block+tail and exact-multiple endings, ~100 hits several blocks.
var packedShapes = [][3]int{
	{0, 0, 0}, {1, 0, 0}, {0, 0, 4}, {0, 5, 3},
	{1, 1, 1}, {1, 7, 4}, {6, 5, 4}, {9, 3, 7}, {8, 8, 8},
	{1, 1, 16}, {3, 3, 31}, {4, 3, 33}, {2, 5, 64}, {5, 9, 100},
	{7, 31, 17}, {2, 40, 48},
}

// withLaneAsm runs f twice: once with the vector kernels admitted (a no-op
// on hosts without AVX2) and once pinned to the pure-Go windowed interiors.
func withLaneAsm(t *testing.T, f func(t *testing.T)) {
	t.Helper()
	saved := laneAsmEnabled
	defer func() { laneAsmEnabled = saved }()
	for _, on := range []bool{true, false} {
		name := "asm"
		if !on {
			name = "noasm"
		}
		laneAsmEnabled = on
		t.Run(name, f)
	}
}

func wantTensorsEqualOf[T mat.Cell](t *testing.T, got, want *mat.Tensor3Of[T]) {
	t.Helper()
	ni, nj, nk := want.Dims()
	for i := 0; i < ni; i++ {
		for j := 0; j < nj; j++ {
			for k := 0; k < nk; k++ {
				if g, w := got.At(i, j, k), want.At(i, j, k); g != w {
					t.Fatalf("cell (%d,%d,%d): got %d, want %d", i, j, k, g, w)
				}
			}
		}
	}
}

// diffPackedOf fills one box with the scalar kernel at width T and compares
// the packed kernel against it on the full span and on two block
// decompositions (small blocks stress the carried-cell entry paths, large
// blocks let the vector kernel run inside sub-spans).
func diffPackedOf[T mat.Cell](t *testing.T, ca, cb, cc []int8, sch *scoring.Scheme) {
	t.Helper()
	n, m, p := len(ca), len(cb), len(cc)
	si := wavefront.Span{Lo: 0, Hi: n + 1}
	sj := wavefront.Span{Lo: 0, Hi: m + 1}
	sk := wavefront.Span{Lo: 0, Hi: p + 1}
	st := newScoreTablesOf[T](ca, cb, cc, sch)
	defer st.release()
	ge2 := T(2 * sch.GapExtend())

	want := mat.NewTensor3Of[T](n+1, m+1, p+1)
	fillRange(want, st, ge2, si, sj, sk)

	var lv laneVec
	initLaneVec(&lv, ca, cb, cc, sch, ge2)
	got := mat.NewTensor3Of[T](n+1, m+1, p+1)
	fillRangePacked(got, st, ge2, si, sj, sk, &lv)
	wantTensorsEqualOf(t, got, want)

	for _, bs := range []int{3, 20} {
		blocked := mat.NewTensor3Of[T](n+1, m+1, p+1)
		runBlocked3D(n, m, p, bs, func(si, sj, sk wavefront.Span) {
			fillRangePacked(blocked, st, ge2, si, sj, sk, &lv)
		})
		wantTensorsEqualOf(t, blocked, want)
	}
}

func TestFillRangePackedMatchesScalar(t *testing.T) {
	for name, sch := range linearDiffSchemes(t) {
		sch := sch
		t.Run(name, func(t *testing.T) {
			withLaneAsm(t, func(t *testing.T) {
				for _, shape := range packedShapes {
					tr := diffTriple(sch, 8000+int64(shape[0]+3*shape[2]), shape[0], shape[1], shape[2])
					ca, cb, cc, err := prepare(tr, sch)
					if err != nil {
						t.Fatal(err)
					}
					diffPackedOf[mat.Score](t, ca, cb, cc, sch)
					if Int16Safe(tr, sch) {
						diffPackedOf[int16](t, ca, cb, cc, sch)
					}
				}
			})
		})
	}
}

func TestFillPlaneRangePackedMatchesScalar(t *testing.T) {
	for name, sch := range linearDiffSchemes(t) {
		sch := sch
		t.Run(name, func(t *testing.T) {
			withLaneAsm(t, func(t *testing.T) {
				for _, shape := range packedShapes {
					tr := diffTriple(sch, 9000+int64(shape[1]+3*shape[2]), shape[0], shape[1], shape[2])
					ca, cb, cc, err := prepare(tr, sch)
					if err != nil {
						t.Fatal(err)
					}
					m, p := len(cb), len(cc)
					sj := wavefront.Span{Lo: 0, Hi: m + 1}
					sk := wavefront.Span{Lo: 0, Hi: p + 1}
					prof := newPairProfile(cc, sch)
					var lv laneVec
					initLaneVec(&lv, ca, cb, cc, sch, 2*sch.GapExtend())

					wantPrev, wantCur := mat.NewPlane(m+1, p+1), mat.NewPlane(m+1, p+1)
					gotPrev, gotCur := mat.NewPlane(m+1, p+1), mat.NewPlane(m+1, p+1)
					blkPrev, blkCur := mat.NewPlane(m+1, p+1), mat.NewPlane(m+1, p+1)

					layer := func(dstW, srcW, dstG, srcG, dstB, srcB *mat.Plane, i int) {
						var ai int8
						if i > 0 {
							ai = ca[i-1]
						}
						fillPlaneRange(dstW, srcW, ai, cb, sch, prof, sj, sk)
						fillPlaneRangePacked(dstG, srcG, ai, cb, sch, prof, sj, sk, &lv)
						runBlocked3D(0, m, p, 5, func(_, bj, bk wavefront.Span) {
							fillPlaneRangePacked(dstB, srcB, ai, cb, sch, prof, bj, bk, &lv)
						})
						wantPlanesEqual(t, i, dstG, dstW)
						wantPlanesEqual(t, i, dstB, dstW)
					}
					layer(wantPrev, nil, gotPrev, nil, blkPrev, nil, 0)
					for i := 1; i <= len(ca); i++ {
						layer(wantCur, wantPrev, gotCur, gotPrev, blkCur, blkPrev, i)
						wantPrev, wantCur = wantCur, wantPrev
						gotPrev, gotCur = gotCur, gotPrev
						blkPrev, blkCur = blkCur, blkPrev
					}
					prof.release()
				}
			})
		})
	}
}

// TestPackedAlignersMatchFull pins the packed public aligners — at both
// negotiated widths — to AlignFull's score and moves, across worker counts.
func TestPackedAlignersMatchFull(t *testing.T) {
	ctx := context.Background()
	sch := scoring.DNADefault()
	withLaneAsm(t, func(t *testing.T) {
		for _, shape := range packedShapes {
			tr := diffTriple(sch, 11000+int64(shape[0]+shape[2]), shape[0], shape[1], shape[2])
			full, err := AlignFull(ctx, tr, sch, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, width := range []int{0, 16} {
				opt := Options{CellWidth: width}
				packed, err := AlignFullPacked(ctx, tr, sch, opt)
				if err != nil {
					t.Fatal(err)
				}
				if packed.Score != full.Score {
					t.Fatalf("shape %v width %d: AlignFullPacked score %d, AlignFull %d",
						shape, width, packed.Score, full.Score)
				}
				for i := range packed.Moves {
					if packed.Moves[i] != full.Moves[i] {
						t.Fatalf("shape %v width %d: AlignFullPacked move %d = %v, AlignFull %v",
							shape, width, i, packed.Moves[i], full.Moves[i])
					}
				}
				for _, w := range []int{2, 4} {
					par, err := AlignParallelPacked(ctx, tr, sch, Options{CellWidth: width, Workers: w, BlockSize: 6})
					if err != nil {
						t.Fatal(err)
					}
					if par.Score != full.Score {
						t.Fatalf("shape %v width %d w=%d: AlignParallelPacked score %d, AlignFull %d",
							shape, width, w, par.Score, full.Score)
					}
					for i := range par.Moves {
						if par.Moves[i] != full.Moves[i] {
							t.Fatalf("shape %v width %d w=%d: AlignParallelPacked move %d = %v, AlignFull %v",
								shape, width, w, i, par.Moves[i], full.Moves[i])
						}
					}
				}
			}
		}
	})
}

package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/alignment"
	"repro/internal/scoring"
	"repro/internal/seq"
)

var dnaSch = scoring.DNADefault()

func dnaTriple(t *testing.T, a, b, c string) seq.Triple {
	t.Helper()
	return seq.Triple{
		A: seq.MustNew("A", a, seq.DNA),
		B: seq.MustNew("B", b, seq.DNA),
		C: seq.MustNew("C", c, seq.DNA),
	}
}

func randomTriple(rng *rand.Rand, na, nb, nc int) seq.Triple {
	g := seq.NewGenerator(seq.DNA, rng.Int63())
	return seq.Triple{
		A: g.Random("A", na),
		B: g.Random("B", nb),
		C: g.Random("C", nc),
	}
}

func relatedTriple(seed int64, n int, rate float64) seq.Triple {
	g := seq.NewGenerator(seq.DNA, seed)
	return g.RelatedTriple(n, seq.Uniform(rate))
}

// checkAlignment validates structure and that the reported score matches an
// independent recomputation.
func checkAlignment(t *testing.T, aln *alignment.Alignment, sch *scoring.Scheme) {
	t.Helper()
	if err := aln.Validate(); err != nil {
		t.Fatalf("alignment invalid: %v", err)
	}
	if got := aln.SPScore(sch); got != aln.Score {
		t.Fatalf("SPScore = %d, reported Score = %d", got, aln.Score)
	}
}

func TestAlignFullKnownCases(t *testing.T) {
	cases := []struct {
		a, b, c string
		want    int32
	}{
		{"", "", "", 0},
		{"A", "A", "A", 6},        // one XXX column, three matches
		{"A", "A", "", -2},        // match + two gaps vs C... see below
		{"ACG", "ACG", "ACG", 18}, // three XXX columns
		{"A", "C", "G", -3},       // one column, three mismatches
	}
	for _, c := range cases {
		tr := dnaTriple(t, c.a, c.b, c.c)
		aln, err := AlignFull(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			t.Fatalf("AlignFull(%q,%q,%q): %v", c.a, c.b, c.c, err)
		}
		checkAlignment(t, aln, dnaSch)
		if aln.Score != c.want {
			t.Errorf("AlignFull(%q,%q,%q) = %d, want %d", c.a, c.b, c.c, aln.Score, c.want)
		}
	}
}

func TestAlignFullIdenticalSequencesAllXXX(t *testing.T) {
	tr := dnaTriple(t, "ACGTACGT", "ACGTACGT", "ACGTACGT")
	aln, err := AlignFull(context.Background(), tr, dnaSch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if aln.Columns() != 8 {
		t.Fatalf("columns = %d, want 8", aln.Columns())
	}
	for _, m := range aln.Moves {
		if m != alignment.MoveXXX {
			t.Fatalf("non-XXX move %s for identical sequences", m)
		}
	}
}

func TestAlignFullMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		tr := randomTriple(rng, rng.Intn(5), rng.Intn(5), rng.Intn(5))
		want, err := BruteForceScore(tr, dnaSch)
		if err != nil {
			t.Fatal(err)
		}
		aln, err := AlignFull(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if aln.Score != want {
			t.Fatalf("trial %d (%s): AlignFull = %d, brute = %d", trial, tr.Describe(), aln.Score, want)
		}
		checkAlignment(t, aln, dnaSch)
	}
}

func TestAlignFullMatchesBruteForceProtein(t *testing.T) {
	sch, err := scoring.BLOSUM62().WithGaps(0, -4)
	if err != nil {
		t.Fatal(err)
	}
	g := seq.NewGenerator(seq.Protein, 17)
	for trial := 0; trial < 20; trial++ {
		tr := seq.Triple{A: g.Random("A", 3), B: g.Random("B", 4), C: g.Random("C", 3)}
		want, err := BruteForceScore(tr, sch)
		if err != nil {
			t.Fatal(err)
		}
		aln, err := AlignFull(context.Background(), tr, sch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if aln.Score != want {
			t.Fatalf("trial %d: AlignFull = %d, brute = %d", trial, aln.Score, want)
		}
	}
}

func TestAllAlgorithmsAgreeOnScore(t *testing.T) {
	type algo struct {
		name string
		run  func(context.Context, seq.Triple, *scoring.Scheme, Options) (*alignment.Alignment, error)
	}
	algos := []algo{
		{"parallel", AlignParallel},
		{"linear", AlignLinear},
		{"parallel-linear", AlignParallelLinear},
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 12; trial++ {
		var tr seq.Triple
		if trial%2 == 0 {
			tr = randomTriple(rng, 5+rng.Intn(25), 5+rng.Intn(25), 5+rng.Intn(25))
		} else {
			tr = relatedTriple(rng.Int63(), 10+rng.Intn(25), 0.2)
		}
		ref, err := AlignFull(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkAlignment(t, ref, dnaSch)
		for _, a := range algos {
			opt := Options{Workers: 1 + rng.Intn(8), BlockSize: 1 + rng.Intn(12)}
			aln, err := a.run(context.Background(), tr, dnaSch, opt)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.name, err)
			}
			checkAlignment(t, aln, dnaSch)
			if aln.Score != ref.Score {
				t.Fatalf("trial %d (%s): %s = %d, full = %d (opt %+v)",
					trial, tr.Describe(), a.name, aln.Score, ref.Score, opt)
			}
		}
	}
}

func TestAlgorithmsHandleEmptySequences(t *testing.T) {
	shapes := [][3]string{
		{"", "", ""},
		{"ACGT", "", ""},
		{"", "ACGT", ""},
		{"", "", "ACGT"},
		{"ACGT", "ACG", ""},
		{"ACGT", "", "AGT"},
		{"", "ACGT", "AGT"},
	}
	for _, s := range shapes {
		tr := dnaTriple(t, s[0], s[1], s[2])
		ref, err := AlignFull(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			t.Fatalf("%v full: %v", s, err)
		}
		checkAlignment(t, ref, dnaSch)
		for name, run := range map[string]func(context.Context, seq.Triple, *scoring.Scheme, Options) (*alignment.Alignment, error){
			"parallel":        AlignParallel,
			"linear":          AlignLinear,
			"parallel-linear": AlignParallelLinear,
		} {
			aln, err := run(context.Background(), tr, dnaSch, Options{Workers: 4, BlockSize: 3})
			if err != nil {
				t.Fatalf("%v %s: %v", s, name, err)
			}
			checkAlignment(t, aln, dnaSch)
			if aln.Score != ref.Score {
				t.Fatalf("%v %s: %d != %d", s, name, aln.Score, ref.Score)
			}
		}
	}
}

func TestAlignParallelManyConfigurations(t *testing.T) {
	tr := relatedTriple(7, 40, 0.25)
	ref, err := AlignFull(context.Background(), tr, dnaSch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8, 33} {
		for _, bs := range []int{1, 2, 7, 16, 64, 1000} {
			aln, err := AlignParallel(context.Background(), tr, dnaSch, Options{Workers: workers, BlockSize: bs})
			if err != nil {
				t.Fatalf("workers=%d bs=%d: %v", workers, bs, err)
			}
			if aln.Score != ref.Score {
				t.Fatalf("workers=%d bs=%d: %d != %d", workers, bs, aln.Score, ref.Score)
			}
		}
	}
}

func TestReversalSymmetry(t *testing.T) {
	// Aligning the reversed sequences must give the same optimal score.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		tr := randomTriple(rng, 4+rng.Intn(12), 4+rng.Intn(12), 4+rng.Intn(12))
		fwd, err := AlignFull(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rev := seq.Triple{A: tr.A.Reverse(), B: tr.B.Reverse(), C: tr.C.Reverse()}
		bwd, err := AlignFull(context.Background(), rev, dnaSch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if fwd.Score != bwd.Score {
			t.Fatalf("trial %d: forward %d != reversed %d", trial, fwd.Score, bwd.Score)
		}
	}
}

func TestSequencePermutationSymmetry(t *testing.T) {
	// The SP objective is symmetric in the three sequences.
	tr := relatedTriple(31, 18, 0.3)
	base, err := AlignFull(context.Background(), tr, dnaSch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	perms := []seq.Triple{
		{A: tr.B, B: tr.A, C: tr.C},
		{A: tr.C, B: tr.B, C: tr.A},
		{A: tr.B, B: tr.C, C: tr.A},
	}
	for i, p := range perms {
		aln, err := AlignFull(context.Background(), p, dnaSch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if aln.Score != base.Score {
			t.Fatalf("perm %d: %d != %d", i, aln.Score, base.Score)
		}
	}
}

func TestPrepareErrors(t *testing.T) {
	tr := dnaTriple(t, "AC", "AC", "AC")
	if _, err := AlignFull(context.Background(), tr, nil, Options{}); err == nil {
		t.Error("nil scheme accepted")
	}
	if _, err := AlignFull(context.Background(), tr, scoring.BLOSUM62(), Options{}); err == nil {
		t.Error("alphabet mismatch accepted")
	}
	mixed := seq.Triple{A: tr.A, B: tr.B, C: seq.MustNew("C", "ARN", seq.Protein)}
	if _, err := AlignFull(context.Background(), mixed, dnaSch, Options{}); err == nil {
		t.Error("mixed-alphabet triple accepted")
	}
	if _, err := AlignFull(context.Background(), seq.Triple{A: tr.A, B: tr.B}, dnaSch, Options{}); err == nil {
		t.Error("missing sequence accepted")
	}
}

func TestMemoryCap(t *testing.T) {
	tr := dnaTriple(t, "ACGTACGTAC", "ACGTACGTAC", "ACGTACGTAC")
	_, err := AlignFull(context.Background(), tr, dnaSch, Options{MaxBytes: 100})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if _, err := AlignParallel(context.Background(), tr, dnaSch, Options{MaxBytes: 100}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("parallel err = %v, want ErrTooLarge", err)
	}
	if _, err := AlignLinear(context.Background(), tr, dnaSch, Options{MaxBytes: 100}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("linear err = %v, want ErrTooLarge", err)
	}
	if _, _, err := AlignPruned(context.Background(), tr, dnaSch, Options{MaxBytes: 100}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("pruned err = %v, want ErrTooLarge", err)
	}
	if _, err := AlignAffine(context.Background(), tr, dnaSch, Options{MaxBytes: 100}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("affine err = %v, want ErrTooLarge", err)
	}
}

func TestMemoryAccountors(t *testing.T) {
	tr := dnaTriple(t, "ACG", "AC", "A")
	if got := FullMatrixBytes(tr); got != 4*4*3*2 {
		t.Errorf("FullMatrixBytes = %d, want 96", got)
	}
	if got := LinearBytes(tr); got != 4*4*3*2 {
		t.Errorf("LinearBytes = %d, want 96 (4 planes of 3x2)", got)
	}
}

func TestProteinEndToEnd(t *testing.T) {
	sch, err := scoring.BLOSUM62().WithGaps(0, -6)
	if err != nil {
		t.Fatal(err)
	}
	g := seq.NewGenerator(seq.Protein, 41)
	tr := g.RelatedTriple(25, seq.Uniform(0.2))
	ref, err := AlignFull(context.Background(), tr, sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkAlignment(t, ref, sch)
	par, err := AlignParallel(context.Background(), tr, sch, Options{Workers: 4, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if par.Score != ref.Score {
		t.Fatalf("parallel protein %d != %d", par.Score, ref.Score)
	}
	lin, err := AlignLinear(context.Background(), tr, sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lin.Score != ref.Score {
		t.Fatalf("linear protein %d != %d", lin.Score, ref.Score)
	}
}

package core

import (
	"repro/internal/mat"
	"repro/internal/pairwise"
	"repro/internal/scoring"
)

// boundCtx carries the Carrillo–Lipman admissibility data shared by every
// bounded kernel: the three pairwise through-planes T_XY[u][v] =
// Forward[u][v] + Backward[u][v] (the best pairwise alignment score
// constrained through the cut) and the lower bound L. A lattice cell
// (i, j, k) can lie on a three-way alignment scoring ≥ L only if
//
//	T_AB[i][j] + T_AC[i][k] + T_BC[j][k] ≥ L,
//
// because each pairwise projection of a three-way alignment through
// (i, j, k) is itself a pairwise alignment through the corresponding cut,
// so its score is ≤ the through-plane value. Cells failing the test are
// pruned; with a valid L ≤ optimum, every cell of every optimal path
// passes (its projections score exactly the projected parts of an optimal
// alignment, which sum to ≥ L by definition of SP score… see DESIGN.md
// "Bounded search" for the full derivation).
//
// The through form folds the old six forward/backward planes into three,
// halving both the per-cell admissibility loads and the resident plane
// bytes; the pre-change six-plane kernel survives as the diff-test
// reference (reference_test.go).
type boundCtx struct {
	tAB, tAC, tBC *mat.Plane
	bound         mat.Score
}

func newBoundCtx(ca, cb, cc []int8, sch *scoring.Scheme, bound mat.Score) *boundCtx {
	return &boundCtx{
		tAB:   pairwise.Through(ca, cb, sch),
		tAC:   pairwise.Through(ca, cc, sch),
		tBC:   pairwise.Through(cb, cc, sch),
		bound: bound,
	}
}

// release returns the three projection planes to the arena.
func (bc *boundCtx) release() {
	mat.PutPlane(bc.tAB)
	mat.PutPlane(bc.tAC)
	mat.PutPlane(bc.tBC)
	bc.tAB, bc.tAC, bc.tBC = nil, nil, nil
}

// planeBytes reports the resident footprint of the projection planes.
func (bc *boundCtx) planeBytes() int64 {
	return bc.tAB.Bytes() + bc.tAC.Bytes() + bc.tBC.Bytes()
}

// admissible reports whether any alignment through (i, j, k) can reach the
// lower bound, by the pairwise through-projection upper bound.
func (bc *boundCtx) admissible(i, j, k int) bool {
	return bc.tAB.At(i, j)+bc.tAC.At(i, k)+bc.tBC.At(j, k) >= bc.bound
}

// suffixCtx carries the three backward (suffix) pairwise planes: the
// admissible, consistent A* heuristic h(i, j, k) = B_AB[i][j] +
// B_AC[i][k] + B_BC[j][k] overestimating the best completion of a partial
// alignment at (i, j, k).
type suffixCtx struct {
	bAB, bAC, bBC *mat.Plane
}

func newSuffixCtx(ca, cb, cc []int8, sch *scoring.Scheme) *suffixCtx {
	return &suffixCtx{
		bAB: pairwise.Backward(ca, cb, sch),
		bAC: pairwise.Backward(ca, cc, sch),
		bBC: pairwise.Backward(cb, cc, sch),
	}
}

func (sc *suffixCtx) release() {
	mat.PutPlane(sc.bAB)
	mat.PutPlane(sc.bAC)
	mat.PutPlane(sc.bBC)
	sc.bAB, sc.bAC, sc.bBC = nil, nil, nil
}

func (sc *suffixCtx) planeBytes() int64 {
	return sc.bAB.Bytes() + sc.bAC.Bytes() + sc.bBC.Bytes()
}

// h is the pairwise-relaxation heuristic: an upper bound on the score of
// completing an alignment from (i, j, k) to the terminal corner.
func (sc *suffixCtx) h(i, j, k int) mat.Score {
	return sc.bAB.At(i, j) + sc.bAC.At(i, k) + sc.bBC.At(j, k)
}

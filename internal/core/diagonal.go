package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// AlignDiagonal computes the same optimum as AlignFull with the
// plane-synchronized wavefront: all cells on the anti-diagonal plane
// i+j+k = d are independent given planes d-1, d-2, d-3, so each plane is
// split across the worker pool and a barrier separates consecutive planes.
//
// This is the classic cell-level wavefront formulation. Compared to the
// blocked schedule of AlignParallel it needs one barrier per plane
// (n+m+p+1 of them) and touches memory in scattered order, which is
// exactly the overhead the paper's blocked design removes; the F6
// experiment quantifies the difference.
func AlignDiagonal(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options) (*alignment.Alignment, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return nil, err
	}
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	if FullMatrixBytes(tr) > opt.maxBytes() {
		return nil, fmt.Errorf("%w: need %d bytes, cap %d", ErrTooLarge, FullMatrixBytes(tr), opt.maxBytes())
	}
	n, m, p := len(ca), len(cb), len(cc)
	st := newScoreTables(ca, cb, cc, sch)
	defer st.release()
	t := mat.GetTensor3(n+1, m+1, p+1)
	defer mat.PutTensor3(t)
	ge2 := 2 * sch.GapExtend()
	workers := opt.workers()

	for d := 0; d <= n+m+p; d++ {
		// The plane barrier is the natural cancellation point: between
		// planes no worker goroutine is in flight.
		if err := checkCtx(ctx); err != nil {
			return nil, err
		}
		iLo := d - m - p
		if iLo < 0 {
			iLo = 0
		}
		iHi := d
		if iHi > n {
			iHi = n
		}
		if iLo > iHi {
			continue
		}
		rows := iHi - iLo + 1
		w := workers
		if w > rows {
			w = rows
		}
		if w <= 1 {
			diagonalRows(t, st, ge2, d, iLo, iHi, m, p)
			continue
		}
		var wg sync.WaitGroup
		wg.Add(w)
		per := (rows + w - 1) / w
		for g := 0; g < w; g++ {
			lo := iLo + g*per
			hi := lo + per - 1
			if hi > iHi {
				hi = iHi
			}
			go func(lo, hi int) {
				defer wg.Done()
				if lo <= hi {
					diagonalRows(t, st, ge2, d, lo, hi, m, p)
				}
			}(lo, hi)
		}
		wg.Wait()
	}

	moves, err := tracebackTensor(t, ca, cb, cc, sch)
	if err != nil {
		return nil, err
	}
	return &alignment.Alignment{Triple: tr, Moves: moves, Score: t.At(n, m, p)}, nil
}

// diagonalRows computes the cells of plane d whose first index lies in
// [iLo, iHi]. Interior cells (all three indices positive) take the
// branch-free table-driven path; the O(surface) boundary cells keep the
// guarded form.
func diagonalRows(t *mat.Tensor3, st *scoreTables, ge2 mat.Score, d, iLo, iHi, m, p int) {
	for i := iLo; i <= iHi; i++ {
		jLo := d - i - p
		if jLo < 0 {
			jLo = 0
		}
		jHi := d - i
		if jHi > m {
			jHi = m
		}
		if i == 0 {
			diagonalBoundary(t, st, ge2, 0, d, jLo, jHi)
			continue
		}
		abRow := st.ab.Row(i)
		acRow := st.ac.Row(i)
		j := jLo
		if j == 0 {
			diagonalBoundary(t, st, ge2, i, d, 0, 0)
			j = 1
		}
		// k = d-i-j decreases as j grows; the last j may hit k == 0.
		for ; j <= jHi; j++ {
			k := d - i - j
			if k == 0 {
				diagonalBoundary(t, st, ge2, i, d, j, j)
				continue
			}
			sAB := abRow[j]
			sac := acRow[k]
			sbc := st.bc.Row(j)[k]
			lane11 := t.Lane(i-1, j-1)
			lane10 := t.Lane(i-1, j)
			lane01 := t.Lane(i, j-1)
			cur := t.Lane(i, j)
			cur[k] = max(
				lane11[k-1]+sAB+sac+sbc, // XXX
				lane11[k]+sAB+ge2,       // XXG
				lane10[k-1]+sac+ge2,     // XGX
				lane01[k-1]+sbc+ge2,     // GXX
				lane10[k]+ge2,           // XGG
				lane01[k]+ge2,           // GXG
				cur[k-1]+ge2,            // GGX
			)
		}
	}
}

// diagonalBoundary computes the cells of plane d in row i whose j index
// lies in [jLo, jHi], tolerating zero indices on any axis.
func diagonalBoundary(t *mat.Tensor3, st *scoreTables, ge2 mat.Score, i, d, jLo, jHi int) {
	for j := jLo; j <= jHi; j++ {
		k := d - i - j
		if i == 0 && j == 0 && k == 0 {
			t.Set(0, 0, 0, 0)
			continue
		}
		best := mat.NegInf
		if i > 0 && j > 0 && k > 0 {
			if v := t.At(i-1, j-1, k-1) + st.ab.At(i, j) + st.ac.At(i, k) + st.bc.At(j, k); v > best {
				best = v
			}
		}
		if i > 0 && j > 0 {
			if v := t.At(i-1, j-1, k) + st.ab.At(i, j) + ge2; v > best {
				best = v
			}
		}
		if i > 0 && k > 0 {
			if v := t.At(i-1, j, k-1) + st.ac.At(i, k) + ge2; v > best {
				best = v
			}
		}
		if j > 0 && k > 0 {
			if v := t.At(i, j-1, k-1) + st.bc.At(j, k) + ge2; v > best {
				best = v
			}
		}
		if i > 0 {
			if v := t.At(i-1, j, k) + ge2; v > best {
				best = v
			}
		}
		if j > 0 {
			if v := t.At(i, j-1, k) + ge2; v > best {
				best = v
			}
		}
		if k > 0 {
			if v := t.At(i, j, k-1) + ge2; v > best {
				best = v
			}
		}
		t.Set(i, j, k, best)
	}
}

package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// AlignDiagonal computes the same optimum as AlignFull with the
// plane-synchronized wavefront: all cells on the anti-diagonal plane
// i+j+k = d are independent given planes d-1, d-2, d-3, so each plane is
// split across the worker pool and a barrier separates consecutive planes.
//
// This is the classic cell-level wavefront formulation. Compared to the
// blocked schedule of AlignParallel it needs one barrier per plane
// (n+m+p+1 of them) and touches memory in scattered order, which is
// exactly the overhead the paper's blocked design removes; the F6
// experiment quantifies the difference.
func AlignDiagonal(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options) (*alignment.Alignment, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return nil, err
	}
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	if FullMatrixBytes(tr) > opt.maxBytes() {
		return nil, fmt.Errorf("%w: need %d bytes, cap %d", ErrTooLarge, FullMatrixBytes(tr), opt.maxBytes())
	}
	n, m, p := len(ca), len(cb), len(cc)
	t := mat.NewTensor3(n+1, m+1, p+1)
	workers := opt.workers()

	for d := 0; d <= n+m+p; d++ {
		// The plane barrier is the natural cancellation point: between
		// planes no worker goroutine is in flight.
		if err := checkCtx(ctx); err != nil {
			return nil, err
		}
		iLo := d - m - p
		if iLo < 0 {
			iLo = 0
		}
		iHi := d
		if iHi > n {
			iHi = n
		}
		if iLo > iHi {
			continue
		}
		rows := iHi - iLo + 1
		w := workers
		if w > rows {
			w = rows
		}
		if w <= 1 {
			diagonalRows(t, ca, cb, cc, sch, d, iLo, iHi)
			continue
		}
		var wg sync.WaitGroup
		wg.Add(w)
		per := (rows + w - 1) / w
		for g := 0; g < w; g++ {
			lo := iLo + g*per
			hi := lo + per - 1
			if hi > iHi {
				hi = iHi
			}
			go func(lo, hi int) {
				defer wg.Done()
				if lo <= hi {
					diagonalRows(t, ca, cb, cc, sch, d, lo, hi)
				}
			}(lo, hi)
		}
		wg.Wait()
	}

	moves, err := tracebackTensor(t, ca, cb, cc, sch)
	if err != nil {
		return nil, err
	}
	return &alignment.Alignment{Triple: tr, Moves: moves, Score: t.At(n, m, p)}, nil
}

// diagonalRows computes the cells of plane d whose first index lies in
// [iLo, iHi].
func diagonalRows(t *mat.Tensor3, ca, cb, cc []int8, sch *scoring.Scheme, d, iLo, iHi int) {
	m, p := len(cb), len(cc)
	ge2 := 2 * sch.GapExtend()
	for i := iLo; i <= iHi; i++ {
		var ai int8
		if i > 0 {
			ai = ca[i-1]
		}
		jLo := d - i - p
		if jLo < 0 {
			jLo = 0
		}
		jHi := d - i
		if jHi > m {
			jHi = m
		}
		for j := jLo; j <= jHi; j++ {
			k := d - i - j
			if i == 0 && j == 0 && k == 0 {
				t.Set(0, 0, 0, 0)
				continue
			}
			var bj, ck int8
			if j > 0 {
				bj = cb[j-1]
			}
			if k > 0 {
				ck = cc[k-1]
			}
			best := mat.NegInf
			if i > 0 && j > 0 && k > 0 {
				if v := t.At(i-1, j-1, k-1) + colXXX(sch, ai, bj, ck); v > best {
					best = v
				}
			}
			if i > 0 && j > 0 {
				if v := t.At(i-1, j-1, k) + sch.Sub(ai, bj) + ge2; v > best {
					best = v
				}
			}
			if i > 0 && k > 0 {
				if v := t.At(i-1, j, k-1) + sch.Sub(ai, ck) + ge2; v > best {
					best = v
				}
			}
			if j > 0 && k > 0 {
				if v := t.At(i, j-1, k-1) + sch.Sub(bj, ck) + ge2; v > best {
					best = v
				}
			}
			if i > 0 {
				if v := t.At(i-1, j, k) + ge2; v > best {
					best = v
				}
			}
			if j > 0 {
				if v := t.At(i, j-1, k) + ge2; v > best {
					best = v
				}
			}
			if k > 0 {
				if v := t.At(i, j, k-1) + ge2; v > best {
					best = v
				}
			}
			t.Set(i, j, k, best)
		}
	}
}

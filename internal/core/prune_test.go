package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/seq"
)

func TestTrivialAlignmentValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		tr := randomTriple(rng, rng.Intn(10), rng.Intn(10), rng.Intn(10))
		aln, err := TrivialAlignment(tr, dnaSch)
		if err != nil {
			t.Fatal(err)
		}
		checkAlignment(t, aln, dnaSch)
		opt, err := AlignFull(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if aln.Score > opt.Score {
			t.Fatalf("trivial score %d exceeds optimum %d", aln.Score, opt.Score)
		}
	}
}

func TestAlignPrunedPreservesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		var tr seq.Triple
		if trial%2 == 0 {
			tr = randomTriple(rng, 5+rng.Intn(20), 5+rng.Intn(20), 5+rng.Intn(20))
		} else {
			tr = relatedTriple(rng.Int63(), 10+rng.Intn(20), 0.15)
		}
		ref, err := AlignFull(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		aln, stats, err := AlignPruned(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkAlignment(t, aln, dnaSch)
		if aln.Score != ref.Score {
			t.Fatalf("trial %d: pruned %d != full %d", trial, aln.Score, ref.Score)
		}
		if stats.EvaluatedCells > stats.TotalCells || stats.EvaluatedCells <= 0 {
			t.Fatalf("trial %d: nonsensical stats %+v", trial, stats)
		}
		if stats.Optimum != ref.Score {
			t.Fatalf("trial %d: stats.Optimum = %d, want %d", trial, stats.Optimum, ref.Score)
		}
	}
}

func TestAlignPrunedTighterBoundPrunesMore(t *testing.T) {
	tr := relatedTriple(9, 50, 0.1)
	ref, err := AlignFull(context.Background(), tr, dnaSch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, loose, err := AlignPruned(context.Background(), tr, dnaSch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	alnTight, tight, err := AlignPruned(context.Background(), tr, dnaSch, Options{}, ref.Score)
	if err != nil {
		t.Fatal(err)
	}
	if alnTight.Score != ref.Score {
		t.Fatalf("tight-bound optimum %d != %d", alnTight.Score, ref.Score)
	}
	if tight.EvaluatedCells > loose.EvaluatedCells {
		t.Fatalf("tighter bound evaluated more cells: %d > %d", tight.EvaluatedCells, loose.EvaluatedCells)
	}
	if tight.Fraction() >= 1 {
		t.Fatalf("optimal bound pruned nothing: fraction = %v", tight.Fraction())
	}
}

func TestAlignPrunedSimilarSequencesPruneHard(t *testing.T) {
	// Highly similar sequences: the admissible corridor hugs the diagonal
	// and the evaluated fraction should be well below 1. The optimal score
	// is passed as the bound, as the paper's Carrillo–Lipman setup does
	// with a good heuristic.
	tr := relatedTriple(77, 60, 0.05)
	ref, err := AlignFull(context.Background(), tr, dnaSch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := AlignPruned(context.Background(), tr, dnaSch, Options{}, ref.Score)
	if err != nil {
		t.Fatal(err)
	}
	if f := stats.Fraction(); f > 0.5 {
		t.Fatalf("similar sequences evaluated fraction %.2f, expected strong pruning", f)
	}
}

func TestAlignPrunedIgnoresWeakerProvidedBound(t *testing.T) {
	tr := relatedTriple(8, 20, 0.2)
	// A hugely negative provided bound must not weaken the built-in one.
	_, withWeak, err := AlignPruned(context.Background(), tr, dnaSch, Options{}, -1<<20)
	if err != nil {
		t.Fatal(err)
	}
	_, base, err := AlignPruned(context.Background(), tr, dnaSch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if withWeak.EvaluatedCells != base.EvaluatedCells {
		t.Fatalf("weaker bound changed pruning: %d vs %d", withWeak.EvaluatedCells, base.EvaluatedCells)
	}
	if withWeak.LowerBound != base.LowerBound {
		t.Fatalf("LowerBound %d != %d", withWeak.LowerBound, base.LowerBound)
	}
}

func TestPruneStatsFraction(t *testing.T) {
	if f := (PruneStats{TotalCells: 100, EvaluatedCells: 25}).Fraction(); f != 0.25 {
		t.Errorf("Fraction = %v, want 0.25", f)
	}
	if f := (PruneStats{}).Fraction(); f != 0 {
		t.Errorf("empty Fraction = %v, want 0", f)
	}
}

func TestAlignPrunedEmptySequences(t *testing.T) {
	tr := dnaTriple(t, "", "ACG", "AG")
	ref, err := AlignFull(context.Background(), tr, dnaSch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	aln, _, err := AlignPruned(context.Background(), tr, dnaSch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if aln.Score != ref.Score {
		t.Fatalf("pruned %d != full %d", aln.Score, ref.Score)
	}
}

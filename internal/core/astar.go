package core

import (
	"context"
	"fmt"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// astarPollInterval is how many heap pops pass between context and memory
// checks: frequent enough that cancellation latency stays in the
// microseconds, rare enough to stay off the hot path.
const astarPollInterval = 4096

// Estimated resident cost per frontier/closed node: the map entry (key +
// value + bucket overhead) plus the amortized heap entry.
const astarNodeBytes = 64

// astarNode is one open-list entry. f = g + h is the priority; g is the
// entry's tentative prefix score, used to drop stale entries whose node
// was since improved.
type astarNode struct {
	f, g mat.Score
	key  uint64
}

// astarHeap is a hand-rolled binary max-heap on f — container/heap costs
// an interface call per swap, which is measurable at millions of pops.
type astarHeap []astarNode

func (h *astarHeap) push(n astarNode) {
	*h = append(*h, n)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].f >= s[i].f {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *astarHeap) pop() astarNode {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	s = s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(s) && s[l].f > s[largest].f {
			largest = l
		}
		if r < len(s) && s[r].f > s[largest].f {
			largest = r
		}
		if largest == i {
			break
		}
		s[i], s[largest] = s[largest], s[i]
		i = largest
	}
	return top
}

// AlignAStar computes the same optimum as AlignFull by best-first search
// over the alignment lattice — Schroedl's A* formulation of bounded
// multiple alignment, specialized to three sequences. The heuristic
// h(i, j, k) = B_AB(i,j) + B_AC(i,k) + B_BC(j,k) sums the pairwise suffix
// optima: it is admissible (each pairwise projection of any three-way
// completion is a pairwise suffix alignment, so its score is bounded by
// the suffix optimum) and consistent (each backward plane's own recurrence
// dominates every single projected move), so the first expansion of a node
// carries its exact prefix score. Successors whose optimistic total
// g + cost + h falls below the incumbent lower bound L are never
// generated — the Carrillo–Lipman test applied on the fly.
//
// Memory is O(expanded + frontier nodes): nothing lattice-shaped is ever
// allocated, which makes A* the kernel of choice for very similar triples
// whose admissible region is a thin tube. The search keeps expanding until
// the best open f drops below the optimum, so every node on every optimal
// path holds its exact score and the preference-ordered traceback —
// reading absent nodes as NegInf — reproduces AlignFull's moves exactly.
//
// The search is cancellable via ctx and enforces Options.MaxBytes against
// its live node estimate; an overrun returns ErrTooLarge like any dense
// kernel refusing an oversized lattice.
func AlignAStar(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options, lower ...mat.Score) (*alignment.Alignment, PruneStats, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return nil, PruneStats{}, err
	}
	if err := checkCtx(ctx); err != nil {
		return nil, PruneStats{}, err
	}
	trivial, err := TrivialAlignment(tr, sch)
	if err != nil {
		return nil, PruneStats{}, err
	}
	bound := trivial.Score
	for _, l := range lower {
		if l > bound {
			bound = l
		}
	}
	sc := newSuffixCtx(ca, cb, cc, sch)
	defer sc.release()
	st := newScoreTables(ca, cb, cc, sch)
	defer st.release()

	n, m, p := len(ca), len(cb), len(cc)
	stats := PruneStats{TotalCells: int64(n+1) * int64(m+1) * int64(p+1), LowerBound: bound}
	strideJ := uint64(p + 1)
	strideI := uint64(m+1) * strideJ
	key := func(i, j, k int) uint64 { return uint64(i)*strideI + uint64(j)*strideJ + uint64(k) }
	target := key(n, m, p)

	ge2 := 2 * sch.GapExtend()
	g := make(map[uint64]mat.Score)
	var open astarHeap
	g[0] = 0
	open.push(astarNode{f: sc.h(0, 0, 0), g: 0, key: 0})

	// relax offers a successor: generated only when its optimistic total
	// can still reach the incumbent bound, recorded only when it improves.
	relax := func(i, j, k int, gNew mat.Score) {
		hv := sc.h(i, j, k)
		if gNew+hv < bound {
			return
		}
		kk := key(i, j, k)
		if old, ok := g[kk]; ok && old >= gNew {
			return
		}
		g[kk] = gNew
		open.push(astarNode{f: gNew + hv, g: gNew, key: kk})
	}

	haveOpt := false
	var optimum mat.Score
	var pops int64
	for len(open) > 0 {
		if pops%astarPollInterval == 0 {
			if err := checkCtx(ctx); err != nil {
				return nil, stats, err
			}
			est := int64(len(g))*astarNodeBytes + int64(cap(open))*24 + sc.planeBytes()
			if est > opt.maxBytes() {
				return nil, stats, fmt.Errorf("%w: A* frontier holds %d nodes (~%d bytes), cap %d",
					ErrTooLarge, len(g), est, opt.maxBytes())
			}
		}
		pops++
		top := open.pop()
		// Exactness requires every node on every optimal path expanded, so
		// the search drains all f ≥ optimum entries instead of stopping at
		// the first target pop.
		if haveOpt && top.f < optimum {
			break
		}
		if top.g != g[top.key] {
			continue // stale: the node was improved after this entry was pushed
		}
		stats.EvaluatedCells++
		if top.key == target && !haveOpt {
			haveOpt = true
			optimum = top.g
			if optimum > bound {
				bound = optimum // tighten the incumbent for the drain phase
			}
			continue
		}
		i := int(top.key / strideI)
		j := int(top.key % strideI / strideJ)
		k := int(top.key % strideJ)
		gv := top.g
		if i < n {
			if j < m {
				sAB := st.ab.Row(i + 1)[j+1]
				if k < p {
					relax(i+1, j+1, k+1, gv+sAB+st.ac.Row(i + 1)[k+1]+st.bc.Row(j + 1)[k+1]) // XXX
				}
				relax(i+1, j+1, k, gv+sAB+ge2) // XXG
			}
			if k < p {
				relax(i+1, j, k+1, gv+st.ac.Row(i + 1)[k+1]+ge2) // XGX
			}
			relax(i+1, j, k, gv+ge2) // XGG
		}
		if j < m {
			if k < p {
				relax(i, j+1, k+1, gv+st.bc.Row(j + 1)[k+1]+ge2) // GXX
			}
			relax(i, j+1, k, gv+ge2) // GXG
		}
		if k < p {
			relax(i, j, k+1, gv+ge2) // GGX
		}
	}
	if !haveOpt {
		return nil, stats, fmt.Errorf("core: A* exhausted the frontier without reaching the goal (is the lower bound valid?)")
	}

	moves, err := tracebackAStar(g, key, ca, cb, cc, sch)
	if err != nil {
		return nil, stats, fmt.Errorf("core: A* traceback failed: %w", err)
	}
	aln := &alignment.Alignment{Triple: tr, Moves: moves, Score: optimum}
	stats.Optimum = optimum
	return aln, stats, nil
}

// tracebackAStar recovers the move sequence from the closed-node scores,
// testing predecessors in tracebackTensor's exact preference order. Stored
// g values never exceed the true prefix optima, so equality certifies a
// genuine optimal predecessor and absent nodes (NegInf) can never match.
func tracebackAStar(g map[uint64]mat.Score, key func(i, j, k int) uint64, ca, cb, cc []int8, sch *scoring.Scheme) ([]alignment.Move, error) {
	at := func(i, j, k int) mat.Score {
		v, ok := g[key(i, j, k)]
		if !ok {
			return mat.NegInf
		}
		return v
	}
	ge2 := 2 * sch.GapExtend()
	i, j, k := len(ca), len(cb), len(cc)
	moves := make([]alignment.Move, 0, i+j+k)
	for i > 0 || j > 0 || k > 0 {
		v := at(i, j, k)
		switch {
		case i > 0 && j > 0 && k > 0 &&
			v == at(i-1, j-1, k-1)+colXXX(sch, ca[i-1], cb[j-1], cc[k-1]):
			moves = append(moves, alignment.MoveXXX)
			i, j, k = i-1, j-1, k-1
		case i > 0 && j > 0 && v == at(i-1, j-1, k)+sch.Sub(ca[i-1], cb[j-1])+ge2:
			moves = append(moves, alignment.MoveXXG)
			i, j = i-1, j-1
		case i > 0 && k > 0 && v == at(i-1, j, k-1)+sch.Sub(ca[i-1], cc[k-1])+ge2:
			moves = append(moves, alignment.MoveXGX)
			i, k = i-1, k-1
		case j > 0 && k > 0 && v == at(i, j-1, k-1)+sch.Sub(cb[j-1], cc[k-1])+ge2:
			moves = append(moves, alignment.MoveGXX)
			j, k = j-1, k-1
		case i > 0 && v == at(i-1, j, k)+ge2:
			moves = append(moves, alignment.MoveXGG)
			i--
		case j > 0 && v == at(i, j-1, k)+ge2:
			moves = append(moves, alignment.MoveGXG)
			j--
		case k > 0 && v == at(i, j, k-1)+ge2:
			moves = append(moves, alignment.MoveGGX)
			k--
		default:
			return nil, fmt.Errorf("core: traceback stuck at (%d,%d,%d)", i, j, k)
		}
	}
	reverseMoves(moves)
	return moves, nil
}

package core

import (
	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// BruteForceScore evaluates the linear-gap SP optimum by exhaustive
// recursive enumeration of every alignment, with no memoization. It is the
// independent test oracle for the dynamic programs; its cost is exponential,
// so it is only usable on very short sequences.
func BruteForceScore(tr seq.Triple, sch *scoring.Scheme) (mat.Score, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return 0, err
	}
	return bruteRec(ca, cb, cc, sch), nil
}

func bruteRec(ca, cb, cc []int8, sch *scoring.Scheme) mat.Score {
	if len(ca) == 0 && len(cb) == 0 && len(cc) == 0 {
		return 0
	}
	ge2 := 2 * sch.GapExtend()
	best := mat.NegInf
	try := func(v mat.Score) {
		if v > best {
			best = v
		}
	}
	if len(ca) > 0 && len(cb) > 0 && len(cc) > 0 {
		try(colXXX(sch, ca[0], cb[0], cc[0]) + bruteRec(ca[1:], cb[1:], cc[1:], sch))
	}
	if len(ca) > 0 && len(cb) > 0 {
		try(sch.Sub(ca[0], cb[0]) + ge2 + bruteRec(ca[1:], cb[1:], cc, sch))
	}
	if len(ca) > 0 && len(cc) > 0 {
		try(sch.Sub(ca[0], cc[0]) + ge2 + bruteRec(ca[1:], cb, cc[1:], sch))
	}
	if len(cb) > 0 && len(cc) > 0 {
		try(sch.Sub(cb[0], cc[0]) + ge2 + bruteRec(ca, cb[1:], cc[1:], sch))
	}
	if len(ca) > 0 {
		try(ge2 + bruteRec(ca[1:], cb, cc, sch))
	}
	if len(cb) > 0 {
		try(ge2 + bruteRec(ca, cb[1:], cc, sch))
	}
	if len(cc) > 0 {
		try(ge2 + bruteRec(ca, cb, cc[1:], sch))
	}
	return best
}

// BruteForceAffineScore evaluates the quasi-natural affine SP optimum by
// exhaustive enumeration over (suffixes, previous column mask); the oracle
// for AlignAffine.
func BruteForceAffineScore(tr seq.Triple, sch *scoring.Scheme) (mat.Score, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return 0, err
	}
	return bruteAffineRec(ca, cb, cc, sch, alignment.Move(7)), nil
}

func bruteAffineRec(ca, cb, cc []int8, sch *scoring.Scheme, prev alignment.Move) mat.Score {
	if len(ca) == 0 && len(cb) == 0 && len(cc) == 0 {
		return 0
	}
	best := mat.NegInf
	for s := alignment.Move(1); s <= 7; s++ {
		di, dj, dk := moveDelta(s)
		if di > len(ca) || dj > len(cb) || dk > len(cc) {
			continue
		}
		var ai, bj, ck int8
		if di == 1 {
			ai = ca[0]
		}
		if dj == 1 {
			bj = cb[0]
		}
		if dk == 1 {
			ck = cc[0]
		}
		v := colBaseAffine(sch, s, ai, bj, ck) +
			mat.Score(openCount[prev][s])*sch.GapOpen() +
			bruteAffineRec(ca[di:], cb[dj:], cc[dk:], sch, s)
		if v > best {
			best = v
		}
	}
	return best
}

//go:build !amd64

package core

// Non-amd64 builds always take the pure-Go advancing-window interiors.
const haveLaneAsm = false

func laneFill16(*laneArgs16) { panic("core: laneFill16 without asm") }
func laneFill32(*laneArgs32) { panic("core: laneFill32 without asm") }

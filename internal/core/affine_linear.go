package core

import (
	"context"
	"fmt"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// AlignAffineLinear computes the same quasi-natural affine optimum as
// AlignAffine in O(7·m·p) working memory instead of seven full lattices —
// the three-dimensional, seven-state analogue of Myers–Miller. The
// divide-and-conquer splits A at its midpoint; the state joined across the
// split plane is the mask of the prefix's last column, so gap runs
// crossing the plane charge their opens exactly once. Sub-problems inherit
// boundary masks (q0 entering, sEnd leaving) and bottom out in the
// boundary-aware full DP.
func AlignAffineLinear(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options) (*alignment.Alignment, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return nil, err
	}
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	// Peak lattice memory: 7 state planes ×2 (sweep double-buffer) ×2
	// (forward and backward concurrently live at the join).
	if need := 28 * mat.PlaneBytes(len(cb)+1, len(cc)+1); need > opt.maxBytes() {
		return nil, fmt.Errorf("%w: need %d bytes, cap %d", ErrTooLarge, need, opt.maxBytes())
	}
	moves, err := affineLinearRec(ctx, ca, cb, cc, sch, 7, 0)
	if err != nil {
		return nil, err
	}
	aln := &alignment.Alignment{Triple: tr, Moves: moves}
	if err := aln.Validate(); err != nil {
		return nil, fmt.Errorf("core: affine linear produced inconsistent alignment: %w", err)
	}
	aln.Score = QuasiNaturalScore(aln, sch)
	return aln, nil
}

// affineSmallVolume bounds the box size at which the recursion switches to
// the boundary-aware full DP; the 7-state lattice costs 7×4 bytes per
// cell, so this keeps leaf allocations around a megabyte.
const affineSmallVolume = 1 << 14

func affineLinearRec(ctx context.Context, ca, cb, cc []int8, sch *scoring.Scheme, q0, sEnd alignment.Move) ([]alignment.Move, error) {
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	if len(ca) <= 1 || (len(ca)+1)*(len(cb)+1)*(len(cc)+1) <= affineSmallVolume {
		moves, _, err := affineDPMoves(ctx, ca, cb, cc, sch, q0, sEnd)
		return moves, err
	}
	mid := len(ca) / 2
	fwd, err := affineForwardPlanes(ctx, ca[:mid], cb, cc, sch, q0)
	if err != nil {
		return nil, err
	}
	bwd, err := affineBackwardPlanes(ctx, ca[mid:], cb, cc, sch, sEnd)
	if err != nil {
		putPlanes7(&fwd)
		return nil, err
	}

	m, p := len(cb), len(cc)
	bestV := mat.NegInf
	bestJ, bestK := 0, 0
	var bestS alignment.Move
	for s := alignment.Move(1); s <= 7; s++ {
		fp, bp := fwd[s-1], bwd[s-1]
		for j := 0; j <= m; j++ {
			fRow := fp.Row(j)
			bRow := bp.Row(j)
			for k := 0; k <= p; k++ {
				f := fRow[k]
				if f <= mat.NegInf/2 {
					continue
				}
				b := bRow[k]
				if b <= mat.NegInf/2 {
					continue
				}
				if v := f + b; v > bestV {
					bestV, bestJ, bestK, bestS = v, j, k, s
				}
			}
		}
	}
	putPlanes7(&fwd)
	putPlanes7(&bwd)
	if bestV <= mat.NegInf/2 {
		return nil, fmt.Errorf("core: affine linear join infeasible (box %d,%d,%d end %s)", len(ca), m, p, sEnd)
	}

	left, err := affineLinearRec(ctx, ca[:mid], cb[:bestJ], cc[:bestK], sch, q0, bestS)
	if err != nil {
		return nil, err
	}
	right, err := affineLinearRec(ctx, ca[mid:], cb[bestJ:], cc[bestK:], sch, bestS, sEnd)
	if err != nil {
		return nil, err
	}
	return append(left, right...), nil
}

// putPlanes7 returns a seven-plane state set to the arena.
func putPlanes7(ps *[7]*mat.Plane) {
	for s := 0; s < 7; s++ {
		mat.PutPlane(ps[s])
		ps[s] = nil
	}
}

// affineForwardPlanes sweeps the 7-state recurrence over all of ca and
// returns, per state s, the plane F[s](j, k): the best score of aligning
// ca, cb[:j], cc[:k] ending with column mask s, with q0 as the virtual
// mask before the first column. The caller owns the returned planes and
// must release them with putPlanes7; on error everything is released here.
func affineForwardPlanes(ctx context.Context, ca, cb, cc []int8, sch *scoring.Scheme, q0 alignment.Move) ([7]*mat.Plane, error) {
	m, p := len(cb), len(cc)
	go_ := sch.GapOpen()
	ge := sch.GapExtend()
	prof := newPairProfile(cc, sch)
	defer prof.release()
	open := newAffineOpenTable(sch)
	var opT [8][8]mat.Score
	for s := 1; s <= 7; s++ {
		for q := 1; q <= 7; q++ {
			opT[s][q] = open[q][s]
		}
	}
	var prev, cur [7]*mat.Plane
	for s := 0; s < 7; s++ {
		prev[s] = mat.GetPlane(m+1, p+1)
		cur[s] = mat.GetPlane(m+1, p+1)
	}

	// cell is the guarded transition for boundary cells (i == 0 plane,
	// j == 0 row, k == 0 column), verbatim from the original sweep.
	cell := func(i, j, k int) {
		var ai, bj, ck int8
		if i > 0 {
			ai = ca[i-1]
		}
		if j > 0 {
			bj = cb[j-1]
		}
		if k > 0 {
			ck = cc[k-1]
		}
		for s := alignment.Move(1); s <= 7; s++ {
			di, dj, dk := moveDelta(s)
			pj, pk := j-dj, k-dk
			if pj < 0 || pk < 0 || (di == 1 && i == 0) {
				cur[s-1].Set(j, k, mat.NegInf)
				continue
			}
			src := &cur
			if di == 1 {
				src = &prev
			}
			best := mat.NegInf
			for q := alignment.Move(1); q <= 7; q++ {
				pv := src[q-1].At(pj, pk)
				if pv <= mat.NegInf/2 {
					continue
				}
				if v := pv + mat.Score(openCount[q][s])*go_; v > best {
					best = v
				}
			}
			if best <= mat.NegInf/2 {
				cur[s-1].Set(j, k, mat.NegInf)
				continue
			}
			cur[s-1].Set(j, k, best+colBaseAffine(sch, s, ai, bj, ck))
		}
	}

	fill := func(i int) {
		if i == 0 {
			for j := 0; j <= m; j++ {
				for k := 0; k <= p; k++ {
					if j == 0 && k == 0 {
						continue // origin cell carries the q0 seed
					}
					cell(0, j, k)
				}
			}
			return
		}
		ai := ca[i-1]
		acRow := prof.Row(ai)
		subAi := sch.SubRow(ai)
		for k := 0; k <= p; k++ {
			cell(i, 0, k)
		}
		for j := 1; j <= m; j++ {
			bj := cb[j-1]
			sAB := subAi[bj]
			bcRow := prof.Row(bj)
			var p0, p1, c0, c1 [7][]mat.Score
			for q := 0; q < 7; q++ {
				p0[q] = prev[q].Row(j)
				p1[q] = prev[q].Row(j - 1)
				c0[q] = cur[q].Row(j)
				c1[q] = cur[q].Row(j - 1)
			}
			// Predecessor row group and k-offset per successor mask:
			// consuming A selects the prev plane, B the j-1 row, C the
			// k-1 column.
			preds := [8]struct {
				rows *[7][]mat.Score
				off  int
			}{
				1: {&p0, 0}, 2: {&c1, 0}, 3: {&p1, 0},
				4: {&c0, -1}, 5: {&p0, -1}, 6: {&c1, -1}, 7: {&p1, -1},
			}
			cell(i, j, 0)
			for k := 1; k <= p; k++ {
				base := affineBases(sAB, acRow[k], bcRow[k], ge)
				for s := 1; s <= 7; s++ {
					rows := preds[s].rows
					idx := k + preds[s].off
					op := &opT[s]
					best := rows[0][idx] + op[1]
					for q := 1; q < 7; q++ {
						if v := rows[q][idx] + op[q+1]; v > best {
							best = v
						}
					}
					if best <= mat.NegInf/2 {
						c0[s-1][k] = mat.NegInf
					} else {
						c0[s-1][k] = best + base[s]
					}
				}
			}
		}
	}

	// Plane i = 0: seed the origin in state q0, then fill in-plane cells.
	for s := 0; s < 7; s++ {
		cur[s].Fill(mat.NegInf)
	}
	cur[q0-1].Set(0, 0, 0)
	fill(0)
	prev, cur = cur, prev

	for i := 1; i <= len(ca); i++ {
		if err := checkCtx(ctx); err != nil {
			putPlanes7(&prev)
			putPlanes7(&cur)
			return [7]*mat.Plane{}, err
		}
		fill(i)
		prev, cur = cur, prev
	}
	putPlanes7(&cur)
	return prev, nil
}

// affineBackwardPlanes computes, per prev-mask q, the plane G[q](j, k):
// the best score of aligning all of ca with cb[j:], cc[k:] when the column
// immediately before this suffix had mask q, under the end constraint
// sEnd (0 = unconstrained; otherwise the suffix's final column — or, for
// an empty suffix, q itself — must be sEnd). The caller owns the returned
// planes and must release them with putPlanes7; on error everything is
// released here.
func affineBackwardPlanes(ctx context.Context, ca, cb, cc []int8, sch *scoring.Scheme, sEnd alignment.Move) ([7]*mat.Plane, error) {
	n, m, p := len(ca), len(cb), len(cc)
	go_ := sch.GapOpen()
	ge := sch.GapExtend()
	prof := newPairProfile(cc, sch)
	defer prof.release()
	open := newAffineOpenTable(sch)
	var next, cur [7]*mat.Plane
	for s := 0; s < 7; s++ {
		next[s] = mat.GetPlane(m+1, p+1)
		cur[s] = mat.GetPlane(m+1, p+1)
	}

	// cell is the guarded transition for boundary cells (terminal plane,
	// j == m row, k == p column), verbatim from the original sweep.
	cell := func(i, j, k int, base bool) {
		var ai, bj, ck int8
		if i < n {
			ai = ca[i]
		}
		if j < m {
			bj = cb[j]
		}
		if k < p {
			ck = cc[k]
		}
		for q := alignment.Move(1); q <= 7; q++ {
			best := mat.NegInf
			if base && j == m && k == p {
				// Empty suffix: valid iff the constraint is already
				// satisfied by the previous column.
				if sEnd == 0 || q == sEnd {
					best = 0
				}
				cur[q-1].Set(j, k, best)
				continue
			}
			for s := alignment.Move(1); s <= 7; s++ {
				di, dj, dk := moveDelta(s)
				nj, nk := j+dj, k+dk
				if nj > m || nk > p || (di == 1 && i >= n) {
					continue
				}
				src := &cur
				if di == 1 {
					src = &next
				}
				sv := src[s-1].At(nj, nk)
				if sv <= mat.NegInf/2 {
					continue
				}
				v := mat.Score(openCount[q][s])*go_ + colBaseAffine(sch, s, ai, bj, ck) + sv
				if v > best {
					best = v
				}
			}
			cur[q-1].Set(j, k, best)
		}
	}

	fill := func(i int, base bool) {
		if base || i >= n {
			for j := m; j >= 0; j-- {
				for k := p; k >= 0; k-- {
					cell(i, j, k, base)
				}
			}
			return
		}
		ai := ca[i]
		acRow := prof.Row(ai)
		subAi := sch.SubRow(ai)
		for k := p; k >= 0; k-- {
			cell(i, m, k, false)
		}
		for j := m - 1; j >= 0; j-- {
			bj := cb[j]
			sAB := subAi[bj]
			bcRow := prof.Row(bj)
			var n0, n1, c0, c1 [7][]mat.Score
			for s := 0; s < 7; s++ {
				n0[s] = next[s].Row(j)
				n1[s] = next[s].Row(j + 1)
				c0[s] = cur[s].Row(j)
				c1[s] = cur[s].Row(j + 1)
			}
			// Successor row group and k-offset per successor mask:
			// consuming A selects the next plane, B the j+1 row, C the
			// k+1 column.
			succs := [8]struct {
				rows *[7][]mat.Score
				off  int
			}{
				1: {&n0, 0}, 2: {&c1, 0}, 3: {&n1, 0},
				4: {&c0, 1}, 5: {&n0, 1}, 6: {&c1, 1}, 7: {&n1, 1},
			}
			cell(i, j, p, false)
			for k := p - 1; k >= 0; k-- {
				// The profile is 1-based against cc, and the suffix sweep
				// consumes cc[k], so its score row is read at k+1.
				base := affineBases(sAB, acRow[k+1], bcRow[k+1], ge)
				var tmp [8]mat.Score
				for s := 1; s <= 7; s++ {
					tmp[s] = succs[s].rows[s-1][k+succs[s].off] + base[s]
				}
				for q := 1; q <= 7; q++ {
					op := &open[q]
					best := tmp[1] + op[1]
					for s := 2; s <= 7; s++ {
						if v := tmp[s] + op[s]; v > best {
							best = v
						}
					}
					if best <= mat.NegInf/2 {
						c0[q-1][k] = mat.NegInf
					} else {
						c0[q-1][k] = best
					}
				}
			}
		}
	}

	fill(n, true)
	next, cur = cur, next
	for i := n - 1; i >= 0; i-- {
		if err := checkCtx(ctx); err != nil {
			putPlanes7(&next)
			putPlanes7(&cur)
			return [7]*mat.Plane{}, err
		}
		fill(i, false)
		next, cur = cur, next
	}
	putPlanes7(&cur)
	return next, nil
}

// QuasiNaturalScore evaluates an alignment under the quasi-natural affine
// objective the affine DP optimizes: column base costs plus a gap-open per
// induced pair whose one-sided pattern differs from the previous column's
// (the first column compares against the all-consume mask).
func QuasiNaturalScore(a *alignment.Alignment, sch *scoring.Scheme) mat.Score {
	ca, cb, cc := a.Triple.A.Codes(), a.Triple.B.Codes(), a.Triple.C.Codes()
	var total mat.Score
	prev := alignment.Move(7)
	i, j, k := 0, 0, 0
	for _, mv := range a.Moves {
		var ai, bj, ck int8
		if mv&alignment.ConsumeA != 0 {
			ai = ca[i]
			i++
		}
		if mv&alignment.ConsumeB != 0 {
			bj = cb[j]
			j++
		}
		if mv&alignment.ConsumeC != 0 {
			ck = cc[k]
			k++
		}
		total += colBaseAffine(sch, mv, ai, bj, ck) + mat.Score(openCount[prev][mv])*sch.GapOpen()
		prev = mv
	}
	return total
}

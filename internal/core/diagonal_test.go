package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/seq"
)

func TestAlignDiagonalEqualsFull(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 12; trial++ {
		var tr seq.Triple
		if trial%2 == 0 {
			tr = randomTriple(rng, rng.Intn(25), rng.Intn(25), rng.Intn(25))
		} else {
			tr = relatedTriple(rng.Int63(), 8+rng.Intn(20), 0.2)
		}
		ref, err := AlignFull(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 7} {
			aln, err := AlignDiagonal(context.Background(), tr, dnaSch, Options{Workers: workers})
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			checkAlignment(t, aln, dnaSch)
			if aln.Score != ref.Score {
				t.Fatalf("trial %d workers=%d (%s): diagonal %d != full %d",
					trial, workers, tr.Describe(), aln.Score, ref.Score)
			}
		}
	}
}

func TestAlignDiagonalEmptyShapes(t *testing.T) {
	for _, s := range [][3]string{
		{"", "", ""}, {"ACGT", "", ""}, {"", "AC", "GT"}, {"A", "C", "G"},
	} {
		tr := dnaTriple(t, s[0], s[1], s[2])
		ref, err := AlignFull(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		aln, err := AlignDiagonal(context.Background(), tr, dnaSch, Options{Workers: 3})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if aln.Score != ref.Score {
			t.Fatalf("%v: diagonal %d != full %d", s, aln.Score, ref.Score)
		}
	}
}

func TestAlignDiagonalMemoryCap(t *testing.T) {
	tr := dnaTriple(t, "ACGTACGTAC", "ACGTACGTAC", "ACGTACGTAC")
	if _, err := AlignDiagonal(context.Background(), tr, dnaSch, Options{MaxBytes: 64}); err == nil {
		t.Fatal("memory cap not enforced")
	}
}

func TestAlignPrunedParallelEqualsSequentialPruned(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 8; trial++ {
		tr := relatedTriple(rng.Int63(), 10+rng.Intn(25), 0.15)
		seqAln, seqStats, err := AlignPruned(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		parAln, parStats, err := AlignPrunedParallel(context.Background(), tr, dnaSch, Options{Workers: 4, BlockSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		checkAlignment(t, parAln, dnaSch)
		if parAln.Score != seqAln.Score {
			t.Fatalf("trial %d: parallel pruned %d != sequential pruned %d", trial, parAln.Score, seqAln.Score)
		}
		if parStats.EvaluatedCells != seqStats.EvaluatedCells {
			t.Fatalf("trial %d: evaluated cells differ: %d vs %d (the bound is deterministic)",
				trial, parStats.EvaluatedCells, seqStats.EvaluatedCells)
		}
		if parStats.LowerBound != seqStats.LowerBound {
			t.Fatalf("trial %d: bounds differ: %d vs %d", trial, parStats.LowerBound, seqStats.LowerBound)
		}
	}
}

func TestAlignPrunedParallelWithHeuristicBound(t *testing.T) {
	tr := relatedTriple(71, 40, 0.1)
	ref, err := AlignFull(context.Background(), tr, dnaSch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	aln, stats, err := AlignPrunedParallel(context.Background(), tr, dnaSch, Options{Workers: 3}, ref.Score)
	if err != nil {
		t.Fatal(err)
	}
	if aln.Score != ref.Score {
		t.Fatalf("pruned parallel %d != %d", aln.Score, ref.Score)
	}
	if stats.Fraction() >= 0.5 {
		t.Fatalf("similar sequences with optimal bound: fraction %.2f, expected strong pruning", stats.Fraction())
	}
}

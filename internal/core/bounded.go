package core

import (
	"context"
	"fmt"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/wavefront"
)

// AlignBounded computes the same optimum as AlignFull while allocating
// only the Carrillo–Lipman admissible band: memory scales with the cells
// the bound admits, not with n·m·p, which is what lets exact alignment of
// similar triples run far past the full-lattice memory ceiling.
//
// The band is planned in two phases before any lattice byte is allocated:
//
//  1. Pairwise 2D bands. With optXY the unconstrained pairwise optima,
//     a cell (i, j, k) admissible under the three-way test
//     T_AB(i,j)+T_AC(i,k)+T_BC(j,k) ≥ L must satisfy each relaxed pairwise
//     test, e.g. T_AB(i,j) ≥ L − optAC − optBC. Scanning the through-plane
//     rows yields a j-hull per i and candidate k-intervals per (i, ·) and
//     (·, j) in O(nm + np + mp).
//  2. Lane refinement. Inside each candidate interval the exact three-way
//     test is applied from both ends, shrinking to the tightest contiguous
//     interval containing every admissible k. The stored band is therefore
//     a contiguous superset of the admissible set — and the admissible set
//     contains every cell of every optimal path, so the band DP computes
//     exact values along all optimal paths (out-of-band reads are NegInf,
//     matching the dense pruned kernel's sentinel for pruned cells).
//
// The fill runs the 2D blocked wavefront over (i, j) — each (i, j) lane is
// filled atomically, so the k-1 dependency stays inside the lane — and is
// cancelled per block via the scheduler, like every parallel kernel here.
// Scores and moves are bit-identical to AlignFull: band values never
// exceed the true DP values, so the preference-ordered traceback can never
// match a spurious predecessor.
//
// L defaults to the TrivialAlignment score; pass a tighter valid lower
// bound (any real alignment's SP score) to shrink the band. The MaxBytes
// admission counts what the kernel actually holds: the band (data + index),
// the three through-planes, and the pair-score tables.
func AlignBounded(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options, lower ...mat.Score) (*alignment.Alignment, PruneStats, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return nil, PruneStats{}, err
	}
	if err := checkCtx(ctx); err != nil {
		return nil, PruneStats{}, err
	}
	trivial, err := TrivialAlignment(tr, sch)
	if err != nil {
		return nil, PruneStats{}, err
	}
	bound := trivial.Score
	for _, l := range lower {
		if l > bound {
			bound = l
		}
	}
	bc := newBoundCtx(ca, cb, cc, sch, bound)
	defer bc.release()

	n, m, p := len(ca), len(cb), len(cc)
	stats := PruneStats{TotalCells: int64(n+1) * int64(m+1) * int64(p+1), LowerBound: bound}
	jLo, jHi, kLo, kHi, cells := planBand(bc, n, m, p)
	if err := checkCtx(ctx); err != nil {
		return nil, stats, err
	}

	tableBytes := mat.PlaneBytes(n+1, m+1) + mat.PlaneBytes(n+1, p+1) + mat.PlaneBytes(m+1, p+1)
	need := mat.BandTensor3Bytes(cells, int64(len(kLo)), int64(n+1)) + bc.planeBytes() + tableBytes
	if need > opt.maxBytes() {
		return nil, stats, fmt.Errorf("%w: need %d bytes (band %d cells), cap %d", ErrTooLarge, need, cells, opt.maxBytes())
	}

	st := newScoreTables(ca, cb, cc, sch)
	defer st.release()
	b := mat.NewBandTensor3(n+1, m+1, p+1, jLo, jHi, kLo, kHi)
	defer b.Release()
	stats.EvaluatedCells = b.Cells()
	ge2 := 2 * sch.GapExtend()

	edge := opt.BlockSize
	if edge <= 0 {
		edge = 2 * DefaultBlockSize
	}
	si := wavefront.Partition(n+1, edge)
	sj := wavefront.Partition(m+1, edge)
	if err := wavefront.Run2DContext(ctx, len(si), len(sj), opt.workers(), func(bi, bj int) {
		for i := si[bi].Lo; i < si[bi].Hi; i++ {
			lo := max(sj[bj].Lo, int(jLo[i]))
			hi := min(sj[bj].Hi, int(jHi[i]))
			for j := lo; j < hi; j++ {
				fillLaneBand(b, st, ge2, i, j)
			}
		}
	}); err != nil {
		return nil, stats, err
	}

	moves, err := tracebackBand(b, ca, cb, cc, sch)
	if err != nil {
		return nil, stats, fmt.Errorf("core: bounded traceback failed (is the lower bound valid?): %w", err)
	}
	aln := &alignment.Alignment{Triple: tr, Moves: moves, Score: b.At(n, m, p)}
	stats.Optimum = aln.Score
	return aln, stats, nil
}

// planBand derives the sparse band from the through-planes: per-i j-hulls,
// then per-lane k-intervals refined by the exact three-way test. The
// returned slices feed mat.NewBandTensor3 directly; cells is the stored
// cell count for memory admission.
func planBand(bc *boundCtx, n, m, p int) (jLo, jHi, kLo, kHi []int32, cells int64) {
	optAB := bc.tAB.At(0, 0)
	optAC := bc.tAC.At(0, 0)
	optBC := bc.tBC.At(0, 0)

	// Pairwise 2D bands: first/last index passing the relaxed per-pair test.
	jLo = make([]int32, n+1)
	jHi = make([]int32, n+1)
	thAB := bc.bound - optAC - optBC
	for i := 0; i <= n; i++ {
		row := bc.tAB.Row(i)
		lo, hi := scanInterval(row, thAB)
		jLo[i], jHi[i] = int32(lo), int32(hi)
	}
	kLoA := make([]int32, n+1)
	kHiA := make([]int32, n+1)
	thAC := bc.bound - optAB - optBC
	for i := 0; i <= n; i++ {
		lo, hi := scanInterval(bc.tAC.Row(i), thAC)
		kLoA[i], kHiA[i] = int32(lo), int32(hi)
	}
	kLoB := make([]int32, m+1)
	kHiB := make([]int32, m+1)
	thBC := bc.bound - optAB - optAC
	for j := 0; j <= m; j++ {
		lo, hi := scanInterval(bc.tBC.Row(j), thBC)
		kLoB[j], kHiB[j] = int32(lo), int32(hi)
	}

	// Lane refinement inside the candidate intervals.
	nLanes := 0
	for i := 0; i <= n; i++ {
		nLanes += int(jHi[i] - jLo[i])
	}
	kLo = make([]int32, 0, nLanes)
	kHi = make([]int32, 0, nLanes)
	for i := 0; i <= n; i++ {
		tabRow := bc.tAB.Row(i)
		tac := bc.tAC.Row(i)
		for j := int(jLo[i]); j < int(jHi[i]); j++ {
			tbc := bc.tBC.Row(j)
			th := bc.bound - tabRow[j]
			lo := max(int(kLoA[i]), int(kLoB[j]))
			hi := min(int(kHiA[i]), int(kHiB[j]))
			for lo < hi && tac[lo]+tbc[lo] < th {
				lo++
			}
			if lo >= hi {
				kLo = append(kLo, 0)
				kHi = append(kHi, 0)
				continue
			}
			for tac[hi-1]+tbc[hi-1] < th {
				hi--
			}
			kLo = append(kLo, int32(lo))
			kHi = append(kHi, int32(hi))
			cells += int64(hi - lo)
		}
	}
	return jLo, jHi, kLo, kHi, cells
}

// scanInterval returns the tightest [lo, hi) containing every index v of
// row with row[v] ≥ th; (0, 0) when none passes.
func scanInterval(row []mat.Score, th mat.Score) (lo, hi int) {
	hi = len(row)
	for lo < hi && row[lo] < th {
		lo++
	}
	if lo == hi {
		return 0, 0
	}
	for row[hi-1] < th {
		hi--
	}
	return lo, hi
}

// bandLaneOf is BandTensor3.Lane tolerating negative indices, so the lane
// fill can ask for i-1/j-1 predecessors unconditionally.
func bandLaneOf(b *mat.BandTensor3, i, j int) ([]mat.Score, int, bool) {
	if i < 0 || j < 0 {
		return nil, 0, false
	}
	return b.Lane(i, j)
}

// bandVal reads one cell from a lane slice fetched by bandLaneOf,
// returning NegInf outside the stored interval — the same sentinel a
// pruned cell holds in the dense kernels.
func bandVal(lane []mat.Score, lo int, ok bool, k int) mat.Score {
	if !ok || k < lo || k >= lo+len(lane) {
		return mat.NegInf
	}
	return lane[k-lo]
}

// fillLaneBand fills the stored k-interval of lane (i, j). Predecessor
// lanes are fetched once per lane; every per-cell read clamps to NegInf
// outside the band, so in-band values never exceed the true DP values
// (which is what keeps the preference-ordered traceback exact).
func fillLaneBand(b *mat.BandTensor3, st *scoreTables, ge2 mat.Score, i, j int) {
	cur, lo, ok := b.Lane(i, j)
	if !ok {
		return
	}
	hi := lo + len(cur)
	l11, o11, ok11 := bandLaneOf(b, i-1, j-1)
	l10, o10, ok10 := bandLaneOf(b, i-1, j)
	l01, o01, ok01 := bandLaneOf(b, i, j-1)
	var sAB mat.Score
	var acRow, bcRow []mat.Score
	if i > 0 {
		acRow = st.ac.Row(i)
	}
	if j > 0 {
		bcRow = st.bc.Row(j)
	}
	if i > 0 && j > 0 {
		sAB = st.ab.Row(i)[j]
	}
	prevCur := mat.NegInf // cur[k-1]; NegInf below the stored interval
	for k := lo; k < hi; k++ {
		best := mat.NegInf
		if k > 0 {
			if i > 0 && j > 0 {
				if v := bandVal(l11, o11, ok11, k-1) + sAB + acRow[k] + bcRow[k]; v > best {
					best = v // XXX
				}
			}
			if i > 0 {
				if v := bandVal(l10, o10, ok10, k-1) + acRow[k] + ge2; v > best {
					best = v // XGX
				}
			}
			if j > 0 {
				if v := bandVal(l01, o01, ok01, k-1) + bcRow[k] + ge2; v > best {
					best = v // GXX
				}
			}
			if v := prevCur + ge2; v > best {
				best = v // GGX
			}
		}
		if i > 0 && j > 0 {
			if v := bandVal(l11, o11, ok11, k) + sAB + ge2; v > best {
				best = v // XXG
			}
		}
		if i > 0 {
			if v := bandVal(l10, o10, ok10, k) + ge2; v > best {
				best = v // XGG
			}
		}
		if j > 0 {
			if v := bandVal(l01, o01, ok01, k) + ge2; v > best {
				best = v // GXG
			}
		}
		if i == 0 && j == 0 && k == 0 {
			best = 0
		}
		cur[k-lo] = best
		prevCur = best
	}
}

// tracebackBand is tracebackTensor over the sparse band: identical
// predecessor preference order, with out-of-band cells reading NegInf so
// they can never match.
func tracebackBand(b *mat.BandTensor3, ca, cb, cc []int8, sch *scoring.Scheme) ([]alignment.Move, error) {
	ge2 := 2 * sch.GapExtend()
	i, j, k := len(ca), len(cb), len(cc)
	moves := make([]alignment.Move, 0, i+j+k)
	for i > 0 || j > 0 || k > 0 {
		v := b.At(i, j, k)
		switch {
		case i > 0 && j > 0 && k > 0 &&
			v == b.At(i-1, j-1, k-1)+colXXX(sch, ca[i-1], cb[j-1], cc[k-1]):
			moves = append(moves, alignment.MoveXXX)
			i, j, k = i-1, j-1, k-1
		case i > 0 && j > 0 && v == b.At(i-1, j-1, k)+sch.Sub(ca[i-1], cb[j-1])+ge2:
			moves = append(moves, alignment.MoveXXG)
			i, j = i-1, j-1
		case i > 0 && k > 0 && v == b.At(i-1, j, k-1)+sch.Sub(ca[i-1], cc[k-1])+ge2:
			moves = append(moves, alignment.MoveXGX)
			i, k = i-1, k-1
		case j > 0 && k > 0 && v == b.At(i, j-1, k-1)+sch.Sub(cb[j-1], cc[k-1])+ge2:
			moves = append(moves, alignment.MoveGXX)
			j, k = j-1, k-1
		case i > 0 && v == b.At(i-1, j, k)+ge2:
			moves = append(moves, alignment.MoveXGG)
			i--
		case j > 0 && v == b.At(i, j-1, k)+ge2:
			moves = append(moves, alignment.MoveGXG)
			j--
		case k > 0 && v == b.At(i, j, k-1)+ge2:
			moves = append(moves, alignment.MoveGGX)
			k--
		default:
			return nil, fmt.Errorf("core: band traceback stuck at (%d,%d,%d)", i, j, k)
		}
	}
	reverseMoves(moves)
	return moves, nil
}

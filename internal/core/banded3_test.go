package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/seq"
)

func TestScoreEqualsFull(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 15; trial++ {
		tr := randomTriple(rng, rng.Intn(25), rng.Intn(25), rng.Intn(25))
		ref, err := AlignFull(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 4} {
			got, err := Score(context.Background(), tr, dnaSch, Options{Workers: workers, BlockSize: 8})
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			if got != ref.Score {
				t.Fatalf("trial %d workers=%d: Score = %d, full = %d", trial, workers, got, ref.Score)
			}
		}
	}
}

func TestScoreMemoryCap(t *testing.T) {
	tr := dnaTriple(t, "ACGTACGT", "ACGTACGT", "ACGTACGT")
	if _, err := Score(context.Background(), tr, dnaSch, Options{MaxBytes: 8}); err == nil {
		t.Fatal("memory cap not enforced")
	}
}

func TestAlignBandedWideIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 10; trial++ {
		tr := randomTriple(rng, rng.Intn(18), rng.Intn(18), rng.Intn(18))
		ref, err := AlignFull(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		w := tr.A.Len() + tr.B.Len() + tr.C.Len() + 1
		aln, err := AlignBanded(context.Background(), tr, dnaSch, Options{}, w)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkAlignment(t, aln, dnaSch)
		if aln.Score != ref.Score {
			t.Fatalf("trial %d: full-width band %d != optimum %d", trial, aln.Score, ref.Score)
		}
	}
}

func TestAlignBandedNarrowIsValidLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	for trial := 0; trial < 12; trial++ {
		tr := randomTriple(rng, rng.Intn(20), rng.Intn(20), rng.Intn(20))
		ref, err := AlignFull(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, 4} {
			aln, err := AlignBanded(context.Background(), tr, dnaSch, Options{}, w)
			if err != nil {
				t.Fatalf("trial %d width=%d (%s): %v", trial, w, tr.Describe(), err)
			}
			checkAlignment(t, aln, dnaSch)
			if aln.Score > ref.Score {
				t.Fatalf("trial %d width=%d: banded %d beats optimum %d", trial, w, aln.Score, ref.Score)
			}
		}
	}
}

func TestAlignBandedUnequalLengthsConnected(t *testing.T) {
	// Highly skewed shapes exercise the progress-scaled tube; width 1 must
	// still produce a valid alignment.
	shapes := [][3]int{{1, 20, 1}, {30, 2, 2}, {0, 15, 3}, {12, 0, 0}}
	g := seq.NewGenerator(seq.DNA, 4)
	for _, s := range shapes {
		tr := seq.Triple{
			A: g.Random("A", s[0]),
			B: g.Random("B", s[1]),
			C: g.Random("C", s[2]),
		}
		aln, err := AlignBanded(context.Background(), tr, dnaSch, Options{}, 1)
		if err != nil {
			t.Fatalf("shape %v: %v", s, err)
		}
		checkAlignment(t, aln, dnaSch)
	}
}

func TestAlignBandedSimilarSequencesExact(t *testing.T) {
	tr := relatedTriple(91, 60, 0.05)
	ref, err := AlignFull(context.Background(), tr, dnaSch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	aln, err := AlignBanded(context.Background(), tr, dnaSch, Options{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if aln.Score != ref.Score {
		t.Fatalf("similar sequences: banded(8) %d != optimum %d", aln.Score, ref.Score)
	}
	// The tube covers a small fraction of the lattice.
	frac := float64(BandedCells(tr, 8)) / float64(int64(tr.A.Len()+1)*int64(tr.B.Len()+1)*int64(tr.C.Len()+1))
	if frac > 0.4 {
		t.Errorf("band covers %.2f of the lattice, expected a thin tube", frac)
	}
}

func TestAlignBandedWidthValidation(t *testing.T) {
	tr := dnaTriple(t, "AC", "AC", "AC")
	if _, err := AlignBanded(context.Background(), tr, dnaSch, Options{}, 0); err == nil {
		t.Fatal("width 0 accepted")
	}
}

func TestBandedCellsMonotoneInWidth(t *testing.T) {
	tr := relatedTriple(93, 25, 0.2)
	prev := int64(0)
	for _, w := range []int{1, 2, 4, 8, 100} {
		c := BandedCells(tr, w)
		if c < prev {
			t.Fatalf("BandedCells not monotone: %d at width %d after %d", c, w, prev)
		}
		prev = c
	}
	total := int64(tr.A.Len()+1) * int64(tr.B.Len()+1) * int64(tr.C.Len()+1)
	if prev != total {
		t.Fatalf("huge width covers %d cells, want all %d", prev, total)
	}
}

package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// boundedKernel abstracts the two Carrillo–Lipman bounded-search kernels so
// the differential suite runs the identical checks against both.
type boundedKernel struct {
	name string
	run  func(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options, lower ...mat.Score) (*alignment.Alignment, PruneStats, error)
}

func boundedKernels() []boundedKernel {
	return []boundedKernel{
		{"bounded", AlignBounded},
		{"astar", AlignAStar},
	}
}

func sameMoves(a, b []alignment.Move) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBoundedKernelsMatchFull pins both bounded kernels bit-identical —
// score AND move sequence — to the full-matrix kernel across schemes,
// shapes, worker counts, and bound tightness. The full kernel's traceback
// preference order is the contract; any divergence in moves means a band
// or frontier truncated an optimal path.
func TestBoundedKernelsMatchFull(t *testing.T) {
	prot, err := scoring.BLOSUM62().WithGaps(0, -3)
	if err != nil {
		t.Fatal(err)
	}
	type workload struct {
		name string
		sch  *scoring.Scheme
		tr   seq.Triple
	}
	rng := rand.New(rand.NewSource(42))
	var loads []workload
	for trial := 0; trial < 8; trial++ {
		loads = append(loads, workload{
			name: "dna-random",
			sch:  dnaSch,
			tr:   randomTriple(rng, rng.Intn(18), rng.Intn(18), rng.Intn(18)),
		})
	}
	for _, rate := range []float64{0.05, 0.2, 0.4} {
		loads = append(loads, workload{
			name: "dna-related",
			sch:  dnaSch,
			tr:   relatedTriple(rng.Int63(), 25+rng.Intn(20), rate),
		})
	}
	g := seq.NewGenerator(seq.Protein, 271)
	loads = append(loads,
		workload{name: "protein-related", sch: prot, tr: g.RelatedTriple(20, seq.Uniform(0.15))},
		workload{name: "protein-random", sch: prot, tr: seq.Triple{
			A: g.Random("A", 12), B: g.Random("B", 15), C: g.Random("C", 9),
		}},
		workload{name: "dna-ragged", sch: dnaSch, tr: dnaTriple(t, "ACGTACGTACGT", "AC", "GTTTTT")},
		workload{name: "dna-empty", sch: dnaSch, tr: dnaTriple(t, "", "ACG", "AG")},
		workload{name: "dna-all-empty", sch: dnaSch, tr: dnaTriple(t, "", "", "")},
	)

	for _, w := range loads {
		ref, err := AlignFull(context.Background(), w.tr, w.sch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range boundedKernels() {
			for _, workers := range []int{1, 2, 4} {
				for _, tight := range []bool{false, true} {
					opt := Options{Workers: workers}
					var lower []mat.Score
					if tight {
						lower = []mat.Score{ref.Score}
					}
					aln, stats, err := k.run(context.Background(), w.tr, w.sch, opt, lower...)
					if err != nil {
						t.Fatalf("%s/%s workers=%d tight=%v: %v", w.name, k.name, workers, tight, err)
					}
					checkAlignment(t, aln, w.sch)
					if aln.Score != ref.Score {
						t.Fatalf("%s/%s workers=%d tight=%v: score %d != full %d",
							w.name, k.name, workers, tight, aln.Score, ref.Score)
					}
					if !sameMoves(aln.Moves, ref.Moves) {
						t.Fatalf("%s/%s workers=%d tight=%v: moves diverge from full traceback\n got %v\nwant %v",
							w.name, k.name, workers, tight, aln.Moves, ref.Moves)
					}
					if stats.Optimum != ref.Score {
						t.Fatalf("%s/%s: stats.Optimum = %d, want %d", w.name, k.name, stats.Optimum, ref.Score)
					}
					if stats.EvaluatedCells <= 0 || stats.EvaluatedCells > stats.TotalCells {
						t.Fatalf("%s/%s: nonsensical stats %+v", w.name, k.name, stats)
					}
				}
			}
		}
	}
}

// TestBoundAdmissibleOnOptimalPath is the quick-check property behind the
// whole construction: with the bound set to the exact optimum — the
// tightest valid value — every cell on the full kernel's optimal path must
// still pass the three-way Carrillo–Lipman test. If this ever fails the
// bound is not admissible and both bounded kernels are unsound.
func TestBoundAdmissibleOnOptimalPath(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		var tr seq.Triple
		if trial%2 == 0 {
			tr = randomTriple(rng, 4+rng.Intn(25), 4+rng.Intn(25), 4+rng.Intn(25))
		} else {
			tr = relatedTriple(rng.Int63(), 10+rng.Intn(30), 0.1+0.3*rng.Float64())
		}
		ref, err := AlignFull(context.Background(), tr, dnaSch, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ca, cb, cc, err := prepare(tr, dnaSch)
		if err != nil {
			t.Fatal(err)
		}
		bc := newBoundCtx(ca, cb, cc, dnaSch, ref.Score)
		i, j, k := 0, 0, 0
		if !bc.admissible(0, 0, 0) {
			t.Fatalf("trial %d: origin inadmissible at bound=optimum", trial)
		}
		for _, mv := range ref.Moves {
			di, dj, dk := moveDelta(mv)
			i, j, k = i+di, j+dj, k+dk
			if !bc.admissible(i, j, k) {
				t.Fatalf("trial %d: optimal-path cell (%d,%d,%d) pruned at bound=optimum %d",
					trial, i, j, k, ref.Score)
			}
		}
		bc.release()
	}
}

// TestBoundedKernelsRejectOversizedBand drives both kernels into their
// memory admission checks with a budget no band can satisfy.
func TestBoundedKernelsRejectOversizedBand(t *testing.T) {
	tr := randomTriple(rand.New(rand.NewSource(7)), 60, 60, 60)
	for _, k := range boundedKernels() {
		_, _, err := k.run(context.Background(), tr, dnaSch, Options{MaxBytes: 4096})
		if !errors.Is(err, ErrTooLarge) {
			t.Errorf("%s: err = %v, want ErrTooLarge", k.name, err)
		}
	}
}

// TestAlignBoundedPastFullMatrixCeiling is the headline capability: under
// one fixed memory budget the full-matrix kernel refuses a triple more
// than 3x longer than its ceiling, while the bounded kernel aligns it
// exactly. The budget admits the full lattice up to n≈127 (128^3 int32
// cells = 8 MiB); the bounded kernel handles n≈400 at ~96% identity in the
// same envelope because its storage scales with the admissible band.
func TestAlignBoundedPastFullMatrixCeiling(t *testing.T) {
	const budget = 8 << 20
	tr := relatedTriple(2026, 400, 0.04)
	if _, err := AlignFull(context.Background(), tr, dnaSch, Options{MaxBytes: budget}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("full kernel accepted an oversized lattice: err = %v", err)
	}
	if _, _, err := AlignPruned(context.Background(), tr, dnaSch, Options{MaxBytes: budget}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("dense pruned kernel accepted an oversized lattice: err = %v", err)
	}
	// Exact reference via the linear-space kernel (score-only check: its
	// traceback is divide-and-conquer, not preference-ordered).
	ref, err := AlignParallelLinear(context.Background(), tr, dnaSch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	aln, stats, err := AlignBounded(context.Background(), tr, dnaSch, Options{MaxBytes: budget}, ref.Score)
	if err != nil {
		t.Fatalf("bounded kernel under %d-byte budget: %v", budget, err)
	}
	checkAlignment(t, aln, dnaSch)
	if aln.Score != ref.Score {
		t.Fatalf("bounded %d != linear-space reference %d", aln.Score, ref.Score)
	}
	if f := stats.Fraction(); f > 0.05 {
		t.Errorf("96%%-identity triple evaluated fraction %.3f, expected a thin band", f)
	}
}

// TestAlignBoundedEvaluatedFractionAt80Identity pins the acceptance
// criterion: at >=80% pairwise identity with a tight incumbent, the bounded
// kernel evaluates at most a quarter of the lattice.
func TestAlignBoundedEvaluatedFractionAt80Identity(t *testing.T) {
	tr := relatedTriple(808, 160, 0.2)
	ref, err := AlignParallelLinear(context.Background(), tr, dnaSch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	aln, stats, err := AlignBounded(context.Background(), tr, dnaSch, Options{}, ref.Score)
	if err != nil {
		t.Fatal(err)
	}
	if aln.Score != ref.Score {
		t.Fatalf("bounded %d != reference %d", aln.Score, ref.Score)
	}
	if f := stats.Fraction(); f > 0.25 {
		t.Errorf("evaluated fraction %.3f at 80%% identity, want <= 0.25", f)
	}
}

// TestAlignAStarExpandsFewerCellsThanBand sanity-checks the point of the
// frontier variant: on very similar triples the expanded-node count stays
// below the contiguous band's cell count.
func TestAlignAStarExpandsFewerCellsThanBand(t *testing.T) {
	tr := relatedTriple(31, 120, 0.03)
	ref, err := AlignParallelLinear(context.Background(), tr, dnaSch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, band, err := AlignBounded(context.Background(), tr, dnaSch, Options{}, ref.Score)
	if err != nil {
		t.Fatal(err)
	}
	_, frontier, err := AlignAStar(context.Background(), tr, dnaSch, Options{}, ref.Score)
	if err != nil {
		t.Fatal(err)
	}
	if frontier.EvaluatedCells > band.EvaluatedCells {
		t.Errorf("A* expanded %d nodes, band evaluated %d cells: frontier should be tighter on near-identical triples",
			frontier.EvaluatedCells, band.EvaluatedCells)
	}
}

package core

import (
	"math"

	"repro/internal/wavefront"
)

// Adaptive non-cubic tiling.
//
// The lattices are laid out with k as the unit-stride (innermost) axis, so a
// tile that is long in k walks contiguous lanes and amortizes each cache-line
// fetch over a full line of cells, while the i and j edges only set how much
// of the (i-1)- and (j-1)-plane state must stay resident while the tile
// fills. The heuristic therefore stretches tk as far as the sequence allows
// and sizes the i×j cross-section so a tile's working set — roughly two
// j×k predecessor faces per lattice — fits in a half of L2. Finally the
// cross-section is shrunk until the i×j block grid is wide enough to feed
// every worker: the wavefront's mid-run anti-diagonal holds on the order of
// blocksAlong(i)×blocksAlong(j) independent blocks (one per (bi, bj) lane),
// so that product must comfortably exceed the worker count or the schedule
// starves regardless of cache behaviour.

// tileL2Bytes is the per-core cache budget the tile working set is sized
// against — half of a conservative 512 KiB L2, leaving room for the score
// tables and scheduler state.
const tileL2Bytes = 256 << 10

// tileMaxK caps the k tile edge; beyond ~128 lanes the per-tile scheduling
// cost is already negligible and longer tiles only reduce wavefront width.
// tileMinK is the floor the schedule-depth rule may shrink it back to —
// below ~32 lanes the unit-stride amortization that justifies long-k tiles
// is gone.
const (
	tileMaxK = 128
	tileMinK = 32
)

// tileMinEdge / tileMaxEdge clamp the i and j tile edges.
const (
	tileMinEdge = 4
	tileMaxEdge = 64
)

// tileBlocksPerWorker is the schedule-depth target: the list-scheduled
// makespan of an nbi×nbj×nbk wavefront only approaches total/workers when
// the pipeline fill and drain (the ramp along the anti-diagonals) is a
// small fraction of the work, which empirically (measured with
// wavefront.Simulate across shapes) needs on the order of 100 blocks per
// worker. Below that the grid is subdivided further even though each tile
// individually would be cache-better.
const tileBlocksPerWorker = 96

// blocksAlong returns the number of tiles covering an axis of length n.
func blocksAlong(n, tile int) int {
	if n <= 0 {
		return 0
	}
	return (n + tile - 1) / tile
}

// AdaptiveTileDims picks tile edges (ti, tj, tk) for an ni×nj×nk lattice
// filled by the given number of workers, where each lattice cell costs
// bytesPerCell bytes (summed over all lattices the kernel fills — 4 for the
// single linear-gap tensor, 28 for the seven affine-gap tensors). The k
// edge is stretched along the unit-stride axis; the i and j edges are sized
// to an L2 working-set budget and then shrunk until the i×j block grid
// offers at least 2×workers lanes of parallelism.
func AdaptiveTileDims(ni, nj, nk, workers, bytesPerCell int) (ti, tj, tk int) {
	if workers <= 0 {
		workers = 1
	}
	if bytesPerCell <= 0 {
		bytesPerCell = 4
	}
	tk = nk
	if tk > tileMaxK {
		tk = tileMaxK
	}
	if tk < 1 {
		tk = 1
	}
	// Working set ≈ 2 predecessor faces of tj×tk cells each (the (i-1) plane
	// slab and the in-flight plane) per lattice; target half the budget per
	// face and solve for a square i×j cross-section.
	e := int(math.Sqrt(float64(tileL2Bytes / 2 / bytesPerCell / tk)))
	if e < tileMinEdge {
		e = tileMinEdge
	}
	if e > tileMaxEdge {
		e = tileMaxEdge
	}
	ti, tj = e, e
	// Widen the wavefront: halve the larger of ti/tj until the i×j block
	// grid can keep every worker busy mid-run (the peak anti-diagonal holds
	// at most one block per (bi, bj) lane).
	for blocksAlong(ni, ti)*blocksAlong(nj, tj) < 2*workers && (ti > tileMinEdge || tj > tileMinEdge) {
		if ti >= tj && ti > tileMinEdge {
			ti /= 2
		} else {
			tj /= 2
		}
		if ti < tileMinEdge {
			ti = tileMinEdge
		}
		if tj < tileMinEdge {
			tj = tileMinEdge
		}
	}
	// Deepen the schedule: on small lattices even a lane-sufficient grid is
	// too shallow to amortize the wavefront ramp. Give k back first (its
	// locality is the cheapest to sacrifice past tileMinK), then the
	// cross-section.
	for blocksAlong(ni, ti)*blocksAlong(nj, tj)*blocksAlong(nk, tk) < tileBlocksPerWorker*workers {
		switch {
		case tk > tileMinK:
			tk /= 2
			if tk < tileMinK {
				tk = tileMinK
			}
		case ti >= tj && ti > tileMinEdge:
			ti /= 2
		case tj > tileMinEdge:
			tj /= 2
		default:
			return ti, tj, tk // tiles bottomed out; the lattice is just small
		}
	}
	return ti, tj, tk
}

// tileDims resolves the tile shape for an ni×nj×nk lattice: a planner-
// negotiated Options.TileDims wins outright, an explicit Options.BlockSize
// remains a cubic override (preserving the historical contract and the F3
// block-size sweep), and otherwise the adaptive heuristic picks a
// non-cubic long-k shape.
func (o Options) tileDims(ni, nj, nk, bytesPerCell int) (ti, tj, tk int) {
	if o.TileDims[0] > 0 && o.TileDims[1] > 0 && o.TileDims[2] > 0 {
		return o.TileDims[0], o.TileDims[1], o.TileDims[2]
	}
	if o.BlockSize > 0 {
		return o.BlockSize, o.BlockSize, o.BlockSize
	}
	return AdaptiveTileDims(ni, nj, nk, wavefront.Workers(o.Workers), bytesPerCell)
}

// tile2D resolves the tile shape for an nj×nk plane sweep (the
// linear-space Hirschberg kernel, which re-fills j×k planes): the adaptive
// heuristic with a singleton i axis.
func (o Options) tile2D(nj, nk, bytesPerCell int) (tj, tk int) {
	if o.BlockSize > 0 {
		return o.BlockSize, o.BlockSize
	}
	_, tj, tk = AdaptiveTileDims(1, nj, nk, wavefront.Workers(o.Workers), bytesPerCell)
	return tj, tk
}

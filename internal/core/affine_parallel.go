package core

import (
	"context"
	"fmt"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/wavefront"
)

// fillRangeAffine evaluates all seven state lattices over one block in
// lexicographic order. Every predecessor cell a state transition reads lies
// in this block or in an axis-predecessor block, so the blocked wavefront
// schedule of Run3D is sufficient — the same argument as the linear-gap
// kernel, applied per state. Boundary cells (any zero index) go through the
// guarded affineCell path; interior lanes take affineLane, which hoists the
// 28 predecessor lanes once per (i, j) and runs the 7×7 transition with
// table reads only.
func fillRangeAffine(d *[7]*mat.Tensor3, st *scoreTables, ca, cb, cc []int8, sch *scoring.Scheme, open *affineOpenTable, si, sj, sk wavefront.Span) {
	if fpFill.Fire() {
		panic("faultpoint: core.fill.block")
	}
	go_ := sch.GapOpen()
	ge := sch.GapExtend()
	// Transposed open table: the interior loop scans predecessor states q
	// for a fixed successor s, so opT[s] is the row it streams.
	var opT [8][8]mat.Score
	for s := 1; s <= 7; s++ {
		for q := 1; q <= 7; q++ {
			opT[s][q] = open[q][s]
		}
	}
	if si.Lo == 0 {
		for j := sj.Lo; j < sj.Hi; j++ {
			for k := sk.Lo; k < sk.Hi; k++ {
				if j == 0 && k == 0 {
					continue // origin carries the boundary seed
				}
				affineCell(d, ca, cb, cc, sch, go_, 0, j, k)
			}
		}
	}
	for i := max(si.Lo, 1); i < si.Hi; i++ {
		abRow := st.ab.Row(i)
		acRow := st.ac.Row(i)
		if sj.Lo == 0 {
			for k := sk.Lo; k < sk.Hi; k++ {
				affineCell(d, ca, cb, cc, sch, go_, i, 0, k)
			}
		}
		for j := max(sj.Lo, 1); j < sj.Hi; j++ {
			if sk.Lo == 0 {
				affineCell(d, ca, cb, cc, sch, go_, i, j, 0)
			}
			affineLane(d, &opT, ge, abRow[j], acRow, st.bc.Row(j), i, j, max(sk.Lo, 1), sk.Hi)
		}
	}
}

// affineCell is the guarded per-cell transition, verbatim from the original
// kernel: used for lattice boundary cells where some predecessors fall
// outside the box.
func affineCell(d *[7]*mat.Tensor3, ca, cb, cc []int8, sch *scoring.Scheme, go_ mat.Score, i, j, k int) {
	var ai, bj, ck int8
	if i > 0 {
		ai = ca[i-1]
	}
	if j > 0 {
		bj = cb[j-1]
	}
	if k > 0 {
		ck = cc[k-1]
	}
	for s := alignment.Move(1); s <= 7; s++ {
		di, dj, dk := moveDelta(s)
		pi, pj, pk := i-di, j-dj, k-dk
		if pi < 0 || pj < 0 || pk < 0 {
			continue
		}
		best := mat.NegInf
		for q := alignment.Move(1); q <= 7; q++ {
			pv := d[q-1].At(pi, pj, pk)
			if pv <= mat.NegInf/2 {
				continue
			}
			if v := pv + mat.Score(openCount[q][s])*go_; v > best {
				best = v
			}
		}
		if best > mat.NegInf/2 {
			d[s-1].Set(i, j, k, best+colBaseAffine(sch, s, ai, bj, ck))
		}
	}
}

// affineLane fills cells (i, j, lo..hi-1), i, j ≥ 1, lo ≥ 1, of all seven
// state lattices. Unreachable predecessors hold NegInf and can join the max
// unconditionally: NegInf plus any open penalty stays below NegInf/2, so
// they neither win against a reachable value (all of which are tiny next to
// NegInf/2) nor pass the feasibility gate when everything is unreachable.
func affineLane(d *[7]*mat.Tensor3, opT *[8][8]mat.Score, ge, sAB mat.Score, acRow, bcRow []mat.Score, i, j, lo, hi int) {
	acRow = acRow[:hi]
	bcRow = bcRow[:hi]
	var l11, l10, l01, lcc [7][]mat.Score
	for q := 0; q < 7; q++ {
		l11[q] = d[q].Lane(i-1, j-1)
		l10[q] = d[q].Lane(i-1, j)
		l01[q] = d[q].Lane(i, j-1)
		lcc[q] = d[q].Lane(i, j)[:hi:hi]
	}
	// Predecessor lane group and k-offset per successor mask: consuming A
	// steps i, B steps j, C steps k.
	preds := [8]struct {
		lanes *[7][]mat.Score
		off   int
	}{
		1: {&l10, 0}, 2: {&l01, 0}, 3: {&l11, 0},
		4: {&lcc, -1}, 5: {&l10, -1}, 6: {&l01, -1}, 7: {&l11, -1},
	}
	// The dominating no-op reslice proves lo ≥ 0 to the compiler, which
	// drops the bounds checks on the profile reads in the k loop.
	_ = acRow[:lo]
	for k := lo; k < hi; k++ {
		base := affineBases(sAB, acRow[k], bcRow[k], ge)
		for s := 1; s <= 7; s++ {
			lanes := preds[s].lanes
			idx := k + preds[s].off
			op := &opT[s]
			best := lanes[0][idx] + op[1]
			for q := 1; q < 7; q++ {
				if v := lanes[q][idx] + op[q+1]; v > best {
					best = v
				}
			}
			if best > mat.NegInf/2 {
				lcc[s-1][k] = best + base[s]
			}
		}
	}
}

// AlignAffineParallel computes the same quasi-natural affine optimum as
// AlignAffine with the blocked-wavefront schedule over a goroutine pool —
// the paper's parallelization applied to the seven-state recurrence.
func AlignAffineParallel(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options) (*alignment.Alignment, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return nil, err
	}
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	if 7*FullMatrixBytes(tr) > opt.maxBytes() {
		return nil, fmt.Errorf("%w: need %d bytes, cap %d", ErrTooLarge, 7*FullMatrixBytes(tr), opt.maxBytes())
	}
	if len(ca) == 0 && len(cb) == 0 && len(cc) == 0 {
		return &alignment.Alignment{Triple: tr, Moves: nil, Score: 0}, nil
	}
	n, m, p := len(ca), len(cb), len(cc)
	st := newScoreTables(ca, cb, cc, sch)
	defer st.release()
	open := newAffineOpenTable(sch)
	var d [7]*mat.Tensor3
	for s := 0; s < 7; s++ {
		d[s] = mat.GetTensor3(n+1, m+1, p+1)
		d[s].Fill(mat.NegInf)
		defer mat.PutTensor3(d[s])
	}
	d[6].Set(0, 0, 0, 0) // origin in state 7: the first column pays its opens

	// 28 bytes per cell: seven 4-byte lattices, one per affine gap state.
	ti, tj, tk := opt.tileDims(n+1, m+1, p+1, 28)
	si := wavefront.Partition(n+1, ti)
	sj := wavefront.Partition(m+1, tj)
	sk := wavefront.Partition(p+1, tk)
	if err := wavefront.Run3DContext(ctx, len(si), len(sj), len(sk), opt.workers(), func(bi, bj, bk int) {
		fillRangeAffine(&d, st, ca, cb, cc, sch, &open, si[bi], sj[bj], sk[bk])
	}); err != nil {
		return nil, err
	}

	moves, score, err := affineTraceback(d, ca, cb, cc, sch, 0)
	if err != nil {
		return nil, err
	}
	aln := &alignment.Alignment{Triple: tr, Moves: moves, Score: score}
	if err := aln.Validate(); err != nil {
		return nil, fmt.Errorf("core: parallel affine alignment invalid: %w", err)
	}
	return aln, nil
}

package core

import (
	"context"
	"fmt"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/wavefront"
)

// fillRangeAffine evaluates all seven state lattices over one block in
// lexicographic order. Every predecessor cell a state transition reads lies
// in this block or in an axis-predecessor block, so the blocked wavefront
// schedule of Run3D is sufficient — the same argument as the linear-gap
// kernel, applied per state.
func fillRangeAffine(d *[7]*mat.Tensor3, ca, cb, cc []int8, sch *scoring.Scheme, si, sj, sk wavefront.Span) {
	go_ := sch.GapOpen()
	for i := si.Lo; i < si.Hi; i++ {
		var ai int8
		if i > 0 {
			ai = ca[i-1]
		}
		for j := sj.Lo; j < sj.Hi; j++ {
			var bj int8
			if j > 0 {
				bj = cb[j-1]
			}
			for k := sk.Lo; k < sk.Hi; k++ {
				if i == 0 && j == 0 && k == 0 {
					continue // origin carries the boundary seed
				}
				var ck int8
				if k > 0 {
					ck = cc[k-1]
				}
				for s := alignment.Move(1); s <= 7; s++ {
					di, dj, dk := moveDelta(s)
					pi, pj, pk := i-di, j-dj, k-dk
					if pi < 0 || pj < 0 || pk < 0 {
						continue
					}
					best := mat.NegInf
					for q := alignment.Move(1); q <= 7; q++ {
						pv := d[q-1].At(pi, pj, pk)
						if pv <= mat.NegInf/2 {
							continue
						}
						if v := pv + mat.Score(openCount[q][s])*go_; v > best {
							best = v
						}
					}
					if best > mat.NegInf/2 {
						d[s-1].Set(i, j, k, best+colBaseAffine(sch, s, ai, bj, ck))
					}
				}
			}
		}
	}
}

// AlignAffineParallel computes the same quasi-natural affine optimum as
// AlignAffine with the blocked-wavefront schedule over a goroutine pool —
// the paper's parallelization applied to the seven-state recurrence.
func AlignAffineParallel(ctx context.Context, tr seq.Triple, sch *scoring.Scheme, opt Options) (*alignment.Alignment, error) {
	ca, cb, cc, err := prepare(tr, sch)
	if err != nil {
		return nil, err
	}
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	if 7*FullMatrixBytes(tr) > opt.maxBytes() {
		return nil, fmt.Errorf("%w: need %d bytes, cap %d", ErrTooLarge, 7*FullMatrixBytes(tr), opt.maxBytes())
	}
	if len(ca) == 0 && len(cb) == 0 && len(cc) == 0 {
		return &alignment.Alignment{Triple: tr, Moves: nil, Score: 0}, nil
	}
	n, m, p := len(ca), len(cb), len(cc)
	var d [7]*mat.Tensor3
	for s := 0; s < 7; s++ {
		d[s] = mat.NewTensor3(n+1, m+1, p+1)
		d[s].Fill(mat.NegInf)
	}
	d[6].Set(0, 0, 0, 0) // origin in state 7: the first column pays its opens

	bs := opt.blockSize()
	si := wavefront.Partition(n+1, bs)
	sj := wavefront.Partition(m+1, bs)
	sk := wavefront.Partition(p+1, bs)
	if err := wavefront.Run3DContext(ctx, len(si), len(sj), len(sk), opt.workers(), func(bi, bj, bk int) {
		fillRangeAffine(&d, ca, cb, cc, sch, si[bi], sj[bj], sk[bk])
	}); err != nil {
		return nil, err
	}

	moves, score, err := affineTraceback(d, ca, cb, cc, sch, 0)
	if err != nil {
		return nil, err
	}
	aln := &alignment.Alignment{Triple: tr, Moves: moves, Score: score}
	if err := aln.Validate(); err != nil {
		return nil, fmt.Errorf("core: parallel affine alignment invalid: %w", err)
	}
	return aln, nil
}

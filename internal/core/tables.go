package core

import (
	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/scoring"
)

// This file builds the precomputed score tables the cell-fill kernels read
// instead of calling scoring.Scheme.Sub inside the O(n·m·p) loop.
//
// Full-matrix kernels use dense pair-score planes (scoreTables): subAB is
// (n+1)×(m+1) with subAB[i][j] = Sub(A[i-1], B[j-1]), and likewise subAC
// and subBC. A lattice cell (i, j, k) then needs one plane cell and two
// row reads that the interior loop streams sequentially. The planes cost
// O(nm + np + mp) extra memory — noise next to the O(nmp) lattice the same
// kernels allocate. Row 0 and column 0 are never read (boundary cells use
// no substitution scores) and are left unspecified.
//
// Linear-space sweeps, whose whole point is O(mp) memory, use a residue
// profile instead (pairProfile): one row per alphabet code against the
// k-axis sequence, O(σ·p) memory, with the same one-read-per-cell inner
// loop.

// scoreTablesOf holds the dense pair-score planes for one (sub-)problem,
// stored at the lattice's negotiated cell width so the interior streams the
// same element size everywhere.
type scoreTablesOf[T mat.Cell] struct {
	ab *mat.PlaneOf[T] // (n+1)×(m+1): ab[i][j] = Sub(ca[i-1], cb[j-1]) for i,j ≥ 1
	ac *mat.PlaneOf[T] // (n+1)×(p+1): ac[i][k] = Sub(ca[i-1], cc[k-1]) for i,k ≥ 1
	bc *mat.PlaneOf[T] // (m+1)×(p+1): bc[j][k] = Sub(cb[j-1], cc[k-1]) for j,k ≥ 1
}

// scoreTables is the Score-width instantiation the non-negotiated kernels
// (affine, pruned, diagonal, banded) build.
type scoreTables = scoreTablesOf[mat.Score]

// newScoreTables builds the three pair-score planes from the arena. Release
// them with release when the fill and traceback are done.
func newScoreTables(ca, cb, cc []int8, sch *scoring.Scheme) *scoreTables {
	return newScoreTablesOf[mat.Score](ca, cb, cc, sch)
}

// newScoreTablesOf is newScoreTables at an arbitrary cell width.
func newScoreTablesOf[T mat.Cell](ca, cb, cc []int8, sch *scoring.Scheme) *scoreTablesOf[T] {
	st := &scoreTablesOf[T]{
		ab: mat.GetPlaneOf[T](len(ca)+1, len(cb)+1),
		ac: mat.GetPlaneOf[T](len(ca)+1, len(cc)+1),
		bc: mat.GetPlaneOf[T](len(cb)+1, len(cc)+1),
	}
	fillPairPlane(st.ab, ca, cb, sch)
	fillPairPlane(st.ac, ca, cc, sch)
	fillPairPlane(st.bc, cb, cc, sch)
	return st
}

func (st *scoreTablesOf[T]) release() {
	mat.PutPlaneOf(st.ab)
	mat.PutPlaneOf(st.ac)
	mat.PutPlaneOf(st.bc)
	st.ab, st.ac, st.bc = nil, nil, nil
}

// fillPairPlane fills p[i][j] = Sub(x[i-1], y[j-1]) for i, j ≥ 1. Row 0 and
// column 0 are left untouched (pooled planes keep stale values there).
func fillPairPlane[T mat.Cell](p *mat.PlaneOf[T], x, y []int8, sch *scoring.Scheme) {
	for i := 1; i <= len(x); i++ {
		row := p.Row(i)[1:]
		sub := sch.SubRow(x[i-1])
		for j, yc := range y {
			row[j] = T(sub[yc])
		}
	}
}

// pairProfile maps a residue code to its score row against one sequence:
// Row(a)[k] = Sub(a, z[k-1]) for k ≥ 1 (index 0 unspecified). It serves
// both the A-vs-C and B-vs-C lookups of a (j, k) plane sweep with O(σ·p)
// memory.
type pairProfile struct {
	rows *mat.Plane // σ×(len(z)+1)
}

func newPairProfile(z []int8, sch *scoring.Scheme) *pairProfile {
	n := sch.Alphabet().Size()
	pr := &pairProfile{rows: mat.GetPlane(n, len(z)+1)}
	for a := 0; a < n; a++ {
		row := pr.rows.Row(a)[1:]
		sub := sch.SubRow(int8(a))
		for k, zc := range z {
			row[k] = sub[zc]
		}
	}
	return pr
}

// Row returns the score row for residue code a; index k ≥ 1 is
// Sub(a, z[k-1]).
func (pr *pairProfile) Row(a int8) []mat.Score { return pr.rows.Row(int(a)) }

func (pr *pairProfile) release() {
	mat.PutPlane(pr.rows)
	pr.rows = nil
}

// affineOpenTable is the per-scheme gap-open transition cost:
// openPen[q][s] = openCount[q][s] · GapOpen. Precomputing it turns the
// innermost 7-state maximization into one add per predecessor state.
type affineOpenTable [8][8]mat.Score

func newAffineOpenTable(sch *scoring.Scheme) affineOpenTable {
	var t affineOpenTable
	go_ := sch.GapOpen()
	for q := 0; q < 8; q++ {
		for s := 0; s < 8; s++ {
			t[q][s] = mat.Score(openCount[q][s]) * go_
		}
	}
	return t
}

// affineBases returns, indexed by column mask s ∈ [1, 7], the
// substitution-plus-gap-extend base score of a column given the three pair
// scores of the cell — the table-driven equivalent of seven colBaseAffine
// calls.
func affineBases(sab, sac, sbc, ge mat.Score) (b [8]mat.Score) {
	ge2 := 2 * ge
	const (
		mA = alignment.ConsumeA
		mB = alignment.ConsumeB
		mC = alignment.ConsumeC
	)
	b[mA] = ge2
	b[mB] = ge2
	b[mC] = ge2
	b[mA|mB] = sab + ge2
	b[mA|mC] = sac + ge2
	b[mB|mC] = sbc + ge2
	b[mA|mB|mC] = sab + sac + sbc
	return b
}

package pairwise

import (
	"testing"

	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// Micro-benchmarks of the pairwise kernels; the experiment-level
// benchmarks live in the repository root.

func benchPair(n int) (a, b []int8) {
	g := seq.NewGenerator(seq.DNA, 1234)
	parent := g.Random("p", n)
	child := g.Mutate("c", parent, seq.MutationModel{SubstitutionRate: 0.2, InsertionRate: 0.03, DeletionRate: 0.03})
	return parent.Codes(), child.Codes()
}

var pairSink mat.Score

func BenchmarkGlobal(b *testing.B) {
	a, bb := benchPair(500)
	sch := scoring.DNADefault()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pairSink = Global(a, bb, sch).Score
	}
}

func BenchmarkGlobalScoreOnly(b *testing.B) {
	a, bb := benchPair(500)
	sch := scoring.DNADefault()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pairSink = GlobalScore(a, bb, sch)
	}
}

func BenchmarkHirschberg(b *testing.B) {
	a, bb := benchPair(500)
	sch := scoring.DNADefault()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pairSink = Hirschberg(a, bb, sch).Score
	}
}

func BenchmarkGlobalAffine(b *testing.B) {
	a, bb := benchPair(500)
	sch, err := scoring.DNADefault().WithGaps(-4, -1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pairSink = GlobalAffine(a, bb, sch).Score
	}
}

func BenchmarkMyersMiller(b *testing.B) {
	a, bb := benchPair(500)
	sch, err := scoring.DNADefault().WithGaps(-4, -1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pairSink = MyersMiller(a, bb, sch).Score
	}
}

func BenchmarkLocal(b *testing.B) {
	a, bb := benchPair(500)
	sch := scoring.DNADefault()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pairSink = Local(a, bb, sch).Score
	}
}

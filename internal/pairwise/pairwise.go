// Package pairwise implements two-sequence global and local alignment.
//
// It is a substrate of the three-sequence aligner in three roles: its
// forward/backward score matrices feed the Carrillo–Lipman pruning bounds,
// its global aligners implement the center-star and progressive baselines,
// and its Hirschberg variant is the 2D prototype of the 3D linear-space
// algorithm. All aligners maximize; gap penalties are non-positive scores
// taken from a scoring.Scheme.
package pairwise

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// Op is one column of a pairwise alignment.
type Op uint8

const (
	// OpBoth consumes one residue of each sequence (match or mismatch).
	OpBoth Op = iota
	// OpA consumes a residue of the first sequence against a gap.
	OpA
	// OpB consumes a residue of the second sequence against a gap.
	OpB
)

// Result is a scored pairwise alignment expressed as a column sequence.
type Result struct {
	Score mat.Score
	Ops   []Op
}

// Strings renders the alignment as two equal-length gapped rows.
func (r Result) Strings(a, b *seq.Sequence) (rowA, rowB string) {
	bufA := make([]byte, 0, len(r.Ops))
	bufB := make([]byte, 0, len(r.Ops))
	i, j := 0, 0
	for _, op := range r.Ops {
		switch op {
		case OpBoth:
			bufA = append(bufA, a.At(i))
			bufB = append(bufB, b.At(j))
			i, j = i+1, j+1
		case OpA:
			bufA = append(bufA, a.At(i))
			bufB = append(bufB, '-')
			i++
		case OpB:
			bufA = append(bufA, '-')
			bufB = append(bufB, b.At(j))
			j++
		}
	}
	return string(bufA), string(bufB)
}

// Consumed returns how many residues of each sequence the ops consume.
func Consumed(ops []Op) (na, nb int) {
	for _, op := range ops {
		switch op {
		case OpBoth:
			na++
			nb++
		case OpA:
			na++
		case OpB:
			nb++
		}
	}
	return na, nb
}

// Rescore recomputes the linear-gap score of ops against the two code
// strings, independent of any DP matrix; tests use it to cross-check
// tracebacks.
func Rescore(ops []Op, a, b []int8, sch *scoring.Scheme) (mat.Score, error) {
	na, nb := Consumed(ops)
	if na != len(a) || nb != len(b) {
		return 0, fmt.Errorf("pairwise: ops consume %d/%d residues, sequences have %d/%d", na, nb, len(a), len(b))
	}
	var total mat.Score
	i, j := 0, 0
	for _, op := range ops {
		switch op {
		case OpBoth:
			total += sch.Sub(a[i], b[j])
			i, j = i+1, j+1
		case OpA:
			total += sch.GapExtend()
			i++
		case OpB:
			total += sch.GapExtend()
			j++
		}
	}
	return total, nil
}

// Forward fills the (len(a)+1)×(len(b)+1) global-alignment score lattice
// under the linear gap model: F[i][j] is the optimal score of aligning
// a[:i] with b[:j]. The full plane is returned because the Carrillo–Lipman
// bounds need every cell. The plane is drawn from the mat arena; callers
// that are done with it may hand it back with mat.PutPlane.
func Forward(a, b []int8, sch *scoring.Scheme) *mat.Plane {
	n, m := len(a), len(b)
	ge := sch.GapExtend()
	f := mat.GetPlane(n+1, m+1)
	row0 := f.Row(0)
	row0[0] = 0
	for j := 1; j <= m; j++ {
		row0[j] = row0[j-1] + ge
	}
	for i := 1; i <= n; i++ {
		prev := f.Row(i - 1)[: m+1 : m+1]
		cur := f.Row(i)[: m+1 : m+1]
		sub := sch.SubRow(a[i-1])
		diag := prev[0]
		left := prev[0] + ge
		cur[0] = left
		for j := 1; j <= m; j++ {
			up := prev[j]
			best := max(diag+sub[b[j-1]], up+ge, left+ge)
			cur[j] = best
			diag, left = up, best
		}
	}
	return f
}

// Backward returns the suffix lattice: B[i][j] is the optimal score of
// aligning a[i:] with b[j:]. It is the Forward lattice of the reversed
// sequences with both indices flipped. Like Forward, the plane may be
// returned to the arena with mat.PutPlane.
func Backward(a, b []int8, sch *scoring.Scheme) *mat.Plane {
	n, m := len(a), len(b)
	ar := reverseCodes(a)
	br := reverseCodes(b)
	fr := Forward(ar, br, sch)
	out := mat.GetPlane(n+1, m+1)
	for i := 0; i <= n; i++ {
		row := out.Row(i)
		frRow := fr.Row(n - i)
		for j := 0; j <= m; j++ {
			row[j] = frRow[m-j]
		}
	}
	mat.PutPlane(fr)
	return out
}

func reverseCodes(s []int8) []int8 {
	out := make([]int8, len(s))
	for i, c := range s {
		out[len(s)-1-i] = c
	}
	return out
}

// Through returns the projection plane T[i][j] = Forward[i][j] +
// Backward[i][j]: the score of the best global alignment of a with b
// constrained to pass through the cut (i, j). It is the per-pair term of
// the Carrillo–Lipman bound — T[i][j] < L − (other pairs' ceilings) proves
// no alignment through (i, j) can reach the lower bound L — and every cell
// of the plane satisfies T[i][j] ≤ T[n][m] = the unconstrained optimum,
// with equality exactly on the optimal paths. The plane is drawn from the
// mat arena; release it with mat.PutPlane.
func Through(a, b []int8, sch *scoring.Scheme) *mat.Plane {
	t := Forward(a, b, sch)
	bw := Backward(a, b, sch)
	n, m := len(a), len(b)
	for i := 0; i <= n; i++ {
		row := t.Row(i)[: m+1 : m+1]
		brow := bw.Row(i)[: m+1 : m+1]
		for j := 0; j <= m; j++ {
			row[j] += brow[j]
		}
	}
	mat.PutPlane(bw)
	return t
}

// Global computes an optimal global alignment under the linear gap model
// (Needleman–Wunsch) with full-matrix traceback.
func Global(a, b []int8, sch *scoring.Scheme) Result {
	n, m := len(a), len(b)
	f := Forward(a, b, sch)
	defer mat.PutPlane(f)
	ge := sch.GapExtend()
	ops := make([]Op, 0, n+m)
	i, j := n, m
	for i > 0 || j > 0 {
		v := f.At(i, j)
		switch {
		case i > 0 && j > 0 && v == f.At(i-1, j-1)+sch.Sub(a[i-1], b[j-1]):
			ops = append(ops, OpBoth)
			i, j = i-1, j-1
		case i > 0 && v == f.At(i-1, j)+ge:
			ops = append(ops, OpA)
			i--
		case j > 0 && v == f.At(i, j-1)+ge:
			ops = append(ops, OpB)
			j--
		default:
			panic(fmt.Sprintf("pairwise: traceback stuck at (%d,%d)", i, j))
		}
	}
	reverseOps(ops)
	return Result{Score: f.At(n, m), Ops: ops}
}

func reverseOps(ops []Op) {
	for l, r := 0, len(ops)-1; l < r; l, r = l+1, r-1 {
		ops[l], ops[r] = ops[r], ops[l]
	}
}

// GlobalScore computes only the optimal global score in O(min-row) space.
func GlobalScore(a, b []int8, sch *scoring.Scheme) mat.Score {
	row := lastRow(a, b, sch)
	s := row[len(b)]
	mat.PutScores(row)
	return s
}

// lastRow returns the final row of the Forward lattice using two rows of
// memory; it is the workhorse of the Hirschberg recursion. The row comes
// from the mat arena; the caller must release it with mat.PutScores.
func lastRow(a, b []int8, sch *scoring.Scheme) []mat.Score {
	m := len(b)
	ge := sch.GapExtend()
	prev := mat.GetScores(m + 1)
	cur := mat.GetScores(m + 1)
	prev[0] = 0
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] + ge
	}
	for i := 1; i <= len(a); i++ {
		sub := sch.SubRow(a[i-1])
		diag := prev[0]
		left := prev[0] + ge
		cur[0] = left
		for j := 1; j <= m; j++ {
			up := prev[j]
			best := max(diag+sub[b[j-1]], up+ge, left+ge)
			cur[j] = best
			diag, left = up, best
		}
		prev, cur = cur, prev
	}
	mat.PutScores(cur)
	return prev
}

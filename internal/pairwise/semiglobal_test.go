package pairwise

import (
	"math/rand"
	"testing"
)

func TestFitFindsEmbeddedQuery(t *testing.T) {
	// Query embedded exactly: score = perfect match, span = its location.
	b := codes(t, "TTTTTACGTACGTTTTT")
	a := codes(t, "ACGTACGT")
	r := Fit(a, b, dnaScheme)
	if r.Score != 16 {
		t.Fatalf("fit score = %d, want 16", r.Score)
	}
	if r.StartB != 5 || r.EndB != 13 {
		t.Fatalf("fit span = b[%d:%d], want b[5:13]", r.StartB, r.EndB)
	}
	na, nb := Consumed(r.Ops)
	if na != len(a) || nb != r.EndB-r.StartB {
		t.Fatalf("ops consume %d/%d, want %d/%d", na, nb, len(a), r.EndB-r.StartB)
	}
}

func TestFitAtLeastGlobal(t *testing.T) {
	// Free end gaps can only help: fit score >= global score.
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 40; trial++ {
		a := randomCodes(rng, rng.Intn(15))
		b := randomCodes(rng, rng.Intn(30))
		fit := Fit(a, b, dnaScheme)
		glob := Global(a, b, dnaScheme).Score
		if fit.Score < glob {
			t.Fatalf("trial %d: fit %d below global %d", trial, fit.Score, glob)
		}
		// Rescoring the ops against the spanned substring reproduces the score.
		got, err := Rescore(fit.Ops, a, b[fit.StartB:fit.EndB], dnaScheme)
		if err != nil || got != fit.Score {
			t.Fatalf("trial %d: fit rescore %d (%v) != %d", trial, got, err, fit.Score)
		}
	}
}

func TestFitEmptyQuery(t *testing.T) {
	r := Fit(nil, codes(t, "ACGT"), dnaScheme)
	if r.Score != 0 || len(r.Ops) != 0 {
		t.Fatalf("empty query fit = %+v", r)
	}
}

func TestFitEmptyReference(t *testing.T) {
	a := codes(t, "ACG")
	r := Fit(a, nil, dnaScheme)
	if r.Score != -6 { // three unavoidable gaps
		t.Fatalf("fit vs empty = %d, want -6", r.Score)
	}
}

func TestOverlapDovetail(t *testing.T) {
	// Suffix of a overlaps prefix of b by "ACGT".
	a := codes(t, "GGGGACGT")
	b := codes(t, "ACGTCCCC")
	r := Overlap(a, b, dnaScheme)
	if r.Score != 8 {
		t.Fatalf("overlap score = %d, want 8", r.Score)
	}
	if r.StartA != 4 || r.EndB != 4 {
		t.Fatalf("overlap = a[%d:] b[:%d], want a[4:] b[:4]", r.StartA, r.EndB)
	}
	na, nb := Consumed(r.Ops)
	if na != len(a)-r.StartA || nb != r.EndB {
		t.Fatalf("ops consume %d/%d, want %d/%d", na, nb, len(a)-r.StartA, r.EndB)
	}
}

func TestOverlapNeverNegativeForcing(t *testing.T) {
	// The empty overlap (StartA = len(a), EndB = 0) scores 0, so the
	// optimum is never negative... unless forced: with b non-empty the
	// last row at j=0 is 0, so 0 is always available.
	rng := rand.New(rand.NewSource(502))
	for trial := 0; trial < 40; trial++ {
		a := randomCodes(rng, rng.Intn(20))
		b := randomCodes(rng, rng.Intn(20))
		r := Overlap(a, b, dnaScheme)
		if r.Score < 0 {
			t.Fatalf("trial %d: overlap score %d negative (empty overlap available)", trial, r.Score)
		}
		got, err := Rescore(r.Ops, a[r.StartA:], b[:r.EndB], dnaScheme)
		if err != nil || got != r.Score {
			t.Fatalf("trial %d: overlap rescore %d (%v) != %d", trial, got, err, r.Score)
		}
	}
}

func TestOverlapIdenticalSequences(t *testing.T) {
	a := codes(t, "ACGTACGT")
	r := Overlap(a, a, dnaScheme)
	// Best dovetail of s with itself is the full self-overlap.
	if r.Score != 16 || r.StartA != 0 || r.EndB != 8 {
		t.Fatalf("self overlap = %+v, want full match", r)
	}
}

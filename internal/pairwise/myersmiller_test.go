package pairwise

import (
	"math/rand"
	"testing"

	"repro/internal/scoring"
)

func affSchemes(t *testing.T) []*scoring.Scheme {
	t.Helper()
	var out []*scoring.Scheme
	for _, gp := range [][2]int{{0, -2}, {-2, -1}, {-5, -1}, {-10, -3}} {
		s, err := scoring.DNADefault().WithGaps(gp[0], gp[1])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

func TestMyersMillerEqualsGlobalAffine(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for _, sch := range affSchemes(t) {
		for trial := 0; trial < 80; trial++ {
			a := randomCodes(rng, rng.Intn(30))
			b := randomCodes(rng, rng.Intn(30))
			want := GlobalAffine(a, b, sch).Score
			got := MyersMiller(a, b, sch)
			if got.Score != want {
				t.Fatalf("open=%d extend=%d trial %d: MyersMiller = %d, GlobalAffine = %d (a=%v b=%v)",
					sch.GapOpen(), sch.GapExtend(), trial, got.Score, want, a, b)
			}
			if na, nb := Consumed(got.Ops); na != len(a) || nb != len(b) {
				t.Fatalf("trial %d: ops consume %d/%d, want %d/%d", trial, na, nb, len(a), len(b))
			}
		}
	}
}

func TestMyersMillerEdgeShapes(t *testing.T) {
	sch, err := scoring.DNADefault().WithGaps(-4, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ a, b string }{
		{"", ""}, {"A", ""}, {"", "A"}, {"A", "A"}, {"A", "ACGTACGT"},
		{"ACGTACGT", "A"}, {"ACGT", "ACGT"}, {"AAAAAAAA", "AA"}, {"AC", "GT"},
	} {
		a, b := codes(t, c.a), codes(t, c.b)
		want := GlobalAffine(a, b, sch).Score
		got := MyersMiller(a, b, sch)
		if got.Score != want {
			t.Errorf("(%q,%q): MyersMiller = %d, want %d", c.a, c.b, got.Score, want)
		}
	}
}

func TestMyersMillerLongSimilar(t *testing.T) {
	// A longer pair where runs matter: scores must match exactly.
	sch, err := scoring.DNADefault().WithGaps(-6, -1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(402))
	a := randomCodes(rng, 300)
	b := append([]int8{}, a[:100]...)
	b = append(b, a[140:260]...) // a 40-residue deletion and a 40-suffix cut
	want := GlobalAffine(a, b, sch).Score
	got := MyersMiller(a, b, sch)
	if got.Score != want {
		t.Fatalf("MyersMiller = %d, GlobalAffine = %d", got.Score, want)
	}
}

func TestMyersMillerProtein(t *testing.T) {
	sch := scoring.BLOSUM62()
	rng := rand.New(rand.NewSource(403))
	for trial := 0; trial < 20; trial++ {
		a := make([]int8, rng.Intn(40))
		b := make([]int8, rng.Intn(40))
		for i := range a {
			a[i] = int8(rng.Intn(20))
		}
		for i := range b {
			b[i] = int8(rng.Intn(20))
		}
		want := GlobalAffine(a, b, sch).Score
		got := MyersMiller(a, b, sch)
		if got.Score != want {
			t.Fatalf("trial %d: MyersMiller = %d, GlobalAffine = %d", trial, got.Score, want)
		}
	}
}

package pairwise

import (
	"repro/internal/mat"
	"repro/internal/scoring"
)

// Hirschberg computes an optimal global alignment under the linear gap
// model in linear space: O(len(a)·len(b)) time but only O(len(b)) working
// memory. It is the 2D prototype of the 3D divide-and-conquer used by the
// three-sequence aligner.
func Hirschberg(a, b []int8, sch *scoring.Scheme) Result {
	ops := make([]Op, 0, len(a)+len(b))
	hirschRec(a, b, sch, &ops)
	score, err := Rescore(ops, a, b, sch)
	if err != nil {
		panic("pairwise: hirschberg produced inconsistent ops: " + err.Error())
	}
	return Result{Score: score, Ops: ops}
}

func hirschRec(a, b []int8, sch *scoring.Scheme, out *[]Op) {
	switch {
	case len(a) == 0:
		for range b {
			*out = append(*out, OpB)
		}
		return
	case len(b) == 0:
		for range a {
			*out = append(*out, OpA)
		}
		return
	case len(a) == 1 || len(b) == 1:
		// Small enough for the quadratic aligner; keeps the recursion simple
		// and is where the optimal column for a single residue is decided.
		r := Global(a, b, sch)
		*out = append(*out, r.Ops...)
		return
	}
	mid := len(a) / 2
	// Optimal split of b against a's halves: forward scores of the prefix
	// plus backward scores of the suffix.
	fwd := lastRow(a[:mid], b, sch)
	bwd := lastRow(reverseCodes(a[mid:]), reverseCodes(b), sch)
	bestJ, bestV := 0, fwd[0]+bwd[len(b)]
	for j := 1; j <= len(b); j++ {
		if v := fwd[j] + bwd[len(b)-j]; v > bestV {
			bestJ, bestV = j, v
		}
	}
	mat.PutScores(fwd)
	mat.PutScores(bwd)
	hirschRec(a[:mid], b[:bestJ], sch, out)
	hirschRec(a[mid:], b[bestJ:], sch, out)
}

package pairwise

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/scoring"
)

// Banded computes a global alignment under the linear gap model restricted
// to the diagonal band |i-j| <= width. The band must be at least as wide as
// the length difference of the two sequences, or no path exists. A banded
// alignment is optimal whenever the unrestricted optimum stays inside the
// band; with width >= max(len(a), len(b)) it always equals Global.
func Banded(a, b []int8, sch *scoring.Scheme, width int) (Result, error) {
	n, m := len(a), len(b)
	diff := n - m
	if diff < 0 {
		diff = -diff
	}
	if width < diff {
		return Result{}, fmt.Errorf("pairwise: band width %d narrower than length difference %d", width, diff)
	}
	ge := sch.GapExtend()
	inBand := func(i, j int) bool {
		d := i - j
		return d >= -width && d <= width
	}
	f := mat.NewPlane(n+1, m+1)
	f.Fill(mat.NegInf)
	f.Set(0, 0, 0)
	for j := 1; j <= m && inBand(0, j); j++ {
		f.Set(0, j, f.At(0, j-1)+ge)
	}
	for i := 1; i <= n && inBand(i, 0); i++ {
		f.Set(i, 0, f.At(i-1, 0)+ge)
	}
	for i := 1; i <= n; i++ {
		lo := i - width
		if lo < 1 {
			lo = 1
		}
		hi := i + width
		if hi > m {
			hi = m
		}
		ai := a[i-1]
		for j := lo; j <= hi; j++ {
			best := f.At(i-1, j-1) + sch.Sub(ai, b[j-1])
			if inBand(i-1, j) {
				if v := f.At(i-1, j) + ge; v > best {
					best = v
				}
			}
			if inBand(i, j-1) {
				if v := f.At(i, j-1) + ge; v > best {
					best = v
				}
			}
			f.Set(i, j, best)
		}
	}
	if f.At(n, m) <= mat.NegInf/2 {
		return Result{}, fmt.Errorf("pairwise: no path inside band of width %d", width)
	}
	ops := make([]Op, 0, n+m)
	i, j := n, m
	for i > 0 || j > 0 {
		v := f.At(i, j)
		switch {
		case i > 0 && j > 0 && v == f.At(i-1, j-1)+sch.Sub(a[i-1], b[j-1]):
			ops = append(ops, OpBoth)
			i, j = i-1, j-1
		case i > 0 && inBand(i-1, j) && v == f.At(i-1, j)+ge:
			ops = append(ops, OpA)
			i--
		case j > 0 && inBand(i, j-1) && v == f.At(i, j-1)+ge:
			ops = append(ops, OpB)
			j--
		default:
			return Result{}, fmt.Errorf("pairwise: banded traceback stuck at (%d,%d)", i, j)
		}
	}
	reverseOps(ops)
	return Result{Score: f.At(n, m), Ops: ops}, nil
}

package pairwise

import (
	"repro/internal/mat"
	"repro/internal/scoring"
)

// MyersMiller computes an optimal global alignment under the affine gap
// model in linear space (Myers & Miller, 1988): the divide-and-conquer
// analogue of Hirschberg for Gotoh's three-state recurrence. It returns
// the same optimum as GlobalAffine using O(len(b)) working memory.
//
// The split bookkeeping tracks the deletion state (gaps in b, consuming a)
// across the divided row: a vertical gap run crossing the split row must
// not pay its open penalty twice, which is what the tb/te boundary-open
// parameters thread through the recursion.
func MyersMiller(a, b []int8, sch *scoring.Scheme) Result {
	ops := make([]Op, 0, len(a)+len(b))
	mmRec(a, b, sch, sch.GapOpen(), sch.GapOpen(), &ops)
	score, err := RescoreAffine(ops, a, b, sch)
	if err != nil {
		panic("pairwise: myers-miller produced inconsistent ops: " + err.Error())
	}
	return Result{Score: score, Ops: ops}
}

// mmRec appends an optimal alignment of a with b to out. tb (te) is the
// gap-open penalty charged if the alignment begins (ends) with a deletion:
// 0 when a deletion there continues a run from the enclosing problem,
// sch.GapOpen() otherwise.
func mmRec(a, b []int8, sch *scoring.Scheme, tb, te mat.Score, out *[]Op) {
	gog := sch.GapOpen()
	switch {
	case len(a) == 0:
		for range b {
			*out = append(*out, OpB)
		}
		return
	case len(b) == 0:
		for range a {
			*out = append(*out, OpA)
		}
		return
	case len(a) == 1:
		mmLeaf(a[0], b, sch, tb, te, out)
		return
	}

	mid := len(a) / 2
	cc, dd := mmForward(a[:mid], b, sch, tb)
	rrRev, ssRev := mmForward(reverseCodes(a[mid:]), reverseCodes(b), sch, te)
	n := len(b)
	bestJ, bestV, bestType2 := 0, mat.NegInf, false
	for j := 0; j <= n; j++ {
		if v := cc[j] + rrRev[n-j]; v > bestV {
			bestV, bestJ, bestType2 = v, j, false
		}
		// Joining two deletion states merges one run: add back the
		// double-charged open.
		if v := dd[j] + ssRev[n-j] - gog; v > bestV {
			bestV, bestJ, bestType2 = v, j, true
		}
	}
	mat.PutScores(cc)
	mat.PutScores(dd)
	mat.PutScores(rrRev)
	mat.PutScores(ssRev)
	if !bestType2 {
		mmRec(a[:mid], b[:bestJ], sch, tb, gog, out)
		mmRec(a[mid:], b[bestJ:], sch, gog, te, out)
		return
	}
	// The split lands inside a vertical gap run: a[mid-1] and a[mid] are
	// both deleted at the junction, and the neighbors continue the run
	// without a new open (boundary opens 0).
	mmRec(a[:mid-1], b[:bestJ], sch, tb, 0, out)
	*out = append(*out, OpA, OpA)
	mmRec(a[mid+1:], b[bestJ:], sch, 0, te, out)
}

// mmForward runs Gotoh's recurrence over all of a and returns the final
// row: cc[j] is the best score of aligning a with b[:j]; dd[j] the best
// ending in the deletion state. Deletions hanging off the left edge open
// with tb instead of the scheme's penalty. Both rows come from the mat
// arena; the caller must release them with mat.PutScores.
func mmForward(a, b []int8, sch *scoring.Scheme, tb mat.Score) (cc, dd []mat.Score) {
	n := len(b)
	ge := sch.GapExtend()
	gog := sch.GapOpen()
	cc = mat.GetScores(n + 1)
	dd = mat.GetScores(n + 1)
	// Row 0: insertions only; the deletion state is unreachable.
	cc[0] = 0
	for j := 1; j <= n; j++ {
		cc[j] = gog + mat.Score(j)*ge
	}
	for j := 0; j <= n; j++ {
		dd[j] = mat.NegInf
	}
	for i := 1; i <= len(a); i++ {
		diag := cc[0] // old cc[j-1]
		cc[0] = tb + mat.Score(i)*ge
		dd[0] = cc[0] // the left-edge run is itself a deletion
		ins := mat.NegInf
		sub := sch.SubRow(a[i-1])
		left := cc[0]
		for j := 1; j <= n; j++ {
			ins = max(ins+ge, left+gog+ge)
			up := cc[j]
			d := max(dd[j]+ge, up+gog+ge)
			dd[j] = d
			c := max(d, ins, diag+sub[b[j-1]])
			diag = up
			cc[j] = c
			left = c
		}
	}
	return cc, dd
}

// mmLeaf solves the single-character-of-a base case directly: either a's
// residue aligns with some b[j] (insertions around it), or it is deleted
// (merging with whichever boundary offers the cheaper open) and all of b
// is inserted.
func mmLeaf(a0 int8, b []int8, sch *scoring.Scheme, tb, te mat.Score, out *[]Op) {
	ge := sch.GapExtend()
	gog := sch.GapOpen()
	n := len(b)
	insRun := func(k int) mat.Score {
		if k == 0 {
			return 0
		}
		return gog + mat.Score(k)*ge
	}
	// Option: delete a0 (open = the better boundary) and insert all of b.
	openDel := tb
	if te > openDel {
		openDel = te
	}
	bestV := openDel + ge + insRun(n)
	bestJ := -1 // -1 marks the deletion option
	for j := 0; j < n; j++ {
		if v := insRun(j) + sch.Sub(a0, b[j]) + insRun(n-1-j); v > bestV {
			bestV, bestJ = v, j
		}
	}
	if bestJ < 0 {
		if tb >= te {
			*out = append(*out, OpA)
			for k := 0; k < n; k++ {
				*out = append(*out, OpB)
			}
		} else {
			for k := 0; k < n; k++ {
				*out = append(*out, OpB)
			}
			*out = append(*out, OpA)
		}
		return
	}
	for k := 0; k < bestJ; k++ {
		*out = append(*out, OpB)
	}
	*out = append(*out, OpBoth)
	for k := bestJ + 1; k < n; k++ {
		*out = append(*out, OpB)
	}
}

package pairwise

import (
	"repro/internal/mat"
	"repro/internal/scoring"
)

// FitResult is a free-end-gap alignment. For Fit, Ops covers all of a and
// b[StartB:EndB) (StartA is 0); for Overlap, Ops covers a[StartA:] and
// b[:EndB).
type FitResult struct {
	Score        mat.Score
	Ops          []Op
	StartA       int
	StartB, EndB int
}

// Fit computes an optimal fitting (semi-global) alignment under the linear
// gap model: the whole of a is aligned against the best-scoring substring
// of b, with b's overhangs free. With len(a) == 0 the empty alignment at
// position 0 is returned.
func Fit(a, b []int8, sch *scoring.Scheme) FitResult {
	n, m := len(a), len(b)
	ge := sch.GapExtend()
	f := mat.NewPlane(n+1, m+1)
	// Row 0 is free: the alignment may start at any position of b.
	for i := 1; i <= n; i++ {
		prev := f.Row(i - 1)
		cur := f.Row(i)
		cur[0] = prev[0] + ge
		ai := a[i-1]
		for j := 1; j <= m; j++ {
			best := prev[j-1] + sch.Sub(ai, b[j-1])
			if v := prev[j] + ge; v > best {
				best = v
			}
			if v := cur[j-1] + ge; v > best {
				best = v
			}
			cur[j] = best
		}
	}
	// The end is free too: best cell in the last row.
	endJ := 0
	best := f.At(n, 0)
	for j := 1; j <= m; j++ {
		if v := f.At(n, j); v > best {
			best, endJ = v, j
		}
	}
	ops := make([]Op, 0, n+m)
	i, j := n, endJ
	for i > 0 {
		v := f.At(i, j)
		switch {
		case j > 0 && v == f.At(i-1, j-1)+sch.Sub(a[i-1], b[j-1]):
			ops = append(ops, OpBoth)
			i, j = i-1, j-1
		case v == f.At(i-1, j)+ge:
			ops = append(ops, OpA)
			i--
		case j > 0 && v == f.At(i, j-1)+ge:
			ops = append(ops, OpB)
			j--
		default:
			panic("pairwise: fit traceback stuck")
		}
	}
	reverseOps(ops)
	return FitResult{Score: best, Ops: ops, StartB: j, EndB: endJ}
}

// Overlap computes an optimal overlap (dovetail) alignment: a suffix of a
// aligned with a prefix of b, both overhangs free; the assembly-style
// junction score. The empty overlap scores 0.
func Overlap(a, b []int8, sch *scoring.Scheme) FitResult {
	n, m := len(a), len(b)
	ge := sch.GapExtend()
	f := mat.NewPlane(n+1, m+1)
	// Column 0 free (any suffix of a may start the overlap); row 0 at j>0
	// pays gaps, because skipped b-prefix characters are part of the
	// overlap region only after it starts — here the overlap starts at
	// b[0], so only a's leading overhang is free on this side.
	row0 := f.Row(0)
	for j := 1; j <= m; j++ {
		row0[j] = row0[j-1] + ge
	}
	for i := 1; i <= n; i++ {
		prev := f.Row(i - 1)
		cur := f.Row(i)
		cur[0] = 0 // free leading overhang of a
		ai := a[i-1]
		for j := 1; j <= m; j++ {
			best := prev[j-1] + sch.Sub(ai, b[j-1])
			if v := prev[j] + ge; v > best {
				best = v
			}
			if v := cur[j-1] + ge; v > best {
				best = v
			}
			cur[j] = best
		}
	}
	// Free trailing overhang of b: end anywhere in the last row.
	endJ := 0
	best := f.At(n, 0)
	for j := 1; j <= m; j++ {
		if v := f.At(n, j); v > best {
			best, endJ = v, j
		}
	}
	ops := make([]Op, 0, n+m)
	i, j := n, endJ
	for j > 0 {
		v := f.At(i, j)
		switch {
		case i > 0 && v == f.At(i-1, j-1)+sch.Sub(a[i-1], b[j-1]):
			ops = append(ops, OpBoth)
			i, j = i-1, j-1
		case i > 0 && v == f.At(i-1, j)+ge:
			ops = append(ops, OpA)
			i--
		case v == f.At(i, j-1)+ge:
			ops = append(ops, OpB)
			j--
		default:
			panic("pairwise: overlap traceback stuck")
		}
	}
	reverseOps(ops)
	return FitResult{Score: best, Ops: ops, StartA: i, StartB: 0, EndB: endJ}
}

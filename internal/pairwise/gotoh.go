package pairwise

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/scoring"
)

// GlobalAffine computes an optimal global alignment under the affine gap
// model (Gotoh's algorithm): a pairwise gap of length L costs
// gapOpen + L·gapExtend. With gapOpen == 0 it degenerates to the linear
// model and returns the same optimum as Global.
func GlobalAffine(a, b []int8, sch *scoring.Scheme) Result {
	n, m := len(a), len(b)
	ge := sch.GapExtend()
	gog := sch.GapOpen() + ge // cost of the first residue of a gap

	// State lattices: mm ends in a residue-residue column, xx ends in a
	// column consuming a only (gap in b), yy ends in a column consuming b
	// only (gap in a).
	mm := mat.NewPlane(n+1, m+1)
	xx := mat.NewPlane(n+1, m+1)
	yy := mat.NewPlane(n+1, m+1)
	mm.Fill(mat.NegInf)
	xx.Fill(mat.NegInf)
	yy.Fill(mat.NegInf)
	mm.Set(0, 0, 0)
	for i := 1; i <= n; i++ {
		xx.Set(i, 0, sch.GapOpen()+mat.Score(i)*ge)
	}
	for j := 1; j <= m; j++ {
		yy.Set(0, j, sch.GapOpen()+mat.Score(j)*ge)
	}
	for i := 1; i <= n; i++ {
		ai := a[i-1]
		for j := 1; j <= m; j++ {
			diag := mat.Max3(mm.At(i-1, j-1), xx.At(i-1, j-1), yy.At(i-1, j-1))
			mm.Set(i, j, diag+sch.Sub(ai, b[j-1]))
			xx.Set(i, j, mat.Max3(
				mm.At(i-1, j)+gog,
				xx.At(i-1, j)+ge,
				yy.At(i-1, j)+gog,
			))
			yy.Set(i, j, mat.Max3(
				mm.At(i, j-1)+gog,
				yy.At(i, j-1)+ge,
				xx.At(i, j-1)+gog,
			))
		}
	}

	// Traceback through the three-state lattice.
	const (
		stM = iota
		stX
		stY
	)
	state := stM
	best := mm.At(n, m)
	if xx.At(n, m) > best {
		state, best = stX, xx.At(n, m)
	}
	if yy.At(n, m) > best {
		state, best = stY, yy.At(n, m)
	}
	ops := make([]Op, 0, n+m)
	i, j := n, m
	for i > 0 || j > 0 {
		switch state {
		case stM:
			v := mm.At(i, j)
			d := v - sch.Sub(a[i-1], b[j-1])
			switch {
			case d == mm.At(i-1, j-1):
				state = stM
			case d == xx.At(i-1, j-1):
				state = stX
			case d == yy.At(i-1, j-1):
				state = stY
			default:
				panic(fmt.Sprintf("pairwise: affine traceback stuck in M at (%d,%d)", i, j))
			}
			ops = append(ops, OpBoth)
			i, j = i-1, j-1
		case stX:
			v := xx.At(i, j)
			switch {
			case v == xx.At(i-1, j)+ge:
				state = stX
			case v == mm.At(i-1, j)+gog:
				state = stM
			case v == yy.At(i-1, j)+gog:
				state = stY
			default:
				panic(fmt.Sprintf("pairwise: affine traceback stuck in X at (%d,%d)", i, j))
			}
			ops = append(ops, OpA)
			i--
		case stY:
			v := yy.At(i, j)
			switch {
			case v == yy.At(i, j-1)+ge:
				state = stY
			case v == mm.At(i, j-1)+gog:
				state = stM
			case v == xx.At(i, j-1)+gog:
				state = stX
			default:
				panic(fmt.Sprintf("pairwise: affine traceback stuck in Y at (%d,%d)", i, j))
			}
			ops = append(ops, OpB)
			j--
		}
	}
	reverseOps(ops)
	return Result{Score: best, Ops: ops}
}

// RescoreAffine recomputes the affine-gap score of ops: every maximal run
// of OpA or OpB pays gapOpen once plus gapExtend per column.
func RescoreAffine(ops []Op, a, b []int8, sch *scoring.Scheme) (mat.Score, error) {
	na, nb := Consumed(ops)
	if na != len(a) || nb != len(b) {
		return 0, fmt.Errorf("pairwise: ops consume %d/%d residues, sequences have %d/%d", na, nb, len(a), len(b))
	}
	var total mat.Score
	i, j := 0, 0
	var prev Op = OpBoth
	first := true
	for _, op := range ops {
		switch op {
		case OpBoth:
			total += sch.Sub(a[i], b[j])
			i, j = i+1, j+1
		default:
			total += sch.GapExtend()
			if first || prev != op {
				total += sch.GapOpen()
			}
			if op == OpA {
				i++
			} else {
				j++
			}
		}
		prev, first = op, false
	}
	return total, nil
}

package pairwise

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/scoring"
)

// GlobalAffine computes an optimal global alignment under the affine gap
// model (Gotoh's algorithm): a pairwise gap of length L costs
// gapOpen + L·gapExtend. With gapOpen == 0 it degenerates to the linear
// model and returns the same optimum as Global.
func GlobalAffine(a, b []int8, sch *scoring.Scheme) Result {
	n, m := len(a), len(b)
	ge := sch.GapExtend()
	gog := sch.GapOpen() + ge // cost of the first residue of a gap

	// State lattices: mm ends in a residue-residue column, xx ends in a
	// column consuming a only (gap in b), yy ends in a column consuming b
	// only (gap in a).
	mm := mat.GetPlane(n+1, m+1)
	xx := mat.GetPlane(n+1, m+1)
	yy := mat.GetPlane(n+1, m+1)
	defer mat.PutPlane(mm)
	defer mat.PutPlane(xx)
	defer mat.PutPlane(yy)
	gotohFill(mm, xx, yy, a, b, sch)

	// Traceback through the three-state lattice.
	const (
		stM = iota
		stX
		stY
	)
	state := stM
	best := mm.At(n, m)
	if xx.At(n, m) > best {
		state, best = stX, xx.At(n, m)
	}
	if yy.At(n, m) > best {
		state, best = stY, yy.At(n, m)
	}
	ops := make([]Op, 0, n+m)
	i, j := n, m
	for i > 0 || j > 0 {
		switch state {
		case stM:
			v := mm.At(i, j)
			d := v - sch.Sub(a[i-1], b[j-1])
			switch {
			case d == mm.At(i-1, j-1):
				state = stM
			case d == xx.At(i-1, j-1):
				state = stX
			case d == yy.At(i-1, j-1):
				state = stY
			default:
				panic(fmt.Sprintf("pairwise: affine traceback stuck in M at (%d,%d)", i, j))
			}
			ops = append(ops, OpBoth)
			i, j = i-1, j-1
		case stX:
			v := xx.At(i, j)
			switch {
			case v == xx.At(i-1, j)+ge:
				state = stX
			case v == mm.At(i-1, j)+gog:
				state = stM
			case v == yy.At(i-1, j)+gog:
				state = stY
			default:
				panic(fmt.Sprintf("pairwise: affine traceback stuck in X at (%d,%d)", i, j))
			}
			ops = append(ops, OpA)
			i--
		case stY:
			v := yy.At(i, j)
			switch {
			case v == yy.At(i, j-1)+ge:
				state = stY
			case v == mm.At(i, j-1)+gog:
				state = stM
			case v == xx.At(i, j-1)+gog:
				state = stX
			default:
				panic(fmt.Sprintf("pairwise: affine traceback stuck in Y at (%d,%d)", i, j))
			}
			ops = append(ops, OpB)
			j--
		}
	}
	reverseOps(ops)
	return Result{Score: best, Ops: ops}
}

// gotohFill fills the three Gotoh state lattices over a×b. Interior rows
// run with hoisted row slices and a substitution row per a-residue; the
// planes may come from the arena (every cell is written).
func gotohFill(mm, xx, yy *mat.Plane, a, b []int8, sch *scoring.Scheme) {
	n, m := len(a), len(b)
	ge := sch.GapExtend()
	gog := sch.GapOpen() + ge
	mm.Fill(mat.NegInf)
	xx.Fill(mat.NegInf)
	yy.Fill(mat.NegInf)
	mm.Set(0, 0, 0)
	for i := 1; i <= n; i++ {
		xx.Set(i, 0, sch.GapOpen()+mat.Score(i)*ge)
	}
	for j := 1; j <= m; j++ {
		yy.Set(0, j, sch.GapOpen()+mat.Score(j)*ge)
	}
	for i := 1; i <= n; i++ {
		sub := sch.SubRow(a[i-1])
		mmP := mm.Row(i - 1)[: m+1 : m+1]
		xxP := xx.Row(i - 1)[: m+1 : m+1]
		yyP := yy.Row(i - 1)[: m+1 : m+1]
		mmC := mm.Row(i)[: m+1 : m+1]
		xxC := xx.Row(i)[: m+1 : m+1]
		yyC := yy.Row(i)[: m+1 : m+1]
		for j := 1; j <= m; j++ {
			mmC[j] = max(mmP[j-1], xxP[j-1], yyP[j-1]) + sub[b[j-1]]
			xxC[j] = max(mmP[j]+gog, xxP[j]+ge, yyP[j]+gog)
			yyC[j] = max(mmC[j-1]+gog, yyC[j-1]+ge, xxC[j-1]+gog)
		}
	}
}

// RescoreAffine recomputes the affine-gap score of ops: every maximal run
// of OpA or OpB pays gapOpen once plus gapExtend per column.
func RescoreAffine(ops []Op, a, b []int8, sch *scoring.Scheme) (mat.Score, error) {
	na, nb := Consumed(ops)
	if na != len(a) || nb != len(b) {
		return 0, fmt.Errorf("pairwise: ops consume %d/%d residues, sequences have %d/%d", na, nb, len(a), len(b))
	}
	var total mat.Score
	i, j := 0, 0
	var prev Op = OpBoth
	first := true
	for _, op := range ops {
		switch op {
		case OpBoth:
			total += sch.Sub(a[i], b[j])
			i, j = i+1, j+1
		default:
			total += sch.GapExtend()
			if first || prev != op {
				total += sch.GapOpen()
			}
			if op == OpA {
				i++
			} else {
				j++
			}
		}
		prev, first = op, false
	}
	return total, nil
}

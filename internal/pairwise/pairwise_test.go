package pairwise

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
)

var dnaScheme = scoring.DNADefault()

func codes(t *testing.T, s string) []int8 {
	t.Helper()
	sq, err := seq.New("t", []byte(s), seq.DNA)
	if err != nil {
		t.Fatalf("codes(%q): %v", s, err)
	}
	return sq.Codes()
}

// bruteGlobal enumerates every global alignment recursively; exponential,
// only for tiny inputs. It is the ground-truth oracle.
func bruteGlobal(a, b []int8, sch *scoring.Scheme) mat.Score {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	best := mat.NegInf
	if len(a) > 0 && len(b) > 0 {
		if v := sch.Sub(a[0], b[0]) + bruteGlobal(a[1:], b[1:], sch); v > best {
			best = v
		}
	}
	if len(a) > 0 {
		if v := sch.GapExtend() + bruteGlobal(a[1:], b, sch); v > best {
			best = v
		}
	}
	if len(b) > 0 {
		if v := sch.GapExtend() + bruteGlobal(a, b[1:], sch); v > best {
			best = v
		}
	}
	return best
}

func randomCodes(rng *rand.Rand, n int) []int8 {
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(rng.Intn(4))
	}
	return out
}

func TestGlobalKnownCases(t *testing.T) {
	cases := []struct {
		a, b string
		want mat.Score
	}{
		{"", "", 0},
		{"A", "A", 2},
		{"A", "C", -1},
		{"A", "", -2},
		{"", "ACG", -6},
		{"ACGT", "ACGT", 8},
		{"ACGT", "AGT", 4},   // one gap: 3 matches + gap = 6-2
		{"AAAA", "TTTT", -4}, // four mismatches beat gap pairs
	}
	for _, c := range cases {
		r := Global(codes(t, c.a), codes(t, c.b), dnaScheme)
		if r.Score != c.want {
			t.Errorf("Global(%q,%q).Score = %d, want %d", c.a, c.b, r.Score, c.want)
		}
		if got, err := Rescore(r.Ops, codes(t, c.a), codes(t, c.b), dnaScheme); err != nil || got != r.Score {
			t.Errorf("Global(%q,%q) rescore = %d (%v), want %d", c.a, c.b, got, err, r.Score)
		}
	}
}

func TestGlobalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 120; trial++ {
		a := randomCodes(rng, rng.Intn(7))
		b := randomCodes(rng, rng.Intn(7))
		want := bruteGlobal(a, b, dnaScheme)
		if got := Global(a, b, dnaScheme).Score; got != want {
			t.Fatalf("trial %d: Global = %d, brute = %d (a=%v b=%v)", trial, got, want, a, b)
		}
		if got := GlobalScore(a, b, dnaScheme); got != want {
			t.Fatalf("trial %d: GlobalScore = %d, brute = %d", trial, got, want)
		}
	}
}

func TestGlobalStrings(t *testing.T) {
	a := seq.MustNew("a", "ACGT", seq.DNA)
	b := seq.MustNew("b", "AGT", seq.DNA)
	r := Global(a.Codes(), b.Codes(), dnaScheme)
	rowA, rowB := r.Strings(a, b)
	if len(rowA) != len(rowB) {
		t.Fatalf("rows differ in length: %q %q", rowA, rowB)
	}
	degap := func(s string) string {
		out := []byte{}
		for i := 0; i < len(s); i++ {
			if s[i] != '-' {
				out = append(out, s[i])
			}
		}
		return string(out)
	}
	if degap(rowA) != "ACGT" || degap(rowB) != "AGT" {
		t.Fatalf("degapped rows %q %q", degap(rowA), degap(rowB))
	}
}

func TestForwardBackwardDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		a := randomCodes(rng, 3+rng.Intn(20))
		b := randomCodes(rng, 3+rng.Intn(20))
		f := Forward(a, b, dnaScheme)
		bw := Backward(a, b, dnaScheme)
		opt := f.At(len(a), len(b))
		if bw.At(0, 0) != opt {
			t.Fatalf("Backward(0,0) = %d, Forward(n,m) = %d", bw.At(0, 0), opt)
		}
		// Through-cell bound: F+B never exceeds the optimum, and the optimum
		// is attained by at least one cell in every row.
		for i := 0; i <= len(a); i++ {
			attained := false
			for j := 0; j <= len(b); j++ {
				th := f.At(i, j) + bw.At(i, j)
				if th > opt {
					t.Fatalf("through-score %d at (%d,%d) exceeds optimum %d", th, i, j, opt)
				}
				if th == opt {
					attained = true
				}
			}
			if !attained {
				t.Fatalf("row %d: no cell attains the optimum", i)
			}
		}
	}
}

func TestThroughMatchesForwardPlusBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		a := randomCodes(rng, rng.Intn(24))
		b := randomCodes(rng, rng.Intn(24))
		f := Forward(a, b, dnaScheme)
		bw := Backward(a, b, dnaScheme)
		th := Through(a, b, dnaScheme)
		opt := f.At(len(a), len(b))
		for i := 0; i <= len(a); i++ {
			for j := 0; j <= len(b); j++ {
				want := f.At(i, j) + bw.At(i, j)
				if got := th.At(i, j); got != want {
					t.Fatalf("trial %d: Through(%d,%d) = %d, F+B = %d", trial, i, j, got, want)
				}
			}
		}
		// The corner cells are unconstrained, so they hold the optimum.
		if th.At(0, 0) != opt || th.At(len(a), len(b)) != opt {
			t.Fatalf("trial %d: corners %d/%d, optimum %d", trial, th.At(0, 0), th.At(len(a), len(b)), opt)
		}
		mat.PutPlane(f)
		mat.PutPlane(bw)
		mat.PutPlane(th)
	}
}

func TestHirschbergEqualsGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		a := randomCodes(rng, rng.Intn(40))
		b := randomCodes(rng, rng.Intn(40))
		g := Global(a, b, dnaScheme)
		h := Hirschberg(a, b, dnaScheme)
		if g.Score != h.Score {
			t.Fatalf("trial %d: Hirschberg = %d, Global = %d", trial, h.Score, g.Score)
		}
		if got, err := Rescore(h.Ops, a, b, dnaScheme); err != nil || got != h.Score {
			t.Fatalf("trial %d: Hirschberg ops rescore %d (%v) != %d", trial, got, err, h.Score)
		}
	}
}

func TestHirschbergEdgeShapes(t *testing.T) {
	for _, c := range []struct{ a, b string }{
		{"", ""}, {"A", ""}, {"", "ACGTACGT"}, {"ACGTACGT", "A"}, {"AC", "AC"},
	} {
		g := Global(codes(t, c.a), codes(t, c.b), dnaScheme)
		h := Hirschberg(codes(t, c.a), codes(t, c.b), dnaScheme)
		if g.Score != h.Score {
			t.Errorf("(%q,%q): Hirschberg %d != Global %d", c.a, c.b, h.Score, g.Score)
		}
	}
}

func TestBandedFullWidthEqualsGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		a := randomCodes(rng, rng.Intn(25))
		b := randomCodes(rng, rng.Intn(25))
		g := Global(a, b, dnaScheme)
		w := len(a) + len(b) + 1
		r, err := Banded(a, b, dnaScheme, w)
		if err != nil {
			t.Fatalf("trial %d: Banded: %v", trial, err)
		}
		if r.Score != g.Score {
			t.Fatalf("trial %d: Banded(full) = %d, Global = %d", trial, r.Score, g.Score)
		}
	}
}

func TestBandedNarrowIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(25)
		a := randomCodes(rng, n)
		b := randomCodes(rng, n)
		g := Global(a, b, dnaScheme)
		r, err := Banded(a, b, dnaScheme, 2)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if r.Score > g.Score {
			t.Fatalf("trial %d: banded %d beats optimum %d", trial, r.Score, g.Score)
		}
		if got, err := Rescore(r.Ops, a, b, dnaScheme); err != nil || got != r.Score {
			t.Fatalf("trial %d: banded rescore mismatch: %d (%v) != %d", trial, got, err, r.Score)
		}
	}
}

func TestBandedTooNarrowErrors(t *testing.T) {
	a := codes(t, "ACGTACGT")
	b := codes(t, "AC")
	if _, err := Banded(a, b, dnaScheme, 3); err == nil {
		t.Fatal("band narrower than length difference accepted")
	}
}

func TestBandedSimilarSequencesExact(t *testing.T) {
	// For highly similar sequences a narrow band contains the optimum.
	g := seq.NewGenerator(seq.DNA, 10)
	parent := g.Random("p", 120)
	child := g.Mutate("c", parent, seq.MutationModel{SubstitutionRate: 0.05})
	a, b := parent.Codes(), child.Codes()
	want := Global(a, b, dnaScheme).Score
	got, err := Banded(a, b, dnaScheme, 10)
	if err != nil {
		t.Fatalf("Banded: %v", err)
	}
	if got.Score != want {
		t.Fatalf("Banded(10) = %d, Global = %d", got.Score, want)
	}
}

func TestGlobalAffineLinearDegeneration(t *testing.T) {
	// With gapOpen == 0 the affine optimum equals the linear optimum.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		a := randomCodes(rng, rng.Intn(20))
		b := randomCodes(rng, rng.Intn(20))
		lin := Global(a, b, dnaScheme).Score
		aff := GlobalAffine(a, b, dnaScheme).Score
		if lin != aff {
			t.Fatalf("trial %d: affine(open=0) = %d, linear = %d", trial, aff, lin)
		}
	}
}

func TestGlobalAffinePrefersLongGaps(t *testing.T) {
	// With a harsh open penalty, one long gap must beat two short ones.
	sch, err := dnaScheme.WithGaps(-10, -1)
	if err != nil {
		t.Fatal(err)
	}
	a := codes(t, "ACGTACGTAA")
	b := codes(t, "ACGTACGT")
	r := GlobalAffine(a, b, sch)
	if got, err := RescoreAffine(r.Ops, a, b, sch); err != nil || got != r.Score {
		t.Fatalf("affine rescore = %d (%v), reported %d", got, err, r.Score)
	}
	// Count gap runs in the b row.
	runs := 0
	var prev Op = OpBoth
	for _, op := range r.Ops {
		if op == OpA && prev != OpA {
			runs++
		}
		prev = op
	}
	if runs != 1 {
		t.Fatalf("expected a single contiguous gap run, got %d (ops %v)", runs, r.Ops)
	}
}

func TestGlobalAffineKnown(t *testing.T) {
	sch, err := dnaScheme.WithGaps(-3, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Aligning "AAAA" with "AA": two matches (+4) and a gap of length 2
	// (-3 -2) = -1.
	r := GlobalAffine(codes(t, "AAAA"), codes(t, "AA"), sch)
	if r.Score != -1 {
		t.Fatalf("affine score = %d, want -1", r.Score)
	}
}

func TestGlobalAffineEmpty(t *testing.T) {
	sch, _ := dnaScheme.WithGaps(-4, -1)
	if got := GlobalAffine(nil, nil, sch).Score; got != 0 {
		t.Fatalf("affine empty = %d, want 0", got)
	}
	// One sequence empty: one gap run of length 3.
	if got := GlobalAffine(codes(t, "ACG"), nil, sch).Score; got != -7 {
		t.Fatalf("affine vs empty = %d, want -7", got)
	}
}

func TestLocalBasics(t *testing.T) {
	a := codes(t, "TTTTACGTTTTT")
	b := codes(t, "GGACGTGG")
	r := Local(a, b, dnaScheme)
	if r.Score != 8 { // "ACGT" exact match = 4*2
		t.Fatalf("local score = %d, want 8", r.Score)
	}
	if r.EndA-r.StartA != 4 || r.EndB-r.StartB != 4 {
		t.Fatalf("local span = a[%d:%d] b[%d:%d], want length-4 spans", r.StartA, r.EndA, r.StartB, r.EndB)
	}
	if got, err := Rescore(r.Ops, a[r.StartA:r.EndA], b[r.StartB:r.EndB], dnaScheme); err != nil || got != r.Score {
		t.Fatalf("local rescore = %d (%v), want %d", got, err, r.Score)
	}
}

func TestLocalNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		a := randomCodes(rng, rng.Intn(30))
		b := randomCodes(rng, rng.Intn(30))
		r := Local(a, b, dnaScheme)
		if r.Score < 0 {
			t.Fatalf("local score negative: %d", r.Score)
		}
		glob := Global(a, b, dnaScheme).Score
		if glob > r.Score {
			t.Fatalf("global %d exceeds local %d", glob, r.Score)
		}
	}
}

func TestConsumed(t *testing.T) {
	na, nb := Consumed([]Op{OpBoth, OpA, OpB, OpBoth})
	if na != 3 || nb != 3 {
		t.Fatalf("Consumed = %d,%d want 3,3", na, nb)
	}
}

func TestRescoreRejectsWrongLengths(t *testing.T) {
	if _, err := Rescore([]Op{OpBoth}, codes(t, "AC"), codes(t, "A"), dnaScheme); err == nil {
		t.Fatal("Rescore accepted mismatched consumption")
	}
	if _, err := RescoreAffine([]Op{OpA}, codes(t, "AC"), nil, dnaScheme); err == nil {
		t.Fatal("RescoreAffine accepted mismatched consumption")
	}
}

package pairwise_test

import (
	"fmt"

	"repro/internal/pairwise"
	"repro/internal/scoring"
	"repro/internal/seq"
)

func ExampleGlobal() {
	a := seq.MustNew("a", "ACGT", seq.DNA)
	b := seq.MustNew("b", "AGT", seq.DNA)
	r := pairwise.Global(a.Codes(), b.Codes(), scoring.DNADefault())
	ra, rb := r.Strings(a, b)
	fmt.Println("score:", r.Score)
	fmt.Println(ra)
	fmt.Println(rb)
	// Output:
	// score: 4
	// ACGT
	// A-GT
}

func ExampleHirschberg() {
	sch := scoring.DNADefault()
	a := seq.MustNew("a", "ACGTACGT", seq.DNA).Codes()
	b := seq.MustNew("b", "ACGACGT", seq.DNA).Codes()
	full := pairwise.Global(a, b, sch)
	lin := pairwise.Hirschberg(a, b, sch)
	fmt.Println("same optimum in linear space:", full.Score == lin.Score)
	// Output:
	// same optimum in linear space: true
}

func ExampleMyersMiller() {
	sch, _ := scoring.DNADefault().WithGaps(-4, -1)
	a := seq.MustNew("a", "ACGTACGTACGT", seq.DNA).Codes()
	b := seq.MustNew("b", "ACGTGT", seq.DNA).Codes()
	gotoh := pairwise.GlobalAffine(a, b, sch)
	mm := pairwise.MyersMiller(a, b, sch)
	fmt.Println("affine optimum:", gotoh.Score, "linear-space:", mm.Score)
	// Output:
	// affine optimum: 2 linear-space: 2
}

func ExampleLocal() {
	sch := scoring.DNADefault()
	a := seq.MustNew("a", "TTTTACGTTTT", seq.DNA).Codes()
	b := seq.MustNew("b", "GGGACGGGG", seq.DNA).Codes()
	r := pairwise.Local(a, b, sch)
	fmt.Printf("local score %d over a[%d:%d]\n", r.Score, r.StartA, r.EndA)
	// Output:
	// local score 6 over a[4:7]
}

func ExampleFit() {
	sch := scoring.DNADefault()
	query := seq.MustNew("q", "ACGT", seq.DNA).Codes()
	ref := seq.MustNew("r", "TTACGTTT", seq.DNA).Codes()
	r := pairwise.Fit(query, ref, sch)
	fmt.Printf("query fits ref[%d:%d] with score %d\n", r.StartB, r.EndB, r.Score)
	// Output:
	// query fits ref[2:6] with score 8
}

package pairwise

import (
	"repro/internal/mat"
	"repro/internal/scoring"
)

// LocalResult is a scored local alignment: Ops covers a[StartA:EndA) and
// b[StartB:EndB).
type LocalResult struct {
	Score          mat.Score
	Ops            []Op
	StartA, StartB int
	EndA, EndB     int
}

// Local computes an optimal local alignment (Smith–Waterman) under the
// linear gap model. The empty alignment scores 0, so Score is never
// negative.
func Local(a, b []int8, sch *scoring.Scheme) LocalResult {
	n, m := len(a), len(b)
	ge := sch.GapExtend()
	f := mat.NewPlane(n+1, m+1)
	bestI, bestJ := 0, 0
	var best mat.Score
	for i := 1; i <= n; i++ {
		ai := a[i-1]
		prev := f.Row(i - 1)
		cur := f.Row(i)
		for j := 1; j <= m; j++ {
			v := prev[j-1] + sch.Sub(ai, b[j-1])
			if w := prev[j] + ge; w > v {
				v = w
			}
			if w := cur[j-1] + ge; w > v {
				v = w
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best, bestI, bestJ = v, i, j
			}
		}
	}
	ops := make([]Op, 0, n+m)
	i, j := bestI, bestJ
	for i > 0 || j > 0 {
		v := f.At(i, j)
		if v == 0 {
			break
		}
		switch {
		case i > 0 && j > 0 && v == f.At(i-1, j-1)+sch.Sub(a[i-1], b[j-1]):
			ops = append(ops, OpBoth)
			i, j = i-1, j-1
		case i > 0 && v == f.At(i-1, j)+ge:
			ops = append(ops, OpA)
			i--
		case j > 0 && v == f.At(i, j-1)+ge:
			ops = append(ops, OpB)
			j--
		default:
			// Cannot happen: every positive cell has a consistent predecessor.
			panic("pairwise: local traceback stuck")
		}
	}
	reverseOps(ops)
	return LocalResult{
		Score: best, Ops: ops,
		StartA: i, StartB: j,
		EndA: bestI, EndB: bestJ,
	}
}

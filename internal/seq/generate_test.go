package seq

import (
	"testing"
	"testing/quick"
)

func TestRandomDeterministic(t *testing.T) {
	a := NewGenerator(DNA, 42).Random("x", 200)
	b := NewGenerator(DNA, 42).Random("x", 200)
	if !a.Equal(b) {
		t.Fatal("same seed produced different sequences")
	}
	c := NewGenerator(DNA, 43).Random("x", 200)
	if a.Equal(c) {
		t.Fatal("different seeds produced identical 200-residue sequences")
	}
}

func TestRandomValidAndCore(t *testing.T) {
	for _, alpha := range []*Alphabet{DNA, RNA, Protein} {
		s := NewGenerator(alpha, 1).Random("x", 500)
		if s.Len() != 500 {
			t.Fatalf("%s: len = %d", alpha.Name(), s.Len())
		}
		if !alpha.Valid([]byte(s.String())) {
			t.Fatalf("%s: invalid residues generated", alpha.Name())
		}
		// Ambiguity codes must never be generated.
		for i := 0; i < s.Len(); i++ {
			switch alpha {
			case DNA, RNA:
				if s.At(i) == 'N' {
					t.Fatalf("%s: generated ambiguity code N", alpha.Name())
				}
			case Protein:
				switch s.At(i) {
				case 'B', 'Z', 'X':
					t.Fatalf("protein: generated ambiguity code %q", s.At(i))
				}
			}
		}
	}
}

func TestRandomZeroLength(t *testing.T) {
	if n := NewGenerator(DNA, 1).Random("x", 0).Len(); n != 0 {
		t.Fatalf("len = %d, want 0", n)
	}
}

func TestMutateIdentityControl(t *testing.T) {
	g := NewGenerator(DNA, 99)
	parent := g.Random("p", 2000)
	// Pure substitution model: identity should track 1-rate closely.
	for _, rate := range []float64{0.05, 0.3, 0.6} {
		child := g.Mutate("c", parent, MutationModel{SubstitutionRate: rate})
		if child.Len() != parent.Len() {
			t.Fatalf("substitution-only mutation changed length")
		}
		id := Identity(parent, child)
		want := 1 - rate
		if id < want-0.06 || id > want+0.06 {
			t.Errorf("rate %.2f: identity = %.3f, want ~%.3f", rate, id, want)
		}
	}
}

func TestMutateSubstitutionChangesResidue(t *testing.T) {
	// With SubstitutionRate 1 every residue must differ from the parent.
	g := NewGenerator(DNA, 5)
	parent := g.Random("p", 300)
	child := g.Mutate("c", parent, MutationModel{SubstitutionRate: 1})
	for i := 0; i < parent.Len(); i++ {
		if child.At(i) == parent.At(i) {
			t.Fatalf("position %d unchanged under rate-1 substitution", i)
		}
	}
}

func TestMutateIndels(t *testing.T) {
	g := NewGenerator(DNA, 11)
	parent := g.Random("p", 1000)
	ins := g.Mutate("i", parent, MutationModel{InsertionRate: 0.2})
	if ins.Len() <= parent.Len() {
		t.Errorf("insertion-only child not longer: %d vs %d", ins.Len(), parent.Len())
	}
	del := g.Mutate("d", parent, MutationModel{DeletionRate: 0.2})
	if del.Len() >= parent.Len() {
		t.Errorf("deletion-only child not shorter: %d vs %d", del.Len(), parent.Len())
	}
}

func TestRelatedTriple(t *testing.T) {
	g := NewGenerator(DNA, 3)
	tr := g.RelatedTriple(150, MutationModel{SubstitutionRate: 0.1})
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Without indels, positional identity of two siblings is ~(1-r)^2 + noise.
	if id := Identity(tr.A, tr.B); id < 0.65 {
		t.Errorf("A/B identity = %.2f, implausibly low for 10%% substitution", id)
	}
}

func TestTripleWithLengths(t *testing.T) {
	g := NewGenerator(Protein, 8)
	tr := g.TripleWithLengths(50, 75, 100, Uniform(0.2))
	if tr.A.Len() != 50 || tr.B.Len() != 75 || tr.C.Len() != 100 {
		t.Fatalf("lengths = %d %d %d, want 50 75 100", tr.A.Len(), tr.B.Len(), tr.C.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestTripleWithLengthsProperty(t *testing.T) {
	g := NewGenerator(DNA, 21)
	f := func(na, nb, nc uint8) bool {
		tr := g.TripleWithLengths(int(na)%64, int(nb)%64, int(nc)%64, Uniform(0.15))
		return tr.A.Len() == int(na)%64 && tr.B.Len() == int(nb)%64 && tr.C.Len() == int(nc)%64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUniformModel(t *testing.T) {
	m := Uniform(0.2)
	if m.SubstitutionRate != 0.2 || m.InsertionRate != 0.05 || m.DeletionRate != 0.05 {
		t.Fatalf("Uniform(0.2) = %+v", m)
	}
}

package seq

import (
	"fmt"
	"math/rand"
)

// Generator produces deterministic synthetic sequences. All experiments in
// this repository draw their workloads from seeded Generators so that every
// table and figure is exactly reproducible.
type Generator struct {
	rng   *rand.Rand
	alpha *Alphabet
}

// NewGenerator returns a Generator over alpha seeded with seed.
func NewGenerator(alpha *Alphabet, seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), alpha: alpha}
}

// coreSize excludes trailing ambiguity codes (N for nucleotides, B/Z/X for
// protein) from random generation so synthetic data uses only concrete
// residues.
func (g *Generator) coreSize() int {
	switch g.alpha {
	case DNA, RNA:
		return 4
	case Protein:
		return 20
	default:
		return g.alpha.Size()
	}
}

// Random returns a uniformly random sequence of length n.
func (g *Generator) Random(name string, n int) *Sequence {
	if n < 0 {
		panic(fmt.Sprintf("seq: Random length %d", n))
	}
	core := g.coreSize()
	res := make([]byte, n)
	for i := range res {
		res[i] = g.alpha.Letter(int8(g.rng.Intn(core)))
	}
	return &Sequence{name: name, residues: res, alpha: g.alpha}
}

// MutationModel controls how Mutate derives a child sequence from a parent.
// Probabilities are per-residue and should each lie in [0, 1].
type MutationModel struct {
	SubstitutionRate float64 // replace residue with a different one
	InsertionRate    float64 // insert a random residue before this one
	DeletionRate     float64 // drop this residue
}

// Uniform returns a model in which all three event rates equal r.
func Uniform(r float64) MutationModel {
	return MutationModel{SubstitutionRate: r, InsertionRate: r / 4, DeletionRate: r / 4}
}

// Mutate derives a child of parent under the model. The expected identity
// of child vs. parent is roughly 1 - SubstitutionRate (indels shift
// positions but preserve most residues).
func (g *Generator) Mutate(name string, parent *Sequence, m MutationModel) *Sequence {
	core := g.coreSize()
	out := make([]byte, 0, parent.Len()+parent.Len()/8+4)
	for i := 0; i < parent.Len(); i++ {
		if g.rng.Float64() < m.InsertionRate {
			out = append(out, g.alpha.Letter(int8(g.rng.Intn(core))))
		}
		if g.rng.Float64() < m.DeletionRate {
			continue
		}
		c := parent.At(i)
		if g.rng.Float64() < m.SubstitutionRate {
			// Draw a residue different from the current one.
			cur := int(g.alpha.Code(c))
			nc := g.rng.Intn(core - 1)
			if nc >= cur {
				nc++
			}
			c = g.alpha.Letter(int8(nc))
		}
		out = append(out, c)
	}
	return &Sequence{name: name, residues: out, alpha: g.alpha}
}

// RelatedTriple generates three sequences descended from one random
// ancestor of length n, each mutated independently under model m. This is
// the canonical workload of the evaluation: three homologous sequences
// whose pairwise identity is controlled by m.SubstitutionRate.
func (g *Generator) RelatedTriple(n int, m MutationModel) Triple {
	anc := g.Random("ancestor", n)
	return Triple{
		A: g.Mutate("A", anc, m),
		B: g.Mutate("B", anc, m),
		C: g.Mutate("C", anc, m),
	}
}

// TripleWithLengths generates a related triple and then trims or extends
// each child to the exact requested length (extension appends random
// residues), for experiments that need fixed, possibly unequal, lengths.
func (g *Generator) TripleWithLengths(na, nb, nc int, m MutationModel) Triple {
	base := na
	if nb > base {
		base = nb
	}
	if nc > base {
		base = nc
	}
	t := g.RelatedTriple(base, m)
	return Triple{
		A: g.resize(t.A, na),
		B: g.resize(t.B, nb),
		C: g.resize(t.C, nc),
	}
}

func (g *Generator) resize(s *Sequence, n int) *Sequence {
	core := g.coreSize()
	res := s.residues
	switch {
	case len(res) > n:
		res = res[:n]
	case len(res) < n:
		grown := make([]byte, len(res), n)
		copy(grown, res)
		for len(grown) < n {
			grown = append(grown, g.alpha.Letter(int8(g.rng.Intn(core))))
		}
		res = grown
	}
	out := make([]byte, n)
	copy(out, res)
	return &Sequence{name: s.name, residues: out, alpha: s.alpha}
}

// RelatedFamily generates count sequences descended from one random
// ancestor of length n, each mutated independently under model m — the
// N-sequence generalization of RelatedTriple for MSA workloads.
func (g *Generator) RelatedFamily(count, n int, m MutationModel) []*Sequence {
	anc := g.Random("ancestor", n)
	out := make([]*Sequence, count)
	for i := range out {
		out[i] = g.Mutate(fmt.Sprintf("s%d", i), anc, m)
	}
	return out
}

package seq

import (
	"bytes"
	"strings"
	"testing"
)

const sampleFASTA = `>alpha some description
ACGT
ACGT
; a comment line
>beta
acgtn

>gamma
TTTT
`

func TestReadFASTA(t *testing.T) {
	seqs, err := ReadFASTA(strings.NewReader(sampleFASTA), DNA)
	if err != nil {
		t.Fatalf("ReadFASTA: %v", err)
	}
	if len(seqs) != 3 {
		t.Fatalf("got %d records, want 3", len(seqs))
	}
	if seqs[0].Name() != "alpha" || seqs[0].String() != "ACGTACGT" {
		t.Errorf("record 0 = %q %q", seqs[0].Name(), seqs[0].String())
	}
	if seqs[1].Name() != "beta" || seqs[1].String() != "ACGTN" {
		t.Errorf("record 1 = %q %q (lower-case must canonicalize)", seqs[1].Name(), seqs[1].String())
	}
	if seqs[2].String() != "TTTT" {
		t.Errorf("record 2 = %q", seqs[2].String())
	}
}

func TestReadFASTAErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"no header", "ACGT\n"},
		{"empty", ""},
		{"bad residue", ">x\nACGJ\n"},
	}
	for _, c := range cases {
		if _, err := ReadFASTA(strings.NewReader(c.in), DNA); err == nil {
			t.Errorf("%s: error expected", c.name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := NewGenerator(DNA, 7)
	in := []*Sequence{
		g.Random("r1", 150),
		g.Random("r2", 1),
		MustNew("r3", "", DNA),
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, in, 17); err != nil {
		t.Fatalf("WriteFASTA: %v", err)
	}
	// Line wrapping honored.
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, ">") && len(line) > 17 {
			t.Errorf("line longer than wrap width: %q", line)
		}
	}
	out, err := ReadFASTA(&buf, DNA)
	if err != nil {
		t.Fatalf("ReadFASTA(round-trip): %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip: %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if !in[i].Equal(out[i]) {
			t.Errorf("record %d: %q != %q", i, in[i].String(), out[i].String())
		}
		if in[i].Name() != out[i].Name() {
			t.Errorf("record %d name: %q != %q", i, in[i].Name(), out[i].Name())
		}
	}
}

func TestReadTripleFASTA(t *testing.T) {
	tr, err := ReadTripleFASTA(strings.NewReader(sampleFASTA), DNA)
	if err != nil {
		t.Fatalf("ReadTripleFASTA: %v", err)
	}
	if tr.A.Name() != "alpha" || tr.B.Name() != "beta" || tr.C.Name() != "gamma" {
		t.Errorf("triple order wrong: %s %s %s", tr.A.Name(), tr.B.Name(), tr.C.Name())
	}
	if _, err := ReadTripleFASTA(strings.NewReader(">a\nAC\n>b\nGT\n"), DNA); err == nil {
		t.Error("2-record input accepted as triple")
	}
}

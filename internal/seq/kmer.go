package seq

import (
	"fmt"
	"math"
)

// KmerProfile is a sparse k-mer occurrence count vector. Alignment-free
// k-mer distances are the standard cheap prefilter before exact alignment:
// screening pipelines rank candidates by k-mer distance first and spend
// the O(n³) exact aligner only on the survivors.
type KmerProfile struct {
	k      int
	counts map[string]int
	total  int
}

// Kmers builds the k-mer profile of s. It panics if k < 1; sequences
// shorter than k yield an empty profile.
func Kmers(s *Sequence, k int) *KmerProfile {
	if k < 1 {
		panic(fmt.Sprintf("seq: Kmers k=%d", k))
	}
	p := &KmerProfile{k: k, counts: map[string]int{}}
	res := s.String()
	for i := 0; i+k <= len(res); i++ {
		p.counts[res[i:i+k]]++
		p.total++
	}
	return p
}

// K returns the profile's k.
func (p *KmerProfile) K() int { return p.k }

// Total returns the number of k-mers counted (len(s)-k+1 for len(s) >= k).
func (p *KmerProfile) Total() int { return p.total }

// Count returns the occurrence count of one k-mer.
func (p *KmerProfile) Count(kmer string) int { return p.counts[kmer] }

// Distance returns the normalized L1 k-mer distance between two profiles:
// sum |count_p - count_q| / (total_p + total_q), which lies in [0, 1]
// (0 for identical multisets, 1 for disjoint ones). Profiles of different
// k are incomparable and panic. Two empty profiles have distance 0.
func (p *KmerProfile) Distance(q *KmerProfile) float64 {
	if p.k != q.k {
		panic(fmt.Sprintf("seq: comparing %d-mer profile with %d-mer profile", p.k, q.k))
	}
	if p.total+q.total == 0 {
		return 0
	}
	diff := 0
	for kmer, cp := range p.counts {
		d := cp - q.counts[kmer]
		if d < 0 {
			d = -d
		}
		diff += d
	}
	for kmer, cq := range q.counts {
		if _, seen := p.counts[kmer]; !seen {
			diff += cq
		}
	}
	return float64(diff) / float64(p.total+q.total)
}

// Identity estimates the pairwise sequence identity behind the normalized
// k-mer distance to q. A point substitution destroys up to k overlapping
// k-mers, so the shared fraction scales like identity^k; inverting gives
// identity ≈ (1 − distance)^(1/k). The estimate degrades gracefully: at
// distance 1 (nothing shared) it reports identity 0.
func (p *KmerProfile) Identity(q *KmerProfile) float64 {
	d := p.Distance(q)
	if d >= 1 {
		return 0
	}
	return math.Pow(1-d, 1.0/float64(p.k))
}

// KmerDistance is a convenience wrapper: the normalized k-mer distance
// between two sequences.
func KmerDistance(a, b *Sequence, k int) float64 {
	return Kmers(a, k).Distance(Kmers(b, k))
}

// TripleSketch is the per-sequence k-mer profiles of one triple, built
// once and reused everywhere a request needs an identity estimate: the
// planner's bounded-search eval-fraction probe and the serving layer's
// near-duplicate prescreen both read the same sketch instead of
// re-sketching the sequences per use.
type TripleSketch struct {
	k       int
	A, B, C *KmerProfile
}

// SketchTriple builds the triple's k-mer sketch: three profiles, one pass
// over each sequence.
func SketchTriple(t Triple, k int) *TripleSketch {
	return &TripleSketch{k: k, A: Kmers(t.A, k), B: Kmers(t.B, k), C: Kmers(t.C, k)}
}

// K returns the sketch's k-mer size.
func (s *TripleSketch) K() int { return s.k }

// MeanIdentity is the mean pairwise identity estimate within the triple —
// the signal the planner's EvalFractionForIdentity curve consumes.
func (s *TripleSketch) MeanIdentity() float64 {
	return (s.A.Identity(s.B) + s.A.Identity(s.C) + s.B.Identity(s.C)) / 3
}

// Identity is the positionwise mean identity estimate between two triples
// (A vs A', B vs B', C vs C') — the near-duplicate prescreen's similarity
// measure. Sketches of different k are incomparable and panic (via
// KmerProfile.Distance).
func (s *TripleSketch) Identity(o *TripleSketch) float64 {
	return (s.A.Identity(o.A) + s.B.Identity(o.B) + s.C.Identity(o.C)) / 3
}

// Bytes is a coarse estimate of the sketch's heap footprint, used by
// byte-budgeted caches that retain sketches alongside entries: each
// distinct k-mer costs its string key plus map bookkeeping.
func (s *TripleSketch) Bytes() int64 {
	per := int64(s.k) + 48 // key bytes + approximate map entry overhead
	n := int64(len(s.A.counts) + len(s.B.counts) + len(s.C.counts))
	return n*per + 96
}

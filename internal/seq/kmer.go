package seq

import "fmt"

// KmerProfile is a sparse k-mer occurrence count vector. Alignment-free
// k-mer distances are the standard cheap prefilter before exact alignment:
// screening pipelines rank candidates by k-mer distance first and spend
// the O(n³) exact aligner only on the survivors.
type KmerProfile struct {
	k      int
	counts map[string]int
	total  int
}

// Kmers builds the k-mer profile of s. It panics if k < 1; sequences
// shorter than k yield an empty profile.
func Kmers(s *Sequence, k int) *KmerProfile {
	if k < 1 {
		panic(fmt.Sprintf("seq: Kmers k=%d", k))
	}
	p := &KmerProfile{k: k, counts: map[string]int{}}
	res := s.String()
	for i := 0; i+k <= len(res); i++ {
		p.counts[res[i:i+k]]++
		p.total++
	}
	return p
}

// K returns the profile's k.
func (p *KmerProfile) K() int { return p.k }

// Total returns the number of k-mers counted (len(s)-k+1 for len(s) >= k).
func (p *KmerProfile) Total() int { return p.total }

// Count returns the occurrence count of one k-mer.
func (p *KmerProfile) Count(kmer string) int { return p.counts[kmer] }

// Distance returns the normalized L1 k-mer distance between two profiles:
// sum |count_p - count_q| / (total_p + total_q), which lies in [0, 1]
// (0 for identical multisets, 1 for disjoint ones). Profiles of different
// k are incomparable and panic. Two empty profiles have distance 0.
func (p *KmerProfile) Distance(q *KmerProfile) float64 {
	if p.k != q.k {
		panic(fmt.Sprintf("seq: comparing %d-mer profile with %d-mer profile", p.k, q.k))
	}
	if p.total+q.total == 0 {
		return 0
	}
	diff := 0
	for kmer, cp := range p.counts {
		d := cp - q.counts[kmer]
		if d < 0 {
			d = -d
		}
		diff += d
	}
	for kmer, cq := range q.counts {
		if _, seen := p.counts[kmer]; !seen {
			diff += cq
		}
	}
	return float64(diff) / float64(p.total+q.total)
}

// KmerDistance is a convenience wrapper: the normalized k-mer distance
// between two sequences.
func KmerDistance(a, b *Sequence, k int) float64 {
	return Kmers(a, k).Distance(Kmers(b, k))
}

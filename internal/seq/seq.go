// Package seq defines biological sequences, their alphabets, FASTA I/O, and
// deterministic synthetic-data generators used by the alignment experiments.
//
// Sequences are stored as validated, upper-cased byte slices. An Alphabet
// maps residue letters to small dense codes so that scoring tables can be
// flat arrays indexed by code rather than maps keyed by byte.
package seq

import (
	"fmt"
	"strings"
)

// Alphabet describes a residue alphabet. The zero value is unusable; use
// one of the package-level alphabets (DNA, RNA, Protein) or NewAlphabet.
type Alphabet struct {
	name    string
	letters string    // canonical residue letters, index == code
	code    [256]int8 // letter (upper or lower case) -> code, -1 if invalid
}

// NewAlphabet builds an alphabet from a name and its canonical letters.
// Letters must be distinct ASCII uppercase characters.
func NewAlphabet(name, letters string) (*Alphabet, error) {
	if letters == "" {
		return nil, fmt.Errorf("seq: alphabet %q has no letters", name)
	}
	a := &Alphabet{name: name, letters: letters}
	for i := range a.code {
		a.code[i] = -1
	}
	for i := 0; i < len(letters); i++ {
		c := letters[i]
		if c < 'A' || c > 'Z' {
			return nil, fmt.Errorf("seq: alphabet %q: letter %q is not ASCII uppercase", name, c)
		}
		if a.code[c] != -1 {
			return nil, fmt.Errorf("seq: alphabet %q: duplicate letter %q", name, c)
		}
		a.code[c] = int8(i)
		a.code[c+'a'-'A'] = int8(i) // accept lower case on input
	}
	return a, nil
}

func mustAlphabet(name, letters string) *Alphabet {
	a, err := NewAlphabet(name, letters)
	if err != nil {
		panic(err)
	}
	return a
}

// Package-level alphabets.
var (
	// DNA is the four-letter nucleotide alphabet plus N for "any base".
	DNA = mustAlphabet("dna", "ACGTN")
	// RNA is the four-letter ribonucleotide alphabet plus N.
	RNA = mustAlphabet("rna", "ACGUN")
	// Protein is the twenty standard amino acids plus B, Z, X ambiguity
	// codes, in the residue order conventionally used by BLOSUM tables.
	Protein = mustAlphabet("protein", "ARNDCQEGHILKMFPSTWYVBZX")
)

// Name returns the alphabet's name.
func (a *Alphabet) Name() string { return a.name }

// Size returns the number of distinct residue codes.
func (a *Alphabet) Size() int { return len(a.letters) }

// Letters returns the canonical residue letters in code order.
func (a *Alphabet) Letters() string { return a.letters }

// Code returns the dense code for letter c, or -1 if c is not in the
// alphabet. Lower-case letters are accepted.
func (a *Alphabet) Code(c byte) int8 { return a.code[c] }

// Letter returns the canonical letter for a code.
func (a *Alphabet) Letter(code int8) byte { return a.letters[code] }

// Valid reports whether every byte of s is a letter of the alphabet.
func (a *Alphabet) Valid(s []byte) bool {
	for _, c := range s {
		if a.code[c] < 0 {
			return false
		}
	}
	return true
}

// Sequence is a named, validated residue string over a fixed alphabet.
type Sequence struct {
	name     string
	residues []byte // canonical upper-case letters
	alpha    *Alphabet
}

// New validates residues against alpha and returns a Sequence. Lower-case
// input is canonicalized to upper case. The residue slice is copied.
func New(name string, residues []byte, alpha *Alphabet) (*Sequence, error) {
	if alpha == nil {
		return nil, fmt.Errorf("seq: sequence %q: nil alphabet", name)
	}
	canon := make([]byte, len(residues))
	for i, c := range residues {
		code := alpha.Code(c)
		if code < 0 {
			return nil, fmt.Errorf("seq: sequence %q: invalid %s residue %q at position %d",
				name, alpha.Name(), c, i)
		}
		canon[i] = alpha.Letter(code)
	}
	return &Sequence{name: name, residues: canon, alpha: alpha}, nil
}

// MustNew is New but panics on error; intended for tests and literals.
func MustNew(name, residues string, alpha *Alphabet) *Sequence {
	s, err := New(name, []byte(residues), alpha)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the sequence name.
func (s *Sequence) Name() string { return s.name }

// Len returns the number of residues.
func (s *Sequence) Len() int { return len(s.residues) }

// Alphabet returns the sequence's alphabet.
func (s *Sequence) Alphabet() *Alphabet { return s.alpha }

// At returns the residue letter at position i.
func (s *Sequence) At(i int) byte { return s.residues[i] }

// Residues returns a copy of the residue letters.
func (s *Sequence) Residues() []byte {
	out := make([]byte, len(s.residues))
	copy(out, s.residues)
	return out
}

// String returns the residues as a string.
func (s *Sequence) String() string { return string(s.residues) }

// Codes returns the dense alphabet codes of the residues. The returned
// slice is freshly allocated; DP kernels index scoring tables with it.
func (s *Sequence) Codes() []int8 {
	out := make([]int8, len(s.residues))
	for i, c := range s.residues {
		out[i] = s.alpha.Code(c)
	}
	return out
}

// Slice returns the subsequence [lo, hi) as a new Sequence named
// "name[lo:hi)".
func (s *Sequence) Slice(lo, hi int) *Sequence {
	if lo < 0 || hi > len(s.residues) || lo > hi {
		panic(fmt.Sprintf("seq: Slice(%d, %d) out of range for length %d", lo, hi, len(s.residues)))
	}
	sub := make([]byte, hi-lo)
	copy(sub, s.residues[lo:hi])
	return &Sequence{
		name:     fmt.Sprintf("%s[%d:%d)", s.name, lo, hi),
		residues: sub,
		alpha:    s.alpha,
	}
}

// Reverse returns a new Sequence with the residues in reverse order.
func (s *Sequence) Reverse() *Sequence {
	rev := make([]byte, len(s.residues))
	for i, c := range s.residues {
		rev[len(rev)-1-i] = c
	}
	return &Sequence{name: s.name + ".rev", residues: rev, alpha: s.alpha}
}

// ReverseComplement returns the reverse complement of a DNA or RNA
// sequence (N maps to N); it errors for other alphabets. Aligning against
// the opposite strand is ReverseComplement plus a regular alignment.
func (s *Sequence) ReverseComplement() (*Sequence, error) {
	var comp map[byte]byte
	switch s.alpha {
	case DNA:
		comp = map[byte]byte{'A': 'T', 'T': 'A', 'C': 'G', 'G': 'C', 'N': 'N'}
	case RNA:
		comp = map[byte]byte{'A': 'U', 'U': 'A', 'C': 'G', 'G': 'C', 'N': 'N'}
	default:
		return nil, fmt.Errorf("seq: reverse complement undefined for alphabet %q", s.alpha.Name())
	}
	rc := make([]byte, len(s.residues))
	for i, c := range s.residues {
		rc[len(rc)-1-i] = comp[c]
	}
	return &Sequence{name: s.name + ".rc", residues: rc, alpha: s.alpha}, nil
}

// Equal reports whether two sequences have identical residues (names and
// alphabets are not compared).
func (s *Sequence) Equal(o *Sequence) bool {
	return string(s.residues) == string(o.residues)
}

// Identity returns the fraction of positions at which s and o carry the
// same residue, over the shorter length; it returns 1 for two empty
// sequences. This is a cheap, alignment-free similarity proxy used when
// reporting workload characteristics.
func Identity(s, o *Sequence) float64 {
	n := s.Len()
	if o.Len() < n {
		n = o.Len()
	}
	if n == 0 {
		return 1
	}
	same := 0
	for i := 0; i < n; i++ {
		if s.At(i) == o.At(i) {
			same++
		}
	}
	return float64(same) / float64(n)
}

// Triple bundles the three input sequences of a three-way alignment.
type Triple struct {
	A, B, C *Sequence
}

// Validate checks that all three sequences are present and share one
// alphabet.
func (t Triple) Validate() error {
	if t.A == nil || t.B == nil || t.C == nil {
		return fmt.Errorf("seq: triple is missing a sequence")
	}
	if t.A.Alphabet() != t.B.Alphabet() || t.A.Alphabet() != t.C.Alphabet() {
		return fmt.Errorf("seq: triple mixes alphabets %s/%s/%s",
			t.A.Alphabet().Name(), t.B.Alphabet().Name(), t.C.Alphabet().Name())
	}
	return nil
}

// Describe returns a short human-readable summary like "A=120 B=118 C=121 (dna)".
func (t Triple) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A=%d B=%d C=%d", t.A.Len(), t.B.Len(), t.C.Len())
	fmt.Fprintf(&b, " (%s)", t.A.Alphabet().Name())
	return b.String()
}

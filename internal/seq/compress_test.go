package seq

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"
)

func gzipString(t *testing.T, s string) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(s)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMaybeDecompressPassthrough(t *testing.T) {
	r, err := MaybeDecompress(strings.NewReader(sampleFASTA))
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := ReadFASTA(r, DNA)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 {
		t.Fatalf("got %d records", len(seqs))
	}
}

func TestMaybeDecompressGzip(t *testing.T) {
	r, err := MaybeDecompress(bytes.NewReader(gzipString(t, sampleFASTA)))
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := ReadFASTA(r, DNA)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 || seqs[0].Name() != "alpha" {
		t.Fatalf("gzip round trip wrong: %d records", len(seqs))
	}
}

func TestMaybeDecompressEmptyAndShort(t *testing.T) {
	for _, in := range []string{"", ">"} {
		r, err := MaybeDecompress(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		data, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if string(data) != in {
			t.Fatalf("%q passthrough changed to %q", in, data)
		}
	}
}

func TestMaybeDecompressCorruptGzip(t *testing.T) {
	// Valid magic, garbage after: gzip.NewReader must fail cleanly.
	if _, err := MaybeDecompress(bytes.NewReader([]byte{0x1f, 0x8b, 0x00, 0x00})); err == nil {
		t.Fatal("corrupt gzip accepted")
	}
}

package seq

import (
	"strings"
	"testing"
)

func TestAlphabetCodes(t *testing.T) {
	for i := 0; i < DNA.Size(); i++ {
		c := DNA.Letter(int8(i))
		if got := DNA.Code(c); got != int8(i) {
			t.Errorf("DNA.Code(%q) = %d, want %d", c, got, i)
		}
		lower := c + 'a' - 'A'
		if got := DNA.Code(lower); got != int8(i) {
			t.Errorf("DNA.Code(%q) = %d, want %d (lower-case accepted)", lower, got, i)
		}
	}
	if DNA.Code('X') >= 0 {
		t.Errorf("DNA.Code('X') = %d, want negative", DNA.Code('X'))
	}
	if DNA.Code('>') >= 0 {
		t.Errorf("DNA.Code('>') accepted")
	}
}

func TestAlphabetSizes(t *testing.T) {
	cases := []struct {
		a    *Alphabet
		size int
		name string
	}{
		{DNA, 5, "dna"},
		{RNA, 5, "rna"},
		{Protein, 23, "protein"},
	}
	for _, c := range cases {
		if c.a.Size() != c.size {
			t.Errorf("%s.Size() = %d, want %d", c.name, c.a.Size(), c.size)
		}
		if c.a.Name() != c.name {
			t.Errorf("Name() = %q, want %q", c.a.Name(), c.name)
		}
	}
}

func TestNewAlphabetErrors(t *testing.T) {
	if _, err := NewAlphabet("empty", ""); err == nil {
		t.Error("empty alphabet accepted")
	}
	if _, err := NewAlphabet("dup", "AAB"); err == nil {
		t.Error("duplicate letter accepted")
	}
	if _, err := NewAlphabet("lower", "abc"); err == nil {
		t.Error("lower-case letters accepted")
	}
}

func TestNewSequenceValidates(t *testing.T) {
	s, err := New("s1", []byte("acgtACGT"), DNA)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.String() != "ACGTACGT" {
		t.Errorf("canonicalized = %q, want ACGTACGT", s.String())
	}
	if _, err := New("bad", []byte("ACGZ"), DNA); err == nil {
		t.Error("invalid residue accepted")
	}
	if _, err := New("nil", []byte("ACG"), nil); err == nil {
		t.Error("nil alphabet accepted")
	}
}

func TestSequenceAccessors(t *testing.T) {
	s := MustNew("x", "ACGT", DNA)
	if s.Len() != 4 || s.At(2) != 'G' || s.Name() != "x" {
		t.Fatalf("accessors wrong: len=%d at2=%q name=%q", s.Len(), s.At(2), s.Name())
	}
	r := s.Residues()
	r[0] = 'T'
	if s.At(0) != 'A' {
		t.Error("Residues() aliases internal storage")
	}
	codes := s.Codes()
	want := []int8{0, 1, 2, 3}
	for i := range want {
		if codes[i] != want[i] {
			t.Errorf("Codes()[%d] = %d, want %d", i, codes[i], want[i])
		}
	}
}

func TestSequenceSlice(t *testing.T) {
	s := MustNew("x", "ACGTAC", DNA)
	sub := s.Slice(1, 4)
	if sub.String() != "CGT" {
		t.Errorf("Slice(1,4) = %q, want CGT", sub.String())
	}
	if !strings.Contains(sub.Name(), "[1:4)") {
		t.Errorf("slice name = %q, want it to mention range", sub.Name())
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Slice did not panic")
		}
	}()
	s.Slice(4, 99)
}

func TestSequenceReverse(t *testing.T) {
	s := MustNew("x", "ACGGT", DNA)
	r := s.Reverse()
	if r.String() != "TGGCA" {
		t.Errorf("Reverse = %q, want TGGCA", r.String())
	}
	if rr := r.Reverse(); !rr.Equal(s) {
		t.Errorf("double reverse = %q, want %q", rr.String(), s.String())
	}
}

func TestIdentity(t *testing.T) {
	a := MustNew("a", "ACGT", DNA)
	b := MustNew("b", "ACGA", DNA)
	if got := Identity(a, b); got != 0.75 {
		t.Errorf("Identity = %v, want 0.75", got)
	}
	empty := MustNew("e", "", DNA)
	if got := Identity(empty, empty); got != 1 {
		t.Errorf("Identity of empties = %v, want 1", got)
	}
	if got := Identity(a, a); got != 1 {
		t.Errorf("self Identity = %v, want 1", got)
	}
}

func TestTripleValidate(t *testing.T) {
	a := MustNew("a", "ACG", DNA)
	good := Triple{A: a, B: a, C: a}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
	if err := (Triple{A: a, B: a}).Validate(); err == nil {
		t.Error("missing C accepted")
	}
	p := MustNew("p", "ARN", Protein)
	if err := (Triple{A: a, B: a, C: p}).Validate(); err == nil {
		t.Error("mixed alphabets accepted")
	}
	if d := good.Describe(); !strings.Contains(d, "dna") || !strings.Contains(d, "A=3") {
		t.Errorf("Describe = %q", d)
	}
}

func TestReverseComplementDNA(t *testing.T) {
	s := MustNew("s", "ACGTN", DNA)
	rc, err := s.ReverseComplement()
	if err != nil {
		t.Fatal(err)
	}
	if rc.String() != "NACGT" {
		t.Fatalf("ReverseComplement = %q, want NACGT", rc.String())
	}
	// Involution: rc(rc(s)) == s.
	back, err := rc.ReverseComplement()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Fatalf("double reverse complement = %q, want %q", back.String(), s.String())
	}
}

func TestReverseComplementRNA(t *testing.T) {
	s := MustNew("s", "ACGU", RNA)
	rc, err := s.ReverseComplement()
	if err != nil {
		t.Fatal(err)
	}
	if rc.String() != "ACGU" { // ACGU is its own reverse complement
		t.Fatalf("ReverseComplement = %q, want ACGU", rc.String())
	}
}

func TestReverseComplementProteinErrors(t *testing.T) {
	s := MustNew("s", "ARN", Protein)
	if _, err := s.ReverseComplement(); err == nil {
		t.Fatal("protein reverse complement accepted")
	}
}

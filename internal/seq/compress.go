package seq

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
)

// MaybeDecompress inspects the stream's first bytes and transparently
// wraps gzip-compressed input (magic 0x1f 0x8b); anything else passes
// through unchanged. FASTA archives are routinely gzipped, so the CLI
// loaders run every input through this.
func MaybeDecompress(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(2)
	if err != nil {
		// Short or empty streams cannot be gzip; let the caller's parser
		// produce its own error on the passthrough.
		return br, nil
	}
	if magic[0] != 0x1f || magic[1] != 0x8b {
		return br, nil
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, fmt.Errorf("seq: gzip input: %w", err)
	}
	return zr, nil
}

package seq

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadFASTA checks the parser never panics and that successful parses
// round-trip through WriteFASTA.
func FuzzReadFASTA(f *testing.F) {
	f.Add(">a\nACGT\n>b\nacgt\n")
	f.Add(">x desc here\nACGT\nNNNN\n; comment\n>y\n\nGG\n")
	f.Add("")
	f.Add("ACGT\n")
	f.Add(">\n>\n")
	f.Add(">a\nAC!T\n")
	f.Fuzz(func(t *testing.T, in string) {
		seqs, err := ReadFASTA(strings.NewReader(in), DNA)
		if err != nil {
			return
		}
		if len(seqs) == 0 {
			t.Fatal("nil error with zero records")
		}
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, seqs, 60); err != nil {
			t.Fatalf("WriteFASTA after successful parse: %v", err)
		}
		back, err := ReadFASTA(&buf, DNA)
		if err != nil {
			t.Fatalf("round trip failed: %v\noriginal input: %q", err, in)
		}
		if len(back) != len(seqs) {
			t.Fatalf("round trip record count %d != %d", len(back), len(seqs))
		}
		for i := range seqs {
			if !seqs[i].Equal(back[i]) {
				t.Fatalf("record %d changed: %q -> %q", i, seqs[i].String(), back[i].String())
			}
		}
	})
}

// FuzzNewSequence checks validation never panics and canonicalization is
// idempotent.
func FuzzNewSequence(f *testing.F) {
	f.Add("acgtACGTnN")
	f.Add("")
	f.Add("ZZZ")
	f.Fuzz(func(t *testing.T, residues string) {
		s, err := New("f", []byte(residues), DNA)
		if err != nil {
			return
		}
		again, err := New("f", []byte(s.String()), DNA)
		if err != nil {
			t.Fatalf("canonical form rejected: %v", err)
		}
		if !s.Equal(again) {
			t.Fatalf("canonicalization not idempotent: %q -> %q", s.String(), again.String())
		}
	})
}

package seq

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadFASTA parses FASTA records from r, validating each sequence against
// alpha. Header lines begin with '>'; the first whitespace-delimited token
// is the sequence name. Blank lines and ';' comment lines are skipped.
func ReadFASTA(r io.Reader, alpha *Alphabet) ([]*Sequence, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		out     []*Sequence
		name    string
		body    strings.Builder
		started bool
		lineNo  int
	)
	flush := func() error {
		if !started {
			return nil
		}
		s, err := New(name, []byte(body.String()), alpha)
		if err != nil {
			return err
		}
		out = append(out, s)
		body.Reset()
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, ";"):
			continue
		case strings.HasPrefix(line, ">"):
			if err := flush(); err != nil {
				return nil, err
			}
			started = true
			name = headerName(line, len(out)+1)
		default:
			if !started {
				return nil, fmt.Errorf("seq: fasta line %d: residue data before any '>' header", lineNo)
			}
			body.WriteString(line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seq: fasta read: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("seq: fasta input contains no records")
	}
	return out, nil
}

// headerName extracts the record name from a '>' header line: the first
// whitespace-delimited token, or a synthetic "seqN" for a bare header.
func headerName(line string, n int) string {
	if fields := strings.Fields(line[1:]); len(fields) > 0 {
		return fields[0]
	}
	return fmt.Sprintf("seq%d", n)
}

// WriteFASTA writes sequences to w in FASTA format with lines wrapped at
// width columns (60 if width <= 0).
func WriteFASTA(w io.Writer, seqs []*Sequence, width int) error {
	if width <= 0 {
		width = 60
	}
	bw := bufio.NewWriter(w)
	for _, s := range seqs {
		if _, err := fmt.Fprintf(bw, ">%s\n", s.Name()); err != nil {
			return err
		}
		res := s.String()
		for i := 0; i < len(res); i += width {
			end := i + width
			if end > len(res) {
				end = len(res)
			}
			if _, err := fmt.Fprintln(bw, res[i:end]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTripleFASTA reads exactly three sequences from FASTA input; it is the
// loader used by the three-sequence alignment tools.
func ReadTripleFASTA(r io.Reader, alpha *Alphabet) (Triple, error) {
	seqs, err := ReadFASTA(r, alpha)
	if err != nil {
		return Triple{}, err
	}
	if len(seqs) != 3 {
		return Triple{}, fmt.Errorf("seq: need exactly 3 FASTA records, got %d", len(seqs))
	}
	t := Triple{A: seqs[0], B: seqs[1], C: seqs[2]}
	return t, t.Validate()
}

package seq

import (
	"math"
	"testing"
)

func TestKmersCounts(t *testing.T) {
	s := MustNew("s", "ACGTACG", DNA)
	p := Kmers(s, 3)
	if p.K() != 3 || p.Total() != 5 {
		t.Fatalf("k=%d total=%d, want 3 and 5", p.K(), p.Total())
	}
	if p.Count("ACG") != 2 || p.Count("CGT") != 1 || p.Count("TTT") != 0 {
		t.Fatalf("counts wrong: ACG=%d CGT=%d TTT=%d", p.Count("ACG"), p.Count("CGT"), p.Count("TTT"))
	}
}

func TestKmersShortSequence(t *testing.T) {
	if p := Kmers(MustNew("s", "AC", DNA), 3); p.Total() != 0 {
		t.Fatalf("short sequence total = %d, want 0", p.Total())
	}
}

func TestKmersPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 accepted")
		}
	}()
	Kmers(MustNew("s", "AC", DNA), 0)
}

func TestKmerDistanceIdentity(t *testing.T) {
	a := MustNew("a", "ACGTACGTACGT", DNA)
	if d := KmerDistance(a, a, 4); d != 0 {
		t.Fatalf("self distance = %v, want 0", d)
	}
}

func TestKmerDistanceDisjoint(t *testing.T) {
	a := MustNew("a", "AAAAAA", DNA)
	b := MustNew("b", "CCCCCC", DNA)
	if d := KmerDistance(a, b, 3); d != 1 {
		t.Fatalf("disjoint distance = %v, want 1", d)
	}
}

func TestKmerDistanceSymmetricAndBounded(t *testing.T) {
	g := NewGenerator(DNA, 9)
	for trial := 0; trial < 20; trial++ {
		a := g.Random("a", 50+trial)
		b := g.Mutate("b", a, MutationModel{SubstitutionRate: float64(trial) / 25})
		d1 := KmerDistance(a, b, 4)
		d2 := KmerDistance(b, a, 4)
		if math.Abs(d1-d2) > 1e-12 {
			t.Fatalf("trial %d: asymmetric: %v vs %v", trial, d1, d2)
		}
		if d1 < 0 || d1 > 1 {
			t.Fatalf("trial %d: distance %v out of [0,1]", trial, d1)
		}
	}
}

func TestKmerDistanceTracksDivergence(t *testing.T) {
	g := NewGenerator(DNA, 10)
	anc := g.Random("anc", 300)
	near := g.Mutate("near", anc, MutationModel{SubstitutionRate: 0.05})
	far := g.Mutate("far", anc, MutationModel{SubstitutionRate: 0.5})
	dNear := KmerDistance(anc, near, 5)
	dFar := KmerDistance(anc, far, 5)
	if dNear >= dFar {
		t.Fatalf("5%% divergence distance %v not below 50%% divergence %v", dNear, dFar)
	}
}

func TestKmerDistanceMismatchedKPanics(t *testing.T) {
	a := Kmers(MustNew("a", "ACGT", DNA), 2)
	b := Kmers(MustNew("b", "ACGT", DNA), 3)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched k accepted")
		}
	}()
	a.Distance(b)
}

func TestKmerDistanceEmpty(t *testing.T) {
	e := MustNew("e", "", DNA)
	if d := KmerDistance(e, e, 3); d != 0 {
		t.Fatalf("empty distance = %v, want 0", d)
	}
	a := MustNew("a", "ACGTACGT", DNA)
	if d := KmerDistance(a, e, 3); d != 1 {
		t.Fatalf("vs empty = %v, want 1", d)
	}
}

func TestKmerIdentityTracksSubstitutionRate(t *testing.T) {
	g := NewGenerator(DNA, 21)
	anc := g.Random("anc", 400)
	if id := Kmers(anc, 6).Identity(Kmers(anc, 6)); id != 1 {
		t.Fatalf("self identity = %v, want 1", id)
	}
	near := g.Mutate("near", anc, MutationModel{SubstitutionRate: 0.02})
	far := g.Mutate("far", anc, MutationModel{SubstitutionRate: 0.30})
	idNear := Kmers(anc, 6).Identity(Kmers(near, 6))
	idFar := Kmers(anc, 6).Identity(Kmers(far, 6))
	if !(idNear > idFar) {
		t.Fatalf("2%% divergence identity %v not above 30%% divergence %v", idNear, idFar)
	}
	if idNear < 0.9 || idNear > 1 {
		t.Fatalf("2%% divergence identity %v outside (0.9, 1]", idNear)
	}
	// Disjoint sequences: distance 1 must degrade to identity 0, not NaN.
	disjoint := MustNew("d", "CCCCCCCCCC", DNA)
	all := MustNew("a", "AAAAAAAAAA", DNA)
	if id := Kmers(all, 6).Identity(Kmers(disjoint, 6)); id != 0 {
		t.Fatalf("disjoint identity = %v, want 0", id)
	}
}

func TestTripleSketchIdentities(t *testing.T) {
	g := NewGenerator(DNA, 33)
	tr := g.RelatedTriple(300, MutationModel{SubstitutionRate: 0.05})
	sk := SketchTriple(tr, 6)
	if sk.K() != 6 {
		t.Fatalf("K() = %d, want 6", sk.K())
	}
	if id := sk.MeanIdentity(); id <= 0.5 || id > 1 {
		t.Fatalf("related-triple mean identity %v outside (0.5, 1]", id)
	}
	if id := sk.Identity(sk); id != 1 {
		t.Fatalf("self sketch identity %v, want 1", id)
	}
	// A positionwise mutated copy scores below 1 but close; an unrelated
	// triple scores clearly lower.
	mut := Triple{
		A: g.Mutate(tr.A.Name(), tr.A, MutationModel{SubstitutionRate: 0.03}),
		B: tr.B,
		C: tr.C,
	}
	skMut := SketchTriple(mut, 6)
	if id := sk.Identity(skMut); id >= 1 || id < 0.8 {
		t.Fatalf("1-sequence mutated sketch identity %v outside [0.8, 1)", id)
	}
	other := Triple{A: g.Random("x", 300), B: g.Random("y", 300), C: g.Random("z", 300)}
	if near, far := sk.Identity(skMut), sk.Identity(SketchTriple(other, 6)); near <= far {
		t.Fatalf("mutated identity %v not above unrelated %v", near, far)
	}
	if sk.Bytes() <= 0 {
		t.Fatal("sketch bytes estimate must be positive")
	}
}

func TestTripleSketchMismatchedKPanics(t *testing.T) {
	g := NewGenerator(DNA, 5)
	tr := g.RelatedTriple(50, MutationModel{})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched sketch k accepted")
		}
	}()
	SketchTriple(tr, 4).Identity(SketchTriple(tr, 6))
}

package seq

import (
	"math"
	"testing"
)

func TestKmersCounts(t *testing.T) {
	s := MustNew("s", "ACGTACG", DNA)
	p := Kmers(s, 3)
	if p.K() != 3 || p.Total() != 5 {
		t.Fatalf("k=%d total=%d, want 3 and 5", p.K(), p.Total())
	}
	if p.Count("ACG") != 2 || p.Count("CGT") != 1 || p.Count("TTT") != 0 {
		t.Fatalf("counts wrong: ACG=%d CGT=%d TTT=%d", p.Count("ACG"), p.Count("CGT"), p.Count("TTT"))
	}
}

func TestKmersShortSequence(t *testing.T) {
	if p := Kmers(MustNew("s", "AC", DNA), 3); p.Total() != 0 {
		t.Fatalf("short sequence total = %d, want 0", p.Total())
	}
}

func TestKmersPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 accepted")
		}
	}()
	Kmers(MustNew("s", "AC", DNA), 0)
}

func TestKmerDistanceIdentity(t *testing.T) {
	a := MustNew("a", "ACGTACGTACGT", DNA)
	if d := KmerDistance(a, a, 4); d != 0 {
		t.Fatalf("self distance = %v, want 0", d)
	}
}

func TestKmerDistanceDisjoint(t *testing.T) {
	a := MustNew("a", "AAAAAA", DNA)
	b := MustNew("b", "CCCCCC", DNA)
	if d := KmerDistance(a, b, 3); d != 1 {
		t.Fatalf("disjoint distance = %v, want 1", d)
	}
}

func TestKmerDistanceSymmetricAndBounded(t *testing.T) {
	g := NewGenerator(DNA, 9)
	for trial := 0; trial < 20; trial++ {
		a := g.Random("a", 50+trial)
		b := g.Mutate("b", a, MutationModel{SubstitutionRate: float64(trial) / 25})
		d1 := KmerDistance(a, b, 4)
		d2 := KmerDistance(b, a, 4)
		if math.Abs(d1-d2) > 1e-12 {
			t.Fatalf("trial %d: asymmetric: %v vs %v", trial, d1, d2)
		}
		if d1 < 0 || d1 > 1 {
			t.Fatalf("trial %d: distance %v out of [0,1]", trial, d1)
		}
	}
}

func TestKmerDistanceTracksDivergence(t *testing.T) {
	g := NewGenerator(DNA, 10)
	anc := g.Random("anc", 300)
	near := g.Mutate("near", anc, MutationModel{SubstitutionRate: 0.05})
	far := g.Mutate("far", anc, MutationModel{SubstitutionRate: 0.5})
	dNear := KmerDistance(anc, near, 5)
	dFar := KmerDistance(anc, far, 5)
	if dNear >= dFar {
		t.Fatalf("5%% divergence distance %v not below 50%% divergence %v", dNear, dFar)
	}
}

func TestKmerDistanceMismatchedKPanics(t *testing.T) {
	a := Kmers(MustNew("a", "ACGT", DNA), 2)
	b := Kmers(MustNew("b", "ACGT", DNA), 3)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched k accepted")
		}
	}()
	a.Distance(b)
}

func TestKmerDistanceEmpty(t *testing.T) {
	e := MustNew("e", "", DNA)
	if d := KmerDistance(e, e, 3); d != 0 {
		t.Fatalf("empty distance = %v, want 0", d)
	}
	a := MustNew("a", "ACGTACGT", DNA)
	if d := KmerDistance(a, e, 3); d != 1 {
		t.Fatalf("vs empty = %v, want 1", d)
	}
}

// Package commsim simulates executing the blocked-wavefront three-sequence
// DP on a distributed-memory cluster — the testbed class the ICPP 2007
// paper evaluated on — under an α–β communication model.
//
// Each block of the 3D lattice is owned by a rank. A block may start once
// its axis predecessors have finished and their boundary faces have
// arrived: a face crossing ranks costs α (per-message latency) plus
// β·bytes (inverse bandwidth); a face staying on-rank is free. Ranks
// execute one block at a time (single-core processes, the 2007 norm), and
// communication overlaps computation (non-blocking sends).
//
// The simulation is deterministic, so cluster speedup curves —
// T(1 rank)/T(P ranks) including communication — are reproducible on any
// host. It substitutes for the paper's physical cluster: the dependency
// structure, distribution policy, and α–β costs are what shape the curves,
// not the brand of interconnect.
package commsim

import (
	"container/heap"
	"fmt"

	"repro/internal/wavefront"
)

// Params describes the simulated machine and kernel.
type Params struct {
	Ranks        int     // number of processes (≥ 1)
	Alpha        float64 // per-message latency, seconds
	Beta         float64 // per-byte transfer time, seconds
	CellTime     float64 // compute time per lattice cell, seconds
	BytesPerCell int     // payload bytes per boundary-face cell
}

// GigabitCluster2007 returns parameters typical of the paper's era: a
// gigabit-Ethernet PC cluster (≈50 µs MPI latency, ≈100 MB/s effective
// bandwidth) and a cell rate calibrated to this repository's measured
// sequential kernel (≈20 ns/cell).
func GigabitCluster2007(ranks int) Params {
	return Params{
		Ranks:        ranks,
		Alpha:        50e-6,
		Beta:         1.0 / 100e6,
		CellTime:     20e-9,
		BytesPerCell: 4,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Ranks < 1 {
		return fmt.Errorf("commsim: ranks %d < 1", p.Ranks)
	}
	if p.Alpha < 0 || p.Beta < 0 || p.CellTime <= 0 || p.BytesPerCell < 0 {
		return fmt.Errorf("commsim: invalid cost parameters %+v", p)
	}
	return nil
}

// Dist selects the block-to-rank distribution policy.
type Dist int

const (
	// DistSlabI assigns contiguous slabs of i-block layers to ranks: rank
	// r owns i-blocks [r·L/P, (r+1)·L/P). Minimal communication, but the
	// wavefront keeps late slabs idle at the start and early slabs idle at
	// the end.
	DistSlabI Dist = iota
	// DistCyclicI deals i-block layers round-robin: rank(bi) = bi mod P.
	// Every rank participates in every wavefront stage at the cost of one
	// cross-rank face per i-neighbor.
	DistCyclicI
	// DistCyclicIJ deals (i,j) block columns round-robin, the 2D analogue
	// of block-cyclic layouts.
	DistCyclicIJ
)

// String names the policy.
func (d Dist) String() string {
	switch d {
	case DistSlabI:
		return "slab-i"
	case DistCyclicI:
		return "cyclic-i"
	case DistCyclicIJ:
		return "cyclic-ij"
	default:
		return fmt.Sprintf("dist(%d)", int(d))
	}
}

// Result reports one simulated execution.
type Result struct {
	Makespan    float64 // wall-clock seconds
	ComputeTime float64 // total cell work in seconds (= T on 1 rank)
	Messages    int64   // cross-rank faces sent
	BytesSent   int64   // cross-rank payload bytes
}

// Speedup is ComputeTime / Makespan: how much faster than one rank.
func (r Result) Speedup() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return r.ComputeTime / r.Makespan
}

// Efficiency is Speedup divided by the rank count used.
func (r Result) Efficiency(ranks int) float64 {
	if ranks <= 0 {
		return 0
	}
	return r.Speedup() / float64(ranks)
}

// Simulate runs the blocked wavefront over the given partitions on the
// simulated cluster and returns the communication-inclusive result.
func Simulate(si, sj, sk []wavefront.Span, p Params, dist Dist) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	nbi, nbj, nbk := len(si), len(sj), len(sk)
	total := nbi * nbj * nbk
	if total == 0 {
		return Result{}, nil
	}

	owner := ownerFunc(nbi, nbj, dist, p.Ranks)
	idx := func(bi, bj, bk int) int { return (bi*nbj+bj)*nbk + bk }
	coords := func(id int) (int, int, int) { return id / (nbj * nbk), (id / nbk) % nbj, id % nbk }

	blockCost := func(bi, bj, bk int) float64 {
		return p.CellTime * float64(si[bi].Len()) * float64(sj[bj].Len()) * float64(sk[bk].Len())
	}
	// faceBytes(d, bi, bj, bk) is the payload a block sends to its
	// successor along axis d: the boundary face perpendicular to d.
	faceBytes := func(d, bi, bj, bk int) int64 {
		var cellsInFace int64
		switch d {
		case 0:
			cellsInFace = int64(sj[bj].Len()) * int64(sk[bk].Len())
		case 1:
			cellsInFace = int64(si[bi].Len()) * int64(sk[bk].Len())
		default:
			cellsInFace = int64(si[bi].Len()) * int64(sj[bj].Len())
		}
		return cellsInFace * int64(p.BytesPerCell)
	}

	remaining := make([]int, total)
	readyAt := make([]float64, total) // max arrival time of predecessor data
	var computeTotal float64
	for bi := 0; bi < nbi; bi++ {
		for bj := 0; bj < nbj; bj++ {
			for bk := 0; bk < nbk; bk++ {
				deps := 0
				if bi > 0 {
					deps++
				}
				if bj > 0 {
					deps++
				}
				if bk > 0 {
					deps++
				}
				remaining[idx(bi, bj, bk)] = deps
				computeTotal += blockCost(bi, bj, bk)
			}
		}
	}

	res := Result{ComputeTime: computeTotal}
	rankFree := make([]float64, p.Ranks)
	// Global queue of runnable blocks ordered by data-arrival time; a
	// popped block runs as soon as its owner rank is free.
	var queue pendQueue
	heap.Push(&queue, pendItem{at: 0, id: 0})
	done := 0
	for queue.Len() > 0 {
		pd := heap.Pop(&queue).(pendItem)
		bi, bj, bk := coords(pd.id)
		r := owner(bi, bj, bk)
		start := pd.at
		if rankFree[r] > start {
			start = rankFree[r]
		}
		end := start + blockCost(bi, bj, bk)
		rankFree[r] = end
		if end > res.Makespan {
			res.Makespan = end
		}
		done++
		succ := [3][3]int{{bi + 1, bj, bk}, {bi, bj + 1, bk}, {bi, bj, bk + 1}}
		for d, s := range succ {
			if s[0] >= nbi || s[1] >= nbj || s[2] >= nbk {
				continue
			}
			sid := idx(s[0], s[1], s[2])
			arrive := end
			if owner(s[0], s[1], s[2]) != r {
				bytes := faceBytes(d, bi, bj, bk)
				arrive += p.Alpha + p.Beta*float64(bytes)
				res.Messages++
				res.BytesSent += bytes
			}
			if arrive > readyAt[sid] {
				readyAt[sid] = arrive
			}
			remaining[sid]--
			if remaining[sid] == 0 {
				heap.Push(&queue, pendItem{at: readyAt[sid], id: sid})
			}
		}
	}
	if done != total {
		return Result{}, fmt.Errorf("commsim: scheduled %d of %d blocks (dependency bug)", done, total)
	}
	return res, nil
}

func ownerFunc(nbi, nbj int, dist Dist, ranks int) func(bi, bj, bk int) int {
	switch dist {
	case DistSlabI:
		// Contiguous slabs, balanced to within one layer.
		return func(bi, _, _ int) int {
			return bi * ranks / nbi
		}
	case DistCyclicI:
		return func(bi, _, _ int) int {
			return bi % ranks
		}
	default: // DistCyclicIJ
		return func(bi, bj, _ int) int {
			return (bi*nbj + bj) % ranks
		}
	}
}

// pendItem is a runnable block: at is its data-arrival time.
type pendItem struct {
	at float64
	id int
}

type pendQueue []pendItem

func (q pendQueue) Len() int { return len(q) }
func (q pendQueue) Less(a, b int) bool {
	if q[a].at != q[b].at {
		return q[a].at < q[b].at
	}
	return q[a].id < q[b].id
}
func (q pendQueue) Swap(a, b int) { q[a], q[b] = q[b], q[a] }
func (q *pendQueue) Push(x any)   { *q = append(*q, x.(pendItem)) }
func (q *pendQueue) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

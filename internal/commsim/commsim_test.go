package commsim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/wavefront"
)

func spans(n, bs int) []wavefront.Span { return wavefront.Partition(n, bs) }

func freeComm(ranks int) Params {
	return Params{Ranks: ranks, Alpha: 0, Beta: 0, CellTime: 1e-9, BytesPerCell: 4}
}

func TestValidate(t *testing.T) {
	if err := (Params{Ranks: 0, CellTime: 1}).Validate(); err == nil {
		t.Error("zero ranks accepted")
	}
	if err := (Params{Ranks: 1, CellTime: 0}).Validate(); err == nil {
		t.Error("zero cell time accepted")
	}
	if err := (Params{Ranks: 1, CellTime: 1, Alpha: -1}).Validate(); err == nil {
		t.Error("negative alpha accepted")
	}
	if err := GigabitCluster2007(8).Validate(); err != nil {
		t.Errorf("GigabitCluster2007 invalid: %v", err)
	}
}

func TestSingleRankIsSerial(t *testing.T) {
	si, sj, sk := spans(65, 16), spans(65, 16), spans(65, 16)
	res, err := Simulate(si, sj, sk, freeComm(1), DistSlabI)
	if err != nil {
		t.Fatal(err)
	}
	want := 65.0 * 65 * 65 * 1e-9
	if math.Abs(res.Makespan-want) > 1e-12 {
		t.Fatalf("makespan = %v, want %v", res.Makespan, want)
	}
	if res.Messages != 0 || res.BytesSent != 0 {
		t.Fatalf("single rank sent %d messages", res.Messages)
	}
	if s := res.Speedup(); math.Abs(s-1) > 1e-9 {
		t.Fatalf("speedup = %v, want 1", s)
	}
}

func TestFreeCommunicationMatchesSharedMemorySim(t *testing.T) {
	// With α = β = 0 and cyclic-ij distribution the cluster behaves like a
	// shared-memory pool except for rank affinity; its makespan can never
	// beat (and with one block queue should approach) the ideal list
	// schedule. Check it stays within a reasonable envelope.
	si, sj, sk := spans(129, 16), spans(129, 16), spans(129, 16)
	for _, ranks := range []int{2, 4, 8} {
		res, err := Simulate(si, sj, sk, freeComm(ranks), DistCyclicIJ)
		if err != nil {
			t.Fatal(err)
		}
		cost := wavefront.SpanCost(si, sj, sk, 1e-9)
		ideal := wavefront.Simulate(len(si), len(sj), len(sk), ranks, cost)
		if res.Makespan < ideal-1e-12 {
			t.Fatalf("ranks=%d: cluster %v beats ideal shared-memory %v", ranks, res.Makespan, ideal)
		}
		if res.Makespan > 1.5*ideal {
			t.Fatalf("ranks=%d: cluster %v much worse than ideal %v with free communication", ranks, res.Makespan, ideal)
		}
	}
}

func TestSpeedupCurveShape(t *testing.T) {
	// The headline cluster result: speedup grows with ranks and efficiency
	// decays, under realistic gigabit parameters.
	si, sj, sk := spans(257, 16), spans(257, 16), spans(257, 16)
	prev := 0.0
	for _, ranks := range []int{1, 2, 4, 8} {
		res, err := Simulate(si, sj, sk, GigabitCluster2007(ranks), DistCyclicI)
		if err != nil {
			t.Fatal(err)
		}
		s := res.Speedup()
		if s < prev {
			t.Fatalf("speedup not monotone: %v after %v at ranks=%d", s, prev, ranks)
		}
		if s > float64(ranks)+1e-9 {
			t.Fatalf("speedup %v exceeds ranks %d", s, ranks)
		}
		prev = s
	}
	if prev < 3.0 {
		t.Fatalf("8-rank speedup %v implausibly low for a 257³ lattice", prev)
	}
}

func TestCommunicationCostsHurt(t *testing.T) {
	si, sj, sk := spans(129, 16), spans(129, 16), spans(129, 16)
	free, err := Simulate(si, sj, sk, freeComm(8), DistCyclicI)
	if err != nil {
		t.Fatal(err)
	}
	costly := freeComm(8)
	costly.Alpha = 1e-3 // brutal latency
	slow, err := Simulate(si, sj, sk, costly, DistCyclicI)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Makespan <= free.Makespan {
		t.Fatalf("latency did not hurt: %v <= %v", slow.Makespan, free.Makespan)
	}
	if slow.Messages != free.Messages {
		t.Fatalf("message count changed with latency: %d vs %d", slow.Messages, free.Messages)
	}
}

func TestDistributionPoliciesDiffer(t *testing.T) {
	// Cyclic layouts keep all ranks busy across the wavefront; slab keeps
	// communication down. With zero comm cost, cyclic must be at least as
	// fast as slab for a deep lattice.
	si, sj, sk := spans(257, 16), spans(65, 16), spans(65, 16)
	slab, err := Simulate(si, sj, sk, freeComm(8), DistSlabI)
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := Simulate(si, sj, sk, freeComm(8), DistCyclicI)
	if err != nil {
		t.Fatal(err)
	}
	if cyc.Makespan > slab.Makespan+1e-12 {
		t.Fatalf("free comm: cyclic %v slower than slab %v", cyc.Makespan, slab.Makespan)
	}
	// Slab sends fewer cross-rank messages.
	if slab.Messages >= cyc.Messages {
		t.Fatalf("slab messages %d not fewer than cyclic %d", slab.Messages, cyc.Messages)
	}
}

func TestMessagesAccounting(t *testing.T) {
	// Two i-layers on two ranks (cyclic-i): every block in layer 1 receives
	// exactly one cross-rank face from layer 0: nbj*nbk messages.
	si, sj, sk := spans(32, 16), spans(48, 16), spans(48, 16) // 2 x 3 x 3 blocks
	res, err := Simulate(si, sj, sk, freeComm(2), DistCyclicI)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(3 * 3); res.Messages != want {
		t.Fatalf("messages = %d, want %d", res.Messages, want)
	}
	// Each face is 16x16 j,k cells... the face perpendicular to i has
	// sj.Len()*sk.Len() cells of the sending block: 16*16*4 bytes each.
	if want := int64(3*3) * 16 * 16 * 4; res.BytesSent != want {
		t.Fatalf("bytes = %d, want %d", res.BytesSent, want)
	}
}

func TestEmptyGrid(t *testing.T) {
	res, err := Simulate(nil, nil, nil, freeComm(4), DistCyclicI)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 || res.Messages != 0 {
		t.Fatalf("empty grid: %+v", res)
	}
}

func TestDeterministic(t *testing.T) {
	si, sj, sk := spans(100, 8), spans(80, 8), spans(60, 8)
	a, err := Simulate(si, sj, sk, GigabitCluster2007(5), DistCyclicIJ)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(si, sj, sk, GigabitCluster2007(5), DistCyclicIJ)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("not deterministic: %+v vs %+v", a, b)
	}
}

func TestDistString(t *testing.T) {
	if DistSlabI.String() != "slab-i" || DistCyclicI.String() != "cyclic-i" || DistCyclicIJ.String() != "cyclic-ij" {
		t.Fatal("Dist.String wrong")
	}
	if Dist(99).String() == "" {
		t.Fatal("unknown dist has empty name")
	}
}

func TestEfficiencyHelpers(t *testing.T) {
	r := Result{Makespan: 2, ComputeTime: 8}
	if r.Speedup() != 4 {
		t.Fatalf("Speedup = %v", r.Speedup())
	}
	if r.Efficiency(8) != 0.5 {
		t.Fatalf("Efficiency = %v", r.Efficiency(8))
	}
	if (Result{}).Speedup() != 0 || r.Efficiency(0) != 0 {
		t.Fatal("degenerate helpers wrong")
	}
}

func TestPropertyMakespanBounds(t *testing.T) {
	// For any grid and rank count: total/ranks <= makespan <= total, and
	// speedup within [1, ranks].
	f := func(a, b, c, r uint8) bool {
		nbi, nbj, nbk := int(a)%6+1, int(b)%6+1, int(c)%6+1
		ranks := int(r)%8 + 1
		si := spans(nbi*16, 16)
		sj := spans(nbj*16, 16)
		sk := spans(nbk*16, 16)
		res, err := Simulate(si, sj, sk, freeComm(ranks), DistCyclicIJ)
		if err != nil {
			return false
		}
		lower := res.ComputeTime / float64(ranks)
		if res.Makespan < lower-1e-9 || res.Makespan > res.ComputeTime+1e-9 {
			return false
		}
		s := res.Speedup()
		return s >= 1-1e-9 && s <= float64(ranks)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCommunicationMonotone(t *testing.T) {
	// Raising alpha or beta never shortens the makespan.
	f := func(seed uint8) bool {
		si := spans(97, 16)
		base := freeComm(4)
		base.Alpha = float64(seed%5) * 1e-5
		base.Beta = float64(seed%3) * 1e-9
		r1, err := Simulate(si, si, si, base, DistCyclicI)
		if err != nil {
			return false
		}
		worse := base
		worse.Alpha *= 2
		worse.Alpha += 1e-5
		worse.Beta = worse.Beta*2 + 1e-9
		r2, err := Simulate(si, si, si, worse, DistCyclicI)
		if err != nil {
			return false
		}
		return r2.Makespan >= r1.Makespan-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

package commsim_test

import (
	"fmt"

	"repro/internal/commsim"
	"repro/internal/wavefront"
)

// ExampleSimulate reproduces the cluster experiment in miniature: the
// communication-inclusive speedup of the blocked wavefront on a simulated
// 2007 gigabit cluster.
func ExampleSimulate() {
	si := wavefront.Partition(257, 16)
	res, err := commsim.Simulate(si, si, si, commsim.GigabitCluster2007(8), commsim.DistCyclicI)
	if err != nil {
		panic(err)
	}
	fmt.Printf("8-rank speedup %.1f, efficiency %.2f\n", res.Speedup(), res.Efficiency(8))
	// Output:
	// 8-rank speedup 7.6, efficiency 0.95
}

package msa

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/alignment"
	"repro/internal/seq"
)

func randomFamily(rng *rand.Rand, n, length int) []*seq.Sequence {
	letters := seq.DNA.Letters()
	base := make([]byte, length)
	for i := range base {
		base[i] = letters[rng.Intn(len(letters))]
	}
	out := make([]*seq.Sequence, n)
	for si := range out {
		mut := append([]byte(nil), base...)
		for i := range mut {
			if rng.Float64() < 0.15 {
				mut[i] = letters[rng.Intn(len(letters))]
			}
		}
		// Occasional indel so lengths differ.
		if len(mut) > 2 && rng.Float64() < 0.5 {
			cut := rng.Intn(len(mut) - 1)
			mut = append(mut[:cut], mut[cut+1:]...)
		}
		out[si] = seq.MustNew(fmt.Sprintf("s%d", si), string(mut), seq.DNA)
	}
	return out
}

func TestGuideTreeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for n := 1; n <= 12; n++ {
		seqs := randomFamily(rng, n, 40)
		gt, err := BuildGuideTree(seqs, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if gt.NumLeaves() != n {
			t.Fatalf("n=%d: tree has %d leaves", n, gt.NumLeaves())
		}
		if n == 1 {
			if len(gt.Levels) != 0 || gt.Root != 0 {
				t.Fatalf("n=1: unexpected schedule %+v", gt)
			}
			continue
		}
		// Every cluster ID is produced exactly once, groups only reference
		// clusters already available, and the schedule ends in one root.
		available := map[int]bool{}
		for i := 0; i < n; i++ {
			available[i] = true
		}
		next := n
		for li, lv := range gt.Levels {
			if len(lv.Groups) == 0 {
				t.Fatalf("n=%d: level %d is empty", n, li)
			}
			usedThisLevel := map[int]bool{}
			for _, g := range lv.Groups {
				if len(g.Members) < 2 || len(g.Members) > 3 {
					t.Fatalf("n=%d: group %+v has %d members", n, g, len(g.Members))
				}
				for _, m := range g.Members {
					if !available[m] {
						t.Fatalf("n=%d level %d: group uses unavailable cluster %d", n, li, m)
					}
					if usedThisLevel[m] {
						t.Fatalf("n=%d level %d: cluster %d used twice in one level", n, li, m)
					}
					usedThisLevel[m] = true
					delete(available, m)
				}
				if g.Out != next {
					t.Fatalf("n=%d: group output %d, want sequential %d", n, g.Out, next)
				}
				next++
			}
			for _, g := range lv.Groups {
				available[g.Out] = true
			}
		}
		if len(available) != 1 || !available[gt.Root] {
			t.Fatalf("n=%d: schedule leaves %v available, root=%d", n, available, gt.Root)
		}
	}
}

func TestGuideTreeDeterministic(t *testing.T) {
	seqs := randomFamily(rand.New(rand.NewSource(7)), 8, 50)
	a, err := BuildGuideTree(seqs, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildGuideTree(seqs, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same inputs produced different schedules:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a.String(), "level 1:") {
		t.Fatalf("explain rendering missing levels:\n%s", a)
	}
}

func TestGuideTreePairsSimilarSequences(t *testing.T) {
	// Two tight families: the first triple groups within a family, never
	// across.
	mk := func(name, s string) *seq.Sequence { return seq.MustNew(name, s, seq.DNA) }
	seqs := []*seq.Sequence{
		mk("x1", "ACGTACGTACGTACGTACGT"),
		mk("y1", "TTTTGGGGCCCCAAAATTTT"),
		mk("x2", "ACGTACGTACGTACGAACGT"),
		mk("y2", "TTTTGGGGCCCCAAAATTTA"),
		mk("x3", "ACGTACGTACGAACGTACGT"),
		mk("y3", "TTTTGGGGCCACAAAATTTT"),
	}
	gt, err := BuildGuideTree(seqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	first := gt.Levels[0].Groups[0]
	inX := map[int]bool{0: true, 2: true, 4: true}
	allX, allY := true, true
	for _, m := range first.Members {
		if inX[m] {
			allY = false
		} else {
			allX = false
		}
	}
	if !allX && !allY {
		t.Fatalf("first group %v mixes the two families", first.Members)
	}
}

func TestMergePartsStitchesProfiles(t *testing.T) {
	a := alignment.NewLeaf(seq.MustNew("a", "ACGT", seq.DNA))
	b := alignment.NewLeaf(seq.MustNew("b", "AGT", seq.DNA))
	// Outer alignment: both, both(A/G mismatch col), a-only, both.
	outer := []alignment.Mask{3, 3, 1, 3}
	m, err := MergeParts([]*alignment.Multi{a, b}, outer)
	if err != nil {
		t.Fatal(err)
	}
	rows := m.RowStrings()
	if rows[0] != "ACGT" || rows[1] != "AG-T" {
		t.Fatalf("rows = %q", rows)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergePartsRejectsBadOuter(t *testing.T) {
	a := alignment.NewLeaf(seq.MustNew("a", "AC", seq.DNA))
	b := alignment.NewLeaf(seq.MustNew("b", "AC", seq.DNA))
	cases := [][]alignment.Mask{
		{3, 3, 3},    // over-consumes both
		{3},          // under-consumes both
		{0, 3, 3},    // all-gap outer column
		{4, 3, 3},    // bit beyond parts
		{3, 1, 2, 2}, // over-consumes part 1
	}
	for _, outer := range cases {
		if _, err := MergeParts([]*alignment.Multi{a, b}, outer); err == nil {
			t.Fatalf("outer %v accepted", outer)
		}
	}
}

func TestMergePartsPreservesInnerGaps(t *testing.T) {
	// Part with an internal gap: merging must shift its masks, not re-open
	// its columns ("once a gap, always a gap").
	inner, err := MergeParts(
		[]*alignment.Multi{
			alignment.NewLeaf(seq.MustNew("a", "ACT", seq.DNA)),
			alignment.NewLeaf(seq.MustNew("b", "AT", seq.DNA)),
		},
		[]alignment.Mask{3, 1, 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	c := alignment.NewLeaf(seq.MustNew("c", "ACT", seq.DNA))
	m, err := MergeParts([]*alignment.Multi{inner, c}, []alignment.Mask{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	rows := m.RowStrings()
	if rows[0] != "ACT" || rows[1] != "A-T" || rows[2] != "ACT" {
		t.Fatalf("rows = %q", rows)
	}
}

func TestMergePairAlignsProfiles(t *testing.T) {
	a := alignment.NewLeaf(seq.MustNew("a", "ACGTACGT", seq.DNA))
	b := alignment.NewLeaf(seq.MustNew("b", "ACGACGT", seq.DNA))
	m, err := MergePair(a, b, dnaSch)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 2 || m.Score != m.SPScore(dnaSch) {
		t.Fatalf("rows=%d score=%d sp=%d", m.NumRows(), m.Score, m.SPScore(dnaSch))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCenterStarNMatchesTripleCenterStar(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		fam := randomFamily(rng, 3, 30)
		tr := seq.Triple{A: fam[0], B: fam[1], C: fam[2]}
		legacy, err := CenterStar(tr, dnaSch)
		if err != nil {
			t.Fatal(err)
		}
		multi, err := CenterStarN(fam, dnaSch)
		if err != nil {
			t.Fatal(err)
		}
		if multi.Score != legacy.Score {
			t.Fatalf("trial %d: CenterStarN score %d, triple CenterStar %d", trial, multi.Score, legacy.Score)
		}
	}
}

func TestCenterStarNFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{1, 2, 4, 6, 8} {
		fam := randomFamily(rng, n, 35)
		m, err := CenterStarN(fam, dnaSch)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if m.NumRows() != n {
			t.Fatalf("n=%d: %d rows", n, m.NumRows())
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, s := range m.Seqs {
			if s != fam[i] {
				t.Fatalf("n=%d: row %d out of input order", n, i)
			}
		}
	}
}

func TestRefineMultiNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		fam := randomFamily(rng, 5, 30)
		m, err := CenterStarN(fam, dnaSch)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := RefineMultiContext(context.Background(), m, dnaSch, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Score < m.Score {
			t.Fatalf("trial %d: refine worsened %d -> %d", trial, m.Score, ref.Score)
		}
		if err := ref.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRefineMultiContextCancelled(t *testing.T) {
	fam := randomFamily(rand.New(rand.NewSource(29)), 4, 25)
	m, err := CenterStarN(fam, dnaSch)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RefineMultiContext(ctx, m, dnaSch, 0); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Package msa implements the heuristic three-sequence aligners the exact
// algorithm is evaluated against: center-star and progressive (profile)
// alignment. Both run in O(n²) time — orders of magnitude faster than the
// exact O(n³) dynamic program — but only approximate the optimal
// sum-of-pairs score. Their scores also serve as valid Carrillo–Lipman
// lower bounds for core.AlignPruned.
package msa

import (
	"fmt"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/pairwise"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// pickCenter returns the index (0, 1, 2) of the sequence whose summed
// optimal pairwise score against the other two is largest, plus the three
// pairwise scores indexed by the absent sequence (0 -> B/C, 1 -> A/C,
// 2 -> A/B).
func pickCenter(codes [3][]int8, sch *scoring.Scheme) (int, [3]mat.Score) {
	var pairScore [3]mat.Score
	pairScore[0] = pairwise.GlobalScore(codes[1], codes[2], sch)
	pairScore[1] = pairwise.GlobalScore(codes[0], codes[2], sch)
	pairScore[2] = pairwise.GlobalScore(codes[0], codes[1], sch)
	// Sum for sequence i = the two pair scores it participates in.
	best, bestSum := 0, pairScore[1]+pairScore[2]
	if s := pairScore[0] + pairScore[2]; s > bestSum {
		best, bestSum = 1, s
	}
	if s := pairScore[0] + pairScore[1]; s > bestSum {
		best = 2
	}
	return best, pairScore
}

// CenterStar aligns the triple with the center-star heuristic: the center
// sequence is aligned pairwise with each satellite, and the two pairwise
// alignments are merged with the "once a gap, always a gap" rule.
func CenterStar(tr seq.Triple, sch *scoring.Scheme) (*alignment.Alignment, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	codes := [3][]int8{tr.A.Codes(), tr.B.Codes(), tr.C.Codes()}
	center, _ := pickCenter(codes, sch)
	sat1, sat2 := (center+1)%3, (center+2)%3
	aln1 := pairwise.Global(codes[center], codes[sat1], sch)
	aln2 := pairwise.Global(codes[center], codes[sat2], sch)
	moves := mergeStar(aln1.Ops, aln2.Ops, center, sat1, sat2)
	aln := &alignment.Alignment{Triple: tr, Moves: moves}
	if err := aln.Validate(); err != nil {
		return nil, fmt.Errorf("msa: center-star produced inconsistent alignment: %w", err)
	}
	aln.Score = aln.SPScore(sch)
	return aln, nil
}

// mergeStar merges two center-vs-satellite pairwise alignments into a
// three-way move list. Both op lists traverse the center sequence; columns
// where a satellite inserts relative to the center (OpB) become columns
// gapped in the center and the other satellite.
func mergeStar(ops1, ops2 []pairwise.Op, center, sat1, sat2 int) []alignment.Move {
	bit := func(idx int) alignment.Move {
		switch idx {
		case 0:
			return alignment.ConsumeA
		case 1:
			return alignment.ConsumeB
		default:
			return alignment.ConsumeC
		}
	}
	cBit, s1Bit, s2Bit := bit(center), bit(sat1), bit(sat2)
	var moves []alignment.Move
	i, j := 0, 0
	for i < len(ops1) || j < len(ops2) {
		switch {
		case i < len(ops1) && ops1[i] == pairwise.OpB:
			moves = append(moves, s1Bit)
			i++
		case j < len(ops2) && ops2[j] == pairwise.OpB:
			moves = append(moves, s2Bit)
			j++
		default:
			// Both alignments consume the center here.
			m := cBit
			if ops1[i] == pairwise.OpBoth {
				m |= s1Bit
			}
			if ops2[j] == pairwise.OpBoth {
				m |= s2Bit
			}
			moves = append(moves, m)
			i++
			j++
		}
	}
	return moves
}

// Progressive aligns the triple progressively: the closest pair (by
// optimal pairwise score) is aligned first, then the third sequence is
// aligned against the resulting two-row profile with a profile-aware
// dynamic program.
func Progressive(tr seq.Triple, sch *scoring.Scheme) (*alignment.Alignment, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	codes := [3][]int8{tr.A.Codes(), tr.B.Codes(), tr.C.Codes()}
	// The "outsider" is the sequence not in the closest pair; pairScore is
	// indexed by the absent sequence, so the best pair corresponds to the
	// largest entry.
	_, pairScore := pickCenter(codes, sch)
	outsider := 0
	for i := 1; i < 3; i++ {
		if pairScore[i] > pairScore[outsider] {
			outsider = i
		}
	}
	p, q := (outsider+1)%3, (outsider+2)%3
	if p > q {
		p, q = q, p
	}
	pairAln := pairwise.Global(codes[p], codes[q], sch)

	// Profile columns as residue-code pairs (scoring.Gap for gaps).
	type profCol struct{ x, y int8 }
	prof := make([]profCol, 0, len(pairAln.Ops))
	pi, qi := 0, 0
	for _, op := range pairAln.Ops {
		col := profCol{scoring.Gap, scoring.Gap}
		if op != pairwise.OpB {
			col.x = codes[p][pi]
			pi++
		}
		if op != pairwise.OpA {
			col.y = codes[q][qi]
			qi++
		}
		prof = append(prof, col)
	}

	// NW of the outsider against the profile. Cross-pair scores only: the
	// within-pair contribution is fixed by pairAln.
	r := codes[outsider]
	n, m := len(r), len(prof)
	f := mat.NewPlane(n+1, m+1)
	matchCost := func(ri int8, c profCol) mat.Score {
		return sch.Pair(ri, c.x) + sch.Pair(ri, c.y)
	}
	gapRCost := func(c profCol) mat.Score {
		return sch.Pair(scoring.Gap, c.x) + sch.Pair(scoring.Gap, c.y)
	}
	gapColCost := 2 * sch.GapExtend() // outsider residue vs two gaps
	for j := 1; j <= m; j++ {
		f.Set(0, j, f.At(0, j-1)+gapRCost(prof[j-1]))
	}
	for i := 1; i <= n; i++ {
		f.Set(i, 0, f.At(i-1, 0)+gapColCost)
		for j := 1; j <= m; j++ {
			best := f.At(i-1, j-1) + matchCost(r[i-1], prof[j-1])
			if v := f.At(i-1, j) + gapColCost; v > best {
				best = v
			}
			if v := f.At(i, j-1) + gapRCost(prof[j-1]); v > best {
				best = v
			}
			f.Set(i, j, best)
		}
	}

	// Traceback into three-way moves.
	bit := [3]alignment.Move{alignment.ConsumeA, alignment.ConsumeB, alignment.ConsumeC}
	colMove := func(c profCol) alignment.Move {
		var mv alignment.Move
		if c.x != scoring.Gap {
			mv |= bit[p]
		}
		if c.y != scoring.Gap {
			mv |= bit[q]
		}
		return mv
	}
	var rev []alignment.Move
	i, j := n, m
	for i > 0 || j > 0 {
		v := f.At(i, j)
		switch {
		case i > 0 && j > 0 && v == f.At(i-1, j-1)+matchCost(r[i-1], prof[j-1]):
			rev = append(rev, colMove(prof[j-1])|bit[outsider])
			i, j = i-1, j-1
		case i > 0 && v == f.At(i-1, j)+gapColCost:
			rev = append(rev, bit[outsider])
			i--
		case j > 0 && v == f.At(i, j-1)+gapRCost(prof[j-1]):
			rev = append(rev, colMove(prof[j-1]))
			j--
		default:
			return nil, fmt.Errorf("msa: profile traceback stuck at (%d,%d)", i, j)
		}
	}
	moves := make([]alignment.Move, len(rev))
	for idx := range rev {
		moves[idx] = rev[len(rev)-1-idx]
	}
	aln := &alignment.Alignment{Triple: tr, Moves: moves}
	if err := aln.Validate(); err != nil {
		return nil, fmt.Errorf("msa: progressive produced inconsistent alignment: %w", err)
	}
	aln.Score = aln.SPScore(sch)
	return aln, nil
}

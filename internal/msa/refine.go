package msa

import (
	"context"
	"fmt"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// Refine improves a three-way alignment by iterative refinement: one
// sequence at a time is removed and optimally re-aligned against the
// profile of the remaining two rows, keeping the result whenever the SP
// score improves. Iteration stops after a full round with no improvement
// or after maxRounds rounds (≤ 0 means a sensible default). The returned
// alignment's score is never below the input's, and — like the input —
// never above the exact optimum, so it remains a valid Carrillo–Lipman
// lower bound.
func Refine(aln *alignment.Alignment, sch *scoring.Scheme, maxRounds int) (*alignment.Alignment, error) {
	return RefineContext(context.Background(), aln, sch, maxRounds)
}

// RefineContext is Refine with cooperative cancellation: the context is
// checked before every per-sequence re-alignment, and cancellation returns
// the context's error.
func RefineContext(ctx context.Context, aln *alignment.Alignment, sch *scoring.Scheme, maxRounds int) (*alignment.Alignment, error) {
	if err := aln.Validate(); err != nil {
		return nil, fmt.Errorf("msa: refine input: %w", err)
	}
	if maxRounds <= 0 {
		maxRounds = 10
	}
	cur := &alignment.Alignment{Triple: aln.Triple, Moves: append([]alignment.Move(nil), aln.Moves...)}
	cur.Score = cur.SPScore(sch)
	for round := 0; round < maxRounds; round++ {
		improved := false
		for out := 0; out < 3; out++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cand, err := realignOne(cur, sch, out)
			if err != nil {
				return nil, err
			}
			if cand.Score > cur.Score {
				cur = cand
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return cur, nil
}

// realignOne removes sequence `out` (0=A, 1=B, 2=C) from the alignment and
// re-aligns it optimally against the profile induced by the other two
// rows, exactly as Progressive's final stage does.
func realignOne(cur *alignment.Alignment, sch *scoring.Scheme, out int) (*alignment.Alignment, error) {
	codes := [3][]int8{cur.Triple.A.Codes(), cur.Triple.B.Codes(), cur.Triple.C.Codes()}
	bit := [3]alignment.Move{alignment.ConsumeA, alignment.ConsumeB, alignment.ConsumeC}
	p, q := (out+1)%3, (out+2)%3
	if p > q {
		p, q = q, p
	}

	// Build the two-row profile from the current alignment, dropping
	// columns where both kept rows are gapped.
	type profCol struct{ x, y int8 }
	var prof []profCol
	idx := [3]int{}
	for _, m := range cur.Moves {
		col := profCol{scoring.Gap, scoring.Gap}
		if m&bit[p] != 0 {
			col.x = codes[p][idx[p]]
		}
		if m&bit[q] != 0 {
			col.y = codes[q][idx[q]]
		}
		for s := 0; s < 3; s++ {
			if m&bit[s] != 0 {
				idx[s]++
			}
		}
		if col.x != scoring.Gap || col.y != scoring.Gap {
			prof = append(prof, profCol{col.x, col.y})
		}
	}

	r := codes[out]
	n, m := len(r), len(prof)
	f := mat.NewPlane(n+1, m+1)
	matchCost := func(ri int8, c profCol) mat.Score {
		return sch.Pair(ri, c.x) + sch.Pair(ri, c.y)
	}
	gapRCost := func(c profCol) mat.Score {
		return sch.Pair(scoring.Gap, c.x) + sch.Pair(scoring.Gap, c.y)
	}
	gapColCost := 2 * sch.GapExtend()
	for j := 1; j <= m; j++ {
		f.Set(0, j, f.At(0, j-1)+gapRCost(prof[j-1]))
	}
	for i := 1; i <= n; i++ {
		f.Set(i, 0, f.At(i-1, 0)+gapColCost)
		for j := 1; j <= m; j++ {
			best := f.At(i-1, j-1) + matchCost(r[i-1], prof[j-1])
			if v := f.At(i-1, j) + gapColCost; v > best {
				best = v
			}
			if v := f.At(i, j-1) + gapRCost(prof[j-1]); v > best {
				best = v
			}
			f.Set(i, j, best)
		}
	}

	colMove := func(c profCol) alignment.Move {
		var mv alignment.Move
		if c.x != scoring.Gap {
			mv |= bit[p]
		}
		if c.y != scoring.Gap {
			mv |= bit[q]
		}
		return mv
	}
	var rev []alignment.Move
	i, j := n, m
	for i > 0 || j > 0 {
		v := f.At(i, j)
		switch {
		case i > 0 && j > 0 && v == f.At(i-1, j-1)+matchCost(r[i-1], prof[j-1]):
			rev = append(rev, colMove(prof[j-1])|bit[out])
			i, j = i-1, j-1
		case i > 0 && v == f.At(i-1, j)+gapColCost:
			rev = append(rev, bit[out])
			i--
		case j > 0 && v == f.At(i, j-1)+gapRCost(prof[j-1]):
			rev = append(rev, colMove(prof[j-1]))
			j--
		default:
			return nil, fmt.Errorf("msa: refine traceback stuck at (%d,%d)", i, j)
		}
	}
	moves := make([]alignment.Move, len(rev))
	for k := range rev {
		moves[k] = rev[len(rev)-1-k]
	}
	out3 := &alignment.Alignment{Triple: cur.Triple, Moves: moves}
	if err := out3.Validate(); err != nil {
		return nil, fmt.Errorf("msa: refine produced inconsistent alignment: %w", err)
	}
	out3.Score = out3.SPScore(sch)
	return out3, nil
}

// CenterStarRefined runs CenterStar followed by Refine — the strongest
// heuristic in this package and the best cheap Carrillo–Lipman bound.
func CenterStarRefined(tr seq.Triple, sch *scoring.Scheme) (*alignment.Alignment, error) {
	aln, err := CenterStar(tr, sch)
	if err != nil {
		return nil, err
	}
	return Refine(aln, sch, 0)
}

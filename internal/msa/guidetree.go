package msa

import (
	"fmt"
	"strings"

	"repro/internal/seq"
)

// DefaultGuideK is the k-mer size used for guide-tree distances when the
// caller does not pick one; it matches the serving layer's sketch probe.
const DefaultGuideK = 6

// Group is one progressive merge: two or three clusters joined into a new
// cluster. Members are cluster IDs (leaves are 0..NumLeaves-1, internal
// clusters are numbered on from there, in creation order); Out is the ID of
// the merged cluster.
type Group struct {
	Members []int
	Out     int
}

// Level is one round of the merge schedule. All groups within a level are
// independent — no group consumes another group's output — so they can be
// fanned across workers.
type Level struct {
	Groups []Group
}

// GuideTree is the progressive-merge schedule for one family of sequences:
// a sequence of levels, each holding independent 2- or 3-way merges, ending
// in a single root cluster covering every leaf.
type GuideTree struct {
	// Names holds the leaf names in input order; leaf i is cluster i.
	Names []string
	// Levels is the merge schedule, bottom-up.
	Levels []Level
	// Root is the cluster ID of the final merge (== leaf 0 for one leaf).
	Root int
	// dist[id] holds mean leaf-to-leaf k-mer distances between clusters,
	// kept for explain output.
	dist map[[2]int]float64
}

// Distance returns the average-linkage k-mer distance between two clusters
// of the tree (0 for a cluster against itself, and for unknown IDs).
func (t *GuideTree) Distance(a, b int) float64 {
	if a == b {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	return t.dist[[2]int{a, b}]
}

// NumLeaves returns the number of input sequences.
func (t *GuideTree) NumLeaves() int { return len(t.Names) }

// NumMerges returns the number of merge groups across all levels.
func (t *GuideTree) NumMerges() int {
	n := 0
	for _, lv := range t.Levels {
		n += len(lv.Groups)
	}
	return n
}

// String renders the merge schedule, one level per line — the -explain
// output of the CLIs.
func (t *GuideTree) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "guide tree over %d leaves:\n", len(t.Names))
	for i, name := range t.Names {
		fmt.Fprintf(&b, "  leaf %d: %s\n", i, name)
	}
	for li, lv := range t.Levels {
		fmt.Fprintf(&b, "  level %d:", li+1)
		for _, g := range lv.Groups {
			parts := make([]string, len(g.Members))
			for i, m := range g.Members {
				parts[i] = fmt.Sprintf("%d", m)
			}
			fmt.Fprintf(&b, " (%s)->%d", strings.Join(parts, ","), g.Out)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// BuildGuideTree clusters the sequences by average-linkage over pairwise
// k-mer distances and greedily schedules progressive merges: each round
// groups the closest unused pair, extends it with the closest third cluster
// when one is available, and repeats until the round cannot form another
// triple; a final leftover pair merges 2-way, and a single leftover carries
// into the next round. Ties break deterministically toward the lowest
// cluster IDs, so the same inputs always produce the same schedule.
// k ≤ 0 selects DefaultGuideK.
func BuildGuideTree(seqs []*seq.Sequence, k int) (*GuideTree, error) {
	n := len(seqs)
	if n < 1 {
		return nil, fmt.Errorf("msa: guide tree needs at least 1 sequence, have %d", n)
	}
	if k <= 0 {
		k = DefaultGuideK
	}
	names := make([]string, n)
	for i, s := range seqs {
		if s == nil {
			return nil, fmt.Errorf("msa: guide tree sequence %d is nil", i)
		}
		if s.Alphabet() != seqs[0].Alphabet() {
			return nil, fmt.Errorf("msa: guide tree mixes alphabets %s/%s",
				seqs[0].Alphabet().Name(), s.Alphabet().Name())
		}
		names[i] = s.Name()
	}
	t := &GuideTree{Names: names, dist: map[[2]int]float64{}}
	if n == 1 {
		t.Root = 0
		return t, nil
	}

	// Leaf-to-leaf k-mer distances; cluster distances are leaf-set averages.
	leafDist := make([][]float64, n)
	profiles := make([]*seq.KmerProfile, n)
	for i, s := range seqs {
		profiles[i] = seq.Kmers(s, k)
	}
	for i := range leafDist {
		leafDist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := profiles[i].Distance(profiles[j])
			leafDist[i][j], leafDist[j][i] = d, d
		}
	}

	leavesOf := map[int][]int{}
	for i := 0; i < n; i++ {
		leavesOf[i] = []int{i}
	}
	clusterDist := func(a, b int) float64 {
		la, lb := leavesOf[a], leavesOf[b]
		var sum float64
		for _, x := range la {
			for _, y := range lb {
				sum += leafDist[x][y]
			}
		}
		return sum / float64(len(la)*len(lb))
	}
	recordDist := func(a, b int, d float64) {
		if a > b {
			a, b = b, a
		}
		t.dist[[2]int{a, b}] = d
	}

	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	next := n
	for len(active) > 1 {
		var groups []Group
		unused := append([]int(nil), active...)
		var carried []int
		for len(unused) >= 2 {
			// Closest unused pair, lowest IDs on ties.
			bi, bj, bd := -1, -1, 0.0
			for ii := 0; ii < len(unused); ii++ {
				for jj := ii + 1; jj < len(unused); jj++ {
					d := clusterDist(unused[ii], unused[jj])
					if bi < 0 || d < bd {
						bi, bj, bd = ii, jj, d
					}
				}
			}
			members := []int{unused[bi], unused[bj]}
			recordDist(unused[bi], unused[bj], bd)
			rest := make([]int, 0, len(unused)-2)
			for ii, c := range unused {
				if ii != bi && ii != bj {
					rest = append(rest, c)
				}
			}
			if len(rest) > 0 {
				// Closest third to the pair, lowest ID on ties.
				bt, btd := -1, 0.0
				for ti, c := range rest {
					d := (clusterDist(members[0], c) + clusterDist(members[1], c)) / 2
					if bt < 0 || d < btd {
						bt, btd = ti, d
					}
				}
				third := rest[bt]
				recordDist(members[0], third, clusterDist(members[0], third))
				recordDist(members[1], third, clusterDist(members[1], third))
				members = append(members, third)
				rest = append(rest[:bt], rest[bt+1:]...)
			}
			out := next
			next++
			groups = append(groups, Group{Members: members, Out: out})
			leaves := []int{}
			for _, m := range members {
				leaves = append(leaves, leavesOf[m]...)
			}
			leavesOf[out] = leaves
			unused = rest
		}
		carried = unused
		t.Levels = append(t.Levels, Level{Groups: groups})
		active = carried
		for _, g := range groups {
			active = append(active, g.Out)
		}
	}
	t.Root = active[0]
	return t, nil
}

package msa

import (
	"context"
	"fmt"

	"repro/internal/alignment"
	"repro/internal/mat"
	"repro/internal/pairwise"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// OuterMasksFromMoves converts a three-way move list (an exact alignment of
// three profile consensus rows) into the outer column masks MergeParts
// consumes: move bits ConsumeA/B/C become part bits 0/1/2.
func OuterMasksFromMoves(moves []alignment.Move) []alignment.Mask {
	out := make([]alignment.Mask, len(moves))
	for i, m := range moves {
		out[i] = alignment.Mask(m)
	}
	return out
}

// OuterMasksFromOps converts a pairwise op list (an alignment of two profile
// consensus rows) into outer column masks: OpA consumes part 0, OpB part 1,
// OpBoth both.
func OuterMasksFromOps(ops []pairwise.Op) []alignment.Mask {
	out := make([]alignment.Mask, len(ops))
	for i, op := range ops {
		switch op {
		case pairwise.OpA:
			out[i] = 1
		case pairwise.OpB:
			out[i] = 2
		default:
			out[i] = 3
		}
	}
	return out
}

// MergeParts stitches aligned profiles into one profile along an outer
// alignment of their consensus rows ("once a gap, always a gap" at profile
// boundaries). Each part's consensus has one residue per profile column, so
// outer column masks walk the parts' columns in order: a column of the
// merged profile ORs together the next column of every consumed part
// (shifted to its row offset), and leaves the rows of unconsumed parts
// fully gapped. The result's rows are the parts' rows concatenated in part
// order; its Score is left zero for the caller to fill.
func MergeParts(parts []*alignment.Multi, outer []alignment.Mask) (*alignment.Multi, error) {
	if len(parts) < 1 || len(parts) > alignment.MaxRows {
		return nil, fmt.Errorf("msa: merge of %d parts", len(parts))
	}
	totalRows := 0
	offsets := make([]int, len(parts))
	var seqs []*seq.Sequence
	for pi, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("msa: merge part %d is nil", pi)
		}
		offsets[pi] = totalRows
		totalRows += p.NumRows()
		seqs = append(seqs, p.Seqs...)
	}
	if totalRows > alignment.MaxRows {
		return nil, fmt.Errorf("msa: merge would produce %d rows; max %d", totalRows, alignment.MaxRows)
	}
	limit := alignment.Mask(1)<<uint(len(parts)) - 1
	cols := make([]alignment.Mask, 0, len(outer))
	idx := make([]int, len(parts))
	for oi, om := range outer {
		if om == 0 || om&^limit != 0 {
			return nil, fmt.Errorf("msa: outer column %d mask %#x invalid for %d parts", oi, uint64(om), len(parts))
		}
		var col alignment.Mask
		for pi, p := range parts {
			if !om.Consumes(pi) {
				continue
			}
			if idx[pi] >= p.Columns() {
				return nil, fmt.Errorf("msa: outer alignment consumes %d+ columns of part %d, which has %d",
					idx[pi]+1, pi, p.Columns())
			}
			col |= p.Cols[idx[pi]] << uint(offsets[pi])
			idx[pi]++
		}
		cols = append(cols, col)
	}
	for pi, p := range parts {
		if idx[pi] != p.Columns() {
			return nil, fmt.Errorf("msa: outer alignment consumes %d columns of part %d, which has %d",
				idx[pi], pi, p.Columns())
		}
	}
	m := &alignment.Multi{Seqs: seqs, Cols: cols}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("msa: merged profile invalid: %w", err)
	}
	return m, nil
}

// MergePair merges two profiles through an optimal pairwise alignment of
// their consensus rows — the leftover 2-way merge of the guide-tree
// schedule. Affine schemes use the Gotoh aligner for the outer alignment.
func MergePair(a, b *alignment.Multi, sch *scoring.Scheme) (*alignment.Multi, error) {
	ca, cb := a.ConsensusSeq("a"), b.ConsensusSeq("b")
	var res pairwise.Result
	if sch.Affine() {
		res = pairwise.GlobalAffine(ca.Codes(), cb.Codes(), sch)
	} else {
		res = pairwise.Global(ca.Codes(), cb.Codes(), sch)
	}
	m, err := MergeParts([]*alignment.Multi{a, b}, OuterMasksFromOps(res.Ops))
	if err != nil {
		return nil, err
	}
	m.Score = m.SPScoreFor(sch)
	return m, nil
}

// CenterStarN generalizes the pairwise center-star heuristic to N
// sequences: the center maximizes its summed optimal pairwise score against
// all others, each satellite is aligned pairwise against the center, and
// the star is merged with the "once a gap, always a gap" rule. Rows come
// back in input order. This is the pre-guide-tree baseline the progressive
// 3-way path is measured against.
func CenterStarN(seqs []*seq.Sequence, sch *scoring.Scheme) (*alignment.Multi, error) {
	n := len(seqs)
	if n < 1 || n > alignment.MaxRows {
		return nil, fmt.Errorf("msa: center-star over %d sequences", n)
	}
	if n == 1 {
		m := alignment.NewLeaf(seqs[0])
		m.Score = 0
		return m, nil
	}
	codes := make([][]int8, n)
	for i, s := range seqs {
		codes[i] = s.Codes()
	}
	// Summed optimal pairwise score per candidate center.
	sums := make([]mat.Score, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var s mat.Score
			if sch.Affine() {
				s = pairwise.GlobalAffine(codes[i], codes[j], sch).Score
			} else {
				s = pairwise.GlobalScore(codes[i], codes[j], sch)
			}
			sums[i] += s
			sums[j] += s
		}
	}
	center := 0
	for i := 1; i < n; i++ {
		if sums[i] > sums[center] {
			center = i
		}
	}
	sats := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != center {
			sats = append(sats, i)
		}
	}
	opLists := make([][]pairwise.Op, len(sats))
	for si, s := range sats {
		if sch.Affine() {
			opLists[si] = pairwise.GlobalAffine(codes[center], codes[s], sch).Ops
		} else {
			opLists[si] = pairwise.Global(codes[center], codes[s], sch).Ops
		}
	}
	cols := mergeStarMasks(opLists)
	// Rows are [center, sats...]; restore input order.
	ordered := append([]*seq.Sequence{seqs[center]}, make([]*seq.Sequence, 0, len(sats))...)
	for _, s := range sats {
		ordered = append(ordered, seqs[s])
	}
	star := &alignment.Multi{Seqs: ordered, Cols: cols}
	perm := make([]int, n) // row i of result = star row perm[i]
	starRowOf := make([]int, n)
	starRowOf[center] = 0
	for si, s := range sats {
		starRowOf[s] = si + 1
	}
	for i := 0; i < n; i++ {
		perm[i] = starRowOf[i]
	}
	m, err := star.Reorder(perm)
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("msa: center-star produced inconsistent profile: %w", err)
	}
	m.Score = m.SPScoreFor(sch)
	return m, nil
}

// mergeStarMasks merges N-1 center-vs-satellite op lists into column masks
// over rows [center, sat1, sat2, ...]: the N-row generalization of
// mergeStar. Satellite inserts drain in satellite order (deterministic),
// then a center-consuming column ORs in every satellite matching there.
func mergeStarMasks(opLists [][]pairwise.Op) []alignment.Mask {
	pos := make([]int, len(opLists))
	var cols []alignment.Mask
	for {
		inserted := false
		for si, ops := range opLists {
			if pos[si] < len(ops) && ops[pos[si]] == pairwise.OpB {
				cols = append(cols, alignment.Mask(1)<<uint(si+1))
				pos[si]++
				inserted = true
				break
			}
		}
		if inserted {
			continue
		}
		done := true
		for si, ops := range opLists {
			if pos[si] < len(ops) {
				done = false
				break
			}
			_ = si
		}
		if done {
			break
		}
		// Every pending op consumes the center.
		col := alignment.Mask(1)
		for si, ops := range opLists {
			if pos[si] < len(ops) {
				if ops[pos[si]] == pairwise.OpBoth {
					col |= alignment.Mask(1) << uint(si+1)
				}
				pos[si]++
			}
		}
		cols = append(cols, col)
	}
	return cols
}

// RefineMultiContext improves an N-row profile by iterative refinement: one
// row at a time is removed and optimally re-aligned against the profile of
// the remaining rows, keeping the result whenever the scheme's SP objective
// improves. It honors ctx between re-alignments. maxRounds ≤ 0 selects the
// same default as Refine.
func RefineMultiContext(ctx context.Context, m *alignment.Multi, sch *scoring.Scheme, maxRounds int) (*alignment.Multi, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("msa: refine input: %w", err)
	}
	if maxRounds <= 0 {
		maxRounds = 10
	}
	n := m.NumRows()
	cur := &alignment.Multi{Seqs: m.Seqs, Cols: append([]alignment.Mask(nil), m.Cols...)}
	cur.Score = cur.SPScoreFor(sch)
	if n < 2 {
		return cur, nil
	}
	for round := 0; round < maxRounds; round++ {
		improved := false
		for out := 0; out < n; out++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cand, err := realignOneMulti(cur, sch, out)
			if err != nil {
				return nil, err
			}
			cand.Score = cand.SPScoreFor(sch)
			if cand.Score > cur.Score {
				cur = cand
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return cur, nil
}

// realignOneMulti removes row `out` from the profile and re-aligns its
// sequence optimally (linear objective) against the profile induced by the
// remaining rows — the N-row generalization of realignOne.
func realignOneMulti(cur *alignment.Multi, sch *scoring.Scheme, out int) (*alignment.Multi, error) {
	n := cur.NumRows()
	outBit := alignment.Mask(1) << uint(out)
	allCodes := cur.ColumnCodes()
	type profCol struct {
		mask  alignment.Mask // remaining-row consumption bits
		codes []int8         // all-row codes; position out ignored
	}
	var prof []profCol
	for ci, c := range cur.Cols {
		rest := c &^ outBit
		if rest == 0 {
			continue
		}
		prof = append(prof, profCol{mask: rest, codes: allCodes[ci]})
	}

	r := cur.Seqs[out].Codes()
	nr, mc := len(r), len(prof)
	f := mat.NewPlane(nr+1, mc+1)
	matchCost := func(ri int8, c profCol) mat.Score {
		var s mat.Score
		for i, code := range c.codes {
			if i != out {
				s += sch.Pair(ri, code)
			}
		}
		return s
	}
	gapRCost := func(c profCol) mat.Score {
		var s mat.Score
		for i, code := range c.codes {
			if i != out {
				s += sch.Pair(scoring.Gap, code)
			}
		}
		return s
	}
	gapColCost := mat.Score(n-1) * sch.GapExtend()
	for j := 1; j <= mc; j++ {
		f.Set(0, j, f.At(0, j-1)+gapRCost(prof[j-1]))
	}
	for i := 1; i <= nr; i++ {
		f.Set(i, 0, f.At(i-1, 0)+gapColCost)
		for j := 1; j <= mc; j++ {
			best := f.At(i-1, j-1) + matchCost(r[i-1], prof[j-1])
			if v := f.At(i-1, j) + gapColCost; v > best {
				best = v
			}
			if v := f.At(i, j-1) + gapRCost(prof[j-1]); v > best {
				best = v
			}
			f.Set(i, j, best)
		}
	}

	var rev []alignment.Mask
	i, j := nr, mc
	for i > 0 || j > 0 {
		v := f.At(i, j)
		switch {
		case i > 0 && j > 0 && v == f.At(i-1, j-1)+matchCost(r[i-1], prof[j-1]):
			rev = append(rev, prof[j-1].mask|outBit)
			i, j = i-1, j-1
		case i > 0 && v == f.At(i-1, j)+gapColCost:
			rev = append(rev, outBit)
			i--
		case j > 0 && v == f.At(i, j-1)+gapRCost(prof[j-1]):
			rev = append(rev, prof[j-1].mask)
			j--
		default:
			return nil, fmt.Errorf("msa: multi refine traceback stuck at (%d,%d)", i, j)
		}
	}
	cols := make([]alignment.Mask, len(rev))
	for k := range rev {
		cols[k] = rev[len(rev)-1-k]
	}
	res := &alignment.Multi{Seqs: cur.Seqs, Cols: cols}
	if err := res.Validate(); err != nil {
		return nil, fmt.Errorf("msa: multi refine produced inconsistent profile: %w", err)
	}
	return res, nil
}

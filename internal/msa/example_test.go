package msa_test

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/msa"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// ExampleCenterStar shows the quality relationship the T3 experiment
// measures: heuristic ≤ refined heuristic ≤ exact optimum.
func ExampleCenterStar() {
	g := seq.NewGenerator(seq.DNA, 11)
	tr := g.RelatedTriple(50, seq.MutationModel{SubstitutionRate: 0.25, InsertionRate: 0.06, DeletionRate: 0.06})
	sch := scoring.DNADefault()

	cs, _ := msa.CenterStar(tr, sch)
	csr, _ := msa.CenterStarRefined(tr, sch)
	opt, _ := core.AlignFull(context.Background(), tr, sch, core.Options{})

	fmt.Println("center-star <= refined:", cs.Score <= csr.Score)
	fmt.Println("refined <= optimum:", csr.Score <= opt.Score)
	// Output:
	// center-star <= refined: true
	// refined <= optimum: true
}

// ExampleRefine improves an alignment in place until a fixed point.
func ExampleRefine() {
	g := seq.NewGenerator(seq.DNA, 13)
	tr := g.RelatedTriple(40, seq.MutationModel{SubstitutionRate: 0.3, InsertionRate: 0.1, DeletionRate: 0.1})
	sch := scoring.DNADefault()
	start, _ := msa.Progressive(tr, sch)
	refined, _ := msa.Refine(start, sch, 0)
	fmt.Println("no worse after refinement:", refined.Score >= start.Score)
	// Output:
	// no worse after refinement: true
}

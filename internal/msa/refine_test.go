package msa

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/alignment"
	"repro/internal/core"
	"repro/internal/seq"
)

func TestRefineNeverWorsensAndStaysBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 20; trial++ {
		g := seq.NewGenerator(seq.DNA, rng.Int63())
		tr := g.RelatedTriple(10+rng.Intn(30), seq.Uniform(0.25))
		start, err := CenterStar(tr, dnaSch)
		if err != nil {
			t.Fatal(err)
		}
		refined, err := Refine(start, dnaSch, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := refined.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if refined.Score < start.Score {
			t.Fatalf("trial %d: refinement worsened score: %d -> %d", trial, start.Score, refined.Score)
		}
		if got := refined.SPScore(dnaSch); got != refined.Score {
			t.Fatalf("trial %d: reported %d, recomputed %d", trial, refined.Score, got)
		}
		opt, err := core.AlignFull(context.Background(), tr, dnaSch, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if refined.Score > opt.Score {
			t.Fatalf("trial %d: refined %d beats optimum %d", trial, refined.Score, opt.Score)
		}
	}
}

func TestRefineImprovesCenterStarSometimes(t *testing.T) {
	// Across a batch of indel-heavy triples refinement must find at least
	// one strict improvement, otherwise it is doing nothing.
	improved := 0
	for s := int64(0); s < 12; s++ {
		g := seq.NewGenerator(seq.DNA, 500+s)
		tr := g.RelatedTriple(40, seq.MutationModel{SubstitutionRate: 0.25, InsertionRate: 0.08, DeletionRate: 0.08})
		start, err := CenterStar(tr, dnaSch)
		if err != nil {
			t.Fatal(err)
		}
		refined, err := Refine(start, dnaSch, 0)
		if err != nil {
			t.Fatal(err)
		}
		if refined.Score > start.Score {
			improved++
		}
	}
	if improved == 0 {
		t.Fatal("refinement never improved center-star over 12 indel-heavy triples")
	}
}

func TestRefineFixedPointOnOptimal(t *testing.T) {
	// Refining an exact optimum cannot change its score.
	g := seq.NewGenerator(seq.DNA, 601)
	tr := g.RelatedTriple(30, seq.Uniform(0.2))
	opt, err := core.AlignFull(context.Background(), tr, dnaSch, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Refine(opt, dnaSch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Score != opt.Score {
		t.Fatalf("refined optimum score %d != %d", refined.Score, opt.Score)
	}
}

func TestRefineRejectsInvalid(t *testing.T) {
	g := seq.NewGenerator(seq.DNA, 602)
	tr := g.RelatedTriple(10, seq.Uniform(0.1))
	bad, err := CenterStar(tr, dnaSch)
	if err != nil {
		t.Fatal(err)
	}
	bad.Moves = bad.Moves[:len(bad.Moves)-1] // corrupt consumption
	if _, err := Refine(bad, dnaSch, 0); err == nil {
		t.Fatal("invalid input accepted")
	}
}

func TestRefineDoesNotMutateInput(t *testing.T) {
	g := seq.NewGenerator(seq.DNA, 603)
	tr := g.RelatedTriple(30, seq.MutationModel{SubstitutionRate: 0.3, InsertionRate: 0.1, DeletionRate: 0.1})
	start, err := CenterStar(tr, dnaSch)
	if err != nil {
		t.Fatal(err)
	}
	movesBefore := movesBytes(start.Moves)
	if _, err := Refine(start, dnaSch, 0); err != nil {
		t.Fatal(err)
	}
	if movesBefore != movesBytes(start.Moves) {
		t.Fatal("Refine mutated its input alignment")
	}
}

func movesBytes(ms []alignment.Move) string {
	out := make([]byte, len(ms))
	for i, m := range ms {
		out[i] = byte(m)
	}
	return string(out)
}

func TestCenterStarRefined(t *testing.T) {
	g := seq.NewGenerator(seq.DNA, 604)
	tr := g.RelatedTriple(40, seq.MutationModel{SubstitutionRate: 0.2, InsertionRate: 0.06, DeletionRate: 0.06})
	cs, err := CenterStar(tr, dnaSch)
	if err != nil {
		t.Fatal(err)
	}
	csr, err := CenterStarRefined(tr, dnaSch)
	if err != nil {
		t.Fatal(err)
	}
	if csr.Score < cs.Score {
		t.Fatalf("CenterStarRefined %d below CenterStar %d", csr.Score, cs.Score)
	}
	// And it still serves as a pruning bound.
	aln, _, err := core.AlignPruned(context.Background(), tr, dnaSch, core.Options{}, csr.Score)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.AlignFull(context.Background(), tr, dnaSch, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if aln.Score != opt.Score {
		t.Fatalf("pruned with refined bound %d != optimum %d", aln.Score, opt.Score)
	}
}

func TestRefineContextCancelled(t *testing.T) {
	tr := triple(t, "ACGTACGTAC", "ACGTAACGTC", "ACGGTACGAC")
	aln, err := CenterStar(tr, dnaSch)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RefineContext(ctx, aln, dnaSch, 0); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The uncancelled path still refines.
	if _, err := RefineContext(context.Background(), aln, dnaSch, 0); err != nil {
		t.Fatal(err)
	}
}

package msa

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/alignment"
	"repro/internal/core"
	"repro/internal/scoring"
	"repro/internal/seq"
)

var dnaSch = scoring.DNADefault()

func triple(t *testing.T, a, b, c string) seq.Triple {
	t.Helper()
	return seq.Triple{
		A: seq.MustNew("A", a, seq.DNA),
		B: seq.MustNew("B", b, seq.DNA),
		C: seq.MustNew("C", c, seq.DNA),
	}
}

func heuristics() map[string]func(seq.Triple, *scoring.Scheme) (*alignment.Alignment, error) {
	return map[string]func(seq.Triple, *scoring.Scheme) (*alignment.Alignment, error){
		"center-star": CenterStar,
		"progressive": Progressive,
	}
}

func TestHeuristicsIdenticalSequences(t *testing.T) {
	tr := triple(t, "ACGTACGT", "ACGTACGT", "ACGTACGT")
	for name, run := range heuristics() {
		aln, err := run(tr, dnaSch)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if aln.Columns() != 8 {
			t.Errorf("%s: columns = %d, want 8", name, aln.Columns())
		}
		if aln.Score != 8*6 {
			t.Errorf("%s: score = %d, want 48", name, aln.Score)
		}
	}
}

func TestHeuristicsValidAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		var tr seq.Triple
		if trial%2 == 0 {
			g := seq.NewGenerator(seq.DNA, rng.Int63())
			tr = seq.Triple{
				A: g.Random("A", rng.Intn(25)),
				B: g.Random("B", rng.Intn(25)),
				C: g.Random("C", rng.Intn(25)),
			}
		} else {
			g := seq.NewGenerator(seq.DNA, rng.Int63())
			tr = g.RelatedTriple(8+rng.Intn(20), seq.Uniform(0.2))
		}
		opt, err := core.AlignFull(context.Background(), tr, dnaSch, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for name, run := range heuristics() {
			aln, err := run(tr, dnaSch)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if err := aln.Validate(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if got := aln.SPScore(dnaSch); got != aln.Score {
				t.Fatalf("trial %d %s: reported %d, recomputed %d", trial, name, aln.Score, got)
			}
			if aln.Score > opt.Score {
				t.Fatalf("trial %d %s: heuristic %d beats optimum %d", trial, name, aln.Score, opt.Score)
			}
		}
	}
}

func TestHeuristicsCloseToOptimalOnSimilarTriples(t *testing.T) {
	// For highly similar sequences both heuristics should land near the
	// optimum (this is the regime where center-star's bound is tight).
	g := seq.NewGenerator(seq.DNA, 5)
	tr := g.RelatedTriple(60, seq.MutationModel{SubstitutionRate: 0.05})
	opt, err := core.AlignFull(context.Background(), tr, dnaSch, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, run := range heuristics() {
		aln, err := run(tr, dnaSch)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if float64(aln.Score) < 0.9*float64(opt.Score) {
			t.Errorf("%s: score %d far from optimum %d", name, aln.Score, opt.Score)
		}
	}
}

func TestHeuristicScoreIsValidPruningBound(t *testing.T) {
	g := seq.NewGenerator(seq.DNA, 6)
	tr := g.RelatedTriple(40, seq.Uniform(0.1))
	cs, err := CenterStar(tr, dnaSch)
	if err != nil {
		t.Fatal(err)
	}
	aln, stats, err := core.AlignPruned(context.Background(), tr, dnaSch, core.Options{}, cs.Score)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.AlignFull(context.Background(), tr, dnaSch, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if aln.Score != opt.Score {
		t.Fatalf("pruned with heuristic bound: %d != %d", aln.Score, opt.Score)
	}
	_, base, err := core.AlignPruned(context.Background(), tr, dnaSch, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.EvaluatedCells > base.EvaluatedCells {
		t.Fatalf("heuristic bound evaluated more cells than trivial bound: %d > %d",
			stats.EvaluatedCells, base.EvaluatedCells)
	}
}

func TestHeuristicsEmptySequences(t *testing.T) {
	shapes := [][3]string{
		{"", "", ""},
		{"ACGT", "", ""},
		{"", "ACG", "AG"},
		{"ACGT", "ACG", ""},
	}
	for _, s := range shapes {
		tr := triple(t, s[0], s[1], s[2])
		for name, run := range heuristics() {
			aln, err := run(tr, dnaSch)
			if err != nil {
				t.Fatalf("%v %s: %v", s, name, err)
			}
			if err := aln.Validate(); err != nil {
				t.Fatalf("%v %s: %v", s, name, err)
			}
		}
	}
}

func TestCenterStarPicksBestCenter(t *testing.T) {
	// B is clearly the center: identical to A and one substitution from C.
	tr := triple(t, "ACGTACGT", "ACGTACGT", "ACGTACTT")
	aln, err := CenterStar(tr, dnaSch)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.AlignFull(context.Background(), tr, dnaSch, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// No indels are involved, so center-star is exactly optimal here.
	if aln.Score != opt.Score {
		t.Fatalf("center-star %d != optimum %d", aln.Score, opt.Score)
	}
}

func TestProgressiveProteinAffineScheme(t *testing.T) {
	// The heuristics use linear SP scoring; with an affine scheme they
	// still produce structurally valid alignments.
	g := seq.NewGenerator(seq.Protein, 9)
	tr := g.RelatedTriple(30, seq.Uniform(0.2))
	aln, err := Progressive(tr, scoring.BLOSUM62())
	if err != nil {
		t.Fatal(err)
	}
	if err := aln.Validate(); err != nil {
		t.Fatal(err)
	}
}

package faultpoint

import (
	"strings"
	"testing"
)

// point declares a uniquely named test point (the registry is process
// global and New panics on duplicates).
func point(t *testing.T, name string) *Point {
	t.Helper()
	p := New(name)
	t.Cleanup(func() { Disarm(name) })
	return p
}

func fires(p *Point, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = p.Fire()
	}
	return out
}

func countTrue(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}

func TestDisarmedNeverFires(t *testing.T) {
	p := point(t, "test.disarmed")
	if countTrue(fires(p, 100)) != 0 {
		t.Fatal("disarmed point fired")
	}
	if hits, fired := Stats("test.disarmed"); hits != 0 || fired != 0 {
		t.Fatalf("disarmed point counted hits=%d fired=%d", hits, fired)
	}
}

func TestModes(t *testing.T) {
	cases := []struct {
		mode string
		want []bool
	}{
		{"always", []bool{true, true, true, true, true}},
		{"off", []bool{false, false, false, false, false}},
		{"nth:3", []bool{false, false, true, false, false}},
		{"every:2", []bool{false, true, false, true, false}},
		{"first:2", []bool{true, true, false, false, false}},
	}
	for _, tc := range cases {
		p := point(t, "test.mode."+strings.ReplaceAll(tc.mode, ":", "_"))
		if err := Arm(p.Name(), tc.mode); err != nil {
			t.Fatalf("Arm(%q): %v", tc.mode, err)
		}
		got := fires(p, len(tc.want))
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("mode %q hit %d: fired=%v want %v", tc.mode, i+1, got[i], tc.want[i])
			}
		}
		hits, fired := Stats(p.Name())
		if hits != int64(len(tc.want)) || fired != int64(countTrue(tc.want)) {
			t.Errorf("mode %q stats: hits=%d fired=%d want %d/%d",
				tc.mode, hits, fired, len(tc.want), countTrue(tc.want))
		}
	}
}

func TestProbDeterministic(t *testing.T) {
	p := point(t, "test.prob")
	if err := Arm(p.Name(), "prob:0.5:42"); err != nil {
		t.Fatal(err)
	}
	first := fires(p, 64)
	if err := Arm(p.Name(), "prob:0.5:42"); err != nil { // re-arm resets the PRNG
		t.Fatal(err)
	}
	second := fires(p, 64)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("prob sequence not reproducible at hit %d", i+1)
		}
	}
	if n := countTrue(first); n == 0 || n == 64 {
		t.Fatalf("prob:0.5 fired %d of 64 hits; expected a mix", n)
	}
}

func TestArmErrors(t *testing.T) {
	point(t, "test.armerrs")
	for _, mode := range []string{"bogus", "nth", "nth:0", "nth:x", "every:-1", "prob:2", "prob:", "always:1"} {
		if err := Arm("test.armerrs", mode); err == nil {
			t.Errorf("Arm(%q) accepted a malformed mode", mode)
		}
	}
	if err := Arm("test.never.declared", "always"); err == nil {
		t.Error("Arm accepted an unknown point name")
	}
}

func TestArmSpec(t *testing.T) {
	a := point(t, "test.spec.a")
	b := point(t, "test.spec.b")
	if err := ArmSpec("test.spec.a=always; test.spec.b=nth:2"); err != nil {
		t.Fatal(err)
	}
	if !a.Fire() {
		t.Error("spec-armed always point did not fire")
	}
	if b.Fire() || !b.Fire() {
		t.Error("spec-armed nth:2 point misfired")
	}
	if err := ArmSpec("test.spec.a=always;test.spec.unknown=always"); err == nil {
		t.Error("ArmSpec accepted an unknown point name")
	}
	if err := ArmSpec("garbage"); err == nil {
		t.Error("ArmSpec accepted an entry without '='")
	}
}

func TestDisarmAndReset(t *testing.T) {
	p := point(t, "test.reset")
	if err := Arm(p.Name(), "always"); err != nil {
		t.Fatal(err)
	}
	Disarm(p.Name())
	if p.Fire() {
		t.Error("disarmed point fired")
	}
	Disarm("test.unknown.name") // must not panic
	if err := Arm(p.Name(), "always"); err != nil {
		t.Fatal(err)
	}
	Reset()
	if p.Fire() {
		t.Error("point fired after Reset")
	}
	for _, name := range Armed() {
		if strings.HasPrefix(name, "test.") {
			t.Errorf("point %s still armed after Reset", name)
		}
	}
}

func TestNamesAndArmed(t *testing.T) {
	p := point(t, "test.names")
	found := false
	for _, n := range Names() {
		if n == "test.names" {
			found = true
		}
	}
	if !found {
		t.Fatal("Names() misses a declared point")
	}
	if err := Arm(p.Name(), "off"); err != nil {
		t.Fatal(err)
	}
	found = false
	for _, n := range Armed() {
		if n == "test.names" {
			found = true
		}
	}
	if !found {
		t.Fatal("Armed() misses an armed point")
	}
}

func TestDuplicatePanics(t *testing.T) {
	point(t, "test.dup")
	defer func() {
		if recover() == nil {
			t.Error("duplicate New did not panic")
		}
	}()
	New("test.dup")
}

func TestConcurrentFire(t *testing.T) {
	p := point(t, "test.concurrent")
	if err := Arm(p.Name(), "every:10"); err != nil {
		t.Fatal(err)
	}
	done := make(chan int, 8)
	for g := 0; g < 8; g++ {
		go func() {
			n := 0
			for i := 0; i < 1000; i++ {
				if p.Fire() {
					n++
				}
			}
			done <- n
		}()
	}
	total := 0
	for g := 0; g < 8; g++ {
		total += <-done
	}
	if total != 800 {
		t.Fatalf("every:10 fired %d of 8000 concurrent hits, want 800", total)
	}
}

// Package faultpoint is a deterministic fault-injection registry: named
// points compiled into the layers that matter (arena get/put, kernel block
// fills, deque steals and handoffs, coalescer flushes, admission slots,
// planner downgrades) that cost one atomic load and a nil check while
// disarmed and, when armed, decide deterministically whether this hit
// should fail.
//
// A subsystem declares its points at package init:
//
//	var fpGet = faultpoint.New("mat.arena.get")
//
// and consults them at the site the fault models:
//
//	if fpGet.Fire() {
//		panic("faultpoint: mat.arena.get")
//	}
//
// What a fired point *does* is the site's choice — panic, return an
// injected error, pretend a steal failed — because a useful fault is the
// one the surrounding code could actually produce. The registry only
// answers "should this hit fail?".
//
// Points are armed three ways:
//
//   - Tests call Arm("name", "nth:3") / Disarm / Reset.
//   - Operators (and the chaos-smoke CI job) set the ALIGND_FAULTPOINTS
//     environment variable to a spec like
//     "server.admit=every:3;mat.arena.get=nth:2"; points named there are
//     armed as soon as the owning package registers them.
//   - ArmSpec applies the same spec string programmatically.
//
// Trigger modes (all deterministic given the spec):
//
//	always      fire on every hit
//	nth:N       fire on the Nth hit only (once)
//	every:N     fire on hit N, 2N, 3N, ...
//	first:N     fire on the first N hits
//	prob:P[:S]  fire each hit with probability P from a PRNG seeded with S
//	            (default seed 1) — reproducible across runs
//	off         never fire (still counts hits)
//
// Hit and fired counts accumulate only while a point is armed, so the
// disarmed fast path stays a single atomic pointer load.
package faultpoint

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// EnvVar is the environment variable holding the boot-time arming spec.
const EnvVar = "ALIGND_FAULTPOINTS"

// Point is one named fault site. The zero Point is not valid; obtain
// points with New.
type Point struct {
	name  string
	state atomic.Pointer[trigger] // nil while disarmed — the whole fast path
}

// trigger is the armed state of a point. Hits are serialized under mu so
// nth/every/prob decisions are deterministic even from concurrent sites.
type trigger struct {
	mu    sync.Mutex
	mode  string
	n     int64      // parameter of nth/every/first
	p     float64    // probability for prob
	rng   *rand.Rand // seeded source for prob
	hits  int64
	fired int64
}

// registry holds every declared point plus arming specs that arrived (via
// the environment) before the owning package registered its point.
var registry = struct {
	mu      sync.Mutex
	points  map[string]*Point
	pending map[string]string
}{points: make(map[string]*Point), pending: make(map[string]string)}

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		// Points named in the environment usually do not exist yet — the
		// packages declaring them initialize after this one — so the spec
		// is parked and applied by New as each point registers.
		if err := armSpec(spec, true); err != nil {
			// A malformed boot spec must not be silently ignored: the whole
			// purpose of arming via the environment is a chaos run, and a
			// typo that disarms everything would pass vacuously.
			panic(fmt.Sprintf("faultpoint: bad %s: %v", EnvVar, err))
		}
	}
}

// New declares a fault point. It is meant to be called from package-level
// var initializers; declaring the same name twice panics. A pending
// environment spec naming the point arms it immediately.
func New(name string) *Point {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.points[name]; dup {
		panic("faultpoint: duplicate point " + name)
	}
	p := &Point{name: name}
	registry.points[name] = p
	if mode, ok := registry.pending[name]; ok {
		delete(registry.pending, name)
		tr, err := parseMode(mode)
		if err != nil {
			panic(fmt.Sprintf("faultpoint: bad %s mode for %s: %v", EnvVar, name, err))
		}
		p.state.Store(tr)
	}
	return p
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

// Fire reports whether this hit of the point should fail. Disarmed points
// return false after a single atomic load; armed points count the hit and
// evaluate their trigger under the trigger's lock.
func (p *Point) Fire() bool {
	tr := p.state.Load()
	if tr == nil {
		return false
	}
	return tr.fire()
}

func (t *trigger) fire() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hits++
	var f bool
	switch t.mode {
	case "always":
		f = true
	case "nth":
		f = t.hits == t.n
	case "every":
		f = t.hits%t.n == 0
	case "first":
		f = t.hits <= t.n
	case "prob":
		f = t.rng.Float64() < t.p
	case "off":
		f = false
	}
	if f {
		t.fired++
	}
	return f
}

// parseMode parses one trigger mode ("always", "nth:3", "prob:0.5:42", ...).
func parseMode(mode string) (*trigger, error) {
	parts := strings.Split(mode, ":")
	t := &trigger{mode: parts[0]}
	switch parts[0] {
	case "always", "off":
		if len(parts) != 1 {
			return nil, fmt.Errorf("mode %q takes no argument", parts[0])
		}
	case "nth", "every", "first":
		if len(parts) != 2 {
			return nil, fmt.Errorf("mode %q wants one count argument", parts[0])
		}
		n, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("mode %q wants a positive count, got %q", parts[0], parts[1])
		}
		t.n = n
	case "prob":
		if len(parts) != 2 && len(parts) != 3 {
			return nil, fmt.Errorf("mode prob wants prob:P[:seed]")
		}
		p, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("mode prob wants a probability in [0,1], got %q", parts[1])
		}
		seed := int64(1)
		if len(parts) == 3 {
			seed, err = strconv.ParseInt(parts[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("mode prob: bad seed %q", parts[2])
			}
		}
		t.p = p
		t.rng = rand.New(rand.NewSource(seed))
	default:
		return nil, fmt.Errorf("unknown mode %q", parts[0])
	}
	return t, nil
}

// Arm arms a declared point with the given trigger mode, replacing any
// previous arming (and its counters). Unknown names and malformed modes
// are errors — a chaos test that typos a point name must fail loudly, not
// pass vacuously.
func Arm(name, mode string) error {
	tr, err := parseMode(mode)
	if err != nil {
		return fmt.Errorf("faultpoint: %s: %w", name, err)
	}
	registry.mu.Lock()
	p, ok := registry.points[name]
	registry.mu.Unlock()
	if !ok {
		return fmt.Errorf("faultpoint: unknown point %q", name)
	}
	p.state.Store(tr)
	return nil
}

// ArmSpec applies a full "name=mode;name=mode" spec — the ALIGND_FAULTPOINTS
// grammar — to declared points. Every name must already be registered.
func ArmSpec(spec string) error { return armSpec(spec, false) }

func armSpec(spec string, pendUnknown bool) error {
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, mode, ok := strings.Cut(entry, "=")
		if !ok || name == "" || mode == "" {
			return fmt.Errorf("faultpoint: bad spec entry %q (want name=mode)", entry)
		}
		if pendUnknown {
			// Validate the mode eagerly so a boot-spec typo fails at
			// startup, then park it for New.
			if _, err := parseMode(mode); err != nil {
				return fmt.Errorf("faultpoint: %s: %w", name, err)
			}
			registry.mu.Lock()
			if p, ok := registry.points[name]; ok {
				tr, _ := parseMode(mode)
				p.state.Store(tr)
			} else {
				registry.pending[name] = mode
			}
			registry.mu.Unlock()
			continue
		}
		if err := Arm(name, mode); err != nil {
			return err
		}
	}
	return nil
}

// Disarm disarms a point (a no-op for unknown names, so tests can disarm
// unconditionally in cleanup).
func Disarm(name string) {
	registry.mu.Lock()
	p, ok := registry.points[name]
	registry.mu.Unlock()
	if ok {
		p.state.Store(nil)
	}
}

// Reset disarms every point and drops pending environment arms. Chaos
// suites call it in test cleanup so faults never leak between tests.
func Reset() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, p := range registry.points {
		p.state.Store(nil)
	}
	registry.pending = make(map[string]string)
}

// Stats reports how many times an armed point was hit and how many hits
// fired. Both are zero for disarmed or unknown points (counters reset at
// each Arm).
func Stats(name string) (hits, fired int64) {
	registry.mu.Lock()
	p, ok := registry.points[name]
	registry.mu.Unlock()
	if !ok {
		return 0, 0
	}
	tr := p.state.Load()
	if tr == nil {
		return 0, 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.hits, tr.fired
}

// Names lists every declared point, sorted — the operator-facing catalog
// (alignd logs it at boot when any point is armed).
func Names() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]string, 0, len(registry.points))
	for name := range registry.points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Armed lists the currently armed points, sorted.
func Armed() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	var out []string
	for name, p := range registry.points {
		if p.state.Load() != nil {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

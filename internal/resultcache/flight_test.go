package resultcache

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/faultpoint"
)

func flightKey(b byte) Key {
	var k Key
	k[0] = b
	return k
}

// TestSingleflightCollapsesConcurrentCalls: N concurrent Do calls with one
// key must run the computation exactly once, elect exactly one leader, and
// hand every caller the same value.
func TestSingleflightCollapsesConcurrentCalls(t *testing.T) {
	const n = 16
	var g Group[int]
	var runs atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{}, n)

	var wg sync.WaitGroup
	outcomes := make([]Outcome[int], n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			outcomes[i] = g.Do(context.Background(), flightKey(1), func() (int, error) {
				runs.Add(1)
				<-release // hold the flight open until all n have joined
				return 42, nil
			})
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("computation ran %d times, want 1", got)
	}
	leaders := 0
	for i, out := range outcomes {
		if out.Err != nil || out.Val != 42 {
			t.Fatalf("outcome %d: val=%d err=%v", i, out.Val, out.Err)
		}
		if out.Leader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want 1", leaders)
	}
	if g.Inflight() != 0 {
		t.Fatalf("flight not dissolved: %d in flight", g.Inflight())
	}
}

// TestSingleflightCancelledWaiterLeavesLeaderRunning: a waiter whose
// context dies leaves with its context error while the leader's
// computation continues and succeeds.
func TestSingleflightCancelledWaiterLeavesLeaderRunning(t *testing.T) {
	var g Group[string]
	inFn := make(chan struct{})
	release := make(chan struct{})

	leaderOut := make(chan Outcome[string], 1)
	go func() {
		leaderOut <- g.Do(context.Background(), flightKey(2), func() (string, error) {
			close(inFn)
			<-release
			return "done", nil
		})
	}()
	<-inFn

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	waiter := g.Do(ctx, flightKey(2), func() (string, error) {
		t.Error("waiter must not become a leader while the flight is open")
		return "", nil
	})
	if !errors.Is(waiter.Err, context.Canceled) || waiter.Leader {
		t.Fatalf("cancelled waiter outcome: %+v", waiter)
	}

	close(release) // the leader was never disturbed
	out := <-leaderOut
	if out.Err != nil || out.Val != "done" || !out.Leader {
		t.Fatalf("leader outcome after waiter cancel: %+v", out)
	}
}

// TestSingleflightSequentialCallsDoNotShare: once a flight completes, the
// next Do with the same key runs its own computation.
func TestSingleflightSequentialCallsDoNotShare(t *testing.T) {
	var g Group[int]
	var runs atomic.Int64
	fn := func() (int, error) { return int(runs.Add(1)), nil }
	first := g.Do(context.Background(), flightKey(3), fn)
	second := g.Do(context.Background(), flightKey(3), fn)
	if first.Val != 1 || second.Val != 2 || !first.Leader || !second.Leader {
		t.Fatalf("sequential calls shared a flight: %+v %+v", first, second)
	}
}

// TestSingleflightErrorShared: a leader error is delivered verbatim to
// every waiter and nothing hangs.
func TestSingleflightErrorShared(t *testing.T) {
	var g Group[int]
	boom := errors.New("boom")
	inFn := make(chan struct{})
	release := make(chan struct{})
	leaderOut := make(chan Outcome[int], 1)
	go func() {
		leaderOut <- g.Do(context.Background(), flightKey(4), func() (int, error) {
			close(inFn)
			<-release
			return 0, boom
		})
	}()
	<-inFn
	waiterOut := make(chan Outcome[int], 1)
	go func() {
		// If this call loses the race and starts a fresh flight, it fails
		// identically — either way the caller must see boom.
		waiterOut <- g.Do(context.Background(), flightKey(4), func() (int, error) {
			return 0, boom
		})
	}()
	close(release)
	for _, out := range []Outcome[int]{<-leaderOut, <-waiterOut} {
		if !errors.Is(out.Err, boom) {
			t.Fatalf("outcome error %v, want boom", out.Err)
		}
	}
}

// TestSingleflightChaosLeaderPanicTypedError arms the leader-panic fault:
// the panic must be contained, the leader and a concurrent waiter must
// both receive a typed *LeaderPanicError, and the group must dissolve the
// flight so the next call starts clean.
func TestSingleflightChaosLeaderPanicTypedError(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Arm("resultcache.flight.panic", "nth:1"); err != nil {
		t.Fatal(err)
	}
	var g Group[int]
	out := g.Do(context.Background(), flightKey(5), func() (int, error) {
		t.Error("fn ran despite the leader panic fault")
		return 0, nil
	})
	var lp *LeaderPanicError
	if !errors.As(out.Err, &lp) {
		t.Fatalf("leader error %v, want *LeaderPanicError", out.Err)
	}
	if lp.Key != flightKey(5) {
		t.Fatalf("panic error names key %s, want %s", lp.Key, flightKey(5))
	}
	if msg := lp.Error(); !strings.Contains(msg, "flight leader") || !strings.Contains(msg, lp.Key.String()) {
		t.Fatalf("panic error message %q does not name the flight and key", msg)
	}
	if g.Inflight() != 0 {
		t.Fatalf("panicked flight not dissolved: %d in flight", g.Inflight())
	}
	// The fault was nth:1, so the group recovers on the next call.
	next := g.Do(context.Background(), flightKey(5), func() (int, error) { return 7, nil })
	if next.Err != nil || next.Val != 7 {
		t.Fatalf("post-panic call: %+v", next)
	}
}

// TestSingleflightChaosPanicReachesWaiters repeats the panic with a parked
// waiter: both flight members get the typed error, neither hangs.
func TestSingleflightChaosPanicReachesWaiters(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	var g Group[int]
	inFn := make(chan struct{})
	release := make(chan struct{})
	leaderOut := make(chan Outcome[int], 1)
	go func() {
		leaderOut <- g.Do(context.Background(), flightKey(6), func() (int, error) {
			close(inFn)
			<-release
			panic("kernel exploded mid-flight")
		})
	}()
	<-inFn
	waiterOut := make(chan Outcome[int], 1)
	go func() {
		// If this call loses the race and starts a fresh flight instead of
		// collapsing, it panics identically — either way the caller must
		// see the typed error, never a hang or a bare panic.
		waiterOut <- g.Do(context.Background(), flightKey(6), func() (int, error) {
			panic("kernel exploded mid-flight")
		})
	}()
	close(release)
	for who, ch := range map[string]chan Outcome[int]{"leader": leaderOut, "waiter": waiterOut} {
		out := <-ch
		var lp *LeaderPanicError
		if !errors.As(out.Err, &lp) {
			t.Fatalf("%s error %v, want *LeaderPanicError", who, out.Err)
		}
	}
}

package resultcache

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/faultpoint"
)

// fpLeaderPanic panics inside a flight leader after it has registered the
// call but before the computation runs — the worst moment for a
// singleflight to die, because a naive implementation would leave every
// waiter parked on the done channel forever. The recover in Do must turn
// it into a typed error delivered to the leader and all waiters.
var fpLeaderPanic = faultpoint.New("resultcache.flight.panic")

// LeaderPanicError is the typed failure every member of a flight receives
// when the leader's computation panicked: the panic was contained, nothing
// was cached, and each affected request gets this error instead of a hang
// or a process crash.
type LeaderPanicError struct {
	Key   Key
	Cause any
}

func (e *LeaderPanicError) Error() string {
	return fmt.Sprintf("resultcache: flight leader for %s panicked: %v", e.Key, e.Cause)
}

// call is one in-flight computation: the leader fills val/err and closes
// done; waiters block on done.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Outcome is one flight member's view of a Do call.
type Outcome[V any] struct {
	// Val and Err are the computation's result, shared verbatim by every
	// member of the flight.
	Val V
	Err error
	// Leader reports that this caller ran the computation; the other
	// members collapsed onto it. A waiter whose own context expired before
	// the leader finished has Leader false and Err from its context.
	Leader bool
}

// Group collapses concurrent Do calls with equal keys onto one
// computation: the first caller becomes the leader and runs fn; callers
// arriving before the leader finishes become waiters and receive the
// leader's result. The zero Group is ready to use.
type Group[V any] struct {
	mu sync.Mutex
	m  map[Key]*call[V]
}

// Do runs fn under singleflight semantics for key.
//
// Context awareness is asymmetric by design: a waiter that cancels leaves
// the flight immediately with its own context error, but the leader's fn
// runs to completion regardless — its result is shared state, and one
// impatient client must not be able to kill work that other clients are
// waiting on. Callers that want the computation itself bounded put the
// bound inside fn (the serving layer runs fn under the server's base
// context with the request's deadline in its options, exactly like a
// coalesced flush).
//
// A panic in fn is contained: the leader and every waiter receive a
// *LeaderPanicError, the flight is dissolved so the next request starts
// fresh, and the panic does not propagate.
func (g *Group[V]) Do(ctx context.Context, key Key, fn func() (V, error)) Outcome[V] {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return Outcome[V]{Val: c.val, Err: c.err}
		case <-ctx.Done():
			var zero V
			return Outcome[V]{Val: zero, Err: ctx.Err()}
		}
	}
	c := &call[V]{done: make(chan struct{})}
	if g.m == nil {
		g.m = make(map[Key]*call[V])
	}
	g.m[key] = c
	g.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				var zero V
				c.val, c.err = zero, &LeaderPanicError{Key: key, Cause: r}
			}
			// Dissolve the flight before releasing the waiters so a request
			// arriving after a failure starts a fresh computation instead of
			// joining a dead one.
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
			close(c.done)
		}()
		if fpLeaderPanic.Fire() {
			panic("faultpoint: resultcache.flight.panic")
		}
		c.val, c.err = fn()
	}()
	return Outcome[V]{Val: c.val, Err: c.err, Leader: true}
}

// Inflight reports the number of keys currently being computed.
func (g *Group[V]) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}

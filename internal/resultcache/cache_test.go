package resultcache

import (
	"context"
	"strings"
	"testing"
	"time"

	repro "repro"
	"repro/internal/faultpoint"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// mustTriple builds a named DNA triple or fails the test.
func mustTriple(t *testing.T, a, b, c string) seq.Triple {
	t.Helper()
	tr, err := repro.NewTriple(a, b, c, seq.DNA)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// mustAlign produces a real result for caching.
func mustAlign(t *testing.T, tr seq.Triple) *repro.Result {
	t.Helper()
	res, err := repro.Align(tr, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func dnaScheme() *scoring.Scheme { return scoring.DNADefault() }

func TestCachePutGetRoundTrip(t *testing.T) {
	tr := mustTriple(t, "ACGTACGTACGT", "ACGTTCGTACGT", "ACGAACGTACGT")
	res := mustAlign(t, tr)
	key, meta := KeyFor(tr, dnaScheme(), "")
	c := New(1 << 20)
	if !c.Put(key, meta, res, time.Millisecond, nil) {
		t.Fatal("Put refused a cacheable result")
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("Get missed a just-put key")
	}
	if got.Score != res.Score {
		t.Fatalf("cached score %d, want %d", got.Score, res.Score)
	}
	ra, rb, rc := got.Rows()
	wa, wb, wc := res.Rows()
	if ra != wa || rb != wb || rc != wc {
		t.Fatalf("cached rows differ:\n%s %s %s\nwant\n%s %s %s", ra, rb, rc, wa, wb, wc)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("stats after hit: %+v", st)
	}
	if _, ok := c.Get(KeyFor2(t, tr)); ok {
		t.Fatal("Get hit a never-put key")
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("miss not counted: %+v", st)
	}
}

// KeyFor2 derives a key guaranteed distinct from the round-trip test's.
func KeyFor2(t *testing.T, tr seq.Triple) Key {
	t.Helper()
	key, _ := KeyFor(tr, dnaScheme(), "full")
	return key
}

// TestCacheReturnsClones proves caller mutations cannot reach the stored
// entry in either direction: mutating the result after Put, or the result
// a Get returned, leaves later Gets pristine.
func TestCacheReturnsClones(t *testing.T) {
	tr := mustTriple(t, "ACGTACGT", "ACGTTCGT", "ACGAACGT")
	res := mustAlign(t, tr)
	want := res.Score
	key, meta := KeyFor(tr, dnaScheme(), "")
	c := New(1 << 20)
	c.Put(key, meta, res, time.Millisecond, nil)
	res.Score = -9999 // producer mutates after Put

	got1, ok := c.Get(key)
	if !ok || got1.Score != want {
		t.Fatalf("Get after producer mutation: ok=%v score=%d want %d", ok, got1.Score, want)
	}
	got1.Score = -4242 // consumer mutates the returned clone
	got1.Moves[0] = 7

	got2, ok := c.Get(key)
	if !ok || got2.Score != want {
		t.Fatalf("Get after consumer mutation: ok=%v score=%d want %d", ok, got2.Score, want)
	}
}

func TestCacheRefusesDegradedAndOversized(t *testing.T) {
	tr := mustTriple(t, "ACGTACGT", "ACGTTCGT", "ACGAACGT")
	res := mustAlign(t, tr)
	key, meta := KeyFor(tr, dnaScheme(), "")

	deg := *res
	deg.Degraded = true
	c := New(1 << 20)
	if c.Put(key, meta, &deg, time.Millisecond, nil) {
		t.Fatal("Put admitted a degraded result")
	}

	tiny := New(8) // smaller than any entry
	if tiny.Put(key, meta, res, time.Millisecond, nil) {
		t.Fatal("Put admitted an entry bigger than the whole budget")
	}
	if tiny.Len() != 0 || tiny.Bytes() != 0 {
		t.Fatalf("refused Put left residue: len=%d bytes=%d", tiny.Len(), tiny.Bytes())
	}
}

// TestCacheCostWeightedEviction fills a small cache with one expensive
// entry and streams cheap ones through it: the expensive entry must
// survive evictions that plain LRU would have claimed it by.
func TestCacheCostWeightedEviction(t *testing.T) {
	sch := dnaScheme()
	expensiveTr := mustTriple(t, "ACGTACGTACGTACGT", "ACGTTCGTACGTAGGT", "ACGAACGTACGTACGA")
	expensive := mustAlign(t, expensiveTr)
	expKey, expMeta := KeyFor(expensiveTr, sch, "")

	one := int64(entryBytes(expensive, nil))
	c := New(4 * one) // room for about four entries
	if !c.Put(expKey, expMeta, expensive, time.Minute, nil) {
		t.Fatal("expensive Put refused")
	}
	bases := []string{"AAAA", "CCCC", "GGGG", "TTTT"}
	for i := 0; i < 12; i++ {
		b := bases[i%4] + bases[(i/4)%4]
		tr := mustTriple(t, strings.Repeat(b, 2), strings.Repeat(b, 2), b+"ACGTACGT")
		res := mustAlign(t, tr)
		key, meta := KeyFor(tr, sch, "")
		c.Put(key, meta, res, time.Microsecond, nil)
		if got := c.Bytes(); got > 4*one {
			t.Fatalf("bytes gauge %d over budget %d after put %d", got, 4*one, i)
		}
	}
	if _, ok := c.Get(expKey); !ok {
		t.Fatal("cost-weighted eviction dropped the expensive entry")
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions, got %+v", st)
	}
}

func TestCacheNilIsDisabled(t *testing.T) {
	var c *Cache
	if c != New(0) || New(-1) != nil {
		t.Fatal("non-positive budgets must build nil caches")
	}
	tr := mustTriple(t, "ACGT", "ACGT", "ACGT")
	key, meta := KeyFor(tr, dnaScheme(), "")
	if c.Put(key, meta, &repro.Result{}, 0, nil) {
		t.Fatal("nil cache admitted an entry")
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("nil cache returned a hit")
	}
	if _, ok := c.Nearest(nil, meta, 0.5); ok {
		t.Fatal("nil cache returned a near-dup")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats %+v", st)
	}
}

// TestCacheChaosGetCorruption arms the in-cache corruption fault and
// proves the checksum converts it into a dropped entry and a miss — the
// cache never serves the corrupted score.
func TestCacheChaosGetCorruption(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	tr := mustTriple(t, "ACGTACGTACGT", "ACGTTCGTACGT", "ACGAACGTACGT")
	res := mustAlign(t, tr)
	key, meta := KeyFor(tr, dnaScheme(), "")
	c := New(1 << 20)
	c.Put(key, meta, res, time.Millisecond, nil)

	if err := faultpoint.Arm("resultcache.get.corrupt", "nth:1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("Get served a corrupted entry")
	}
	st := c.Stats()
	if st.CorruptDropped != 1 || st.Entries != 0 {
		t.Fatalf("corrupted entry not dropped: %+v", st)
	}
	// The slot recovers: a fresh Put serves the correct score again.
	c.Put(key, meta, res, time.Millisecond, nil)
	got, ok := c.Get(key)
	if !ok || got.Score != res.Score {
		t.Fatalf("recovery Get: ok=%v score=%d want %d", ok, got.Score, res.Score)
	}
}

// TestCacheChaosPutCorruption arms corruption at admission: the checksum
// is computed before the fault lands, so the first Get detects and drops.
func TestCacheChaosPutCorruption(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	tr := mustTriple(t, "ACGTACGTACGT", "ACGTTCGTACGT", "ACGAACGTACGT")
	res := mustAlign(t, tr)
	key, meta := KeyFor(tr, dnaScheme(), "")
	c := New(1 << 20)

	if err := faultpoint.Arm("resultcache.put.corrupt", "nth:1"); err != nil {
		t.Fatal(err)
	}
	if !c.Put(key, meta, res, time.Millisecond, nil) {
		t.Fatal("Put refused")
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("Get served an entry corrupted during Put")
	}
	if st := c.Stats(); st.CorruptDropped != 1 {
		t.Fatalf("put-corruption not detected: %+v", st)
	}
}

// TestNearDupNearestFindsSimilarTriple caches one triple with its sketch
// and probes with a single-substitution variant: Nearest must find it with
// high identity, and must not cross Meta boundaries (a different scheme or
// algorithm request never serves as a seed donor).
func TestNearDupNearestFindsSimilarTriple(t *testing.T) {
	base := strings.Repeat("ACGTTGCAAGCT", 8)
	tr := mustTriple(t, base, base, base)
	res := mustAlign(t, tr)
	sch := dnaScheme()
	key, meta := KeyFor(tr, sch, "")
	sk := seq.SketchTriple(tr, repro.ProbeK)
	c := New(1 << 20)
	c.Put(key, meta, res, time.Millisecond, sk)

	sub := "T"
	if base[40] == 'T' {
		sub = "A"
	}
	mutated := base[:40] + sub + base[41:]
	if mutated == base {
		t.Fatal("test bug: the substitution did not change the sequence")
	}
	probeTr := mustTriple(t, mutated, base, base)
	probe := seq.SketchTriple(probeTr, repro.ProbeK)

	cand, ok := c.Nearest(probe, meta, 0.90)
	if !ok {
		t.Fatal("Nearest missed a 1-substitution neighbour")
	}
	if cand.Score != res.Score {
		t.Fatalf("candidate score %d, want cached %d", cand.Score, res.Score)
	}
	if cand.Identity < 0.90 || cand.Identity > 1 {
		t.Fatalf("identity %v out of range", cand.Identity)
	}

	_, otherMeta := KeyFor(tr, sch, "full")
	if _, ok := c.Nearest(probe, otherMeta, 0.5); ok {
		t.Fatal("Nearest crossed a Meta boundary")
	}
	if _, ok := c.Nearest(probe, meta, 0.9999); ok {
		t.Fatal("Nearest ignored the identity threshold")
	}
}

// TestNearDupSeedBound: the bound must sit below the cached score (it is a
// lower bound with slack), shrink as identity falls, and clamp instead of
// wrapping on extreme inputs.
func TestNearDupSeedBound(t *testing.T) {
	sch := dnaScheme()
	if b := SeedBound(100, 0.99, 300, sch); b >= 100 {
		t.Fatalf("bound %d not below the cached score", b)
	}
	hi := SeedBound(100, 0.99, 300, sch)
	lo := SeedBound(100, 0.80, 300, sch)
	if lo >= hi {
		t.Fatalf("lower identity must loosen the bound: id99=%d id80=%d", hi, lo)
	}
	if b := SeedBound(-2_000_000_000, 0, 1<<30, sch); b != -1<<31 {
		t.Fatalf("extreme input must clamp to MinInt32, got %d", b)
	}
}

// TestNearDupSeededRealignBitIdentical is the end-to-end exactness
// contract: seed a bounded re-align of a mutated triple with its
// neighbour's cached score through SeedBound, and the result must be
// bit-identical to an independent full alignment.
func TestNearDupSeededRealignBitIdentical(t *testing.T) {
	base := strings.Repeat("ACGTTGCAAGCTGGATCCAT", 6)
	orig := mustTriple(t, base, base[:50]+"G"+base[51:], base)
	cached := mustAlign(t, orig)

	mutated := mustTriple(t, base[:30]+"C"+base[31:], base[:50]+"G"+base[51:], base)
	sk := seq.SketchTriple(orig, repro.ProbeK)
	probe := seq.SketchTriple(mutated, repro.ProbeK)
	id := probe.Identity(sk)
	total := mutated.A.Len() + mutated.B.Len() + mutated.C.Len()
	seed := SeedBound(cached.Score, id, total, dnaScheme())

	patched, err := repro.AlignSeeded(context.Background(), mutated, repro.Options{}, int32(seed))
	if err != nil {
		t.Fatalf("seeded re-align failed (seed %d): %v", seed, err)
	}
	control, err := repro.Align(mutated, repro.Options{Algorithm: repro.AlgorithmFull})
	if err != nil {
		t.Fatal(err)
	}
	if patched.Score != control.Score {
		t.Fatalf("patched score %d != control %d", patched.Score, control.Score)
	}
	pa, pb, pc := patched.Rows()
	ca, cb, cc := control.Rows()
	if pa != ca || pb != cb || pc != cc {
		t.Fatalf("patched rows differ from control:\n%s\n%s\n%s\nwant\n%s\n%s\n%s", pa, pb, pc, ca, cb, cc)
	}
}

// TestNearDupInvalidSeedFailsDetectably: a seed above the optimum must
// make the seeded re-align fail — the fall-through trigger that preserves
// exactness — rather than return a wrong alignment.
func TestNearDupInvalidSeedFailsDetectably(t *testing.T) {
	tr := mustTriple(t, "ACGTACGTACGTACGT", "ACGTTCGTACGTAGGT", "ACGAACGTACGTACGA")
	control := mustAlign(t, tr)
	if _, err := repro.AlignSeeded(context.Background(), tr, repro.Options{}, control.Score+100); err == nil {
		t.Fatal("seeded align accepted a bound above the optimum")
	}
}

package resultcache

import (
	"encoding/binary"
	"math"

	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// Candidate is one near-duplicate prescreen match: a cached triple whose
// sketch identity to the probe met the threshold, carrying the cached
// score the patch-up uses as its seed.
type Candidate struct {
	// Score is the cached triple's optimal alignment score.
	Score mat.Score
	// Identity is the estimated positionwise identity between the probe
	// triple and the cached one, in [0, 1].
	Identity float64
}

// Nearest scans the cache for an entry similar to the probe sketch among
// entries with the same Meta — the same scoring scheme and algorithm
// request, because a cached score only seeds a valid bound under identical
// scoring semantics. Entries below minIdentity (or without a sketch, or
// with a sketch of a different k) are ignored.
//
// The scan is linear over the cache, but two things keep its constant
// small. The Meta digest is filtered first — an 8-byte prefix word
// compare rejects almost every foreign-scheme entry before the full
// 32-byte compare, and both run before any sketch arithmetic, so a
// mismatched entry costs a couple of integer compares instead of a profile
// intersection. And the scan returns the first entry at or above
// minIdentity rather than ranking the whole cache: any candidate meeting
// the threshold seeds an equally valid bound (the bounded re-align proves
// or rejects it regardless), so finishing the scan buys nothing once one
// is in hand.
//
// Correctness never depends on the answer: the prescreen only proposes a
// seed, and the bounded re-align either proves it or the caller falls back
// to a full plan — so Nearest deliberately skips checksum verification,
// since even a corrupted score cannot produce a wrong alignment, only a
// failed or wasteful patch-up.
func (c *Cache) Nearest(sk *seq.TripleSketch, meta Meta, minIdentity float64) (Candidate, bool) {
	if c == nil || sk == nil {
		return Candidate{}, false
	}
	metaPrefix := binary.BigEndian.Uint64(meta[:8])
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		if binary.BigEndian.Uint64(e.meta[:8]) != metaPrefix || e.meta != meta {
			continue
		}
		if e.sketch == nil || e.sketch.K() != sk.K() {
			continue
		}
		if id := sk.Identity(e.sketch); id >= minIdentity {
			return Candidate{Score: e.res.Score, Identity: id}, true
		}
	}
	return Candidate{}, false
}

// SeedBound turns a near-duplicate candidate into a lower bound for the
// bounded re-align: the cached score minus a margin covering the mutations
// the identity estimate implies. Each point mutation in a three-sequence
// SP alignment shifts the score by at most 4·MaxAbsSub (two pairs touch
// the mutated residue, each by up to twice the largest substitution
// magnitude); indels additionally pay gap columns, folded in via
// |GapExtend|. Two extra mutations of slack absorb the k-mer estimate's
// noise.
//
// The bound's validity is checked, not assumed: a bound above the true
// optimum makes the seeded re-align fail (the optimal path falls outside
// the admissible band and the traceback reports it), after which the
// caller runs a full plan. A bound below the optimum merely widens the
// band. Exactness therefore never depends on this formula — only the
// patch-up's hit rate and cost do.
func SeedBound(cached mat.Score, identity float64, totalResidues int, sch *scoring.Scheme) mat.Score {
	maxSub := int64(sch.MaxAbsSub())
	ge := int64(sch.GapExtend())
	if ge < 0 {
		ge = -ge
	}
	perMutation := 4 * (maxSub + ge)
	if identity < 0 {
		identity = 0
	}
	if identity > 1 {
		identity = 1
	}
	mutations := int64(math.Ceil((1-identity)*float64(totalResidues))) + 2
	lo := int64(cached) - mutations*perMutation
	if lo < math.MinInt32 {
		lo = math.MinInt32
	}
	return mat.Score(lo)
}

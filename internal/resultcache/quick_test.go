package resultcache

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	repro "repro"
	"repro/internal/alignment"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// randSeq draws a random DNA sequence of length in [1, 24].
func randSeq(rng *rand.Rand, name string) string {
	n := 1 + rng.Intn(24)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte("ACGT"[rng.Intn(4)])
	}
	_ = name
	return b.String()
}

// randScheme draws a random linear match/mismatch scheme.
func randScheme(rng *rand.Rand) *scoring.Scheme {
	match := 1 + rng.Intn(4)
	mismatch := -1 - rng.Intn(4)
	gap := -1 - rng.Intn(4)
	sch, err := scoring.MatchMismatch(seq.DNA, match, mismatch, gap)
	if err != nil {
		panic(err)
	}
	return sch
}

// TestQuickCacheKeyCanonicalAndInjective is the key-derivation property
// suite: for random requests the key must be (a) invariant over the
// spellings of one semantic request — algorithm casing, whitespace, and
// the empty-means-auto default — and (b) distinct whenever the residues,
// names, sequence order, scheme scores, or algorithm genuinely differ.
func TestQuickCacheKeyCanonicalAndInjective(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randSeq(rng, "a"), randSeq(rng, "b"), randSeq(rng, "c")
		tr, err := repro.NewTriple(a, b, c, seq.DNA)
		if err != nil {
			return false
		}
		sch := randScheme(rng)

		// Canonicalization: one semantics, many spellings, one key.
		k1, m1 := KeyFor(tr, sch, "")
		k2, m2 := KeyFor(tr, sch, "auto")
		k3, m3 := KeyFor(tr, sch, "  AUTO ")
		if k1 != k2 || k2 != k3 || m1 != m2 || m2 != m3 {
			t.Logf("seed %d: auto spellings diverged", seed)
			return false
		}
		// Determinism across calls, and the hex rendering round-trips the
		// digest length.
		if k, _ := KeyFor(tr, sch, ""); k != k1 {
			return false
		}
		if len(k1.String()) != 2*len(k1) {
			return false
		}

		// Injectivity: flip one residue.
		mutA := []byte(a)
		mutA[rng.Intn(len(mutA))] ^= 'A' ^ 'C' // A<->C, C<->A, G<->?, T<->?
		if !strings.ContainsRune("ACGT", rune(mutA[0])) {
			mutA[0] = 'G'
		}
		if mut := string(mutA); mut != a {
			trMut, err := repro.NewTriple(mut, b, c, seq.DNA)
			if err == nil {
				if kMut, _ := KeyFor(trMut, sch, ""); kMut == k1 {
					t.Logf("seed %d: residue flip kept the key", seed)
					return false
				}
			}
		}

		// Injectivity: a different algorithm request changes key and meta.
		kAlg, mAlg := KeyFor(tr, sch, "full")
		if kAlg == k1 || mAlg == m1 {
			return false
		}

		// Injectivity: a different scheme changes key and meta; sequence
		// content leaves meta alone.
		sch2, err := scoring.MatchMismatch(seq.DNA, 9, -9, -9)
		if err != nil {
			return false
		}
		kSch, mSch := KeyFor(tr, sch2, "")
		if kSch == k1 || mSch == m1 {
			return false
		}
		other, err := repro.NewTriple(c, a, b, seq.DNA)
		if err != nil {
			return false
		}
		kOrd, mOrd := KeyFor(other, sch, "")
		if mOrd != m1 {
			t.Logf("seed %d: sequence content leaked into meta", seed)
			return false
		}
		// Reordering the sequences is a different request (rows come back
		// in request order) unless the triple is order-symmetric.
		if a != b || b != c {
			if kOrd == k1 {
				t.Logf("seed %d: sequence reorder kept the key", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCacheNameChangesKey: names ride in the response rows, so two
// requests differing only in a sequence name are distinct cache entries.
func TestQuickCacheNameChangesKey(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		res := randSeq(rng, "x")
		s1 := seq.MustNew("a", res, seq.DNA)
		s2 := seq.MustNew("a2", res, seq.DNA)
		o := seq.MustNew("o", randSeq(rng, "o"), seq.DNA)
		k1, _ := KeyFor(seq.Triple{A: s1, B: o, C: o}, scoring.DNADefault(), "")
		k2, _ := KeyFor(seq.Triple{A: s2, B: o, C: o}, scoring.DNADefault(), "")
		return k1 != k2
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// quickResult fabricates a small syntactically valid result for eviction
// stress without paying for a real alignment per iteration.
func quickResult(rng *rand.Rand, tr seq.Triple) *repro.Result {
	moves := make([]alignment.Move, tr.A.Len())
	for i := range moves {
		moves[i] = alignment.MoveXXX
	}
	return &repro.Result{
		Alignment: &alignment.Alignment{Triple: tr, Moves: moves, Score: int32(rng.Intn(1000))},
		Algorithm: repro.AlgorithmFull,
	}
}

// TestQuickCacheEvictionUnderBudget is the budget invariant: whatever the
// random put sequence (sizes, costs, duplicate keys), the bytes gauge
// never exceeds the configured budget, entries stay consistent with the
// gauge, and every admitted entry remains retrievable or was evicted —
// never silently wedged.
func TestQuickCacheEvictionUnderBudget(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		budget := int64(2048 + rng.Intn(4096))
		c := New(budget)
		for i := 0; i < 60; i++ {
			a, b, cc := randSeq(rng, "a"), randSeq(rng, "b"), randSeq(rng, "c")
			tr, err := repro.NewTriple(a, b, cc, seq.DNA)
			if err != nil {
				return false
			}
			res := quickResult(rng, tr)
			key, meta := KeyFor(tr, scoring.DNADefault(), "")
			var sk *seq.TripleSketch
			if rng.Intn(2) == 0 {
				sk = seq.SketchTriple(tr, repro.ProbeK)
			}
			c.Put(key, meta, res, time.Duration(rng.Intn(1000))*time.Microsecond, sk)
			if got := c.Bytes(); got > budget || got < 0 {
				t.Logf("seed %d: bytes %d outside [0, %d] after put %d", seed, got, budget, i)
				return false
			}
			st := c.Stats()
			if st.Bytes != c.Bytes() || st.Entries != int64(c.Len()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

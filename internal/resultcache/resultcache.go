// Package resultcache is the serving layer's content-addressed alignment
// result cache: a byte-budgeted LRU keyed by a hash of the canonical
// request semantics (sequences, scoring scheme, resolved algorithm), with
// singleflight collapsing of concurrent identical requests (flight.go) and
// a k-mer near-duplicate prescreen (neardup.go) that finds a cached triple
// close enough to seed a cheap verified re-align.
//
// The cache stores clones, returns clones, and checksums every entry at
// admission: a stored result that no longer matches its checksum — bit
// rot, a faulty mutation, an injected corruption fault — is dropped and
// reported as a miss rather than served. A cache can make a request slow
// (miss) but never wrong.
//
// Eviction is cost-weighted LRU: when the byte budget overflows, the
// evictor scans a small window at the cold tail and evicts the entry whose
// planned compute cost is lowest, so the entries that were expensive to
// produce — the ones the cache exists for — survive the longest.
package resultcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash/fnv"
	"io"
	"strings"
	"sync"
	"time"

	repro "repro"
	"repro/internal/alignment"
	"repro/internal/faultpoint"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// Key is the content address of one alignment request: sha256 over the
// canonical serialization of everything that determines the exact result —
// the three sequences (names and residues), the full scoring scheme
// (alphabet, substitution table, gap costs), and the canonicalized
// algorithm request. Execution knobs that cannot change the optimal
// alignment (workers, deadlines, memory caps) are deliberately excluded,
// so semantically identical requests collide onto one entry regardless of
// how they were tuned.
type Key [sha256.Size]byte

// String renders the key as hex (log and debug output).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Meta is the hash of the key's non-sequence prefix: scheme plus
// algorithm. Two requests share a Meta exactly when they differ only in
// their sequences — the candidate filter for the near-duplicate prescreen,
// which may patch across different sequences but never across different
// scoring semantics.
type Meta [sha256.Size]byte

// keyVersion is serialized first so any change to the derivation scheme
// invalidates every old key instead of colliding with it.
const keyVersion = "tsa-result-cache-v1"

// KeyFor derives the content address and meta hash of one request.
// The algorithm string is canonicalized (lowercased, "" meaning "auto"),
// so a request that spells the default explicitly keys identically to one
// that omits it. The scheme is serialized by value — alphabet letters,
// every substitution score, both gap costs — so two schemes that score
// identically key identically even if they are distinct objects with
// different display names.
func KeyFor(tr seq.Triple, sch *scoring.Scheme, algorithm string) (Key, Meta) {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	writeStr := func(s string) {
		n := binary.PutUvarint(buf[:], uint64(len(s)))
		h.Write(buf[:n])
		io.WriteString(h, s) //nolint:errcheck // sha256 never fails
	}
	writeInt := func(v int64) {
		n := binary.PutVarint(buf[:], v)
		h.Write(buf[:n])
	}
	writeStr(keyVersion)
	alpha := sch.Alphabet()
	writeStr(alpha.Letters())
	size := alpha.Size()
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			writeInt(int64(sch.Sub(int8(i), int8(j))))
		}
	}
	writeInt(int64(sch.GapOpen()))
	writeInt(int64(sch.GapExtend()))
	algorithm = strings.ToLower(strings.TrimSpace(algorithm))
	if algorithm == "" {
		// AlgorithmAuto is the empty string; serialize a stable token so
		// "default" and a hypothetical future named spelling agree.
		algorithm = "auto"
	}
	writeStr(algorithm)
	var meta Meta
	h.Sum(meta[:0])
	for _, sq := range []*seq.Sequence{tr.A, tr.B, tr.C} {
		writeStr(sq.Name())
		writeStr(sq.String())
	}
	var key Key
	h.Sum(key[:0])
	return key, meta
}

// Fault points. Both corrupt the cache's private clone of an entry (never
// a result already handed to a caller), modeling silent in-cache bit rot
// on the two paths it can enter: while stored (observed at Get) and during
// admission (observed at the next Get). The checksum must catch both — a
// corrupted entry is dropped and re-computed, never served.
var (
	fpGetCorrupt = faultpoint.New("resultcache.get.corrupt")
	fpPutCorrupt = faultpoint.New("resultcache.put.corrupt")
)

// corruptMask is the score perturbation an injected corruption applies —
// any nonzero flip works; the checksum does the detecting.
const corruptMask = 0x5a5a

// entry is one cached result with its eviction and integrity metadata.
type entry struct {
	key    Key
	meta   Meta
	res    *repro.Result     // the cache's private clone
	sketch *seq.TripleSketch // nil when the producer had none
	cost   time.Duration     // planned compute cost; eviction weight
	bytes  int64
	sum    uint64 // fnv64a over the semantic content of res
	elem   *list.Element
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits           int64
	Misses         int64
	Evictions      int64
	CorruptDropped int64
	Entries        int64
	Bytes          int64
}

// Cache is the byte-budgeted, cost-weighted LRU result cache. All methods
// are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	ll      *list.List // front = most recently used
	entries map[Key]*entry

	hits           int64
	misses         int64
	evictions      int64
	corruptDropped int64
}

// evictScan is how many cold-tail entries the evictor considers per
// eviction: enough to usually find a cheap victim near the tail, small
// enough that eviction stays O(1)-ish under the lock.
const evictScan = 8

// New builds a cache with the given byte budget. A non-positive budget
// returns nil — the callers' "caching disabled" signal; every method on a
// nil *Cache is a safe no-op miss.
func New(budgetBytes int64) *Cache {
	if budgetBytes <= 0 {
		return nil
	}
	return &Cache{budget: budgetBytes, ll: list.New(), entries: make(map[Key]*entry)}
}

// Get returns a clone of the cached result for key, verifying the entry's
// checksum first: an entry that fails verification is dropped, counted in
// CorruptDropped, and reported as a miss, so a corrupted cache degrades to
// recomputation instead of serving a wrong score. Nil-safe.
func (c *Cache) Get(key Key) (*repro.Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	if fpGetCorrupt.Fire() {
		e.res.Score ^= corruptMask
	}
	if checksum(e.res) != e.sum {
		c.removeLocked(e)
		c.corruptDropped++
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(e.elem)
	c.hits++
	return cloneResult(e.res), true
}

// Put admits a result under key, cloning it so later caller mutations
// cannot reach the stored copy, and evicts cost-weighted LRU victims until
// the byte budget holds again. A result bigger than the whole budget is
// refused. Degraded results must not be cached (their content depends on
// the deadline that produced them, which is not part of the key); Put
// refuses them. Returns whether the entry was admitted. Nil-safe.
func (c *Cache) Put(key Key, meta Meta, res *repro.Result, cost time.Duration, sketch *seq.TripleSketch) bool {
	if c == nil || res == nil || res.Alignment == nil || res.Degraded {
		return false
	}
	clone := cloneResult(res)
	sum := checksum(clone)
	if fpPutCorrupt.Fire() {
		clone.Score ^= corruptMask
	}
	e := &entry{key: key, meta: meta, res: clone, sketch: sketch, cost: cost, sum: sum}
	e.bytes = entryBytes(clone, sketch)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.bytes > c.budget {
		return false
	}
	if old, ok := c.entries[key]; ok {
		c.removeLocked(old)
	}
	c.entries[key] = e
	e.elem = c.ll.PushFront(e)
	c.bytes += e.bytes
	for c.bytes > c.budget {
		c.evictOneLocked()
	}
	return true
}

// Stats snapshots the counters and gauges. Nil-safe (all zeros).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:           c.hits,
		Misses:         c.misses,
		Evictions:      c.evictions,
		CorruptDropped: c.corruptDropped,
		Entries:        int64(len(c.entries)),
		Bytes:          c.bytes,
	}
}

// Len reports the current entry count. Nil-safe.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes reports the current byte gauge. Nil-safe.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// removeLocked unlinks one entry; callers hold mu.
func (c *Cache) removeLocked(e *entry) {
	delete(c.entries, e.key)
	if e.elem != nil {
		c.ll.Remove(e.elem)
		e.elem = nil
	}
	c.bytes -= e.bytes
}

// evictOneLocked evicts the cheapest entry within the evictScan-deep cold
// tail: plain LRU would evict strictly by recency, but an expensive result
// that went briefly cold is exactly what the cache should keep — it saves
// the most compute on its next hit. Callers hold mu and guarantee the list
// is non-empty.
func (c *Cache) evictOneLocked() {
	victim := c.ll.Back()
	scanned := 0
	for el := c.ll.Back(); el != nil && scanned < evictScan; el = el.Prev() {
		if el.Value.(*entry).cost < victim.Value.(*entry).cost {
			victim = el
		}
		scanned++
	}
	c.removeLocked(victim.Value.(*entry))
	c.evictions++
}

// cloneResult deep-copies the parts of a Result a caller (or the cache)
// could mutate: the Result struct itself, the embedded Alignment, and its
// Moves slice. Sequences are immutable after construction and Plan/Prune
// are write-once metadata, so those pointers are shared.
func cloneResult(res *repro.Result) *repro.Result {
	out := *res
	aln := *res.Alignment
	aln.Moves = append([]alignment.Move(nil), res.Alignment.Moves...)
	out.Alignment = &aln
	if res.Prune != nil {
		pr := *res.Prune
		out.Prune = &pr
	}
	return &out
}

// checksum folds the semantic content of a result — score, algorithm,
// column moves, and the three sequences' names and residues — into an
// fnv64a sum. Anything that changes what a client would be told changes
// the sum.
func checksum(res *repro.Result) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(res.Score))
	h.Write(buf[:4])
	io.WriteString(h, string(res.Algorithm)) //nolint:errcheck // fnv never fails
	for _, m := range res.Alignment.Moves {
		h.Write([]byte{byte(m)})
	}
	tr := res.Alignment.Triple
	for _, sq := range []*seq.Sequence{tr.A, tr.B, tr.C} {
		io.WriteString(h, sq.Name())   //nolint:errcheck
		io.WriteString(h, sq.String()) //nolint:errcheck
	}
	return h.Sum64()
}

// entryBytes estimates one entry's heap footprint: moves, the three
// sequences (residues, names, struct overhead), the sketch, and fixed
// bookkeeping. An estimate is fine — the budget bounds memory order, not
// exact bytes — but it must never be zero, or a byte budget would admit
// unboundedly many entries.
func entryBytes(res *repro.Result, sketch *seq.TripleSketch) int64 {
	n := int64(len(res.Alignment.Moves))
	tr := res.Alignment.Triple
	for _, sq := range []*seq.Sequence{tr.A, tr.B, tr.C} {
		n += int64(sq.Len()) + int64(len(sq.Name())) + 64
	}
	if sketch != nil {
		n += sketch.Bytes()
	}
	return n + 256
}

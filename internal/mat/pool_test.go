package mat

import "testing"

func TestSizeClass(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {1023, 9}, {1024, 10},
	}
	for _, c := range cases {
		if got := sizeClass(c.n); got != c.want {
			t.Errorf("sizeClass(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestGetScoresRoundTrip(t *testing.T) {
	s := GetScores(100)
	if len(s) != 100 {
		t.Fatalf("len = %d, want 100", len(s))
	}
	for i := range s {
		s[i] = Score(i)
	}
	PutScores(s)
	// A fresh Get of the same class must have the requested length even if
	// it reuses the dirtied buffer; contents are unspecified by contract.
	r := GetScores(80)
	if len(r) != 80 {
		t.Fatalf("len = %d, want 80", len(r))
	}
	PutScores(r)

	if s := GetScores(0); s != nil {
		t.Fatalf("GetScores(0) = %v, want nil", s)
	}
	if s := GetScores(-3); s != nil {
		t.Fatalf("GetScores(-3) = %v, want nil", s)
	}
	PutScores(nil) // must not panic
}

func TestGetScoresRejectsTooSmallPooled(t *testing.T) {
	// 65 and 100 share size class 6, but a pooled 65-cap buffer must not be
	// handed out for a 100-element request.
	small := make([]Score, 65)
	PutScores(small)
	big := GetScores(100)
	if len(big) != 100 || cap(big) < 100 {
		t.Fatalf("len=%d cap=%d, want len=100 cap>=100", len(big), cap(big))
	}
	PutScores(big)
}

func TestGetPlaneDimensions(t *testing.T) {
	p := GetPlane(7, 11)
	if p.Rows() != 7 || p.Cols() != 11 {
		t.Fatalf("dims = %dx%d, want 7x11", p.Rows(), p.Cols())
	}
	p.Fill(3)
	if p.At(6, 10) != 3 {
		t.Fatalf("Fill did not reach last cell")
	}
	PutPlane(p)
	// Reuse must re-shape, not inherit the old geometry.
	q := GetPlane(2, 3)
	if q.Rows() != 2 || q.Cols() != 3 {
		t.Fatalf("dims = %dx%d, want 2x3", q.Rows(), q.Cols())
	}
	PutPlane(q)
	PutPlane(nil) // must not panic
}

func TestGetTensor3Dimensions(t *testing.T) {
	tr := GetTensor3(3, 4, 5)
	ni, nj, nk := tr.Dims()
	if ni != 3 || nj != 4 || nk != 5 {
		t.Fatalf("dims = %dx%dx%d, want 3x4x5", ni, nj, nk)
	}
	tr.Fill(NegInf)
	tr.Set(2, 3, 4, 9)
	if tr.At(2, 3, 4) != 9 || tr.At(0, 0, 0) != NegInf {
		t.Fatalf("tensor indexing broken after pooled Get")
	}
	PutTensor3(tr)
	s := GetTensor3(1, 1, 1)
	if ni, nj, nk := s.Dims(); ni != 1 || nj != 1 || nk != 1 {
		t.Fatalf("dims = %dx%dx%d, want 1x1x1", ni, nj, nk)
	}
	PutTensor3(s)
	PutTensor3(nil) // must not panic
}

// TestPooledBuffersAreDirty pins the documented contract: pooled memory has
// unspecified contents, so kernels must write before reading.
func TestPooledBuffersAreDirty(t *testing.T) {
	p := GetPlane(4, 4)
	p.Fill(42)
	PutPlane(p)
	q := GetPlane(4, 4)
	defer PutPlane(q)
	// q may or may not alias p's old buffer; either way using it without
	// initialization would be a kernel bug. Just assert the shape is sound.
	if len(q.Row(3)) != 4 {
		t.Fatalf("row length = %d, want 4", len(q.Row(3)))
	}
}

func BenchmarkGetPutPlane(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := GetPlane(129, 129)
		p.Row(0)[0] = 1
		PutPlane(p)
	}
}

func BenchmarkNewPlane(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := NewPlane(129, 129)
		p.Row(0)[0] = 1
	}
}

// BenchmarkFill compares the doubling-copy fill (Plane.Fill) against a
// plain element loop, the pre-optimization idiom.
func BenchmarkFill(b *testing.B) {
	p := NewPlane(512, 512)
	b.Run("doubling-copy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.Fill(NegInf)
		}
		b.SetBytes(int64(512*512) * 4)
	})
	b.Run("element-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range p.data {
				p.data[j] = NegInf
			}
		}
		b.SetBytes(int64(512*512) * 4)
	})
}

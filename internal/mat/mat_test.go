package mat

import (
	"testing"
	"testing/quick"
)

func TestNewPlaneZeroed(t *testing.T) {
	p := NewPlane(3, 4)
	if p.Rows() != 3 || p.Cols() != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", p.Rows(), p.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if p.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %d, want 0", i, j, p.At(i, j))
			}
		}
	}
}

func TestPlaneSetAt(t *testing.T) {
	p := NewPlane(5, 7)
	want := map[[2]int]Score{}
	v := Score(1)
	for i := 0; i < 5; i++ {
		for j := 0; j < 7; j++ {
			p.Set(i, j, v)
			want[[2]int{i, j}] = v
			v = v*3 + 1
		}
	}
	for k, w := range want {
		if got := p.At(k[0], k[1]); got != w {
			t.Errorf("At(%d,%d) = %d, want %d", k[0], k[1], got, w)
		}
	}
}

func TestPlaneRowShared(t *testing.T) {
	p := NewPlane(2, 3)
	row := p.Row(1)
	row[2] = 42
	if p.At(1, 2) != 42 {
		t.Fatalf("write through Row not visible: At(1,2) = %d", p.At(1, 2))
	}
	if len(row) != 3 {
		t.Fatalf("len(Row) = %d, want 3", len(row))
	}
}

func TestPlaneFill(t *testing.T) {
	p := NewPlane(4, 4)
	p.Fill(NegInf)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if p.At(i, j) != NegInf {
				t.Fatalf("At(%d,%d) = %d after Fill(NegInf)", i, j, p.At(i, j))
			}
		}
	}
}

func TestPlaneCopyFrom(t *testing.T) {
	src := NewPlane(2, 2)
	src.Set(0, 1, 9)
	src.Set(1, 0, -3)
	dst := NewPlane(2, 2)
	dst.CopyFrom(src)
	if dst.At(0, 1) != 9 || dst.At(1, 0) != -3 {
		t.Fatalf("CopyFrom did not copy values: %v %v", dst.At(0, 1), dst.At(1, 0))
	}
	// Mutating src afterwards must not affect dst.
	src.Set(0, 1, 100)
	if dst.At(0, 1) != 9 {
		t.Fatalf("dst aliases src after CopyFrom")
	}
}

func TestPlaneCopyFromShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("CopyFrom with mismatched shape did not panic")
		}
	}()
	NewPlane(2, 2).CopyFrom(NewPlane(2, 3))
}

func TestNewPlaneNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewPlane(-1, 2) did not panic")
		}
	}()
	NewPlane(-1, 2)
}

func TestZeroSizedPlane(t *testing.T) {
	p := NewPlane(0, 5)
	if p.Bytes() != 0 {
		t.Fatalf("Bytes() = %d for empty plane", p.Bytes())
	}
}

func TestTensor3SetAtRoundTrip(t *testing.T) {
	tn := NewTensor3(3, 4, 5)
	v := Score(-7)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 5; k++ {
				tn.Set(i, j, k, v)
				if got := tn.At(i, j, k); got != v {
					t.Fatalf("At(%d,%d,%d) = %d, want %d", i, j, k, got, v)
				}
				v += 11
			}
		}
	}
}

func TestTensor3IndexDistinct(t *testing.T) {
	// Every (i,j,k) must map to a distinct flat offset inside the array.
	tn := NewTensor3(4, 3, 6)
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 6; k++ {
				idx := tn.Index(i, j, k)
				if idx < 0 || idx >= 4*3*6 {
					t.Fatalf("Index(%d,%d,%d) = %d out of range", i, j, k, idx)
				}
				if seen[idx] {
					t.Fatalf("Index(%d,%d,%d) = %d collides", i, j, k, idx)
				}
				seen[idx] = true
			}
		}
	}
}

func TestTensor3Lane(t *testing.T) {
	tn := NewTensor3(2, 2, 4)
	lane := tn.Lane(1, 1)
	if len(lane) != 4 {
		t.Fatalf("len(Lane) = %d, want 4", len(lane))
	}
	lane[3] = 99
	if tn.At(1, 1, 3) != 99 {
		t.Fatalf("write through Lane not visible")
	}
}

func TestTensor3PlaneI(t *testing.T) {
	tn := NewTensor3(3, 2, 2)
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				tn.Set(i, j, k, Score(100*i+10*j+k))
			}
		}
	}
	pl := NewPlane(2, 2)
	tn.PlaneI(2, pl)
	for j := 0; j < 2; j++ {
		for k := 0; k < 2; k++ {
			if got, want := pl.At(j, k), Score(200+10*j+k); got != want {
				t.Errorf("plane(%d,%d) = %d, want %d", j, k, got, want)
			}
		}
	}
}

func TestTensor3PlaneIShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("PlaneI with wrong plane shape did not panic")
		}
	}()
	NewTensor3(2, 3, 4).PlaneI(0, NewPlane(4, 3))
}

func TestBytesAccounting(t *testing.T) {
	if got := NewTensor3(10, 10, 10).Bytes(); got != 4000 {
		t.Fatalf("Tensor3.Bytes = %d, want 4000", got)
	}
	if got := Tensor3Bytes(10, 10, 10); got != 4000 {
		t.Fatalf("Tensor3Bytes = %d, want 4000", got)
	}
	if got := NewPlane(8, 8).Bytes(); got != 256 {
		t.Fatalf("Plane.Bytes = %d, want 256", got)
	}
	if got := PlaneBytes(8, 8); got != 256 {
		t.Fatalf("PlaneBytes = %d, want 256", got)
	}
}

func TestMaxHelpers(t *testing.T) {
	cases := []struct{ a, b, c, max2, max3 Score }{
		{1, 2, 3, 2, 3},
		{-5, -9, -7, -5, -5},
		{0, 0, 0, 0, 0},
		{NegInf, 4, NegInf, 4, 4},
	}
	for _, c := range cases {
		if got := Max(c.a, c.b); got != c.max2 {
			t.Errorf("Max(%d,%d) = %d, want %d", c.a, c.b, got, c.max2)
		}
		if got := Max3(c.a, c.b, c.c); got != c.max3 {
			t.Errorf("Max3(%d,%d,%d) = %d, want %d", c.a, c.b, c.c, got, c.max3)
		}
	}
}

func TestMaxProperties(t *testing.T) {
	commutes := func(a, b Score) bool { return Max(a, b) == Max(b, a) }
	if err := quick.Check(commutes, nil); err != nil {
		t.Error(err)
	}
	geBoth := func(a, b Score) bool {
		m := Max(a, b)
		return m >= a && m >= b && (m == a || m == b)
	}
	if err := quick.Check(geBoth, nil); err != nil {
		t.Error(err)
	}
	assoc := func(a, b, c Score) bool { return Max3(a, b, c) == Max(a, Max(b, c)) }
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
}

func TestNegInfHeadroom(t *testing.T) {
	// Adding a worst-case column score to NegInf must stay far below zero
	// and must not wrap around.
	const worstColumn = 3 * 127
	v := NegInf - worstColumn
	if v >= 0 || v > NegInf {
		t.Fatalf("NegInf arithmetic wrapped: %d", v)
	}
}

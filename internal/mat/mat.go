// Package mat provides flat, cache-friendly numeric storage for the
// dynamic-programming lattices used by the alignment algorithms.
//
// A three-sequence alignment fills a (n+1)×(m+1)×(p+1) score lattice; a
// pairwise alignment fills a (n+1)×(m+1) plane. Both are backed by a single
// contiguous slice so the innermost loop walks memory linearly, and so a
// whole lattice can be handed to concurrent writers that own disjoint index
// ranges without any per-row pointer chasing.
//
// Storage is parameterized over the Cell constraint (int16 or int32): the
// memory-bandwidth-bound interior loops run ~2× less traffic per cell at 16
// bits, and the execution planner (internal/plan) proves per request when
// the narrow width cannot overflow. Score — the arithmetic and API type
// used everywhere outside a width-negotiated lattice — remains int32.
//
// With substitution scores bounded by |s| ≤ 127 and three pairs per column,
// a column contributes at most ~381, so 32 bits overflow only past ~5.6
// million alignment columns — far beyond any lattice this package can
// allocate. NegInf is a large negative sentinel chosen so that adding a
// column score to it cannot wrap around; it exists only at Score width, so
// kernels that seed NegInf (the affine family) must use Score lattices.
package mat

import (
	"fmt"
	"unsafe"
)

// Cell constrains the storable lattice cell types. int32 is the default and
// always safe; int16 is chosen by the planner only when the problem's score
// bound provably fits (see internal/plan's width negotiation).
type Cell interface {
	~int16 | ~int32
}

// Score is the arithmetic type used throughout the dynamic programs.
type Score = int32

// NegInf is the "minus infinity" sentinel for unreachable DP states. It is
// far below any reachable score yet far above math.MinInt32, so adding a
// bounded column score to it never overflows.
const NegInf Score = -1 << 29

// CellBytes reports sizeof(T) — the per-cell storage cost of a T lattice.
func CellBytes[T Cell]() int {
	var z T
	return int(unsafe.Sizeof(z))
}

// PlaneOf is a dense 2D cell array backed by one allocation.
type PlaneOf[T Cell] struct {
	rows, cols int
	data       []T
}

// Plane is the Score-width plane used by the public helpers and every
// accumulator-width kernel.
type Plane = PlaneOf[Score]

// NewPlane returns a zeroed rows×cols Score plane. It panics if either
// dimension is negative; a zero-sized plane is valid and empty.
func NewPlane(rows, cols int) *Plane { return NewPlaneOf[Score](rows, cols) }

// NewPlaneOf returns a zeroed rows×cols plane of T cells.
func NewPlaneOf[T Cell](rows, cols int) *PlaneOf[T] {
	rows, cols = checkPlaneDims(rows, cols)
	return &PlaneOf[T]{rows: rows, cols: cols, data: make([]T, rows*cols)}
}

func checkPlaneDims(rows, cols int) (int, int) {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: plane %dx%d: negative dimension", rows, cols))
	}
	return rows, cols
}

// Rows returns the number of rows.
func (p *PlaneOf[T]) Rows() int { return p.rows }

// Cols returns the number of columns.
func (p *PlaneOf[T]) Cols() int { return p.cols }

// At returns the value at (i, j).
func (p *PlaneOf[T]) At(i, j int) T { return p.data[i*p.cols+j] }

// Set stores v at (i, j).
func (p *PlaneOf[T]) Set(i, j int, v T) { p.data[i*p.cols+j] = v }

// Row returns the i-th row as a shared slice; writes through the slice are
// visible in the plane.
func (p *PlaneOf[T]) Row(i int) []T { return p.data[i*p.cols : (i+1)*p.cols] }

// Fill sets every cell to v.
func (p *PlaneOf[T]) Fill(v T) { fillCells(p.data, v) }

// fillCells sets every element of s to v with the first-element +
// doubling-copy idiom, which the runtime turns into wide memmove calls —
// several times faster than an element loop for the NegInf fills the affine
// kernels perform on every lattice.
func fillCells[T Cell](s []T, v T) {
	if len(s) == 0 {
		return
	}
	s[0] = v
	for filled := 1; filled < len(s); filled *= 2 {
		copy(s[filled:], s[:filled])
	}
}

// CopyFrom copies src into p. It panics if the shapes differ.
func (p *PlaneOf[T]) CopyFrom(src *PlaneOf[T]) {
	if p.rows != src.rows || p.cols != src.cols {
		panic(fmt.Sprintf("mat: CopyFrom shape mismatch: dst %dx%d, src %dx%d",
			p.rows, p.cols, src.rows, src.cols))
	}
	copy(p.data, src.data)
}

// Bytes reports the heap footprint of the backing array.
func (p *PlaneOf[T]) Bytes() int64 { return int64(len(p.data)) * int64(CellBytes[T]()) }

const scoreSize = 4 // sizeof(Score)

// Tensor3Of is a dense 3D cell array backed by one allocation, indexed as
// [i][j][k] with k fastest-varying.
type Tensor3Of[T Cell] struct {
	ni, nj, nk int
	strideI    int // nj*nk
	data       []T
}

// Tensor3 is the Score-width lattice used wherever the cell width is not
// planner-negotiated.
type Tensor3 = Tensor3Of[Score]

// NewTensor3 returns a zeroed ni×nj×nk Score tensor. It panics if a
// dimension is negative or if the total element count would overflow int.
func NewTensor3(ni, nj, nk int) *Tensor3 { return NewTensor3Of[Score](ni, nj, nk) }

// NewTensor3Of returns a zeroed ni×nj×nk tensor of T cells.
func NewTensor3Of[T Cell](ni, nj, nk int) *Tensor3Of[T] {
	n := checkTensorDims(ni, nj, nk)
	return &Tensor3Of[T]{ni: ni, nj: nj, nk: nk, strideI: nj * nk, data: make([]T, n)}
}

func checkTensorDims(ni, nj, nk int) int {
	if ni < 0 || nj < 0 || nk < 0 {
		panic(fmt.Sprintf("mat: tensor %dx%dx%d: negative dimension", ni, nj, nk))
	}
	n, ok := checkedMul3(ni, nj, nk)
	if !ok {
		panic(fmt.Sprintf("mat: tensor %dx%dx%d: size overflows", ni, nj, nk))
	}
	return n
}

func checkedMul3(a, b, c int) (int, bool) {
	ab := a * b
	if a != 0 && ab/a != b {
		return 0, false
	}
	abc := ab * c
	if ab != 0 && abc/ab != c {
		return 0, false
	}
	return abc, true
}

// Dims returns the three dimensions.
func (t *Tensor3Of[T]) Dims() (ni, nj, nk int) { return t.ni, t.nj, t.nk }

// Index returns the flat offset of (i, j, k).
func (t *Tensor3Of[T]) Index(i, j, k int) int { return i*t.strideI + j*t.nk + k }

// At returns the value at (i, j, k).
func (t *Tensor3Of[T]) At(i, j, k int) T { return t.data[i*t.strideI+j*t.nk+k] }

// Set stores v at (i, j, k).
func (t *Tensor3Of[T]) Set(i, j, k int, v T) { t.data[i*t.strideI+j*t.nk+k] = v }

// Lane returns the k-lane at (i, j) as a shared slice of length nk.
func (t *Tensor3Of[T]) Lane(i, j int) []T {
	off := i*t.strideI + j*t.nk
	return t.data[off : off+t.nk]
}

// PlaneI copies the i-th (j,k) plane into dst, which must be nj×nk.
func (t *Tensor3Of[T]) PlaneI(i int, dst *PlaneOf[T]) {
	if dst.rows != t.nj || dst.cols != t.nk {
		panic(fmt.Sprintf("mat: PlaneI shape mismatch: plane %dx%d, tensor j,k %dx%d",
			dst.rows, dst.cols, t.nj, t.nk))
	}
	copy(dst.data, t.data[i*t.strideI:(i+1)*t.strideI])
}

// Fill sets every cell to v.
func (t *Tensor3Of[T]) Fill(v T) { fillCells(t.data, v) }

// Bytes reports the heap footprint of the backing array.
func (t *Tensor3Of[T]) Bytes() int64 { return int64(len(t.data)) * int64(CellBytes[T]()) }

// Tensor3Bytes predicts, without allocating, the backing-array footprint of
// NewTensor3(ni, nj, nk) at the default Score width. It is used by the
// memory experiment (T2) and by callers that want to refuse infeasible
// problem sizes up front. Width-negotiated lattices cost
// ni·nj·nk·CellBytes[T] instead; the planner's estimators own that math.
func Tensor3Bytes(ni, nj, nk int) int64 {
	return int64(ni) * int64(nj) * int64(nk) * int64(scoreSize)
}

// PlaneBytes predicts the backing-array footprint of NewPlane(rows, cols).
func PlaneBytes(rows, cols int) int64 {
	return int64(rows) * int64(cols) * int64(scoreSize)
}

// Max returns the larger of two scores.
func Max(a, b Score) Score {
	if a > b {
		return a
	}
	return b
}

// Max3 returns the largest of three scores.
func Max3(a, b, c Score) Score {
	return Max(Max(a, b), c)
}

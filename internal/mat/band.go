package mat

import "fmt"

// BandTensor3 is sparse per-row storage for a 3D score lattice restricted
// to a band: each i-row stores a contiguous j-hull [jLo[i], jHi[i]), and
// each (i, j) lane inside the hull stores one contiguous k-interval
// [kLo, kHi). Reads outside the stored band return NegInf, which is
// exactly the value a Carrillo–Lipman-pruned cell holds in the dense
// kernels — so the banded DP and its traceback see the same lattice the
// pruned full-matrix kernel would have produced, at a memory cost that
// scales with the admitted band instead of ni·nj·nk.
//
// Cell values are always Score width: the band kernels trade the packed
// kernels' width negotiation for sparsity, and NegInf only exists at
// Score width.
type BandTensor3 struct {
	ni, nj, nk int
	jLo, jHi   []int32    // per-i j-hull, length ni
	laneOff    []int      // per-i index of row i's first lane record
	lanes      []bandLane // one record per (i, j) inside the hull
	data       []Score
}

// bandLane is one stored k-interval: cells [kLo, kHi) live at
// data[off : off+kHi-kLo]. Zero-width lanes (kLo >= kHi) occupy a record
// but no data.
type bandLane struct {
	kLo, kHi int32
	off      int
}

// bandLaneBytes is the index cost per stored lane record.
const bandLaneBytes = 16

// bandRowBytes is the per-row index cost (jLo, jHi, laneOff).
const bandRowBytes = 16

// BandTensor3Bytes predicts, without allocating, the footprint of a band
// with the given stored cell count, lane-record count, and row count. The
// band kernels use it for memory admission before building the band.
func BandTensor3Bytes(cells, lanes, rows int64) int64 {
	return cells*int64(scoreSize) + lanes*bandLaneBytes + rows*bandRowBytes
}

// NewBandTensor3 builds a band from per-row hulls and per-lane
// k-intervals. jLo and jHi must have length ni; kLo and kHi hold the lane
// intervals of every row concatenated in i order — jHi[i]−jLo[i] entries
// for row i. Intervals are clamped conventions, not validated deeply: a
// lane with kLo ≥ kHi stores nothing. The data slab is drawn from the mat
// arena with unspecified contents (the band kernels write every stored
// cell before reading it); release the band with Release.
func NewBandTensor3(ni, nj, nk int, jLo, jHi, kLo, kHi []int32) *BandTensor3 {
	if ni < 0 || nj < 0 || nk < 0 {
		panic(fmt.Sprintf("mat: band tensor %dx%dx%d: negative dimension", ni, nj, nk))
	}
	if len(jLo) != ni || len(jHi) != ni {
		panic(fmt.Sprintf("mat: band tensor: %d rows, %d/%d hull entries", ni, len(jLo), len(jHi)))
	}
	b := &BandTensor3{
		ni: ni, nj: nj, nk: nk,
		jLo:     jLo,
		jHi:     jHi,
		laneOff: make([]int, ni+1),
	}
	nLanes := 0
	for i := 0; i < ni; i++ {
		b.laneOff[i] = nLanes
		if w := int(jHi[i]) - int(jLo[i]); w > 0 {
			nLanes += w
		}
	}
	b.laneOff[ni] = nLanes
	if len(kLo) != nLanes || len(kHi) != nLanes {
		panic(fmt.Sprintf("mat: band tensor: %d lanes in hull, %d/%d intervals", nLanes, len(kLo), len(kHi)))
	}
	b.lanes = make([]bandLane, nLanes)
	off := 0
	for l := 0; l < nLanes; l++ {
		lo, hi := kLo[l], kHi[l]
		if hi < lo {
			hi = lo
		}
		b.lanes[l] = bandLane{kLo: lo, kHi: hi, off: off}
		off += int(hi - lo)
	}
	b.data = GetCells[Score](off)
	return b
}

// Release returns the data slab to the arena. The band must not be used
// afterwards. A nil band is a no-op.
func (b *BandTensor3) Release() {
	if b == nil {
		return
	}
	PutCells(b.data)
	b.data = nil
	b.lanes = nil
}

// Dims returns the dense dimensions the band is a subset of.
func (b *BandTensor3) Dims() (ni, nj, nk int) { return b.ni, b.nj, b.nk }

// Cells reports the number of stored cells.
func (b *BandTensor3) Cells() int64 { return int64(len(b.data)) }

// Bytes reports the heap footprint of the band: data slab plus index.
func (b *BandTensor3) Bytes() int64 {
	return BandTensor3Bytes(int64(len(b.data)), int64(len(b.lanes)), int64(b.ni))
}

// lane returns the lane record for (i, j), or nil when (i, j) is outside
// the row hull.
func (b *BandTensor3) lane(i, j int) *bandLane {
	if i < 0 || i >= b.ni {
		return nil
	}
	lo := int(b.jLo[i])
	if j < lo || j >= int(b.jHi[i]) {
		return nil
	}
	return &b.lanes[b.laneOff[i]+j-lo]
}

// Lane returns the stored slice for lane (i, j) together with the k index
// of its first element. ok is false — and the slice nil — when the lane is
// outside the hull or stores no cells. Writes through the slice are
// visible in the band.
func (b *BandTensor3) Lane(i, j int) (cells []Score, kLo int, ok bool) {
	l := b.lane(i, j)
	if l == nil || l.kLo >= l.kHi {
		return nil, 0, false
	}
	return b.data[l.off : l.off+int(l.kHi-l.kLo)], int(l.kLo), true
}

// At returns the value at (i, j, k), or NegInf when the cell is not
// stored — the pruned-cell convention of the dense Carrillo–Lipman
// kernels.
func (b *BandTensor3) At(i, j, k int) Score {
	l := b.lane(i, j)
	if l == nil || k < int(l.kLo) || k >= int(l.kHi) {
		return NegInf
	}
	return b.data[l.off+k-int(l.kLo)]
}

// Set stores v at (i, j, k). It panics when the cell is outside the band:
// band cells are planned before the fill, so an out-of-band write is a
// kernel bug, never data-dependent.
func (b *BandTensor3) Set(i, j, k int, v Score) {
	l := b.lane(i, j)
	if l == nil || k < int(l.kLo) || k >= int(l.kHi) {
		panic(fmt.Sprintf("mat: band Set(%d,%d,%d) outside the stored band", i, j, k))
	}
	b.data[l.off+k-int(l.kLo)] = v
}

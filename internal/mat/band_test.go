package mat

import "testing"

// buildTestBand stores a small hand-made band:
//
//	row 0: hull j ∈ [0,2): lane (0,0) k ∈ [0,3), lane (0,1) k ∈ [1,2)
//	row 1: hull j ∈ [1,3): lane (1,1) k ∈ [0,0) (empty), lane (1,2) k ∈ [2,4)
func buildTestBand() *BandTensor3 {
	return NewBandTensor3(2, 3, 4,
		[]int32{0, 1}, []int32{2, 3},
		[]int32{0, 1, 0, 2}, []int32{3, 2, 0, 4})
}

func TestBandTensor3StoresIntervals(t *testing.T) {
	b := buildTestBand()
	defer b.Release()
	if ni, nj, nk := b.Dims(); ni != 2 || nj != 3 || nk != 4 {
		t.Fatalf("Dims = %d,%d,%d", ni, nj, nk)
	}
	if b.Cells() != 3+1+0+2 {
		t.Fatalf("Cells = %d, want 6", b.Cells())
	}
	want := BandTensor3Bytes(6, 4, 2)
	if b.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", b.Bytes(), want)
	}

	// Every stored cell round-trips through Set/At and Lane.
	v := Score(1)
	for _, c := range [][3]int{{0, 0, 0}, {0, 0, 1}, {0, 0, 2}, {0, 1, 1}, {1, 2, 2}, {1, 2, 3}} {
		b.Set(c[0], c[1], c[2], v)
		if got := b.At(c[0], c[1], c[2]); got != v {
			t.Fatalf("At(%v) = %d, want %d", c, got, v)
		}
		v++
	}
	lane, kLo, ok := b.Lane(0, 0)
	if !ok || kLo != 0 || len(lane) != 3 || lane[2] != 3 {
		t.Fatalf("Lane(0,0) = %v lo %d ok %v", lane, kLo, ok)
	}
	lane, kLo, ok = b.Lane(1, 2)
	if !ok || kLo != 2 || len(lane) != 2 || lane[0] != 5 {
		t.Fatalf("Lane(1,2) = %v lo %d ok %v", lane, kLo, ok)
	}
}

func TestBandTensor3OutsideReadsAreNegInf(t *testing.T) {
	b := buildTestBand()
	defer b.Release()
	outside := [][3]int{
		{-1, 0, 0}, {2, 0, 0}, // i off the ends
		{0, 2, 0}, {1, 0, 0}, // j outside the row hull
		{0, 0, 3}, {0, 1, 0}, {0, 1, 2}, // k outside the lane interval
		{1, 1, 0}, // empty lane
	}
	for _, c := range outside {
		if got := b.At(c[0], c[1], c[2]); got != NegInf {
			t.Fatalf("At(%v) = %d, want NegInf", c, got)
		}
	}
	if lane, _, ok := b.Lane(1, 1); ok || lane != nil {
		t.Fatal("empty lane reported ok")
	}
	if lane, _, ok := b.Lane(0, 2); ok || lane != nil {
		t.Fatal("out-of-hull lane reported ok")
	}
}

func TestBandTensor3SetOutsidePanics(t *testing.T) {
	b := buildTestBand()
	defer b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-band Set did not panic")
		}
	}()
	b.Set(1, 1, 0, 9)
}

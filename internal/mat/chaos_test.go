package mat

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/faultpoint"
)

// The arena chaos suite: with the mat.arena.get / mat.arena.put fault
// points panicking at injected hits — and the panics contained by the
// caller, the way kernels contain them — the arena must keep its one
// invariant: a buffer is never live in two hands at once. A put that
// panics before pooling merely leaks that buffer to the GC, which is safe;
// handing one backing array to two callers is the corruption the suite
// exists to catch.

// safeGet is GetScores with the injected panic contained, the shape of a
// caller that survives an arena fault.
func safeGet(n int) (s []Score, ok bool) {
	defer func() {
		if recover() != nil {
			s, ok = nil, false
		}
	}()
	return GetScores(n), true
}

// safePut is PutScores with the injected panic contained; on a fault the
// buffer is simply dropped (leaked to the GC), never half-pooled.
func safePut(s []Score) {
	defer func() { _ = recover() }()
	PutScores(s)
}

func armArenaFaults(t *testing.T) {
	t.Helper()
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Arm("mat.arena.get", "prob:0.05:11"); err != nil {
		t.Fatal(err)
	}
	if err := faultpoint.Arm("mat.arena.put", "prob:0.2:7"); err != nil {
		t.Fatal(err)
	}
}

// TestArenaChaosNoDoubleHandout is the testing/quick property from the
// issue: random get/put sequences under injected faults never produce two
// live slices sharing a backing array.
func TestArenaChaosNoDoubleHandout(t *testing.T) {
	armArenaFaults(t)
	prop := func(sizes []uint16) bool {
		live := make(map[*Score][]Score)
		for _, raw := range sizes {
			n := int(raw)%4096 + 1
			s, ok := safeGet(n)
			if !ok {
				continue // injected get fault, contained by the caller
			}
			if len(s) != n {
				t.Logf("GetScores(%d) returned len %d", n, len(s))
				return false
			}
			if _, dup := live[&s[0]]; dup {
				t.Logf("double handout: buffer %p live twice", &s[0])
				return false
			}
			live[&s[0]] = s
		}
		for _, s := range live {
			safePut(s)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestArenaChaosPanicBetweenGetAndPut models the kernel discipline: Get,
// defer Put, panic mid-fill. The deferred Put must return the buffer
// exactly once, so the next two Gets of the same class never alias.
func TestArenaChaosPanicBetweenGetAndPut(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	kernel := func(n int) {
		tt := GetTensor3(n, n, n)
		defer PutTensor3(tt)
		tt.Fill(0)
		panic("kernel died mid-fill")
	}
	for i := 0; i < 10; i++ {
		func() {
			defer func() { _ = recover() }()
			kernel(17)
		}()
		a := GetTensor3(17, 17, 17)
		b := GetTensor3(17, 17, 17)
		if &a.data[0] == &b.data[0] {
			t.Fatalf("iteration %d: two live tensors share a backing array", i)
		}
		PutTensor3(a)
		PutTensor3(b)
	}
}

// TestArenaChaosConcurrent hammers the arena from many goroutines under
// injected faults, with every holder writing its own tag over its whole
// buffer and verifying it before release: shared backing arrays surface
// as tag mismatches (and as data races under -race).
func TestArenaChaosConcurrent(t *testing.T) {
	armArenaFaults(t)
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(tag Score) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tag)))
			for i := 0; i < 400; i++ {
				n := rng.Intn(2048) + 1
				s, ok := safeGet(n)
				if !ok {
					continue
				}
				for j := range s {
					s[j] = tag
				}
				for j := range s {
					if s[j] != tag {
						errs <- "buffer overwritten while held: shared backing array"
						return
					}
				}
				safePut(s)
			}
		}(Score(g + 1))
	}
	wg.Wait()
	close(errs)
	if msg, bad := <-errs; bad {
		t.Fatal(msg)
	}
	if hits, fired := faultpoint.Stats("mat.arena.put"); hits == 0 || fired == 0 {
		t.Fatalf("put fault never exercised (hits=%d fired=%d)", hits, fired)
	}
}

package mat

import (
	"math/bits"
	"sync"

	"repro/internal/faultpoint"
)

// Buffer arena: size-classed sync.Pools of Score slices that back the
// planes, lattices, and score tables the aligners allocate per call or per
// Hirschberg sub-problem. Reusing backing arrays removes the dominant
// allocation cost of repeated alignments (batch screening, the Hirschberg
// recursion, benchmark loops) without a global free-list: sync.Pool keeps
// reuse per-P and lets the GC reclaim buffers under memory pressure.
//
// Pooled buffers have unspecified contents. Every DP kernel in this
// repository writes each cell of its working region before reading it (or
// Fills a sentinel first), so dirty reuse is safe there; new callers that
// need zeroed memory must Fill(0) explicitly or use the New* constructors.

// numClasses bounds the pooled size classes: class c holds slices whose
// capacity is in [2^c, 2^(c+1)). 2^30 Scores = 4 GiB, the default lattice
// cap, so effectively every feasible buffer is poolable.
const numClasses = 31

var scorePools [numClasses]sync.Pool

// Arena fault points. A fired get or put panics — the shape of the real
// faults this layer can suffer (an OOM-killed allocation, a corrupted
// size-class header) — and the chaos suites assert the kernels' deferred
// Puts keep the arena consistent through them: no buffer is ever handed
// out twice and a panicking kernel leaks nothing to the next caller.
var (
	fpGet = faultpoint.New("mat.arena.get")
	fpPut = faultpoint.New("mat.arena.put")
)

// sizeClass is floor(log2(n)): the pool whose slices have at least n/2 and
// at most 2n-1 elements of capacity. Classing by the slice's own capacity
// (not a rounded-up allocation size) avoids up-to-2x memory waste on large
// lattices; the price is an occasional pool miss when a smaller same-class
// buffer is returned, which Get handles by allocating fresh.
func sizeClass(n int) int {
	return bits.Len(uint(n)) - 1
}

// GetScores returns a Score slice of length n with unspecified contents,
// reusing a pooled backing array when one is large enough. Put it back with
// PutScores when no longer referenced.
func GetScores(n int) []Score {
	if fpGet.Fire() {
		panic("faultpoint: mat.arena.get")
	}
	if n <= 0 {
		return nil
	}
	if c := sizeClass(n); c < numClasses {
		if v, _ := scorePools[c].Get().(*[]Score); v != nil && cap(*v) >= n {
			return (*v)[:n]
		}
	}
	return make([]Score, n)
}

// PutScores returns a slice obtained from GetScores (or any other Score
// slice) to the arena. The caller must not use s, or any alias of it, after
// the call — the buffer will be handed to a future GetScores.
func PutScores(s []Score) {
	if fpPut.Fire() {
		panic("faultpoint: mat.arena.put")
	}
	n := cap(s)
	if n == 0 {
		return
	}
	if c := sizeClass(n); c < numClasses {
		s = s[:n]
		scorePools[c].Put(&s)
	}
}

var planePool = sync.Pool{New: func() any { return new(Plane) }}

// GetPlane returns a rows×cols plane with unspecified contents, drawing its
// backing array from the arena. It panics on negative dimensions, matching
// NewPlane.
func GetPlane(rows, cols int) *Plane {
	p := planePool.Get().(*Plane)
	p.rows, p.cols = checkPlaneDims(rows, cols)
	p.data = GetScores(rows * cols)
	return p
}

// PutPlane returns a plane and its backing array to the arena. The caller
// must not use p — or any Row slice obtained from it — after the call.
// A nil plane is a no-op.
func PutPlane(p *Plane) {
	if p == nil {
		return
	}
	PutScores(p.data)
	p.data = nil
	p.rows, p.cols = 0, 0
	planePool.Put(p)
}

var tensorPool = sync.Pool{New: func() any { return new(Tensor3) }}

// GetTensor3 returns an ni×nj×nk tensor with unspecified contents, drawing
// its backing array from the arena. It panics on negative dimensions or int
// overflow, matching NewTensor3.
func GetTensor3(ni, nj, nk int) *Tensor3 {
	n := checkTensorDims(ni, nj, nk)
	t := tensorPool.Get().(*Tensor3)
	t.ni, t.nj, t.nk = ni, nj, nk
	t.strideI = nj * nk
	t.data = GetScores(n)
	return t
}

// PutTensor3 returns a tensor and its backing array to the arena. The
// caller must not use t — or any Lane slice obtained from it — after the
// call. A nil tensor is a no-op.
func PutTensor3(t *Tensor3) {
	if t == nil {
		return
	}
	PutScores(t.data)
	t.data = nil
	t.ni, t.nj, t.nk, t.strideI = 0, 0, 0, 0
	tensorPool.Put(t)
}

package mat

import (
	"math/bits"
	"sync"

	"repro/internal/faultpoint"
)

// Buffer arena: size-classed sync.Pools of cell slices that back the
// planes, lattices, and score tables the aligners allocate per call or per
// Hirschberg sub-problem. Reusing backing arrays removes the dominant
// allocation cost of repeated alignments (batch screening, the Hirschberg
// recursion, benchmark loops) without a global free-list: sync.Pool keeps
// reuse per-P and lets the GC reclaim buffers under memory pressure.
//
// The arena is segregated by cell width: int16 and int32 buffers live in
// separate pool sets (plus one for the int8 residue-code buffers the linear
// kernels recycle), so a width-16 lattice never pins a width-32 backing
// array and vice versa.
//
// Pooled buffers have unspecified contents. Every DP kernel in this
// repository writes each cell of its working region before reading it (or
// Fills a sentinel first), so dirty reuse is safe there; new callers that
// need zeroed memory must Fill(0) explicitly or use the New* constructors.

// numClasses bounds the pooled size classes: class c holds slices whose
// capacity is in [2^c, 2^(c+1)). 2^30 Scores = 4 GiB, the default lattice
// cap, so effectively every feasible buffer is poolable.
const numClasses = 31

// Pool-set indices by cell width.
const (
	pool16 = iota // 2-byte cells
	pool32        // 4-byte cells
	numWidths
)

var cellPools [numWidths][numClasses]sync.Pool

// poolIndex maps a Cell type onto its width's pool set.
func poolIndex[T Cell]() int {
	if CellBytes[T]() == 2 {
		return pool16
	}
	return pool32
}

// Arena fault points. A fired get or put panics — the shape of the real
// faults this layer can suffer (an OOM-killed allocation, a corrupted
// size-class header) — and the chaos suites assert the kernels' deferred
// Puts keep the arena consistent through them: no buffer is ever handed
// out twice and a panicking kernel leaks nothing to the next caller.
var (
	fpGet = faultpoint.New("mat.arena.get")
	fpPut = faultpoint.New("mat.arena.put")
)

// sizeClass is floor(log2(n)): the pool whose slices have at least n/2 and
// at most 2n-1 elements of capacity. Classing by the slice's own capacity
// (not a rounded-up allocation size) avoids up-to-2x memory waste on large
// lattices; the price is an occasional pool miss when a smaller same-class
// buffer is returned, which Get handles by allocating fresh.
func sizeClass(n int) int {
	return bits.Len(uint(n)) - 1
}

// GetCells returns a cell slice of length n with unspecified contents,
// reusing a pooled backing array of the same width when one is large
// enough. Put it back with PutCells when no longer referenced.
func GetCells[T Cell](n int) []T {
	if fpGet.Fire() {
		panic("faultpoint: mat.arena.get")
	}
	if n <= 0 {
		return nil
	}
	if c := sizeClass(n); c < numClasses {
		if v, _ := cellPools[poolIndex[T]()][c].Get().(*[]T); v != nil && cap(*v) >= n {
			return (*v)[:n]
		}
	}
	return make([]T, n)
}

// PutCells returns a slice obtained from GetCells (or any other cell slice)
// to the arena. The caller must not use s, or any alias of it, after the
// call — the buffer will be handed to a future GetCells.
func PutCells[T Cell](s []T) {
	if fpPut.Fire() {
		panic("faultpoint: mat.arena.put")
	}
	n := cap(s)
	if n == 0 {
		return
	}
	if c := sizeClass(n); c < numClasses {
		s = s[:n]
		cellPools[poolIndex[T]()][c].Put(&s)
	}
}

// GetScores returns a Score slice of length n from the arena; it is
// GetCells at the default width.
func GetScores(n int) []Score { return GetCells[Score](n) }

// PutScores returns a slice obtained from GetScores to the arena.
func PutScores(s []Score) { PutCells(s) }

// codePools holds the int8 residue-code buffers (reversed sequences in the
// Hirschberg recursion) under the same size-class discipline.
var codePools [numClasses]sync.Pool

// GetCodes returns an int8 slice of length n with unspecified contents from
// the code arena. Put it back with PutCodes when no longer referenced.
func GetCodes(n int) []int8 {
	if fpGet.Fire() {
		panic("faultpoint: mat.arena.get")
	}
	if n <= 0 {
		return nil
	}
	if c := sizeClass(n); c < numClasses {
		if v, _ := codePools[c].Get().(*[]int8); v != nil && cap(*v) >= n {
			return (*v)[:n]
		}
	}
	return make([]int8, n)
}

// PutCodes returns a slice obtained from GetCodes to the code arena. The
// caller must not use s, or any alias of it, after the call.
func PutCodes(s []int8) {
	if fpPut.Fire() {
		panic("faultpoint: mat.arena.put")
	}
	n := cap(s)
	if n == 0 {
		return
	}
	if c := sizeClass(n); c < numClasses {
		s = s[:n]
		codePools[c].Put(&s)
	}
}

// Header pools, segregated by width like the backing arrays. A pool stores
// exactly one concrete header type per slot; the type assertion in the
// generic getters falls back to a fresh header on the (never-in-practice)
// mismatch of two same-width named cell types sharing a pool.
var (
	planePools  [numWidths]sync.Pool
	tensorPools [numWidths]sync.Pool
)

// GetPlane returns a rows×cols Score plane with unspecified contents,
// drawing its backing array from the arena. It panics on negative
// dimensions, matching NewPlane.
func GetPlane(rows, cols int) *Plane { return GetPlaneOf[Score](rows, cols) }

// GetPlaneOf is GetPlane at an arbitrary cell width.
func GetPlaneOf[T Cell](rows, cols int) *PlaneOf[T] {
	p, _ := planePools[poolIndex[T]()].Get().(*PlaneOf[T])
	if p == nil {
		p = new(PlaneOf[T])
	}
	p.rows, p.cols = checkPlaneDims(rows, cols)
	p.data = GetCells[T](rows * cols)
	return p
}

// PutPlane returns a plane and its backing array to the arena. The caller
// must not use p — or any Row slice obtained from it — after the call.
// A nil plane is a no-op.
func PutPlane(p *Plane) { PutPlaneOf(p) }

// PutPlaneOf is PutPlane at an arbitrary cell width.
func PutPlaneOf[T Cell](p *PlaneOf[T]) {
	if p == nil {
		return
	}
	PutCells(p.data)
	p.data = nil
	p.rows, p.cols = 0, 0
	planePools[poolIndex[T]()].Put(p)
}

// GetTensor3 returns an ni×nj×nk Score tensor with unspecified contents,
// drawing its backing array from the arena. It panics on negative
// dimensions or int overflow, matching NewTensor3.
func GetTensor3(ni, nj, nk int) *Tensor3 { return GetTensor3Of[Score](ni, nj, nk) }

// GetTensor3Of is GetTensor3 at an arbitrary cell width — the entry point
// width-negotiated lattices allocate through.
func GetTensor3Of[T Cell](ni, nj, nk int) *Tensor3Of[T] {
	n := checkTensorDims(ni, nj, nk)
	t, _ := tensorPools[poolIndex[T]()].Get().(*Tensor3Of[T])
	if t == nil {
		t = new(Tensor3Of[T])
	}
	t.ni, t.nj, t.nk = ni, nj, nk
	t.strideI = nj * nk
	t.data = GetCells[T](n)
	return t
}

// PutTensor3 returns a tensor and its backing array to the arena. The
// caller must not use t — or any Lane slice obtained from it — after the
// call. A nil tensor is a no-op.
func PutTensor3(t *Tensor3) { PutTensor3Of(t) }

// PutTensor3Of is PutTensor3 at an arbitrary cell width.
func PutTensor3Of[T Cell](t *Tensor3Of[T]) {
	if t == nil {
		return
	}
	PutCells(t.data)
	t.data = nil
	t.ni, t.nj, t.nk, t.strideI = 0, 0, 0, 0
	tensorPools[poolIndex[T]()].Put(t)
}

package scoring

import (
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/seq"
)

func TestMatchMismatch(t *testing.T) {
	s, err := MatchMismatch(seq.DNA, 2, -1, -2)
	if err != nil {
		t.Fatalf("MatchMismatch: %v", err)
	}
	a, c := seq.DNA.Code('A'), seq.DNA.Code('C')
	if got := s.Sub(a, a); got != 2 {
		t.Errorf("Sub(A,A) = %d, want 2", got)
	}
	if got := s.Sub(a, c); got != -1 {
		t.Errorf("Sub(A,C) = %d, want -1", got)
	}
	if s.GapExtend() != -2 || s.GapOpen() != 0 || s.Affine() {
		t.Errorf("gap model wrong: open=%d extend=%d affine=%v", s.GapOpen(), s.GapExtend(), s.Affine())
	}
}

func TestMatchMismatchValidation(t *testing.T) {
	if _, err := MatchMismatch(seq.DNA, 0, -1, -2); err == nil {
		t.Error("zero match accepted")
	}
	if _, err := MatchMismatch(seq.DNA, 2, 1, -2); err == nil {
		t.Error("positive mismatch accepted")
	}
	if _, err := MatchMismatch(seq.DNA, 2, -1, 1); err == nil {
		t.Error("positive gap accepted")
	}
}

func TestNewRejectsAsymmetric(t *testing.T) {
	alpha, _ := seq.NewAlphabet("toy", "AB")
	_, err := New("bad", alpha, [][]int{{1, 2}, {3, 1}}, 0, -1)
	if err == nil {
		t.Fatal("asymmetric table accepted")
	}
}

func TestNewRejectsWrongShape(t *testing.T) {
	alpha, _ := seq.NewAlphabet("toy", "AB")
	if _, err := New("bad", alpha, [][]int{{1, 2}}, 0, -1); err == nil {
		t.Error("wrong row count accepted")
	}
	if _, err := New("bad", alpha, [][]int{{1}, {1, 1}}, 0, -1); err == nil {
		t.Error("ragged table accepted")
	}
}

func TestPair(t *testing.T) {
	s := DNADefault()
	a := seq.DNA.Code('A')
	g := seq.DNA.Code('G')
	cases := []struct {
		x, y int8
		want mat.Score
	}{
		{a, a, 2},
		{a, g, -1},
		{a, Gap, -2},
		{Gap, a, -2},
		{Gap, Gap, 0},
	}
	for _, c := range cases {
		if got := s.Pair(c.x, c.y); got != c.want {
			t.Errorf("Pair(%d,%d) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestSPColumn(t *testing.T) {
	s := DNADefault()
	a := seq.DNA.Code('A')
	c := seq.DNA.Code('C')
	cases := []struct {
		x, y, z int8
		want    mat.Score
	}{
		{a, a, a, 6},           // three matches
		{a, a, c, 2 - 1 - 1},   // one match, two mismatches
		{a, a, Gap, 2 - 2 - 2}, // match + two residue-gap pairs
		{a, Gap, Gap, -2 - 2},  // two residue-gap pairs, gap-gap free
		{Gap, Gap, Gap, 0},     // never emitted by DP, but well defined
	}
	for _, tc := range cases {
		if got := s.SPColumn(tc.x, tc.y, tc.z); got != tc.want {
			t.Errorf("SPColumn(%d,%d,%d) = %d, want %d", tc.x, tc.y, tc.z, got, tc.want)
		}
	}
}

func TestSPColumnSymmetry(t *testing.T) {
	s := DNADefault()
	codes := []int8{Gap, 0, 1, 2, 3, 4}
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, x := range codes {
		for _, y := range codes {
			for _, z := range codes {
				v := [3]int8{x, y, z}
				base := s.SPColumn(x, y, z)
				for _, p := range perms {
					if got := s.SPColumn(v[p[0]], v[p[1]], v[p[2]]); got != base {
						t.Fatalf("SPColumn not permutation-invariant at %v perm %v: %d vs %d", v, p, got, base)
					}
				}
			}
		}
	}
}

func TestProteinMatricesSymmetricAndSane(t *testing.T) {
	for _, s := range []*Scheme{BLOSUM62(), BLOSUM80(), PAM250()} {
		n := s.Alphabet().Size()
		if n != 23 {
			t.Fatalf("%s alphabet size = %d, want 23", s.Name(), n)
		}
		for i := int8(0); i < int8(n); i++ {
			for j := int8(0); j < int8(n); j++ {
				if s.Sub(i, j) != s.Sub(j, i) {
					t.Fatalf("%s asymmetric at %c,%c", s.Name(), s.Alphabet().Letter(i), s.Alphabet().Letter(j))
				}
			}
			// The diagonal of every standard protein matrix is positive
			// for the 20 concrete amino acids.
			if i < 20 && s.Sub(i, i) <= 0 {
				t.Errorf("%s: diagonal %c = %d not positive", s.Name(), s.Alphabet().Letter(i), s.Sub(i, i))
			}
		}
		if !s.Affine() {
			t.Errorf("%s: default gap model should be affine", s.Name())
		}
	}
}

func TestBLOSUM62SpotValues(t *testing.T) {
	// Canonical, widely quoted entries.
	s := BLOSUM62()
	code := func(c byte) int8 { return seq.Protein.Code(c) }
	cases := []struct {
		a, b byte
		want mat.Score
	}{
		{'W', 'W', 11}, {'A', 'A', 4}, {'C', 'C', 9},
		{'A', 'R', -1}, {'W', 'Y', 2}, {'I', 'L', 2}, {'D', 'E', 2},
	}
	for _, c := range cases {
		if got := s.Sub(code(c.a), code(c.b)); got != c.want {
			t.Errorf("BLOSUM62[%c][%c] = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestPAM250SpotValues(t *testing.T) {
	s := PAM250()
	code := func(c byte) int8 { return seq.Protein.Code(c) }
	cases := []struct {
		a, b byte
		want mat.Score
	}{
		{'W', 'W', 17}, {'C', 'C', 12}, {'A', 'A', 2}, {'F', 'Y', 7},
	}
	for _, c := range cases {
		if got := s.Sub(code(c.a), code(c.b)); got != c.want {
			t.Errorf("PAM250[%c][%c] = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestWithGaps(t *testing.T) {
	s := DNADefault()
	aff, err := s.WithGaps(-5, -1)
	if err != nil {
		t.Fatalf("WithGaps: %v", err)
	}
	if !aff.Affine() || aff.GapOpen() != -5 || aff.GapExtend() != -1 {
		t.Errorf("WithGaps result: open=%d extend=%d", aff.GapOpen(), aff.GapExtend())
	}
	// Original untouched.
	if s.GapOpen() != 0 || s.GapExtend() != -2 {
		t.Errorf("WithGaps mutated receiver")
	}
	if _, err := s.WithGaps(1, -1); err == nil {
		t.Error("positive open accepted")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"dna", "blosum62", "blosum80", "pam250"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) not found", name)
		}
	}
	if _, ok := ByName("nonsense"); ok {
		t.Error("ByName accepted unknown name")
	}
}

func TestMaxSub(t *testing.T) {
	if got := BLOSUM62().MaxSub(); got != 11 {
		t.Errorf("BLOSUM62 MaxSub = %d, want 11 (W/W)", got)
	}
	if got := DNADefault().MaxSub(); got != 2 {
		t.Errorf("DNA MaxSub = %d, want 2", got)
	}
}

func TestPairPropertySymmetric(t *testing.T) {
	s := BLOSUM62()
	n := int8(s.Alphabet().Size())
	f := func(a, b uint8) bool {
		x := int8(a)%(n+1) - 1 // range [-1, n-1]
		y := int8(b)%(n+1) - 1
		return s.Pair(x, y) == s.Pair(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDNANeutralN(t *testing.T) {
	s := DNANeutralN()
	nc := seq.DNA.Code('N')
	a := seq.DNA.Code('A')
	if got := s.Sub(nc, a); got != 0 {
		t.Errorf("Sub(N,A) = %d, want 0", got)
	}
	if got := s.Sub(nc, nc); got != 0 {
		t.Errorf("Sub(N,N) = %d, want 0", got)
	}
	if got := s.Sub(a, a); got != 2 {
		t.Errorf("Sub(A,A) = %d, want 2", got)
	}
	if _, ok := ByName("dna-neutral-n"); !ok {
		t.Error("dna-neutral-n not registered")
	}
}

func TestBLOSUM80SpotValues(t *testing.T) {
	s := BLOSUM80()
	code := func(c byte) int8 { return seq.Protein.Code(c) }
	cases := []struct {
		a, b byte
		want mat.Score
	}{
		{'W', 'W', 11}, {'A', 'A', 5}, {'C', 'C', 9}, {'P', 'P', 8},
		{'I', 'L', 1}, {'D', 'E', 1},
	}
	for _, c := range cases {
		if got := s.Sub(code(c.a), code(c.b)); got != c.want {
			t.Errorf("BLOSUM80[%c][%c] = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Package scoring defines the substitution and gap models used by the
// alignment algorithms, including the sum-of-pairs (SP) objective for
// three-sequence alignment.
//
// A Scheme combines a residue substitution table (indexed by the dense
// alphabet codes from package seq) with a gap model. Gap penalties are
// stored as non-positive scores that are *added* to the objective, so all
// algorithms uniformly maximize.
//
// The SP score of a three-way alignment column (x, y, z), where each entry
// is a residue or a gap, is the sum over the three induced pairs:
//
//	sp(x, y, z) = pair(x, y) + pair(x, z) + pair(y, z)
//	pair(a, b)  = sub[a][b]     if both are residues
//	            = gapExtend     if exactly one is a gap
//	            = 0             if both are gaps
//
// Under the affine model a pairwise gap additionally pays gapOpen when it
// opens; the quasi-natural gap-count extension to three sequences is
// implemented by the 7-state dynamic program in internal/core.
package scoring

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/seq"
)

// Gap is the code used to mark a gap position in an alignment column. Any
// negative int8 works for Scheme methods; this named constant is the
// conventional one.
const Gap int8 = -1

// Scheme is an immutable scoring scheme over one alphabet.
type Scheme struct {
	name      string
	alpha     *seq.Alphabet
	size      int
	sub       []mat.Score // size×size substitution scores, row-major
	gapOpen   mat.Score   // ≤ 0, extra penalty when a pairwise gap opens; 0 means linear gaps
	gapExtend mat.Score   // ≤ 0, per-column residue-vs-gap penalty
}

// New builds a Scheme from an explicit substitution table. table must be
// alpha.Size()×alpha.Size() and symmetric; gapOpen and gapExtend must be
// non-positive.
func New(name string, alpha *seq.Alphabet, table [][]int, gapOpen, gapExtend int) (*Scheme, error) {
	n := alpha.Size()
	if len(table) != n {
		return nil, fmt.Errorf("scoring: %s: table has %d rows, alphabet %q needs %d", name, len(table), alpha.Name(), n)
	}
	s := &Scheme{name: name, alpha: alpha, size: n, sub: make([]mat.Score, n*n)}
	for i, row := range table {
		if len(row) != n {
			return nil, fmt.Errorf("scoring: %s: row %d has %d entries, want %d", name, i, len(row), n)
		}
		for j, v := range row {
			if table[j][i] != v {
				return nil, fmt.Errorf("scoring: %s: table asymmetric at (%d,%d): %d vs %d", name, i, j, v, table[j][i])
			}
			s.sub[i*n+j] = mat.Score(v)
		}
	}
	if gapOpen > 0 || gapExtend > 0 {
		return nil, fmt.Errorf("scoring: %s: gap penalties must be non-positive (open=%d extend=%d)", name, gapOpen, gapExtend)
	}
	s.gapOpen = mat.Score(gapOpen)
	s.gapExtend = mat.Score(gapExtend)
	return s, nil
}

func mustNew(name string, alpha *seq.Alphabet, table [][]int, gapOpen, gapExtend int) *Scheme {
	s, err := New(name, alpha, table, gapOpen, gapExtend)
	if err != nil {
		panic(err)
	}
	return s
}

// MatchMismatch returns a simple linear-gap scheme in which aligning two
// identical residues scores match, two different residues score mismatch,
// and a residue against a gap scores gap. match must be positive and
// mismatch/gap non-positive.
func MatchMismatch(alpha *seq.Alphabet, match, mismatch, gap int) (*Scheme, error) {
	if match <= 0 {
		return nil, fmt.Errorf("scoring: match score %d must be positive", match)
	}
	if mismatch > 0 {
		return nil, fmt.Errorf("scoring: mismatch score %d must be non-positive", mismatch)
	}
	n := alpha.Size()
	table := make([][]int, n)
	for i := range table {
		table[i] = make([]int, n)
		for j := range table[i] {
			if i == j {
				table[i][j] = match
			} else {
				table[i][j] = mismatch
			}
		}
	}
	return New(fmt.Sprintf("match%+d/mismatch%+d", match, mismatch), alpha, table, 0, gap)
}

// DNADefault is the default nucleotide scheme used throughout the
// experiments: +2 match, -1 mismatch, -2 linear gap.
func DNADefault() *Scheme {
	s, err := MatchMismatch(seq.DNA, 2, -1, -2)
	if err != nil {
		panic(err)
	}
	return s
}

// DNANeutralN is DNADefault with the ambiguity code N scoring 0 against
// everything (including itself): unknown bases neither reward nor punish,
// the conventional treatment for sequencing Ns.
func DNANeutralN() *Scheme {
	n := seq.DNA.Size()
	table := make([][]int, n)
	nCode := int(seq.DNA.Code('N'))
	for i := range table {
		table[i] = make([]int, n)
		for j := range table[i] {
			switch {
			case i == nCode || j == nCode:
				table[i][j] = 0
			case i == j:
				table[i][j] = 2
			default:
				table[i][j] = -1
			}
		}
	}
	s, err := New("dna-neutral-n", seq.DNA, table, 0, -2)
	if err != nil {
		panic(err)
	}
	return s
}

// WithGaps returns a copy of s with different gap penalties. Passing a
// negative open penalty turns on the affine model.
func (s *Scheme) WithGaps(gapOpen, gapExtend int) (*Scheme, error) {
	if gapOpen > 0 || gapExtend > 0 {
		return nil, fmt.Errorf("scoring: gap penalties must be non-positive (open=%d extend=%d)", gapOpen, gapExtend)
	}
	c := *s
	c.gapOpen = mat.Score(gapOpen)
	c.gapExtend = mat.Score(gapExtend)
	return &c, nil
}

// MapSub returns a scheme named name over the same alphabet whose
// substitution entries are f applied pointwise to s's and whose gap model
// is (gapOpen, gapExtend). Unlike New it copies the flat table directly —
// no [][]int staging — so per-alignment scheme derivation (e.g. the
// Hirschberg pairwise reduction) costs two allocations, not Size()+3.
// A pointwise f preserves symmetry by construction.
func (s *Scheme) MapSub(name string, f func(mat.Score) mat.Score, gapOpen, gapExtend mat.Score) (*Scheme, error) {
	if gapOpen > 0 || gapExtend > 0 {
		return nil, fmt.Errorf("scoring: %s: gap penalties must be non-positive (open=%d extend=%d)", name, gapOpen, gapExtend)
	}
	c := &Scheme{
		name:      name,
		alpha:     s.alpha,
		size:      s.size,
		sub:       make([]mat.Score, len(s.sub)),
		gapOpen:   gapOpen,
		gapExtend: gapExtend,
	}
	for i, v := range s.sub {
		c.sub[i] = f(v)
	}
	return c, nil
}

// Name returns the scheme's name.
func (s *Scheme) Name() string { return s.name }

// Alphabet returns the scheme's alphabet.
func (s *Scheme) Alphabet() *seq.Alphabet { return s.alpha }

// GapOpen returns the (non-positive) gap-open penalty; 0 means linear gaps.
func (s *Scheme) GapOpen() mat.Score { return s.gapOpen }

// GapExtend returns the (non-positive) per-position gap penalty.
func (s *Scheme) GapExtend() mat.Score { return s.gapExtend }

// Affine reports whether the scheme charges an extra gap-open penalty.
func (s *Scheme) Affine() bool { return s.gapOpen != 0 }

// Sub returns the substitution score for residue codes a and b.
func (s *Scheme) Sub(a, b int8) mat.Score { return s.sub[int(a)*s.size+int(b)] }

// SubRow returns the substitution-score row for residue code a: SubRow(a)[b]
// == Sub(a, b). The hot DP kernels hoist it out of their inner loops and use
// it to build per-call pair-score tables; the returned slice aliases the
// scheme's table and must not be modified.
func (s *Scheme) SubRow(a int8) []mat.Score {
	return s.sub[int(a)*s.size : (int(a)+1)*s.size : (int(a)+1)*s.size]
}

// Pair returns the linear-model contribution of one pair inside a column:
// substitution score, gapExtend for residue-vs-gap, 0 for gap-vs-gap.
func (s *Scheme) Pair(a, b int8) mat.Score {
	switch {
	case a >= 0 && b >= 0:
		return s.sub[int(a)*s.size+int(b)]
	case a < 0 && b < 0:
		return 0
	default:
		return s.gapExtend
	}
}

// SPColumn returns the linear-model sum-of-pairs score of a three-way
// column; entries are residue codes or Gap.
func (s *Scheme) SPColumn(x, y, z int8) mat.Score {
	return s.Pair(x, y) + s.Pair(x, z) + s.Pair(y, z)
}

// MaxSub returns the largest substitution score in the table; pruning
// bounds use it.
func (s *Scheme) MaxSub() mat.Score {
	best := s.sub[0]
	for _, v := range s.sub {
		if v > best {
			best = v
		}
	}
	return best
}

// MaxAbsSub returns the largest absolute substitution score in the table.
// Together with the gap penalties it bounds the score contribution of one
// alignment column, which is what the planner's cell-width negotiation
// needs to prove an int16 lattice cannot overflow.
func (s *Scheme) MaxAbsSub() mat.Score {
	var best mat.Score
	for _, v := range s.sub {
		if v < 0 {
			v = -v
		}
		if v > best {
			best = v
		}
	}
	return best
}

package wavefront

import "sync"

// wdeque is one worker's double-ended block queue. The owner pushes and
// pops at the tail (LIFO — the most recently unlocked block is the one
// whose predecessor faces are still cache-hot); thieves take from the head
// (FIFO — the oldest block is the one farthest from anything the owner is
// about to touch, so stealing it disturbs the least locality).
//
// A mutex-guarded slice is deliberate: blocks are coarse (a 16³ tile is
// ~4096 cells, tens of microseconds of fill), so the lock is contended for
// nanoseconds per block and the simplicity buys straightforward memory
// ordering — every handoff through the deque is a happens-before edge, the
// property the scheduler's correctness argument rests on.
type wdeque struct {
	mu   sync.Mutex
	head int   // index of the oldest element; buf[:head] is consumed
	buf  []int // block ids; owner end is the tail (append/pop)
}

// push adds a block at the owner end.
func (d *wdeque) push(id int) {
	d.mu.Lock()
	d.buf = append(d.buf, id)
	d.mu.Unlock()
}

// pop removes the most recently pushed block; ok is false when empty.
func (d *wdeque) pop() (id int, ok bool) {
	d.mu.Lock()
	if d.head >= len(d.buf) {
		d.head, d.buf = 0, d.buf[:0]
		d.mu.Unlock()
		return 0, false
	}
	id = d.buf[len(d.buf)-1]
	d.buf = d.buf[:len(d.buf)-1]
	d.mu.Unlock()
	return id, true
}

// steal removes the oldest block; ok is false when empty.
func (d *wdeque) steal() (id int, ok bool) {
	d.mu.Lock()
	if d.head >= len(d.buf) {
		d.head, d.buf = 0, d.buf[:0]
		d.mu.Unlock()
		return 0, false
	}
	id = d.buf[d.head]
	d.head++
	d.mu.Unlock()
	return id, true
}

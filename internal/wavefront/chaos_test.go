package wavefront

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultpoint"
)

// The scheduler chaos suite. The steal/handoff/grow fault points push the
// scheduler down its rarely-taken legal paths — thieves that keep losing,
// cache-hot handoffs that get queued, a pool that pretends to be
// saturated — and the invariant under all of them is exactly-once block
// execution with no goroutine leaks. The watchdog tests wedge a block for
// real and assert the run is cancelled as a typed stall instead of
// hanging.

// runCounted runs an nbi×nbj×nbk grid counting per-block executions and
// fails on any lost or duplicated block.
func runCounted(t *testing.T, nbi, nbj, nbk, workers int) {
	t.Helper()
	counts := make([]atomic.Int32, nbi*nbj*nbk)
	err := Run3DContext(context.Background(), nbi, nbj, nbk, workers, func(bi, bj, bk int) {
		counts[(bi*nbj+bj)*nbk+bk].Add(1)
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	for id := range counts {
		if n := counts[id].Load(); n != 1 {
			t.Fatalf("block %d executed %d times, want exactly once", id, n)
		}
	}
}

func TestChaosStealAndHandoffFaults(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.ArmSpec("wavefront.deque.steal=prob:0.4:3;wavefront.handoff=prob:0.4:5"); err != nil {
		t.Fatal(err)
	}
	warmPool(t, 4)
	before := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		runCounted(t, 6, 6, 6, 4)
	}
	if hits, _ := faultpoint.Stats("wavefront.handoff"); hits == 0 {
		t.Fatal("handoff fault never exercised")
	}
	waitForGoroutines(t, before)
}

func TestChaosPoolSaturated(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Arm("wavefront.pool.grow", "always"); err != nil {
		t.Fatal(err)
	}
	// Every TryGo is refused, so the run must degrade to the sequential
	// fill and still execute every block exactly once.
	prev := Stats()
	runCounted(t, 4, 4, 4, 4)
	if d := Stats().Sub(prev); d.SoloRuns == 0 {
		t.Fatalf("saturated pool did not fall back to a solo run: %+v", d)
	}
}

func TestChaosPoolPartiallySaturated(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Arm("wavefront.pool.grow", "every:2"); err != nil {
		t.Fatal(err)
	}
	warmPool(t, 4)
	before := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		runCounted(t, 5, 5, 5, 4)
	}
	waitForGoroutines(t, before)
}

func TestWatchdogStallsWedgedRun(t *testing.T) {
	prev := SetStallBudget(25 * time.Millisecond)
	t.Cleanup(func() { SetStallBudget(prev) })
	warmPool(t, 4)
	before := runtime.NumGoroutine()

	wedge := make(chan struct{})
	var done atomic.Int64
	statsBefore := Stats()
	err := Run3DContext(context.Background(), 4, 4, 4, 4, func(bi, bj, bk int) {
		if bi == 2 && bj == 2 && bk == 2 {
			<-wedge // a livelocked/deadlocked block: never returns on its own
		}
		done.Add(1)
	})
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("errors.Is(err, ErrStalled) = false for %v", err)
	}
	if se.Completed >= se.Total {
		t.Fatalf("stall reports %d of %d blocks done", se.Completed, se.Total)
	}
	if d := Stats().Sub(statsBefore); d.Stalls != 1 {
		t.Fatalf("stall counter moved by %d, want 1", d.Stalls)
	}
	if done.Load() >= 4*4*4 {
		t.Fatal("all blocks ran despite the wedge")
	}
	// Unwedge: the abandoned participant finishes its block, observes the
	// cancel, and returns its pool slot; everything drains to baseline.
	close(wedge)
	waitForGoroutines(t, before)
}

func TestWatchdogDisabled(t *testing.T) {
	prev := SetStallBudget(-1)
	t.Cleanup(func() { SetStallBudget(prev) })
	runCounted(t, 4, 4, 4, 4)
}

func TestWatchdogQuietOnHealthyRuns(t *testing.T) {
	prev := SetStallBudget(20 * time.Millisecond)
	t.Cleanup(func() { SetStallBudget(prev) })
	statsBefore := Stats()
	// Each block is far faster than the budget; the watchdog must never
	// fire even though whole runs take many budget windows.
	for round := 0; round < 3; round++ {
		var count atomic.Int64
		err := Run3DContext(context.Background(), 8, 8, 8, 4, func(bi, bj, bk int) {
			count.Add(1)
			time.Sleep(20 * time.Microsecond)
		})
		if err != nil {
			t.Fatalf("healthy run failed: %v", err)
		}
		if count.Load() != 8*8*8 {
			t.Fatalf("ran %d blocks, want %d", count.Load(), 8*8*8)
		}
	}
	if d := Stats().Sub(statsBefore); d.Stalls != 0 {
		t.Fatalf("watchdog fired %d times on healthy runs", d.Stalls)
	}
}

func TestStallBudgetDeadlineClamp(t *testing.T) {
	prev := SetStallBudget(0) // default 30s
	t.Cleanup(func() { SetStallBudget(prev) })
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if b := stallBudgetFor(ctx); b > 50*time.Millisecond || b < minStallBudget {
		t.Fatalf("deadline-derived budget = %v, want within [%v, 50ms]", b, minStallBudget)
	}
	if b := stallBudgetFor(context.Background()); b != DefaultStallBudget {
		t.Fatalf("background budget = %v, want %v", b, DefaultStallBudget)
	}
	SetStallBudget(-time.Second)
	if b := stallBudgetFor(context.Background()); b != 0 {
		t.Fatalf("disabled budget = %v, want 0", b)
	}
}

func TestStallErrorMessage(t *testing.T) {
	se := &StallError{Budget: 30 * time.Millisecond, Completed: 7, Total: 64}
	msg := se.Error()
	for _, want := range []string{"stalled", "30ms", "7 of 64"} {
		if !contains(msg, want) {
			t.Fatalf("StallError message %q misses %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

package wavefront

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// The stall watchdog. Cooperative cancellation (PR 1) handles callers that
// give up and panic containment handles blocks that die loudly, but a
// block function that simply never returns — a livelocked loop, a blocked
// syscall, a deadlock inside user code — used to wedge the whole run: the
// remaining workers drain their deques, park forever, and the caller hangs
// in wg.Wait. The watchdog turns that hang into a typed error: each
// multi-participant run gets one watchdog goroutine that checks the
// retired-block counter once per stall budget; a whole window with no
// progress while blocks remain means some participant is wedged, so the
// run is cancelled and reported as a *StallError (errors.Is ErrStalled).
//
// To make the cancellation effective, worker 0 runs on its own goroutine
// (pool slot when one is free, plain goroutine otherwise) instead of on
// the calling goroutine: any participant, not just a pool helper, can then
// be abandoned. Healthy participants notice the cancel at their next block
// boundary and exit within the grace window; a truly wedged participant is
// abandoned — it occupies one pool worker until (if ever) its block
// returns, which is the honest cost of a wedged computation and is far
// cheaper than hanging the request that scheduled it.
//
// The budget is deadline-derived: the configured stall budget, clamped
// down to the request's remaining deadline (a request 200ms from its
// deadline should learn about a wedge in 200ms, not 30s) and never below
// minStallBudget. Detection latency is between one and two budgets, since
// the first window only seeds the progress counter.

// DefaultStallBudget is the no-progress window after which a run is
// declared stalled when SetStallBudget has not been called. Blocks retire
// in tens of microseconds, so thirty seconds of zero retirements is a
// wedge, not load.
const DefaultStallBudget = 30 * time.Second

// minStallBudget floors the deadline-derived budget so a nearly-expired
// deadline cannot arm a hair-trigger watchdog that fires on scheduler
// jitter.
const minStallBudget = 10 * time.Millisecond

// ErrStalled is the sentinel matched by errors.Is for runs cancelled by
// the stall watchdog. The concrete error is a *StallError.
var ErrStalled = errors.New("wavefront: run stalled")

// StallError reports a run the watchdog cancelled: no block was retired
// for a whole Budget window while blocks remained. It unwraps to
// ErrStalled.
type StallError struct {
	// Budget is the no-progress window that expired.
	Budget time.Duration
	// Completed and Total count retired blocks and grid blocks.
	Completed, Total int64
}

func (e *StallError) Error() string {
	return fmt.Sprintf("wavefront: run stalled: no block retired in %v (%d of %d blocks done)",
		e.Budget, e.Completed, e.Total)
}

// Unwrap makes errors.Is(err, ErrStalled) hold.
func (e *StallError) Unwrap() error { return ErrStalled }

// stallBudgetNS holds the configured stall budget in nanoseconds:
// 0 means DefaultStallBudget, negative disables the watchdog.
var stallBudgetNS atomic.Int64

// SetStallBudget configures the watchdog's no-progress window for
// subsequent runs: 0 restores DefaultStallBudget, a negative duration
// disables the watchdog entirely (runs regain the pre-watchdog hang
// behavior). It returns the previous setting so tests can restore it.
func SetStallBudget(d time.Duration) (prev time.Duration) {
	return time.Duration(stallBudgetNS.Swap(int64(d)))
}

// stallBudgetFor resolves the effective budget for one run under ctx.
func stallBudgetFor(ctx interface{ Deadline() (time.Time, bool) }) time.Duration {
	b := time.Duration(stallBudgetNS.Load())
	if b < 0 {
		return 0
	}
	if b == 0 {
		b = DefaultStallBudget
	}
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < b {
			b = rem
		}
	}
	if b < minStallBudget {
		b = minStallBudget
	}
	return b
}

// stallGrace is how long runSteal waits after a stall for the healthy
// participants to notice the cancel before abandoning the stragglers.
func stallGrace(budget time.Duration) time.Duration {
	g := budget / 2
	if g < minStallBudget {
		g = minStallBudget
	}
	if g > time.Second {
		g = time.Second
	}
	return g
}

// watchdog is the per-run monitor goroutine: declare a stall when a whole
// budget window passes with no block retired and blocks remain, then
// cancel the run. stallErr is published before stalled is closed, so any
// reader that observed the close may read it.
func (r *stealRun) watchdog(budget time.Duration) {
	t := time.NewTimer(budget)
	defer t.Stop()
	last := int64(-1)
	for {
		select {
		case <-r.finished:
			return
		case <-r.ctx.Done():
			return
		case <-t.C:
			n := r.done.Load()
			if n == last && n < r.total {
				sched.stalls.Add(1)
				r.stallErr = &StallError{Budget: budget, Completed: n, Total: r.total}
				close(r.stalled)
				r.cancel()
				return
			}
			last = n
			t.Reset(budget)
		}
	}
}

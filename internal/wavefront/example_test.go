package wavefront_test

import (
	"fmt"
	"sync/atomic"

	"repro/internal/wavefront"
)

// ExampleRun3D evaluates a dependent computation over a blocked grid.
func ExampleRun3D() {
	var cells atomic.Int64
	spans := wavefront.Partition(100, 16)
	wavefront.Run3D(len(spans), len(spans), len(spans), 4, func(bi, bj, bk int) {
		cells.Add(int64(spans[bi].Len()) * int64(spans[bj].Len()) * int64(spans[bk].Len()))
	})
	fmt.Println("cells computed:", cells.Load())
	// Output:
	// cells computed: 1000000
}

// ExampleSimulate predicts the speedup the schedule achieves on P
// processors, independent of the measuring host's core count.
func ExampleSimulate() {
	const blocks = 16
	cost := wavefront.UniformCost(1)
	t1 := wavefront.Simulate(blocks, blocks, blocks, 1, cost)
	t8 := wavefront.Simulate(blocks, blocks, blocks, 8, cost)
	fmt.Printf("speedup on 8 processors: %.1f\n", t1/t8)
	// Output:
	// speedup on 8 processors: 7.9
}

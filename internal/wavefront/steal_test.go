package wavefront

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// TestPartitionEdgeCases pins the boundary behaviour the tiling code
// relies on: a block size exceeding n yields one span, n == 0 yields no
// spans, and an uneven tail yields a short final span.
func TestPartitionEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		n, b  int
		spans []Span
	}{
		{"empty", 0, 1, nil},
		{"empty large block", 0, 1000, nil},
		{"block exceeds n", 3, 64, []Span{{0, 3}}},
		{"block much larger than n", 1, 1 << 20, []Span{{0, 1}}},
		{"exact multiple", 8, 4, []Span{{0, 4}, {4, 8}}},
		{"uneven tail", 10, 4, []Span{{0, 4}, {4, 8}, {8, 10}}},
		{"tail of one", 9, 4, []Span{{0, 4}, {4, 8}, {8, 9}}},
		{"n one under block", 7, 8, []Span{{0, 7}}},
	}
	for _, c := range cases {
		got := Partition(c.n, c.b)
		if len(got) != len(c.spans) {
			t.Fatalf("%s: Partition(%d,%d) = %v, want %v", c.name, c.n, c.b, got, c.spans)
		}
		for i := range got {
			if got[i] != c.spans[i] {
				t.Fatalf("%s: Partition(%d,%d)[%d] = %v, want %v", c.name, c.n, c.b, i, got[i], c.spans[i])
			}
		}
	}
}

// TestRun3DContextPredecessorsComplete is the scheduler property test:
// over random grid shapes and worker counts, every block must observe all
// of its axis predecessors completed when it starts. A completion flag per
// block is set after fn returns; fn checks the flags of its predecessors.
// Any scheduling bug (a lost dependency, a premature dispatch, a missing
// happens-before edge) trips the violation flag — and shows up as a data
// race under -race, since the flag reads are ordered only by the
// scheduler's own synchronization.
func TestRun3DContextPredecessorsComplete(t *testing.T) {
	f := func(di, dj, dk, w uint8) bool {
		nbi, nbj, nbk := int(di)%6+1, int(dj)%6+1, int(dk)%6+1
		workers := int(w)%8 + 1
		total := nbi * nbj * nbk
		completed := make([]atomic.Bool, total)
		idx := func(bi, bj, bk int) int { return (bi*nbj+bj)*nbk + bk }
		var violation atomic.Bool
		err := Run3DContext(context.Background(), nbi, nbj, nbk, workers, func(bi, bj, bk int) {
			if bi > 0 && !completed[idx(bi-1, bj, bk)].Load() ||
				bj > 0 && !completed[idx(bi, bj-1, bk)].Load() ||
				bk > 0 && !completed[idx(bi, bj, bk-1)].Load() {
				violation.Store(true)
			}
			completed[idx(bi, bj, bk)].Store(true)
		})
		if err != nil || violation.Load() {
			return false
		}
		for i := range completed {
			if !completed[i].Load() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRun3DContextLargeGridFrontierMemory is the O(workers + frontier)
// smoke test: a grid of 40^3 = 64000 blocks with a trivial fn completes
// quickly, and after the run every shard map is empty (no per-block state
// survives) and the deques are drained.
func TestRun3DContextLargeGridFrontierMemory(t *testing.T) {
	const nb = 40
	var count atomic.Int64
	r := newStealRun(context.Background(), nb, nb, nb, 4, func(bi, bj, bk int) { count.Add(1) })
	defer r.cancel()
	var wg sync.WaitGroup
	for slot := 1; slot < 4; slot++ {
		wg.Add(1)
		go func(s int) { defer wg.Done(); r.participate(s, noBlock) }(slot)
	}
	r.participate(0, 0)
	wg.Wait()
	if count.Load() != nb*nb*nb {
		t.Fatalf("ran %d blocks, want %d", count.Load(), nb*nb*nb)
	}
	for i := range r.shards {
		if n := len(r.shards[i].m); n != 0 {
			t.Fatalf("shard %d retains %d predecessor entries after completion", i, n)
		}
	}
	for i := range r.deques {
		if _, ok := r.deques[i].pop(); ok {
			t.Fatalf("deque %d not drained after completion", i)
		}
	}
}

// TestSchedStats checks the counters move coherently across a run: blocks
// executed equals the grid size, keeps+steals never exceed blocks, and a
// multi-worker run on a warm pool is recorded as a work-stealing run.
func TestSchedStats(t *testing.T) {
	warmPool(t, 4)
	before := Stats()
	const nbi, nbj, nbk = 6, 6, 6
	if err := Run3DContext(context.Background(), nbi, nbj, nbk, 4, func(_, _, _ int) {}); err != nil {
		t.Fatal(err)
	}
	d := Stats().Sub(before)
	if d.Runs+d.SoloRuns != 1 {
		t.Fatalf("runs %d + solo %d, want exactly one run", d.Runs, d.SoloRuns)
	}
	if d.Runs == 1 {
		if d.Blocks != nbi*nbj*nbk {
			t.Fatalf("blocks = %d, want %d", d.Blocks, nbi*nbj*nbk)
		}
		if d.Keeps+d.Steals > d.Blocks {
			t.Fatalf("keeps %d + steals %d exceed blocks %d", d.Keeps, d.Steals, d.Blocks)
		}
		if d.HelperJoins < 1 {
			t.Fatalf("helper joins = %d, want >= 1", d.HelperJoins)
		}
	}
	if d.PoolCapacity < 4 {
		t.Fatalf("pool capacity = %d, want >= 4", d.PoolCapacity)
	}
}

// TestDeque exercises the LIFO-own / FIFO-steal contract.
func TestDeque(t *testing.T) {
	var d wdeque
	if _, ok := d.pop(); ok {
		t.Fatal("pop on empty deque succeeded")
	}
	if _, ok := d.steal(); ok {
		t.Fatal("steal on empty deque succeeded")
	}
	d.push(1)
	d.push(2)
	d.push(3)
	if id, ok := d.steal(); !ok || id != 1 {
		t.Fatalf("steal = %d,%v, want oldest (1)", id, ok)
	}
	if id, ok := d.pop(); !ok || id != 3 {
		t.Fatalf("pop = %d,%v, want newest (3)", id, ok)
	}
	if id, ok := d.pop(); !ok || id != 2 {
		t.Fatalf("pop = %d,%v, want 2", id, ok)
	}
	if _, ok := d.pop(); ok {
		t.Fatal("deque not empty after draining")
	}
	// Reuse after drain: the head offset must reset.
	d.push(7)
	if id, ok := d.steal(); !ok || id != 7 {
		t.Fatalf("steal after reset = %d,%v, want 7", id, ok)
	}
}

// TestTryGoCapacity checks pool admission: a saturated pool rejects
// without blocking, and a freed slot is granted again.
func TestTryGoCapacity(t *testing.T) {
	// Occupy the whole current capacity with parked tasks.
	_, capacity := poolSizes()
	if capacity == 0 {
		GrowPool(2)
		_, capacity = poolSizes()
	}
	release := make(chan struct{})
	var parked sync.WaitGroup
	granted := 0
	for i := 0; i < capacity; i++ {
		parked.Add(1)
		if !TryGo(func() { parked.Done(); <-release }) {
			parked.Done()
			break
		}
		granted++
	}
	if granted != capacity {
		close(release)
		parked.Wait()
		t.Fatalf("granted %d tasks, want capacity %d", granted, capacity)
	}
	parked.Wait()
	if TryGo(func() {}) {
		close(release)
		t.Fatal("TryGo granted a slot on a saturated pool")
	}
	close(release)
	// After the tasks drain, a slot must be reusable without spawning.
	spawnedBefore, _ := poolSizes()
	ran := make(chan struct{})
	for !TryGo(func() { close(ran) }) {
		// Workers are between task end and idle re-registration; retry.
	}
	<-ran
	spawnedAfter, _ := poolSizes()
	if spawnedAfter > spawnedBefore {
		t.Fatalf("pool spawned %d new workers for a reusable slot", spawnedAfter-spawnedBefore)
	}
}

// TestPoolPrewarm checks the serving-layer startup hook: Prewarm raises
// capacity, eagerly parks workers, and TryGo then reuses them without
// spawning.
func TestPoolPrewarm(t *testing.T) {
	spawnedBefore, capBefore := poolSizes()
	want := spawnedBefore + 2
	if capBefore > want {
		want = capBefore // capacity never shrinks; just exercise the spawn path
	}
	Prewarm(want)
	spawned, capacity := poolSizes()
	if capacity < want {
		t.Fatalf("capacity = %d after Prewarm(%d)", capacity, want)
	}
	if spawned < capacity {
		t.Fatalf("spawned = %d, want %d parked workers (capacity)", spawned, capacity)
	}
	// Prewarmed workers must be claimable without new spawns.
	ran := make(chan struct{})
	if !TryGo(func() { close(ran) }) {
		t.Fatal("TryGo rejected on a prewarmed pool")
	}
	<-ran
	if after, _ := poolSizes(); after != spawned {
		t.Fatalf("TryGo spawned %d new workers on a prewarmed pool", after-spawned)
	}
	// Idempotent: a second Prewarm with the same target changes nothing.
	Prewarm(want)
	if again, _ := poolSizes(); again != spawned {
		t.Fatalf("repeated Prewarm spawned %d extra workers", again-spawned)
	}
}

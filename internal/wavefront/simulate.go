package wavefront

import "container/heap"

// Simulate computes the makespan of the blocked 3D wavefront under greedy
// list scheduling with the given number of workers, where cost(bi, bj, bk)
// is the execution time of one block in arbitrary units.
//
// This is the evaluation substitute for multi-processor hardware: the
// schedule simulated here is exactly the one Run3D executes (dependency
// counting, any-idle-worker assignment), so makespan(1)/makespan(P) is the
// algorithm's achievable speedup on P processors with those block costs —
// independent of how many physical cores the measuring host has. The
// simulation is deterministic: ready blocks are assigned in ascending
// block-id order.
func Simulate(nbi, nbj, nbk, workers int, cost func(bi, bj, bk int) float64) float64 {
	total := nbi * nbj * nbk
	if total <= 0 {
		return 0
	}
	workers = Workers(workers)
	if workers > total {
		workers = total
	}

	idx := func(bi, bj, bk int) int { return (bi*nbj+bj)*nbk + bk }
	remaining := make([]int, total)
	for bi := 0; bi < nbi; bi++ {
		for bj := 0; bj < nbj; bj++ {
			for bk := 0; bk < nbk; bk++ {
				deps := 0
				if bi > 0 {
					deps++
				}
				if bj > 0 {
					deps++
				}
				if bk > 0 {
					deps++
				}
				remaining[idx(bi, bj, bk)] = deps
			}
		}
	}

	// Event-driven simulation: a min-heap of (finish time, block id) for
	// in-flight blocks, a FIFO-ordered ready list, and a pool of idle
	// workers. Whenever a worker is idle and a block is ready, it starts at
	// the current simulated time.
	var events eventHeap
	ready := []int{0} // block (0,0,0)
	idle := workers
	now := 0.0
	makespan := 0.0
	started := 0
	for started < total || len(events) > 0 {
		for idle > 0 && len(ready) > 0 {
			id := ready[0]
			ready = ready[1:]
			bi := id / (nbj * nbk)
			bj := (id / nbk) % nbj
			bk := id % nbk
			heap.Push(&events, event{t: now + cost(bi, bj, bk), id: id})
			idle--
			started++
		}
		if len(events) == 0 {
			break // no blocks in flight and nothing ready: done (or stuck)
		}
		ev := heap.Pop(&events).(event)
		now = ev.t
		if now > makespan {
			makespan = now
		}
		idle++
		bi := ev.id / (nbj * nbk)
		bj := (ev.id / nbk) % nbj
		bk := ev.id % nbk
		succ := [][3]int{{bi + 1, bj, bk}, {bi, bj + 1, bk}, {bi, bj, bk + 1}}
		for _, s := range succ {
			if s[0] < nbi && s[1] < nbj && s[2] < nbk {
				sid := idx(s[0], s[1], s[2])
				remaining[sid]--
				if remaining[sid] == 0 {
					ready = append(ready, sid)
				}
			}
		}
	}
	return makespan
}

// UniformCost returns a cost function assigning every block the same unit
// cost; convenient for analytic comparisons.
func UniformCost(c float64) func(int, int, int) float64 {
	return func(int, int, int) float64 { return c }
}

// SpanCost returns a cost function proportional to the number of cells in
// each block given the three partitions, matching the real kernel whose
// per-block time is proportional to block volume.
func SpanCost(si, sj, sk []Span, perCell float64) func(int, int, int) float64 {
	return func(bi, bj, bk int) float64 {
		return perCell * float64(si[bi].Len()) * float64(sj[bj].Len()) * float64(sk[bk].Len())
	}
}

type event struct {
	t  float64
	id int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(a, b int) bool {
	if h[a].t != h[b].t {
		return h[a].t < h[b].t
	}
	return h[a].id < h[b].id
}
func (h eventHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

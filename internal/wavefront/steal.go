package wavefront

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultpoint"
)

// The locality-aware work-stealing scheduler.
//
// Each participant owns a deque of ready blocks. A worker that completes
// block (bi, bj, bk) decrements the remaining-predecessor count of its up
// to three axis successors; successors that reach zero are dispatched —
// and the worker *keeps* the first one for itself instead of queueing it,
// preferring the k-successor because the lanes it just wrote are that
// block's predecessor face and are still resident in cache. Remaining
// ready successors go onto the worker's own deque (LIFO for the owner,
// FIFO for thieves). A worker whose deque runs dry steals from its peers
// and only parks when every deque is empty.
//
// Scheduler memory is O(workers + frontier): predecessor counts live in a
// sharded map that only holds blocks with at least one (but not all)
// predecessors completed, and the deques only ever hold ready blocks of
// the current frontier — unlike the previous central queue, which buffered
// a channel slot and an atomic counter for every block of the grid.

// predShards is the shard count of the remaining-predecessor map; a small
// power of two keeps adjacent successors on different locks.
const predShards = 32

type predShard struct {
	mu sync.Mutex
	m  map[int]int8 // block id -> predecessors completed so far
}

const (
	noBlock = -1 // participant has no block in hand
	stopRun = -2 // run is over (completed, cancelled, panicked, or stalled)
)

// Scheduler fault points. All three are *behavioral*: a fired hit makes
// the scheduler take a legal but pessimal path (a steal that finds
// nothing, a cache-hot handoff that is queued instead, a pool that
// pretends to be saturated), so chaos runs exercise the rarely-taken
// branches while the no-lost-no-duplicated-blocks invariant must still
// hold.
var (
	fpSteal   = faultpoint.New("wavefront.deque.steal")
	fpHandoff = faultpoint.New("wavefront.handoff")
)

// stealRun is the per-run state shared by all participants.
type stealRun struct {
	nbi, nbj, nbk int
	total         int64
	fn            func(bi, bj, bk int)

	ctx    context.Context
	cancel context.CancelFunc

	deques []wdeque
	shards [predShards]predShard

	done     atomic.Int64  // completed blocks
	finished chan struct{} // closed when done == total
	notify   chan struct{} // buffered wake tokens for parked participants

	panicOnce sync.Once
	panicErr  *PanicError
	wg        sync.WaitGroup // all participants (worker 0 included)

	// stallErr is set by the watchdog before stalled is closed; runSteal
	// reads it only after observing the close, so the channel carries the
	// happens-before edge.
	stallErr *StallError
	stalled  chan struct{}
}

// Cumulative scheduler counters; see Stats.
var sched struct {
	runs, soloRuns, blocks, keeps, steals, helperJoins, stalls atomic.Int64
}

// SchedStats is a snapshot of the cumulative work-stealing scheduler and
// pool counters since process start. Diff two snapshots with Sub to meter
// one region of work.
type SchedStats struct {
	// Runs counts multi-participant work-stealing runs; SoloRuns counts
	// parallel requests that fell back to the sequential fill because the
	// pool had no free helper.
	Runs, SoloRuns int64
	// Stalls counts runs the watchdog cancelled because no block was
	// retired within the stall budget (returned as a *StallError).
	Stalls int64
	// Blocks is the number of blocks executed by work-stealing runs.
	Blocks int64
	// Keeps counts blocks a worker kept directly after unlocking them (the
	// cache-hot handoff); Steals counts blocks taken from another worker's
	// deque. Blocks - Keeps - Steals were popped from the worker's own
	// deque or were run seeds.
	Keeps, Steals int64
	// HelperJoins is the total number of pool helpers recruited by runs.
	HelperJoins int64
	// PoolWorkers and PoolCapacity describe the shared worker pool.
	PoolWorkers, PoolCapacity int
}

// Stats returns the cumulative scheduler counters.
func Stats() SchedStats {
	s := SchedStats{
		Runs:        sched.runs.Load(),
		SoloRuns:    sched.soloRuns.Load(),
		Stalls:      sched.stalls.Load(),
		Blocks:      sched.blocks.Load(),
		Keeps:       sched.keeps.Load(),
		Steals:      sched.steals.Load(),
		HelperJoins: sched.helperJoins.Load(),
	}
	s.PoolWorkers, s.PoolCapacity = poolSizes()
	return s
}

// Sub returns the counter deltas s - prev; the pool gauges are carried
// over from s unchanged.
func (s SchedStats) Sub(prev SchedStats) SchedStats {
	return SchedStats{
		Runs:         s.Runs - prev.Runs,
		SoloRuns:     s.SoloRuns - prev.SoloRuns,
		Stalls:       s.Stalls - prev.Stalls,
		Blocks:       s.Blocks - prev.Blocks,
		Keeps:        s.Keeps - prev.Keeps,
		Steals:       s.Steals - prev.Steals,
		HelperJoins:  s.HelperJoins - prev.HelperJoins,
		PoolWorkers:  s.PoolWorkers,
		PoolCapacity: s.PoolCapacity,
	}
}

func newStealRun(ctx context.Context, nbi, nbj, nbk, workers int, fn func(bi, bj, bk int)) *stealRun {
	runCtx, cancel := context.WithCancel(ctx)
	return &stealRun{
		nbi: nbi, nbj: nbj, nbk: nbk,
		total:    int64(nbi) * int64(nbj) * int64(nbk),
		fn:       fn,
		ctx:      runCtx,
		cancel:   cancel,
		deques:   make([]wdeque, workers),
		finished: make(chan struct{}),
		notify:   make(chan struct{}, workers),
		stalled:  make(chan struct{}),
	}
}

// participate is one worker's scheduling loop. seed is the block the
// participant starts with (the origin for worker 0, noBlock for helpers).
// It returns when the run completes, the context is cancelled, or a panic
// is contained — in-flight blocks always finish (the drain guarantee).
func (r *stealRun) participate(slot, seed int) {
	next := seed
	for {
		if next == noBlock {
			var ok bool
			if next, ok = r.deques[slot].pop(); !ok {
				next = r.trySteal(slot)
			}
		}
		if next == noBlock {
			select {
			case <-r.notify:
				continue
			case <-r.finished:
				return
			case <-r.ctx.Done():
				return
			}
		}
		if r.ctx.Err() != nil {
			return
		}
		if next = r.runBlock(slot, next); next == stopRun {
			return
		}
	}
}

// trySteal scans the other participants' deques FIFO-end first. A fired
// steal fault makes the whole scan report empty — the block stays where it
// is and its owner (or a later steal) still runs it, modeling a thief that
// keeps losing races.
func (r *stealRun) trySteal(slot int) int {
	if fpSteal.Fire() {
		return noBlock
	}
	n := len(r.deques)
	for i := 1; i < n; i++ {
		if id, ok := r.deques[(slot+i)%n].steal(); ok {
			sched.steals.Add(1)
			return id
		}
	}
	return noBlock
}

// runBlock executes one block, dispatches its newly-ready successors, and
// returns the block the worker keeps (or noBlock / stopRun).
func (r *stealRun) runBlock(slot, id int) int {
	nbjk := r.nbj * r.nbk
	bi := id / nbjk
	bj := (id / r.nbk) % r.nbj
	bk := id % r.nbk
	if pe := safeRun(r.fn, bi, bj, bk); pe != nil {
		r.panicOnce.Do(func() { r.panicErr = pe })
		r.cancel()
		return stopRun
	}
	sched.blocks.Add(1)
	keep := noBlock
	// Dispatch order is the keep preference: the k-successor reads the
	// lanes this worker just wrote, so keeping it preserves the most
	// cache-resident state; the j-successor shares the (i-1) plane; the
	// i-successor shares the least.
	if bk+1 < r.nbk {
		r.offer(id+1, bi, bj, bk+1, slot, &keep)
	}
	if bj+1 < r.nbj {
		r.offer(id+r.nbk, bi, bj+1, bk, slot, &keep)
	}
	if bi+1 < r.nbi {
		r.offer(id+nbjk, bi+1, bj, bk, slot, &keep)
	}
	if r.done.Add(1) == r.total {
		close(r.finished)
		return stopRun
	}
	return keep
}

// offer records one completed predecessor of the successor block at
// (bi, bj, bk); if that was the last outstanding predecessor the block is
// dispatched — kept directly when the worker has no block yet, pushed onto
// its deque (with a wake token for parked peers) otherwise.
func (r *stealRun) offer(id, bi, bj, bk, slot int, keep *int) {
	need := int8(0)
	if bi > 0 {
		need++
	}
	if bj > 0 {
		need++
	}
	if bk > 0 {
		need++
	}
	if need > 1 { // blocks with one predecessor are ready immediately
		s := &r.shards[id&(predShards-1)]
		s.mu.Lock()
		if s.m == nil {
			s.m = make(map[int]int8)
		}
		c := s.m[id] + 1
		if c < need {
			s.m[id] = c
			s.mu.Unlock()
			return
		}
		delete(s.m, id)
		s.mu.Unlock()
	}
	// A fired handoff fault suppresses the cache-hot keep: the ready block
	// goes through the deque like any other, trading locality for nothing —
	// chaos runs use it to prove the keep is an optimization, not a
	// correctness dependency.
	if *keep == noBlock && !fpHandoff.Fire() {
		*keep = id
		sched.keeps.Add(1)
		return
	}
	r.deques[slot].push(id)
	select {
	case r.notify <- struct{}{}:
	default: // a full token buffer already guarantees a wakeup
	}
}

// runSteal drives a multi-worker run: it recruits up to workers-1 helpers
// from the shared pool, runs worker 0 seeded with the origin block, and
// reports whether any helper joined (when none did the caller should use
// the sequential fill instead). Under the stall watchdog, worker 0 runs on
// its own goroutine and the caller only waits — so a wedged participant
// (watchdog fired, grace expired) can be abandoned instead of hanging the
// caller; see watchdog.go. On the normal path every participant has exited
// by the time runSteal returns.
func runSteal(ctx context.Context, nbi, nbj, nbk, workers int, fn func(bi, bj, bk int)) (bool, error) {
	GrowPool(workers)
	r := newStealRun(ctx, nbi, nbj, nbk, workers, fn)
	defer r.cancel()
	joined := 0
	for slot := 1; slot < workers; slot++ {
		s := slot
		r.wg.Add(1)
		if !TryGo(func() { defer r.wg.Done(); r.participate(s, noBlock) }) {
			r.wg.Done()
			break
		}
		joined++
	}
	if joined == 0 {
		sched.soloRuns.Add(1)
		return false, nil
	}
	sched.runs.Add(1)
	sched.helperJoins.Add(int64(joined))

	budget := stallBudgetFor(r.ctx)
	if budget <= 0 {
		// Watchdog disabled: the caller participates directly, as before.
		r.participate(0, 0)
		r.wg.Wait()
		if r.panicErr != nil {
			return true, r.panicErr
		}
		return true, nil
	}
	go r.watchdog(budget)
	r.wg.Add(1)
	w0 := func() { defer r.wg.Done(); r.participate(0, 0) }
	if !TryGo(w0) {
		go w0()
	}
	waitc := make(chan struct{})
	go func() { r.wg.Wait(); close(waitc) }()
	select {
	case <-waitc:
	case <-r.stalled:
		// Give the healthy participants a grace window to observe the
		// cancel; whoever is still running after it is wedged inside a
		// block and is abandoned (its pool slot stays occupied until —
		// if ever — the block returns).
		select {
		case <-waitc:
		case <-time.After(stallGrace(budget)):
		}
	}
	if r.panicErr != nil {
		return true, r.panicErr
	}
	select {
	case <-r.stalled:
		if r.done.Load() < r.total {
			return true, r.stallErr
		}
	default:
	}
	return true, nil
}

package wavefront

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPartition(t *testing.T) {
	cases := []struct {
		n, b  int
		spans []Span
	}{
		{0, 4, nil},
		{3, 4, []Span{{0, 3}}},
		{4, 4, []Span{{0, 4}}},
		{10, 4, []Span{{0, 4}, {4, 8}, {8, 10}}},
		{1, 1, []Span{{0, 1}}},
	}
	for _, c := range cases {
		got := Partition(c.n, c.b)
		if len(got) != len(c.spans) {
			t.Fatalf("Partition(%d,%d) = %v, want %v", c.n, c.b, got, c.spans)
		}
		for i := range got {
			if got[i] != c.spans[i] {
				t.Fatalf("Partition(%d,%d)[%d] = %v, want %v", c.n, c.b, i, got[i], c.spans[i])
			}
		}
	}
}

func TestPartitionCoversExactly(t *testing.T) {
	f := func(n, b uint8) bool {
		nn, bb := int(n)%200, int(b)%32+1
		spans := Partition(nn, bb)
		covered := 0
		prev := 0
		for _, s := range spans {
			if s.Lo != prev || s.Hi <= s.Lo || s.Len() > bb {
				return false
			}
			covered += s.Len()
			prev = s.Hi
		}
		return covered == nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionPanics(t *testing.T) {
	for _, c := range []struct{ n, b int }{{-1, 4}, {4, 0}, {4, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Partition(%d,%d) did not panic", c.n, c.b)
				}
			}()
			Partition(c.n, c.b)
		}()
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

// TestRun3DVisitsAllOnce checks each block runs exactly once.
func TestRun3DVisitsAllOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		const ni, nj, nk = 5, 4, 3
		var counts [ni][nj][nk]int32
		Run3D(ni, nj, nk, workers, func(bi, bj, bk int) {
			atomic.AddInt32(&counts[bi][bj][bk], 1)
		})
		for i := 0; i < ni; i++ {
			for j := 0; j < nj; j++ {
				for k := 0; k < nk; k++ {
					if counts[i][j][k] != 1 {
						t.Fatalf("workers=%d: block (%d,%d,%d) ran %d times", workers, i, j, k, counts[i][j][k])
					}
				}
			}
		}
	}
}

// TestRun3DDependencyOrder records completion stamps and verifies that
// every block's axis predecessors completed strictly before it started.
func TestRun3DDependencyOrder(t *testing.T) {
	const ni, nj, nk = 6, 5, 4
	var clock atomic.Int64
	var mu sync.Mutex
	started := map[[3]int]int64{}
	finished := map[[3]int]int64{}
	Run3D(ni, nj, nk, 8, func(bi, bj, bk int) {
		s := clock.Add(1)
		mu.Lock()
		started[[3]int{bi, bj, bk}] = s
		mu.Unlock()
		f := clock.Add(1)
		mu.Lock()
		finished[[3]int{bi, bj, bk}] = f
		mu.Unlock()
	})
	check := func(pred, succ [3]int) {
		if finished[pred] >= started[succ] {
			t.Fatalf("block %v (finished %d) did not precede %v (started %d)",
				pred, finished[pred], succ, started[succ])
		}
	}
	for i := 0; i < ni; i++ {
		for j := 0; j < nj; j++ {
			for k := 0; k < nk; k++ {
				b := [3]int{i, j, k}
				if i > 0 {
					check([3]int{i - 1, j, k}, b)
				}
				if j > 0 {
					check([3]int{i, j - 1, k}, b)
				}
				if k > 0 {
					check([3]int{i, j, k - 1}, b)
				}
			}
		}
	}
}

// TestRun3DComputesPrefixSums runs an actual dependent computation: each
// block writes cell value = 3D prefix-sum recurrence, reading neighbor
// cells written by predecessor blocks. Any missing happens-before edge
// shows up as a wrong value (and as a race under -race).
func TestRun3DComputesPrefixSums(t *testing.T) {
	const n = 24
	grid := make([]int64, n*n*n)
	at := func(i, j, k int) int64 {
		if i < 0 || j < 0 || k < 0 {
			return 0
		}
		return grid[(i*n+j)*n+k]
	}
	spans := Partition(n, 5)
	Run3D(len(spans), len(spans), len(spans), 8, func(bi, bj, bk int) {
		for i := spans[bi].Lo; i < spans[bi].Hi; i++ {
			for j := spans[bj].Lo; j < spans[bj].Hi; j++ {
				for k := spans[bk].Lo; k < spans[bk].Hi; k++ {
					// Inclusion-exclusion prefix-sum recurrence with +1 per cell.
					v := at(i-1, j, k) + at(i, j-1, k) + at(i, j, k-1) -
						at(i-1, j-1, k) - at(i-1, j, k-1) - at(i, j-1, k-1) +
						at(i-1, j-1, k-1) + 1
					grid[(i*n+j)*n+k] = v
				}
			}
		}
	})
	// The prefix-sum of the all-ones tensor is (i+1)(j+1)(k+1).
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				want := int64(i+1) * int64(j+1) * int64(k+1)
				if got := at(i, j, k); got != want {
					t.Fatalf("cell (%d,%d,%d) = %d, want %d", i, j, k, got, want)
				}
			}
		}
	}
}

func TestRun3DEmptyGrid(t *testing.T) {
	ran := false
	Run3D(0, 5, 5, 4, func(bi, bj, bk int) { ran = true })
	if ran {
		t.Fatal("fn ran on empty grid")
	}
}

func TestRun3DSingleBlock(t *testing.T) {
	n := 0
	Run3D(1, 1, 1, 16, func(bi, bj, bk int) { n++ })
	if n != 1 {
		t.Fatalf("single block ran %d times", n)
	}
}

func TestRun2D(t *testing.T) {
	const ni, nj = 7, 9
	var counts [ni][nj]int32
	var clock atomic.Int64
	stamp := [ni][nj]int64{}
	var mu sync.Mutex
	Run2D(ni, nj, 4, func(bi, bj int) {
		atomic.AddInt32(&counts[bi][bj], 1)
		s := clock.Add(1)
		mu.Lock()
		stamp[bi][bj] = s
		mu.Unlock()
	})
	for i := 0; i < ni; i++ {
		for j := 0; j < nj; j++ {
			if counts[i][j] != 1 {
				t.Fatalf("block (%d,%d) ran %d times", i, j, counts[i][j])
			}
			if i > 0 && stamp[i-1][j] >= stamp[i][j] {
				t.Fatalf("(%d,%d) ran before predecessor", i, j)
			}
			if j > 0 && stamp[i][j-1] >= stamp[i][j] {
				t.Fatalf("(%d,%d) ran before predecessor", i, j)
			}
		}
	}
}

func TestRun3DManyWorkersFewBlocks(t *testing.T) {
	// More workers than blocks must not deadlock or double-run.
	var n atomic.Int32
	Run3D(2, 1, 1, 64, func(bi, bj, bk int) { n.Add(1) })
	if n.Load() != 2 {
		t.Fatalf("ran %d blocks, want 2", n.Load())
	}
}

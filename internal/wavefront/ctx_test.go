package wavefront

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestRun3DContextCompletes(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var count atomic.Int64
		err := Run3DContext(context.Background(), 4, 5, 6, workers, func(bi, bj, bk int) {
			count.Add(1)
		})
		if err != nil {
			t.Fatalf("workers=%d: unexpected error: %v", workers, err)
		}
		if count.Load() != 4*5*6 {
			t.Fatalf("workers=%d: ran %d blocks, want %d", workers, count.Load(), 4*5*6)
		}
	}
}

func TestRun3DContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var count atomic.Int64
		err := Run3DContext(ctx, 8, 8, 8, workers, func(bi, bj, bk int) {
			count.Add(1)
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if count.Load() != 0 {
			t.Fatalf("workers=%d: ran %d blocks on a pre-cancelled context", workers, count.Load())
		}
	}
}

func TestRun3DContextMidFlightCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var count atomic.Int64
		warmPool(t, workers)
		before := runtime.NumGoroutine()
		err := Run3DContext(ctx, 16, 16, 16, workers, func(bi, bj, bk int) {
			if count.Add(1) == 10 {
				cancel()
			}
			time.Sleep(50 * time.Microsecond)
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		total := int64(16 * 16 * 16)
		if got := count.Load(); got >= total {
			t.Fatalf("workers=%d: all %d blocks ran despite cancellation", workers, got)
		}
		waitForGoroutines(t, before)
	}
}

func TestRun3DContextPanicContained(t *testing.T) {
	for _, workers := range []int{1, 4} {
		warmPool(t, workers)
		before := runtime.NumGoroutine()
		var count atomic.Int64
		err := Run3DContext(context.Background(), 8, 8, 8, workers, func(bi, bj, bk int) {
			if count.Add(1) == 5 {
				panic("boom")
			}
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value != "boom" {
			t.Fatalf("workers=%d: panic value = %v, want boom", workers, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: panic error carries no stack", workers)
		}
		if !IsPanic(err) {
			t.Fatalf("workers=%d: IsPanic = false for %v", workers, err)
		}
		waitForGoroutines(t, before)
	}
}

func TestRun3DPanicReRaised(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run3D swallowed the block panic")
		}
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", r)
		}
		if pe.Value != "kaboom" {
			t.Fatalf("panic value = %v, want kaboom", pe.Value)
		}
	}()
	Run3D(4, 4, 4, 2, func(bi, bj, bk int) {
		if bi == 1 && bj == 1 {
			panic("kaboom")
		}
	})
}

func TestRun2DContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Run2DContext(ctx, 8, 8, 4, func(bi, bj int) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// warmPool runs a trivial grid at the given worker count so the shared
// pool's persistent workers are spawned before a test captures its
// goroutine baseline: pool workers park between runs by design, so a
// baseline taken against a cold pool would count them as leaks.
func warmPool(t *testing.T, workers int) {
	t.Helper()
	if err := Run3DContext(context.Background(), workers, 1, 1, workers, func(_, _, _ int) {}); err != nil {
		t.Fatalf("pool warm-up failed: %v", err)
	}
}

// waitForGoroutines asserts the goroutine count settles back to (near) the
// baseline, giving exiting workers a grace period.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

package wavefront

import (
	"runtime"
	"sync"

	"repro/internal/faultpoint"
)

// The shared worker pool. All wavefront runs in the process — and any other
// subsystem that calls TryGo, such as the batch aligner's claim loops —
// draw helpers from this one pool, so repeated runs stop paying goroutine
// startup per fill and inter- and intra-alignment parallelism are
// arbitrated by a single capacity instead of stacking on top of each other.
//
// Workers are spawned lazily, one per granted TryGo that finds no idle
// worker, and then persist for the life of the process parked on the task
// channel. Capacity only grows (GrowPool); a process that once asked for N
// workers keeps at most N goroutines around, each costing a few KiB of
// stack while parked.
type workerPool struct {
	mu       sync.Mutex
	capacity int // max concurrently-busy workers; grows, never shrinks
	spawned  int // persistent goroutines created so far
	idle     int // spawned workers parked on the task channel
	tasks    chan func()
}

var pool = &workerPool{tasks: make(chan func())}

// GrowPool raises the shared pool's capacity to at least n busy workers.
// Runs and batches call it with their requested worker count before
// recruiting; it never shrinks the pool.
func GrowPool(n int) {
	pool.mu.Lock()
	if n > pool.capacity {
		pool.capacity = n
	}
	pool.mu.Unlock()
}

// Prewarm raises the shared pool's capacity to at least n and eagerly
// spawns workers up to that capacity, parked and ready. Long-lived callers
// with a latency target — the alignd serving layer most of all — call it
// once at startup so the first requests after boot do not pay goroutine
// spawn on top of cold caches. Prewarming is purely an accounting shift:
// the spawned workers are marked idle and are claimed by TryGo exactly
// like workers parked after a task.
func Prewarm(n int) {
	p := pool
	p.mu.Lock()
	if n > p.capacity {
		p.capacity = n
	}
	for p.spawned < p.capacity {
		p.spawned++
		p.idle++
		go p.work()
	}
	p.mu.Unlock()
}

// fpGrow simulates a saturated pool: a fired hit makes TryGo report false
// as if every slot were busy, so chaos runs exercise the degraded paths
// (solo fills, fewer helpers, plain-goroutine worker 0) without actually
// loading the pool. Behavioral, not a panic — saturation is a legal state.
var fpGrow = faultpoint.New("wavefront.pool.grow")

// TryGo runs f on a pool worker if a slot is free, spawning a persistent
// worker lazily when none is idle and the pool is under capacity. It
// reports false — without blocking — when every slot is busy, which is how
// a saturated pool degrades gracefully: the caller simply proceeds with
// less parallelism. TryGo never queues: a granted task starts immediately.
func TryGo(f func()) bool {
	if fpGrow.Fire() {
		return false
	}
	p := pool
	p.mu.Lock()
	if p.capacity == 0 {
		p.capacity = runtime.GOMAXPROCS(0)
	}
	if p.spawned-p.idle >= p.capacity {
		p.mu.Unlock()
		return false
	}
	if p.idle > 0 {
		p.idle--
	} else {
		p.spawned++
		go p.work()
	}
	p.mu.Unlock()
	p.tasks <- f
	return true
}

// work is the persistent worker loop: run a task, park, repeat. A panic
// that escapes a task crashes the process like any unrecovered goroutine
// panic; tasks that need containment (wavefront blocks, batch alignments)
// wrap their bodies in their own recover.
func (p *workerPool) work() {
	for f := range p.tasks {
		f()
		p.mu.Lock()
		p.idle++
		p.mu.Unlock()
	}
}

// poolSizes reports the pool's current spawned count and capacity.
func poolSizes() (spawned, capacity int) {
	pool.mu.Lock()
	defer pool.mu.Unlock()
	return pool.spawned, pool.capacity
}

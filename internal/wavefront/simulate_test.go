package wavefront

import (
	"math"
	"testing"
)

func TestSimulateSingleWorkerIsTotalWork(t *testing.T) {
	got := Simulate(3, 4, 5, 1, UniformCost(2))
	want := float64(3*4*5) * 2
	if got != want {
		t.Fatalf("makespan(1 worker) = %v, want %v", got, want)
	}
}

func TestSimulateUnlimitedWorkersIsCriticalPath(t *testing.T) {
	// With uniform unit costs and unlimited workers, the makespan equals
	// the number of anti-diagonal levels: nbi+nbj+nbk-2.
	for _, dims := range [][3]int{{1, 1, 1}, {4, 4, 4}, {2, 5, 3}, {10, 1, 1}} {
		nbi, nbj, nbk := dims[0], dims[1], dims[2]
		got := Simulate(nbi, nbj, nbk, nbi*nbj*nbk, UniformCost(1))
		want := float64(nbi + nbj + nbk - 2)
		if got != want {
			t.Errorf("dims %v: makespan = %v, want %v", dims, got, want)
		}
	}
}

func TestSimulateMonotoneInWorkers(t *testing.T) {
	prev := math.Inf(1)
	for _, w := range []int{1, 2, 3, 4, 8, 16, 64} {
		m := Simulate(6, 6, 6, w, UniformCost(1))
		if m > prev+1e-9 {
			t.Fatalf("makespan increased with more workers: %v -> %v at w=%d", prev, m, w)
		}
		prev = m
	}
}

func TestSimulateSpeedupBounds(t *testing.T) {
	// Speedup over 1 worker is at most w and at most total/criticalPath.
	total := Simulate(8, 8, 8, 1, UniformCost(1))
	critical := Simulate(8, 8, 8, 8*8*8, UniformCost(1))
	for _, w := range []int{2, 4, 8} {
		m := Simulate(8, 8, 8, w, UniformCost(1))
		speedup := total / m
		if speedup > float64(w)+1e-9 {
			t.Errorf("w=%d: speedup %v exceeds worker count", w, speedup)
		}
		if speedup > total/critical+1e-9 {
			t.Errorf("w=%d: speedup %v exceeds critical-path bound %v", w, speedup, total/critical)
		}
		if speedup < 1 {
			t.Errorf("w=%d: speedup %v below 1", w, speedup)
		}
	}
}

func TestSimulateRealisticSpeedupShape(t *testing.T) {
	// A reasonably deep grid must show near-linear speedup at small worker
	// counts — this is the F1/F2 figure shape.
	base := Simulate(16, 16, 16, 1, UniformCost(1))
	s2 := base / Simulate(16, 16, 16, 2, UniformCost(1))
	s4 := base / Simulate(16, 16, 16, 4, UniformCost(1))
	if s2 < 1.8 {
		t.Errorf("speedup(2) = %v, want near 2", s2)
	}
	if s4 < 3.2 {
		t.Errorf("speedup(4) = %v, want near 4", s4)
	}
}

func TestSimulateSpanCost(t *testing.T) {
	si := Partition(10, 4) // blocks of 4,4,2
	sj := Partition(4, 4)
	sk := Partition(4, 4)
	cost := SpanCost(si, sj, sk, 1)
	if got := cost(0, 0, 0); got != 64 {
		t.Errorf("cost(0,0,0) = %v, want 64", got)
	}
	if got := cost(2, 0, 0); got != 32 {
		t.Errorf("cost(2,0,0) = %v, want 32", got)
	}
	// One worker: total = all cells = 10*4*4.
	if m := Simulate(len(si), len(sj), len(sk), 1, cost); m != 160 {
		t.Errorf("makespan = %v, want 160", m)
	}
}

func TestSimulateEmpty(t *testing.T) {
	if m := Simulate(0, 3, 3, 4, UniformCost(1)); m != 0 {
		t.Errorf("empty grid makespan = %v", m)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := Simulate(7, 5, 6, 3, UniformCost(1.5))
	b := Simulate(7, 5, 6, 3, UniformCost(1.5))
	if a != b {
		t.Fatalf("simulation not deterministic: %v vs %v", a, b)
	}
}

// Package wavefront schedules blocked wavefront computations over 2D and 3D
// grids using a locality-aware work-stealing scheduler backed by a shared,
// process-wide worker pool.
//
// A dynamic program whose cell (i, j, k) depends on its lexicographic
// predecessors can be tiled into rectangular blocks; block (bi, bj, bk) may
// run once its three axis predecessors (bi-1, bj, bk), (bi, bj-1, bk), and
// (bi, bj, bk-1) have completed. Axis predecessors transitively dominate
// the face- and corner-diagonal predecessors — for example
// (bi-1, bj-1, bk) is itself an axis predecessor of (bi-1, bj, bk) — so
// counting only the (up to three) axis dependencies is sufficient for all
// seven cell-level dependency directions. Blocks on the same anti-diagonal
// plane bi+bj+bk = d are mutually independent, which is exactly the
// parallelism the paper exploits.
//
// Scheduling is work-stealing with a locality bias rather than a central
// queue: every participant owns a deque of ready blocks (LIFO for the
// owner, FIFO for thieves), and a worker that completes a block keeps the
// first successor it unlocks — preferring the k-successor, whose
// predecessor face the worker just wrote — so the tensor slab it touched
// stays cache-hot. Workers steal only when their own deque runs dry.
// Helpers come from one persistent, lazily-grown, process-wide pool
// (GrowPool/TryGo), so repeated runs pay no goroutine startup and outer
// parallelism (for example, a batch of alignments) and inner block
// parallelism share a single capacity. Per-run scheduler memory is
// O(workers + frontier): ready blocks live in the deques and pending
// predecessor counts in a sharded map that only tracks the frontier.
//
// The schedule is non-deterministic but the computed values are not,
// because every read a block performs is of cells written by blocks that
// happened-before it (the deque and shard mutexes establish the ordering).
//
// Run2DContext and Run3DContext add two robustness guarantees on top of
// the plain runners: cooperative cancellation (workers stop claiming
// blocks once the context is done and the run drains without leaking
// goroutines — pool helpers return to the pool) and panic containment (a
// panic inside fn cancels the run and is returned as a *PanicError instead
// of crashing the process).
package wavefront

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
)

// Span is a half-open index interval [Lo, Hi) covering one block edge.
type Span struct{ Lo, Hi int }

// Len returns the number of indices in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// Partition splits [0, n) into consecutive spans of at most blockSize
// indices. It panics if n is negative or blockSize is not positive.
// Partition(0, b) returns nil.
func Partition(n, blockSize int) []Span {
	if n < 0 {
		panic(fmt.Sprintf("wavefront: Partition length %d", n))
	}
	if blockSize <= 0 {
		panic(fmt.Sprintf("wavefront: Partition block size %d", blockSize))
	}
	spans := make([]Span, 0, (n+blockSize-1)/blockSize)
	for lo := 0; lo < n; lo += blockSize {
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		spans = append(spans, Span{lo, hi})
	}
	return spans
}

// Workers clamps a requested worker count to a sane value: non-positive
// requests become runtime.GOMAXPROCS(0).
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// PanicError is returned by the context-aware runners when fn panicked in
// a worker. Value is the recovered panic value and Stack the worker's stack
// at the point of the panic.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("wavefront: panic in block function: %v\n%s", e.Value, e.Stack)
}

// Run3D executes fn for every block of an nbi×nbj×nbk grid in wavefront
// order using the given number of workers (clamped by Workers). fn must
// only read cells produced by predecessor blocks; the scheduler guarantees
// those writes are visible. Run3D returns when every block has completed.
// A panic inside fn is re-raised on the calling goroutine as a *PanicError.
func Run3D(nbi, nbj, nbk, workers int, fn func(bi, bj, bk int)) {
	if err := Run3DContext(context.Background(), nbi, nbj, nbk, workers, fn); err != nil {
		// A background context never cancels, so the only possible errors
		// are a contained panic and a watchdog stall; surface them where
		// the caller can recover them.
		panic(err)
	}
}

// Run2D executes fn for every block of an nbi×nbj grid in wavefront order;
// see Run3D for the contract.
func Run2D(nbi, nbj, workers int, fn func(bi, bj int)) {
	Run3D(nbi, nbj, 1, workers, func(bi, bj, _ int) { fn(bi, bj) })
}

// Run3DContext is Run3D with cooperative cancellation, panic containment,
// and a stall watchdog. Up to workers-1 helpers are recruited from the
// shared pool (when the pool is saturated the run proceeds with fewer,
// down to the sequential fill). Workers check the context before claiming
// each block; when it is cancelled the run drains (in-flight blocks
// finish, ready ones are abandoned) and the wrapped context error is
// returned. A panic inside fn cancels the remaining schedule and is
// returned as a *PanicError. A multi-worker run that retires no block for
// a whole stall budget (SetStallBudget, clamped to the context deadline)
// is cancelled and returned as a *StallError matching ErrStalled; healthy
// workers detach on the cancel, while a truly wedged one is abandoned
// mid-block rather than hanging the caller. On every other path all
// helpers have detached from the run by the time Run3DContext returns.
func Run3DContext(ctx context.Context, nbi, nbj, nbk, workers int, fn func(bi, bj, bk int)) error {
	total := nbi * nbj * nbk
	if total <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > total {
		workers = total
	}
	if workers > 1 {
		ran, err := runSteal(ctx, nbi, nbj, nbk, workers, fn)
		if err != nil {
			return err
		}
		if ran {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("wavefront: run cancelled: %w", err)
			}
			return nil
		}
		// No helper was free: fall through to the sequential fill, which
		// offers the same per-block cancellation granularity.
	}
	return runSequential(ctx, nbi, nbj, nbk, fn)
}

// runSequential fills the grid in plain lexicographic order, which
// satisfies all dependencies with no synchronization. The context is
// polled per block, the same granularity the pooled path offers.
func runSequential(ctx context.Context, nbi, nbj, nbk int, fn func(bi, bj, bk int)) error {
	for bi := 0; bi < nbi; bi++ {
		for bj := 0; bj < nbj; bj++ {
			for bk := 0; bk < nbk; bk++ {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("wavefront: run cancelled: %w", err)
				}
				if pe := safeRun(fn, bi, bj, bk); pe != nil {
					return pe
				}
			}
		}
	}
	return nil
}

// Run2DContext is Run2D with the cancellation and panic-containment
// guarantees of Run3DContext.
func Run2DContext(ctx context.Context, nbi, nbj, workers int, fn func(bi, bj int)) error {
	return Run3DContext(ctx, nbi, nbj, 1, workers, func(bi, bj, _ int) { fn(bi, bj) })
}

// IsPanic reports whether err carries a contained worker panic.
func IsPanic(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

func safeRun(fn func(bi, bj, bk int), bi, bj, bk int) (pe *PanicError) {
	defer func() {
		if r := recover(); r != nil {
			pe = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	fn(bi, bj, bk)
	return nil
}

// Package prof wires the runtime/pprof CPU and heap profilers to
// command-line flags. It exists so every binary in cmd/ exposes the same
// -cpuprofile/-memprofile contract without duplicating the plumbing.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the two (possibly empty) file paths and
// returns a stop function that finalizes whatever was started: the CPU
// profile is stopped and flushed, and the heap profile is written after a
// GC so it reflects live objects. Errors inside stop are reported on
// stderr — by then the command's real output is already produced and a
// profile failure should not change its exit status.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "prof: close cpu profile: %v\n", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: create heap profile: %v\n", err)
				return
			}
			runtime.GC() // materialize live-object statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "prof: write heap profile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "prof: close heap profile: %v\n", err)
			}
		}
	}, nil
}

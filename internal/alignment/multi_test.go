package alignment

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/scoring"
	"repro/internal/seq"
)

// randomMulti builds a structurally valid random Multi: random non-zero
// column masks first, then sequences sized to the per-row consumption
// counts.
func randomMulti(rng *rand.Rand, nRows, nCols int) *Multi {
	letters := seq.DNA.Letters()
	cols := make([]Mask, nCols)
	counts := make([]int, nRows)
	limit := Mask(1)<<uint(nRows) - 1
	for c := range cols {
		m := Mask(rng.Uint64()) & limit
		if m == 0 {
			m = 1 << uint(rng.Intn(nRows))
		}
		cols[c] = m
		for i := 0; i < nRows; i++ {
			if m.Consumes(i) {
				counts[i]++
			}
		}
	}
	seqs := make([]*seq.Sequence, nRows)
	for i := range seqs {
		res := make([]byte, counts[i])
		for j := range res {
			res[j] = letters[rng.Intn(len(letters))]
		}
		seqs[i] = seq.MustNew(fmt.Sprintf("s%d", i), string(res), seq.DNA)
	}
	return &Multi{Seqs: seqs, Cols: cols}
}

// legacyRows is the pre-Multi three-row renderer, kept verbatim as the
// reference the thin wrapper must match byte for byte.
func legacyRows(a *Alignment) (ra, rb, rc string) {
	bufA := make([]byte, 0, len(a.Moves))
	bufB := make([]byte, 0, len(a.Moves))
	bufC := make([]byte, 0, len(a.Moves))
	i, j, k := 0, 0, 0
	for _, m := range a.Moves {
		if m&ConsumeA != 0 {
			bufA = append(bufA, a.Triple.A.At(i))
			i++
		} else {
			bufA = append(bufA, '-')
		}
		if m&ConsumeB != 0 {
			bufB = append(bufB, a.Triple.B.At(j))
			j++
		} else {
			bufB = append(bufB, '-')
		}
		if m&ConsumeC != 0 {
			bufC = append(bufC, a.Triple.C.At(k))
			k++
		} else {
			bufC = append(bufC, '-')
		}
	}
	return string(bufA), string(bufB), string(bufC)
}

// legacyFormat is the pre-Multi three-row Format, kept verbatim as the
// byte-identical reference for the wrapper.
func legacyFormat(a *Alignment, w *strings.Builder, width int) {
	if width <= 0 {
		width = 60
	}
	ra, rb, rc := legacyRows(a)
	cols := a.columnCodes()
	marks := make([]byte, len(cols))
	for i, col := range cols {
		marks[i] = conservationMark(col)
	}
	nameW := 0
	for _, n := range []string{a.Triple.A.Name(), a.Triple.B.Name(), a.Triple.C.Name()} {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	if nameW < 4 {
		nameW = 4
	}
	for lo := 0; lo < len(ra) || lo == 0 && len(ra) == 0; lo += width {
		hi := lo + width
		if hi > len(ra) {
			hi = len(ra)
		}
		rows := []struct{ name, body string }{
			{a.Triple.A.Name(), ra[lo:hi]},
			{a.Triple.B.Name(), rb[lo:hi]},
			{a.Triple.C.Name(), rc[lo:hi]},
			{"", string(marks[lo:hi])},
		}
		for _, r := range rows {
			fmt.Fprintf(w, "%-*s  %s\n", nameW, r.name, r.body)
		}
		if hi < len(ra) {
			fmt.Fprintln(w)
		}
		if len(ra) == 0 {
			break
		}
	}
}

// randomTriple3 builds a random valid three-row Alignment.
func randomTriple3(rng *rand.Rand, nCols int) *Alignment {
	m := randomMulti(rng, 3, nCols)
	a, err := m.ToAlignment()
	if err != nil {
		panic(err)
	}
	return a
}

func TestWrapperRowsAndFormatByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a := randomTriple3(rng, rng.Intn(150))
		ra, rb, rc := a.Rows()
		lra, lrb, lrc := legacyRows(a)
		if ra != lra || rb != lrb || rc != lrc {
			t.Fatalf("trial %d: wrapper Rows diverged from legacy layout", trial)
		}
		for _, width := range []int{0, 1, 7, 60, 1000} {
			var legacy strings.Builder
			legacyFormat(a, &legacy, width)
			var now strings.Builder
			if err := a.Format(&now, width); err != nil {
				t.Fatalf("trial %d: Format: %v", trial, err)
			}
			if now.String() != legacy.String() {
				t.Fatalf("trial %d width %d: wrapper Format diverged:\n--- legacy\n%s\n--- multi\n%s",
					trial, width, legacy.String(), now.String())
			}
		}
	}
}

func TestWrapperScoresMatchLegacyObjectives(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sch := scoring.DNADefault()
	aff, err := sch.WithGaps(-5, -1)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		a := randomTriple3(rng, 1+rng.Intn(80))
		// Legacy linear objective: SPColumn summed per column.
		var want int32
		for _, col := range a.columnCodes() {
			want += int32(sch.SPColumn(col[0], col[1], col[2]))
		}
		if got := int32(a.SPScore(sch)); got != want {
			t.Fatalf("trial %d: SPScore=%d, legacy SPColumn sum=%d", trial, got, want)
		}
		if got, want := a.SPScoreAffine(aff), a.Multi().SPScoreAffine(aff); got != want {
			t.Fatalf("trial %d: SPScoreAffine wrapper %d != multi %d", trial, got, want)
		}
	}
}

func TestMultiValidateCatchesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMulti(rng, 4, 30)
	if err := m.Validate(); err != nil {
		t.Fatalf("valid multi rejected: %v", err)
	}
	allGap := &Multi{Seqs: m.Seqs, Cols: append(append([]Mask(nil), m.Cols...), 0)}
	if err := allGap.Validate(); err == nil {
		t.Fatal("all-gap column accepted")
	}
	overflow := &Multi{Seqs: m.Seqs, Cols: append(append([]Mask(nil), m.Cols...), 1<<63)}
	if err := overflow.Validate(); err == nil {
		t.Fatal("out-of-range row bit accepted")
	}
	short := &Multi{Seqs: m.Seqs, Cols: m.Cols[:len(m.Cols)-1]}
	if err := short.Validate(); err == nil {
		t.Fatal("under-consumption accepted")
	}
	tooMany := &Multi{Seqs: make([]*seq.Sequence, MaxRows+1)}
	if err := tooMany.Validate(); err == nil {
		t.Fatalf("%d rows accepted", MaxRows+1)
	}
}

func TestMultiRoundTripAndReorder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(7)
		m := randomMulti(rng, n, 1+rng.Intn(60))
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rows := m.RowStrings()
		if len(rows) != n {
			t.Fatalf("trial %d: %d rows rendered for %d sequences", trial, len(rows), n)
		}
		for i, r := range rows {
			if len(r) != m.Columns() {
				t.Fatalf("trial %d: row %d has %d columns, want %d", trial, i, len(r), m.Columns())
			}
		}
		perm := rng.Perm(n)
		re, err := m.Reorder(perm)
		if err != nil {
			t.Fatalf("trial %d: Reorder: %v", trial, err)
		}
		if err := re.Validate(); err != nil {
			t.Fatalf("trial %d: reordered multi invalid: %v", trial, err)
		}
		reRows := re.RowStrings()
		for i, p := range perm {
			if reRows[i] != rows[p] {
				t.Fatalf("trial %d: reordered row %d != original row %d", trial, i, p)
			}
		}
		if n == 3 {
			a, err := m.ToAlignment()
			if err != nil {
				t.Fatalf("trial %d: ToAlignment: %v", trial, err)
			}
			back := FromAlignment(a)
			if len(back.Cols) != len(m.Cols) {
				t.Fatalf("trial %d: round trip changed column count", trial)
			}
			for ci := range m.Cols {
				if back.Cols[ci] != m.Cols[ci] {
					t.Fatalf("trial %d: round trip changed column %d", trial, ci)
				}
			}
		}
		cons := m.ConsensusSeq("c")
		if cons.Len() != m.Columns() {
			t.Fatalf("trial %d: consensus has %d residues for %d columns", trial, cons.Len(), m.Columns())
		}
	}
}

func TestMultiReorderRejectsBadPermutations(t *testing.T) {
	m := randomMulti(rand.New(rand.NewSource(1)), 3, 10)
	for _, perm := range [][]int{{0, 1}, {0, 0, 1}, {0, 1, 3}, {-1, 0, 1}} {
		if _, err := m.Reorder(perm); err == nil {
			t.Fatalf("permutation %v accepted", perm)
		}
	}
}

func TestWriteAlignedFASTAMultiMatchesTripleWriter(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomTriple3(rng, 70)
	var legacy, multi strings.Builder
	if err := WriteAlignedFASTA(&legacy, a, 60); err != nil {
		t.Fatal(err)
	}
	if err := WriteAlignedFASTAMulti(&multi, a.Multi(), 60); err != nil {
		t.Fatal(err)
	}
	if legacy.String() != multi.String() {
		t.Fatalf("N-row FASTA writer diverged from the triple writer:\n%s\nvs\n%s", legacy.String(), multi.String())
	}
}

// FuzzMultiColumnInvariants drives random mask streams through the Multi
// construction path and checks the column invariants the merge layer relies
// on: equal row lengths, no all-gap columns, and consumption matching the
// sequences exactly.
func FuzzMultiColumnInvariants(f *testing.F) {
	f.Add(uint8(3), []byte{1, 2, 4, 7})
	f.Add(uint8(5), []byte{31, 1, 16, 9, 2})
	f.Add(uint8(1), []byte{})
	f.Fuzz(func(t *testing.T, nRows uint8, maskBytes []byte) {
		n := int(nRows%8) + 1
		letters := seq.DNA.Letters()
		limit := Mask(1)<<uint(n) - 1
		cols := make([]Mask, 0, len(maskBytes))
		counts := make([]int, n)
		for _, b := range maskBytes {
			m := Mask(b) & limit
			if m == 0 {
				continue
			}
			cols = append(cols, m)
			for i := 0; i < n; i++ {
				if m.Consumes(i) {
					counts[i]++
				}
			}
		}
		seqs := make([]*seq.Sequence, n)
		for i := range seqs {
			res := make([]byte, counts[i])
			for j := range res {
				res[j] = letters[(i+j)%len(letters)]
			}
			seqs[i] = seq.MustNew(fmt.Sprintf("s%d", i), string(res), seq.DNA)
		}
		m := &Multi{Seqs: seqs, Cols: cols}
		if err := m.Validate(); err != nil {
			t.Fatalf("constructed multi invalid: %v", err)
		}
		rows := m.RowStrings()
		for i, r := range rows {
			if len(r) != len(cols) {
				t.Fatalf("row %d has %d columns, want %d", i, len(r), len(cols))
			}
		}
		for c := 0; c < len(cols); c++ {
			all := true
			for i := range rows {
				if rows[i][c] != '-' {
					all = false
				}
			}
			if all {
				t.Fatalf("column %d rendered all gaps", c)
			}
		}
		if got := m.ConsensusSeq("c").Len(); got != len(cols) {
			t.Fatalf("consensus %d residues for %d columns", got, len(cols))
		}
	})
}

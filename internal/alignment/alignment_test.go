package alignment

import (
	"strings"
	"testing"

	"repro/internal/scoring"
	"repro/internal/seq"
)

func triple(t *testing.T, a, b, c string) seq.Triple {
	t.Helper()
	return seq.Triple{
		A: seq.MustNew("A", a, seq.DNA),
		B: seq.MustNew("B", b, seq.DNA),
		C: seq.MustNew("C", c, seq.DNA),
	}
}

func TestMoveString(t *testing.T) {
	cases := []struct {
		m    Move
		want string
	}{
		{MoveXXX, "XXX"}, {MoveXGG, "XGG"}, {MoveGXG, "GXG"},
		{MoveGGX, "GGX"}, {MoveXXG, "XXG"}, {MoveXGX, "XGX"}, {MoveGXX, "GXX"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("Move(%d).String() = %q, want %q", c.m, got, c.want)
		}
	}
}

func TestMoveValid(t *testing.T) {
	if Move(0).Valid() {
		t.Error("all-gap move reported valid")
	}
	if Move(8).Valid() {
		t.Error("move 8 reported valid")
	}
	for m := Move(1); m <= 7; m++ {
		if !m.Valid() {
			t.Errorf("move %d reported invalid", m)
		}
	}
}

func TestRowsAndValidate(t *testing.T) {
	a := &Alignment{
		Triple: triple(t, "AC", "AG", "A"),
		Moves:  []Move{MoveXXX, MoveXXG},
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	ra, rb, rc := a.Rows()
	if ra != "AC" || rb != "AG" || rc != "A-" {
		t.Fatalf("Rows = %q %q %q", ra, rb, rc)
	}
}

func TestValidateCatchesBadConsumption(t *testing.T) {
	a := &Alignment{
		Triple: triple(t, "AC", "AG", "A"),
		Moves:  []Move{MoveXXX}, // consumes only 1 of A and B
	}
	if err := a.Validate(); err == nil {
		t.Fatal("under-consumption accepted")
	}
	b := &Alignment{
		Triple: triple(t, "A", "A", "A"),
		Moves:  []Move{MoveXXX, Move(0)},
	}
	if err := b.Validate(); err == nil {
		t.Fatal("all-gap column accepted")
	}
}

func TestSPScore(t *testing.T) {
	sch := scoring.DNADefault()
	// Columns: (A,A,A) = 6; (C,G,-) = -1 -2 -2 = -5.
	a := &Alignment{
		Triple: triple(t, "AC", "AG", "A"),
		Moves:  []Move{MoveXXX, MoveXXG},
	}
	if got := a.SPScore(sch); got != 1 {
		t.Fatalf("SPScore = %d, want 1", got)
	}
}

func TestSPScoreAffineEqualsLinearWhenOpenZero(t *testing.T) {
	sch := scoring.DNADefault() // gapOpen == 0
	a := &Alignment{
		Triple: triple(t, "ACGT", "AG", "ACG"),
		Moves:  []Move{MoveXXX, MoveXGX, MoveXXX, MoveXGG},
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if lin, aff := a.SPScore(sch), a.SPScoreAffine(sch); lin != aff {
		t.Fatalf("open=0: linear %d != affine %d", lin, aff)
	}
}

func TestSPScoreAffineCountsRuns(t *testing.T) {
	sch, err := scoring.DNADefault().WithGaps(-5, -1)
	if err != nil {
		t.Fatal(err)
	}
	// A = "AAAA", B = "AA", C = "AAAA" aligned with B gapped in the middle
	// two columns: B row is A--A.
	a := &Alignment{
		Triple: triple(t, "AAAA", "AA", "AAAA"),
		Moves:  []Move{MoveXXX, MoveXGX, MoveXGX, MoveXXX},
	}
	// Pairs: A/B: 2 subs (2*2) + gap run len 2 (-5 -2) = -3
	//        A/C: 4 subs = 8
	//        B/C: same as A/B = -3
	want := int32(-3 + 8 - 3)
	if got := a.SPScoreAffine(sch); got != want {
		t.Fatalf("SPScoreAffine = %d, want %d", got, want)
	}
}

func TestSPScoreAffineGapRunsSpanGapGapColumns(t *testing.T) {
	sch, err := scoring.DNADefault().WithGaps(-5, -1)
	if err != nil {
		t.Fatal(err)
	}
	// B/C pair sees columns: (A,A) sub, then (-, -) removed, then (-,A)... construct:
	// Moves: XXX, XGG, GXX — B row: X - X ; C row: X - X.
	// For pair B/C the middle column is gap-gap and must not split runs.
	a := &Alignment{
		Triple: triple(t, "AAA", "AA", "AA"),
		Moves:  []Move{MoveXXX, MoveXGG, MoveGXX},
	}
	// Pair B/C induced alignment: (A,A), (A,A) — no gaps at all.
	// Pair A/B: (A,A), (A,-), (-,A): two single gaps, each opens.
	// Pair A/C: same as A/B.
	// subs: B/C 2 matches = 4; A/B 1 match + two gaps = 2 -1-5 -1-5 = -10; A/C same.
	want := int32(4 - 10 - 10)
	if got := a.SPScoreAffine(sch); got != want {
		t.Fatalf("SPScoreAffine = %d, want %d", got, want)
	}
}

func TestComputeStats(t *testing.T) {
	a := &Alignment{
		Triple: triple(t, "AC", "AG", "A"),
		Moves:  []Move{MoveXXX, MoveXXG},
	}
	st := a.ComputeStats()
	if st.Columns != 2 || st.FullColumns != 1 || st.GapColumns != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Identity3 != 1.0 {
		t.Errorf("Identity3 = %v, want 1.0 (the full column is AAA)", st.Identity3)
	}
	// Pairs: col0 has 3 residue pairs all identical; col1 has 1 pair (A/B
	// residues C,G) not identical: 3/4.
	if st.PairIdentity != 0.75 {
		t.Errorf("PairIdentity = %v, want 0.75", st.PairIdentity)
	}
	if st.GapFraction != 1.0/6.0 {
		t.Errorf("GapFraction = %v, want 1/6", st.GapFraction)
	}
}

func TestFormat(t *testing.T) {
	a := &Alignment{
		Triple: triple(t, "ACGTACGT", "ACGTACGA", "ACTTACG"),
		Moves: []Move{
			MoveXXX, MoveXXX, MoveXXX, MoveXXX, MoveXXX, MoveXXX, MoveXXX, MoveXXG,
		},
	}
	var b strings.Builder
	if err := a.Format(&b, 4); err != nil {
		t.Fatalf("Format: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "A     ACGT") {
		t.Errorf("missing wrapped first block:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("missing conservation marks:\n%s", out)
	}
	// Two blocks of 4 columns separated by a blank line.
	if got := strings.Count(out, "\n\n"); got != 1 {
		t.Errorf("expected 1 block separator, got %d:\n%s", got, out)
	}
}

func TestFormatEmptyAlignment(t *testing.T) {
	a := &Alignment{Triple: triple(t, "", "", ""), Moves: nil}
	var b strings.Builder
	if err := a.Format(&b, 10); err != nil {
		t.Fatalf("Format empty: %v", err)
	}
	if !strings.Contains(b.String(), "A") {
		t.Errorf("empty alignment should still print names:\n%q", b.String())
	}
}

func TestConservationMark(t *testing.T) {
	cases := []struct {
		col  [3]int8
		want byte
	}{
		{[3]int8{0, 0, 0}, '*'},
		{[3]int8{0, 0, 1}, ':'},
		{[3]int8{0, 1, 2}, ' '},
		{[3]int8{0, 0, -1}, ':'},
		{[3]int8{0, -1, -1}, ' '},
		{[3]int8{-1, 2, 2}, ':'},
	}
	for _, c := range cases {
		if got := conservationMark(c.col); got != c.want {
			t.Errorf("conservationMark(%v) = %q, want %q", c.col, got, c.want)
		}
	}
}

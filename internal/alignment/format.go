package alignment

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/seq"
)

// WriteClustal writes the alignment in CLUSTAL-style format: a header line,
// then 60-column blocks of name-prefixed rows with cumulative residue
// counts and a conservation line.
func WriteClustal(w io.Writer, a *Alignment) error {
	if err := a.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "CLUSTAL-like multiple sequence alignment (repro three-sequence aligner)\n\n")
	ra, rb, rc := a.Rows()
	cols := a.columnCodes()
	marks := make([]byte, len(cols))
	for i, col := range cols {
		marks[i] = conservationMark(col)
	}
	names := []string{a.Triple.A.Name(), a.Triple.B.Name(), a.Triple.C.Name()}
	nameW := 0
	for _, n := range names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	if nameW < 8 {
		nameW = 8
	}
	rows := []string{ra, rb, rc}
	counts := [3]int{}
	const width = 60
	for lo := 0; lo < len(ra); lo += width {
		hi := lo + width
		if hi > len(ra) {
			hi = len(ra)
		}
		for r := 0; r < 3; r++ {
			chunk := rows[r][lo:hi]
			counts[r] += len(chunk) - strings.Count(chunk, "-")
			fmt.Fprintf(bw, "%-*s %s %d\n", nameW, names[r], chunk, counts[r])
		}
		fmt.Fprintf(bw, "%-*s %s\n\n", nameW, "", string(marks[lo:hi]))
	}
	return bw.Flush()
}

// WriteAlignedFASTA writes the three gapped rows as FASTA records, the
// interchange format most MSA tools accept.
func WriteAlignedFASTA(w io.Writer, a *Alignment, width int) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if width <= 0 {
		width = 60
	}
	bw := bufio.NewWriter(w)
	ra, rb, rc := a.Rows()
	for i, rec := range []struct{ name, row string }{
		{a.Triple.A.Name(), ra},
		{a.Triple.B.Name(), rb},
		{a.Triple.C.Name(), rc},
	} {
		_ = i
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.name); err != nil {
			return err
		}
		for lo := 0; lo < len(rec.row) || lo == 0 && rec.row == ""; lo += width {
			hi := lo + width
			if hi > len(rec.row) {
				hi = len(rec.row)
			}
			fmt.Fprintln(bw, rec.row[lo:hi])
			if rec.row == "" {
				break
			}
		}
	}
	return bw.Flush()
}

// ParseAlignedFASTA reads three equal-length gapped FASTA rows and
// reconstructs the Alignment (sequences and move list). The score is not
// stored in the format; re-score with SPScore against a scheme.
func ParseAlignedFASTA(r io.Reader, alpha *seq.Alphabet) (*Alignment, error) {
	type record struct {
		name string
		row  []byte
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var recs []record
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, ";"):
		case strings.HasPrefix(line, ">"):
			name := fmt.Sprintf("seq%d", len(recs)+1)
			if fields := strings.Fields(line[1:]); len(fields) > 0 {
				name = fields[0]
			}
			recs = append(recs, record{name: name})
		default:
			if len(recs) == 0 {
				return nil, fmt.Errorf("alignment: row data before any '>' header")
			}
			recs[len(recs)-1].row = append(recs[len(recs)-1].row, line...)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("alignment: read: %w", err)
	}
	if len(recs) != 3 {
		return nil, fmt.Errorf("alignment: need exactly 3 aligned records, got %d", len(recs))
	}
	cols := len(recs[0].row)
	if len(recs[1].row) != cols || len(recs[2].row) != cols {
		return nil, fmt.Errorf("alignment: rows have unequal lengths %d/%d/%d",
			len(recs[0].row), len(recs[1].row), len(recs[2].row))
	}

	degap := func(row []byte) []byte {
		out := make([]byte, 0, len(row))
		for _, c := range row {
			if c != '-' && c != '.' {
				out = append(out, c)
			}
		}
		return out
	}
	sa, err := seq.New(recs[0].name, degap(recs[0].row), alpha)
	if err != nil {
		return nil, err
	}
	sb, err := seq.New(recs[1].name, degap(recs[1].row), alpha)
	if err != nil {
		return nil, err
	}
	scq, err := seq.New(recs[2].name, degap(recs[2].row), alpha)
	if err != nil {
		return nil, err
	}

	moves := make([]Move, cols)
	for i := 0; i < cols; i++ {
		var m Move
		if recs[0].row[i] != '-' && recs[0].row[i] != '.' {
			m |= ConsumeA
		}
		if recs[1].row[i] != '-' && recs[1].row[i] != '.' {
			m |= ConsumeB
		}
		if recs[2].row[i] != '-' && recs[2].row[i] != '.' {
			m |= ConsumeC
		}
		if !m.Valid() {
			return nil, fmt.Errorf("alignment: column %d is all gaps", i+1)
		}
		moves[i] = m
	}
	aln := &Alignment{Triple: seq.Triple{A: sa, B: sb, C: scq}, Moves: moves}
	if err := aln.Validate(); err != nil {
		return nil, err
	}
	return aln, nil
}

package alignment

import (
	"strings"
	"testing"

	"repro/internal/scoring"
	"repro/internal/seq"
)

func sampleAlignment(t *testing.T) *Alignment {
	t.Helper()
	a := &Alignment{
		Triple: triple(t, "ACGTACGTACGT", "ACGACGTACGTA", "ACGTACGACGTA"),
		Moves: []Move{
			MoveXXX, MoveXXX, MoveXXX, MoveXGX, MoveXXX, MoveXXX, MoveXXX,
			MoveXXG, MoveXXX, MoveXXX, MoveXXX, MoveXXX, MoveGXX,
		},
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("sample invalid: %v", err)
	}
	return a
}

func TestWriteClustal(t *testing.T) {
	a := sampleAlignment(t)
	var b strings.Builder
	if err := WriteClustal(&b, a); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "CLUSTAL") {
		t.Error("missing CLUSTAL header")
	}
	// Cumulative residue counts at line ends: each row consumes 12.
	if got := strings.Count(out, " 12\n"); got != 3 {
		t.Errorf("want 3 cumulative counts of 12, got %d:\n%s", got, out)
	}
	for _, name := range []string{"A ", "B ", "C "} {
		if !strings.Contains(out, name) {
			t.Errorf("missing row for %q", name)
		}
	}
}

func TestWriteClustalRejectsInvalid(t *testing.T) {
	bad := &Alignment{Triple: triple(t, "AC", "AC", "AC"), Moves: []Move{MoveXXX}}
	if err := WriteClustal(&strings.Builder{}, bad); err == nil {
		t.Fatal("invalid alignment written")
	}
}

func TestAlignedFASTARoundTrip(t *testing.T) {
	a := sampleAlignment(t)
	var b strings.Builder
	if err := WriteAlignedFASTA(&b, a, 7); err != nil {
		t.Fatal(err)
	}
	back, err := ParseAlignedFASTA(strings.NewReader(b.String()), seq.DNA)
	if err != nil {
		t.Fatalf("parse: %v\ninput:\n%s", err, b.String())
	}
	if len(back.Moves) != len(a.Moves) {
		t.Fatalf("round trip: %d moves, want %d", len(back.Moves), len(a.Moves))
	}
	for i := range a.Moves {
		if back.Moves[i] != a.Moves[i] {
			t.Fatalf("move %d: %s != %s", i, back.Moves[i], a.Moves[i])
		}
	}
	if !back.Triple.A.Equal(a.Triple.A) || !back.Triple.B.Equal(a.Triple.B) || !back.Triple.C.Equal(a.Triple.C) {
		t.Fatal("round trip changed sequences")
	}
	// Scores recompute identically.
	sch := scoring.DNADefault()
	if back.SPScore(sch) != a.SPScore(sch) {
		t.Fatalf("round trip changed SP score: %d != %d", back.SPScore(sch), a.SPScore(sch))
	}
}

func TestParseAlignedFASTAErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"two records", ">a\nAC\n>b\nAC\n"},
		{"unequal rows", ">a\nACG\n>b\nAC\n>c\nACG\n"},
		{"all-gap column", ">a\nA-C\n>b\nA-C\n>c\nA-C\n"},
		{"bad residue", ">a\nAXC\n>b\nAAC\n>c\nAAC\n"},
		{"data before header", "ACGT\n>a\nAC\n"},
		{"empty", ""},
	}
	for _, c := range cases {
		if _, err := ParseAlignedFASTA(strings.NewReader(c.in), seq.DNA); err == nil {
			t.Errorf("%s: error expected", c.name)
		}
	}
}

func TestParseAlignedFASTADotGaps(t *testing.T) {
	// '.' is accepted as a gap character on input.
	in := ">a\nAC.T\n>b\nACGT\n>c\nAC-T\n"
	aln, err := ParseAlignedFASTA(strings.NewReader(in), seq.DNA)
	if err != nil {
		t.Fatal(err)
	}
	if aln.Triple.A.String() != "ACT" || aln.Triple.C.String() != "ACT" {
		t.Fatalf("degapped rows wrong: %q %q", aln.Triple.A.String(), aln.Triple.C.String())
	}
	if aln.Moves[2] != MoveGXG {
		t.Fatalf("column 3 move = %s, want GXG", aln.Moves[2])
	}
}

func TestWriteAlignedFASTAEmpty(t *testing.T) {
	a := &Alignment{Triple: triple(t, "", "", ""), Moves: nil}
	var b strings.Builder
	if err := WriteAlignedFASTA(&b, a, 10); err != nil {
		t.Fatal(err)
	}
	if strings.Count(b.String(), ">") != 3 {
		t.Fatalf("expected 3 headers:\n%s", b.String())
	}
}

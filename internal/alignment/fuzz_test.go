package alignment

import (
	"strings"
	"testing"

	"repro/internal/scoring"
	"repro/internal/seq"
)

// FuzzParseAlignedFASTA checks the aligned-FASTA parser never panics, and
// that anything it accepts is a structurally valid alignment that survives
// a write/parse round trip.
func FuzzParseAlignedFASTA(f *testing.F) {
	f.Add(">a\nAC-T\n>b\nACGT\n>c\nA--T\n")
	f.Add(">a\nAC\n>b\nAC\n")
	f.Add(">a\n--\n>b\nAC\n>c\nAC\n")
	f.Add("")
	f.Add(">a\nA.C\n>b\nAGC\n>c\nA-C\n")
	f.Fuzz(func(t *testing.T, in string) {
		aln, err := ParseAlignedFASTA(strings.NewReader(in), seq.DNA)
		if err != nil {
			return
		}
		if err := aln.Validate(); err != nil {
			t.Fatalf("parser accepted invalid alignment: %v\ninput: %q", err, in)
		}
		var buf strings.Builder
		if err := WriteAlignedFASTA(&buf, aln, 60); err != nil {
			t.Fatalf("write after parse: %v", err)
		}
		back, err := ParseAlignedFASTA(strings.NewReader(buf.String()), seq.DNA)
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		sch := scoring.DNADefault()
		if back.SPScore(sch) != aln.SPScore(sch) {
			t.Fatalf("round trip changed score: %d -> %d", aln.SPScore(sch), back.SPScore(sch))
		}
	})
}

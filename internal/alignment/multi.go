package alignment

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// MaxRows is the largest row count a Multi supports: one bit per row in a
// column Mask.
const MaxRows = 64

// Mask is one N-row alignment column: bit i set means row i consumes a
// residue in that column. A valid column is never zero (no all-gap columns).
type Mask uint64

// Consumes reports whether row i consumes a residue under m.
func (m Mask) Consumes(i int) bool { return m&(1<<uint(i)) != 0 }

// Multi is a scored N-row multiple sequence alignment: the generalization
// of the three-row Alignment this package grew from. Row i of the alignment
// is Seqs[i] gapped according to the column masks. The three-row Alignment
// is a thin wrapper over this layout (see Alignment.Multi and FromMulti).
type Multi struct {
	Seqs []*seq.Sequence
	Cols []Mask
	// Score is the objective value reported by the algorithm that produced
	// the alignment (linear SP, or natural affine SP). SPScore and
	// SPScoreAffine recompute the two objectives independently.
	Score mat.Score
}

// NewLeaf wraps a single sequence as a one-row profile: every column
// consumes, which is the identity alignment progressive merging starts
// from.
func NewLeaf(s *seq.Sequence) *Multi {
	cols := make([]Mask, s.Len())
	for i := range cols {
		cols[i] = 1
	}
	return &Multi{Seqs: []*seq.Sequence{s}, Cols: cols}
}

// FromAlignment converts a three-row Alignment into the N-row layout. The
// move bits carry over directly: ConsumeA/B/C are bits 0/1/2.
func FromAlignment(a *Alignment) *Multi {
	cols := make([]Mask, len(a.Moves))
	for i, mv := range a.Moves {
		cols[i] = Mask(mv)
	}
	return &Multi{
		Seqs:  []*seq.Sequence{a.Triple.A, a.Triple.B, a.Triple.C},
		Cols:  cols,
		Score: a.Score,
	}
}

// ToAlignment converts a three-row Multi back into the legacy Alignment
// layout. It errors for any other row count.
func (m *Multi) ToAlignment() (*Alignment, error) {
	if len(m.Seqs) != 3 {
		return nil, fmt.Errorf("alignment: ToAlignment needs 3 rows, have %d", len(m.Seqs))
	}
	moves := make([]Move, len(m.Cols))
	for i, c := range m.Cols {
		moves[i] = Move(c)
	}
	return &Alignment{
		Triple: seq.Triple{A: m.Seqs[0], B: m.Seqs[1], C: m.Seqs[2]},
		Moves:  moves,
		Score:  m.Score,
	}, nil
}

// NumRows returns the number of aligned sequences.
func (m *Multi) NumRows() int { return len(m.Seqs) }

// Columns returns the number of alignment columns.
func (m *Multi) Columns() int { return len(m.Cols) }

// Names returns the sequence names in row order.
func (m *Multi) Names() []string {
	out := make([]string, len(m.Seqs))
	for i, s := range m.Seqs {
		out[i] = s.Name()
	}
	return out
}

// Validate checks structural integrity: a supported row count, no all-gap
// or out-of-range columns, and each row consuming exactly its sequence.
func (m *Multi) Validate() error {
	n := len(m.Seqs)
	if n < 1 || n > MaxRows {
		return fmt.Errorf("alignment: multi has %d rows; want 1..%d", n, MaxRows)
	}
	alpha := m.Seqs[0].Alphabet()
	for i, s := range m.Seqs {
		if s == nil {
			return fmt.Errorf("alignment: multi row %d is nil", i)
		}
		if s.Alphabet() != alpha {
			return fmt.Errorf("alignment: multi mixes alphabets %s/%s",
				alpha.Name(), s.Alphabet().Name())
		}
	}
	counts := make([]int, n)
	limit := Mask(1)<<uint(n) - 1
	if n == MaxRows {
		limit = ^Mask(0)
	}
	for ci, c := range m.Cols {
		if c == 0 {
			return fmt.Errorf("alignment: multi column %d is all gaps", ci)
		}
		if c&^limit != 0 {
			return fmt.Errorf("alignment: multi column %d sets bits beyond row %d", ci, n-1)
		}
		for i := 0; i < n; i++ {
			if c.Consumes(i) {
				counts[i]++
			}
		}
	}
	for i, s := range m.Seqs {
		if counts[i] != s.Len() {
			return fmt.Errorf("alignment: multi row %d consumes %d residues, sequence %q has %d",
				i, counts[i], s.Name(), s.Len())
		}
	}
	return nil
}

// RowStrings renders the gapped rows; all have length Columns().
func (m *Multi) RowStrings() []string {
	n := len(m.Seqs)
	bufs := make([][]byte, n)
	for i := range bufs {
		bufs[i] = make([]byte, 0, len(m.Cols))
	}
	idx := make([]int, n)
	for _, c := range m.Cols {
		for i := 0; i < n; i++ {
			if c.Consumes(i) {
				bufs[i] = append(bufs[i], m.Seqs[i].At(idx[i]))
				idx[i]++
			} else {
				bufs[i] = append(bufs[i], '-')
			}
		}
	}
	out := make([]string, n)
	for i := range out {
		out[i] = string(bufs[i])
	}
	return out
}

// ColumnCodes iterates the alignment's columns as residue-code rows
// (scoring.Gap for gap positions). Each inner slice has NumRows entries.
func (m *Multi) ColumnCodes() [][]int8 {
	n := len(m.Seqs)
	codes := make([][]int8, n)
	for i, s := range m.Seqs {
		codes[i] = s.Codes()
	}
	idx := make([]int, n)
	out := make([][]int8, len(m.Cols))
	for ci, c := range m.Cols {
		col := make([]int8, n)
		for i := 0; i < n; i++ {
			if c.Consumes(i) {
				col[i] = codes[i][idx[i]]
				idx[i]++
			} else {
				col[i] = scoring.Gap
			}
		}
		out[ci] = col
	}
	return out
}

// SPScore recomputes the linear-gap sum-of-pairs score column by column
// over all row pairs, independent of the DP that produced the alignment.
func (m *Multi) SPScore(sch *scoring.Scheme) mat.Score {
	var total mat.Score
	n := len(m.Seqs)
	for _, col := range m.ColumnCodes() {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				total += sch.Pair(col[i], col[j])
			}
		}
	}
	return total
}

// SPScoreAffine recomputes the natural affine sum-of-pairs score: for each
// induced pairwise alignment (gap-gap columns removed), every maximal gap
// run pays GapOpen once plus GapExtend per column.
func (m *Multi) SPScoreAffine(sch *scoring.Scheme) mat.Score {
	cols := m.ColumnCodes()
	n := len(m.Seqs)
	var total mat.Score
	for p := 0; p < n; p++ {
		for q := p + 1; q < n; q++ {
			inGapX, inGapY := false, false
			for _, col := range cols {
				x, y := col[p], col[q]
				switch {
				case x >= 0 && y >= 0:
					total += sch.Sub(x, y)
					inGapX, inGapY = false, false
				case x >= 0 && y < 0:
					total += sch.GapExtend()
					if !inGapY {
						total += sch.GapOpen()
					}
					inGapX, inGapY = false, true
				case x < 0 && y >= 0:
					total += sch.GapExtend()
					if !inGapX {
						total += sch.GapOpen()
					}
					inGapX, inGapY = true, false
				default:
					// gap-gap column: removed from the induced pairwise
					// alignment; gap runs continue across it.
				}
			}
		}
	}
	return total
}

// SPScoreFor recomputes the scheme's own objective: the natural affine SP
// score for affine schemes, the linear SP score otherwise.
func (m *Multi) SPScoreFor(sch *scoring.Scheme) mat.Score {
	if sch.Affine() {
		return m.SPScoreAffine(sch)
	}
	return m.SPScore(sch)
}

// ConsensusSeq returns the profile's representative sequence for
// progressive merging: one residue per alignment column — the most frequent
// residue in the column (gaps do not vote; ties go to the lowest row with a
// winning residue). Every column contributes a position, so the consensus
// has exactly Columns() residues and merging the consensus back maps each
// consensus position onto one profile column ("once a gap, always a gap" at
// profile boundaries).
func (m *Multi) ConsensusSeq(name string) *seq.Sequence {
	alpha := m.Seqs[0].Alphabet()
	out := make([]byte, 0, len(m.Cols))
	for _, col := range m.ColumnCodes() {
		counts := make(map[int8]int, len(col))
		best, bestCount := scoring.Gap, 0
		for _, c := range col {
			if c < 0 {
				continue
			}
			counts[c]++
			if counts[c] > bestCount {
				best, bestCount = c, counts[c]
			}
		}
		out = append(out, alpha.Letter(best))
	}
	s, err := seq.New(name, out, alpha)
	if err != nil {
		// Unreachable: consensus letters come from the alphabet itself.
		panic(fmt.Sprintf("alignment: consensus of valid profile rejected: %v", err))
	}
	return s
}

// Reorder returns a new Multi whose row i is the receiver's row perm[i];
// perm must be a permutation of [0, NumRows). Progressive merging
// concatenates rows in guide-tree order; Reorder restores the caller's
// input order.
func (m *Multi) Reorder(perm []int) (*Multi, error) {
	n := len(m.Seqs)
	if len(perm) != n {
		return nil, fmt.Errorf("alignment: reorder permutation has %d entries for %d rows", len(perm), n)
	}
	seen := make([]bool, n)
	seqs := make([]*seq.Sequence, n)
	for i, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("alignment: reorder permutation entry %d (=%d) is out of range or repeated", i, p)
		}
		seen[p] = true
		seqs[i] = m.Seqs[p]
	}
	cols := make([]Mask, len(m.Cols))
	for ci, c := range m.Cols {
		var nc Mask
		for i, p := range perm {
			if c.Consumes(p) {
				nc |= 1 << uint(i)
			}
		}
		cols[ci] = nc
	}
	return &Multi{Seqs: seqs, Cols: cols, Score: m.Score}, nil
}

// conservationMarkN generalizes the three-row conservation annotation:
// '*' when every row carries the same residue, ':' when at least one pair
// of residues matches, ' ' otherwise.
func conservationMarkN(col []int8) byte {
	all := true
	var first int8 = scoring.Gap
	anyPair := false
	for i, c := range col {
		if c < 0 {
			all = false
			continue
		}
		if first < 0 {
			first = c
		} else if c != first {
			all = false
		}
		for j := 0; j < i; j++ {
			if col[j] >= 0 && col[j] == c {
				anyPair = true
			}
		}
	}
	switch {
	case all && first >= 0:
		return '*'
	case anyPair:
		return ':'
	default:
		return ' '
	}
}

// ConservationString returns the per-column annotation line used by Format.
func (m *Multi) ConservationString() string {
	cols := m.ColumnCodes()
	marks := make([]byte, len(cols))
	for i, col := range cols {
		marks[i] = conservationMarkN(col)
	}
	return string(marks)
}

// Format writes a block-wrapped, human-readable rendering with a
// conservation line, similar to CLUSTAL output. For three rows the output
// is byte-identical to the legacy Alignment.Format.
func (m *Multi) Format(w io.Writer, width int) error {
	if width <= 0 {
		width = 60
	}
	rows := m.RowStrings()
	marks := m.ConservationString()
	nameW := 0
	for _, s := range m.Seqs {
		if len(s.Name()) > nameW {
			nameW = len(s.Name())
		}
	}
	if nameW < 4 {
		nameW = 4
	}
	cols := len(m.Cols)
	for lo := 0; lo < cols || lo == 0 && cols == 0; lo += width {
		hi := lo + width
		if hi > cols {
			hi = cols
		}
		for i := range rows {
			if _, err := fmt.Fprintf(w, "%-*s  %s\n", nameW, m.Seqs[i].Name(), rows[i][lo:hi]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%-*s  %s\n", nameW, "", marks[lo:hi]); err != nil {
			return err
		}
		if hi < cols {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if cols == 0 {
			break
		}
	}
	return nil
}

// String renders the alignment with the default width.
func (m *Multi) String() string {
	var b strings.Builder
	_ = m.Format(&b, 60)
	return b.String()
}

// WriteAlignedFASTAMulti writes the gapped rows as FASTA records — the
// N-row generalization of WriteAlignedFASTA.
func WriteAlignedFASTAMulti(w io.Writer, m *Multi, width int) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if width <= 0 {
		width = 60
	}
	rows := m.RowStrings()
	for i, row := range rows {
		if _, err := fmt.Fprintf(w, ">%s\n", m.Seqs[i].Name()); err != nil {
			return err
		}
		for lo := 0; lo < len(row) || lo == 0 && row == ""; lo += width {
			hi := lo + width
			if hi > len(row) {
				hi = len(row)
			}
			if _, err := fmt.Fprintln(w, row[lo:hi]); err != nil {
				return err
			}
			if row == "" {
				break
			}
		}
	}
	return nil
}

// Package alignment defines the three-row alignment produced by the
// three-sequence aligners, along with validation, re-scoring, statistics,
// and text rendering.
//
// An alignment is a sequence of Moves. Each move is a bit mask saying which
// of the three sequences consume a residue in that column; at least one bit
// is always set, so a column is never all gaps.
package alignment

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/mat"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// Move is a 3-bit mask describing one alignment column.
type Move uint8

// Bit assignments for Move.
const (
	ConsumeA Move = 1 << iota
	ConsumeB
	ConsumeC
)

// The seven valid moves. The names give the consumption pattern in A, B, C
// order; X consumes a residue, G leaves a gap.
const (
	MoveXGG = ConsumeA
	MoveGXG = ConsumeB
	MoveXXG = ConsumeA | ConsumeB
	MoveGGX = ConsumeC
	MoveXGX = ConsumeA | ConsumeC
	MoveGXX = ConsumeB | ConsumeC
	MoveXXX = ConsumeA | ConsumeB | ConsumeC
)

// Valid reports whether m is one of the seven legal column masks.
func (m Move) Valid() bool { return m >= 1 && m <= 7 }

// String renders the move as a three-letter consumption pattern, e.g. "XG X"
// is written "XGX".
func (m Move) String() string {
	b := [3]byte{'G', 'G', 'G'}
	if m&ConsumeA != 0 {
		b[0] = 'X'
	}
	if m&ConsumeB != 0 {
		b[1] = 'X'
	}
	if m&ConsumeC != 0 {
		b[2] = 'X'
	}
	return string(b[:])
}

// Alignment is a scored three-sequence alignment.
type Alignment struct {
	Triple seq.Triple
	Moves  []Move
	// Score is the objective value reported by the algorithm that produced
	// the alignment (linear SP, or quasi-natural affine SP for the affine
	// aligner). SPScore recomputes the linear value independently.
	Score mat.Score
}

// Columns returns the number of alignment columns.
func (a *Alignment) Columns() int { return len(a.Moves) }

// Multi returns the alignment in the N-row layout. The move bits carry
// over directly (ConsumeA/B/C are column-mask bits 0/1/2), so the
// conversion is loss-free; the three-row API below is a thin wrapper over
// the Multi operations.
func (a *Alignment) Multi() *Multi { return FromAlignment(a) }

// Rows renders the three gapped rows. All rows have length Columns().
func (a *Alignment) Rows() (ra, rb, rc string) {
	rows := a.Multi().RowStrings()
	return rows[0], rows[1], rows[2]
}

// Validate checks structural integrity: every move is legal and the moves
// consume exactly the three input sequences.
func (a *Alignment) Validate() error {
	if err := a.Triple.Validate(); err != nil {
		return err
	}
	var na, nb, nc int
	for idx, m := range a.Moves {
		if !m.Valid() {
			return fmt.Errorf("alignment: column %d has invalid move %#b", idx, uint8(m))
		}
		if m&ConsumeA != 0 {
			na++
		}
		if m&ConsumeB != 0 {
			nb++
		}
		if m&ConsumeC != 0 {
			nc++
		}
	}
	if na != a.Triple.A.Len() || nb != a.Triple.B.Len() || nc != a.Triple.C.Len() {
		return fmt.Errorf("alignment: consumes %d/%d/%d residues, inputs have %d/%d/%d",
			na, nb, nc, a.Triple.A.Len(), a.Triple.B.Len(), a.Triple.C.Len())
	}
	return nil
}

// columnCodes iterates the alignment's columns as residue-code triples
// (scoring.Gap for gap positions).
func (a *Alignment) columnCodes() [][3]int8 {
	ca, cb, cc := a.Triple.A.Codes(), a.Triple.B.Codes(), a.Triple.C.Codes()
	out := make([][3]int8, 0, len(a.Moves))
	i, j, k := 0, 0, 0
	for _, m := range a.Moves {
		col := [3]int8{scoring.Gap, scoring.Gap, scoring.Gap}
		if m&ConsumeA != 0 {
			col[0] = ca[i]
			i++
		}
		if m&ConsumeB != 0 {
			col[1] = cb[j]
			j++
		}
		if m&ConsumeC != 0 {
			col[2] = cc[k]
			k++
		}
		out = append(out, col)
	}
	return out
}

// SPScore recomputes the linear-gap sum-of-pairs score column by column,
// independent of the DP that produced the alignment.
func (a *Alignment) SPScore(sch *scoring.Scheme) mat.Score {
	return a.Multi().SPScore(sch)
}

// SPScoreAffine recomputes the natural affine sum-of-pairs score: for each
// of the three induced pairwise alignments (gap-gap columns removed), every
// maximal gap run pays GapOpen once plus GapExtend per column. This is the
// "natural" gap count; the affine DP optimizes the quasi-natural variant,
// which never exceeds it.
func (a *Alignment) SPScoreAffine(sch *scoring.Scheme) mat.Score {
	return a.Multi().SPScoreAffine(sch)
}

// Stats summarizes alignment conservation.
type Stats struct {
	Columns      int     // total alignment columns
	FullColumns  int     // columns where all three sequences have residues
	Identity3    float64 // fraction of full columns with three identical residues
	PairIdentity float64 // mean pairwise identity over residue-residue pairs
	GapColumns   int     // columns containing at least one gap
	GapFraction  float64 // gaps over all cells (3·Columns)
}

// ComputeStats derives conservation statistics.
func (a *Alignment) ComputeStats() Stats {
	st := Stats{Columns: len(a.Moves)}
	var pairSame, pairTotal, gaps int
	for _, col := range a.columnCodes() {
		full := col[0] >= 0 && col[1] >= 0 && col[2] >= 0
		if full {
			st.FullColumns++
			if col[0] == col[1] && col[1] == col[2] {
				st.Identity3++
			}
		} else {
			st.GapColumns++
		}
		for _, pr := range [3][2]int{{0, 1}, {0, 2}, {1, 2}} {
			x, y := col[pr[0]], col[pr[1]]
			if x >= 0 && y >= 0 {
				pairTotal++
				if x == y {
					pairSame++
				}
			}
		}
		for _, c := range col {
			if c < 0 {
				gaps++
			}
		}
	}
	if st.FullColumns > 0 {
		st.Identity3 /= float64(st.FullColumns)
	}
	if pairTotal > 0 {
		st.PairIdentity = float64(pairSame) / float64(pairTotal)
	}
	if st.Columns > 0 {
		st.GapFraction = float64(gaps) / float64(3*st.Columns)
	}
	return st
}

// conservationMark returns the per-column annotation used by Format:
// '*' all three identical residues, ':' exactly two identical residues,
// ' ' otherwise.
func conservationMark(col [3]int8) byte {
	switch {
	case col[0] >= 0 && col[0] == col[1] && col[1] == col[2]:
		return '*'
	case (col[0] >= 0 && col[0] == col[1]) ||
		(col[0] >= 0 && col[0] == col[2]) ||
		(col[1] >= 0 && col[1] == col[2]):
		return ':'
	default:
		return ' '
	}
}

// Format writes a block-wrapped, human-readable rendering with a
// conservation line, similar to CLUSTAL output.
func (a *Alignment) Format(w io.Writer, width int) error {
	return a.Multi().Format(w, width)
}

// String renders the alignment with the default width.
func (a *Alignment) String() string {
	var b strings.Builder
	_ = a.Format(&b, 60)
	return b.String()
}

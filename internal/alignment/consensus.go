package alignment

// Consensus returns the majority-vote consensus sequence of the alignment:
// per column, the most frequent residue wins; on a three-way tie between
// distinct residues the first sequence's residue wins; columns whose
// majority is a gap contribute nothing. The result is a plain residue
// string over the triple's alphabet.
func (a *Alignment) Consensus() string {
	out := make([]byte, 0, len(a.Moves))
	ra, rb, rc := a.Rows()
	for i := range a.Moves {
		if c := majorityByte(ra[i], rb[i], rc[i]); c != '-' {
			out = append(out, c)
		}
	}
	return string(out)
}

// majorityByte picks the most frequent of three symbols, preferring a
// concrete residue over '-' when each symbol appears once.
func majorityByte(a, b, c byte) byte {
	switch {
	case a == b || a == c:
		return a
	case b == c:
		return b
	}
	for _, x := range [3]byte{a, b, c} {
		if x != '-' {
			return x
		}
	}
	return '-'
}

// Conservation returns the per-column annotation line used by Format:
// '*' for three identical residues, ':' for exactly two, ' ' otherwise.
func (a *Alignment) Conservation() string {
	cols := a.columnCodes()
	marks := make([]byte, len(cols))
	for i, col := range cols {
		marks[i] = conservationMark(col)
	}
	return string(marks)
}

package alignment

import (
	"strings"
	"testing"
)

func TestConsensusIdenticalRows(t *testing.T) {
	a := &Alignment{
		Triple: triple(t, "ACGT", "ACGT", "ACGT"),
		Moves:  []Move{MoveXXX, MoveXXX, MoveXXX, MoveXXX},
	}
	if got := a.Consensus(); got != "ACGT" {
		t.Fatalf("Consensus = %q, want ACGT", got)
	}
	if got := a.Conservation(); got != "****" {
		t.Fatalf("Conservation = %q, want ****", got)
	}
}

func TestConsensusMajorityWins(t *testing.T) {
	// Column 2: A, G, G -> G.
	a := &Alignment{
		Triple: triple(t, "AA", "AG", "AG"),
		Moves:  []Move{MoveXXX, MoveXXX},
	}
	if got := a.Consensus(); got != "AG" {
		t.Fatalf("Consensus = %q, want AG", got)
	}
	if got := a.Conservation(); got != "*:" {
		t.Fatalf("Conservation = %q, want *:", got)
	}
}

func TestConsensusGapMajorityDropped(t *testing.T) {
	// Second column: only A consumes -> (C, -, -): gap majority, dropped.
	a := &Alignment{
		Triple: triple(t, "AC", "A", "A"),
		Moves:  []Move{MoveXXX, MoveXGG},
	}
	if got := a.Consensus(); got != "A" {
		t.Fatalf("Consensus = %q, want A (gap-majority column dropped)", got)
	}
}

func TestConsensusThreeWayTiePrefersResidue(t *testing.T) {
	// Column (A, C, -): 1-1-1 tie -> first sequence's residue A.
	a := &Alignment{
		Triple: triple(t, "A", "C", ""),
		Moves:  []Move{MoveXXG},
	}
	if got := a.Consensus(); got != "A" {
		t.Fatalf("Consensus = %q, want A", got)
	}
}

func TestConsensusEmpty(t *testing.T) {
	a := &Alignment{Triple: triple(t, "", "", ""), Moves: nil}
	if got := a.Consensus(); got != "" {
		t.Fatalf("Consensus of empty = %q", got)
	}
}

func TestConservationLengthMatchesColumns(t *testing.T) {
	a := sampleAlignment(t)
	if len(a.Conservation()) != a.Columns() {
		t.Fatalf("Conservation length %d != columns %d", len(a.Conservation()), a.Columns())
	}
	if !strings.ContainsAny(a.Conservation(), "*:") {
		t.Fatal("Conservation has no marks for a mostly identical alignment")
	}
}
